package ggpdes

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestResultsCarryTelemetry(t *testing.T) {
	cfg := quickCfg()
	cfg.Model = PHOLD{LPsPerThread: 4, Imbalance: 4}
	cfg.Threads = 16
	cfg.EndTime = 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters == nil || res.Histograms == nil {
		t.Fatal("telemetry snapshots missing")
	}
	// GVT rounds always happen; the histogram must agree with the
	// round count.
	if res.GVTRoundLatencyCycles.Count != res.GVTRounds {
		t.Fatalf("round latency count %d != rounds %d",
			res.GVTRoundLatencyCycles.Count, res.GVTRounds)
	}
	if res.GVTRoundLatencyCycles.P50 <= 0 || res.GVTRoundLatencyCycles.P99 < res.GVTRoundLatencyCycles.P50 {
		t.Fatalf("round latency percentiles malformed: %+v", res.GVTRoundLatencyCycles)
	}
	// Fossil collection must have committed in batches summing to the
	// committed total.
	if res.CommitBatch.Count == 0 || uint64(res.CommitBatch.Mean*float64(res.CommitBatch.Count)+0.5) != res.CommittedEvents {
		t.Fatalf("commit batches (%+v) do not account for %d committed", res.CommitBatch, res.CommittedEvents)
	}
	// Rollback depth mirrors the rollback episode count.
	if res.RollbackDepth.Count != res.Rollbacks {
		t.Fatalf("rollback depth count %d != rollbacks %d", res.RollbackDepth.Count, res.Rollbacks)
	}
	if res.Rollbacks > 0 && res.RollbackDepth.P99 < 1 {
		t.Fatalf("rollback p99 = %v with %d rollbacks", res.RollbackDepth.P99, res.Rollbacks)
	}
	// GG-PDES on an imbalanced model de-schedules; spans must be
	// observed once per reactivation.
	if res.Deactivations > 0 && res.DescheduleSpanCycles.Count == 0 {
		t.Fatalf("deactivations %d but no deschedule spans", res.Deactivations)
	}
	// Cross-checks between the registry and the first-class counters.
	if res.Counters["tw.committed_events"] != res.CommittedEvents {
		t.Fatalf("counter committed %d != %d", res.Counters["tw.committed_events"], res.CommittedEvents)
	}
	if res.Counters["gvt.rounds"] != res.GVTRounds {
		t.Fatalf("counter rounds %d != %d", res.Counters["gvt.rounds"], res.GVTRounds)
	}
	if res.Counters["machine.migrations"] != res.Migrations {
		t.Fatalf("counter migrations %d != %d", res.Counters["machine.migrations"], res.Migrations)
	}
	if res.Counters["machine.preempts"] != res.Preempts {
		t.Fatalf("counter preempts %d != %d", res.Counters["machine.preempts"], res.Preempts)
	}
	// Machine occupancy histograms sample every 16 ticks per core.
	if res.Histograms["machine.runq_depth"].Count == 0 || res.Histograms["machine.smt_occupancy"].Count == 0 {
		t.Fatal("machine occupancy histograms empty")
	}
	if res.HistogramsText() == "" || !strings.Contains(res.HistogramsText(), "gvt.round_latency_cycles") {
		t.Fatalf("histograms text missing:\n%s", res.HistogramsText())
	}
}

func TestPerfettoExportFromRun(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg()
	cfg.Model = PHOLD{LPsPerThread: 4, Imbalance: 4}
	cfg.Threads = 16
	cfg.EndTime = 60
	cfg.Trace = &TraceOptions{Perfetto: &buf}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	threadNames := map[int]bool{}
	var slices, gvtCounters, committedCounters int
	lastGVT := -1.0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames[ev.Tid] = true
		case ev.Ph == "X":
			if ev.Name != "descheduled" || ev.Dur < 0 || ev.Tid < 0 || ev.Tid >= cfg.Threads {
				t.Fatalf("bad slice: %+v", ev)
			}
			slices++
		case ev.Ph == "C" && ev.Name == "GVT":
			g, ok := ev.Args["gvt"].(float64)
			if !ok || g < lastGVT {
				t.Fatalf("GVT counter not monotonic: %+v after %v", ev, lastGVT)
			}
			lastGVT = g
			gvtCounters++
		case ev.Ph == "C" && ev.Name == "committed events":
			committedCounters++
		}
	}
	for tid := 0; tid < cfg.Threads; tid++ {
		if !threadNames[tid] {
			t.Fatalf("missing thread_name metadata for tid %d", tid)
		}
	}
	if res.Deactivations > 0 && slices == 0 {
		t.Fatal("deactivations happened but no descheduled slices exported")
	}
	if gvtCounters == 0 || committedCounters == 0 {
		t.Fatalf("counter tracks missing: gvt=%d committed=%d", gvtCounters, committedCounters)
	}
}

func TestRingTraceThroughAPI(t *testing.T) {
	var csv bytes.Buffer
	cfg := quickCfg()
	cfg.Model = PHOLD{LPsPerThread: 4, Imbalance: 4}
	cfg.Threads = 16
	cfg.EndTime = 60
	cfg.Trace = &TraceOptions{Limit: 64, Ring: true, CSV: &csv}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.TraceSummary, "ring") {
		t.Fatalf("summary does not mention ring mode: %q", res.TraceSummary)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 65 { // header + 64 retained records
		t.Fatalf("ring csv has %d lines, want 65", len(lines))
	}
}

func TestProgressReporting(t *testing.T) {
	var out bytes.Buffer
	var samples []ProgressInfo
	cfg := quickCfg()
	cfg.Progress = &ProgressOptions{
		Every: 0.25,
		W:     &out,
		Func:  func(p ProgressInfo) { samples = append(samples, p) },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no progress samples")
	}
	last := samples[len(samples)-1]
	if last.GVT < cfg.EndTime {
		t.Fatalf("final sample GVT %.2f below end time %.2f", last.GVT, cfg.EndTime)
	}
	if last.Threads != cfg.Threads || last.ActiveThreads < 1 || last.ActiveThreads > cfg.Threads {
		t.Fatalf("thread accounting wrong: %+v", last)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].GVT < samples[i-1].GVT || samples[i].CommittedEvents < samples[i-1].CommittedEvents {
			t.Fatalf("samples not monotonic: %+v then %+v", samples[i-1], samples[i])
		}
	}
	if res.CommittedEvents < last.CommittedEvents {
		t.Fatalf("final results committed %d below last sample %d", res.CommittedEvents, last.CommittedEvents)
	}
	text := out.String()
	if strings.Count(text, "\n") != len(samples) {
		t.Fatalf("writer lines != samples:\n%s", text)
	}
	for _, want := range []string{"gvt ", "committed", "eff", "active", "rounds"} {
		if !strings.Contains(text, want) {
			t.Fatalf("progress line missing %q:\n%s", want, text)
		}
	}
}

func TestProgressDoesNotPerturbRun(t *testing.T) {
	cfg := quickCfg()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Progress = &ProgressOptions{Func: func(ProgressInfo) {}}
	cfg.Trace = &TraceOptions{}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CommittedEvents != b.CommittedEvents || a.WallClockSeconds != b.WallClockSeconds {
		t.Fatalf("observability changed the run: %d/%.6f vs %d/%.6f",
			a.CommittedEvents, a.WallClockSeconds, b.CommittedEvents, b.WallClockSeconds)
	}
}
