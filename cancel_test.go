package ggpdes

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// longCfg returns a configuration that would run for a very long time,
// so cancellation is guaranteed to land mid-simulation.
func longCfg() Config {
	cfg := quickCfg()
	cfg.EndTime = 1e12
	cfg.Machine.MaxTicks = 1 << 40
	return cfg
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, longCfg())
	if err == nil || res != nil {
		t.Fatalf("cancelled run returned res=%v err=%v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, longCfg())
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
		if !strings.Contains(err.Error(), "cancelled") {
			t.Fatalf("error %v does not mention cancellation", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, longCfg())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
}

// A finished context must not poison a run that completes normally:
// RunContext with a background context equals Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	a, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.CommittedEvents != b.CommittedEvents || a.TotalCycles != b.TotalCycles {
		t.Fatal("RunContext(Background) diverged from Run")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := quickCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.Threads = 0 },
		func(c *Config) { c.EndTime = 0 },
		func(c *Config) { c.System = System(99) },
		func(c *Config) { c.GVT = GVT(99) },
		func(c *Config) { c.Affinity = Affinity(99) },
		func(c *Config) { c.Queue = Queue(99) },
		func(c *Config) { c.StateSaving = StateSaving(99) },
		func(c *Config) { c.System = Baseline; c.Affinity = DynamicAffinity },
		func(c *Config) { c.GVTFrequency = -1 },
		func(c *Config) { c.ZeroCounterThreshold = -1 },
		func(c *Config) { c.BatchSize = -1 },
		func(c *Config) { c.OptimismWindow = -1 },
		func(c *Config) { c.Machine.Cores = -1 },
		func(c *Config) { c.Model = PHOLD{LPsPerThread: 1, Imbalance: 3} },
		func(c *Config) { c.AdaptiveGVT = &AdaptiveGVT{MinFrequency: 10, MaxFrequency: 5} },
	}
	for i, mutate := range bad {
		cfg := quickCfg()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
