#!/bin/sh
# chaos_smoke.sh — fault-tolerance smoke test behind `make chaos-smoke`.
#
# Builds ggserved and ggload, starts the daemon on an ephemeral port
# with crash injection on every non-final attempt (-crash-rate 1) and
# checkpointing every 2 GVT rounds, then runs ggload's chaos sequence:
# submit a batch of jobs, require all of them to complete despite the
# injected crashes, require retries that resumed from checkpoints, and
# check the server's injected_crashes/retries/resumes counters. Ends
# with a SIGTERM drain check.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'if [ -n "${pid:-}" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$dir"' EXIT INT TERM

# The server runs race-instrumented: retries, the stall watchdog, and
# crash injection all cross goroutines, and this is the cheapest place
# to watch them collide under real scheduling.
$GO build -race -o "$dir/ggserved" ./cmd/ggserved
$GO build -o "$dir/ggload" ./cmd/ggload

"$dir/ggserved" -addr 127.0.0.1:0 -addr-file "$dir/addr" \
    -crash-rate 1 -max-attempts 3 -chaos-seed 7 \
    -checkpoint-every 2 -checkpoint-root "$dir/ckpt" \
    -stall-timeout 30s 2>"$dir/ggserved.log" &
pid=$!

i=0
while [ ! -s "$dir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
        echo "chaos-smoke: ggserved never bound an address" >&2
        cat "$dir/ggserved.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$dir/addr")

if ! "$dir/ggload" -addr "$addr" -chaos-smoke; then
    cat "$dir/ggserved.log" >&2
    exit 1
fi

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "chaos-smoke: ggserved did not drain within 10s of SIGTERM" >&2
        cat "$dir/ggserved.log" >&2
        exit 1
    fi
    sleep 0.1
done
pid=
echo "chaos-smoke: OK ($addr)"
