#!/bin/sh
# cluster_smoke.sh — clustered-serving smoke test behind `make cluster-smoke`.
#
# Builds ggserved and ggload, reserves three ports, and starts three
# real ggserved replicas peered into a static fleet over a shared
# checkpoint root. ggload's cluster sequence then exercises the whole
# tentpole end to end:
#
#   - every replica's /v2/healthz reports the full fleet connected;
#   - the same config submitted to two different replicas simulates
#     exactly once fleet-wide (the second submit is a peer-fill cache
#     hit, proven by summing serve.simulations across /v2/stats);
#   - a sweep with duplicated members streams one SSE result per
#     member in completion order while simulating only the unique
#     configs;
#   - the replica that owns a long checkpointing job is SIGKILLed
#     mid-run and the submitting replica resumes it from the shared
#     keyed checkpoint directory (resumed_from set, cluster.failovers
#     bumped).
#
# Survivors are then SIGTERM-drained.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pids=""
trap 'for p in $pids; do kill "$p" 2>/dev/null || true; done; rm -rf "$dir"' EXIT INT TERM

# Race-instrumented replicas: peer fills, delegation, and failover all
# cross goroutine and process boundaries under real scheduling here.
$GO build -race -o "$dir/ggserved" ./cmd/ggserved
$GO build -o "$dir/ggload" ./cmd/ggload

"$dir/ggload" -free-ports 3 >"$dir/ports"
a1=$(sed -n 1p "$dir/ports")
a2=$(sed -n 2p "$dir/ports")
a3=$(sed -n 3p "$dir/ports")

fail() {
    echo "cluster-smoke: $1" >&2
    for n in 1 2 3; do
        echo "--- replica $n log ---" >&2
        cat "$dir/ggserved$n.log" >&2 || true
    done
    exit 1
}

start_replica() {
    # $1 = own addr, $2 = peers, $3 = index
    "$dir/ggserved" -addr "$1" -peers "$2" \
        -checkpoint-root "$dir/ckpt" -max-attempts 2 \
        2>"$dir/ggserved$3.log" &
    pids="$pids $!"
    eval "pid$3=$!"
}

start_replica "$a1" "$a2,$a3" 1
start_replica "$a2" "$a1,$a3" 2
start_replica "$a3" "$a1,$a2" 3

# Wait for all three to answer /v2/healthz at all (fleet connectivity
# itself is asserted by ggload).
for a in "$a1" "$a2" "$a3"; do
    i=0
    until curl -sf "http://$a/v2/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "replica $a never came up"
        sleep 0.1
    done
done

if ! "$dir/ggload" -cluster-smoke -addrs "$a1,$a2,$a3" \
    -pids "$pid1,$pid2,$pid3" -checkpoint-root "$dir/ckpt"; then
    fail "ggload cluster sequence failed"
fi

# The failover leg killed one replica; drain whichever are left.
for p in $pids; do
    kill -0 "$p" 2>/dev/null && kill -TERM "$p"
done
i=0
for p in $pids; do
    while kill -0 "$p" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -le 300 ] || fail "a replica did not drain within 30s of SIGTERM"
        sleep 0.1
    done
done
pids=""
echo "cluster-smoke: OK ($a1 $a2 $a3)"
