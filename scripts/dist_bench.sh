#!/bin/sh
# dist_bench.sh -- emit the PR's tracked benchmark record
# (BENCH_PR8.json): single-process vs 2-worker throughput, plus the
# batching A/B that justifies the batched binary data plane.
#
# The distributed trajectory is byte-identical to the in-process one,
# so every mode commits exactly the same events; what differs is real
# wall time. PR7's synchronous plane paid one JSON round trip per
# forwarded engine operation (190x wall slowdown); PR8 coalesces
# same-worker runs into batch frames, answers repeated pure reads from
# a coordinator-side cache, defers cross-shard relays to the next frame
# and hand-rolls a binary codec for the hot ops. The record states the
# measured wall seconds for single-process, the batched default, and
# the -nobatch synchronous baseline, so the batching win and the
# remaining wire tax are both pinned. `make dist-bench` runs this; the
# output is committed.
#
# Tunables (environment):
#   GO    go binary      (default: go)
#   OUT   output path    (default: BENCH_PR8.json)
set -eu

GO=${GO:-go}
OUT=${OUT:-BENCH_PR8.json}

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

$GO build -o "$dir/ggsim" ./cmd/ggsim

args="-model phold -threads 16 -lps 8 -end 60 -seed 7 -gvt-freq 10 -zero-threshold 60"

# run <subdir> [extra flags] -> prints elapsed nanoseconds.
run() {
    sub=$1
    shift
    mkdir -p "$dir/$sub"
    start=$(date +%s%N)
    (cd "$dir/$sub" && "$dir/ggsim" $args -series series.csv "$@" >report.txt)
    end=$(date +%s%N)
    echo $((end - start))
}

# Warm once (binary page cache, worker spawn path), then measure.
run warm >/dev/null
run warm_dist -workers 2 >/dev/null
single_ns=$(run single)
dist_ns=$(run dist -workers 2)
sync_ns=$(run sync -workers 2 -nobatch -wire json)

committed=$(awk -F, 'END { print $12 }' "$dir/single/series.csv")
committed_dist=$(awk -F, 'END { print $12 }' "$dir/dist/series.csv")
committed_sync=$(awk -F, 'END { print $12 }' "$dir/sync/series.csv")
if [ "$committed" != "$committed_dist" ] || [ "$committed" != "$committed_sync" ]; then
    echo "dist-bench: committed events diverged: $committed vs $committed_dist (batched) vs $committed_sync (sync)" >&2
    exit 1
fi

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
gover=$($GO env GOVERSION)

awk -v pr=8 -v commit="$commit" -v gover="$gover" \
    -v committed="$committed" -v single_ns="$single_ns" -v dist_ns="$dist_ns" \
    -v sync_ns="$sync_ns" -v cfg="$args" 'BEGIN {
    printf "{\n"
    printf "  \"pr\": %d,\n", pr
    printf "  \"generated_by\": \"scripts/dist_bench.sh\",\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"config\": \"%s\",\n", cfg
    printf "  \"committed_events\": %.0f,\n", committed
    printf "  \"single_process\": {\"wall_ns\": %.0f, \"committed_ev_s_wall\": %.0f},\n", single_ns, committed * 1e9 / single_ns
    printf "  \"workers_2\": {\"wall_ns\": %.0f, \"committed_ev_s_wall\": %.0f},\n", dist_ns, committed * 1e9 / dist_ns
    printf "  \"batching_ab\": {\n"
    printf "    \"batched_binary_wall_ns\": %.0f,\n", dist_ns
    printf "    \"sync_json_wall_ns\": %.0f,\n", sync_ns
    printf "    \"batching_speedup\": %.2f\n", sync_ns / dist_ns
    printf "  },\n"
    printf "  \"dist_slowdown_ratio\": %.2f\n", dist_ns / single_ns
    printf "}\n"
}' >"$OUT"

ratio=$(awk -v d="$dist_ns" -v s="$single_ns" 'BEGIN { printf "%.2f", d / s }')
echo "dist-bench: wrote $OUT (single $((single_ns / 1000000))ms, batched 2-worker $((dist_ns / 1000000))ms, sync 2-worker $((sync_ns / 1000000))ms; slowdown ${ratio}x for $committed committed events)"
