#!/bin/sh
# dist_bench.sh -- emit the PR's tracked benchmark record
# (BENCH_PR7.json): single-process vs 2-worker throughput.
#
# The distributed trajectory is byte-identical to the in-process one,
# so both runs commit exactly the same events; what differs is real
# wall time — the coordinator pays one synchronous wire round trip per
# forwarded engine operation. The record states both sides' measured
# wall seconds, the committed-event throughput each achieves, and the
# resulting slowdown ratio, so later transport work (batching,
# pipelining) has a number to beat. `make dist-bench` runs this; the
# output is committed.
#
# Tunables (environment):
#   GO    go binary      (default: go)
#   OUT   output path    (default: BENCH_PR7.json)
set -eu

GO=${GO:-go}
OUT=${OUT:-BENCH_PR7.json}

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

$GO build -o "$dir/ggsim" ./cmd/ggsim

args="-model phold -threads 16 -lps 8 -end 60 -seed 7 -gvt-freq 10 -zero-threshold 60"

# run <subdir> [extra flags] -> prints elapsed nanoseconds.
run() {
    sub=$1
    shift
    mkdir -p "$dir/$sub"
    start=$(date +%s%N)
    (cd "$dir/$sub" && "$dir/ggsim" $args -series series.csv "$@" >report.txt)
    end=$(date +%s%N)
    echo $((end - start))
}

# Warm once (binary page cache, worker spawn path), then measure.
run warm >/dev/null
run warm_dist -workers 2 >/dev/null
single_ns=$(run single)
dist_ns=$(run dist -workers 2)

committed=$(awk -F, 'END { print $12 }' "$dir/single/series.csv")
committed_dist=$(awk -F, 'END { print $12 }' "$dir/dist/series.csv")
if [ "$committed" != "$committed_dist" ]; then
    echo "dist-bench: committed events diverged: $committed vs $committed_dist" >&2
    exit 1
fi

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
gover=$($GO env GOVERSION)

awk -v pr=7 -v commit="$commit" -v gover="$gover" \
    -v committed="$committed" -v single_ns="$single_ns" -v dist_ns="$dist_ns" \
    -v cfg="$args" 'BEGIN {
    printf "{\n"
    printf "  \"pr\": %d,\n", pr
    printf "  \"generated_by\": \"scripts/dist_bench.sh\",\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"config\": \"%s\",\n", cfg
    printf "  \"committed_events\": %.0f,\n", committed
    printf "  \"single_process\": {\"wall_ns\": %.0f, \"committed_ev_s_wall\": %.0f},\n", single_ns, committed * 1e9 / single_ns
    printf "  \"workers_2\": {\"wall_ns\": %.0f, \"committed_ev_s_wall\": %.0f},\n", dist_ns, committed * 1e9 / dist_ns
    printf "  \"dist_slowdown_ratio\": %.2f\n", dist_ns / single_ns
    printf "}\n"
}' >"$OUT"

echo "dist-bench: wrote $OUT (single $(printf %d $((single_ns / 1000000)))ms vs 2-worker $(printf %d $((dist_ns / 1000000)))ms for $committed committed events)"
