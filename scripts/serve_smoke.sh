#!/bin/sh
# serve_smoke.sh — end-to-end smoke test behind `make serve-smoke`.
#
# Builds ggserved and ggload, starts the daemon on an ephemeral port,
# runs ggload's deterministic smoke sequence (healthz, submit a small
# PHOLD job, poll to done, fetch the result, resubmit the identical
# spec and require a cache hit backed by the server's counters), then
# shuts the daemon down with SIGTERM and checks it drains.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'if [ -n "${pid:-}" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$dir"' EXIT INT TERM

$GO build -o "$dir/ggserved" ./cmd/ggserved
$GO build -o "$dir/ggload" ./cmd/ggload

"$dir/ggserved" -addr 127.0.0.1:0 -addr-file "$dir/addr" 2>"$dir/ggserved.log" &
pid=$!

i=0
while [ ! -s "$dir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: ggserved never bound an address" >&2
        cat "$dir/ggserved.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$dir/addr")

if ! "$dir/ggload" -addr "$addr" -smoke; then
    cat "$dir/ggserved.log" >&2
    exit 1
fi

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: ggserved did not drain within 10s of SIGTERM" >&2
        cat "$dir/ggserved.log" >&2
        exit 1
    fi
    sleep 0.1
done
pid=
echo "serve-smoke: OK ($addr)"
