#!/bin/sh
# bench_json.sh -- emit the PR's tracked benchmark record (BENCH_PR<n>.json).
#
# Runs the wall-clock benchmark set pooled (the shipping configuration)
# and the headline benchmark once more with GGPDES_NOPOOL=1, then writes
# a JSON document recording, per benchmark: ns/op, allocs/op, B/op,
# committed events/op, the simulated event rate, and the *wall-clock*
# committed-event rate (committed/op scaled by ns/op). A "headline"
# block states the pool-off/pool-on allocs/op and ns/op ratios, and a
# "telemetry_ab" block the sharded-vs-shared registry ns/op ratio (only
# meaningful at >= 4 CPUs; the CPU count is recorded alongside) -- the
# numbers this PR is accountable for. `make bench-json` runs this; the
# output is committed so later PRs can diff against it.
#
# Tunables (environment):
#   GO           go binary                      (default: go)
#   PR           record number                  (default: 6)
#   OUT          output path                    (default: BENCH_PR$PR.json)
#   BENCH_REGEX  pooled-set -bench regex        (default: figure + ablation set)
#   HEADLINE     headline -bench regex          (default: Fig2 GG-PDES-Async)
#   BENCHTIME    -benchtime per benchmark       (default: 3x)
set -eu

GO=${GO:-go}
PR=${PR:-6}
OUT=${OUT:-BENCH_PR$PR.json}
BENCH_REGEX=${BENCH_REGEX:-Fig2BalancedPHOLD|Fig4b|AblationPendingQueue|AblationStateSaving}
HEADLINE=${HEADLINE:-Fig2BalancedPHOLD/GG-PDES-Async}
BENCHTIME=${BENCHTIME:-3x}

tmp=$(mktemp -d "${TMPDIR:-/tmp}/benchjson.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

# run_bench REGEX NOPOOL -> raw `go test -bench` output.
run_bench() {
	GGPDES_NOPOOL="$2" "$GO" test -run '^$' -bench "$1" \
		-benchtime "$BENCHTIME" -benchmem .
}

# to_json < raw bench output -> one JSON object per line (no trailing
# comma handling here; the assembler below joins them).
to_json() {
	awk '/^Benchmark/ {
		delete m
		for (i = 3; i < NF; i += 2) m[$(i+1)] = $i
		wall = (m["ns/op"] > 0) ? m["committed/op"] * 1e9 / m["ns/op"] : 0
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_op\": %s, \"allocs_op\": %s, \"bytes_op\": %s, \"committed_op\": %s, \"ev_s_sim\": %s, \"committed_ev_s_wall\": %.0f}\n", \
			$1, $2, m["ns/op"]+0, m["allocs/op"]+0, m["B/op"]+0, m["committed/op"]+0, m["ev/s(sim)"]+0, wall
	}'
}

join_lines() {
	awk '{ if (NR > 1) printf ",\n"; printf "%s", $0 } END { printf "\n" }' "$1"
}

echo "bench_json: pooled set (-bench '$BENCH_REGEX' -benchtime $BENCHTIME)..." >&2
run_bench "$BENCH_REGEX" "" >"$tmp/pooled.raw"
# The headline A/B gets two fresh `go test` processes so neither side
# inherits the heap grown by the full set above.
echo "bench_json: pooled headline (-bench '$HEADLINE')..." >&2
run_bench "$HEADLINE" "" >"$tmp/pooled_head.raw"
echo "bench_json: pool-off headline (-bench '$HEADLINE')..." >&2
run_bench "$HEADLINE" 1 >"$tmp/nopool.raw"
echo "bench_json: telemetry registry sharded vs shared..." >&2
"$GO" test -run '^$' -bench 'BenchmarkRegistry(Sharded|Shared)' \
	-benchtime "$BENCHTIME" -benchmem ./internal/telemetry >"$tmp/telemetry.raw"

to_json <"$tmp/pooled.raw" >"$tmp/pooled.json"
to_json <"$tmp/pooled_head.raw" >"$tmp/pooled_head.json"
to_json <"$tmp/nopool.raw" >"$tmp/nopool.json"
to_json <"$tmp/telemetry.raw" >"$tmp/telemetry.json"

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
gover=$("$GO" env GOVERSION 2>/dev/null || echo unknown)

# Headline ratios: match pool-on and pool-off rows of the same
# benchmark and report the first pair (the headline regex normally
# selects exactly one benchmark).
headline=$(awk '
	function metric(line, unit,   re, s) {
		re = "\"" unit "\": [0-9.e+-]+"
		if (match(line, re) == 0) return 0
		s = substr(line, RSTART, RLENGTH)
		sub(/^[^:]*: /, "", s)
		return s + 0
	}
	function name(line,   s) {
		s = line
		sub(/^.*"name": "/, "", s); sub(/".*$/, "", s)
		return s
	}
	NR == FNR { ns[name($0)] = metric($0, "ns_op"); al[name($0)] = metric($0, "allocs_op"); next }
	{
		n = name($0)
		if (!(n in ns) || done) next
		done = 1
		offns = metric($0, "ns_op"); offal = metric($0, "allocs_op")
		printf "{\"benchmark\": \"%s\", \"allocs_op_nopool\": %s, \"allocs_op_pooled\": %s, \"alloc_drop_ratio\": %.2f, \"ns_op_nopool\": %s, \"ns_op_pooled\": %s, \"ns_ratio_pooled_over_nopool\": %.3f}", \
			n, offal, al[n], (al[n] > 0) ? offal / al[n] : 0, offns, ns[n], (offns > 0) ? ns[n] / offns : 0
	}' "$tmp/pooled_head.json" "$tmp/nopool.json")

# Telemetry A/B ratio: registry writes through per-thread shard cells
# vs everyone on the base cells. Below 4 CPUs the goroutines cannot
# actually contend, so the ratio is noise; cpus is recorded so readers
# can judge.
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
telemetry_ab=$(awk -v ncpu="$ncpu" '
	function metric(line, unit,   re, s) {
		re = "\"" unit "\": [0-9.e+-]+"
		if (match(line, re) == 0) return 0
		s = substr(line, RSTART, RLENGTH)
		sub(/^[^:]*: /, "", s)
		return s + 0
	}
	/RegistrySharded/ { sharded = metric($0, "ns_op") }
	/RegistryShared[^d]/ { shared = metric($0, "ns_op") }
	END {
		printf "{\"cpus\": %d, \"ns_op_sharded\": %s, \"ns_op_shared\": %s, \"ns_ratio_sharded_over_shared\": %.3f}", \
			ncpu, sharded + 0, shared + 0, (shared > 0) ? sharded / shared : 0
	}' "$tmp/telemetry.json")

{
	echo "{"
	echo "  \"pr\": $PR,"
	echo "  \"generated_by\": \"scripts/bench_json.sh\","
	echo "  \"commit\": \"$commit\","
	echo "  \"go\": \"$gover\","
	echo "  \"benchtime\": \"$BENCHTIME\","
	echo "  \"headline\": $headline,"
	echo "  \"telemetry_ab\": $telemetry_ab,"
	echo "  \"pooled\": ["
	join_lines "$tmp/pooled.json"
	echo "  ],"
	echo "  \"nopool\": ["
	join_lines "$tmp/nopool.json"
	echo "  ]"
	echo "}"
} >"$OUT"

echo "bench_json: wrote $OUT" >&2
