#!/bin/sh
# lint.sh — static analysis behind `make lint`.
#
# Three layers, strictest last: gofmt (formatting), go vet (generic
# correctness), and ggvet (the repo's own domain-aware suite in
# internal/lint: determinism of the simulation core, event-pool
# hygiene, enum/codec exhaustiveness, telemetry naming, context
# plumbing, and the serving layer's concurrency discipline — lock
# order, channel-close ownership, goroutine tracking, and stream
# termination). Any finding prints file:line diagnostics and exits
# non-zero; `ggvet -json` emits the same ledger machine-readably,
# accepted //ggvet:allow exceptions included.
set -eu

GO=${GO:-go}
GOFMT=${GOFMT:-"$($GO env GOROOT)/bin/gofmt"}
[ -x "$GOFMT" ] || GOFMT=gofmt

status=0

unformatted=$("$GOFMT" -l .)
if [ -n "$unformatted" ]; then
    echo "lint: gofmt wants to rewrite:" >&2
    echo "$unformatted" | sed 's/^/\t/' >&2
    status=1
fi

if ! $GO vet ./...; then
    status=1
fi

if ! $GO run ./cmd/ggvet ./...; then
    status=1
fi

exit $status
