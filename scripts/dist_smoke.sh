#!/bin/sh
# dist_smoke.sh — distributed-run smoke test behind `make dist-smoke`.
#
# The full multi-process topology, end to end: two ggworker processes
# on ephemeral ports, a checkpointing ggsim coordinator connecting to
# them with -worker-addrs, and an in-process golden run of the same
# seeded configuration. Asserts:
#
#   - the distributed report and the per-GVT-round series CSV are
#     byte-identical to the in-process golden (only the "distributed"
#     info line, which names the sharding itself, is excluded);
#   - the coordinator wrote per-shard checkpoint files next to every
#     full snapshot;
#   - both workers exit cleanly after the coordinator's shutdown frame;
#   - the batched binary data plane (the default) beats the synchronous
#     per-op JSON plane (-nobatch -wire json) by at least 5x wall time
#     on the same 2-worker topology — the PR8 perf tripwire.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
w1=
w2=
trap 'kill $w1 $w2 2>/dev/null || true; rm -rf "$dir"' EXIT INT TERM

fail() {
    echo "dist-smoke: $1" >&2
    shift
    for f in "$@"; do
        cat "$f" >&2
    done
    exit 1
}

$GO build -o "$dir/ggsim" ./cmd/ggsim
$GO build -o "$dir/ggworker" ./cmd/ggworker

# run <subdir> [extra flags...] — checkpoint dir and series CSV are
# relative paths under the subdir so the report lines naming them are
# identical across runs.
run() {
    sub=$1
    shift
    mkdir -p "$dir/$sub"
    (cd "$dir/$sub" && "$dir/ggsim" -model phold -threads 8 -end 40 -seed 42 \
        -gvt-freq 10 -zero-threshold 60 \
        -v -hist -checkpoint-every 2 -checkpoint-dir ck -series series.csv "$@")
}

run golden >"$dir/golden.txt" 2>&1 || fail "in-process golden run failed" "$dir/golden.txt"

"$dir/ggworker" -addr-file "$dir/w1.addr" >"$dir/w1.log" 2>&1 &
w1=$!
"$dir/ggworker" -addr-file "$dir/w2.addr" >"$dir/w2.log" 2>&1 &
w2=$!
i=0
while [ ! -s "$dir/w1.addr" ] || [ ! -s "$dir/w2.addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$w1" 2>/dev/null || ! kill -0 "$w2" 2>/dev/null; then
        fail "workers never bound their addresses" "$dir/w1.log" "$dir/w2.log"
    fi
    sleep 0.1
done
addrs="$(cat "$dir/w1.addr"),$(cat "$dir/w2.addr")"

run dist -worker-addrs "$addrs" >"$dir/dist_raw.txt" 2>&1 ||
    fail "distributed run failed" "$dir/dist_raw.txt" "$dir/w1.log" "$dir/w2.log"

grep -q '^distributed *: 2 workers' "$dir/dist_raw.txt" ||
    fail "coordinator did not report 2 workers" "$dir/dist_raw.txt"
grep -v '^distributed' "$dir/dist_raw.txt" >"$dir/dist.txt"

if ! diff -u "$dir/golden.txt" "$dir/dist.txt" >"$dir/diff.txt"; then
    echo "dist-smoke: distributed run diverged from in-process golden:" >&2
    cat "$dir/diff.txt" >&2
    exit 1
fi
if ! diff -u "$dir/golden/series.csv" "$dir/dist/series.csv" >"$dir/diff.txt"; then
    echo "dist-smoke: distributed series CSV diverged from golden:" >&2
    cat "$dir/diff.txt" >&2
    exit 1
fi

shards=$(ls "$dir/dist/ck" | grep -c 'shard' || true)
fulls=$(ls "$dir/dist/ck" | grep -cv 'shard' || true)
[ "$fulls" -ge 1 ] || fail "no full snapshots in the distributed checkpoint dir"
[ "$shards" -eq $((2 * fulls)) ] ||
    fail "want 2 shard files per full snapshot, got $shards shard / $fulls full"

# The coordinator's shutdown frames must let both workers exit 0.
i=0
while kill -0 "$w1" 2>/dev/null || kill -0 "$w2" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "workers still alive after coordinator shutdown" "$dir/w1.log" "$dir/w2.log"
    sleep 0.1
done
wait "$w1" || fail "worker 1 exited non-zero" "$dir/w1.log"
wait "$w2" || fail "worker 2 exited non-zero" "$dir/w2.log"
w1=
w2=

# Batching perf tripwire (self-spawned workers this time; one warm-up
# pair amortizes the spawn path before timing).
run warm_batched -workers 2 >/dev/null 2>&1 || fail "batched warm-up run failed"
t0=$(date +%s%N)
run perf_batched -workers 2 >"$dir/perf_batched.txt" 2>&1 ||
    fail "batched perf run failed" "$dir/perf_batched.txt"
t1=$(date +%s%N)
run perf_sync -workers 2 -nobatch -wire json >"$dir/perf_sync.txt" 2>&1 ||
    fail "synchronous perf run failed" "$dir/perf_sync.txt"
t2=$(date +%s%N)
batched_ns=$((t1 - t0))
sync_ns=$((t2 - t1))
speedup=$(awk -v s="$sync_ns" -v b="$batched_ns" 'BEGIN { printf "%.1f", s / b }')
awk -v s="$sync_ns" -v b="$batched_ns" 'BEGIN { exit !(s >= 5 * b) }' ||
    fail "batched plane only ${speedup}x faster than sync (want >= 5x): batched $((batched_ns / 1000000))ms vs sync $((sync_ns / 1000000))ms"

echo "dist-smoke: OK (2 workers at $addrs, $fulls snapshots + $shards shard files, report identical to in-process, batching ${speedup}x)"
