#!/bin/sh
# determinism_smoke.sh — end-to-end determinism check behind
# `make determinism-smoke`.
#
# Runs the same seeded PHOLD configuration twice and requires the full
# verbose report — results, percentile lines, and every telemetry
# histogram — to be byte-identical. This is the guarantee ggvet's
# determinism pass protects at the source level, asserted at the
# binary's mouth: everything ggsim prints derives from simulated
# machine time, so any divergence means ambient nondeterminism leaked
# into the core.
#
# Then the same configuration runs sharded across 2 worker processes
# (-workers 2): the report and the per-GVT-round series CSV must still
# be byte-identical to the in-process run — the distributed control/
# data split forwards operations without reordering them, so process
# boundaries must not move the trajectory. Only the "distributed" info
# line, which names the sharding itself, is excluded from the diff.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

$GO build -o "$dir/ggsim" ./cmd/ggsim

# run <subdir> [extra flags...] — the series CSV is written under the
# subdir as a relative path so the "series written to" report line is
# identical across runs.
run() {
    sub=$1
    shift
    mkdir -p "$dir/$sub"
    (cd "$dir/$sub" && "$dir/ggsim" -model phold -threads 16 -end 40 -seed 1337 \
        -v -hist -series series.csv "$@")
}

run a >"$dir/run1.txt" 2>&1
run b >"$dir/run2.txt" 2>&1

if ! diff -u "$dir/run1.txt" "$dir/run2.txt" >"$dir/diff.txt"; then
    echo "determinism-smoke: identical seeded runs diverged:" >&2
    cat "$dir/diff.txt" >&2
    exit 1
fi

run dist -workers 2 >"$dir/run_dist_raw.txt" 2>&1
grep -q '^distributed' "$dir/run_dist_raw.txt" || {
    echo "determinism-smoke: -workers 2 run did not report its sharding:" >&2
    cat "$dir/run_dist_raw.txt" >&2
    exit 1
}
grep -v '^distributed' "$dir/run_dist_raw.txt" >"$dir/run_dist.txt"

if ! diff -u "$dir/run1.txt" "$dir/run_dist.txt" >"$dir/diff.txt"; then
    echo "determinism-smoke: 2-worker run diverged from in-process:" >&2
    cat "$dir/diff.txt" >&2
    exit 1
fi
if ! diff -u "$dir/a/series.csv" "$dir/dist/series.csv" >"$dir/diff.txt"; then
    echo "determinism-smoke: 2-worker series CSV diverged from in-process:" >&2
    cat "$dir/diff.txt" >&2
    exit 1
fi
echo "determinism-smoke: seeded runs byte-identical in-process and across 2 workers ($(wc -l <"$dir/run1.txt") report lines, $(wc -l <"$dir/a/series.csv") series rows)"
