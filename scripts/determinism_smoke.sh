#!/bin/sh
# determinism_smoke.sh — end-to-end determinism check behind
# `make determinism-smoke`.
#
# Runs the same seeded PHOLD configuration twice and requires the full
# verbose report — results, percentile lines, and every telemetry
# histogram — to be byte-identical. This is the guarantee ggvet's
# determinism pass protects at the source level, asserted at the
# binary's mouth: everything ggsim prints derives from simulated
# machine time, so any divergence means ambient nondeterminism leaked
# into the core.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

$GO build -o "$dir/ggsim" ./cmd/ggsim

run() {
    "$dir/ggsim" -model phold -threads 16 -end 40 -seed 1337 -v -hist
}

run >"$dir/run1.txt" 2>&1
run >"$dir/run2.txt" 2>&1

if ! diff -u "$dir/run1.txt" "$dir/run2.txt" >"$dir/diff.txt"; then
    echo "determinism-smoke: identical seeded runs diverged:" >&2
    cat "$dir/diff.txt" >&2
    exit 1
fi
echo "determinism-smoke: two seeded runs byte-identical ($(wc -l <"$dir/run1.txt") report lines)"
