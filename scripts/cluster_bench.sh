#!/bin/sh
# cluster_bench.sh -- emit the PR's tracked benchmark record
# (BENCH_PR9.json): the fleet-wide sweep-dedup measurement.
#
# One 16-member PHOLD parameter sweep in which 8 members duplicate the
# other 8, run twice from a cold cache: against a single 2-worker
# replica, and against a 3-replica fleet of 2-worker replicas peered by
# consistent hashing. Both arms must simulate exactly the 8 unique
# configs (fleet hit rate 0.5 — the duplicates are answered from the
# content-addressed cache wherever in the fleet they land); the fleet
# arm additionally routes each unique member to its owning replica,
# and its cluster.* routing counters are embedded so the record shows
# how the dedup happened (delegations + peer fills), not just that it
# did. Delegated members wait on a background goroutine rather than a
# worker slot, so the fleet arm's peer-owned members run on their
# owners' pools while the home replica's workers handle the rest; the
# dedup win is the simulations count either way. `make cluster-bench`
# runs this; the output is committed.
#
# Tunables (environment):
#   GO    go binary      (default: go)
#   OUT   output path    (default: BENCH_PR9.json)
#   END   virtual end time per member (default: 1500)
set -eu

GO=${GO:-go}
OUT=${OUT:-BENCH_PR9.json}
END=${END:-1500}

dir=$(mktemp -d)
pids=""
trap 'for p in $pids; do kill "$p" 2>/dev/null || true; done; rm -rf "$dir"' EXIT INT TERM

$GO build -o "$dir/ggserved" ./cmd/ggserved
$GO build -o "$dir/ggload" ./cmd/ggload

"$dir/ggload" -free-ports 3 >"$dir/ports"
a1=$(sed -n 1p "$dir/ports")
a2=$(sed -n 2p "$dir/ports")
a3=$(sed -n 3p "$dir/ports")

fail() {
    echo "cluster-bench: $1" >&2
    cat "$dir"/ggserved*.log >&2 || true
    exit 1
}

# start <n> <addr> [peer flags...]
start() {
    n=$1
    a=$2
    shift 2
    "$dir/ggserved" -addr "$a" -workers 2 "$@" 2>"$dir/ggserved$n.log" &
    pids="$pids $!"
    i=0
    until curl -sf "http://$a/v2/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "replica $a never came up"
        sleep 0.1
    done
}

drain() {
    for p in $pids; do
        kill -TERM "$p" 2>/dev/null || true
    done
    for p in $pids; do
        i=0
        while kill -0 "$p" 2>/dev/null; do
            i=$((i + 1))
            [ "$i" -le 300 ] || fail "replica did not drain"
            sleep 0.1
        done
    done
    pids=""
}

bench="-sweep-bench -members 16 -dups 8 -end $END"

# Arm 1: one replica, cold cache. Dedup is local (cache + in-flight
# coalescing); all 8 unique members share its 2 workers.
start 1 "$a1"
"$dir/ggload" $bench -addrs "$a1" >"$dir/single.json" || fail "single-replica sweep failed"
drain

# Arm 2: three peered replicas, cold caches. The sweep lands on one
# replica; members hash-route to their owners, so the unique work runs
# on 6 workers while duplicates fill from whichever owner ran first.
start 1 "$a1" -peers "$a2,$a3"
start 2 "$a2" -peers "$a1,$a3"
start 3 "$a3" -peers "$a1,$a2"
"$dir/ggload" $bench -addrs "$a1,$a2,$a3" >"$dir/fleet.json" || fail "3-replica sweep failed"
drain

for f in single fleet; do
    grep -q '"simulations":8' "$dir/$f.json" ||
        fail "$f arm did not simulate exactly the 8 unique members: $(cat "$dir/$f.json")"
done

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
gover=$($GO env GOVERSION)

{
    printf '{\n'
    printf '  "pr": 9,\n'
    printf '  "generated_by": "scripts/cluster_bench.sh",\n'
    printf '  "commit": "%s",\n' "$commit"
    printf '  "go": "%s",\n' "$gover"
    printf '  "config": "phold -threads 4 -lps 4, 16-member sweep, 8 duplicates, end_time %s, 2 workers per replica",\n' "$END"
    printf '  "cluster_dedup": {\n'
    printf '    "single_replica": %s,\n' "$(cat "$dir/single.json")"
    printf '    "fleet_3_replicas": %s\n' "$(cat "$dir/fleet.json")"
    printf '  }\n'
    printf '}\n'
} >"$OUT"

single_ns=$(sed -n 's/.*"wall_ns":\([0-9]*\).*/\1/p' "$dir/single.json")
fleet_ns=$(sed -n 's/.*"wall_ns":\([0-9]*\).*/\1/p' "$dir/fleet.json")
echo "cluster-bench: wrote $OUT (16-member sweep, 8 dups: 1 replica $((single_ns / 1000000))ms, 3 replicas $((fleet_ns / 1000000))ms, 8 simulations each)"
