#!/bin/sh
# obs_smoke.sh — observability-plane smoke test behind `make obs-smoke`.
#
# Starts ggserved on an ephemeral port (with pprof on a second
# ephemeral listener), submits a PHOLD job, waits for completion, then
# checks the whole observability surface end to end:
#
#   - GET /metrics is a valid OpenMetrics page (ggtop's strict parser
#     is the validator: it exits non-zero on any malformed line,
#     undeclared family, or incomplete histogram);
#   - the page covers every metric name in the checked-in inventory
#     (internal/telemetry/inventory.txt), both the serve.* plane and
#     the engine metrics folded in from the completed job;
#   - GET /v1/jobs/{id}/series returns the per-GVT-round time series
#     with the horizon statistics;
#   - ggtop -once renders GVT, rollback, and horizon lines for the job;
#   - the pprof listener answers on its own port.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'if [ -n "${pid:-}" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$dir"' EXIT INT TERM

$GO build -o "$dir/ggserved" ./cmd/ggserved
$GO build -o "$dir/ggtop" ./cmd/ggtop

"$dir/ggserved" -addr 127.0.0.1:0 -addr-file "$dir/addr" \
    -pprof-addr 127.0.0.1:0 2>"$dir/ggserved.log" &
pid=$!

fail() {
    echo "obs-smoke: $1" >&2
    cat "$dir/ggserved.log" >&2
    exit 1
}

i=0
while [ ! -s "$dir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
        fail "ggserved never bound an address"
    fi
    sleep 0.1
done
addr=$(cat "$dir/addr")

# Submit one PHOLD job and poll it to completion.
curl -sf "http://$addr/v1/jobs" \
    -d '{"config":{"model":{"name":"phold"},"threads":8,"end_time":30,"seed":7}}' \
    >"$dir/submit.json" || fail "submit failed"
id=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$dir/submit.json" | head -n 1)
[ -n "$id" ] || fail "submit returned no job id"

i=0
state=
while [ "$state" != "done" ]; do
    i=$((i + 1))
    [ "$i" -le 300 ] || fail "job $id stuck in state '$state'"
    state=$(curl -sf "http://$addr/v1/jobs/$id" |
        sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -n 1)
    case "$state" in
    failed | cancelled) fail "job $id finished $state" ;;
    esac
    sleep 0.1
done

# The exposition must parse (ggtop -once validates it) and cover every
# inventoried metric name. Counters and histograms always appear;
# gauges are skipped only when never set, and every gauge in the
# inventory is set during a completed serve run.
curl -sf "http://$addr/metrics" >"$dir/metrics" || fail "/metrics scrape failed"
while read -r kind name; do
    case "$kind" in
    counter | gauge | histogram) ;;
    *) continue ;;
    esac
    case "$name" in
    dist.*) continue ;;    # only distributed runs register these — asserted absent below
    cluster.*) continue ;; # only clustered replicas register these — asserted absent below
    esac
    expo="ggpdes_$(echo "$name" | tr . _)"
    grep -q "^# TYPE $expo $kind\$" "$dir/metrics" ||
        fail "/metrics is missing $kind $name ($expo)"
done <internal/telemetry/inventory.txt

grep -q '_bucket{le="+Inf"}' "$dir/metrics" || fail "no histogram buckets exposed"

# No distributed job ran, so the dist.* plane must be absent — in
# particular dist.workers.connected: unset gauges stay off the page
# entirely (the set-flag skipping discipline).
if grep -q 'ggpdes_dist_' "$dir/metrics"; then
    fail "dist.* metrics exposed without a distributed run"
fi

# Same discipline for the fleet plane: cluster.* counters are only
# registered by cluster.New, and this replica ran with no peers.
if grep -q 'ggpdes_cluster_' "$dir/metrics"; then
    fail "cluster.* metrics exposed without clustering"
fi

# Per-round series with the horizon statistics.
curl -sf "http://$addr/v1/jobs/$id/series" >"$dir/series.json" || fail "series fetch failed"
grep -q '"horizon_width"' "$dir/series.json" || fail "series has no horizon_width"
grep -q '"thread_lvts"' "$dir/series.json" || fail "series has no thread_lvts"

# ggtop renders one frame (and strictly re-parses /metrics doing so).
"$dir/ggtop" -addr "$addr" -job "$id" -once >"$dir/ggtop.out" ||
    fail "ggtop -once failed (exposition invalid?)"
for want in "gvt=" "rollback" "horizon width"; do
    grep -qi "$want" "$dir/ggtop.out" || fail "ggtop frame missing '$want'"
done

# pprof answers on its own listener.
pprof=$(sed -n 's/^ggserved: pprof on \(.*\)$/\1/p' "$dir/ggserved.log" | head -n 1)
[ -n "$pprof" ] || fail "pprof listener never came up"
curl -sf "http://$pprof/debug/pprof/" >/dev/null || fail "pprof index unreachable"

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "ggserved did not drain within 10s of SIGTERM"
    sleep 0.1
done
pid=
echo "obs-smoke: OK ($addr, job $id)"
