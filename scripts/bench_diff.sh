#!/bin/sh
# bench_diff.sh -- before/after benchmark comparison.
#
#   scripts/bench_diff.sh [base-ref]    compare base-ref against the worktree
#   scripts/bench_diff.sh -smoke        pool-off vs pool-on in the worktree
#
# Full mode checks base-ref (default: HEAD) out into a temporary git
# worktree, runs the benchmark set there and in the current tree, and
# prints a benchstat-style before/after table: one row per benchmark
# and unit, with the relative delta. Use it to quantify a performance
# PR against the commit it branched from:
#
#   scripts/bench_diff.sh v0-seed
#
# Smoke mode needs no second checkout: it runs the headline benchmark
# twice in the current tree -- GGPDES_NOPOOL=1 (event/snapshot
# recycling disabled, "before") and pooled (default, "after") -- and
# fails unless pooling still cuts allocs/op by at least MIN_ALLOC_RATIO
# without costing more than MAX_NS_RATIO wall clock. It then runs the
# telemetry registry A/B (sharded per-thread cells vs everyone on the
# base cells) and, on machines with >= 4 CPUs, fails if sharding has
# stopped paying for itself under contention (ns/op ratio beyond
# MAX_SHARD_RATIO). `make ci` runs this as the regression tripwire.
#
# Tunables (environment):
#   GO              go binary                  (default: go)
#   BENCH_REGEX     full-mode -bench regex    (default: figure + ablation set)
#   SMOKE_REGEX     smoke-mode -bench regex   (default: Fig2 GG-PDES-Async)
#   BENCHTIME       -benchtime per benchmark  (default: 3x)
#   MIN_ALLOC_RATIO smoke: required before/after allocs/op ratio (default: 2.0)
#   MAX_NS_RATIO    smoke: allowed after/before ns/op ratio      (default: 1.25)
#   MAX_SHARD_RATIO smoke: allowed sharded/shared ns/op ratio    (default: 1.10)
set -eu

GO=${GO:-go}
BENCH_REGEX=${BENCH_REGEX:-Fig2BalancedPHOLD|Fig4b|AblationPendingQueue|AblationStateSaving}
SMOKE_REGEX=${SMOKE_REGEX:-Fig2BalancedPHOLD/GG-PDES-Async}
BENCHTIME=${BENCHTIME:-3x}
MIN_ALLOC_RATIO=${MIN_ALLOC_RATIO:-2.0}
MAX_NS_RATIO=${MAX_NS_RATIO:-1.25}
MAX_SHARD_RATIO=${MAX_SHARD_RATIO:-1.10}

usage() {
	echo "usage: scripts/bench_diff.sh [-smoke] [base-ref]" >&2
	exit 2
}

# run_bench DIR REGEX NOPOOL -> lines of "<benchmark>|<unit> <value>".
# Go prints each benchmark as: name iterations {value unit}...; the
# awk body explodes the unit pairs so before/after runs can be joined
# on "benchmark|unit" keys regardless of which metrics a benchmark
# reports.
run_bench() {
	(cd "$1" && GGPDES_NOPOOL="$3" "$GO" test -run '^$' -bench "$2" \
		-benchtime "$BENCHTIME" -benchmem .) |
		awk '/^Benchmark/ { for (i = 3; i < NF; i += 2) print $1 "|" $(i+1), $i }'
}

# diff_table BEFORE_FILE AFTER_FILE LABEL_BEFORE LABEL_AFTER
diff_table() {
	awk -v lb="$3" -v la="$4" '
		NR == FNR { before[$1] = $2; order[n++] = $1; next }
		{ after[$1] = $2 }
		END {
			printf "%-55s %-12s %14s %14s %9s\n", "benchmark", "unit", lb, la, "delta"
			for (i = 0; i < n; i++) {
				k = order[i]
				if (!(k in after)) continue
				split(k, parts, "|")
				name = parts[1]; unit = parts[2]
				sub(/^Benchmark/, "", name)
				d = (before[k] != 0) ? (after[k] - before[k]) / before[k] * 100 : 0
				printf "%-55s %-12s %14s %14s %+8.1f%%\n", name, unit, before[k], after[k], d
			}
		}' "$1" "$2"
}

smoke() {
	tmp=$(mktemp -d "${TMPDIR:-/tmp}/benchdiff.XXXXXX")
	trap 'rm -rf "$tmp"' EXIT INT TERM

	echo "bench_diff -smoke: $SMOKE_REGEX at -benchtime $BENCHTIME" >&2
	echo "  running with GGPDES_NOPOOL=1 (recycling off)..." >&2
	run_bench . "$SMOKE_REGEX" 1 >"$tmp/before"
	echo "  running pooled (default)..." >&2
	run_bench . "$SMOKE_REGEX" "" >"$tmp/after"

	diff_table "$tmp/before" "$tmp/after" "pool-off" "pool-on"

	# Assert the pooling win holds: allocs/op must drop by
	# MIN_ALLOC_RATIO and ns/op must not regress past MAX_NS_RATIO.
	awk -v minalloc="$MIN_ALLOC_RATIO" -v maxns="$MAX_NS_RATIO" '
		NR == FNR { before[$1] = $2; next }
		{ after[$1] = $2 }
		END {
			ok = 1
			for (k in before) {
				if (!(k in after)) continue
				if (k ~ /\|allocs\/op$/) {
					if (after[k] * minalloc > before[k]) {
						printf "FAIL %s: pooled %s allocs/op vs %s off -- less than %sx drop\n", k, after[k], before[k], minalloc
						ok = 0
					}
				} else if (k ~ /\|ns\/op$/) {
					if (after[k] > before[k] * maxns) {
						printf "FAIL %s: pooled %s ns/op vs %s off -- exceeds %sx budget\n", k, after[k], before[k], maxns
						ok = 0
					}
				}
			}
			if (ok) print "bench_diff -smoke: OK (allocs/op drop >= " minalloc "x, ns/op within " maxns "x)"
			exit ok ? 0 : 1
		}' "$tmp/before" "$tmp/after"

	telemetry_smoke "$tmp"
}

# Telemetry registry A/B: BenchmarkRegistryShared routes every thread
# to the base cells (the pre-sharding layout), BenchmarkRegistrySharded
# gives each its own padded shard. The contention win only manifests
# when the benchmark goroutines actually run in parallel, so the
# assertion is skipped below 4 CPUs; the benchmarks still run for
# crash/regression coverage.
telemetry_smoke() {
	tmp=$1
	ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
	echo "bench_diff -smoke: telemetry registry sharded vs shared ($ncpu CPUs)..." >&2
	run_bench ./internal/telemetry 'BenchmarkRegistry(Sharded|Shared)' "" >"$tmp/shard"

	awk '{ split($1, p, "|"); printf "%-55s %-12s %14s\n", p[1], p[2], $2 }' "$tmp/shard"

	if [ "$ncpu" -lt 4 ]; then
		echo "bench_diff -smoke: telemetry OK (ran both; < 4 CPUs, contention assertion skipped)"
		return 0
	fi
	awk -v maxratio="$MAX_SHARD_RATIO" '
		$1 ~ /RegistrySharded.*\|ns\/op$/ { sharded = $2 }
		$1 ~ /RegistryShared.*\|ns\/op$/ { shared = $2 }
		END {
			if (sharded == "" || shared == "") {
				print "FAIL telemetry: registry benchmarks missing from output"
				exit 1
			}
			if (sharded > shared * maxratio) {
				printf "FAIL telemetry: sharded %s ns/op vs shared %s -- exceeds %sx budget\n", sharded, shared, maxratio
				exit 1
			}
			printf "bench_diff -smoke: telemetry OK (sharded %s ns/op vs shared %s, within %sx)\n", sharded, shared, maxratio
		}' "$tmp/shard"
}

full() {
	base=$1
	if ! git rev-parse --verify --quiet "$base^{commit}" >/dev/null; then
		echo "bench_diff: unknown git ref $base" >&2
		exit 2
	fi
	tmp=$(mktemp -d "${TMPDIR:-/tmp}/benchdiff.XXXXXX")
	trap 'git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true; rm -rf "$tmp"' EXIT INT TERM
	echo "bench_diff: $base vs worktree, -bench '$BENCH_REGEX' -benchtime $BENCHTIME" >&2
	git worktree add --quiet --detach "$tmp/base" "$base"

	echo "  running base ($base)..." >&2
	run_bench "$tmp/base" "$BENCH_REGEX" "" >"$tmp/before"
	echo "  running worktree..." >&2
	run_bench . "$BENCH_REGEX" "" >"$tmp/after"

	diff_table "$tmp/before" "$tmp/after" "$base" "worktree"
}

case "${1:-HEAD}" in
-smoke)
	[ $# -le 1 ] || usage
	smoke
	;;
-*)
	usage
	;;
*)
	full "${1:-HEAD}"
	;;
esac
