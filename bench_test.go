package ggpdes

// One benchmark per paper table/figure, at a miniature scale that
// preserves every ratio the figures depend on (threads per hardware
// context, over-subscription factor, imbalance windows). Each
// iteration runs one full simulation; b.ReportMetric exposes the
// committed event rate — the paper's y-axis — alongside ns/op.
//
// Regenerate the full figures (all thread sweeps and systems) with:
//
//	go run ./cmd/ggbench -all
import (
	"fmt"
	"os"
	"testing"
)

// benchMachine is a 8-core, 2-SMT machine: 16 hardware contexts.
func benchMachine() Machine {
	return Machine{Cores: 8, SMTWidth: 2, FreqHz: 1.3e9}
}

// benchEnv applies environment-driven benchmark switches: setting
// GGPDES_NOPOOL=1 disables event/snapshot recycling, so one binary can
// measure the before/after of pooling (scripts/bench_diff.sh -smoke).
func benchEnv(b *testing.B, cfg *Config) {
	b.Helper()
	b.ReportAllocs()
	if os.Getenv("GGPDES_NOPOOL") == "1" {
		cfg.DisablePooling = true
	}
}

func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	benchEnv(b, &cfg)
	if cfg.Machine.Cores == 0 {
		cfg.Machine = benchMachine()
	}
	if cfg.GVTFrequency == 0 {
		cfg.GVTFrequency = 40
	}
	if cfg.ZeroCounterThreshold == 0 {
		cfg.ZeroCounterThreshold = 400 // the paper's 10x-frequency ratio
	}
	if cfg.EndTime == 0 {
		cfg.EndTime = 40
	}
	if cfg.OptimismWindow == 0 {
		cfg.OptimismWindow = 10
	}
	var rate, committed float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rate += res.CommittedEventRate
		committed += float64(res.CommittedEvents)
	}
	b.ReportMetric(rate/float64(b.N), "ev/s(sim)")
	b.ReportMetric(committed/float64(b.N), "committed/op")
}

// TestSteadyStateAllocsPerEvent is the allocation regression guard for
// the pooled hot path: the *marginal* heap allocations per additional
// committed event — measured by differencing two runs of the same
// configuration at different end times, so engine construction and
// pool warm-up cancel out — must stay below a small budget. Before
// event/snapshot pooling this figure was ~15 allocs/event; with the
// freelists warm it is ~0.3 (pool-capacity growth as the uncommitted
// watermark wanders). The budget leaves slack for toolchain noise
// while still catching any reintroduced per-event allocation.
func TestSteadyStateAllocsPerEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful under -short")
	}
	const budget = 2.0
	cfg := Config{
		Model: PHOLD{LPsPerThread: 4, Imbalance: 1}, Threads: 16,
		System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
		Machine: benchMachine(), GVTFrequency: 40, ZeroCounterThreshold: 400,
		OptimismWindow: 10, Seed: 1,
	}
	probe := func(end float64) (allocs float64, committed uint64) {
		cfg.EndTime = end
		allocs = testing.AllocsPerRun(2, func() {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			committed = res.CommittedEvents
		})
		return allocs, committed
	}
	shortAllocs, shortEvents := probe(20)
	longAllocs, longEvents := probe(120)
	if longEvents <= shortEvents {
		t.Fatalf("longer run committed fewer events: %d vs %d", longEvents, shortEvents)
	}
	perEvent := (longAllocs - shortAllocs) / float64(longEvents-shortEvents)
	t.Logf("steady-state allocations: %.3f allocs/committed event (budget %.1f)", perEvent, budget)
	if perEvent > budget {
		t.Fatalf("steady-state allocations regressed: %.3f allocs/event exceeds budget %.1f "+
			"(pooled hot path should be allocation-free; see internal/tw/pool.go)", perEvent, budget)
	}
}

// systemsSix mirrors the six lines of Figures 2-4.
var systemsSix = []struct {
	name string
	sys  System
	gvt  GVT
}{
	{"Baseline-Sync", Baseline, Barrier},
	{"Baseline-Async", Baseline, WaitFree},
	{"DD-PDES-Sync", DDPDES, Barrier},
	{"DD-PDES-Async", DDPDES, WaitFree},
	{"GG-PDES-Sync", GGPDES, Barrier},
	{"GG-PDES-Async", GGPDES, WaitFree},
}

// benchPHOLDFigure runs one imbalanced-PHOLD figure: every system at
// full subscription and the headline pair over-subscribed.
func benchPHOLDFigure(b *testing.B, imbalance, overSub int) {
	full := 16 // hardware contexts of benchMachine
	for _, s := range systemsSix {
		s := s
		b.Run(fmt.Sprintf("%s/%dthr", s.name, full), func(b *testing.B) {
			benchRun(b, Config{
				Model: PHOLD{LPsPerThread: 4, Imbalance: imbalance}, Threads: full,
				System: s.sys, GVT: s.gvt, Affinity: ConstantAffinity,
			})
		})
	}
	if overSub > 1 {
		over := full * overSub
		for _, s := range []struct {
			name string
			sys  System
			gvt  GVT
		}{{"Baseline-Sync", Baseline, Barrier}, {"GG-PDES-Async", GGPDES, WaitFree}} {
			s := s
			b.Run(fmt.Sprintf("%s/%dthr-oversub", s.name, over), func(b *testing.B) {
				benchRun(b, Config{
					Model: PHOLD{LPsPerThread: 4, Imbalance: imbalance}, Threads: over,
					System: s.sys, GVT: s.gvt, Affinity: ConstantAffinity,
				})
			})
		}
	}
}

// BenchmarkFig2BalancedPHOLD regenerates Figure 2: all six systems on
// the balanced model (demand-driven overhead check).
func BenchmarkFig2BalancedPHOLD(b *testing.B) { benchPHOLDFigure(b, 1, 1) }

// BenchmarkFig3a regenerates Figure 3(a): 1-2 imbalanced PHOLD with 2x
// over-subscription.
func BenchmarkFig3a(b *testing.B) { benchPHOLDFigure(b, 2, 2) }

// BenchmarkFig3b regenerates Figure 3(b): 1-4 imbalanced PHOLD with 2x
// over-subscription.
func BenchmarkFig3b(b *testing.B) { benchPHOLDFigure(b, 4, 2) }

// BenchmarkFig4a regenerates Figure 4(a): 1-8 imbalanced PHOLD with 4x
// over-subscription.
func BenchmarkFig4a(b *testing.B) { benchPHOLDFigure(b, 8, 4) }

// BenchmarkFig4b regenerates Figure 4(b): 1-16 imbalanced PHOLD with 8x
// over-subscription.
func BenchmarkFig4b(b *testing.B) { benchPHOLDFigure(b, 16, 8) }

// benchAppFigure runs Figures 5-6's three systems on a model.
func benchAppFigure(b *testing.B, model func(threads int) Model, threads int) {
	specs := []struct {
		name string
		sys  System
		gvt  GVT
	}{
		{"Baseline", Baseline, Barrier},
		{"DD-PDES", DDPDES, WaitFree},
		{"GG-PDES", GGPDES, WaitFree},
	}
	for _, s := range specs {
		s := s
		b.Run(s.name, func(b *testing.B) {
			benchRun(b, Config{
				Model: model(threads), Threads: threads,
				System: s.sys, GVT: s.gvt, Affinity: ConstantAffinity,
			})
		})
	}
}

// BenchmarkFig5a regenerates Figure 5(a): Epidemics, 3/4 lock-down.
func BenchmarkFig5a(b *testing.B) {
	benchAppFigure(b, func(int) Model {
		return Epidemics{LPsPerThread: 8, LockdownGroups: 4, ContactRate: 3, TransmissionProb: 0.5}
	}, 16)
}

// BenchmarkFig5b regenerates Figure 5(b): Epidemics, 7/8 lock-down,
// over-subscribed 2x.
func BenchmarkFig5b(b *testing.B) {
	benchAppFigure(b, func(int) Model {
		return Epidemics{LPsPerThread: 8, LockdownGroups: 8, ContactRate: 3, TransmissionProb: 0.5}
	}, 32)
}

// BenchmarkFig6a regenerates Figure 6(a): Traffic, gradient 0.35.
func BenchmarkFig6a(b *testing.B) {
	benchAppFigure(b, func(threads int) Model {
		return Traffic{LPsPerThread: 4, DensityGradient: 0.35} // 16x4=64=8² grid
	}, 16)
}

// BenchmarkFig6b regenerates Figure 6(b): Traffic, gradient 0.5.
func BenchmarkFig6b(b *testing.B) {
	benchAppFigure(b, func(threads int) Model {
		return Traffic{LPsPerThread: 4, DensityGradient: 0.5}
	}, 16)
}

// benchAffinityFigure runs Figure 7's three affinity algorithms.
func benchAffinityFigure(b *testing.B, nonLinear bool) {
	for _, aff := range []Affinity{NoAffinity, ConstantAffinity, DynamicAffinity} {
		aff := aff
		b.Run(aff.String(), func(b *testing.B) {
			benchRun(b, Config{
				Model:   PHOLD{LPsPerThread: 4, Imbalance: 4, NonLinear: nonLinear},
				Threads: 32, System: GGPDES, GVT: WaitFree, Affinity: aff,
			})
		})
	}
}

// BenchmarkFig7a regenerates Figure 7(a): affinity under linear
// locality.
func BenchmarkFig7a(b *testing.B) { benchAffinityFigure(b, false) }

// BenchmarkFig7b regenerates Figure 7(b): affinity under non-linear
// locality (constant pinning's pathological case).
func BenchmarkFig7b(b *testing.B) { benchAffinityFigure(b, true) }

// BenchmarkTblGVTTimes regenerates the in-text GVT CPU time comparison
// (§6.2): Baseline vs GG, over-subscribed.
func BenchmarkTblGVTTimes(b *testing.B) {
	for _, s := range []struct {
		name string
		sys  System
		gvt  GVT
	}{
		{"Baseline-Sync", Baseline, Barrier},
		{"Baseline-Async", Baseline, WaitFree},
		{"GG-PDES-Sync", GGPDES, Barrier},
		{"GG-PDES-Async", GGPDES, WaitFree},
	} {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var gvtPerRound float64
			cfg := Config{
				Model: PHOLD{LPsPerThread: 4, Imbalance: 2}, Threads: 32,
				System: s.sys, GVT: s.gvt, Affinity: ConstantAffinity,
				Machine: benchMachine(), EndTime: 40,
				GVTFrequency: 40, ZeroCounterThreshold: 400,
			}
			benchEnv(b, &cfg)
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				gvtPerRound += res.GVTCPUSecondsPerRound()
			}
			b.ReportMetric(gvtPerRound/float64(b.N)*1e6, "gvt-us/round")
		})
	}
}

// BenchmarkTblInstructions regenerates the in-text instruction-count
// comparison (§6.2-6.3) as total cycles.
func BenchmarkTblInstructions(b *testing.B) {
	for _, s := range []struct {
		name string
		sys  System
		gvt  GVT
	}{
		{"Baseline-Sync", Baseline, Barrier},
		{"GG-PDES-Async", GGPDES, WaitFree},
	} {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var cycles float64
			cfg := Config{
				Model: PHOLD{LPsPerThread: 4, Imbalance: 4}, Threads: 32,
				System: s.sys, GVT: s.gvt, Affinity: ConstantAffinity,
				Machine: benchMachine(), EndTime: 40,
				GVTFrequency: 40, ZeroCounterThreshold: 400,
			}
			benchEnv(b, &cfg)
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles += float64(res.TotalCycles)
			}
			b.ReportMetric(cycles/float64(b.N)/1e6, "Mcycles/op")
		})
	}
}

// BenchmarkTblRollbacks regenerates §6.5's rollback statistics on the
// traffic model.
func BenchmarkTblRollbacks(b *testing.B) {
	for _, s := range []struct {
		name string
		sys  System
		gvt  GVT
	}{
		{"Baseline", Baseline, Barrier},
		{"DD-PDES", DDPDES, WaitFree},
		{"GG-PDES", GGPDES, WaitFree},
	} {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var rolled, processed float64
			cfg := Config{
				Model: Traffic{LPsPerThread: 4, DensityGradient: 0.5}, Threads: 16,
				System: s.sys, GVT: s.gvt, Affinity: ConstantAffinity,
				Machine: benchMachine(), EndTime: 30,
				GVTFrequency: 40, ZeroCounterThreshold: 400,
			}
			benchEnv(b, &cfg)
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rolled += float64(res.RolledBackEvents)
				processed += float64(res.ProcessedEvents)
			}
			b.ReportMetric(rolled/processed*100, "rolled-back-%")
		})
	}
}

// --- Ablations (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationGVTFrequency sweeps the GVT round frequency (the
// paper fixes 1/200 by static analysis).
func BenchmarkAblationGVTFrequency(b *testing.B) {
	for _, freq := range []int{10, 40, 160, 640} {
		freq := freq
		b.Run(fmt.Sprintf("freq-%d", freq), func(b *testing.B) {
			benchRun(b, Config{
				Model: PHOLD{LPsPerThread: 4, Imbalance: 4}, Threads: 32,
				System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
				GVTFrequency: freq,
			})
		})
	}
}

// BenchmarkAblationZeroCounter sweeps the deactivation threshold (the
// paper fixes 1/2000).
func BenchmarkAblationZeroCounter(b *testing.B) {
	for _, thr := range []int{30, 120, 480, 1920} {
		thr := thr
		b.Run(fmt.Sprintf("thresh-%d", thr), func(b *testing.B) {
			benchRun(b, Config{
				Model: PHOLD{LPsPerThread: 4, Imbalance: 4}, Threads: 32,
				System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
				ZeroCounterThreshold: thr,
			})
		})
	}
}

// BenchmarkAblationBatchSize sweeps the event batch per loop cycle
// (ROSS uses 8).
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []int{1, 4, 8, 32} {
		batch := batch
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			benchRun(b, Config{
				Model: PHOLD{LPsPerThread: 4, Imbalance: 4}, Threads: 16,
				System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
				BatchSize: batch,
			})
		})
	}
}

// BenchmarkAblationPendingQueue compares the pending-set structures
// under the full engine (micro-benchmarks live in internal/pq).
func BenchmarkAblationPendingQueue(b *testing.B) {
	for _, q := range []Queue{SplayQueue, HeapQueue, CalendarQueue} {
		q := q
		b.Run(q.String(), func(b *testing.B) {
			benchRun(b, Config{
				Model: PHOLD{LPsPerThread: 16, Imbalance: 1}, Threads: 16,
				System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
				Queue: q,
			})
		})
	}
}

// BenchmarkAblationStateSaving compares copy state-saving against
// ROSS-style reverse computation (allocation pressure shows in B/op).
func BenchmarkAblationStateSaving(b *testing.B) {
	for _, policy := range []StateSaving{CopyState, ReverseComputation} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			benchRun(b, Config{
				Model:   Epidemics{LPsPerThread: 8, LockdownGroups: 4, ContactRate: 3, TransmissionProb: 0.5},
				Threads: 16, System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
				StateSaving: policy,
			})
		})
	}
}

// BenchmarkAblationAdaptiveGVT compares fixed vs adaptive GVT frequency
// (speculative memory shows in the reported peak metric).
func BenchmarkAblationAdaptiveGVT(b *testing.B) {
	base := Config{
		Model: PHOLD{LPsPerThread: 8, Imbalance: 2}, Threads: 16,
		System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
		Machine: benchMachine(), EndTime: 40,
		GVTFrequency: 256, ZeroCounterThreshold: 2560, OptimismWindow: 10,
	}
	run := func(b *testing.B, cfg Config) {
		benchEnv(b, &cfg)
		var peak float64
		for i := 0; i < b.N; i++ {
			cfg.Seed = uint64(i + 1)
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			peak += float64(res.PeakUncommittedEvents)
		}
		b.ReportMetric(peak/float64(b.N), "peak-uncommitted")
	}
	b.Run("fixed-256", func(b *testing.B) { run(b, base) })
	b.Run("adaptive", func(b *testing.B) {
		cfg := base
		cfg.AdaptiveGVT = &AdaptiveGVT{MinFrequency: 8, MaxFrequency: 256, TargetUncommittedPerThread: 8}
		run(b, cfg)
	})
}

// BenchmarkAblationLazyCancellation compares aggressive and lazy
// cancellation on the rollback-heavy traffic model. Per-event RNG
// draws make re-adoption rare, so lazy typically does not pay — an
// honest negative result.
func BenchmarkAblationLazyCancellation(b *testing.B) {
	for _, lazy := range []bool{false, true} {
		lazy := lazy
		name := "aggressive"
		if lazy {
			name = "lazy"
		}
		b.Run(name, func(b *testing.B) {
			benchRun(b, Config{
				Model: Traffic{LPsPerThread: 4, DensityGradient: 0.5}, Threads: 16,
				System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
				EndTime: 30, LazyCancellation: lazy,
			})
		})
	}
}

// BenchmarkAblationNUMAAffinity compares dynamic affinity on a uniform
// machine against the same core count in sub-NUMA-clustering mode,
// where the pass prefers each thread's previous node (the paper's
// stated future work).
func BenchmarkAblationNUMAAffinity(b *testing.B) {
	for _, numa := range []int{0, 2} {
		numa := numa
		name := "uniform"
		if numa > 1 {
			name = fmt.Sprintf("snc-%d", numa)
		}
		b.Run(name, func(b *testing.B) {
			benchRun(b, Config{
				Model:   PHOLD{LPsPerThread: 4, Imbalance: 4, NonLinear: true},
				Threads: 32, System: GGPDES, GVT: WaitFree, Affinity: DynamicAffinity,
				Machine: Machine{Cores: 8, SMTWidth: 2, FreqHz: 1.3e9, NUMANodes: numa},
			})
		})
	}
}

// BenchmarkAblationKPSize sweeps ROSS-style kernel-process sizes: the
// rollback-granularity vs bookkeeping trade-off.
func BenchmarkAblationKPSize(b *testing.B) {
	for _, size := range []int{1, 2, 4, 8} {
		size := size
		b.Run(fmt.Sprintf("lps-per-kp-%d", size), func(b *testing.B) {
			benchRun(b, Config{
				Model: PHOLD{LPsPerThread: 8, Imbalance: 2}, Threads: 16,
				System: GGPDES, GVT: WaitFree, Affinity: ConstantAffinity,
				LPsPerKP: size,
			})
		})
	}
}
