// Traffic: simulate vehicles moving through a city grid whose density
// decays from the centre by an inverse power law, and compare density
// gradients — the paper's most rollback-prone workload.
package main

import (
	"fmt"
	"log"

	"ggpdes"
	"ggpdes/internal/stats"
)

func main() {
	fmt.Println("Traffic model, 16 threads; vehicles concentrated at the city centre")
	fmt.Println("travel times ~ Burr(c=12.4, k=0.46); centre LP starts with 24 vehicles")
	fmt.Println()

	for _, gradient := range []float64{0.35, 0.5} {
		fmt.Printf("-- density gradient %.2f --\n", gradient)
		for _, sys := range []ggpdes.System{ggpdes.Baseline, ggpdes.GGPDES} {
			cfg := ggpdes.Config{
				Model: ggpdes.Traffic{
					LPsPerThread:    16, // 16 threads x 16 LPs = 256 = 16x16 grid
					DensityGradient: gradient,
				},
				Threads:              16,
				System:               sys,
				GVT:                  ggpdes.WaitFree,
				EndTime:              40,
				Machine:              ggpdes.Machine{Cores: 16, SMTWidth: 2, FreqHz: 1.3e9},
				GVTFrequency:         40,
				ZeroCounterThreshold: 400,
			}
			if sys == ggpdes.Baseline {
				cfg.GVT = ggpdes.Barrier // the paper's "Baseline" is Baseline-Sync
			}
			res, err := ggpdes.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s rate=%-14s processed=%-8s rolled-back=%-8s efficiency=%.0f%%\n",
				sys, stats.Rate(res.CommittedEventRate),
				stats.Count(res.ProcessedEvents), stats.Count(res.RolledBackEvents),
				res.Efficiency()*100)
		}
		fmt.Println()
	}
	fmt.Println("(paper: GG gains 24-27% at 2x over-subscription; at larger scales rollbacks")
	fmt.Println(" dominate — 540M of 562M processed events rolled back at 2048 threads)")
}
