// Oversubscription: load the machine with up to 8x more simulation
// threads than hardware contexts on a highly imbalanced model — the
// weak-scaling scenario where demand-driven scheduling shines, because
// only the active fraction ever competes for cores.
package main

import (
	"fmt"
	"log"

	"ggpdes"
	"ggpdes/internal/stats"
)

func main() {
	machine := ggpdes.Machine{Cores: 16, SMTWidth: 2, FreqHz: 1.3e9}
	hw := machine.Cores * machine.SMTWidth

	fmt.Printf("1-8 Imbalanced PHOLD on %d hardware contexts; weak scaling past the hardware\n\n", hw)
	fmt.Printf("%8s  %18s  %18s  %8s\n", "threads", "Baseline-Async", "GG-PDES-Async", "GG/Base")

	for _, threads := range []int{hw, 2 * hw, 4 * hw, 8 * hw} {
		var rates [2]float64
		for i, sys := range []ggpdes.System{ggpdes.Baseline, ggpdes.GGPDES} {
			res, err := ggpdes.Run(ggpdes.Config{
				Model:                ggpdes.PHOLD{LPsPerThread: 4, Imbalance: 8},
				Threads:              threads,
				System:               sys,
				GVT:                  ggpdes.WaitFree,
				Affinity:             ggpdes.ConstantAffinity, // the paper's Figures 3-4 setup
				EndTime:              60,
				Machine:              machine,
				GVTFrequency:         40,
				ZeroCounterThreshold: 400,
				// Bound speculation like ROSS's max_opt_lookahead: a
				// freshly woken group otherwise races ahead on the
				// whole machine and thrashes on rollbacks.
				OptimismWindow: 10,
			})
			if err != nil {
				log.Fatal(err)
			}
			rates[i] = res.CommittedEventRate
		}
		fmt.Printf("%8d  %18s  %18s  %8s\n", threads,
			stats.Rate(rates[0]), stats.Rate(rates[1]), stats.Speedup(rates[1], rates[0]))
	}
	fmt.Println("\n(paper: GG scales to 4096 threads on 256 contexts, up to 44% over baseline;")
	fmt.Println(" baselines collapse because every thread — active or not — competes for cores)")
}
