// Affinity: compare the three CPU pinning algorithms under non-linear
// execution locality — the case where constant round-robin pinning
// piles every active thread onto a few cores while the rest idle, and
// the paper's Dynamic CPU Affinity re-balances each GVT round.
package main

import (
	"fmt"
	"log"

	"ggpdes"
	"ggpdes/internal/stats"
)

func main() {
	run := func(aff ggpdes.Affinity, nonLinear bool) *ggpdes.Results {
		res, err := ggpdes.Run(ggpdes.Config{
			Model:                ggpdes.PHOLD{LPsPerThread: 8, Imbalance: 4, NonLinear: nonLinear},
			Threads:              32,
			System:               ggpdes.GGPDES, // dynamic affinity builds on GG-PDES
			GVT:                  ggpdes.WaitFree,
			Affinity:             aff,
			EndTime:              60,
			Machine:              ggpdes.Machine{Cores: 16, SMTWidth: 2, FreqHz: 1.3e9},
			GVTFrequency:         40,
			ZeroCounterThreshold: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	for _, nl := range []bool{false, true} {
		kind := "linear"
		if nl {
			kind = "non-linear"
		}
		fmt.Printf("-- %s execution locality (1-4 imbalanced PHOLD, GG-PDES-Async) --\n", kind)
		var constant float64
		for _, aff := range []ggpdes.Affinity{ggpdes.NoAffinity, ggpdes.ConstantAffinity, ggpdes.DynamicAffinity} {
			res := run(aff, nl)
			if aff == ggpdes.ConstantAffinity {
				constant = res.CommittedEventRate
			}
			extra := ""
			if aff == ggpdes.DynamicAffinity {
				extra = fmt.Sprintf("  repins=%d  vs constant: %s",
					res.Repins, stats.Speedup(res.CommittedEventRate, constant))
			}
			fmt.Printf("%-9s rate=%-14s migrations=%-5d%s\n",
				aff, stats.Rate(res.CommittedEventRate), res.Migrations, extra)
		}
		fmt.Println()
	}
	fmt.Println("(paper: dynamic ~ constant under linear locality (-0.5%), but up to 15x")
	fmt.Println(" better under non-linear locality, and up to 35% better than no affinity)")
}
