// Quickstart: run the paper's headline comparison on one imbalanced
// PHOLD configuration — GG-PDES-Async against Baseline-Async — and
// print committed event rates and the GVT cost gap.
package main

import (
	"fmt"
	"log"

	"ggpdes"
	"ggpdes/internal/stats"
)

func main() {
	base := ggpdes.Config{
		// 1-4 imbalanced PHOLD: only a quarter of the threads receive
		// traffic at a time, and the active group shifts.
		Model:   ggpdes.PHOLD{LPsPerThread: 8, Imbalance: 4},
		Threads: 64, // 2x over-subscribed on the 16x2 machine below
		GVT:     ggpdes.WaitFree,
		EndTime: 60,
		Machine: ggpdes.Machine{Cores: 16, SMTWidth: 2, FreqHz: 1.3e9},
		// Paper settings are 200/2000; scaled with the workload.
		GVTFrequency:         40,
		ZeroCounterThreshold: 400,
	}

	fmt.Println("1-4 Imbalanced PHOLD, 64 threads on 32 hardware contexts (2x over-subscribed)")
	fmt.Println()

	var rates [2]float64
	for i, sys := range []ggpdes.System{ggpdes.Baseline, ggpdes.GGPDES} {
		cfg := base
		cfg.System = sys
		res, err := ggpdes.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rates[i] = res.CommittedEventRate
		fmt.Printf("%-9s rate=%-14s gvt/round=%-10s cycles=%-10s deactivations=%d\n",
			sys, stats.Rate(res.CommittedEventRate),
			stats.Seconds(res.GVTCPUSecondsPerRound()),
			stats.Count(res.TotalCycles), res.Deactivations)
	}
	fmt.Printf("\nGG-PDES speedup over Baseline-Async: %s\n", stats.Speedup(rates[1], rates[0]))
	fmt.Println("(the paper reports 13-50% over DD-PDES and up to 44% over baselines, growing with locality)")
}
