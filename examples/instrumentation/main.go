// Instrumentation: trace a GG-PDES run and render the per-thread
// activity timeline — watch the demand-driven scheduler follow the
// shifting locality window of an imbalanced model.
package main

import (
	"log"
	"os"

	"ggpdes"
)

func main() {
	res, err := ggpdes.Run(ggpdes.Config{
		// 1-4 imbalanced PHOLD: the active quarter shifts across the
		// run, and the timeline below shows threads sleeping outside
		// their window.
		Model:                ggpdes.PHOLD{LPsPerThread: 8, Imbalance: 4},
		Threads:              16,
		System:               ggpdes.GGPDES,
		GVT:                  ggpdes.WaitFree,
		Affinity:             ggpdes.ConstantAffinity,
		EndTime:              120,
		Machine:              ggpdes.Machine{Cores: 8, SMTWidth: 2, FreqHz: 1.3e9},
		GVTFrequency:         40,
		ZeroCounterThreshold: 400,
		OptimismWindow:       10,
		Trace:                &ggpdes.TraceOptions{Timeline: os.Stdout, TimelineWidth: 72},
	})
	if err != nil {
		log.Fatal(err)
	}
	log.SetFlags(0)
	log.Println()
	log.Println(res.TraceSummary)
	log.Printf("committed %d events at %.2fM ev/s; GVT rounds: %d",
		res.CommittedEvents, res.CommittedEventRate/1e6, res.GVTRounds)
}
