// Epidemics: simulate SEIR disease spread across households under a
// 7/8 lock-down whose unlocked region shifts over time, and show how
// demand-driven scheduling exploits the locked (quiet) regions.
package main

import (
	"fmt"
	"log"

	"ggpdes"
	"ggpdes/internal/stats"
)

func main() {
	model := ggpdes.Epidemics{
		LPsPerThread:     32,  // households per simulation thread
		LockdownGroups:   8,   // 7/8 of the population under curfew
		ContactRate:      3,   // contacts per infectious agent per unit time
		TransmissionProb: 0.5, // exposure probability per contact
	}
	base := ggpdes.Config{
		Model:                model,
		Threads:              32,
		GVT:                  ggpdes.WaitFree,
		EndTime:              80,
		Machine:              ggpdes.Machine{Cores: 16, SMTWidth: 2, FreqHz: 1.3e9},
		GVTFrequency:         40,
		ZeroCounterThreshold: 400,
	}

	fmt.Println("Epidemics model, 7/8 lock-down, 32 threads (full subscription)")
	fmt.Println("Only households in the unlocked region can be exposed; the region")
	fmt.Println("shifts across the simulated time, so 7/8 of threads idle at any moment.")
	fmt.Println()

	systems := []struct {
		label string
		sys   ggpdes.System
		gvt   ggpdes.GVT
	}{
		{"Baseline (Sync)", ggpdes.Baseline, ggpdes.Barrier},
		{"DD-PDES (Async)", ggpdes.DDPDES, ggpdes.WaitFree},
		{"GG-PDES (Async)", ggpdes.GGPDES, ggpdes.WaitFree},
	}
	var baseline float64
	for _, s := range systems {
		cfg := base
		cfg.System = s.sys
		cfg.GVT = s.gvt
		res, err := ggpdes.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.CommittedEventRate
		}
		fmt.Printf("%-16s rate=%-14s vs baseline %-8s committed=%-8s deact=%-4d gvt/round=%s\n",
			s.label, stats.Rate(res.CommittedEventRate),
			stats.Speedup(res.CommittedEventRate, baseline),
			stats.Count(res.CommittedEvents), res.Deactivations,
			stats.Seconds(res.GVTCPUSecondsPerRound()))
	}
	fmt.Println("\n(paper: GG-PDES gains 29% over Baseline at 7/8 lock-down, 19% over-subscribed)")
}
