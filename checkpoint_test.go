package ggpdes

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"ggpdes/internal/checkpoint"
)

// ckptCfg returns a small checkpointed configuration: every 2 GVT
// rounds the run quiesces, snapshots to dir, and continues from the
// serialized form.
func ckptCfg(model Model, g GVT, dir string) Config {
	return Config{
		Model:                model,
		Threads:              4,
		System:               GGPDES,
		GVT:                  g,
		EndTime:              40,
		Machine:              SmallMachine(),
		GVTFrequency:         10,
		ZeroCounterThreshold: 60,
		Checkpoint:           &CheckpointOptions{Every: 2, Dir: dir},
	}
}

func listCheckpoints(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range entries {
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(paths)
	return paths
}

// The acceptance property: killing a run at ANY checkpoint boundary and
// resuming from the snapshot produces Results identical to the run
// having finished uninterrupted — for every model and GVT algorithm.
// (A process killed between boundaries restarts from the latest
// snapshot and replays the partial segment, which is the same
// trajectory: segments always start from serialized state.)
func TestCheckpointResumeMatrix(t *testing.T) {
	models := []Model{
		PHOLD{LPsPerThread: 4, Imbalance: 2},
		Epidemics{LPsPerThread: 8, LockdownGroups: 4, ContactRate: 3, TransmissionProb: 0.5},
		Traffic{LPsPerThread: 4, CenterStartEvents: 6},
	}
	for _, model := range models {
		for _, g := range []GVT{Barrier, WaitFree} {
			name := model.Name() + "/" + g.String()
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				full, err := Run(ckptCfg(model, g, dir))
				if err != nil {
					t.Fatal(err)
				}
				if full.FinalGVT < 40 {
					t.Fatalf("incomplete run: GVT %v", full.FinalGVT)
				}
				paths := listCheckpoints(t, dir)
				if len(paths) < 2 {
					t.Fatalf("want >= 2 checkpoints, got %d (rounds %d)", len(paths), full.GVTRounds)
				}
				for _, path := range paths {
					resumed, err := Resume(path)
					if err != nil {
						t.Fatalf("resume %s: %v", filepath.Base(path), err)
					}
					if !reflect.DeepEqual(full, resumed) {
						t.Errorf("resume from %s diverged:\nfull:    %+v\nresumed: %+v",
							filepath.Base(path), full, resumed)
					}
				}
			})
		}
	}
}

// Two checkpointed runs of the same config must write byte-identical
// snapshot files, and a resumed run re-writes the later checkpoints
// with the exact bytes of the original.
func TestCheckpointBytesDeterministic(t *testing.T) {
	model := PHOLD{LPsPerThread: 4, Imbalance: 2}
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := Run(ckptCfg(model, WaitFree, dirA)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ckptCfg(model, WaitFree, dirB)); err != nil {
		t.Fatal(err)
	}
	pathsA := listCheckpoints(t, dirA)
	pathsB := listCheckpoints(t, dirB)
	if len(pathsA) != len(pathsB) {
		t.Fatalf("checkpoint counts differ: %d vs %d", len(pathsA), len(pathsB))
	}
	read := func(p string) []byte {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for i := range pathsA {
		// Snapshots embed Config including Checkpoint.Dir, which differs
		// between the two runs — compare everything but the raw config.
		sa, err := checkpoint.Read(pathsA[i])
		if err != nil {
			t.Fatal(err)
		}
		sb, err := checkpoint.Read(pathsB[i])
		if err != nil {
			t.Fatal(err)
		}
		sa.Config, sb.Config = nil, nil
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("checkpoint %d differs between identical runs", i)
		}
	}
	// Resuming from the first checkpoint must re-write the later ones
	// byte-for-byte (same dir, so the embedded config matches too).
	orig := make(map[string][]byte)
	for _, p := range pathsA[1:] {
		orig[p] = read(p)
	}
	if _, err := Resume(pathsA[0]); err != nil {
		t.Fatal(err)
	}
	for p, want := range orig {
		if got := read(p); !bytes.Equal(got, want) {
			t.Fatalf("resume re-wrote %s with different bytes", filepath.Base(p))
		}
	}
}

// Checkpointing is part of the trajectory (quiescing perturbs
// speculation), so Every enters the cache key; Dir does not.
func TestCheckpointCacheKey(t *testing.T) {
	base := quickCfg()
	plain, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	ck := base
	ck.Checkpoint = &CheckpointOptions{Every: 2, Dir: "/tmp/x"}
	a, err := ck.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if a == plain {
		t.Fatal("Checkpoint.Every did not change the key")
	}
	ck.Checkpoint = &CheckpointOptions{Every: 2, Dir: "/tmp/y"}
	b, err := ck.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Checkpoint.Dir changed the key")
	}
}

func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(ckptCfg(PHOLD{LPsPerThread: 4, Imbalance: 2}, Barrier, dir)); err != nil {
		t.Fatal(err)
	}
	path := listCheckpoints(t, dir)[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the payload: the CRC must catch it.
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x40
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(bad); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCheckpointCorrupt", err)
	}
	// Truncation must be caught too.
	if err := os.WriteFile(bad, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(bad); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("truncated snapshot: got %v, want ErrCheckpointCorrupt", err)
	}
}

// Without a directory, checkpointing still segments the run (and stays
// deterministic) — nothing is persisted.
func TestCheckpointWithoutDir(t *testing.T) {
	cfg := ckptCfg(PHOLD{LPsPerThread: 4, Imbalance: 2}, WaitFree, "")
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("dir-less checkpointed runs diverged")
	}
}

// Resume re-attaches observability that snapshots cannot carry.
func TestResumeWithProgress(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(ckptCfg(PHOLD{LPsPerThread: 4, Imbalance: 2}, Barrier, dir)); err != nil {
		t.Fatal(err)
	}
	var samples int
	_, err := ResumeContext(t.Context(), listCheckpoints(t, dir)[0], &ResumeOptions{
		Progress: &ProgressOptions{Every: 0.25, Func: func(ProgressInfo) { samples++ }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("no progress samples during resumed run")
	}
}
