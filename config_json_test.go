package ggpdes

import (
	"encoding/json"
	"reflect"
	"testing"
)

// Wire-field round-trip: every run-defining field must survive
// encode→decode exactly. The checkpoint layer additionally enforces
// this at runtime by comparing cache keys, but a unit-level DeepEqual
// catches lossiness with a better diagnostic.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfgs := []Config{
		quickCfg(),
		{
			Model: Epidemics{LPsPerThread: 8, LockdownGroups: 8, AgentsPerHousehold: 3,
				ContactRate: 2.5, TransmissionProb: 0.4, SeedsPerWindow: 2},
			Threads:              4,
			System:               DDPDES,
			GVT:                  Barrier,
			Affinity:             ConstantAffinity,
			EndTime:              12.5,
			Seed:                 42,
			Machine:              Machine{Cores: 8, SMTWidth: 2, FreqHz: 2e9, NUMANodes: 2, MaxTicks: 1 << 20},
			GVTFrequency:         33,
			ZeroCounterThreshold: 77,
			BatchSize:            4,
			LPsPerKP:             2,
			Queue:                CalendarQueue,
			StateSaving:          ReverseComputation,
			LazyCancellation:     true,
			AdaptiveGVT:          &AdaptiveGVT{MinFrequency: 4, MaxFrequency: 64, TargetUncommittedPerThread: 8},
			OptimismWindow:       5,
			DisablePooling:       true,
			Checkpoint:           &CheckpointOptions{Every: 3, Dir: "/tmp/ck"},
			Chaos:                &ChaosOptions{Seed: 7, DropSendRate: 0.01, DelaySendRate: 0.02, DelaySendHold: 16, StallRate: 0.005},
		},
		{
			Model:   Traffic{LPsPerThread: 4, DensityGradient: 0.5, CenterStartEvents: 12},
			Threads: 16, EndTime: 9, GVT: WaitFree, System: GGPDES, Affinity: DynamicAffinity,
		},
	}
	for i, cfg := range cfgs {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("case %d: %v\njson: %s", i, err, data)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Errorf("case %d: round trip lost data\n  in:  %+v\n  out: %+v\n  json: %s", i, cfg, back, data)
		}
	}
}

// Decoding overwrites wire fields but preserves the non-wire
// observability attachments on the receiver.
func TestConfigJSONPreservesAttachments(t *testing.T) {
	data, err := json.Marshal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var cfg Config
	cfg.Trace = &TraceOptions{Limit: 5}
	cfg.Progress = &ProgressOptions{Every: 0.5}
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Trace == nil || cfg.Progress == nil {
		t.Fatal("decode dropped observability attachments")
	}
	if cfg.Threads != quickCfg().Threads {
		t.Fatal("decode did not install wire fields")
	}
}

func TestConfigJSONRejectsBadEnums(t *testing.T) {
	cases := []string{
		`{"model":{"name":"nope"},"threads":1,"end_time":1}`,
		`{"system":"vax"}`,
		`{"gvt":"psychic"}`,
		`{"affinity":"strong"}`,
		`{"queue":"deque"}`,
		`{"state_saving":"none"}`,
	}
	for _, js := range cases {
		var cfg Config
		if err := json.Unmarshal([]byte(js), &cfg); err == nil {
			t.Errorf("accepted %s", js)
		}
	}
}

// Every accepted enum spelling decodes, not just the canonical one.
func TestConfigJSONEnumSpellings(t *testing.T) {
	js := `{"system":"dd","gvt":"sync","affinity":"constant","queue":"heap","state_saving":"reverse"}`
	var cfg Config
	if err := json.Unmarshal([]byte(js), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.System != DDPDES || cfg.GVT != Barrier || cfg.Affinity != ConstantAffinity ||
		cfg.Queue != HeapQueue || cfg.StateSaving != ReverseComputation {
		t.Fatalf("alternate spellings decoded wrong: %+v", cfg)
	}
}

// FuzzConfigJSON feeds arbitrary bytes to the decoder (it must never
// panic and must fail cleanly or produce a re-encodable config), and
// checks decode→encode→decode stability for inputs that parse.
func FuzzConfigJSON(f *testing.F) {
	seedCfgs := []Config{quickCfg(), {Model: Traffic{}, Threads: 2, EndTime: 4}}
	for _, cfg := range seedCfgs {
		data, err := json.Marshal(cfg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(`{"model":{"name":"epidemics","contact_rate":1.5},"threads":3,"end_time":2.25,"seed":9}`)
	f.Add(`{}`)
	f.Add(`{"machine":{"cores":1},"adaptive_gvt":{"min_frequency":1,"max_frequency":2}}`)
	f.Fuzz(func(t *testing.T, in string) {
		var cfg Config
		if err := json.Unmarshal([]byte(in), &cfg); err != nil {
			return // invalid inputs must only error, never panic
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("decoded config failed to re-encode: %v", err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("re-encoded config failed to decode: %v\njson: %s", err, data)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("encode/decode not stable\n  first:  %+v\n  second: %+v", cfg, back)
		}
	})
}
