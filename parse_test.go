package ggpdes

import "testing"

func TestParseEnums(t *testing.T) {
	if s, err := ParseSystem("GG"); err != nil || s != GGPDES {
		t.Fatalf("ParseSystem(GG) = %v, %v", s, err)
	}
	if s, err := ParseSystem("dd-pdes"); err != nil || s != DDPDES {
		t.Fatalf("ParseSystem(dd-pdes) = %v, %v", s, err)
	}
	if g, err := ParseGVT("sync"); err != nil || g != Barrier {
		t.Fatalf("ParseGVT(sync) = %v, %v", g, err)
	}
	if a, err := ParseAffinity("dynamic"); err != nil || a != DynamicAffinity {
		t.Fatalf("ParseAffinity(dynamic) = %v, %v", a, err)
	}
	if q, err := ParseQueue("calendar"); err != nil || q != CalendarQueue {
		t.Fatalf("ParseQueue(calendar) = %v, %v", q, err)
	}
	if ss, err := ParseStateSaving("reverse"); err != nil || ss != ReverseComputation {
		t.Fatalf("ParseStateSaving(reverse) = %v, %v", ss, err)
	}
	for _, bad := range []func() error{
		func() error { _, err := ParseSystem("cfs"); return err },
		func() error { _, err := ParseGVT("mattern"); return err },
		func() error { _, err := ParseAffinity("numa"); return err },
		func() error { _, err := ParseQueue("ladder"); return err },
		func() error { _, err := ParseStateSaving("periodic"); return err },
	} {
		if bad() == nil {
			t.Fatal("unknown name accepted")
		}
	}
}
