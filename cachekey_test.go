package ggpdes

import (
	"strings"
	"testing"
)

func TestCacheKeyDeterministic(t *testing.T) {
	a, err := quickCfg().CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := quickCfg().CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config, different keys: %s vs %s", a, b)
	}
	if !strings.HasPrefix(a, "sha256:") || len(a) != len("sha256:")+64 {
		t.Fatalf("malformed key %q", a)
	}
}

// Defaults applied explicitly must hash identically to zero values, so
// equivalent submissions share a cache entry.
func TestCacheKeyNormalizesDefaults(t *testing.T) {
	zero := quickCfg()
	explicit := quickCfg()
	explicit.Seed = 1
	explicit.BatchSize = 8
	explicit.LPsPerKP = 1
	a, err := zero.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("explicit defaults changed the key")
	}
}

// Every semantically meaningful field must perturb the key.
func TestCacheKeyFieldSensitivity(t *testing.T) {
	base, err := quickCfg().CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	perturbations := map[string]func(*Config){
		"seed":          func(c *Config) { c.Seed = 2 },
		"threads":       func(c *Config) { c.Threads = 16 },
		"system":        func(c *Config) { c.System = Baseline },
		"gvt":           func(c *Config) { c.GVT = Barrier },
		"affinity":      func(c *Config) { c.Affinity = ConstantAffinity },
		"endtime":       func(c *Config) { c.EndTime = 31 },
		"model-lps":     func(c *Config) { c.Model = PHOLD{LPsPerThread: 8, Imbalance: 2} },
		"model-imb":     func(c *Config) { c.Model = PHOLD{LPsPerThread: 4, Imbalance: 4} },
		"model-kind":    func(c *Config) { c.Model = Traffic{LPsPerThread: 8} },
		"machine-cores": func(c *Config) { c.Machine.Cores = 8 },
		"machine-smt":   func(c *Config) { c.Machine.SMTWidth = 4 },
		"machine-numa":  func(c *Config) { c.Machine.NUMANodes = 2 },
		"gvtfreq":       func(c *Config) { c.GVTFrequency = 40 },
		"zerothr":       func(c *Config) { c.ZeroCounterThreshold = 100 },
		"batch":         func(c *Config) { c.BatchSize = 16 },
		"lpsperkp":      func(c *Config) { c.LPsPerKP = 2 },
		"queue":         func(c *Config) { c.Queue = HeapQueue },
		"statesaving":   func(c *Config) { c.StateSaving = ReverseComputation },
		"lazy":          func(c *Config) { c.LazyCancellation = true },
		"optimism":      func(c *Config) { c.OptimismWindow = 10 },
		"adaptive":      func(c *Config) { c.AdaptiveGVT = &AdaptiveGVT{MinFrequency: 4, MaxFrequency: 64} },
	}
	seen := map[string]string{}
	for name, mutate := range perturbations {
		cfg := quickCfg()
		mutate(&cfg)
		key, err := cfg.CacheKey()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key == base {
			t.Errorf("perturbing %s did not change the key", name)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("perturbations %s and %s collide", name, prev)
		}
		seen[key] = name
	}
}

// Observability options must NOT perturb the key: they do not change
// the simulation trajectory, and serve-layer hits should not depend on
// them.
func TestCacheKeyIgnoresObservability(t *testing.T) {
	base, err := quickCfg().CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Trace = &TraceOptions{Limit: 100, Ring: true}
	cfg.Progress = &ProgressOptions{Every: 0.5}
	cfg.DisablePooling = true
	key, err := cfg.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != base {
		t.Fatal("observability options changed the key")
	}
}

func TestCacheKeyRejectsInvalid(t *testing.T) {
	if _, err := (Config{}).CacheKey(); err == nil {
		t.Fatal("invalid config produced a key")
	}
}

// Golden keys: if these change, the canonical serialization changed
// and every deployed result cache silently invalidates. That can be
// intentional (bump cacheKeyVersion when semantics change), but never
// accidental — update the constants only with a matching version bump
// or a conscious format change.
func TestCacheKeyGolden(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "quick-phold",
			cfg:  quickCfg(),
			want: "sha256:76aee2d72f08bccc9895397625b6717d4f4eabceabdeb0e35051dabd13a5c2aa",
		},
		{
			name: "paper-default",
			cfg: Config{
				Model:   PHOLD{},
				Threads: 256,
				System:  GGPDES,
				GVT:     WaitFree,
				EndTime: 50,
			},
			want: "sha256:54dd69aeadce5f971b021dce1541167e99fa2c7a601dd02fb2a107c2b2c6422b",
		},
		{
			name: "epidemics-sync",
			cfg: Config{
				Model:   Epidemics{LPsPerThread: 8},
				Threads: 4,
				System:  DDPDES,
				GVT:     Barrier,
				EndTime: 20,
				Machine: SmallMachine(),
			},
			want: "sha256:79039c8a449f8250193d73ed4eb82da7d5ea34aa84642de4c2c5a6fbf20bc123",
		},
	}
	for _, tc := range cases {
		got, err := tc.cfg.CacheKey()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			canon, _ := tc.cfg.CanonicalString()
			t.Errorf("%s: key %s, want %s\ncanonical:\n%s", tc.name, got, tc.want, canon)
		}
	}
}
