# Developer entry points. Everything is stdlib-only Go; no tools to
# install beyond the toolchain itself.

GO ?= go

.PHONY: all build vet test test-race fuzz bench serve-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector cannot see the simulated machine's cooperative
# scheduling (goroutines hand off via channels, one runnable at a
# time), but it guards the harness, CLIs, and test plumbing.
test-race:
	$(GO) test -race ./...

# Short fuzz pass over the trace CSV reader; extend FUZZTIME locally.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/trace

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# End-to-end serving smoke: ggserved on an ephemeral port, one PHOLD
# job to completion, identical resubmit served from cache, clean drain.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

ci: build vet test test-race serve-smoke
