# Developer entry points. Everything is stdlib-only Go; no tools to
# install beyond the toolchain itself.

GO ?= go

.PHONY: all build vet lint lint-fixtures test test-race fuzz bench bench-smoke bench-diff bench-json dist-bench cluster-bench serve-smoke chaos-smoke cluster-smoke determinism-smoke obs-smoke dist-smoke inventory ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: gofmt, go vet, and ggvet — the repo's own
# domain-aware analyzer suite (internal/lint, cmd/ggvet) enforcing
# determinism of the simulation core, event-pool hygiene, enum/codec
# exhaustiveness, telemetry naming, context plumbing, and the serving
# layer's concurrency discipline (lock order, channel-close ownership,
# goroutine tracking, stream termination).
lint:
	GO="$(GO)" sh scripts/lint.sh

# The analyzer suite's own test bed: every pass against its fixture
# module (want-comments pin hazards caught AND allowed shapes quiet)
# plus the -json golden. -short skips the whole-module self-scan,
# which `make lint` already runs via ggvet itself.
lint-fixtures:
	$(GO) test -short ./internal/lint

test:
	$(GO) test ./...

# The race detector cannot see the simulated machine's cooperative
# scheduling (goroutines hand off via channels, one runnable at a
# time), but it guards the harness, CLIs, and test plumbing.
test-race:
	$(GO) test -race ./...

# Short fuzz pass over the external inputs — the trace CSV reader, the
# Config JSON wire codec and the distributed binary batch codec; extend
# FUZZTIME locally.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz='^FuzzReadCSV$$' -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run=^$$ -fuzz='^FuzzConfigJSON$$' -fuzztime=$(FUZZTIME) .
	$(GO) test -run=^$$ -fuzz='^FuzzBinaryFrame$$' -fuzztime=$(FUZZTIME) ./internal/dist

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Allocation-regression tripwire: headline benchmark with pooling off
# (GGPDES_NOPOOL=1) vs on; fails unless allocs/op still drop >= 2x
# with ns/op inside budget. Complements TestSteadyStateAllocsPerEvent
# (the marginal allocs/committed-event guard, part of `make test`).
bench-smoke:
	GO="$(GO)" sh scripts/bench_diff.sh -smoke

# Benchstat-style before/after table against a base git ref:
#   make bench-diff BASE=v0-seed
BASE ?= HEAD
bench-diff:
	GO="$(GO)" sh scripts/bench_diff.sh $(BASE)

# Regenerate the committed wall-clock benchmark record.
bench-json:
	GO="$(GO)" sh scripts/bench_json.sh

# Regenerate the committed single-process vs 2-worker throughput
# record with the batching A/B (BENCH_PR8.json).
dist-bench:
	GO="$(GO)" sh scripts/dist_bench.sh

# End-to-end serving smoke: ggserved on an ephemeral port, one PHOLD
# job to completion, identical resubmit served from cache, clean drain.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# Fault-tolerance smoke: ggserved with 100% crash injection on
# non-final attempts; every job must still complete by resuming from
# checkpoints, and the retry counters must show it happened.
chaos-smoke:
	GO="$(GO)" sh scripts/chaos_smoke.sh

# Clustered-serving smoke: three real peered ggserved replicas over a
# shared checkpoint root; duplicate submits answered by peer fill with
# one fleet-wide simulation, a deduplicated sweep streamed over SSE,
# and a SIGKILLed owner's job resumed by the submitting replica from
# the shared keyed checkpoint directory.
cluster-smoke:
	GO="$(GO)" sh scripts/cluster_smoke.sh

# Regenerate the committed fleet sweep-dedup record (BENCH_PR9.json):
# the 16-member / 8-duplicate sweep against 1 vs 3 replicas.
cluster-bench:
	GO="$(GO)" sh scripts/cluster_bench.sh

# Observability smoke: ggserved + pprof on ephemeral ports, one PHOLD
# job, then the whole surface end to end — /metrics covers every
# inventoried name, the series endpoint reports the horizon stats, and
# ggtop -once strictly re-parses the OpenMetrics page while rendering.
obs-smoke:
	GO="$(GO)" sh scripts/obs_smoke.sh

# Regenerate internal/telemetry/inventory.txt from the metric-name
# string literals ggvet's telemetryname pass collects. `make lint`
# fails if the committed file is stale.
inventory:
	$(GO) run ./cmd/ggvet -write-inventory

# Determinism smoke: the same seeded PHOLD config twice, then once
# more sharded across 2 worker processes; the full verbose report
# (results + telemetry histograms) and the series CSV must be
# byte-identical — the end-to-end form of ggvet's determinism pass.
determinism-smoke:
	GO="$(GO)" sh scripts/determinism_smoke.sh

# Distributed smoke: two real ggworker processes on ephemeral TCP
# ports, a checkpointing ggsim coordinator against them, and the same
# run in-process; reports, series, and shard checkpoint layout must
# all line up.
dist-smoke:
	GO="$(GO)" sh scripts/dist_smoke.sh

ci: build lint test test-race determinism-smoke dist-smoke serve-smoke chaos-smoke cluster-smoke obs-smoke bench-smoke
