# Developer entry points. Everything is stdlib-only Go; no tools to
# install beyond the toolchain itself.

GO ?= go

.PHONY: all build vet test test-race fuzz bench bench-smoke bench-diff bench-json serve-smoke chaos-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector cannot see the simulated machine's cooperative
# scheduling (goroutines hand off via channels, one runnable at a
# time), but it guards the harness, CLIs, and test plumbing.
test-race:
	$(GO) test -race ./...

# Short fuzz pass over the trace CSV reader; extend FUZZTIME locally.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/trace

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Allocation-regression tripwire: headline benchmark with pooling off
# (GGPDES_NOPOOL=1) vs on; fails unless allocs/op still drop >= 2x
# with ns/op inside budget. Complements TestSteadyStateAllocsPerEvent
# (the marginal allocs/committed-event guard, part of `make test`).
bench-smoke:
	GO="$(GO)" sh scripts/bench_diff.sh -smoke

# Benchstat-style before/after table against a base git ref:
#   make bench-diff BASE=v0-seed
BASE ?= HEAD
bench-diff:
	GO="$(GO)" sh scripts/bench_diff.sh $(BASE)

# Regenerate the committed wall-clock benchmark record.
bench-json:
	GO="$(GO)" sh scripts/bench_json.sh

# End-to-end serving smoke: ggserved on an ephemeral port, one PHOLD
# job to completion, identical resubmit served from cache, clean drain.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# Fault-tolerance smoke: ggserved with 100% crash injection on
# non-final attempts; every job must still complete by resuming from
# checkpoints, and the retry counters must show it happened.
chaos-smoke:
	GO="$(GO)" sh scripts/chaos_smoke.sh

ci: build vet test test-race serve-smoke chaos-smoke bench-smoke
