package ggpdes

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"path/filepath"
	"time"

	"ggpdes/internal/chaos"
	"ggpdes/internal/checkpoint"
	"ggpdes/internal/core"
	"ggpdes/internal/dist"
	"ggpdes/internal/gvt"
	"ggpdes/internal/machine"
	"ggpdes/internal/pq"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/tw"
)

// Distributed Time Warp: the coordinator side. RunDistributed executes
// one simulation with its LP shards hosted in worker processes,
// producing Results byte-identical to RunContext on the same Config.
//
// The coordinator runs the unmodified machine, scheduler and GVT
// algorithm over a hollow engine; every peer operation forwards
// synchronously to the worker hosting the real shard (internal/tw's
// control/data split), so the global interleaving of engine operations
// — and with it the trajectory — matches the in-process run by
// construction. The GVT algorithm's two cuts over the forwarded
// LocalMin/TakeMinSent reductions form a Mattern-style distributed GVT:
// cut one collects each shard's local minimum, cut two accounts for
// in-flight sends via the minimum-sent-timestamp reduction, and the
// coordinator publishes the combined minimum.

// WorkerDialer connects the coordinator to worker process shard,
// returning a stream that speaks internal/dist's framed protocol
// (typically a TCP connection to a ggworker process).
type WorkerDialer func(shard int) (io.ReadWriteCloser, error)

// DistOptions configures a distributed run.
type DistOptions struct {
	// Workers is the number of worker processes; Config.Threads must
	// divide evenly across them (the block LP-to-thread mapping shards
	// peers in contiguous ranges).
	Workers int
	// Dial connects to a worker shard, and is re-invoked to replace a
	// lost connection.
	Dial WorkerDialer
	// MaxAttempts bounds run attempts when a worker connection is lost:
	// each retry re-dials lost workers and resumes the current segment
	// from its start state (the victim from its per-shard checkpoint
	// when Config.Checkpoint has a directory). 0 or 1 means no retries.
	MaxAttempts int
	// RetryBackoff is the pause before a retry attempt.
	RetryBackoff time.Duration
	// CrashRate is the per-attempt probability of one injected worker
	// crash (seeded fault injection for recovery testing); the crash
	// point and victim derive deterministically from the config cache
	// key and attempt number, and the final attempt never crashes.
	CrashRate float64
	// ChaosSeed seeds crash planning (0 = Config.Seed).
	ChaosSeed uint64
	// Wire selects the hot-path frame encoding; the zero value is
	// dist.WireBinary. dist.WireJSON is the debugging escape hatch.
	Wire dist.Wire
	// NoBatch disables op coalescing, the coordinator read cache and
	// deferred inject relays, restoring the one-JSON-frame-per-op
	// data plane (the batching A/B baseline). The trajectory is
	// byte-identical either way — batching only removes round trips.
	NoBatch bool
}

// RunDistributed executes one simulation sharded across worker
// processes. The Config is the in-process one; chaos injection,
// tracing and external telemetry registries are in-process-only
// features and are rejected.
func RunDistributed(ctx context.Context, cfg Config, opts DistOptions) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dfail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
	}
	if opts.Workers < 1 {
		return nil, dfail("distributed run needs at least 1 worker, got %d", opts.Workers)
	}
	if opts.Dial == nil {
		return nil, dfail("distributed run needs a worker dialer")
	}
	if cfg.Threads%opts.Workers != 0 {
		return nil, dfail("%d threads do not shard evenly across %d workers", cfg.Threads, opts.Workers)
	}
	if cfg.Chaos != nil {
		return nil, dfail("chaos injection is in-process only (use DistOptions.CrashRate for worker faults)")
	}
	if cfg.Trace != nil {
		return nil, dfail("tracing is in-process only")
	}
	if cfg.Telemetry != nil {
		return nil, dfail("external telemetry registries are in-process only (worker registries must start empty)")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	d := &distRun{
		rs:         &runState{cfg: cfg},
		opts:       opts,
		workers:    opts.Workers,
		threadsPer: cfg.Threads / opts.Workers,
		conns:      make([]io.ReadWriteCloser, opts.Workers),
		attempt:    1,
	}
	d.maxAttempts = opts.MaxAttempts
	if d.maxAttempts < 1 {
		d.maxAttempts = 1
	}
	defer d.shutdownWorkers()
	return d.run(ctx)
}

// distRun drives one distributed run across its segments and retry
// attempts.
type distRun struct {
	rs   *runState
	opts DistOptions
	key  string

	workers    int
	threadsPer int
	conns      []io.ReadWriteCloser
	clients    []*dist.Client
	reg        *telemetry.Registry // current segment's registry (for the connected gauge)

	attempt     int
	maxAttempts int
	crashes     *chaos.WorkerCrashes

	// segPoints buffers the current segment attempt's series points;
	// they commit into rs.series only when the segment completes, so a
	// retried attempt leaves no trace.
	segPoints []SeriesPoint
}

// distSnap is the continuation state a retry must restore: everything a
// failed segment attempt may have mutated before its boundary commit.
type distSnap struct {
	engine            *tw.EngineState
	metrics           *telemetry.MetricsState
	rounds            uint64
	prevGVT, prevWall float64
}

func (d *distRun) run(ctx context.Context) (*Results, error) {
	rs := d.rs
	if so := rs.cfg.Series; so != nil {
		if so.Buffer != nil {
			rs.series = so.Buffer
		} else {
			rs.series = telemetry.NewSeries(so.Limit)
		}
	}
	key, err := rs.cfg.CacheKey()
	if err != nil {
		return nil, fmt.Errorf("ggpdes: %w", err)
	}
	d.key = key
	if d.opts.CrashRate > 0 {
		seed := d.opts.ChaosSeed
		if seed == 0 {
			seed = rs.cfg.Seed
		}
		d.crashes = chaos.NewWorkerCrashes(seed, d.opts.CrashRate)
	}
	for {
		snap := distSnap{
			engine:   rs.engine,
			metrics:  rs.metrics,
			rounds:   rs.rounds,
			prevGVT:  rs.prevGVT,
			prevWall: rs.prevWall,
		}
		res, err := d.segment(ctx)
		if err != nil {
			if !errors.Is(err, dist.ErrWorkerLost) || d.attempt >= d.maxAttempts {
				return nil, err
			}
			d.attempt++
			rs.engine, rs.metrics = snap.engine, snap.metrics
			rs.rounds, rs.prevGVT, rs.prevWall = snap.rounds, snap.prevGVT, snap.prevWall
			d.segPoints = d.segPoints[:0]
			if d.opts.RetryBackoff > 0 {
				t := time.NewTimer(d.opts.RetryBackoff)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return nil, fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
				}
			}
			continue
		}
		if res != nil {
			return res, nil
		}
	}
}

// segment runs one segment attempt: nil Results and nil error means a
// checkpoint boundary was committed and the run continues.
func (d *distRun) segment(ctx context.Context) (*Results, error) {
	rs := d.rs
	seg, b, err := d.buildSegment()
	if err != nil {
		return nil, err
	}
	ictx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	b.cancel = cancel
	runErr := seg.m.RunContext(ictx)
	if b.err != nil {
		// A failed forwarded operation cancels the machine and feeds the
		// engine inert results; whatever RunContext concluded, the
		// attempt is void.
		return nil, b.err
	}
	if runErr != nil {
		if cerr := ctx.Err(); cerr != nil && errors.Is(runErr, cerr) {
			if errors.Is(cerr, context.DeadlineExceeded) {
				return nil, fmt.Errorf("%w: %w", ErrDeadline, runErr)
			}
			return nil, fmt.Errorf("%w: %w", ErrCancelled, runErr)
		}
		return nil, fmt.Errorf("ggpdes: %s/%s distributed run failed: %w", rs.cfg.System, rs.cfg.GVT, runErr)
	}
	if seg.eng.Paused() {
		return nil, d.boundary(seg, b)
	}
	return d.finish(seg, b)
}

// buildSegment assembles the coordinator's machine, hollow engine,
// runner and registry, and (re)initializes every worker shard for the
// next segment.
func (d *distRun) buildSegment() (*segment, *remoteBridge, error) {
	rs := d.rs
	cfg := rs.cfg
	mcfg, err := cfg.Machine.build()
	if err != nil {
		return nil, nil, err
	}
	mcfg.StartTick = rs.startTick
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, nil, err
	}
	var adaptive *gvt.Adaptive
	if a := cfg.AdaptiveGVT; a != nil {
		adaptive = &gvt.Adaptive{
			MinFrequency:               a.MinFrequency,
			MaxFrequency:               a.MaxFrequency,
			TargetUncommittedPerThread: a.TargetUncommittedPerThread,
		}
	}
	reg := telemetry.NewRegistry()
	if rs.metrics != nil {
		reg.Import(*rs.metrics)
		rs.metrics = nil
	}
	d.reg = reg
	m.SetTelemetry(reg)
	model, err := cfg.Model.build(cfg.Threads, cfg.EndTime)
	if err != nil {
		return nil, nil, err
	}

	segState := rs.engine
	rs.engine = nil

	// Late-bound hooks, exactly as the in-process buildSegment.
	var eng *tw.Engine
	var runner *core.Runner
	var progress, sample func(tw.VT)
	every := 0
	if rs.checkpointing() {
		every = rs.cfg.Checkpoint.Every
	}
	crashArmed, victim, crashAt := d.planCrash(cfg.EndTime)
	segPubs := 0
	onGVT := func(v tw.VT) {
		rs.rounds++
		if sample != nil {
			sample(v)
		}
		if progress != nil {
			progress(v)
		}
		if crashArmed && float64(v) >= crashAt {
			crashArmed = false
			if c := d.conns[victim]; c != nil {
				c.Close()
			}
		}
		if every > 0 && float64(v) < cfg.EndTime {
			segPubs++
			if segPubs >= every {
				eng.Pause()
			}
		}
	}
	twCfg := tw.Config{
		NumThreads:       cfg.Threads,
		Model:            model,
		EndTime:          cfg.EndTime,
		Seed:             cfg.Seed,
		BatchSize:        cfg.BatchSize,
		LPsPerKP:         cfg.LPsPerKP,
		QueueKind:        pq.Kind(cfg.Queue),
		StateSaving:      tw.SavePolicy(cfg.StateSaving),
		LazyCancellation: cfg.LazyCancellation,
		OptimismWindow:   cfg.OptimismWindow,
		DisablePooling:   cfg.DisablePooling,
		Telemetry:        reg,
		OnGVT:            onGVT,
	}
	if segState != nil {
		eng, err = tw.NewEngineFromState(twCfg, segState)
	} else {
		eng, err = tw.NewEngine(twCfg)
	}
	if err != nil {
		return nil, nil, err
	}
	b := &remoteBridge{
		d:           d,
		eng:         eng,
		batch:       !d.opts.NoBatch,
		wire:        d.opts.Wire,
		prefetch:    core.System(cfg.System) != core.Baseline,
		readsCached: reg.Counter(dist.MetricReadsCached),
	}
	if b.batch {
		b.pending = make([][]tw.WireEvent, d.workers)
		b.cache = make([]readCache, d.workers)
		for i := range b.cache {
			b.cache[i] = newReadCache(d.threadsPer)
		}
	}
	eng.HollowAll(b)

	if err := d.initWorkers(reg, segState); err != nil {
		return nil, nil, err
	}
	b.clients = d.clients

	gvtFreq := cfg.GVTFrequency
	if rs.gvtFreq > 0 {
		gvtFreq = rs.gvtFreq
	}
	distRounds := reg.Counter(dist.MetricGVTRounds)
	runner, err = core.NewRunner(core.Config{
		Machine:              m,
		Engine:               eng,
		System:               core.System(cfg.System),
		GVTKind:              gvt.Kind(cfg.GVT),
		GVTFrequency:         gvtFreq,
		ZeroCounterThreshold: cfg.ZeroCounterThreshold,
		Affinity:             core.Affinity(cfg.Affinity),
		GVTAdaptive:          adaptive,
		Telemetry:            reg,
		GVTOnCut: func(cut int, round uint64) {
			// Cut two closing is one completed Mattern round: every
			// shard's local minimum and in-flight send minimum have been
			// reduced through the wire.
			if cut == 2 {
				distRounds.Inc()
			}
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if rs.series != nil {
		if rs.prevGVT == 0 && float64(eng.GVT()) > 0 {
			rs.prevGVT = float64(eng.GVT())
			rs.prevWall = m.WallSeconds()
		}
		sample = func(v tw.VT) {
			if b.err != nil {
				return
			}
			pt := telemetry.SeriesPoint{
				Round:         int(rs.rounds),
				GVT:           float64(v),
				WallSeconds:   m.WallSeconds(),
				ActiveThreads: runner.NumActive(),
			}
			tw.FillSeriesTotals(&pt, eng.TotalStats(), eng.UncommittedEvents())
			pt.ThreadLVTs = make([]float64, cfg.Threads)
			var hits, misses uint64
			queued := 0
			for w := 0; w < d.workers; w++ {
				resp := b.roundTrip(w, &dist.OpRequest{Op: dist.OpSeriesProbe}, nil, true)
				if b.err != nil {
					return
				}
				for i, pr := range resp.Probes {
					pt.ThreadLVTs[w*d.threadsPer+i] = pr.LVT
					queued += pr.Queued
					hits += pr.PoolHits
					misses += pr.PoolMisses
				}
			}
			tw.FinishSeriesPoint(&pt, queued, hits, misses)
			pt.AdvanceVT = pt.GVT - rs.prevGVT
			if dt := pt.WallSeconds - rs.prevWall; dt > 0 {
				pt.AdvanceRate = pt.AdvanceVT / dt
			}
			rs.prevGVT, rs.prevWall = pt.GVT, pt.WallSeconds
			d.segPoints = append(d.segPoints, pt)
		}
	}
	if p := cfg.Progress; p != nil {
		pEvery := p.Every
		if pEvery <= 0 {
			pEvery = 0.1
		}
		step := pEvery * cfg.EndTime
		next := step
		progress = func(v tw.VT) {
			g := float64(v)
			if g < next && g < cfg.EndTime {
				return
			}
			next = step * (math.Floor(g/step) + 1)
			s := eng.TotalStats()
			info := ProgressInfo{
				GVT:             g,
				EndTime:         cfg.EndTime,
				CommittedEvents: s.Committed,
				ProcessedEvents: s.Processed,
				ActiveThreads:   runner.NumActive(),
				Threads:         cfg.Threads,
				GVTRounds:       rs.gvtRounds(runner),
				WallSeconds:     m.WallSeconds(),
			}
			if info.WallSeconds > 0 {
				info.CommittedEventRate = float64(info.CommittedEvents) / info.WallSeconds
			}
			if info.ProcessedEvents > 0 {
				info.Efficiency = float64(info.CommittedEvents) / float64(info.ProcessedEvents)
			}
			if p.W != nil {
				fmt.Fprintln(p.W, info)
			}
			if p.Func != nil {
				p.Func(info)
			}
		}
	}
	m.SetOnCancel(eng.Cancel)
	return &segment{mcfg: mcfg, m: m, eng: eng, runner: runner, reg: reg}, b, nil
}

// initWorkers (re)dials lost workers and initializes every shard for
// the coming segment. A redialed worker restores from its per-shard
// checkpoint file when one exists; everyone else restores from the
// coordinator's in-memory segment-start state (the two are the same
// projection, persisted vs. not).
func (d *distRun) initWorkers(reg *telemetry.Registry, segState *tw.EngineState) error {
	rs := d.rs
	cfgJSON, err := json.Marshal(rs.cfg)
	if err != nil {
		return fmt.Errorf("ggpdes: encoding config for workers: %w", err)
	}
	d.clients = make([]*dist.Client, d.workers)
	for w := 0; w < d.workers; w++ {
		lo, hi := w*d.threadsPer, (w+1)*d.threadsPer
		redialed := d.conns[w] == nil
		if redialed {
			c, err := d.opts.Dial(w)
			if err != nil {
				return fmt.Errorf("%w: dialing worker %d: %v", dist.ErrWorkerLost, w, err)
			}
			d.conns[w] = c
		}
		d.clients[w] = dist.NewClient(d.conns[w], reg)
		st := shardStateFor(segState, lo, hi)
		if redialed && rs.checkpointing() && rs.cfg.Checkpoint.Dir != "" && rs.segments > 0 {
			st, err = d.readShardFile(w)
			if err != nil {
				return err
			}
		}
		init := &dist.InitMsg{
			Config:   cfgJSON,
			CacheKey: d.key,
			Shard:    w,
			Workers:  d.workers,
			Lo:       lo,
			Hi:       hi,
			State:    st,
		}
		if err := d.clients[w].Call(dist.KindInit, init, nil); err != nil {
			if !dist.IsRemote(err) {
				d.markLost(w)
			}
			return err
		}
	}
	reg.Gauge(dist.MetricWorkersConnected).Set(float64(d.workers))
	return nil
}

// planCrash decides whether this attempt injects a worker crash, and
// where. The victim and crash point derive from the cache key and
// attempt number, so a run is reproducible given the same options; the
// final permitted attempt never crashes.
func (d *distRun) planCrash(endTime float64) (armed bool, victim int, crashAt float64) {
	if d.crashes == nil || d.attempt >= d.maxAttempts {
		return false, 0, 0
	}
	crash, frac := d.crashes.Plan(d.key, d.attempt)
	if !crash {
		return false, 0, 0
	}
	h := fnv.New64a()
	io.WriteString(h, d.key)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(d.attempt))
	h.Write(buf[:])
	return true, int(h.Sum64() % uint64(d.workers)), frac * endTime
}

// markLost closes and forgets a worker connection and downgrades the
// connected gauge; the next buildSegment redials.
func (d *distRun) markLost(w int) {
	if c := d.conns[w]; c != nil {
		c.Close()
		d.conns[w] = nil
	}
	connected := 0
	for _, c := range d.conns {
		if c != nil {
			connected++
		}
	}
	d.reg.Gauge(dist.MetricWorkersConnected).Set(float64(connected))
}

// shutdownWorkers asks every still-connected worker to exit cleanly
// and closes the connections. Best-effort: a worker that does not
// acknowledge is simply cut off.
func (d *distRun) shutdownWorkers() {
	for w, c := range d.conns {
		if c == nil {
			continue
		}
		if d.clients != nil && d.clients[w] != nil {
			_ = d.clients[w].Call(dist.KindShutdown, nil, nil)
		}
		c.Close()
		d.conns[w] = nil
	}
}

// readShardFile restores one worker's slice of the last committed
// checkpoint from its per-shard file.
func (d *distRun) readShardFile(w int) (*tw.EngineState, error) {
	path := filepath.Join(d.rs.cfg.Checkpoint.Dir, checkpoint.ShardFileName(d.rs.segments, w))
	snap, err := checkpoint.Read(path)
	if err != nil {
		return nil, err
	}
	if snap.CacheKey != d.key {
		return nil, fmt.Errorf("%w: shard checkpoint %s recorded cache key %s, run has %s",
			ErrCheckpointCorrupt, path, snap.CacheKey, d.key)
	}
	return snap.Engine, nil
}

// shardStateFor projects a full engine state onto one shard: pending
// events outside [lo, hi) are zeroed (their owning workers hold them),
// everything else — LP records, sequence counter, statistics — rides
// along whole, keeping worker engines in exact global correspondence.
func shardStateFor(est *tw.EngineState, lo, hi int) *tw.EngineState {
	if est == nil {
		return nil
	}
	out := *est
	out.Pending = make([][]tw.EventRecord, len(est.Pending))
	for i := lo; i < hi && i < len(est.Pending); i++ {
		out.Pending[i] = est.Pending[i]
	}
	return &out
}

// boundary commits a paused segment: distributed quiesce and capture,
// worker metrics folded into the coordinator registry, the standard
// snapshot round-trip, and per-shard checkpoint files alongside the
// full snapshot.
func (d *distRun) boundary(seg *segment, b *remoteBridge) error {
	rs := d.rs
	est, err := d.captureDistributed(seg, b)
	if err != nil {
		return err
	}
	if err := d.foldWorkerMetrics(seg, b); err != nil {
		return err
	}
	seg.eng.FlushPoolStats()
	if rs.series != nil {
		for _, pt := range d.segPoints {
			rs.series.Append(pt)
		}
	}
	d.segPoints = d.segPoints[:0]
	if err := rs.persistAndReload(seg, est); err != nil {
		return err
	}
	if dir := rs.cfg.Checkpoint.Dir; dir != "" {
		if err := d.writeShardFiles(dir, est); err != nil {
			return err
		}
	}
	return nil
}

// captureDistributed reproduces the in-process quiesce/capture cycle
// across workers: the three quiesce stages loop over workers in peer
// order with outbox relays between passes (an interleaving identical
// to the in-process fixpoint), then each shard's capture overlays into
// one full-width EngineState under the coordinator's master scalars.
func (d *distRun) captureDistributed(seg *segment, b *remoteBridge) (*tw.EngineState, error) {
	for {
		progress := false
		for w := 0; w < d.workers; w++ {
			resp := b.roundTrip(w, &dist.OpRequest{Op: dist.OpQuiescePass}, nil, true)
			if b.err != nil {
				return nil, b.err
			}
			if resp.Flag {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for w := 0; w < d.workers; w++ {
		b.roundTrip(w, &dist.OpRequest{Op: dist.OpQuiesceDump}, nil, true)
		if b.err != nil {
			return nil, b.err
		}
	}
	for {
		progress := false
		for w := 0; w < d.workers; w++ {
			resp := b.roundTrip(w, &dist.OpRequest{Op: dist.OpQuiesceFlush}, nil, true)
			if b.err != nil {
				return nil, b.err
			}
			if resp.Flag {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if n := seg.eng.UncommittedEvents(); n != 0 {
		return nil, fmt.Errorf("ggpdes: distributed quiesce left %d uncommitted events", n)
	}
	env := seg.eng.EnvelopeOut()
	est := &tw.EngineState{
		Seq:             env.Seq,
		GVT:             seg.eng.GVT(),
		PeakUncommitted: seg.eng.PeakUncommittedEvents(),
		LPs:             make([]tw.LPRecord, seg.eng.NumLPs()),
		Pending:         make([][]tw.EventRecord, d.rs.cfg.Threads),
		PeerStats:       make([]tw.PeerStats, d.rs.cfg.Threads),
	}
	for w := 0; w < d.workers; w++ {
		resp := b.roundTrip(w, &dist.OpRequest{Op: dist.OpCaptureShard}, nil, true)
		if b.err != nil {
			return nil, b.err
		}
		sh := resp.Shard
		if sh == nil {
			return nil, fmt.Errorf("ggpdes: worker %d returned no shard capture", w)
		}
		copy(est.LPs[sh.LPLo:], sh.LPs)
		for i, pend := range sh.Pending {
			est.Pending[sh.PeerLo+i] = pend
		}
	}
	for i, p := range seg.eng.Peers() {
		est.PeerStats[i] = p.Stats
	}
	return est, nil
}

// foldWorkerMetrics flushes worker pools and imports every worker
// registry into the coordinator's, in worker order, then re-asserts
// the master peak gauge (gauge import is last-wins; only the
// coordinator's peak is globally correct).
func (d *distRun) foldWorkerMetrics(seg *segment, b *remoteBridge) error {
	for w := 0; w < d.workers; w++ {
		b.roundTrip(w, &dist.OpRequest{Op: dist.OpFlushPoolStats}, nil, true)
		if b.err != nil {
			return b.err
		}
	}
	for w := 0; w < d.workers; w++ {
		resp := b.roundTrip(w, &dist.OpRequest{Op: dist.OpMetrics}, nil, true)
		if b.err != nil {
			return b.err
		}
		if resp.Metrics != nil {
			seg.reg.Import(*resp.Metrics)
		}
	}
	seg.reg.Gauge(tw.MetricUncommittedPeak).Set(float64(seg.eng.PeakUncommittedEvents()))
	return nil
}

// writeShardFiles persists each worker's slice of the just-committed
// checkpoint next to the full snapshot, so a redialed worker can
// restore without the coordinator resending its state in memory.
func (d *distRun) writeShardFiles(dir string, est *tw.EngineState) error {
	rs := d.rs
	cfgJSON, err := json.Marshal(rs.cfg)
	if err != nil {
		return fmt.Errorf("ggpdes: %w", err)
	}
	for w := 0; w < d.workers; w++ {
		lo, hi := w*d.threadsPer, (w+1)*d.threadsPer
		snap := &checkpoint.Snapshot{
			Config:   cfgJSON,
			CacheKey: d.key,
			Segments: rs.segments,
			Engine:   shardStateFor(est, lo, hi),
		}
		data, err := checkpoint.Encode(snap)
		if err != nil {
			return fmt.Errorf("ggpdes: %w", err)
		}
		if _, err := checkpoint.WriteNamed(dir, checkpoint.ShardFileName(rs.segments, w), data); err != nil {
			return fmt.Errorf("ggpdes: %w", err)
		}
	}
	return nil
}

// finish runs the end-of-run sweep — worker invariants, pool flushes,
// metrics imports — shuts the workers down and assembles Results via
// the shared in-process path.
func (d *distRun) finish(seg *segment, b *remoteBridge) (*Results, error) {
	rs := d.rs
	for w := 0; w < d.workers; w++ {
		b.roundTrip(w, &dist.OpRequest{Op: dist.OpCheckInvariants}, nil, true)
		if b.err != nil {
			if dist.IsRemote(b.err) {
				return nil, fmt.Errorf("ggpdes: engine invariant violated: %w", b.err)
			}
			return nil, b.err
		}
	}
	if err := d.foldWorkerMetrics(seg, b); err != nil {
		return nil, err
	}
	if rs.series != nil {
		for _, pt := range d.segPoints {
			rs.series.Append(pt)
		}
	}
	d.segPoints = nil
	d.shutdownWorkers()
	return rs.finish(seg)
}

// remoteBridge is the coordinator's tw.RemoteTransport. In the default
// batched mode, consecutive operations against the same worker coalesce
// into one frame (the fused methods), pure reads repeat from a
// coordinator-side cache, and cross-shard relays queue until the next
// frame to their destination — all without changing the order in which
// the worker observes mutations, so the trajectory stays byte-identical
// to the synchronous plane. With NoBatch every operation is one
// synchronous JSON round trip (the PR7 wire). Either way each call
// threads the engine-global envelope, mirrors worker peer statistics,
// relays cross-shard traffic and charges the caller's simulated CPU;
// a transport failure cancels the machine and feeds inert results
// until the run loop observes the error.
type remoteBridge struct {
	d       *distRun
	eng     *tw.Engine
	clients []*dist.Client
	cancel  context.CancelCauseFunc
	err     error

	batch    bool      // op coalescing + read cache + deferred relays
	wire     dist.Wire // hot-path frame encoding (batched mode only)
	prefetch bool      // piggyback HasExecutableWork on DrainProcess

	// pending holds queued cross-shard relays per destination worker;
	// they ride at the head of the next frame to that worker, so the
	// destination's input-queue order still matches production order.
	pending [][]tw.WireEvent
	// cache memoizes pure per-peer reads per worker; any mutation of a
	// worker (op or queued inject) invalidates that worker wholesale.
	cache       []readCache
	readsCached *telemetry.Counter

	reqs []dist.OpRequest // scratch: op list under construction
	ops  []dist.OpRequest // scratch: frame ops with inject flush prepended
}

// Cache validity bits, one per cached read kind.
const (
	ckHasWork = 1 << iota
	ckHasExec
	ckInputSize
	ckRemoteMin
	ckPeekMinSent
)

// readCache memoizes one worker's pure per-peer reads between
// mutations. Every entry is filled from an actual wire read — the
// worker already performed the read's (idempotent) heap cleanup at the
// correct logical point, so replaying the answer locally is a provable
// worker-side no-op. HasExecutableWork additionally depends on the GVT
// horizon, so its entries are GVT-stamped and only served at the same
// GVT they were read at.
type readCache struct {
	valid      []uint8
	hasWork    []bool
	hasExec    []bool
	hasExecGVT []tw.VT
	inputSize  []int
	remoteMin  []tw.VT
	peekMin    []tw.VT
}

func newReadCache(n int) readCache {
	return readCache{
		valid:      make([]uint8, n),
		hasWork:    make([]bool, n),
		hasExec:    make([]bool, n),
		hasExecGVT: make([]tw.VT, n),
		inputSize:  make([]int, n),
		remoteMin:  make([]tw.VT, n),
		peekMin:    make([]tw.VT, n),
	}
}

// invalidate drops every cached read for worker w.
func (b *remoteBridge) invalidate(w int) {
	c := &b.cache[w]
	for i := range c.valid {
		c.valid[i] = 0
	}
}

// fill caches one read result for worker w.
func (b *remoteBridge) fill(w int, op *dist.OpRequest, r *dist.OpResult) {
	c := &b.cache[w]
	idx := op.Peer % b.d.threadsPer
	switch op.Op {
	case dist.OpHasWork:
		c.hasWork[idx] = r.Flag
		c.valid[idx] |= ckHasWork
	case dist.OpHasExecWork:
		c.hasExec[idx], c.hasExecGVT[idx] = r.Flag, b.eng.GVT()
		c.valid[idx] |= ckHasExec
	case dist.OpInputSize:
		c.inputSize[idx] = r.N
		c.valid[idx] |= ckInputSize
	case dist.OpRemoteMin:
		c.remoteMin[idx] = tw.VT(r.VT)
		c.valid[idx] |= ckRemoteMin
	case dist.OpPeekMinSent:
		c.peekMin[idx] = tw.VT(r.VT)
		c.valid[idx] |= ckPeekMinSent
	case dist.OpDrain, dist.OpProcessBatch, dist.OpLocalMin,
		dist.OpTakeMinSent, dist.OpFossilCollect, dist.OpInject,
		dist.OpQuiescePass, dist.OpQuiesceDump, dist.OpQuiesceFlush,
		dist.OpCaptureShard, dist.OpCheckInvariants, dist.OpFlushPoolStats,
		dist.OpMetrics, dist.OpSeriesProbe:
		// Mutating and unbatched ops cache nothing.
	}
}

func (b *remoteBridge) fail(w int, err error) {
	if b.err == nil {
		b.err = err
		if b.cancel != nil {
			b.cancel(err)
		}
	}
	if !dist.IsRemote(err) {
		b.d.markLost(w)
	}
}

// inertResponse is what a failed transport hands back: zero counts,
// false flags, and +Inf virtual times, so the GVT layer winds the run
// down monotonically while cancellation propagates.
func inertResponse() *dist.OpResponse {
	return &dist.OpResponse{VT: dist.WireVT(math.Inf(1))}
}

// sendOps ships one coalesced frame to worker w: any queued inject
// relays ride at the head, then ops, with the engine envelope attached
// iff a non-inject op is present (an inject-only flush must not echo a
// stale envelope back). Results come back positionally: charged cycles
// mirror onto cpu in op order, pure reads refill the cache (after any
// mutation in the frame invalidates it), and the worker's outbox is
// queued toward its destinations. Returns one result per op; inert
// results after a failure.
func (b *remoteBridge) sendOps(w int, ops []dist.OpRequest, cpu tw.CPU) []dist.OpResult {
	inert := func() []dist.OpResult {
		out := make([]dist.OpResult, len(ops))
		for i := range out {
			out[i].VT = dist.WireVT(math.Inf(1))
		}
		return out
	}
	if b.err != nil {
		return inert()
	}
	m := dist.BatchMsg{Ops: ops}
	head := 0
	if evs := b.pending[w]; len(evs) > 0 {
		head = 1
		b.ops = append(b.ops[:0], dist.OpRequest{Op: dist.OpInject, Events: evs})
		b.ops = append(b.ops, ops...)
		m.Ops = b.ops
	}
	if len(ops) > 0 {
		env := b.eng.EnvelopeOut()
		m.Env = &env
	}
	reply, err := b.clients[w].CallBatch(b.wire, &m)
	if head == 1 {
		b.pending[w] = b.pending[w][:0]
	}
	if err != nil {
		b.fail(w, err)
		return inert()
	}
	if len(reply.Results) != len(m.Ops) {
		b.fail(w, fmt.Errorf("%w: %d results for %d ops from worker %d",
			dist.ErrWorkerLost, len(reply.Results), len(m.Ops), w))
		return inert()
	}
	if m.Env != nil {
		if reply.Env == nil || len(reply.Stats) != b.d.threadsPer {
			b.fail(w, fmt.Errorf("%w: malformed batch response from worker %d", dist.ErrWorkerLost, w))
			return inert()
		}
		b.eng.ApplyEnvelope(*reply.Env)
		lo := w * b.d.threadsPer
		for i, s := range reply.Stats {
			p := b.eng.Peer(lo + i)
			// GVT accounting is coordinator-side (the gvt layer charges
			// hollow peers directly); worker copies are stale zeros.
			gc, gr := p.Stats.GVTCycles, p.Stats.GVTRounds
			p.Stats = s
			p.Stats.GVTCycles, p.Stats.GVTRounds = gc, gr
		}
	}
	mutated := head == 1
	for i := range ops {
		if !dist.PureRead(ops[i].Op) {
			mutated = true
		}
	}
	if mutated {
		b.invalidate(w)
	}
	results := reply.Results[head:]
	for i := range results {
		r := &results[i]
		if cpu != nil && r.Worked {
			cpu.Work(r.Cycles)
		}
		b.fill(w, &ops[i], r)
	}
	if len(reply.Outbox) > 0 {
		b.relay(reply.Outbox)
	}
	return results
}

// flushInjects drains worker w's queued inject relays as one
// envelope-less frame before a non-batchable round trip.
func (b *remoteBridge) flushInjects(w int) {
	if len(b.pending[w]) > 0 {
		b.sendOps(w, nil, nil)
	}
}

// batchOne ships a single op as its own frame (still the batched data
// plane: binary encoding, inject flush, cache refill).
func (b *remoteBridge) batchOne(req dist.OpRequest, cpu tw.CPU) dist.OpResult {
	b.reqs = append(b.reqs[:0], req)
	return b.sendOps(req.Peer/b.d.threadsPer, b.reqs, cpu)[0]
}

// roundTrip performs one forwarded operation against worker w. With
// envelope set, the coordinator's engine-global scalars thread through
// the call and the worker's updated scalars and peer statistics are
// mirrored back; OpInject is the one envelope-less operation. In
// batched mode this is the non-batchable-op path (quiesce, capture,
// metrics, probes): queued injects flush first so the worker sees them
// in order, and mutating ops invalidate the read cache.
func (b *remoteBridge) roundTrip(w int, req *dist.OpRequest, cpu tw.CPU, envelope bool) *dist.OpResponse {
	if b.err != nil {
		return inertResponse()
	}
	if b.batch {
		b.flushInjects(w)
		if b.err != nil {
			return inertResponse()
		}
		if !dist.PureRead(req.Op) {
			b.invalidate(w)
		}
	}
	if envelope {
		env := b.eng.EnvelopeOut()
		req.Env = &env
	}
	var resp dist.OpResponse
	if err := b.clients[w].Call(dist.KindOp, req, &resp); err != nil {
		b.fail(w, err)
		return inertResponse()
	}
	if envelope {
		if resp.Env == nil || len(resp.Stats) != b.d.threadsPer {
			b.fail(w, fmt.Errorf("%w: malformed %v response from worker %d", dist.ErrWorkerLost, req.Op, w))
			return inertResponse()
		}
		b.eng.ApplyEnvelope(*resp.Env)
		lo := w * b.d.threadsPer
		for i, s := range resp.Stats {
			p := b.eng.Peer(lo + i)
			// GVT accounting is coordinator-side (the gvt layer charges
			// hollow peers directly); worker copies are stale zeros.
			gc, gr := p.Stats.GVTCycles, p.Stats.GVTRounds
			p.Stats = s
			p.Stats.GVTCycles, p.Stats.GVTRounds = gc, gr
		}
	}
	if len(resp.Outbox) > 0 {
		b.relay(resp.Outbox)
		if b.err != nil {
			return inertResponse()
		}
	}
	if cpu != nil && resp.Worked {
		cpu.Work(resp.Cycles)
	}
	return &resp
}

// relay forwards cross-shard wire events to their destination workers
// in production order, batching maximal runs with the same destination
// into one OpInject. In batched mode the run is queued and delivered at
// the head of the next frame to that worker — since only per-
// destination order is observable (each worker sees its own input
// stream), deferring delivery to the moment before the worker next
// acts is indistinguishable from immediate delivery. In synchronous
// mode the inject is its own round trip, completing before the next
// forwarded operation.
func (b *remoteBridge) relay(events []tw.WireEvent) {
	lps := b.eng.LPs()
	for i := 0; i < len(events); {
		w := lps[events[i].Dst].Owner / b.d.threadsPer
		j := i + 1
		for j < len(events) && lps[events[j].Dst].Owner/b.d.threadsPer == w {
			j++
		}
		run := events[i:j]
		if b.batch {
			b.pending[w] = append(b.pending[w], run...)
			b.invalidate(w)
		} else {
			b.roundTrip(w, &dist.OpRequest{Op: dist.OpInject, Events: run}, nil, false)
			if b.err != nil {
				return
			}
		}
		b.clients[w].CountRelayed(run)
		i = j
	}
}

func (b *remoteBridge) opPeer(peer int, req *dist.OpRequest, cpu tw.CPU) *dist.OpResponse {
	req.Peer = peer
	return b.roundTrip(peer/b.d.threadsPer, req, cpu, true)
}

// InputSize implements tw.RemoteTransport.
func (b *remoteBridge) InputSize(peer int) int {
	if b.batch {
		w, idx := peer/b.d.threadsPer, peer%b.d.threadsPer
		if c := &b.cache[w]; c.valid[idx]&ckInputSize != 0 {
			b.readsCached.Inc()
			return c.inputSize[idx]
		}
		return b.batchOne(dist.OpRequest{Op: dist.OpInputSize, Peer: peer}, nil).N
	}
	return b.opPeer(peer, &dist.OpRequest{Op: dist.OpInputSize}, nil).N
}

// HasWork implements tw.RemoteTransport.
func (b *remoteBridge) HasWork(peer int) bool {
	if b.batch {
		w, idx := peer/b.d.threadsPer, peer%b.d.threadsPer
		if c := &b.cache[w]; c.valid[idx]&ckHasWork != 0 {
			b.readsCached.Inc()
			return c.hasWork[idx]
		}
		return b.batchOne(dist.OpRequest{Op: dist.OpHasWork, Peer: peer}, nil).Flag
	}
	return b.opPeer(peer, &dist.OpRequest{Op: dist.OpHasWork}, nil).Flag
}

// HasExecutableWork implements tw.RemoteTransport. Cached entries are
// only good at the GVT horizon they were read at.
func (b *remoteBridge) HasExecutableWork(peer int) bool {
	if b.batch {
		w, idx := peer/b.d.threadsPer, peer%b.d.threadsPer
		if c := &b.cache[w]; c.valid[idx]&ckHasExec != 0 && c.hasExecGVT[idx] == b.eng.GVT() {
			b.readsCached.Inc()
			return c.hasExec[idx]
		}
		return b.batchOne(dist.OpRequest{Op: dist.OpHasExecWork, Peer: peer}, nil).Flag
	}
	return b.opPeer(peer, &dist.OpRequest{Op: dist.OpHasExecWork}, nil).Flag
}

// Drain implements tw.RemoteTransport.
func (b *remoteBridge) Drain(peer int, cpu tw.CPU) int {
	if b.batch {
		return b.batchOne(dist.OpRequest{Op: dist.OpDrain, Peer: peer}, cpu).N
	}
	return b.opPeer(peer, &dist.OpRequest{Op: dist.OpDrain}, cpu).N
}

// ProcessBatch implements tw.RemoteTransport.
func (b *remoteBridge) ProcessBatch(peer int, cpu tw.CPU) int {
	if b.batch {
		return b.batchOne(dist.OpRequest{Op: dist.OpProcessBatch, Peer: peer}, cpu).N
	}
	return b.opPeer(peer, &dist.OpRequest{Op: dist.OpProcessBatch}, cpu).N
}

// LocalMin implements tw.RemoteTransport. Never cached: it charges the
// caller's simulated CPU, so every call must reach the worker.
func (b *remoteBridge) LocalMin(peer int, cpu tw.CPU) tw.VT {
	if b.batch {
		return tw.VT(b.batchOne(dist.OpRequest{Op: dist.OpLocalMin, Peer: peer}, cpu).VT)
	}
	return tw.VT(b.opPeer(peer, &dist.OpRequest{Op: dist.OpLocalMin}, cpu).VT)
}

// RemoteMin implements tw.RemoteTransport.
func (b *remoteBridge) RemoteMin(peer int) tw.VT {
	if b.batch {
		w, idx := peer/b.d.threadsPer, peer%b.d.threadsPer
		if c := &b.cache[w]; c.valid[idx]&ckRemoteMin != 0 {
			b.readsCached.Inc()
			return c.remoteMin[idx]
		}
		return tw.VT(b.batchOne(dist.OpRequest{Op: dist.OpRemoteMin, Peer: peer}, nil).VT)
	}
	return tw.VT(b.opPeer(peer, &dist.OpRequest{Op: dist.OpRemoteMin}, nil).VT)
}

// TakeMinSent implements tw.RemoteTransport.
func (b *remoteBridge) TakeMinSent(peer int) tw.VT {
	if b.batch {
		return tw.VT(b.batchOne(dist.OpRequest{Op: dist.OpTakeMinSent, Peer: peer}, nil).VT)
	}
	return tw.VT(b.opPeer(peer, &dist.OpRequest{Op: dist.OpTakeMinSent}, nil).VT)
}

// PeekMinSent implements tw.RemoteTransport.
func (b *remoteBridge) PeekMinSent(peer int) tw.VT {
	if b.batch {
		w, idx := peer/b.d.threadsPer, peer%b.d.threadsPer
		if c := &b.cache[w]; c.valid[idx]&ckPeekMinSent != 0 {
			b.readsCached.Inc()
			return c.peekMin[idx]
		}
		return tw.VT(b.batchOne(dist.OpRequest{Op: dist.OpPeekMinSent, Peer: peer}, nil).VT)
	}
	return tw.VT(b.opPeer(peer, &dist.OpRequest{Op: dist.OpPeekMinSent}, nil).VT)
}

// FossilCollect implements tw.RemoteTransport.
func (b *remoteBridge) FossilCollect(peer int, cpu tw.CPU, gvtAt tw.VT) int {
	if b.batch {
		return b.batchOne(dist.OpRequest{Op: dist.OpFossilCollect, Peer: peer, GVT: dist.WireVT(gvtAt)}, cpu).N
	}
	return b.opPeer(peer, &dist.OpRequest{Op: dist.OpFossilCollect, GVT: dist.WireVT(gvtAt)}, cpu).N
}

// DrainProcess implements tw.RemoteTransport: the scheduler hot loop's
// Drain+ProcessBatch pair as one frame. For schedulers that poll
// HasExecutableWork immediately after (gg/dd ReadMessageCount), a
// prefetch of it rides along and lands in the cache.
func (b *remoteBridge) DrainProcess(peer int, cpu tw.CPU) (int, int) {
	if !b.batch {
		return b.Drain(peer, cpu), b.ProcessBatch(peer, cpu)
	}
	b.reqs = append(b.reqs[:0],
		dist.OpRequest{Op: dist.OpDrain, Peer: peer},
		dist.OpRequest{Op: dist.OpProcessBatch, Peer: peer},
	)
	if b.prefetch {
		b.reqs = append(b.reqs, dist.OpRequest{Op: dist.OpHasExecWork, Peer: peer})
	}
	rs := b.sendOps(peer/b.d.threadsPer, b.reqs, cpu)
	return rs[0].N, rs[1].N
}

// DrainLocalMin implements tw.RemoteTransport: the barrier GVT's
// Drain+LocalMin pair as one frame.
func (b *remoteBridge) DrainLocalMin(peer int, cpu tw.CPU) (int, tw.VT) {
	if !b.batch {
		return b.Drain(peer, cpu), b.LocalMin(peer, cpu)
	}
	b.reqs = append(b.reqs[:0],
		dist.OpRequest{Op: dist.OpDrain, Peer: peer},
		dist.OpRequest{Op: dist.OpLocalMin, Peer: peer},
	)
	rs := b.sendOps(peer/b.d.threadsPer, b.reqs, cpu)
	return rs[0].N, tw.VT(rs[1].VT)
}

// CutMins implements tw.RemoteTransport: the wait-free GVT send cut's
// TakeMinSent+LocalMin pair as one frame.
func (b *remoteBridge) CutMins(peer int, cpu tw.CPU) (tw.VT, tw.VT) {
	if !b.batch {
		return b.TakeMinSent(peer), b.LocalMin(peer, cpu)
	}
	b.reqs = append(b.reqs[:0],
		dist.OpRequest{Op: dist.OpTakeMinSent, Peer: peer},
		dist.OpRequest{Op: dist.OpLocalMin, Peer: peer},
	)
	rs := b.sendOps(peer/b.d.threadsPer, b.reqs, cpu)
	return tw.VT(rs[0].VT), tw.VT(rs[1].VT)
}

// ScanMins implements tw.RemoteTransport: the GVT reduce loops'
// RemoteMin+PeekMinSent pair. Between mutations both minima come
// straight from the cache — the common case when many cutless threads
// scan the same peers in one reduction.
func (b *remoteBridge) ScanMins(peer int) (tw.VT, tw.VT) {
	if !b.batch {
		return b.RemoteMin(peer), b.PeekMinSent(peer)
	}
	w, idx := peer/b.d.threadsPer, peer%b.d.threadsPer
	if c := &b.cache[w]; c.valid[idx]&ckRemoteMin != 0 && c.valid[idx]&ckPeekMinSent != 0 {
		b.readsCached.Add(2)
		return c.remoteMin[idx], c.peekMin[idx]
	}
	b.reqs = append(b.reqs[:0],
		dist.OpRequest{Op: dist.OpRemoteMin, Peer: peer},
		dist.OpRequest{Op: dist.OpPeekMinSent, Peer: peer},
	)
	rs := b.sendOps(peer/b.d.threadsPer, b.reqs, nil)
	return tw.VT(rs[0].VT), tw.VT(rs[1].VT)
}
