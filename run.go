package ggpdes

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"ggpdes/internal/chaos"
	"ggpdes/internal/checkpoint"
	"ggpdes/internal/core"
	"ggpdes/internal/gvt"
	"ggpdes/internal/machine"
	"ggpdes/internal/pq"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/trace"
	"ggpdes/internal/tw"
)

// Run executes one simulation to completion and returns its metrics.
func Run(cfg Config) (*Results, error) { return RunContext(context.Background(), cfg) }

// RunContext executes one simulation like Run, stopping early if ctx
// is cancelled or its deadline passes. Cancellation is observed in
// real time by the machine loop, which asks the engine to wind down;
// simulation threads notice within one main-loop iteration, well
// inside a GVT round. A cancelled run returns no Results and an error
// wrapping both ctx.Err() and ErrCancelled (or ErrDeadline).
//
// When cfg.Checkpoint is set the run executes as a chain of segments:
// every Checkpoint.Every GVT rounds the engine is paused, quiesced onto
// its committed state, serialized into a snapshot (written to
// Checkpoint.Dir when non-empty), and rebuilt from that snapshot — even
// in-process. Because the continuation always passes through the
// serialized form, killing the process at any checkpoint and calling
// Resume yields byte-identical Results.
func RunContext(ctx context.Context, cfg Config) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rs := &runState{cfg: cfg}
	return rs.run(ctx)
}

// ResumeOptions re-attaches what a checkpoint cannot carry: run
// observability and an override for where further checkpoints go.
type ResumeOptions struct {
	// Trace, Progress and Series re-attach instrumentation; checkpoints
	// never record them (they hold writers and callbacks).
	Trace    *TraceOptions
	Progress *ProgressOptions
	Series   *SeriesOptions
	// Telemetry re-attaches a shared metrics registry (Config.Telemetry).
	Telemetry *Registry
	// CheckpointDir, when non-empty, overrides the snapshot's recorded
	// checkpoint directory for the rest of the run.
	CheckpointDir string
}

// Resume continues a run from the snapshot at path to completion. The
// returned Results are byte-identical to the run the snapshot came
// from having finished uninterrupted.
func Resume(path string) (*Results, error) {
	return ResumeContext(context.Background(), path, nil)
}

// ResumeContext is Resume with cancellation and observability
// re-attachment. Unreadable or corrupt snapshots return an error
// wrapping ErrCheckpointCorrupt.
func ResumeContext(ctx context.Context, path string, opts *ResumeOptions) (*Results, error) {
	snap, err := checkpoint.Read(path)
	if err != nil {
		return nil, err
	}
	rs := &runState{}
	if err := rs.loadSnapshot(snap); err != nil {
		return nil, err
	}
	if opts != nil {
		rs.cfg.Trace = opts.Trace
		rs.cfg.Progress = opts.Progress
		rs.cfg.Series = opts.Series
		rs.cfg.Telemetry = opts.Telemetry
		if opts.CheckpointDir != "" && rs.cfg.Checkpoint != nil {
			rs.cfg.Checkpoint.Dir = opts.CheckpointDir
		}
	}
	if err := rs.cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: snapshot config: %v", ErrCheckpointCorrupt, err)
	}
	return rs.run(ctx)
}

// runState carries a run across its segments: the serialized engine
// state to rebuild from and every cumulative total that lives outside
// the engine. For an uncheckpointed run there is exactly one segment
// and the state stays zero.
type runState struct {
	cfg Config
	rec *trace.Recorder

	// Continuation state (set between segments / loaded from snapshot).
	engine  *tw.EngineState
	metrics *telemetry.MetricsState
	// Cumulative totals.
	startTick uint64
	rounds    uint64 // GVT publications across all segments
	segments  int
	machCum   machine.Stats
	schedCum  core.SchedulingStats
	cyclesCum uint64
	gvtFreq   int // next segment's base GVT frequency (0 = configured)

	// Per-GVT-round sampling state (set when cfg.Series is non-nil).
	series            *telemetry.Series
	prevGVT, prevWall float64
}

// segment is one engine+machine incarnation of the run.
type segment struct {
	mcfg   machine.Config
	m      *machine.Machine
	eng    *tw.Engine
	runner *core.Runner
	reg    *telemetry.Registry
}

func (rs *runState) checkpointing() bool {
	return rs.cfg.Checkpoint != nil && rs.cfg.Checkpoint.Every > 0
}

func (rs *runState) run(ctx context.Context) (*Results, error) {
	if t := rs.cfg.Trace; t != nil {
		if t.Ring {
			rs.rec = trace.NewRing(t.Limit)
		} else {
			rs.rec = trace.New(t.Limit)
		}
	}
	if so := rs.cfg.Series; so != nil {
		if so.Buffer != nil {
			rs.series = so.Buffer
		} else {
			rs.series = telemetry.NewSeries(so.Limit)
		}
	}
	for {
		seg, err := rs.buildSegment()
		if err != nil {
			return nil, err
		}
		if err := seg.m.RunContext(ctx); err != nil {
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				if errors.Is(cerr, context.DeadlineExceeded) {
					return nil, fmt.Errorf("%w: %w", ErrDeadline, err)
				}
				return nil, fmt.Errorf("%w: %w", ErrCancelled, err)
			}
			return nil, fmt.Errorf("ggpdes: %s/%s run failed: %w", rs.cfg.System, rs.cfg.GVT, err)
		}
		if seg.eng.Paused() {
			if err := rs.checkpointAndReload(seg); err != nil {
				return nil, err
			}
			continue
		}
		return rs.finish(seg)
	}
}

// buildSegment assembles a machine, engine (fresh or restored), runner
// and telemetry registry for the next segment of the run.
func (rs *runState) buildSegment() (*segment, error) {
	cfg := rs.cfg
	mcfg, err := cfg.Machine.build()
	if err != nil {
		return nil, err
	}
	mcfg.StartTick = rs.startTick
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, err
	}
	var adaptive *gvt.Adaptive
	if a := cfg.AdaptiveGVT; a != nil {
		adaptive = &gvt.Adaptive{
			MinFrequency:               a.MinFrequency,
			MaxFrequency:               a.MaxFrequency,
			TargetUncommittedPerThread: a.TargetUncommittedPerThread,
		}
	}
	if rs.rec != nil {
		rs.rec.Clock = m.NowCycles
		m.SetTrace(rs.rec)
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if rs.metrics != nil {
		reg.Import(*rs.metrics)
		rs.metrics = nil
	}
	m.SetTelemetry(reg)
	model, err := cfg.Model.build(cfg.Threads, cfg.EndTime)
	if err != nil {
		return nil, err
	}

	// Chaos injectors are rebuilt per segment; that is deterministic
	// because the in-process and resumed paths rebuild at the same
	// boundaries.
	var sendFaults tw.SendFaultInjector
	var threadFaults core.ThreadFaultInjector
	if ch := cfg.Chaos; ch != nil {
		seed := ch.Seed
		if seed == 0 {
			seed = cfg.Seed
		}
		if ch.DropSendRate > 0 || ch.DelaySendRate > 0 {
			sendFaults = chaos.NewSendFaults(seed, ch.DropSendRate, ch.DelaySendRate, ch.DelaySendHold)
		}
		if ch.StallRate > 0 || ch.KillAtIter > 0 {
			threadFaults = chaos.NewThreadFaults(seed, cfg.Threads, ch.StallRate, ch.KillThread, ch.KillAtIter)
		}
	}

	// The progress hook closes over eng/runner, which exist only after
	// construction; indirect through late-bound functions. The OnGVT
	// wrapper additionally counts publications (the cross-segment round
	// number) and pauses the engine at checkpoint boundaries.
	var eng *tw.Engine
	var runner *core.Runner
	var progress, sample func(tw.VT)
	every := 0
	if rs.checkpointing() {
		every = rs.cfg.Checkpoint.Every
	}
	segPubs := 0
	onGVT := func(v tw.VT) {
		rs.rounds++
		if sample != nil {
			sample(v)
		}
		if progress != nil {
			progress(v)
		}
		if every > 0 && float64(v) < cfg.EndTime {
			segPubs++
			if segPubs >= every {
				eng.Pause()
			}
		}
	}
	twCfg := tw.Config{
		NumThreads:       cfg.Threads,
		Model:            model,
		EndTime:          cfg.EndTime,
		Seed:             cfg.Seed,
		BatchSize:        cfg.BatchSize,
		LPsPerKP:         cfg.LPsPerKP,
		QueueKind:        pq.Kind(cfg.Queue),
		StateSaving:      tw.SavePolicy(cfg.StateSaving),
		LazyCancellation: cfg.LazyCancellation,
		OptimismWindow:   cfg.OptimismWindow,
		DisablePooling:   cfg.DisablePooling,
		SendFaults:       sendFaults,
		Trace:            rs.rec,
		Telemetry:        reg,
		OnGVT:            onGVT,
	}
	if rs.engine != nil {
		eng, err = tw.NewEngineFromState(twCfg, rs.engine)
		rs.engine = nil
	} else {
		eng, err = tw.NewEngine(twCfg)
	}
	if err != nil {
		return nil, err
	}
	gvtFreq := cfg.GVTFrequency
	if rs.gvtFreq > 0 {
		gvtFreq = rs.gvtFreq
	}
	runner, err = core.NewRunner(core.Config{
		Machine:              m,
		Engine:               eng,
		System:               core.System(cfg.System),
		GVTKind:              gvt.Kind(cfg.GVT),
		GVTFrequency:         gvtFreq,
		ZeroCounterThreshold: cfg.ZeroCounterThreshold,
		Affinity:             core.Affinity(cfg.Affinity),
		Trace:                rs.rec,
		GVTAdaptive:          adaptive,
		Telemetry:            reg,
		Faults:               threadFaults,
	})
	if err != nil {
		return nil, err
	}
	if rs.series != nil {
		// A segment restored mid-run starts its deltas from the
		// restored position, not from zero. All sampling reads machine
		// or engine state and charges no simulated cycles, so a run
		// records the same trajectory with or without a series.
		if rs.prevGVT == 0 && float64(eng.GVT()) > 0 {
			rs.prevGVT = float64(eng.GVT())
			rs.prevWall = m.WallSeconds()
		}
		sample = func(v tw.VT) {
			pt := telemetry.SeriesPoint{
				Round:         int(rs.rounds),
				GVT:           float64(v),
				WallSeconds:   m.WallSeconds(),
				ActiveThreads: runner.NumActive(),
			}
			eng.FillSeriesPoint(&pt)
			pt.AdvanceVT = pt.GVT - rs.prevGVT
			if dt := pt.WallSeconds - rs.prevWall; dt > 0 {
				pt.AdvanceRate = pt.AdvanceVT / dt
			}
			rs.prevGVT, rs.prevWall = pt.GVT, pt.WallSeconds
			rs.series.Append(pt)
		}
	}
	if p := cfg.Progress; p != nil {
		pEvery := p.Every
		if pEvery <= 0 {
			pEvery = 0.1
		}
		step := pEvery * cfg.EndTime
		next := step
		progress = func(v tw.VT) {
			g := float64(v)
			if g < next && g < cfg.EndTime {
				return
			}
			// Jump to the first threshold past g in one step — Every can
			// be tiny (the serving layer uses progress as a per-round
			// heartbeat), so advancing one step at a time is not an option.
			next = step * (math.Floor(g/step) + 1)
			s := eng.TotalStats()
			info := ProgressInfo{
				GVT:             g,
				EndTime:         cfg.EndTime,
				CommittedEvents: s.Committed,
				ProcessedEvents: s.Processed,
				ActiveThreads:   runner.NumActive(),
				Threads:         cfg.Threads,
				GVTRounds:       rs.gvtRounds(runner),
				WallSeconds:     m.WallSeconds(),
			}
			if info.WallSeconds > 0 {
				info.CommittedEventRate = float64(info.CommittedEvents) / info.WallSeconds
			}
			if info.ProcessedEvents > 0 {
				info.Efficiency = float64(info.CommittedEvents) / float64(info.ProcessedEvents)
			}
			if p.W != nil {
				fmt.Fprintln(p.W, info)
			}
			if p.Func != nil {
				p.Func(info)
			}
		}
	}
	m.SetOnCancel(eng.Cancel)
	return &segment{mcfg: mcfg, m: m, eng: eng, runner: runner, reg: reg}, nil
}

// gvtRounds is the run's round count. A checkpointed run counts GVT
// publications across segments (the wait-free algorithm's own counter
// can miss the boundary round — threads paused mid-phase never finish
// it); an uncheckpointed run keeps the algorithm's counter.
func (rs *runState) gvtRounds(runner *core.Runner) uint64 {
	if rs.checkpointing() {
		return rs.rounds
	}
	return runner.Algorithm().Rounds()
}

// accumulate folds a finished segment's per-incarnation totals into the
// run totals. Machine ticks are already cumulative via StartTick; the
// counter fields reset with each fresh machine and are summed.
func (rs *runState) accumulate(seg *segment) {
	ms := seg.m.Stats()
	rs.machCum.Ticks = ms.Ticks
	rs.machCum.CtxSwitches += ms.CtxSwitches
	rs.machCum.Migrations += ms.Migrations
	rs.machCum.CrossNodeMigrations += ms.CrossNodeMigrations
	rs.machCum.SemWaits += ms.SemWaits
	rs.machCum.SemPosts += ms.SemPosts
	rs.machCum.BarrierWaits += ms.BarrierWaits
	rs.machCum.Wakeups += ms.Wakeups
	rs.machCum.Preempts += ms.Preempts
	ss := seg.runner.SchedulingStats()
	rs.schedCum.Deactivations += ss.Deactivations
	rs.schedCum.Activations += ss.Activations
	rs.schedCum.LockContention += ss.LockContention
	rs.schedCum.Repins += ss.Repins
	rs.cyclesCum += seg.m.TotalCycles()
	rs.gvtFreq = seg.runner.Algorithm().Frequency()
	rs.startTick = ms.Ticks
}

// checkpointAndReload quiesces the paused segment, serializes the run
// into a snapshot, persists it when a directory is configured, and
// reloads the continuation state from the serialized bytes. The reload
// always round-trips through the encoded form — including the embedded
// config — so an in-process continuation and a process restarted via
// Resume execute identically by construction.
func (rs *runState) checkpointAndReload(seg *segment) error {
	est, err := seg.eng.Capture()
	if err != nil {
		return fmt.Errorf("ggpdes: checkpoint capture: %w", err)
	}
	seg.eng.FlushPoolStats()
	return rs.persistAndReload(seg, est)
}

// persistAndReload serializes the run around an already-captured engine
// state and reloads the continuation from the encoded bytes. Split from
// checkpointAndReload so the distributed runner, which assembles the
// engine state from per-worker shard captures, shares the exact same
// snapshot round-trip.
func (rs *runState) persistAndReload(seg *segment, est *tw.EngineState) error {
	rs.accumulate(seg)
	rs.segments++
	key, err := rs.cfg.CacheKey()
	if err != nil {
		return fmt.Errorf("ggpdes: checkpoint: %w", err)
	}
	cfgJSON, err := json.Marshal(rs.cfg)
	if err != nil {
		return fmt.Errorf("ggpdes: checkpoint: %w", err)
	}
	snap := &checkpoint.Snapshot{
		Config:       cfgJSON,
		CacheKey:     key,
		Segments:     rs.segments,
		Rounds:       rs.rounds,
		MachineTicks: rs.machCum.Ticks,
		MachineStats: rs.machCum,
		SchedStats:   rs.schedCum,
		TotalCycles:  rs.cyclesCum,
		GVTFrequency: rs.gvtFreq,
		Engine:       est,
		Metrics:      seg.reg.Export(),
	}
	data, err := checkpoint.Encode(snap)
	if err != nil {
		return fmt.Errorf("ggpdes: %w", err)
	}
	if dir := rs.cfg.Checkpoint.Dir; dir != "" {
		if _, err := checkpoint.WriteBytes(dir, rs.segments, data); err != nil {
			return fmt.Errorf("ggpdes: %w", err)
		}
	}
	decoded, err := checkpoint.Decode(data)
	if err != nil {
		return fmt.Errorf("ggpdes: %w", err)
	}
	trc, prog, ser, ext := rs.cfg.Trace, rs.cfg.Progress, rs.cfg.Series, rs.cfg.Telemetry
	if err := rs.loadSnapshot(decoded); err != nil {
		return err
	}
	rs.cfg.Trace, rs.cfg.Progress, rs.cfg.Series, rs.cfg.Telemetry = trc, prog, ser, ext
	if ext != nil {
		// An external registry survived the segment boundary with its
		// state intact; importing the snapshot's metrics into it again
		// would double-count.
		rs.metrics = nil
	}
	return nil
}

// loadSnapshot installs a decoded snapshot as the continuation state.
// The embedded config must hash back to the recorded cache key — a
// lossy config codec must never silently fork the trajectory.
func (rs *runState) loadSnapshot(snap *checkpoint.Snapshot) error {
	var cfg Config
	if err := json.Unmarshal(snap.Config, &cfg); err != nil {
		return fmt.Errorf("%w: embedded config: %v", ErrCheckpointCorrupt, err)
	}
	key, err := cfg.CacheKey()
	if err != nil {
		return fmt.Errorf("%w: embedded config: %v", ErrCheckpointCorrupt, err)
	}
	if key != snap.CacheKey {
		return fmt.Errorf("%w: embedded config hashes to %s, snapshot recorded %s",
			ErrCheckpointCorrupt, key, snap.CacheKey)
	}
	rs.cfg = cfg
	rs.engine = snap.Engine
	rs.metrics = &snap.Metrics
	rs.startTick = snap.MachineTicks
	rs.rounds = snap.Rounds
	rs.segments = snap.Segments
	rs.machCum = snap.MachineStats
	rs.schedCum = snap.SchedStats
	rs.cyclesCum = snap.TotalCycles
	rs.gvtFreq = snap.GVTFrequency
	return nil
}

// finish assembles Results from the final segment plus the accumulated
// cross-segment totals.
func (rs *runState) finish(seg *segment) (*Results, error) {
	cfg := rs.cfg
	if err := seg.eng.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("ggpdes: engine invariant violated: %w", err)
	}
	seg.eng.FlushPoolStats()
	rs.accumulate(seg)
	s := seg.eng.TotalStats()
	res := &Results{
		CommittedEvents:       s.Committed,
		ProcessedEvents:       s.Processed,
		RolledBackEvents:      s.RolledBack,
		Rollbacks:             s.Rollbacks,
		Stragglers:            s.Stragglers,
		AntiMessages:          s.AntiSent,
		LazyReused:            s.LazyReused,
		LazyCancelled:         s.LazyCancelled,
		WallClockSeconds:      seg.m.WallSeconds(),
		GVTCPUSeconds:         seg.m.CyclesToSeconds(s.GVTCycles),
		GVTRounds:             rs.gvtRounds(seg.runner),
		TotalCycles:           rs.cyclesCum,
		Deactivations:         rs.schedCum.Deactivations,
		Activations:           rs.schedCum.Activations,
		LockContention:        rs.schedCum.LockContention,
		Repins:                rs.schedCum.Repins,
		ContextSwitches:       rs.machCum.CtxSwitches,
		Migrations:            rs.machCum.Migrations,
		CrossNodeMigrations:   rs.machCum.CrossNodeMigrations,
		Preempts:              rs.machCum.Preempts,
		FinalGVT:              seg.eng.GVT(),
		FinalGVTFrequency:     seg.runner.Algorithm().Frequency(),
		PeakUncommittedEvents: seg.eng.PeakUncommittedEvents(),
	}
	if res.WallClockSeconds > 0 {
		res.CommittedEventRate = float64(res.CommittedEvents) / res.WallClockSeconds
	}
	res.Counters = seg.reg.Counters()
	res.Gauges = seg.reg.Gauges()
	hists := seg.reg.Histograms()
	res.Histograms = make(map[string]HistSummary, len(hists))
	for name, hs := range hists {
		res.Histograms[name] = histSummary(hs)
	}
	res.Metrics = seg.reg.Export()
	if rs.series != nil {
		res.Series = rs.series.Points()
		if so := rs.cfg.Series; so != nil && so.CSV != nil {
			if err := rs.series.WriteCSV(so.CSV); err != nil {
				return nil, fmt.Errorf("ggpdes: writing series: %w", err)
			}
		}
	}
	res.RollbackDepth = res.Histograms[tw.MetricRollbackDepth]
	res.GVTRoundLatencyCycles = res.Histograms[gvt.MetricRoundLatency]
	res.CommitBatch = res.Histograms[tw.MetricCommitBatch]
	res.DescheduleSpanCycles = res.Histograms[core.MetricDescheduleSpan]
	if rs.rec != nil {
		res.TraceSummary = rs.rec.Summary(cfg.Threads, seg.m.NowCycles())
		res.InactiveFraction = rs.rec.InactiveFraction(cfg.Threads, seg.m.NowCycles())
		if cfg.Trace.CSV != nil {
			if err := rs.rec.WriteCSV(cfg.Trace.CSV); err != nil {
				return nil, fmt.Errorf("ggpdes: writing trace: %w", err)
			}
		}
		if cfg.Trace.Timeline != nil {
			if _, err := io.WriteString(cfg.Trace.Timeline,
				rs.rec.RenderTimeline(cfg.Threads, seg.m.NowCycles(), cfg.Trace.TimelineWidth, 64)); err != nil {
				return nil, fmt.Errorf("ggpdes: writing timeline: %w", err)
			}
		}
		if cfg.Trace.Perfetto != nil {
			err := rs.rec.WritePerfetto(cfg.Trace.Perfetto, trace.PerfettoOptions{
				FreqHz:    seg.mcfg.FreqHz,
				Threads:   cfg.Threads,
				EndCycles: seg.m.NowCycles(),
			})
			if err != nil {
				return nil, fmt.Errorf("ggpdes: writing perfetto trace: %w", err)
			}
		}
	}
	return res, nil
}
