package ggpdes

import (
	"context"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ggpdes/internal/checkpoint"
	"ggpdes/internal/dist"
)

// inProcWorkers returns a WorkerDialer whose "processes" are
// goroutines serving the wire protocol over a net.Pipe — the full
// framed JSON protocol with none of the process management, so the
// golden matrix stays fast and hermetic. Every dial serves a fresh
// connection, which is exactly what a redialing coordinator expects.
func inProcWorkers() WorkerDialer {
	return func(shard int) (io.ReadWriteCloser, error) {
		local, remote := net.Pipe()
		go func() {
			_ = ServeWorkerConn(remote)
			remote.Close()
		}()
		return local, nil
	}
}

// distCfg is a small checkpointed configuration; checkpoints make the
// matrix exercise the distributed quiesce/capture/restore cycle, not
// just steady-state forwarding.
func distCfg(model Model, dir string) Config {
	return Config{
		Model:                model,
		Threads:              4,
		System:               GGPDES,
		GVT:                  WaitFree,
		EndTime:              30,
		Machine:              SmallMachine(),
		GVTFrequency:         10,
		ZeroCounterThreshold: 60,
		Checkpoint:           &CheckpointOptions{Every: 2, Dir: dir},
		Series:               &SeriesOptions{},
	}
}

// scrubDist removes the dist.* wire metrics, which only the
// distributed run has; everything else in Results must match the
// in-process run exactly.
func scrubDist(res *Results) {
	for name := range res.Counters {
		if strings.HasPrefix(name, "dist.") {
			delete(res.Counters, name)
		}
	}
	for name := range res.Gauges {
		if strings.HasPrefix(name, "dist.") {
			delete(res.Gauges, name)
		}
	}
	for name := range res.Metrics.Counters {
		if strings.HasPrefix(name, "dist.") {
			delete(res.Metrics.Counters, name)
		}
	}
	for name := range res.Metrics.Gauges {
		if strings.HasPrefix(name, "dist.") {
			delete(res.Metrics.Gauges, name)
		}
	}
}

// The tentpole acceptance property: a run sharded across worker
// processes produces Results identical to the in-process run — same
// trajectory, same statistics, same histograms, same per-round series
// — for multiple models and worker counts.
func TestDistributedGoldenMatrix(t *testing.T) {
	models := []Model{
		PHOLD{LPsPerThread: 4, Imbalance: 2},
		Traffic{LPsPerThread: 4, CenterStartEvents: 6},
	}
	for _, model := range models {
		golden, err := Run(distCfg(model, t.TempDir()))
		if err != nil {
			t.Fatalf("%s in-process: %v", model.Name(), err)
		}
		if golden.FinalGVT < 30 {
			t.Fatalf("%s in-process run incomplete: GVT %v", model.Name(), golden.FinalGVT)
		}
		for _, workers := range []int{2, 4} {
			t.Run(model.Name()+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				res, err := RunDistributed(context.Background(), distCfg(model, t.TempDir()),
					DistOptions{Workers: workers, Dial: inProcWorkers()})
				if err != nil {
					t.Fatal(err)
				}
				if got := res.Gauges["dist.workers.connected"]; got != float64(workers) {
					t.Errorf("dist.workers.connected = %v, want %d", got, workers)
				}
				if res.Counters["dist.msgs_sent"] == 0 || res.Counters["dist.gvt_rounds"] == 0 {
					t.Errorf("wire counters not booked: %v", res.Counters)
				}
				scrubDist(res)
				if !reflect.DeepEqual(golden, res) {
					t.Errorf("distributed run diverged from in-process:\nin-proc: %+v\ndist:    %+v", golden, res)
				}
			})
		}
	}
}

// The coalescing acceptance property: the batched planes (binary and
// JSON framing) and the synchronous per-op plane produce identical
// Results — coalescing, read caching and deferred relays remove round
// trips without reordering what any worker observes — while the batched
// plane sends far fewer frames.
func TestDistributedBatchingModes(t *testing.T) {
	model := PHOLD{LPsPerThread: 4, Imbalance: 2}
	run := func(opts DistOptions) *Results {
		t.Helper()
		opts.Workers = 2
		opts.Dial = inProcWorkers()
		res, err := RunDistributed(context.Background(), distCfg(model, t.TempDir()), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	batched := run(DistOptions{})
	jsonFramed := run(DistOptions{Wire: dist.WireJSON})
	sync := run(DistOptions{NoBatch: true})

	if batched.Counters["dist.batches"] == 0 || batched.Counters["dist.ops_coalesced"] == 0 ||
		batched.Counters["dist.reads_cached"] == 0 {
		t.Errorf("batched plane counters not booked: %v", batched.Counters)
	}
	if got := sync.Counters["dist.batches"]; got != 0 {
		t.Errorf("nobatch run sent %v batch frames", got)
	}
	if b, s := batched.Counters["dist.msgs_sent"], sync.Counters["dist.msgs_sent"]; 2*b >= s {
		t.Errorf("coalescing saved too little: %v batched frames vs %v synchronous", b, s)
	}
	scrubDist(batched)
	scrubDist(jsonFramed)
	scrubDist(sync)
	if !reflect.DeepEqual(batched, jsonFramed) {
		t.Errorf("json-framed batched run diverged from binary:\nbinary: %+v\njson:   %+v", batched, jsonFramed)
	}
	if !reflect.DeepEqual(batched, sync) {
		t.Errorf("synchronous run diverged from batched:\nbatched: %+v\nsync:    %+v", batched, sync)
	}
}

// A distributed checkpointed run writes per-shard files next to each
// full snapshot, and each shard file is a valid snapshot carrying that
// shard's slice of the engine.
func TestDistributedShardCheckpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := distCfg(PHOLD{LPsPerThread: 4, Imbalance: 2}, dir)
	if _, err := RunDistributed(context.Background(), cfg, DistOptions{Workers: 2, Dial: inProcWorkers()}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, shard := 0, 0
	for _, e := range entries {
		if strings.Contains(e.Name(), ".shard") {
			shard++
		} else {
			full++
		}
	}
	if full < 2 || shard != 2*full {
		t.Fatalf("want n full snapshots and 2n shard files, got %d full, %d shard", full, shard)
	}
	snap, err := checkpoint.Read(filepath.Join(dir, checkpoint.ShardFileName(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Engine.Pending); got != cfg.Threads {
		t.Fatalf("shard snapshot pending width %d, want %d", got, cfg.Threads)
	}
	for i, pend := range snap.Engine.Pending {
		if i < 2 && len(pend) > 0 {
			t.Errorf("shard 1 file holds pending events of peer %d (other shard)", i)
		}
	}
	// Latest must keep resuming from full snapshots only.
	latest, err := checkpoint.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(latest, ".shard") {
		t.Fatalf("Latest picked a shard file: %s", latest)
	}
}

// The recovery property: a seeded chaos kill of a worker mid-run makes
// the coordinator redial it, restore its shard from the last per-shard
// checkpoint, replay the interrupted segment, and finish with Results
// identical to a crash-free distributed run.
func TestDistributedWorkerCrashRecovery(t *testing.T) {
	cfg := func(dir string) Config { return distCfg(PHOLD{LPsPerThread: 4, Imbalance: 2}, dir) }
	clean, err := RunDistributed(context.Background(), cfg(t.TempDir()),
		DistOptions{Workers: 2, Dial: inProcWorkers()})
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := RunDistributed(context.Background(), cfg(t.TempDir()), DistOptions{
		Workers:     2,
		Dial:        inProcWorkers(),
		MaxAttempts: 3,
		CrashRate:   1,
		ChaosSeed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, crashed) {
		t.Errorf("crash-recovered run diverged from crash-free run:\nclean:   %+v\ncrashed: %+v", clean, crashed)
	}
}

// Distributed runs reject the in-process-only features and impossible
// shardings loudly instead of silently diverging.
func TestDistributedConfigRejections(t *testing.T) {
	base := distCfg(PHOLD{LPsPerThread: 4}, "")
	cases := map[string]func() (Config, DistOptions){
		"no workers": func() (Config, DistOptions) {
			return base, DistOptions{Dial: inProcWorkers()}
		},
		"no dialer": func() (Config, DistOptions) {
			return base, DistOptions{Workers: 2}
		},
		"uneven shards": func() (Config, DistOptions) {
			return base, DistOptions{Workers: 3, Dial: inProcWorkers()}
		},
		"chaos": func() (Config, DistOptions) {
			c := base
			c.Chaos = &ChaosOptions{DropSendRate: 0.1}
			return c, DistOptions{Workers: 2, Dial: inProcWorkers()}
		},
		"trace": func() (Config, DistOptions) {
			c := base
			c.Trace = &TraceOptions{}
			return c, DistOptions{Workers: 2, Dial: inProcWorkers()}
		},
		"telemetry": func() (Config, DistOptions) {
			c := base
			c.Telemetry = NewRegistry()
			return c, DistOptions{Workers: 2, Dial: inProcWorkers()}
		},
	}
	for name, mk := range cases {
		c, opts := mk()
		if _, err := RunDistributed(context.Background(), c, opts); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}
