package ggpdes

import (
	"encoding/json"
	"fmt"
	"io"
	"net"

	"ggpdes/internal/dist"
	"ggpdes/internal/pq"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/tw"
)

// Worker side of a distributed run. A worker process hosts one shard
// of the engine and executes forwarded operations in the exact order
// the coordinator sends them; it runs no machine, scheduler or GVT
// algorithm of its own. See internal/dist for the protocol and
// internal/tw's shard support for the control/data split.

// recordCPU is the worker-side stand-in for the coordinator's
// simulated-CPU accumulator: it records how many cycles one forwarded
// operation charged, and whether it charged at all, so the coordinator
// can mirror the charge onto the real accumulator. Multiple Work calls
// within one operation collapse into a single coordinator-side call,
// which is equivalent — both sides accumulate.
type recordCPU struct {
	cycles uint64
	worked bool
}

// Work implements tw.CPU.
func (c *recordCPU) Work(cycles uint64) {
	c.cycles += cycles
	c.worked = true
}

func (c *recordCPU) reset() { c.cycles, c.worked = 0, false }

// workerShard is one initialized shard: a full-topology engine whose
// peers outside [lo, hi) are foreign, plus the worker's private
// telemetry registry (fresh per Init; the coordinator imports its
// export at segment boundaries, so counters must hold segment deltas
// only).
type workerShard struct {
	eng    *tw.Engine
	reg    *telemetry.Registry
	lo, hi int
	cpu    recordCPU
}

// newWorkerShard decodes an InitMsg into a live shard engine. The
// embedded config must hash back to the coordinator's cache key — the
// same lossy-codec guard checkpoint restore applies.
func newWorkerShard(init *dist.InitMsg) (*workerShard, error) {
	var cfg Config
	if err := json.Unmarshal(init.Config, &cfg); err != nil {
		return nil, fmt.Errorf("decoding config: %v", err)
	}
	key, err := cfg.CacheKey()
	if err != nil {
		return nil, fmt.Errorf("hashing config: %v", err)
	}
	if key != init.CacheKey {
		return nil, fmt.Errorf("config hashes to %s, coordinator sent %s", key, init.CacheKey)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1 // mirror RunContext's default
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if init.Workers <= 0 || init.Shard < 0 || init.Shard >= init.Workers {
		return nil, fmt.Errorf("shard %d of %d workers out of range", init.Shard, init.Workers)
	}
	if init.Lo < 0 || init.Hi > cfg.Threads || init.Lo >= init.Hi {
		return nil, fmt.Errorf("peer range [%d, %d) outside threads [0, %d)", init.Lo, init.Hi, cfg.Threads)
	}
	model, err := cfg.Model.build(cfg.Threads, cfg.EndTime)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	twCfg := tw.Config{
		NumThreads:       cfg.Threads,
		Model:            model,
		EndTime:          cfg.EndTime,
		Seed:             cfg.Seed,
		BatchSize:        cfg.BatchSize,
		LPsPerKP:         cfg.LPsPerKP,
		QueueKind:        pq.Kind(cfg.Queue),
		StateSaving:      tw.SavePolicy(cfg.StateSaving),
		LazyCancellation: cfg.LazyCancellation,
		OptimismWindow:   cfg.OptimismWindow,
		DisablePooling:   cfg.DisablePooling,
		Telemetry:        reg,
	}
	var eng *tw.Engine
	if init.State != nil {
		eng, err = tw.NewEngineFromState(twCfg, init.State)
	} else {
		eng, err = tw.NewEngine(twCfg)
	}
	if err != nil {
		return nil, err
	}
	if err := eng.Shardify(init.Lo, init.Hi); err != nil {
		return nil, err
	}
	return &workerShard{eng: eng, reg: reg, lo: init.Lo, hi: init.Hi}, nil
}

// peer resolves a peer-scoped request's target, rejecting peers the
// shard does not own.
func (ws *workerShard) peer(i int) (*tw.Peer, error) {
	if i < ws.lo || i >= ws.hi {
		return nil, fmt.Errorf("peer %d outside shard [%d, %d)", i, ws.lo, ws.hi)
	}
	return ws.eng.Peer(i), nil
}

// shardStats snapshots every shard peer's cumulative counters. All of
// them ride on every enveloped response: quiesce and inject traffic
// can mutate peers other than the request's target.
func (ws *workerShard) shardStats() []tw.PeerStats {
	out := make([]tw.PeerStats, ws.hi-ws.lo)
	for i := ws.lo; i < ws.hi; i++ {
		out[i-ws.lo] = ws.eng.Peer(i).Stats
	}
	return out
}

// execOne executes one batchable operation, recording its result and
// individual CPU charge. Batches call it per op; single KindOp frames
// route their batchable codes through it too, so both paths share one
// execution table.
func (ws *workerShard) execOne(req *dist.OpRequest, res *dist.OpResult) error {
	ws.cpu.reset()
	switch req.Op {
	case dist.OpDrain:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.N = p.Drain(&ws.cpu)
	case dist.OpProcessBatch:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.N = p.ProcessBatch(&ws.cpu)
	case dist.OpHasExecWork:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.Flag = p.HasExecutableWork()
	case dist.OpHasWork:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.Flag = p.HasWork()
	case dist.OpInputSize:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.N = p.InputSize()
	case dist.OpLocalMin:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.VT = dist.WireVT(p.LocalMin(&ws.cpu))
	case dist.OpRemoteMin:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.VT = dist.WireVT(p.RemoteMin())
	case dist.OpTakeMinSent:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.VT = dist.WireVT(p.TakeMinSent())
	case dist.OpPeekMinSent:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.VT = dist.WireVT(p.PeekMinSent())
	case dist.OpFossilCollect:
		p, err := ws.peer(req.Peer)
		if err != nil {
			return err
		}
		res.N = p.FossilCollect(&ws.cpu, tw.VT(req.GVT))
	case dist.OpInject:
		for _, w := range req.Events {
			if err := ws.eng.InjectRemote(w); err != nil {
				return err
			}
		}
	case dist.OpQuiescePass, dist.OpQuiesceDump, dist.OpQuiesceFlush,
		dist.OpCaptureShard, dist.OpCheckInvariants, dist.OpFlushPoolStats,
		dist.OpMetrics, dist.OpSeriesProbe:
		return fmt.Errorf("op %v is not batchable", req.Op)
	default:
		return fmt.Errorf("unknown op code %d", uint8(req.Op))
	}
	res.Cycles, res.Worked = ws.cpu.cycles, ws.cpu.worked
	return nil
}

// executeBatch runs a coalesced op run in order. The envelope applies
// once before the first op — nothing coordinator-side runs between the
// batch's operations, so there is nothing to re-apply — and the reply
// carries the final envelope and statistics exactly when the request
// carried one. The outbox is taken once at the end: it accrues across
// the batch in production order, which is the relay order the
// coordinator must preserve.
func (ws *workerShard) executeBatch(m *dist.BatchMsg) (*dist.BatchReply, error) {
	if m.Env != nil {
		ws.eng.ApplyEnvelope(*m.Env)
	}
	reply := &dist.BatchReply{Results: make([]dist.OpResult, len(m.Ops))}
	for i := range m.Ops {
		if err := ws.execOne(&m.Ops[i], &reply.Results[i]); err != nil {
			return nil, fmt.Errorf("%v: %w", m.Ops[i].Op, err)
		}
	}
	if m.Env != nil {
		env := ws.eng.EnvelopeOut()
		reply.Env = &env
		reply.Stats = ws.shardStats()
	}
	reply.Outbox = ws.eng.TakeOutbox()
	return reply, nil
}

// handle executes one forwarded operation. The protocol rule is that
// the response carries Env, Stats and the CPU charge exactly when the
// request carried an Envelope: OpInject touches no engine-global
// scalars, and echoing a stale envelope back after it would rewind the
// coordinator's state.
func (ws *workerShard) handle(req *dist.OpRequest) (*dist.OpResponse, error) {
	if req.Env != nil {
		ws.eng.ApplyEnvelope(*req.Env)
	}
	ws.cpu.reset()
	resp := &dist.OpResponse{}
	switch req.Op {
	case dist.OpDrain, dist.OpProcessBatch, dist.OpHasExecWork,
		dist.OpHasWork, dist.OpInputSize, dist.OpLocalMin,
		dist.OpRemoteMin, dist.OpTakeMinSent, dist.OpPeekMinSent,
		dist.OpFossilCollect, dist.OpInject:
		var res dist.OpResult
		if err := ws.execOne(req, &res); err != nil {
			return nil, err
		}
		resp.N, resp.Flag, resp.VT = res.N, res.Flag, res.VT
	case dist.OpQuiescePass:
		resp.Flag = ws.eng.QuiescePassShard()
	case dist.OpQuiesceDump:
		ws.eng.QuiesceDumpShard()
	case dist.OpQuiesceFlush:
		resp.Flag = ws.eng.QuiesceFlushShard()
	case dist.OpCaptureShard:
		sh, err := ws.eng.CaptureShard()
		if err != nil {
			return nil, err
		}
		resp.Shard = sh
	case dist.OpCheckInvariants:
		if err := ws.eng.CheckInvariants(); err != nil {
			return nil, err
		}
	case dist.OpFlushPoolStats:
		ws.eng.FlushPoolStats()
	case dist.OpMetrics:
		st := ws.reg.Export()
		resp.Metrics = &st
	case dist.OpSeriesProbe:
		resp.Probes = ws.eng.ProbeShard()
	default:
		return nil, fmt.Errorf("unknown op code %d", uint8(req.Op))
	}
	if req.Env != nil {
		env := ws.eng.EnvelopeOut()
		resp.Env = &env
		resp.Stats = ws.shardStats()
		resp.Cycles, resp.Worked = ws.cpu.cycles, ws.cpu.worked
	}
	resp.Outbox = ws.eng.TakeOutbox()
	return resp, nil
}

// ServeWorkerConn serves one coordinator connection until a clean
// shutdown (returns nil) or a transport failure (returns the error;
// the listener keeps accepting so a redialing coordinator can resume
// the shard). Worker-side operation failures are answered with
// KindError and do not end the connection — the coordinator decides
// whether they are fatal.
func ServeWorkerConn(rw io.ReadWriter) error {
	var ws *workerShard
	// rbuf is the reusable frame read buffer; pbuf and fbuf are the
	// binary reply payload and frame scratch buffers. One Write per
	// response, no per-frame allocations on the hot path.
	var rbuf, pbuf, fbuf []byte
	fail := func(format string, args ...any) error {
		_, err := dist.WriteMsg(rw, dist.KindError, &dist.ErrorMsg{Error: fmt.Sprintf(format, args...)})
		return err
	}
	writeBinaryReply := func(reply *dist.BatchReply, ops []dist.OpRequest) error {
		payload, err := dist.AppendBatchReply(pbuf[:0], reply, ops)
		if cap(payload) > cap(pbuf) {
			pbuf = payload
		}
		if err != nil {
			if werr := fail("encoding batch reply: %v", err); werr != nil {
				return werr
			}
			return nil
		}
		frame, err := dist.AppendMsg(fbuf[:0], dist.KindResultB, payload)
		if cap(frame) > cap(fbuf) {
			fbuf = frame
		}
		if err != nil {
			if werr := fail("framing batch reply: %v", err); werr != nil {
				return werr
			}
			return nil
		}
		_, err = rw.Write(frame)
		return err
	}
	for {
		kind, body, _, buf, err := dist.ReadMsgBuf(rw, rbuf)
		rbuf = buf
		if err != nil {
			return fmt.Errorf("ggpdes: worker: reading frame: %w", err)
		}
		switch kind {
		case dist.KindInit:
			var init dist.InitMsg
			if err := json.Unmarshal(body, &init); err != nil {
				if werr := fail("decoding init: %v", err); werr != nil {
					return werr
				}
				continue
			}
			nws, err := newWorkerShard(&init)
			if err != nil {
				if werr := fail("init: %v", err); werr != nil {
					return werr
				}
				continue
			}
			ws = nws
			if _, err := dist.WriteMsg(rw, dist.KindResult, nil); err != nil {
				return err
			}
		case dist.KindOp:
			if ws == nil {
				if werr := fail("op before init"); werr != nil {
					return werr
				}
				continue
			}
			var req dist.OpRequest
			if err := json.Unmarshal(body, &req); err != nil {
				if werr := fail("decoding op: %v", err); werr != nil {
					return werr
				}
				continue
			}
			resp, err := ws.handle(&req)
			if err != nil {
				if werr := fail("%v: %v", req.Op, err); werr != nil {
					return werr
				}
				continue
			}
			if _, err := dist.WriteMsg(rw, dist.KindResult, resp); err != nil {
				return err
			}
		case dist.KindOps:
			if ws == nil {
				if werr := fail("op batch before init"); werr != nil {
					return werr
				}
				continue
			}
			var m dist.BatchMsg
			if err := json.Unmarshal(body, &m); err != nil {
				if werr := fail("decoding op batch: %v", err); werr != nil {
					return werr
				}
				continue
			}
			reply, err := ws.executeBatch(&m)
			if err != nil {
				if werr := fail("batch: %v", err); werr != nil {
					return werr
				}
				continue
			}
			if _, err := dist.WriteMsg(rw, dist.KindResult, reply); err != nil {
				return err
			}
		case dist.KindOpsB:
			if ws == nil {
				if werr := fail("op batch before init"); werr != nil {
					return werr
				}
				continue
			}
			m, err := dist.DecodeBatch(body)
			if err != nil {
				if werr := fail("decoding binary batch: %v", err); werr != nil {
					return werr
				}
				continue
			}
			reply, err := ws.executeBatch(m)
			if err != nil {
				if werr := fail("batch: %v", err); werr != nil {
					return werr
				}
				continue
			}
			if err := writeBinaryReply(reply, m.Ops); err != nil {
				return err
			}
		case dist.KindShutdown:
			_, err := dist.WriteMsg(rw, dist.KindResult, nil)
			return err
		case dist.KindResult:
			if werr := fail("unexpected %v frame from coordinator", kind); werr != nil {
				return werr
			}
		case dist.KindResultB:
			if werr := fail("unexpected %v frame from coordinator", kind); werr != nil {
				return werr
			}
		case dist.KindError:
			if werr := fail("unexpected %v frame from coordinator", kind); werr != nil {
				return werr
			}
		default:
			if werr := fail("unknown frame kind %d", uint8(kind)); werr != nil {
				return werr
			}
		}
	}
}

// ListenAndServeWorker accepts coordinator connections one at a time
// until a coordinator asks for a clean shutdown. A dropped connection
// (coordinator crash, injected fault) keeps the listener alive: the
// coordinator redials and re-initializes the shard from its last
// per-shard checkpoint.
func ListenAndServeWorker(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		err = ServeWorkerConn(conn)
		conn.Close()
		if err == nil {
			return nil
		}
	}
}
