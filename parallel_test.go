package ggpdes

import (
	"sync"
	"testing"
)

// trajectory is the part of Results that pins down the committed-event
// history of a run; two runs with equal trajectories executed the same
// simulation.
type trajectory struct {
	committed   uint64
	processed   uint64
	rolledBack  uint64
	rollbacks   uint64
	gvtRounds   uint64
	totalCycles uint64
	wallClock   float64
	finalGVT    float64
}

func trajectoryOf(r *Results) trajectory {
	return trajectory{
		committed:   r.CommittedEvents,
		processed:   r.ProcessedEvents,
		rolledBack:  r.RolledBackEvents,
		rollbacks:   r.Rollbacks,
		gvtRounds:   r.GVTRounds,
		totalCycles: r.TotalCycles,
		wallClock:   r.WallClockSeconds,
		finalGVT:    r.FinalGVT,
	}
}

// Engine instances must share no hidden state: 8 concurrent Run calls
// (the serving layer's worker pool shape) must each reproduce the
// serial trajectory exactly. Run under -race this also proves the
// engine is data-race free across instances.
func TestParallelRunsMatchSerial(t *testing.T) {
	serial, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := trajectoryOf(serial)
	if want.committed == 0 {
		t.Fatal("serial run committed no events")
	}

	const n = 8
	results := make([]*Results, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(quickCfg())
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("parallel run %d: %v", i, errs[i])
		}
		if got := trajectoryOf(results[i]); got != want {
			t.Errorf("parallel run %d diverged from serial:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
