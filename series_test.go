package ggpdes

import (
	"strings"
	"sync"
	"testing"

	"ggpdes/internal/telemetry"
)

// TestSeriesPreservesTrajectories is the trajectory-invariance A/B:
// recording a per-round series reads engine state only and charges
// zero simulated cycles, so a run with a Series attached must commit
// the same events in the same simulated time as one without.
func TestSeriesPreservesTrajectories(t *testing.T) {
	bare, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Series = &SeriesOptions{}
	cfg.Telemetry = NewRegistry()
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.CommittedEvents != observed.CommittedEvents ||
		bare.TotalCycles != observed.TotalCycles ||
		bare.WallClockSeconds != observed.WallClockSeconds ||
		bare.GVTRounds != observed.GVTRounds {
		t.Fatalf("series recording perturbed the trajectory:\nbare     %d events %d cycles %v wall %d rounds\nobserved %d events %d cycles %v wall %d rounds",
			bare.CommittedEvents, bare.TotalCycles, bare.WallClockSeconds, bare.GVTRounds,
			observed.CommittedEvents, observed.TotalCycles, observed.WallClockSeconds, observed.GVTRounds)
	}
	if len(observed.Series) == 0 {
		t.Fatal("no series points recorded")
	}
	if uint64(len(observed.Series)) != observed.GVTRounds {
		t.Fatalf("%d series points for %d GVT rounds", len(observed.Series), observed.GVTRounds)
	}
	if bare.Series != nil {
		t.Fatal("run without SeriesOptions returned a series")
	}
}

func TestSeriesPointShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Series = &SeriesOptions{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevRound, prevGVT := 0, -1.0
	for _, pt := range res.Series {
		if pt.Round != prevRound+1 {
			t.Fatalf("rounds not contiguous: %d after %d", pt.Round, prevRound)
		}
		if pt.GVT < prevGVT {
			t.Fatalf("GVT regressed: %g after %g", pt.GVT, prevGVT)
		}
		prevRound, prevGVT = pt.Round, pt.GVT
		if len(pt.ThreadLVTs) != cfg.Threads {
			t.Fatalf("round %d: %d thread LVTs for %d threads", pt.Round, len(pt.ThreadLVTs), cfg.Threads)
		}
		if pt.HorizonWidth < 0 || pt.HorizonRoughness < 0 {
			t.Fatalf("round %d: negative horizon stats %+v", pt.Round, pt)
		}
		if pt.MaxLVT-pt.MinLVT != pt.HorizonWidth {
			t.Fatalf("round %d: width %g != max-min %g", pt.Round, pt.HorizonWidth, pt.MaxLVT-pt.MinLVT)
		}
		if pt.CommitRatio < 0 || pt.CommitRatio > 1 {
			t.Fatalf("round %d: commit ratio %g out of range", pt.Round, pt.CommitRatio)
		}
	}
	last := res.Series[len(res.Series)-1]
	if last.GVT < cfg.EndTime {
		t.Fatalf("final series GVT %g below end time %g", last.GVT, cfg.EndTime)
	}
	// The sample fires at GVT publication, before that round's fossil
	// collection commits its batch, so the last point trails the final
	// total but never exceeds it.
	if last.Committed == 0 || last.Committed > res.CommittedEvents {
		t.Fatalf("final committed %d inconsistent with results %d", last.Committed, res.CommittedEvents)
	}
}

func TestSeriesCSVThroughConfig(t *testing.T) {
	var csv strings.Builder
	cfg := quickCfg()
	cfg.Series = &SeriesOptions{CSV: &csv}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != len(res.Series)+1 {
		t.Fatalf("CSV has %d lines for %d points", len(lines), len(res.Series))
	}
	if !strings.HasPrefix(lines[0], "round,gvt,") {
		t.Fatalf("missing header: %q", lines[0])
	}
}

// TestSharedRegistryConcurrentRuns hammers one external registry with
// parallel jobs recording through per-thread shard handles while other
// goroutines scrape snapshots and the OpenMetrics exposition — the
// serving layer's steady state, checked standalone under -race.
func TestSharedRegistryConcurrentRuns(t *testing.T) {
	reg := NewRegistry()
	const jobs = 8
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var b strings.Builder
					if err := telemetry.WriteOpenMetrics(&b, reg.Snapshot()); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	var wg sync.WaitGroup
	totals := make([]uint64, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := quickCfg()
			cfg.Seed = uint64(i + 1)
			cfg.Telemetry = reg
			cfg.Series = &SeriesOptions{Limit: 64}
			res, err := Run(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			totals[i] = res.CommittedEvents
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	var want uint64
	for _, v := range totals {
		want += v
	}
	if got := reg.Counters()["tw.committed_events"]; got != want {
		t.Fatalf("shared registry committed %d, runs committed %d", got, want)
	}
}
