package ggpdes

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// poolFingerprint renders every trajectory-derived field of a Results
// into a comparable string. The telemetry counter map is included too,
// minus the pool-traffic counters themselves — those measure memory
// recycling, which DisablePooling switches off by design.
func poolFingerprint(t *testing.T, res *Results) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "committed=%d processed=%d rolledback=%d rollbacks=%d stragglers=%d\n",
		res.CommittedEvents, res.ProcessedEvents, res.RolledBackEvents, res.Rollbacks, res.Stragglers)
	fmt.Fprintf(&b, "anti=%d lazyreused=%d lazycancelled=%d\n",
		res.AntiMessages, res.LazyReused, res.LazyCancelled)
	fmt.Fprintf(&b, "wall=%v cycles=%d gvtrounds=%d gvtcpu=%v finalgvt=%v\n",
		res.WallClockSeconds, res.TotalCycles, res.GVTRounds, res.GVTCPUSeconds, res.FinalGVT)
	fmt.Fprintf(&b, "peakuncommitted=%d deact=%d act=%d ctxsw=%d mig=%d\n",
		res.PeakUncommittedEvents, res.Deactivations, res.Activations, res.ContextSwitches, res.Migrations)
	names := make([]string, 0, len(res.Counters))
	for name := range res.Counters {
		if strings.HasPrefix(name, "tw.pool.") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "counter %s=%d\n", name, res.Counters[name])
	}
	return b.String()
}

// The full-stack pooling gold test: through the public API — machine,
// scheduler, GVT and engine all live — switching event/snapshot
// recycling off must not move a single counter of the trajectory, for
// every pending-queue kind and both state-saving modes.
func TestPoolingIsTrajectoryInvariant(t *testing.T) {
	for _, q := range []Queue{SplayQueue, HeapQueue, CalendarQueue} {
		for _, sv := range []StateSaving{CopyState, ReverseComputation} {
			q, sv := q, sv
			t.Run(fmt.Sprintf("%v-%v", q, sv), func(t *testing.T) {
				cfg := quickCfg()
				cfg.Queue = q
				cfg.StateSaving = sv
				pooled, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.DisablePooling = true
				bare, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				a, b := poolFingerprint(t, pooled), poolFingerprint(t, bare)
				if a != b {
					t.Fatalf("pooling changed the trajectory:\npooled:\n%s\nunpooled:\n%s", a, b)
				}
				if pooled.Rollbacks == 0 {
					t.Fatal("run had no rollbacks; invariance test exercises nothing")
				}
				if pooled.Counters["tw.pool.event_recycled"] == 0 {
					t.Fatal("pooled run recycled nothing")
				}
				if bare.Counters["tw.pool.event_recycled"] != 0 {
					t.Fatal("unpooled run recycled events")
				}
			})
		}
	}
}
