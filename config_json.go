package ggpdes

import (
	"encoding/json"
	"fmt"
)

// Config's JSON codec — the single wire format for configurations. The
// serving layer's job specs, the checkpoint files and the command-line
// tools all speak it, built on the same Parse*/String pairs as the CLI
// flags, so every enum accepts the same spellings everywhere.
//
// Only fields that define the run are serialized. Observability
// attachments (Trace, Progress) hold writers and callbacks and are
// excluded; re-attach them after decoding. Enums travel as their
// String() names; the model travels as a tagged object selected by its
// "name". Unknown fields are ignored for forward compatibility;
// unknown enum or model names are errors.

type configJSON struct {
	Model                *modelJSON         `json:"model,omitempty"`
	Threads              int                `json:"threads,omitempty"`
	System               string             `json:"system"`
	GVT                  string             `json:"gvt"`
	Affinity             string             `json:"affinity"`
	EndTime              float64            `json:"end_time,omitempty"`
	Seed                 uint64             `json:"seed,omitempty"`
	Machine              *machineJSON       `json:"machine,omitempty"`
	GVTFrequency         int                `json:"gvt_frequency,omitempty"`
	ZeroCounterThreshold int                `json:"zero_counter_threshold,omitempty"`
	BatchSize            int                `json:"batch_size,omitempty"`
	LPsPerKP             int                `json:"lps_per_kp,omitempty"`
	Queue                string             `json:"queue"`
	StateSaving          string             `json:"state_saving"`
	LazyCancellation     bool               `json:"lazy_cancellation,omitempty"`
	AdaptiveGVT          *adaptiveJSON      `json:"adaptive_gvt,omitempty"`
	OptimismWindow       float64            `json:"optimism_window,omitempty"`
	DisablePooling       bool               `json:"disable_pooling,omitempty"`
	Checkpoint           *CheckpointOptions `json:"checkpoint,omitempty"`
	Chaos                *ChaosOptions      `json:"chaos,omitempty"`
}

type machineJSON struct {
	Cores     int     `json:"cores,omitempty"`
	SMTWidth  int     `json:"smt_width,omitempty"`
	FreqHz    float64 `json:"freq_hz,omitempty"`
	NUMANodes int     `json:"numa_nodes,omitempty"`
	MaxTicks  uint64  `json:"max_ticks,omitempty"`
}

type adaptiveJSON struct {
	MinFrequency               int `json:"min_frequency"`
	MaxFrequency               int `json:"max_frequency"`
	TargetUncommittedPerThread int `json:"target_uncommitted_per_thread,omitempty"`
}

type modelJSON struct {
	Name string `json:"name"`
	// Shared by all models.
	LPsPerThread int `json:"lps_per_thread,omitempty"`
	// PHOLD.
	Imbalance        int  `json:"imbalance,omitempty"`
	NonLinear        bool `json:"nonlinear,omitempty"`
	StartEventsPerLP int  `json:"start_events_per_lp,omitempty"`
	// Epidemics.
	LockdownGroups     int     `json:"lockdown_groups,omitempty"`
	AgentsPerHousehold int     `json:"agents_per_household,omitempty"`
	ContactRate        float64 `json:"contact_rate,omitempty"`
	TransmissionProb   float64 `json:"transmission_prob,omitempty"`
	SeedsPerWindow     int     `json:"seeds_per_window,omitempty"`
	// Traffic.
	DensityGradient   float64 `json:"density_gradient,omitempty"`
	CenterStartEvents int     `json:"center_start_events,omitempty"`
}

func encodeModel(m Model) (*modelJSON, error) {
	switch m := m.(type) {
	case nil:
		return nil, nil
	case PHOLD:
		return &modelJSON{
			Name:             "phold",
			LPsPerThread:     m.LPsPerThread,
			Imbalance:        m.Imbalance,
			NonLinear:        m.NonLinear,
			StartEventsPerLP: m.StartEventsPerLP,
		}, nil
	case Epidemics:
		return &modelJSON{
			Name:               "epidemics",
			LPsPerThread:       m.LPsPerThread,
			LockdownGroups:     m.LockdownGroups,
			AgentsPerHousehold: m.AgentsPerHousehold,
			ContactRate:        m.ContactRate,
			TransmissionProb:   m.TransmissionProb,
			SeedsPerWindow:     m.SeedsPerWindow,
		}, nil
	case Traffic:
		return &modelJSON{
			Name:              "traffic",
			LPsPerThread:      m.LPsPerThread,
			DensityGradient:   m.DensityGradient,
			CenterStartEvents: m.CenterStartEvents,
		}, nil
	}
	return nil, fmt.Errorf("ggpdes: model %T has no wire form", m)
}

func decodeModel(mj *modelJSON) (Model, error) {
	if mj == nil {
		return nil, nil
	}
	switch mj.Name {
	case "phold":
		return PHOLD{
			LPsPerThread:     mj.LPsPerThread,
			Imbalance:        mj.Imbalance,
			NonLinear:        mj.NonLinear,
			StartEventsPerLP: mj.StartEventsPerLP,
		}, nil
	case "epidemics":
		return Epidemics{
			LPsPerThread:       mj.LPsPerThread,
			LockdownGroups:     mj.LockdownGroups,
			AgentsPerHousehold: mj.AgentsPerHousehold,
			ContactRate:        mj.ContactRate,
			TransmissionProb:   mj.TransmissionProb,
			SeedsPerWindow:     mj.SeedsPerWindow,
		}, nil
	case "traffic":
		return Traffic{
			LPsPerThread:      mj.LPsPerThread,
			DensityGradient:   mj.DensityGradient,
			CenterStartEvents: mj.CenterStartEvents,
		}, nil
	}
	return nil, fmt.Errorf("ggpdes: unknown model %q (want phold | epidemics | traffic)", mj.Name)
}

// MarshalJSON implements json.Marshaler.
func (c Config) MarshalJSON() ([]byte, error) {
	mj, err := encodeModel(c.Model)
	if err != nil {
		return nil, err
	}
	w := configJSON{
		Model:                mj,
		Threads:              c.Threads,
		System:               c.System.String(),
		GVT:                  c.GVT.String(),
		Affinity:             c.Affinity.String(),
		EndTime:              c.EndTime,
		Seed:                 c.Seed,
		GVTFrequency:         c.GVTFrequency,
		ZeroCounterThreshold: c.ZeroCounterThreshold,
		BatchSize:            c.BatchSize,
		LPsPerKP:             c.LPsPerKP,
		Queue:                c.Queue.String(),
		StateSaving:          c.StateSaving.String(),
		LazyCancellation:     c.LazyCancellation,
		OptimismWindow:       c.OptimismWindow,
		DisablePooling:       c.DisablePooling,
	}
	if c.Machine != (Machine{}) {
		w.Machine = &machineJSON{
			Cores:     c.Machine.Cores,
			SMTWidth:  c.Machine.SMTWidth,
			FreqHz:    c.Machine.FreqHz,
			NUMANodes: c.Machine.NUMANodes,
			MaxTicks:  c.Machine.MaxTicks,
		}
	}
	if a := c.AdaptiveGVT; a != nil {
		w.AdaptiveGVT = &adaptiveJSON{
			MinFrequency:               a.MinFrequency,
			MaxFrequency:               a.MaxFrequency,
			TargetUncommittedPerThread: a.TargetUncommittedPerThread,
		}
	}
	if ck := c.Checkpoint; ck != nil {
		cp := *ck
		w.Checkpoint = &cp
	}
	if ch := c.Chaos; ch != nil {
		cp := *ch
		w.Chaos = &cp
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler. It overwrites every wire
// field of c (absent fields become their zero values) and leaves the
// non-wire attachments — Trace, Progress, Series, Telemetry —
// untouched.
func (c *Config) UnmarshalJSON(data []byte) error {
	var w configJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("ggpdes: decoding config: %w", err)
	}
	model, err := decodeModel(w.Model)
	if err != nil {
		return err
	}
	out := Config{
		Model:                model,
		Threads:              w.Threads,
		EndTime:              w.EndTime,
		Seed:                 w.Seed,
		GVTFrequency:         w.GVTFrequency,
		ZeroCounterThreshold: w.ZeroCounterThreshold,
		BatchSize:            w.BatchSize,
		LPsPerKP:             w.LPsPerKP,
		LazyCancellation:     w.LazyCancellation,
		OptimismWindow:       w.OptimismWindow,
		DisablePooling:       w.DisablePooling,
		Trace:                c.Trace,
		Progress:             c.Progress,
		Series:               c.Series,
		Telemetry:            c.Telemetry,
	}
	if w.System != "" {
		if out.System, err = ParseSystem(w.System); err != nil {
			return err
		}
	}
	if w.GVT != "" {
		if out.GVT, err = ParseGVT(w.GVT); err != nil {
			return err
		}
	}
	if w.Affinity != "" {
		if out.Affinity, err = ParseAffinity(w.Affinity); err != nil {
			return err
		}
	}
	if w.Queue != "" {
		if out.Queue, err = ParseQueue(w.Queue); err != nil {
			return err
		}
	}
	if w.StateSaving != "" {
		if out.StateSaving, err = ParseStateSaving(w.StateSaving); err != nil {
			return err
		}
	}
	if m := w.Machine; m != nil {
		out.Machine = Machine{
			Cores:     m.Cores,
			SMTWidth:  m.SMTWidth,
			FreqHz:    m.FreqHz,
			NUMANodes: m.NUMANodes,
			MaxTicks:  m.MaxTicks,
		}
	}
	if a := w.AdaptiveGVT; a != nil {
		out.AdaptiveGVT = &AdaptiveGVT{
			MinFrequency:               a.MinFrequency,
			MaxFrequency:               a.MaxFrequency,
			TargetUncommittedPerThread: a.TargetUncommittedPerThread,
		}
	}
	if ck := w.Checkpoint; ck != nil {
		cp := *ck
		out.Checkpoint = &cp
	}
	if ch := w.Chaos; ch != nil {
		cp := *ch
		out.Chaos = &cp
	}
	*c = out
	return nil
}
