package ggpdes

import (
	"fmt"
	"strings"
)

// ParseSystem converts a user-facing system name ("baseline", "dd",
// "dd-pdes", "gg", "gg-pdes") to its enum value.
func ParseSystem(s string) (System, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return Baseline, nil
	case "dd", "dd-pdes", "ddpdes":
		return DDPDES, nil
	case "gg", "gg-pdes", "ggpdes":
		return GGPDES, nil
	default:
		return 0, fmt.Errorf("ggpdes: unknown system %q (want baseline | dd | gg)", s)
	}
}

// ParseGVT converts a GVT algorithm name ("sync"/"barrier",
// "async"/"waitfree") to its enum value.
func ParseGVT(s string) (GVT, error) {
	switch strings.ToLower(s) {
	case "sync", "barrier":
		return Barrier, nil
	case "async", "waitfree", "wait-free":
		return WaitFree, nil
	default:
		return 0, fmt.Errorf("ggpdes: unknown gvt algorithm %q (want sync | async)", s)
	}
}

// ParseAffinity converts an affinity algorithm name ("none",
// "constant", "dynamic") to its enum value.
func ParseAffinity(s string) (Affinity, error) {
	switch strings.ToLower(s) {
	case "none":
		return NoAffinity, nil
	case "constant":
		return ConstantAffinity, nil
	case "dynamic":
		return DynamicAffinity, nil
	default:
		return 0, fmt.Errorf("ggpdes: unknown affinity %q (want none | constant | dynamic)", s)
	}
}

// ParseQueue converts a pending-queue kind name ("splay", "heap",
// "calendar") to its enum value.
func ParseQueue(s string) (Queue, error) {
	switch strings.ToLower(s) {
	case "splay":
		return SplayQueue, nil
	case "heap":
		return HeapQueue, nil
	case "calendar":
		return CalendarQueue, nil
	default:
		return 0, fmt.Errorf("ggpdes: unknown queue %q (want splay | heap | calendar)", s)
	}
}

// ParseStateSaving converts a rollback mechanism name ("copy",
// "reverse") to its enum value.
func ParseStateSaving(s string) (StateSaving, error) {
	switch strings.ToLower(s) {
	case "copy":
		return CopyState, nil
	case "reverse":
		return ReverseComputation, nil
	default:
		return 0, fmt.Errorf("ggpdes: unknown state saving %q (want copy | reverse)", s)
	}
}
