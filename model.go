package ggpdes

import (
	"fmt"

	"ggpdes/internal/models"
	"ggpdes/internal/tw"
)

// Model is a simulation workload. The three implementations mirror the
// paper's applications: PHOLD, Epidemics, Traffic.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// build instantiates the internal model for a thread count and end
	// time.
	build(threads int, endTime float64) (tw.Model, error)
	// canon renders the model's full parameter set, defaults applied,
	// as a stable one-line string for Config.CacheKey. Two models with
	// the same canon string simulate identically.
	canon(threads int, endTime float64) (string, error)
}

// PHOLD is the classical synthetic benchmark (§2.3.1). The zero value
// is the balanced model with the paper's 128 LPs per thread.
type PHOLD struct {
	// LPsPerThread is LPs served per thread (0 = 128, the paper's
	// setting — large; examples and benches use smaller values).
	LPsPerThread int
	// Imbalance selects the 1-K imbalanced variant (0 or 1 = balanced).
	Imbalance int
	// NonLinear makes the active thread groups non-consecutive
	// (Figure 7b's pathological case for constant affinity).
	NonLinear bool
	// StartEventsPerLP is each LP's initial event count (0 = 1).
	StartEventsPerLP int
}

// Name implements Model.
func (p PHOLD) Name() string {
	tag := "phold"
	if p.Imbalance > 1 {
		tag = fmt.Sprintf("phold-1-%d", p.Imbalance)
	}
	if p.NonLinear {
		tag += "-nonlinear"
	}
	return tag
}

func (p PHOLD) build(threads int, endTime float64) (tw.Model, error) {
	lps := p.LPsPerThread
	if lps == 0 {
		lps = 128
	}
	return models.NewPHOLD(models.PHOLDConfig{
		Threads:          threads,
		LPsPerThread:     lps,
		Imbalance:        p.Imbalance,
		NonLinear:        p.NonLinear,
		EndTime:          endTime,
		StartEventsPerLP: p.StartEventsPerLP,
	})
}

func (p PHOLD) canon(threads int, endTime float64) (string, error) {
	m, err := p.build(threads, endTime)
	if err != nil {
		return "", err
	}
	c := m.(*models.PHOLD).Config()
	return fmt.Sprintf("phold{lps=%d imbalance=%d nonlinear=%t start=%d lamin=%g lamean=%g}",
		c.LPsPerThread, c.Imbalance, c.NonLinear, c.StartEventsPerLP,
		c.LookaheadMin, c.LookaheadMean), nil
}

// Epidemics is the location-aware SEIR model (§2.3.2). The zero value
// uses the paper's 4 agents per household under a 3/4 lock-down.
type Epidemics struct {
	// LPsPerThread is households per thread (0 = 4096, the paper's
	// setting — very large; examples and benches use smaller values).
	LPsPerThread int
	// LockdownGroups is K for a (K-1)/K lock-down: 4 = 3/4, 8 = 7/8
	// (0 = 4).
	LockdownGroups int
	// AgentsPerHousehold is the household size (0 = 4).
	AgentsPerHousehold int
	// ContactRate is contact events per infectious agent per unit time
	// (0 = 2).
	ContactRate float64
	// TransmissionProb is exposure probability per contact (0 = 0.35).
	TransmissionProb float64
	// SeedsPerWindow is the number of exogenous importations at each
	// lock-down window start (0 = 3). Scale with the unlocked
	// population to keep activity dense.
	SeedsPerWindow int
}

// Name implements Model.
func (e Epidemics) Name() string {
	k := e.LockdownGroups
	if k == 0 {
		k = 4
	}
	return fmt.Sprintf("epidemics-%d-%d", k-1, k)
}

func (e Epidemics) build(threads int, endTime float64) (tw.Model, error) {
	lps := e.LPsPerThread
	if lps == 0 {
		lps = 4096
	}
	k := e.LockdownGroups
	if k == 0 {
		k = 4
	}
	return models.NewEpidemics(models.EpidemicsConfig{
		Threads:            threads,
		LPsPerThread:       lps,
		AgentsPerHousehold: e.AgentsPerHousehold,
		LockdownGroups:     k,
		EndTime:            endTime,
		ContactRate:        e.ContactRate,
		TransmissionProb:   e.TransmissionProb,
		SeedsPerWindow:     e.SeedsPerWindow,
	})
}

func (e Epidemics) canon(threads int, endTime float64) (string, error) {
	m, err := e.build(threads, endTime)
	if err != nil {
		return "", err
	}
	c := m.(*models.Epidemics).Config()
	return fmt.Sprintf("epidemics{lps=%d agents=%d lockdown=%d incubation=%g infectious=%g contact=%g transmission=%g radius=%d seeds=%d}",
		c.LPsPerThread, c.AgentsPerHousehold, c.LockdownGroups,
		c.IncubationMean, c.InfectiousMean, c.ContactRate,
		c.TransmissionProb, c.NeighborhoodRadius, c.SeedsPerWindow), nil
}

// Traffic is the intersection-grid vehicular model (§2.3.3). The zero
// value uses the paper's gradient 0.35 and 24 centre start events.
type Traffic struct {
	// LPsPerThread is intersections per thread (0 = 96, the paper's
	// setting); Threads × LPsPerThread must be a perfect square.
	LPsPerThread int
	// DensityGradient is the inverse-power exponent (0 = 0.35).
	DensityGradient float64
	// CenterStartEvents is the centre LP's initial vehicles (0 = 24).
	CenterStartEvents int
}

// Name implements Model.
func (t Traffic) Name() string {
	g := t.DensityGradient
	if g == 0 {
		g = 0.35
	}
	return fmt.Sprintf("traffic-%.2f", g)
}

func (t Traffic) build(threads int, endTime float64) (tw.Model, error) {
	lps := t.LPsPerThread
	if lps == 0 {
		lps = 96
	}
	return models.NewTraffic(models.TrafficConfig{
		Threads:           threads,
		LPsPerThread:      lps,
		DensityGradient:   t.DensityGradient,
		CenterStartEvents: t.CenterStartEvents,
	})
}

func (t Traffic) canon(threads int, endTime float64) (string, error) {
	m, err := t.build(threads, endTime)
	if err != nil {
		return "", err
	}
	c := m.(*models.Traffic).Config()
	return fmt.Sprintf("traffic{lps=%d gradient=%g center=%d service=%g burrc=%g burrk=%g bias=%g}",
		c.LPsPerThread, c.DensityGradient, c.CenterStartEvents,
		c.ServiceMean, c.BurrC, c.BurrK, c.CenterBias), nil
}
