module ggpdes

go 1.22
