package ggpdes

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg returns a small, fast configuration for API tests.
func quickCfg() Config {
	return Config{
		Model:                PHOLD{LPsPerThread: 4, Imbalance: 2},
		Threads:              8,
		System:               GGPDES,
		GVT:                  WaitFree,
		EndTime:              30,
		Machine:              SmallMachine(),
		GVTFrequency:         20,
		ZeroCounterThreshold: 60,
	}
}

func TestRunValidation(t *testing.T) {
	cases := []Config{
		{},                                       // no model
		{Model: PHOLD{}, Threads: 0, EndTime: 1}, // no threads
		{Model: PHOLD{}, Threads: 1, EndTime: 0}, // no end time
		{Model: PHOLD{LPsPerThread: 1, Imbalance: 3}, Threads: 4, EndTime: 1, Machine: SmallMachine()}, // bad imbalance
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunQuickstart(t *testing.T) {
	res, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedEvents == 0 || res.CommittedEventRate <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.FinalGVT < 30 {
		t.Fatalf("simulation incomplete: GVT %v", res.FinalGVT)
	}
	if res.WallClockSeconds <= 0 || res.TotalCycles == 0 {
		t.Fatal("machine metrics missing")
	}
	if res.GVTRounds == 0 || res.GVTCPUSeconds <= 0 {
		t.Fatal("GVT metrics missing")
	}
}

func TestResultsDerivedMetrics(t *testing.T) {
	res, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.GVTCPUSecondsPerRound() <= 0 {
		t.Fatal("per-round GVT time missing")
	}
	if e := res.Efficiency(); e <= 0 || e > 1 {
		t.Fatalf("efficiency = %v", e)
	}
	zero := &Results{}
	if zero.GVTCPUSecondsPerRound() != 0 || zero.Efficiency() != 0 {
		t.Fatal("zero-value derived metrics should be 0")
	}
}

func TestAllModelsRunThroughAPI(t *testing.T) {
	cfgs := []Config{
		{Model: PHOLD{LPsPerThread: 4}, Threads: 4, EndTime: 20},
		{Model: Epidemics{LPsPerThread: 8, LockdownGroups: 4, ContactRate: 3, TransmissionProb: 0.5}, Threads: 4, EndTime: 20},
		{Model: Traffic{LPsPerThread: 4, CenterStartEvents: 6}, Threads: 4, EndTime: 10},
	}
	for _, cfg := range cfgs {
		cfg.Machine = SmallMachine()
		cfg.GVTFrequency = 20
		cfg.ZeroCounterThreshold = 60
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Model.Name(), err)
		}
		if res.CommittedEvents == 0 {
			t.Fatalf("%s committed nothing", cfg.Model.Name())
		}
	}
}

func TestModelNames(t *testing.T) {
	cases := map[string]Model{
		"phold":               PHOLD{},
		"phold-1-4":           PHOLD{Imbalance: 4},
		"phold-1-8-nonlinear": PHOLD{Imbalance: 8, NonLinear: true},
		"epidemics-3-4":       Epidemics{},
		"epidemics-7-8":       Epidemics{LockdownGroups: 8},
		"traffic-0.35":        Traffic{},
		"traffic-0.50":        Traffic{DensityGradient: 0.5},
	}
	for want, m := range cases {
		if got := m.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if Baseline.String() != "baseline" || GGPDES.String() != "gg-pdes" {
		t.Fatal("system strings wrong")
	}
	if Barrier.String() != "barrier" || WaitFree.String() != "waitfree" {
		t.Fatal("gvt strings wrong")
	}
	if NoAffinity.String() != "none" || DynamicAffinity.String() != "dynamic" {
		t.Fatal("affinity strings wrong")
	}
	if SplayQueue.String() != "splay" || CalendarQueue.String() != "calendar" {
		t.Fatal("queue strings wrong")
	}
}

func TestMachinePresets(t *testing.T) {
	knl := KNL7230()
	if knl.Cores != 64 || knl.SMTWidth != 4 {
		t.Fatalf("KNL preset wrong: %+v", knl)
	}
	small := SmallMachine()
	if small.Cores != 4 || small.SMTWidth != 2 {
		t.Fatalf("small preset wrong: %+v", small)
	}
	// Custom SMT wider than the KNL curve extends it.
	cfg, err := Machine{Cores: 2, SMTWidth: 8}.build()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.SMTAggregate) != 8 {
		t.Fatalf("SMT curve not extended: %v", cfg.SMTAggregate)
	}
}

func TestDeterministicAPIRuns(t *testing.T) {
	a, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.CommittedEvents != b.CommittedEvents || a.WallClockSeconds != b.WallClockSeconds ||
		a.TotalCycles != b.TotalCycles {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	cfg := quickCfg()
	cfg.Seed = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CommittedEvents == b.CommittedEvents && a.TotalCycles == b.TotalCycles {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestQueueKindsAgreeOnCommitted(t *testing.T) {
	var committed []uint64
	for _, q := range []Queue{SplayQueue, HeapQueue, CalendarQueue} {
		cfg := quickCfg()
		cfg.Queue = q
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		committed = append(committed, res.CommittedEvents)
	}
	if committed[0] != committed[1] || committed[1] != committed[2] {
		t.Fatalf("queue kinds disagree: %v", committed)
	}
}

// The headline claim, miniaturized: on an imbalanced model, GG-PDES
// (Async) must beat Baseline-Async in committed event rate and execute
// fewer total cycles.
func TestGGBeatsBaselineAsyncOnImbalance(t *testing.T) {
	run := func(sys System) *Results {
		cfg := Config{
			Model:                PHOLD{LPsPerThread: 4, Imbalance: 4},
			Threads:              16,
			System:               sys,
			GVT:                  WaitFree,
			EndTime:              60,
			Machine:              SmallMachine(),
			GVTFrequency:         20,
			ZeroCounterThreshold: 60,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(Baseline)
	gg := run(GGPDES)
	if gg.Deactivations == 0 {
		t.Fatal("GG never deactivated")
	}
	if gg.TotalCycles >= base.TotalCycles {
		t.Fatalf("GG cycles %d not below baseline %d", gg.TotalCycles, base.TotalCycles)
	}
	if gg.CommittedEventRate <= base.CommittedEventRate {
		t.Fatalf("GG rate %.0f not above baseline %.0f", gg.CommittedEventRate, base.CommittedEventRate)
	}
}

func TestTraceRecordsRun(t *testing.T) {
	var csv bytes.Buffer
	cfg := quickCfg()
	cfg.Model = PHOLD{LPsPerThread: 4, Imbalance: 4}
	cfg.Threads = 16
	cfg.EndTime = 60
	cfg.Trace = &TraceOptions{CSV: &csv}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceSummary == "" {
		t.Fatal("no trace summary")
	}
	for _, want := range []string{"gvt updates", "deactivations"} {
		if !strings.Contains(res.TraceSummary, want) {
			t.Fatalf("summary %q missing %q", res.TraceSummary, want)
		}
	}
	if res.Deactivations > 0 && res.InactiveFraction <= 0 {
		t.Fatalf("deactivations %d but inactive fraction %v", res.Deactivations, res.InactiveFraction)
	}
	out := csv.String()
	if !strings.Contains(out, "gvt,") || !strings.Contains(out, "deactivate,") {
		t.Fatalf("csv missing records:\n%.300s", out)
	}
}

func TestReverseComputationThroughAPI(t *testing.T) {
	cfg := quickCfg()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StateSaving = ReverseComputation
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CommittedEvents != b.CommittedEvents {
		t.Fatalf("reverse committed %d != copy %d", b.CommittedEvents, a.CommittedEvents)
	}
	if CopyState.String() != "copy" || ReverseComputation.String() != "reverse" {
		t.Fatal("state saving strings wrong")
	}
}

func TestAdaptiveGVTThroughAPI(t *testing.T) {
	cfg := quickCfg()
	cfg.Model = PHOLD{LPsPerThread: 8, Imbalance: 2}
	cfg.Threads = 8
	cfg.GVTFrequency = 64
	cfg.AdaptiveGVT = &AdaptiveGVT{MinFrequency: 4, MaxFrequency: 64, TargetUncommittedPerThread: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalGVTFrequency >= 64 {
		t.Fatalf("frequency never adapted: %d", res.FinalGVTFrequency)
	}
	if res.PeakUncommittedEvents <= 0 {
		t.Fatal("no memory accounting")
	}
	// Fixed-frequency run for comparison keeps the configured value.
	cfg.AdaptiveGVT = nil
	fixed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.FinalGVTFrequency != 64 {
		t.Fatalf("fixed frequency drifted: %d", fixed.FinalGVTFrequency)
	}
}

func TestAdaptiveGVTBoundsMemory(t *testing.T) {
	base := Config{
		Model:                PHOLD{LPsPerThread: 16},
		Threads:              8,
		System:               Baseline,
		GVT:                  WaitFree,
		EndTime:              60,
		Machine:              SmallMachine(),
		GVTFrequency:         512, // rare rounds: memory piles up
		ZeroCounterThreshold: 600,
	}
	rare, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// The adaptive run starts at a moderate frequency (adaptation can
	// only act after the first round) and tunes down toward the target.
	adaptive := base
	adaptive.GVTFrequency = 64
	adaptive.AdaptiveGVT = &AdaptiveGVT{MinFrequency: 8, MaxFrequency: 512, TargetUncommittedPerThread: 8}
	tuned, err := Run(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.PeakUncommittedEvents >= rare.PeakUncommittedEvents {
		t.Fatalf("adaptive peak %d not below fixed-rare peak %d",
			tuned.PeakUncommittedEvents, rare.PeakUncommittedEvents)
	}
	if tuned.FinalGVTFrequency >= 64 {
		t.Fatalf("frequency did not tune down: %d", tuned.FinalGVTFrequency)
	}
}

func TestLazyCancellationThroughAPI(t *testing.T) {
	cfg := quickCfg()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LazyCancellation = true
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CommittedEvents != b.CommittedEvents {
		t.Fatalf("lazy committed %d != aggressive %d", b.CommittedEvents, a.CommittedEvents)
	}
	if b.Rollbacks > 0 && b.LazyReused+b.LazyCancelled == 0 {
		t.Fatal("lazy run rolled back but recorded no lazy outcomes")
	}
}

func TestNUMAMachineThroughAPI(t *testing.T) {
	cfg := Config{
		Model:                PHOLD{LPsPerThread: 4, Imbalance: 4, NonLinear: true},
		Threads:              16,
		System:               GGPDES,
		GVT:                  WaitFree,
		Affinity:             DynamicAffinity,
		EndTime:              40,
		Machine:              Machine{Cores: 8, SMTWidth: 2, FreqHz: 1.3e9, NUMANodes: 2},
		GVTFrequency:         20,
		ZeroCounterThreshold: 200,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedEvents == 0 {
		t.Fatal("nothing committed")
	}
	if res.Repins == 0 {
		t.Fatal("dynamic affinity idle on NUMA machine")
	}
	knl := KNL7230SNC4()
	if knl.NUMANodes != 4 {
		t.Fatal("SNC4 preset wrong")
	}
}
