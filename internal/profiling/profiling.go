// Package profiling wires the standard runtime/pprof collectors into
// the command-line tools: ggsim and ggbench both accept -cpuprofile
// and -memprofile flags and hand them to Start. The resulting files
// feed `go tool pprof` (see README "Performance").
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either may be empty to skip that profile. It returns a stop
// function to call exactly once, after the measured work: it stops the
// CPU profile and writes the heap profile (after a GC, so the snapshot
// shows live retained memory rather than collectable garbage).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
