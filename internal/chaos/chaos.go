// Package chaos provides deterministic fault injectors for exercising
// the fault-tolerance machinery: dropped and delayed inter-peer sends
// (tw.SendFaultInjector), killed and stalled simulation threads
// (core.ThreadFaultInjector), and planned serve-worker crashes.
//
// Every injector is seeded and decides faults from its own PCG streams,
// so a given (seed, configuration) pair injects the exact same fault
// sequence on every run — chaos tests are reproducible and failures
// replayable. Injectors are scoped to a single run segment; the driver
// rebuilds them per segment, which is itself deterministic because both
// the in-process and resumed restore paths rebuild at the same
// boundaries.
package chaos

import (
	"errors"
	"hash/fnv"

	"ggpdes/internal/rng"
)

// ErrInjectedCrash is the cancellation cause of a serve-worker attempt
// killed by crash injection; the retry loop classifies it as retryable.
var ErrInjectedCrash = errors.New("chaos: injected worker crash")

// SendFaults drops or delays positive cross-peer event sends. It
// implements tw.SendFaultInjector.
type SendFaults struct {
	stream    *rng.Stream
	dropRate  float64
	delayRate float64
	hold      uint64

	// Dropped and Delayed count injected faults (read after the run).
	Dropped uint64
	Delayed uint64
}

// DefaultDelayHold is how many subsequent cross-peer sends a delayed
// message waits for when no hold is configured.
const DefaultDelayHold = 64

// NewSendFaults builds an injector that drops each cross-peer send with
// probability dropRate and delays it by hold subsequent sends with
// probability delayRate (hold <= 0 selects DefaultDelayHold). Rates are
// disjoint: a send is dropped, delayed or delivered.
func NewSendFaults(seed uint64, dropRate, delayRate float64, hold int) *SendFaults {
	if hold <= 0 {
		hold = DefaultDelayHold
	}
	return &SendFaults{
		stream:    rng.New(seed, 0x5e4d),
		dropRate:  dropRate,
		delayRate: delayRate,
		hold:      uint64(hold),
	}
}

// Outcome implements tw.SendFaultInjector. Machine execution serializes
// engine sends, so drawing from one stream is deterministic.
func (f *SendFaults) Outcome(n uint64) (drop bool, hold uint64) {
	_ = n
	u := f.stream.Float64()
	switch {
	case u < f.dropRate:
		f.Dropped++
		return true, 0
	case u < f.dropRate+f.delayRate:
		f.Delayed++
		return false, f.hold
	}
	return false, 0
}

// ThreadFaults kills and stalls simulation threads. It implements
// core.ThreadFaultInjector.
type ThreadFaults struct {
	stallRate  float64
	killThread int
	killAtIter uint64
	streams    []*rng.Stream

	// Stalls counts injected stall iterations.
	Stalls uint64
}

// NewThreadFaults builds an injector for threads threads. Each thread
// iteration stalls with probability stallRate (drawn from a per-thread
// stream so decisions are independent of interleaving). When killAtIter
// is non-zero, thread killThread dies at that main-loop iteration.
func NewThreadFaults(seed uint64, threads int, stallRate float64, killThread int, killAtIter uint64) *ThreadFaults {
	f := &ThreadFaults{
		stallRate:  stallRate,
		killThread: killThread,
		killAtIter: killAtIter,
		streams:    make([]*rng.Stream, threads),
	}
	for i := range f.streams {
		f.streams[i] = rng.New(seed, 0xfa17+uint64(i))
	}
	return f
}

// Killed implements core.ThreadFaultInjector.
func (f *ThreadFaults) Killed(tid int, iter uint64) bool {
	return f.killAtIter != 0 && tid == f.killThread && iter >= f.killAtIter
}

// Stalled implements core.ThreadFaultInjector.
func (f *ThreadFaults) Stalled(tid int, iter uint64) bool {
	if f.stallRate <= 0 || tid >= len(f.streams) {
		return false
	}
	if f.streams[tid].Float64() < f.stallRate {
		f.Stalls++
		return true
	}
	return false
}

// WorkerCrashes plans serve-worker crashes: for each (job, attempt) it
// decides up front whether the attempt crashes and at which fraction of
// simulated progress, so the serve layer can arm a cancellation trigger
// before the run starts. Decisions depend only on (seed, jobKey,
// attempt) — resubmitting a job replays its crash schedule.
type WorkerCrashes struct {
	seed uint64
	rate float64
}

// NewWorkerCrashes builds a planner that crashes each attempt with
// probability rate.
func NewWorkerCrashes(seed uint64, rate float64) *WorkerCrashes {
	return &WorkerCrashes{seed: seed, rate: rate}
}

// Plan returns whether the attempt crashes and, if so, the GVT fraction
// (in (0, 1)) at which the crash fires.
func (w *WorkerCrashes) Plan(jobKey string, attempt int) (crash bool, atFraction float64) {
	h := fnv.New64a()
	h.Write([]byte(jobKey))
	h.Write([]byte{byte(attempt), byte(attempt >> 8), byte(attempt >> 16), byte(attempt >> 24)})
	s := rng.New(w.seed, h.Sum64())
	if s.Float64() >= w.rate {
		return false, 0
	}
	return true, 0.05 + 0.9*s.Float64()
}
