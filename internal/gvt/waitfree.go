package gvt

import (
	"fmt"
	"math"

	"ggpdes/internal/machine"
	"ggpdes/internal/tw"
)

// wfPhase is a thread's position in the five-phase protocol. The Aware
// and End phases execute within a single Step once the B cut is
// complete, so only three waiting states are needed.
type wfPhase uint8

const (
	wfIdle  wfPhase = iota // between rounds
	wfSend                 // recorded cut A, processing until all reach A
	wfWaitB                // recorded cut B, waiting for all to reach B
)

// waitFree is the asynchronous Wait-Free GVT: five phases (A, Send, B,
// Aware, End) delimited by two consistent cuts. Threads never block;
// they keep executing events between phase transitions, paying a
// phase-check cost per main-loop iteration — which is exactly the
// overhead GG-PDES removes for de-scheduled threads.
//
// Transit safety: a thread's B cut folds in the minimum timestamp it
// sent since its previous B cut (a continuous window), and the
// pseudo-controller folds in the full queue minimum (pending + input)
// of every thread that contributed no cut this round — de-scheduled
// threads and threads waiting to rejoin.
type waitFree struct {
	cfg   Config
	costs Costs
	eng   *tw.Engine

	phase        []wfPhase
	iters        []int
	allowedRound []uint64
	localMinA    []tw.VT
	localMinB    []tw.VT
	cutDone      []bool
	subscribed   []bool
	// inRound marks threads counted in the currently-open round (set
	// at Phase A entry, cleared at reset); Leave uses it to decide
	// whether the open round must shrink.
	inRound []bool
	// cpus holds the per-thread engine-charge adapters (see gvtCPU).
	cpus []gvtCPU

	freq              int
	round             uint64
	roundParticipants int
	participants      int
	pendingJoins      int
	countA, countB    int
	countEnd          int
	awareTaken        bool
	rounds            uint64
	rt                roundTelemetry
}

func newWaitFree(cfg Config) *waitFree {
	n := len(cfg.Engine.Peers())
	w := &waitFree{
		cfg:               cfg,
		costs:             cfg.Costs,
		eng:               cfg.Engine,
		phase:             make([]wfPhase, n),
		iters:             make([]int, n),
		allowedRound:      make([]uint64, n),
		localMinA:         make([]tw.VT, n),
		localMinB:         make([]tw.VT, n),
		cutDone:           make([]bool, n),
		subscribed:        make([]bool, n),
		inRound:           make([]bool, n),
		cpus:              make([]gvtCPU, n),
		freq:              cfg.Frequency,
		roundParticipants: n,
		participants:      n,
		rt:                newRoundTelemetry(&cfg),
	}
	for i := range w.subscribed {
		w.subscribed[i] = true
	}
	return w
}

// Name implements Algorithm.
func (w *waitFree) Name() string { return "waitfree" }

// Participants implements Algorithm.
func (w *waitFree) Participants() int { return w.participants }

// Rounds implements Algorithm.
func (w *waitFree) Rounds() uint64 { return w.rounds }

// Frequency implements Algorithm.
func (w *waitFree) Frequency() int { return w.freq }

// charge books cycles both to the thread (via acc) and to its GVT CPU
// time counter.
func (w *waitFree) charge(acc *machine.Acc, tid int, cycles uint64) {
	acc.Work(cycles)
	w.eng.Peer(tid).Stats.GVTCycles += cycles
}

// gvtCPU routes engine-operation charges into GVT accounting. The
// algorithms keep one per thread and pass it by pointer: converting a
// two-word struct value to the tw.CPU interface would heap-allocate on
// every GVT phase step.
type gvtCPU struct {
	acc  *machine.Acc
	peer *tw.Peer
}

func (g *gvtCPU) Work(c uint64) {
	g.acc.Work(c)
	g.peer.Stats.GVTCycles += c
}

// cpu refreshes and returns the thread's charge adapter.
func (w *waitFree) cpu(acc *machine.Acc, tid int, peer *tw.Peer) *gvtCPU {
	c := &w.cpus[tid]
	c.acc, c.peer = acc, peer
	return c
}

// Step implements Algorithm.
func (w *waitFree) Step(p *machine.Proc, acc *machine.Acc, tid int) {
	peer := w.eng.Peer(tid)
	switch w.phase[tid] {
	case wfIdle:
		w.charge(acc, tid, w.costs.PhaseCheckCycles)
		w.iters[tid]++
		if w.iters[tid] < w.freq || w.allowedRound[tid] > w.round {
			return
		}
		// Phase A: record the first cut.
		if w.countA == 0 {
			if f := w.cfg.OnCut; f != nil {
				f(1, w.round)
			}
		}
		w.localMinA[tid] = peer.LocalMin(w.cpu(acc, tid, peer))
		w.charge(acc, tid, w.costs.PhaseAdvanceCycles)
		w.countA++
		w.inRound[tid] = true
		w.phase[tid] = wfSend
		w.stepSend(p, acc, tid, peer)
	case wfSend:
		w.charge(acc, tid, w.costs.PhaseCheckCycles)
		w.stepSend(p, acc, tid, peer)
	case wfWaitB:
		w.charge(acc, tid, w.costs.PhaseCheckCycles)
		w.stepAwareEnd(p, acc, tid, peer)
	}
}

// stepSend advances A -> B when every participant has recorded cut A.
func (w *waitFree) stepSend(p *machine.Proc, acc *machine.Acc, tid int, peer *tw.Peer) {
	if w.countA < w.roundParticipants {
		return
	}
	// Phase B: second cut, folding the continuous sent-minimum window.
	min := w.localMinA[tid]
	ms, lm := peer.CutMins(w.cpu(acc, tid, peer))
	if ms < min {
		min = ms
	}
	if lm < min {
		min = lm
	}
	w.localMinB[tid] = min
	w.cutDone[tid] = true
	w.charge(acc, tid, w.costs.PhaseAdvanceCycles)
	w.countB++
	w.phase[tid] = wfWaitB
	w.stepAwareEnd(p, acc, tid, peer)
}

// stepAwareEnd performs Phase Aware (pseudo-controller election, GVT
// publication, activation scan) and Phase End (fossil collection,
// deactivation point, round bookkeeping) once the B cut is complete.
func (w *waitFree) stepAwareEnd(p *machine.Proc, acc *machine.Acc, tid int, peer *tw.Peer) {
	if w.countB < w.roundParticipants {
		return
	}
	if !w.awareTaken {
		// Phase Aware: this thread is the round's pseudo-controller.
		w.awareTaken = true
		gmin := math.Inf(1)
		for i := range w.cutDone {
			if w.cutDone[i] {
				if w.localMinB[i] < gmin {
					gmin = w.localMinB[i]
				}
			} else {
				// Threads without a cut this round (de-scheduled or
				// waiting to rejoin) are scanned on their behalf:
				// queues plus their unread sent-minimum window.
				rm, ms := w.eng.Peer(i).ScanMins()
				if rm < gmin {
					gmin = rm
				}
				if ms < gmin {
					gmin = ms
				}
			}
			w.charge(acc, tid, w.costs.ReduceCyclesPerThread)
		}
		if f := w.cfg.OnCut; f != nil {
			f(2, w.round)
		}
		w.eng.SetGVT(math.Min(gmin, w.eng.EndTime()))
		w.cfg.Hooks.OnAware(p, acc, tid)
	}
	// Phase End: housekeeping with the freshly published GVT.
	peer.FossilCollect(w.cpu(acc, tid, peer), w.eng.GVT())
	peer.Stats.GVTRounds++
	w.countEnd++
	w.phase[tid] = wfIdle
	w.iters[tid] = 0
	// Completed this round; only the next one may be entered.
	w.allowedRound[tid] = w.round + 1
	if w.countEnd == w.roundParticipants {
		w.resetRound(tid)
		w.cfg.Hooks.OnRoundComplete(p, acc, tid)
	}
	// Deactivation point (may block inside; Leave is called first).
	w.cfg.Hooks.OnEnd(p, acc, tid)
}

func (w *waitFree) resetRound(tid int) {
	w.round++
	w.rounds++
	w.rt.roundComplete(tid)
	if ad := w.cfg.Adaptive; ad != nil {
		w.freq = ad.adapt(w.freq, w.eng.PeakUncommittedSinceMark(), len(w.eng.Peers()))
		w.eng.MarkUncommitted()
	}
	w.countA, w.countB, w.countEnd = 0, 0, 0
	w.awareTaken = false
	w.participants += w.pendingJoins
	w.pendingJoins = 0
	w.roundParticipants = w.participants
	for i := range w.cutDone {
		w.cutDone[i] = false
		w.inRound[i] = false
	}
}

// Leave implements Algorithm: unsubscribe tid before it de-schedules.
func (w *waitFree) Leave(tid int) {
	if w.phase[tid] != wfIdle {
		panic(fmt.Sprintf("gvt: thread %d leaving mid-round (phase %d)", tid, w.phase[tid]))
	}
	if !w.subscribed[tid] {
		panic(fmt.Sprintf("gvt: thread %d left twice", tid))
	}
	w.subscribed[tid] = false
	w.participants--
	// Discard the thread's sent-minimum window: its past sends are
	// already accounted for by receiver queue scans, and a stale window
	// read after reactivation would drag the GVT backwards.
	w.eng.Peer(tid).TakeMinSent()
	if !w.inRound[tid] {
		// The open round has not counted this thread (it may have been
		// delayed on a lock between finishing its previous round and
		// de-scheduling, as in DD-PDES): shrink the round so it does
		// not wait for a thread that will never arrive.
		w.roundParticipants--
		if w.roundParticipants < 0 {
			panic("gvt: negative round participants")
		}
	}
	if w.participants == 0 {
		// The last subscriber is leaving. The scheduler guarantees an
		// active thread exists, so it must be waiting to join — its
		// participants++ would normally apply at the next round reset,
		// which will never come with nobody subscribed. Promote the
		// pending joiners into a fresh round right now.
		if w.pendingJoins == 0 {
			panic("gvt: no GVT participants left")
		}
		w.participants = w.pendingJoins
		w.pendingJoins = 0
		w.roundParticipants = w.participants
		w.countA, w.countB, w.countEnd = 0, 0, 0
		w.awareTaken = false
		for i := range w.subscribed {
			if w.subscribed[i] && w.allowedRound[i] > w.round {
				w.allowedRound[i] = w.round
			}
			w.cutDone[i] = false
			w.inRound[i] = false
		}
	}
	// Block the thread from wandering into a round that no longer
	// counts it, in case it is reactivated without a Join.
	w.allowedRound[tid] = math.MaxUint64
}

// Join implements Algorithm: resubscribe tid after reactivation; it
// participates from the next round.
func (w *waitFree) Join(tid int) {
	if w.subscribed[tid] {
		panic(fmt.Sprintf("gvt: thread %d joined twice", tid))
	}
	w.subscribed[tid] = true
	w.pendingJoins++
	w.allowedRound[tid] = w.round + 1
	w.iters[tid] = 0
	w.phase[tid] = wfIdle
}
