// Package gvt implements the two Global Virtual Time algorithms the
// paper evaluates: the synchronous Barrier GVT (descheduling
// pthread-style barriers, a perfect GVT) and the asynchronous Wait-Free
// GVT (the five-phase A / Send / B / Aware / End protocol GG-PDES
// couples its scheduling to).
//
// Demand-driven scheduling hooks into the algorithms at the points the
// paper prescribes: the pseudo-controller — the first thread to reach
// Phase Aware (or the barrier's serial thread) — runs activation; every
// thread may deactivate at Phase End; and the last thread to complete a
// round runs the Dynamic CPU Affinity pass.
package gvt

import (
	"fmt"

	"ggpdes/internal/machine"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/tw"
)

// Metric names the GVT layer registers.
const (
	// MetricRoundLatency is a histogram of wall cycles between
	// consecutive GVT round completions.
	MetricRoundLatency = "gvt.round_latency_cycles"
	// MetricRounds counts completed GVT rounds.
	MetricRounds = "gvt.rounds"
)

// roundTelemetry observes round-completion latency for both
// algorithms. Handles are per-thread registry shards, indexed by the
// tid that closes the round, so recording never contends with another
// thread's cells; the round timestamp itself is shared because round
// completion is a global event (machine-serialized, like everything
// here).
type roundTelemetry struct {
	clock   func() uint64
	latency []*telemetry.Histogram
	rounds  []*telemetry.Counter
	last    uint64
}

func newRoundTelemetry(cfg *Config) roundTelemetry {
	n := len(cfg.Engine.Peers())
	rt := roundTelemetry{
		clock:   cfg.Machine.NowCycles,
		latency: make([]*telemetry.Histogram, n),
		rounds:  make([]*telemetry.Counter, n),
	}
	for tid := 0; tid < n; tid++ {
		sh := cfg.Telemetry.Shard(tid)
		rt.latency[tid] = sh.Histogram(MetricRoundLatency)
		rt.rounds[tid] = sh.Counter(MetricRounds)
	}
	return rt
}

// roundComplete records the wall-cycle gap since the previous round
// (the run start, for the first one) on the closing thread's shard.
func (rt *roundTelemetry) roundComplete(tid int) {
	now := rt.clock()
	rt.latency[tid].Observe(float64(now - rt.last))
	rt.last = now
	rt.rounds[tid].Inc()
}

// Kind selects a GVT algorithm.
type Kind int

const (
	// Barrier is the synchronous algorithm ("-Sync" systems).
	Barrier Kind = iota
	// WaitFree is the asynchronous five-phase algorithm ("-Async").
	WaitFree
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Barrier:
		return "barrier"
	case WaitFree:
		return "waitfree"
	default:
		return "unknown"
	}
}

// Hooks are the demand-driven scheduling extension points. All methods
// must charge their costs through acc (flushing before any blocking
// machine call).
type Hooks interface {
	// OnAware runs on the pseudo-controller once per round, immediately
	// after the new GVT is published: the activation scan (Algorithm 2).
	OnAware(p *machine.Proc, acc *machine.Acc, tid int)
	// OnRoundComplete runs on the last thread to finish the round,
	// after all activations and deactivations: the Dynamic CPU Affinity
	// pass (Algorithm 4).
	OnRoundComplete(p *machine.Proc, acc *machine.Acc, tid int)
	// OnEnd runs on every participating thread at Phase End, after
	// fossil collection: the deactivation decision (Algorithm 1). It
	// may block the calling thread (semaphore de-scheduling); it must
	// call Algorithm.Leave before blocking and Algorithm.Join after
	// waking.
	OnEnd(p *machine.Proc, acc *machine.Acc, tid int)
}

// NopHooks is the baseline: no demand-driven scheduling.
type NopHooks struct{}

// OnAware does nothing.
func (NopHooks) OnAware(*machine.Proc, *machine.Acc, int) {}

// OnRoundComplete does nothing.
func (NopHooks) OnRoundComplete(*machine.Proc, *machine.Acc, int) {}

// OnEnd does nothing.
func (NopHooks) OnEnd(*machine.Proc, *machine.Acc, int) {}

// Algorithm is a GVT protocol instance shared by all simulation
// threads of one run.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Step advances the protocol for thread tid. It is called once per
	// main-loop iteration; non-blocking costs go through acc, blocking
	// calls flush first. Step also drives the scheduling hooks.
	Step(p *machine.Proc, acc *machine.Acc, tid int)
	// Leave unsubscribes tid from GVT participation. It must only be
	// called from the Phase End extension point (inside Hooks.OnEnd),
	// where the thread's pending events are already incorporated in the
	// finished round.
	Leave(tid int)
	// Join resubscribes tid after reactivation; the thread participates
	// from the next round on.
	Join(tid int)
	// Participants returns the number of currently subscribed threads.
	Participants() int
	// Rounds returns the number of completed GVT rounds.
	Rounds() uint64
	// Frequency returns the current loop-iteration interval between
	// rounds (fixed, unless adaptive tuning is enabled).
	Frequency() int
}

// Costs prices GVT protocol operations in CPU cycles.
type Costs struct {
	// PhaseCheckCycles is the cost of polling round/phase counters,
	// paid on every Step call — the overhead inactive threads keep
	// paying in asynchronous baselines.
	PhaseCheckCycles uint64
	// PhaseAdvanceCycles is the cost of recording a cut (atomic counter
	// + local minimum bookkeeping beyond the engine's LocalMin scan).
	PhaseAdvanceCycles uint64
	// ReduceCyclesPerThread is the pseudo-controller's per-participant
	// cost of the global minimum reduction.
	ReduceCyclesPerThread uint64
}

// DefaultCosts returns the cost model used in the evaluation.
func DefaultCosts() Costs {
	return Costs{
		PhaseCheckCycles:      60,
		PhaseAdvanceCycles:    200,
		ReduceCyclesPerThread: 30,
	}
}

// Adaptive makes the GVT round frequency self-tuning, in the spirit of
// the adaptive-GVT literature the paper cites: rounds happen more often
// when speculative state (uncommitted events) piles up, less often when
// the GVT overhead buys nothing. The controller adjusts the shared
// frequency at every round completion.
type Adaptive struct {
	// MinFrequency and MaxFrequency clamp the loop-iteration interval.
	MinFrequency, MaxFrequency int
	// TargetUncommittedPerThread is the aimed-for per-thread peak of
	// uncommitted events between rounds.
	TargetUncommittedPerThread int
}

func (a *Adaptive) validate(base int) error {
	if a.MinFrequency <= 0 || a.MaxFrequency < a.MinFrequency {
		return fmt.Errorf("gvt: adaptive bounds [%d, %d] invalid", a.MinFrequency, a.MaxFrequency)
	}
	if base < a.MinFrequency || base > a.MaxFrequency {
		return fmt.Errorf("gvt: base frequency %d outside adaptive bounds", base)
	}
	if a.TargetUncommittedPerThread <= 0 {
		return fmt.Errorf("gvt: adaptive target must be positive")
	}
	return nil
}

// adapt returns the next frequency given the peak uncommitted events
// seen since the previous round.
func (a *Adaptive) adapt(freq, peak, threads int) int {
	target := a.TargetUncommittedPerThread * threads
	switch {
	case peak > 2*target:
		freq /= 2
	case peak < target/2:
		freq += freq/4 + 1
	}
	if freq < a.MinFrequency {
		freq = a.MinFrequency
	}
	if freq > a.MaxFrequency {
		freq = a.MaxFrequency
	}
	return freq
}

// Config assembles an Algorithm.
type Config struct {
	Kind Kind
	// Engine is the Time Warp engine being synchronized.
	Engine *tw.Engine
	// Machine hosts the simulation threads (the Barrier algorithm
	// allocates machine barriers).
	Machine *machine.Machine
	// Frequency is the number of main-loop iterations between GVT
	// rounds (the paper uses 200).
	Frequency int
	// Hooks are the scheduling extension points; nil means NopHooks.
	Hooks Hooks
	// Costs is the protocol cost model; zero value selects defaults.
	Costs Costs
	// Adaptive, when non-nil, lets the algorithm tune Frequency within
	// the given bounds based on speculative memory growth.
	Adaptive *Adaptive
	// Telemetry, when non-nil, receives round-latency metrics (see the
	// Metric constants).
	Telemetry *telemetry.Registry
	// OnCut, when non-nil, is invoked at the two Mattern-style cut
	// points of every round: cut 1 when the round's first local-minimum
	// cut is recorded (barrier: the stop-the-world generation; wait-free:
	// the first thread entering Phase A), and cut 2 when the reduction
	// is complete, immediately before the new GVT is published. The
	// distributed coordinator stamps wire traffic with the cut
	// generation from this hook. It runs outside cost accounting and
	// must not touch engine state — observability only.
	OnCut func(cut int, round uint64)
}

// New builds the requested algorithm over all engine threads.
func New(cfg Config) (Algorithm, error) {
	if cfg.Engine == nil || cfg.Machine == nil {
		return nil, fmt.Errorf("gvt: Engine and Machine are required")
	}
	if cfg.Frequency <= 0 {
		return nil, fmt.Errorf("gvt: Frequency must be positive, got %d", cfg.Frequency)
	}
	if cfg.Hooks == nil {
		cfg.Hooks = NopHooks{}
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Adaptive != nil {
		if err := cfg.Adaptive.validate(cfg.Frequency); err != nil {
			return nil, err
		}
	}
	switch cfg.Kind {
	case Barrier:
		return newBarrier(cfg), nil
	case WaitFree:
		return newWaitFree(cfg), nil
	default:
		return nil, fmt.Errorf("gvt: unknown kind %d", cfg.Kind)
	}
}
