package gvt

import (
	"fmt"
	"math"

	"ggpdes/internal/machine"
	"ggpdes/internal/tw"
)

// barrierGVT is the synchronous algorithm: every Frequency main-loop
// iterations all participating threads rendezvous, drain their input
// queues while no sends can occur, reduce a perfect global minimum, and
// fossil collect. Arriving threads are de-scheduled by the barrier
// (pthread_barrier semantics) — the reason Baseline-Sync beats
// Baseline-Async on imbalanced models even without demand-driven
// scheduling: barrier waiters burn no cycles.
//
// Three barrier generations delimit the round:
//
//	bar1: stop the world — after it, nobody processes events, so no
//	      sends are in flight; each thread drains and records its min.
//	bar2: all minimums recorded; the serial thread reduces, publishes
//	      the GVT, and runs the pseudo-controller activation hook.
//	bar3: GVT published; everybody fossil collects.
//
// Leave shrinks the barriers (the paper's "customised barrier
// functions"), releasing rounds that no longer wait for de-scheduled
// threads.
type barrierGVT struct {
	cfg   Config
	costs Costs
	eng   *tw.Engine

	bar1, bar2, bar3 *machine.Barrier
	freq             int
	iters            []int
	localMin         []tw.VT
	subscribed       []bool
	participants     int
	roundSize        int
	endCount         int
	rounds           uint64
	rt               roundTelemetry
	// pendingJoins holds reactivated threads whose subscription must
	// wait for a safe point: growing the barriers mid-round would make
	// in-flight generations wait for a thread that re-enters at bar1.
	pendingJoins []int
	// cpus holds the per-thread engine-charge adapters (see gvtCPU).
	cpus []gvtCPU
}

func newBarrier(cfg Config) *barrierGVT {
	n := len(cfg.Engine.Peers())
	b := &barrierGVT{
		cfg:          cfg,
		costs:        cfg.Costs,
		eng:          cfg.Engine,
		bar1:         cfg.Machine.NewBarrier("gvt1", n),
		bar2:         cfg.Machine.NewBarrier("gvt2", n),
		bar3:         cfg.Machine.NewBarrier("gvt3", n),
		freq:         cfg.Frequency,
		iters:        make([]int, n),
		localMin:     make([]tw.VT, n),
		subscribed:   make([]bool, n),
		cpus:         make([]gvtCPU, n),
		participants: n,
		roundSize:    n,
		rt:           newRoundTelemetry(&cfg),
	}
	for i := range b.subscribed {
		b.subscribed[i] = true
	}
	return b
}

// Name implements Algorithm.
func (b *barrierGVT) Name() string { return "barrier" }

// Participants implements Algorithm.
func (b *barrierGVT) Participants() int { return b.participants }

// Rounds implements Algorithm.
func (b *barrierGVT) Rounds() uint64 { return b.rounds }

// Frequency implements Algorithm.
func (b *barrierGVT) Frequency() int { return b.freq }

func (b *barrierGVT) charge(acc *machine.Acc, tid int, cycles uint64) {
	acc.Work(cycles)
	b.eng.Peer(tid).Stats.GVTCycles += cycles
}

// Step implements Algorithm.
func (b *barrierGVT) Step(p *machine.Proc, acc *machine.Acc, tid int) {
	b.charge(acc, tid, b.costs.PhaseCheckCycles)
	if !b.subscribed[tid] {
		// Reactivated but not yet applied: process events freely; the
		// reduction covers this thread via RemoteMin until it joins.
		return
	}
	b.iters[tid]++
	if b.iters[tid] < b.freq {
		return
	}
	b.iters[tid] = 0
	peer := b.eng.Peer(tid)
	cpu := &b.cpus[tid]
	cpu.acc, cpu.peer = acc, peer

	// Stop the world. Block-time is not CPU time; only the barrier op
	// itself is charged (by the machine).
	b.charge(acc, tid, b.costs.PhaseAdvanceCycles)
	acc.Flush()
	if p.BarrierWait(b.bar1) {
		// Serial thread freezes the round size while everyone is
		// synchronized; the world being stopped is this algorithm's
		// first (trivially consistent) cut.
		b.roundSize = b.participants
		if f := b.cfg.OnCut; f != nil {
			f(1, b.rounds)
		}
	}

	// No thread is processing events now: drain and record a perfect
	// local minimum.
	_, min := peer.DrainLocalMin(cpu)
	b.localMin[tid] = min
	acc.Flush()
	if p.BarrierWait(b.bar2) {
		// Serial thread is the pseudo-controller: reduce, publish, and
		// run the activation scan.
		gmin := math.Inf(1)
		for i, sub := range b.subscribed {
			if sub {
				if b.localMin[i] < gmin {
					gmin = b.localMin[i]
				}
			} else {
				// Unsubscribed threads (de-scheduled, or reactivated
				// and still processing before their join applies) are
				// scanned on their behalf: queues plus their unread
				// sent-minimum window.
				rm, ms := b.eng.Peer(i).ScanMins()
				if rm < gmin {
					gmin = rm
				}
				if ms < gmin {
					gmin = ms
				}
			}
			b.charge(acc, tid, b.costs.ReduceCyclesPerThread)
		}
		if f := b.cfg.OnCut; f != nil {
			f(2, b.rounds)
		}
		b.eng.SetGVT(math.Min(gmin, b.eng.EndTime()))
		b.cfg.Hooks.OnAware(p, acc, tid)
	}
	acc.Flush()
	p.BarrierWait(b.bar3)

	// GVT housekeeping.
	peer.FossilCollect(cpu, b.eng.GVT())
	peer.Stats.GVTRounds++
	b.endCount++
	if b.endCount >= b.roundSize {
		b.endCount = 0
		b.rounds++
		b.rt.roundComplete(tid)
		if ad := b.cfg.Adaptive; ad != nil {
			b.freq = ad.adapt(b.freq, b.eng.PeakUncommittedSinceMark(), len(b.eng.Peers()))
			b.eng.MarkUncommitted()
		}
		// Safe point for subscriptions: every thread of this round is
		// past bar3, and bar1 of the next generation cannot have
		// released yet (it still needs this thread).
		b.applyJoins()
		b.cfg.Hooks.OnRoundComplete(p, acc, tid)
	}
	// Deactivation point (may block inside; Leave is called first).
	b.cfg.Hooks.OnEnd(p, acc, tid)
}

func (b *barrierGVT) resizeAll() {
	b.bar1.Resize(b.participants)
	b.bar2.Resize(b.participants)
	b.bar3.Resize(b.participants)
}

func (b *barrierGVT) applyJoins() {
	if len(b.pendingJoins) == 0 {
		return
	}
	for _, tid := range b.pendingJoins {
		b.subscribed[tid] = true
		b.participants++
		b.iters[tid] = 0
	}
	b.pendingJoins = b.pendingJoins[:0]
	b.resizeAll()
}

// Leave implements Algorithm: shrink the barriers so rounds stop
// waiting for the de-scheduled thread. Safe immediately: the leaver is
// past bar3 of its round, so no in-flight generation counts on it.
func (b *barrierGVT) Leave(tid int) {
	if !b.subscribed[tid] {
		panic(fmt.Sprintf("gvt: thread %d left twice", tid))
	}
	b.subscribed[tid] = false
	b.participants--
	// Drop the stale sent-minimum window (receiver scans cover it).
	b.eng.Peer(tid).TakeMinSent()
	if b.participants == 0 {
		// The last subscriber is leaving; the scheduler guarantees an
		// active thread exists, so it must be a pending joiner.
		b.applyJoins()
		if b.participants == 0 {
			panic("gvt: no GVT participants left")
		}
		return
	}
	b.resizeAll()
}

// Join implements Algorithm: queue the reactivated thread; its
// subscription takes effect at the next round-completion safe point.
func (b *barrierGVT) Join(tid int) {
	if b.subscribed[tid] {
		panic(fmt.Sprintf("gvt: thread %d joined twice", tid))
	}
	for _, pj := range b.pendingJoins {
		if pj == tid {
			panic(fmt.Sprintf("gvt: thread %d joined twice (pending)", tid))
		}
	}
	b.pendingJoins = append(b.pendingJoins, tid)
}
