package gvt

import (
	"fmt"
	"math"
	"testing"

	"ggpdes/internal/machine"
	"ggpdes/internal/models"
	"ggpdes/internal/tw"
)

// countingHooks records hook invocations and can deactivate threads at
// Phase End like a demand-driven scheduler would.
type countingHooks struct {
	aware, roundComplete, end int
	// deactivate, when set, parks the given thread on a semaphore the
	// first time OnEnd sees it.
	deactivateTid int
	deactivated   bool
	sem           *machine.Sem
	alg           Algorithm
	eng           *tw.Engine
	rejoined      bool
}

func (h *countingHooks) OnAware(p *machine.Proc, acc *machine.Acc, tid int) { h.aware++ }
func (h *countingHooks) OnRoundComplete(p *machine.Proc, acc *machine.Acc, tid int) {
	h.roundComplete++
}
func (h *countingHooks) OnEnd(p *machine.Proc, acc *machine.Acc, tid int) {
	h.end++
	if h.sem == nil || tid != h.deactivateTid || h.deactivated || h.eng.Done() {
		return
	}
	h.deactivated = true
	h.alg.Leave(tid)
	acc.Flush()
	p.SemWait(h.sem)
	if !h.eng.Done() {
		h.alg.Join(tid)
		h.rejoined = true
	}
}

// testRig assembles machine + engine + algorithm and a simple runner.
type testRig struct {
	m     *machine.Machine
	eng   *tw.Engine
	alg   Algorithm
	hooks *countingHooks
}

func newRig(t *testing.T, kind Kind, threads int, hooks *countingHooks) *testRig {
	t.Helper()
	mcfg := machine.Small()
	mcfg.MaxTicks = 1 << 21
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := models.NewPHOLD(models.PHOLDConfig{
		Threads: threads, LPsPerThread: 2, EndTime: 30, Imbalance: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := tw.NewEngine(tw.Config{NumThreads: threads, Model: model, EndTime: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if hooks == nil {
		hooks = &countingHooks{}
	}
	hooks.eng = eng
	alg, err := New(Config{Kind: kind, Engine: eng, Machine: m, Frequency: 10, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	hooks.alg = alg
	rig := &testRig{m: m, eng: eng, alg: alg, hooks: hooks}
	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(fmt.Sprintf("sim-%d", tid), func(p *machine.Proc) {
			acc := machine.NewAcc(p)
			peer := eng.Peer(tid)
			for !eng.Done() {
				acc.Work(100)
				peer.Drain(acc)
				peer.ProcessBatch(acc)
				alg.Step(p, acc, tid)
				acc.Flush()
			}
			peer.FossilCollect(acc, eng.GVT())
			acc.Flush()
			if hooks.sem != nil && hooks.deactivated && !hooks.rejoined {
				p.SemPost(hooks.sem) // release the parked thread at shutdown
			}
		})
	}
	return rig
}

func (r *testRig) run(t *testing.T) {
	t.Helper()
	if err := r.m.Run(); err != nil {
		t.Fatal(err)
	}
	if !r.eng.Done() {
		t.Fatalf("GVT stalled at %v", r.eng.GVT())
	}
	if err := r.eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	m, _ := machine.New(machine.Small())
	model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 1, LPsPerThread: 1, EndTime: 1})
	eng, _ := tw.NewEngine(tw.Config{NumThreads: 1, Model: model, EndTime: 1})
	cases := []Config{
		{Kind: Barrier, Engine: nil, Machine: m, Frequency: 10},
		{Kind: Barrier, Engine: eng, Machine: nil, Frequency: 10},
		{Kind: Barrier, Engine: eng, Machine: m, Frequency: 0},
		{Kind: Kind(99), Engine: eng, Machine: m, Frequency: 10},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if Barrier.String() != "barrier" || WaitFree.String() != "waitfree" || Kind(9).String() != "unknown" {
		t.Fatal("kind names wrong")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m, _ := machine.New(machine.Small())
	model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 1, LPsPerThread: 1, EndTime: 1})
	eng, _ := tw.NewEngine(tw.Config{NumThreads: 1, Model: model, EndTime: 1})
	alg, err := New(Config{Kind: WaitFree, Engine: eng, Machine: m, Frequency: 5})
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "waitfree" {
		t.Fatalf("Name = %q", alg.Name())
	}
	if alg.Participants() != 1 {
		t.Fatalf("Participants = %d", alg.Participants())
	}
}

func TestBarrierAdvancesGVT(t *testing.T) {
	rig := newRig(t, Barrier, 4, nil)
	rig.run(t)
	if rig.alg.Rounds() == 0 {
		t.Fatal("no rounds completed")
	}
	if rig.eng.GVT() < 30 {
		t.Fatalf("GVT = %v, want end time", rig.eng.GVT())
	}
}

func TestWaitFreeAdvancesGVT(t *testing.T) {
	rig := newRig(t, WaitFree, 4, nil)
	rig.run(t)
	if rig.alg.Rounds() == 0 {
		t.Fatal("no rounds completed")
	}
	if rig.eng.GVT() < 30 {
		t.Fatalf("GVT = %v, want end time", rig.eng.GVT())
	}
}

func TestHooksInvokedOncePerRound(t *testing.T) {
	for _, kind := range []Kind{Barrier, WaitFree} {
		t.Run(kind.String(), func(t *testing.T) {
			hooks := &countingHooks{}
			rig := newRig(t, kind, 4, hooks)
			rig.run(t)
			rounds := int(rig.alg.Rounds())
			if rounds == 0 {
				t.Fatal("no rounds")
			}
			if hooks.aware < rounds {
				t.Fatalf("OnAware %d < rounds %d", hooks.aware, rounds)
			}
			if hooks.roundComplete != rounds {
				t.Fatalf("OnRoundComplete %d != rounds %d", hooks.roundComplete, rounds)
			}
			// Every thread ends every completed round (the last partial
			// round may add a few).
			if hooks.end < rounds*4 {
				t.Fatalf("OnEnd %d < %d", hooks.end, rounds*4)
			}
		})
	}
}

func TestGVTCPUCyclesRecorded(t *testing.T) {
	for _, kind := range []Kind{Barrier, WaitFree} {
		rig := newRig(t, kind, 4, nil)
		rig.run(t)
		s := rig.eng.TotalStats()
		if s.GVTCycles == 0 {
			t.Fatalf("%v: no GVT CPU cycles recorded", kind)
		}
		if s.GVTRounds == 0 {
			t.Fatalf("%v: no per-peer rounds recorded", kind)
		}
	}
}

func TestLeaveAndRejoin(t *testing.T) {
	for _, kind := range []Kind{Barrier, WaitFree} {
		t.Run(kind.String(), func(t *testing.T) {
			hooks := &countingHooks{deactivateTid: 2}
			rig := newRig(t, kind, 4, hooks)
			hooks.sem = rig.m.NewSem("park", 0)
			// A watchdog wakes the parked thread after a while,
			// simulating the pseudo-controller's activation.
			rig.m.Spawn("waker", func(p *machine.Proc) {
				for i := 0; i < 50; i++ {
					p.Work(20000)
					if hooks.deactivated {
						break
					}
				}
				if hooks.deactivated && !rig.eng.Done() {
					p.SemPost(hooks.sem)
				}
			})
			rig.run(t)
			if !hooks.deactivated {
				t.Fatal("thread never deactivated")
			}
			if rig.alg.Rounds() == 0 {
				t.Fatal("rounds stopped after leave")
			}
		})
	}
}

func TestDoubleLeavePanics(t *testing.T) {
	for _, kind := range []Kind{Barrier, WaitFree} {
		m, _ := machine.New(machine.Small())
		model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 2, LPsPerThread: 1, EndTime: 5})
		eng, _ := tw.NewEngine(tw.Config{NumThreads: 2, Model: model, EndTime: 5})
		alg, _ := New(Config{Kind: kind, Engine: eng, Machine: m, Frequency: 5})
		alg.Leave(0)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: double leave did not panic", kind)
				}
			}()
			alg.Leave(0)
		}()
	}
}

func TestDoubleJoinPanics(t *testing.T) {
	for _, kind := range []Kind{Barrier, WaitFree} {
		m, _ := machine.New(machine.Small())
		model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 2, LPsPerThread: 1, EndTime: 5})
		eng, _ := tw.NewEngine(tw.Config{NumThreads: 2, Model: model, EndTime: 5})
		alg, _ := New(Config{Kind: kind, Engine: eng, Machine: m, Frequency: 5})
		alg.Leave(0)
		alg.Join(0)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: double join did not panic", kind)
				}
			}()
			alg.Join(0)
		}()
	}
}

func TestGVTNeverExceedsUnprocessedMin(t *testing.T) {
	// After completion, GVT equals EndTime and no live pending event is
	// below it (checked by engine invariants); additionally spot-check
	// the final GVT is exactly the cap.
	rig := newRig(t, WaitFree, 3, nil)
	rig.run(t)
	if got := rig.eng.GVT(); got != 30 {
		t.Fatalf("final GVT = %v, want exactly the end time", got)
	}
	for _, p := range rig.eng.Peers() {
		if rm := p.RemoteMin(); rm < rig.eng.GVT() && !math.IsInf(rm, 1) {
			t.Fatalf("live work below final GVT: %v", rm)
		}
	}
}

func TestNopHooks(t *testing.T) {
	// NopHooks must be safely callable.
	var h NopHooks
	h.OnAware(nil, nil, 0)
	h.OnRoundComplete(nil, nil, 0)
	h.OnEnd(nil, nil, 0)
}

func TestAdaptiveValidation(t *testing.T) {
	m, _ := machine.New(machine.Small())
	model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 1, LPsPerThread: 1, EndTime: 1})
	eng, _ := tw.NewEngine(tw.Config{NumThreads: 1, Model: model, EndTime: 1})
	bad := []*Adaptive{
		{MinFrequency: 0, MaxFrequency: 10, TargetUncommittedPerThread: 4},
		{MinFrequency: 10, MaxFrequency: 5, TargetUncommittedPerThread: 4},
		{MinFrequency: 50, MaxFrequency: 100, TargetUncommittedPerThread: 4}, // base 10 outside
		{MinFrequency: 5, MaxFrequency: 100, TargetUncommittedPerThread: 0},
	}
	for i, a := range bad {
		if _, err := New(Config{Kind: WaitFree, Engine: eng, Machine: m, Frequency: 10, Adaptive: a}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAdaptHalvesAndGrows(t *testing.T) {
	a := &Adaptive{MinFrequency: 4, MaxFrequency: 100, TargetUncommittedPerThread: 10}
	// 4 threads, target 40: peak 100 > 80 halves; peak 10 < 20 grows.
	if got := a.adapt(40, 100, 4); got != 20 {
		t.Fatalf("halve: got %d", got)
	}
	if got := a.adapt(40, 10, 4); got != 51 {
		t.Fatalf("grow: got %d", got)
	}
	// Clamping.
	if got := a.adapt(5, 1000, 4); got != 4 {
		t.Fatalf("min clamp: got %d", got)
	}
	if got := a.adapt(90, 0, 4); got != 100 {
		t.Fatalf("max clamp: got %d", got)
	}
	// In-band peak leaves frequency unchanged.
	if got := a.adapt(40, 40, 4); got != 40 {
		t.Fatalf("steady: got %d", got)
	}
}

func TestAdaptiveTunesDuringRun(t *testing.T) {
	for _, kind := range []Kind{Barrier, WaitFree} {
		t.Run(kind.String(), func(t *testing.T) {
			hooks := &countingHooks{}
			// Build a rig manually to pass Adaptive with a tiny target,
			// forcing the frequency toward MinFrequency.
			mcfg := machine.Small()
			mcfg.MaxTicks = 1 << 21
			m, _ := machine.New(mcfg)
			model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 4, LPsPerThread: 4, EndTime: 30})
			eng, _ := tw.NewEngine(tw.Config{NumThreads: 4, Model: model, EndTime: 30, Seed: 5})
			hooks.eng = eng
			alg, err := New(Config{
				Kind: kind, Engine: eng, Machine: m, Frequency: 64, Hooks: hooks,
				Adaptive: &Adaptive{MinFrequency: 4, MaxFrequency: 64, TargetUncommittedPerThread: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			hooks.alg = alg
			for tid := 0; tid < 4; tid++ {
				tid := tid
				m.Spawn(fmt.Sprintf("sim-%d", tid), func(p *machine.Proc) {
					acc := machine.NewAcc(p)
					peer := eng.Peer(tid)
					for !eng.Done() {
						acc.Work(100)
						peer.Drain(acc)
						peer.ProcessBatch(acc)
						alg.Step(p, acc, tid)
						acc.Flush()
					}
					peer.FossilCollect(acc, eng.GVT())
					acc.Flush()
				})
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if alg.Frequency() >= 64 {
				t.Fatalf("frequency never adapted down: %d", alg.Frequency())
			}
		})
	}
}
