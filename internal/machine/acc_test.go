package machine

import "testing"

func TestAccBatchesCharges(t *testing.T) {
	cfg := testCfg(1, 1)
	m := mustNew(t, cfg)
	var th *Thread
	th = m.Spawn("w", func(p *Proc) {
		acc := NewAcc(p)
		acc.Work(100)
		acc.Work(200)
		if acc.Pending() != 300 {
			t.Errorf("Pending = %d", acc.Pending())
		}
		acc.Flush()
		if acc.Pending() != 0 {
			t.Errorf("Pending after flush = %d", acc.Pending())
		}
		// Flushing empty is a no-op (no machine call, no charge).
		acc.Flush()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := 300 + cfg.OpCycles // one Work call carrying the batch
	if th.Cycles() != want {
		t.Fatalf("cycles = %d, want %d", th.Cycles(), want)
	}
}

func TestAccEmptyFlushMakesNoCall(t *testing.T) {
	cfg := testCfg(1, 1)
	m := mustNew(t, cfg)
	th := m.Spawn("w", func(p *Proc) {
		acc := NewAcc(p)
		for i := 0; i < 10; i++ {
			acc.Flush()
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Cycles() != 0 {
		t.Fatalf("empty flushes charged %d cycles", th.Cycles())
	}
}

func TestSetAffinityOnBlockedThread(t *testing.T) {
	m := mustNew(t, testCfg(4, 1))
	s := m.NewSem("s", 0)
	var waiter *Thread
	waiter = m.SpawnPinned("waiter", 0, func(p *Proc) {
		p.SemWait(s)
		p.Work(100000) // runs on the new core after waking
	})
	m.SpawnPinned("mover", 1, func(p *Proc) {
		p.Work(200000) // let the waiter block
		p.SetAffinity(waiter.ID(), 3)
		p.SemPost(s)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if waiter.Pinned() != 3 || waiter.core != 3 {
		t.Fatalf("waiter pinned=%d core=%d, want 3/3", waiter.Pinned(), waiter.core)
	}
	if m.CoreBusyCycles(3) == 0 {
		t.Fatal("woken thread never ran on its new core")
	}
}

func TestUnpinViaAnyCore(t *testing.T) {
	m := mustNew(t, testCfg(4, 1))
	var th *Thread
	th = m.SpawnPinned("t", 2, func(p *Proc) {
		p.SetAffinity(th.ID(), AnyCore)
		p.Work(1000)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Pinned() != AnyCore {
		t.Fatalf("pin = %d, want AnyCore", th.Pinned())
	}
}

func TestLoadBalanceSkipsPinned(t *testing.T) {
	// Pile 4 pinned threads on core 0 and leave cores 1-3 idle: the
	// balancer must not move them.
	m := mustNew(t, testCfg(4, 1))
	threads := make([]*Thread, 4)
	for i := range threads {
		threads[i] = m.SpawnPinned("p", 0, func(p *Proc) { p.Work(1 << 18) })
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, th := range threads {
		if th.core != 0 {
			t.Fatalf("pinned thread %d migrated to core %d", i, th.core)
		}
	}
	if m.Stats().Migrations != 0 {
		t.Fatalf("migrations = %d, want 0", m.Stats().Migrations)
	}
}

func TestBarrierResizeGrow(t *testing.T) {
	// Growing parties while threads wait must not release them early.
	m := mustNew(t, testCfg(2, 2))
	b := m.NewBarrier("b", 2)
	passed := 0
	for i := 0; i < 2; i++ {
		i := i
		m.Spawn("w", func(p *Proc) {
			if i == 0 {
				b.Resize(3) // before anyone arrives
			}
			p.Work(10000)
			p.BarrierWait(b)
			passed++
		})
	}
	m.Spawn("third", func(p *Proc) {
		p.Work(1 << 18)
		p.BarrierWait(b)
		passed++
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 3 {
		t.Fatalf("passed = %d", passed)
	}
}

func TestSemValueAndWaitersAccessors(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	s := m.NewSem("s", 3)
	if s.Value() != 3 || s.Waiters() != 0 {
		t.Fatalf("initial accessors wrong: %d/%d", s.Value(), s.Waiters())
	}
	m.Spawn("w", func(p *Proc) {
		p.SemWait(s)
		if s.Value() != 2 {
			t.Errorf("Value = %d after wait", s.Value())
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSemPanics(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("negative initial count accepted")
		}
	}()
	m.NewSem("bad", -1)
}

func TestYieldRotatesFairly(t *testing.T) {
	// Two threads on one context alternating via Yield must interleave.
	m := mustNew(t, testCfg(1, 1))
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		m.Spawn("y", func(p *Proc) {
			for r := 0; r < 3; r++ {
				order = append(order, i)
				p.Work(1000)
				p.Yield()
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("order len = %d", len(order))
	}
	// Both threads must appear in the first half (no monopoly).
	seen := map[int]bool{}
	for _, v := range order[:3] {
		seen[v] = true
	}
	if len(seen) != 2 {
		t.Fatalf("first half order %v shows no interleaving", order)
	}
}
