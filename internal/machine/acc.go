package machine

// Acc batches cycle charges so a simulation main-loop iteration costs
// one scheduler handshake instead of one per engine operation. Costs
// accumulate via Work and are applied to the owning thread by Flush.
// Blocking machine calls must be preceded by Flush so the cycles are
// charged before the thread de-schedules.
type Acc struct {
	p       *Proc
	pending uint64
}

// NewAcc returns an accumulator charging the calling thread of p.
func NewAcc(p *Proc) *Acc { return &Acc{p: p} }

// Work accumulates cycles to be charged at the next Flush.
func (a *Acc) Work(cycles uint64) { a.pending += cycles }

// Pending returns the cycles accumulated since the last Flush.
func (a *Acc) Pending() uint64 { return a.pending }

// Flush charges all accumulated cycles to the thread.
func (a *Acc) Flush() {
	if a.pending > 0 {
		a.p.Work(a.pending)
		a.pending = 0
	}
}
