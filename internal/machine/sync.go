package machine

// Sem is a counting semaphore. Waiters are de-scheduled (zero cycles)
// and woken in FIFO order. It is the machine analogue of a POSIX
// counting semaphore, the primitive DD- and GG-PDES use to de-schedule
// inactive simulation threads.
type Sem struct {
	m       *Machine
	name    string
	count   int
	waiters []*Thread
}

// NewSem creates a semaphore with the given initial count.
func (m *Machine) NewSem(name string, initial int) *Sem {
	if initial < 0 {
		panic("machine: negative semaphore count")
	}
	return &Sem{m: m, name: name, count: initial}
}

// Value returns the semaphore's current count (waiters imply zero).
func (s *Sem) Value() int { return s.count }

// Waiters returns how many threads are blocked on the semaphore.
func (s *Sem) Waiters() int { return len(s.waiters) }

// wait is the P operation, executed by the machine on the calling
// thread's behalf; it reports whether the thread blocked.
func (s *Sem) wait(t *Thread) (blocked bool) {
	if s.count > 0 {
		s.count--
		return false
	}
	s.waiters = append(s.waiters, t)
	return true
}

// post is the V operation: wake the longest waiter, else bump count.
func (s *Sem) post() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		s.m.wake(w)
		return
	}
	s.count++
}

// Barrier de-schedules arriving threads until all parties have arrived,
// like pthread_barrier_wait. Parties may be changed between generations
// with Resize (the paper's "customised barrier functions" shrink the
// participant set as threads deactivate).
type Barrier struct {
	m       *Machine
	name    string
	parties int
	waiters []*Thread
}

// NewBarrier creates a barrier for the given number of parties.
func (m *Machine) NewBarrier(name string, parties int) *Barrier {
	if parties <= 0 {
		panic("machine: barrier needs at least one party")
	}
	return &Barrier{m: m, name: name, parties: parties}
}

// Parties returns the number of threads the barrier waits for.
func (b *Barrier) Parties() int { return b.parties }

// Arrived returns how many threads are currently waiting.
func (b *Barrier) Arrived() int { return len(b.waiters) }

// Resize changes the number of parties. If the waiting threads already
// satisfy the new count, the generation completes immediately and the
// most recent arriver receives the serial flag. Safe to call from any
// simulated thread (runs are serialized).
func (b *Barrier) Resize(parties int) {
	if parties <= 0 {
		panic("machine: barrier needs at least one party")
	}
	b.parties = parties
	if len(b.waiters) >= b.parties {
		b.release(b.waiters[len(b.waiters)-1])
	}
}

// arrive registers thread t at the barrier; it reports whether t
// blocked. When t completes the generation, every waiter is woken and t
// continues with the serial flag, paying the per-waiter wake cost.
func (b *Barrier) arrive(t *Thread) (blocked bool) {
	if len(b.waiters)+1 >= b.parties {
		t.barrierSerial = true
		t.penalty += uint64(len(b.waiters)) * b.m.cfg.BarrierWakePerWaiterCycles
		b.release(t)
		return false
	}
	b.waiters = append(b.waiters, t)
	return true
}

// release wakes all current waiters; serial keeps/gets the serial flag.
func (b *Barrier) release(serial *Thread) {
	for _, w := range b.waiters {
		w.barrierSerial = w == serial
		if w.state == StateBlocked {
			b.m.wake(w)
		}
	}
	b.waiters = b.waiters[:0]
}

// Mutex is a blocking mutual-exclusion lock with FIFO handoff,
// modelling the pthread mutexes that serialize DD-PDES's controller
// state.
type Mutex struct {
	m       *Machine
	name    string
	owner   *Thread
	waiters []*Thread
	// Contended counts Lock operations that had to block, a measure of
	// lock pressure.
	Contended uint64
	// Acquisitions counts successful lock acquisitions.
	Acquisitions uint64
}

// NewMutex creates an unlocked mutex.
func (m *Machine) NewMutex(name string) *Mutex {
	return &Mutex{m: m, name: name}
}

// Held reports whether the mutex is currently owned.
func (mu *Mutex) Held() bool { return mu.owner != nil }

// lock attempts acquisition by t; it reports whether t blocked.
func (mu *Mutex) lock(t *Thread) (blocked bool) {
	if mu.owner == nil {
		mu.owner = t
		mu.Acquisitions++
		return false
	}
	mu.Contended++
	mu.waiters = append(mu.waiters, t)
	return true
}

// unlock releases the mutex, handing it directly to the longest waiter.
func (mu *Mutex) unlock(t *Thread) {
	if mu.owner != t {
		panic("machine: Unlock of mutex " + mu.name + " by non-owner " + t.name)
	}
	if len(mu.waiters) > 0 {
		w := mu.waiters[0]
		copy(mu.waiters, mu.waiters[1:])
		mu.waiters = mu.waiters[:len(mu.waiters)-1]
		mu.owner = w
		mu.Acquisitions++
		mu.m.wake(w)
		return
	}
	mu.owner = nil
}
