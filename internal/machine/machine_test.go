package machine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func testCfg(cores, smt int) Config {
	c := Small()
	c.Cores = cores
	c.SMTWidth = smt
	agg := make([]float64, smt)
	for i := range agg {
		agg[i] = 1 + 0.5*float64(i) // 1.0, 1.5, 2.0, ...
	}
	agg[0] = 1.0
	c.SMTAggregate = agg
	c.MaxTicks = 1 << 20
	return c
}

func mustNew(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := KNL7230()
	if err := good.Validate(); err != nil {
		t.Fatalf("KNL7230 invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.SMTWidth = 0 },
		func(c *Config) { c.FreqHz = 0 },
		func(c *Config) { c.TickCycles = 0 },
		func(c *Config) { c.OpCycles = 0 },
		func(c *Config) { c.SMTAggregate = nil },
		func(c *Config) { c.SMTAggregate = []float64{2, 2, 2, 2} },
		func(c *Config) { c.SMTAggregate = []float64{1, 0.9, 0.8, 0.7} },
	}
	for i, mutate := range cases {
		c := KNL7230()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestHWThreads(t *testing.T) {
	if got := KNL7230().HWThreads(); got != 256 {
		t.Fatalf("KNL7230 HWThreads = %d, want 256", got)
	}
}

func TestSingleThreadRuns(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	done := false
	th := m.Spawn("w", func(p *Proc) {
		p.Work(100000)
		done = true
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("body did not complete")
	}
	if th.State() != StateExited {
		t.Fatalf("state = %v, want exited", th.State())
	}
	if th.Cycles() < 100000 {
		t.Fatalf("cycles = %d, want >= 100000", th.Cycles())
	}
}

func TestWorkCycleAccounting(t *testing.T) {
	cfg := testCfg(1, 1)
	m := mustNew(t, cfg)
	th := m.Spawn("w", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Work(1000)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(10 * (1000 + cfg.OpCycles))
	if th.Cycles() != want {
		t.Fatalf("cycles = %d, want %d", th.Cycles(), want)
	}
}

func TestTwoThreadsShareCore(t *testing.T) {
	// One core, one context: two threads must timeslice and both finish
	// with similar vruntime.
	m := mustNew(t, testCfg(1, 1))
	const work = 500000
	a := m.Spawn("a", func(p *Proc) { p.Work(work) })
	b := m.Spawn("b", func(p *Proc) { p.Work(work) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Cycles() < work || b.Cycles() < work {
		t.Fatalf("cycles a=%d b=%d, want >= %d each", a.Cycles(), b.Cycles(), work)
	}
	// Wall time must cover both threads' serialized work on one context.
	wall := m.Stats().Ticks * m.Config().TickCycles
	if wall < 2*work {
		t.Fatalf("wall cycles %d < serialized work %d", wall, 2*work)
	}
}

func TestSMTSharingSpeedsUp(t *testing.T) {
	// Two threads on a 1-core/2-SMT machine (agg 1.5) should finish
	// faster than on a 1-core/1-SMT machine, but slower than on 2 cores.
	run := func(cores, smt int) uint64 {
		m := mustNew(t, testCfg(cores, smt))
		for i := 0; i < 2; i++ {
			m.Spawn("w", func(p *Proc) { p.Work(1 << 20) })
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Stats().Ticks
	}
	serial := run(1, 1)
	smt := run(1, 2)
	par := run(2, 1)
	if !(par < smt && smt < serial) {
		t.Fatalf("ticks: 2-core=%d < smt2=%d < 1-context=%d expected", par, smt, serial)
	}
}

func TestSemBlockAndWake(t *testing.T) {
	m := mustNew(t, testCfg(2, 1))
	s := m.NewSem("s", 0)
	order := []string{}
	m.Spawn("waiter", func(p *Proc) {
		p.SemWait(s)
		order = append(order, "woken")
	})
	m.Spawn("poster", func(p *Proc) {
		p.Work(200000)
		order = append(order, "posting")
		p.SemPost(s)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "posting" || order[1] != "woken" {
		t.Fatalf("order = %v", order)
	}
}

func TestBlockedThreadConsumesNoCycles(t *testing.T) {
	m := mustNew(t, testCfg(2, 1))
	s := m.NewSem("s", 0)
	waiter := m.Spawn("waiter", func(p *Proc) { p.SemWait(s) })
	m.Spawn("poster", func(p *Proc) {
		p.Work(1 << 22)
		p.SemPost(s)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The waiter paid only its SemWait op, wake penalty and exit path,
	// never the poster's megacycles.
	if waiter.Cycles() > 100000 {
		t.Fatalf("blocked waiter consumed %d cycles", waiter.Cycles())
	}
}

func TestSpinningThreadBurnsCycles(t *testing.T) {
	m := mustNew(t, testCfg(2, 1))
	stop := false
	spinner := m.Spawn("spinner", func(p *Proc) {
		for !stop {
			p.Work(100)
		}
	})
	m.Spawn("worker", func(p *Proc) {
		p.Work(1 << 21)
		stop = true
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if spinner.Cycles() < 1<<20 {
		t.Fatalf("spinner consumed only %d cycles", spinner.Cycles())
	}
}

func TestSemCountingSemantics(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	s := m.NewSem("s", 2)
	ran := 0
	m.Spawn("w", func(p *Proc) {
		p.SemWait(s) // count 2 -> 1, no block
		ran++
		p.SemWait(s) // count 1 -> 0, no block
		ran++
		p.SemPost(s)
		p.SemWait(s) // immediately satisfied
		ran++
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 3 || s.Value() != 0 {
		t.Fatalf("ran=%d value=%d", ran, s.Value())
	}
}

func TestSemFIFOWake(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	s := m.NewSem("s", 0)
	var woken []int
	for i := 0; i < 3; i++ {
		i := i
		m.Spawn("waiter", func(p *Proc) {
			p.Work(uint64(1000 * (i + 1))) // stagger arrival order: 0, 1, 2
			p.SemWait(s)
			woken = append(woken, i)
		})
	}
	m.Spawn("poster", func(p *Proc) {
		p.Work(1 << 20) // let all waiters block first
		for i := 0; i < 3; i++ {
			p.SemPost(s)
			p.Work(200000) // allow each woken thread to record in turn
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woken) != 3 || woken[0] != 0 || woken[1] != 1 || woken[2] != 2 {
		t.Fatalf("wake order = %v, want [0 1 2]", woken)
	}
}

func TestBarrierRendezvous(t *testing.T) {
	m := mustNew(t, testCfg(4, 1))
	b := m.NewBarrier("b", 4)
	serials := 0
	phase := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn("t", func(p *Proc) {
			p.Work(uint64(1000 * (i + 1)))
			if p.BarrierWait(b) {
				serials++
			}
			phase[i] = 1
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if serials != 1 {
		t.Fatalf("serial flag granted %d times, want 1", serials)
	}
	for i, ph := range phase {
		if ph != 1 {
			t.Fatalf("thread %d never passed the barrier", i)
		}
	}
}

func TestBarrierMultipleGenerations(t *testing.T) {
	m := mustNew(t, testCfg(2, 2))
	b := m.NewBarrier("b", 3)
	const rounds = 5
	serialCount := 0
	for i := 0; i < 3; i++ {
		m.Spawn("t", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Work(5000)
				if p.BarrierWait(b) {
					serialCount++
				}
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if serialCount != rounds {
		t.Fatalf("serial granted %d times, want %d", serialCount, rounds)
	}
}

func TestBarrierResizeReleases(t *testing.T) {
	m := mustNew(t, testCfg(2, 1))
	b := m.NewBarrier("b", 3)
	passed := 0
	for i := 0; i < 2; i++ {
		m.Spawn("w", func(p *Proc) {
			p.BarrierWait(b)
			passed++
		})
	}
	m.Spawn("resizer", func(p *Proc) {
		p.Work(1 << 20) // let both block
		b.Resize(2)
		p.Op()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 2 {
		t.Fatalf("passed = %d, want 2", passed)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	m := mustNew(t, testCfg(4, 1))
	mu := m.NewMutex("mu")
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		m.Spawn("t", func(p *Proc) {
			for r := 0; r < 10; r++ {
				p.Lock(mu)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Work(10000)
				inside--
				p.Unlock(mu)
				p.Work(5000)
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max threads in critical section = %d", maxInside)
	}
	if mu.Acquisitions != 40 {
		t.Fatalf("acquisitions = %d, want 40", mu.Acquisitions)
	}
	if mu.Contended == 0 {
		t.Fatal("expected some contention")
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	// Unlocking a mutex you do not hold is a programming error and
	// panics, matching sync.Mutex semantics.
	m := mustNew(t, testCfg(1, 1))
	mu := m.NewMutex("mu")
	m.Spawn("bad", func(p *Proc) { p.Unlock(mu) })
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "non-owner") {
			t.Fatalf("recover = %v, want non-owner panic", r)
		}
	}()
	_ = m.Run()
}

func TestDeadlockDetection(t *testing.T) {
	m := mustNew(t, testCfg(2, 1))
	s := m.NewSem("never", 0)
	m.Spawn("a", func(p *Proc) { p.SemWait(s) })
	m.Spawn("b", func(p *Proc) { p.SemWait(s) })
	err := m.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
}

func TestMaxTicksAborts(t *testing.T) {
	cfg := testCfg(1, 1)
	cfg.MaxTicks = 10
	m := mustNew(t, cfg)
	m.Spawn("loop", func(p *Proc) {
		for {
			p.Work(1000)
		}
	})
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "MaxTicks") {
		t.Fatalf("err = %v, want MaxTicks error", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	m.Spawn("boom", func(p *Proc) {
		p.Work(100)
		panic("kaboom")
	})
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
}

func TestRunTwiceErrors(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	m.Spawn("w", func(p *Proc) { p.Work(10) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err == nil {
		t.Fatal("second Run did not error")
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	m.Spawn("w", func(p *Proc) { p.Work(10) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Run did not panic")
		}
	}()
	m.Spawn("late", func(p *Proc) {})
}

func TestPinnedThreadStaysOnCore(t *testing.T) {
	m := mustNew(t, testCfg(4, 1))
	th := m.SpawnPinned("pinned", 2, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Work(10000)
		}
	})
	// Competing load everywhere to tempt the balancer.
	for i := 0; i < 8; i++ {
		m.Spawn("load", func(p *Proc) { p.Work(1 << 20) })
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.core != 2 {
		t.Fatalf("pinned thread ended on core %d", th.core)
	}
}

func TestSetAffinityMigrates(t *testing.T) {
	m := mustNew(t, testCfg(4, 1))
	cfg := m.Config()
	var target *Thread
	target = m.SpawnPinned("target", 0, func(p *Proc) {
		for i := 0; i < 200; i++ {
			p.Work(cfg.TickCycles)
		}
	})
	m.SpawnPinned("mover", 1, func(p *Proc) {
		p.Work(10 * cfg.TickCycles)
		p.SetAffinity(target.ID(), 3)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if target.Pinned() != 3 || target.core != 3 {
		t.Fatalf("target pinned=%d core=%d, want 3/3", target.Pinned(), target.core)
	}
	if m.Stats().Migrations == 0 {
		t.Fatal("no migration recorded")
	}
}

func TestSetAffinityValidation(t *testing.T) {
	m := mustNew(t, testCfg(2, 1))
	m.Spawn("bad", func(p *Proc) { p.SetAffinity(0, 99) })
	if err := m.Run(); err == nil {
		t.Fatal("invalid SetAffinity did not surface as error")
	}
}

func TestOversubscriptionFairness(t *testing.T) {
	// 16 threads on a 2-core/1-SMT machine: all must finish, and CFS
	// should keep consumed cycles roughly equal while they compete.
	m := mustNew(t, testCfg(2, 1))
	const n = 16
	const work = 200000
	threads := make([]*Thread, n)
	for i := 0; i < n; i++ {
		threads[i] = m.Spawn("w", func(p *Proc) { p.Work(work) })
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, th := range threads {
		if th.State() != StateExited {
			t.Fatalf("thread %d did not finish", i)
		}
		if th.Cycles() < work {
			t.Fatalf("thread %d cycles = %d", i, th.Cycles())
		}
	}
	if m.Stats().CtxSwitches == 0 {
		t.Fatal("oversubscription produced no context switches")
	}
}

func TestLoadBalancerSpreadsThreads(t *testing.T) {
	// Spawn 4 unpinned long-running threads; initial round-robin puts
	// one per core, but even if they started together the balancer must
	// leave every core busy.
	m := mustNew(t, testCfg(4, 1))
	for i := 0; i < 4; i++ {
		m.Spawn("w", func(p *Proc) { p.Work(1 << 22) })
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if m.CoreBusyCycles(c) == 0 {
			t.Fatalf("core %d idle for the whole run", c)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, []uint64) {
		m := mustNew(t, testCfg(4, 2))
		s := m.NewSem("s", 0)
		b := m.NewBarrier("b", 8)
		for i := 0; i < 8; i++ {
			i := i
			m.Spawn("w", func(p *Proc) {
				for r := 0; r < 20; r++ {
					p.Work(uint64(1000 + 137*i))
					if i == 0 && r == 5 {
						p.SemPost(s)
					}
					if i == 7 && r == 6 {
						p.SemWait(s)
					}
					p.BarrierWait(b)
				}
			})
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		per := make([]uint64, 8)
		for i, th := range m.Threads() {
			per[i] = th.Cycles()
		}
		return m.Stats().Ticks, m.TotalCycles(), per
	}
	t1, c1, p1 := run()
	t2, c2, p2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("runs diverged: ticks %d/%d cycles %d/%d", t1, t2, c1, c2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("thread %d cycles diverged: %d vs %d", i, p1[i], p2[i])
		}
	}
}

func TestWallSecondsAndConversions(t *testing.T) {
	cfg := testCfg(1, 1)
	cfg.FreqHz = 1e9
	m := mustNew(t, cfg)
	m.Spawn("w", func(p *Proc) { p.Work(1 << 20) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	wantWall := float64(m.Stats().Ticks) * float64(cfg.TickCycles) / 1e9
	if m.WallSeconds() != wantWall {
		t.Fatalf("WallSeconds = %v, want %v", m.WallSeconds(), wantWall)
	}
	if m.CyclesToSeconds(2e9) != 2.0 {
		t.Fatalf("CyclesToSeconds(2e9) = %v", m.CyclesToSeconds(2e9))
	}
}

func TestNowAdvances(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	var t0, t1 uint64
	m.Spawn("w", func(p *Proc) {
		t0 = p.NowCycles()
		p.Work(1 << 20)
		t1 = p.NowCycles()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 <= t0 {
		t.Fatalf("NowCycles did not advance: %d -> %d", t0, t1)
	}
}

func TestCPUCyclesExcludesBlockedTime(t *testing.T) {
	m := mustNew(t, testCfg(2, 1))
	s := m.NewSem("s", 0)
	var waiterCPU uint64
	m.Spawn("waiter", func(p *Proc) {
		before := p.CPUCycles()
		p.SemWait(s)
		waiterCPU = p.CPUCycles() - before
	})
	m.Spawn("poster", func(p *Proc) {
		p.Work(1 << 22)
		p.SemPost(s)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if waiterCPU > 50000 {
		t.Fatalf("waiter charged %d CPU cycles across a block", waiterCPU)
	}
}

func TestThreadStateString(t *testing.T) {
	cases := map[ThreadState]string{
		StateRunnable: "runnable", StateRunning: "running",
		StateBlocked: "blocked", StateExited: "exited", ThreadState(9): "invalid",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("State(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: for arbitrary small workloads, total busy cycles across
// cores equals total cycles charged to threads, and the machine always
// terminates.
func TestQuickCycleConservation(t *testing.T) {
	f := func(workRaw []uint16, coresRaw, smtRaw uint8) bool {
		cores := int(coresRaw)%4 + 1
		smt := int(smtRaw)%2 + 1
		if len(workRaw) > 12 {
			workRaw = workRaw[:12]
		}
		m, err := New(testCfg(cores, smt))
		if err != nil {
			return false
		}
		for _, w := range workRaw {
			w := uint64(w)
			m.Spawn("w", func(p *Proc) { p.Work(w * 10) })
		}
		if len(workRaw) == 0 {
			return true
		}
		if err := m.Run(); err != nil {
			return false
		}
		var busy uint64
		for c := 0; c < cores; c++ {
			busy += m.CoreBusyCycles(c)
		}
		return busy == m.TotalCycles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: semaphore value is never negative and waiters never coexist
// with a positive count after a run.
func TestQuickSemInvariant(t *testing.T) {
	f := func(posts, waits uint8) bool {
		np := int(posts)%8 + 8 // ensure posts >= waits so the run finishes
		nw := int(waits) % 8
		m, err := New(testCfg(2, 2))
		if err != nil {
			return false
		}
		s := m.NewSem("s", 0)
		m.Spawn("poster", func(p *Proc) {
			for i := 0; i < np; i++ {
				p.Work(1000)
				p.SemPost(s)
			}
		})
		m.Spawn("waiter", func(p *Proc) {
			for i := 0; i < nw; i++ {
				p.SemWait(s)
			}
		})
		if err := m.Run(); err != nil {
			return false
		}
		return s.Value() == np-nw && s.Waiters() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMachineTicks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _ := New(testCfg(4, 2))
		for j := 0; j < 16; j++ {
			m.Spawn("w", func(p *Proc) {
				for k := 0; k < 50; k++ {
					p.Work(10000)
				}
			})
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentHandshake(b *testing.B) {
	m, _ := New(testCfg(1, 1))
	n := b.N
	m.Spawn("w", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Op()
		}
	})
	b.ResetTimer()
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

// Property: CFS keeps cycle allocation fair — for arbitrary small
// thread mixes on one core, no two equal-work threads finish with
// wildly different consumed cycles at any point (checked at the end:
// every thread completed its equal work).
func TestQuickCFSFairness(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		m, err := New(testCfg(1, 1))
		if err != nil {
			return false
		}
		const work = 200000
		finished := make([]uint64, n)
		for i := 0; i < n; i++ {
			i := i
			m.Spawn("w", func(p *Proc) {
				for done := 0; done < work; done += 5000 {
					p.Work(5000)
				}
				finished[i] = p.NowCycles()
			})
		}
		if err := m.Run(); err != nil {
			return false
		}
		// Equal-work threads on a fair scheduler finish within a few
		// timeslices of each other.
		var min, max uint64
		for i, f := range finished {
			if i == 0 || f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		slack := uint64(8 * m.Config().TickCycles)
		return max-min <= slack+max/4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMachineNowCyclesMatchesTicks(t *testing.T) {
	m := mustNew(t, testCfg(1, 1))
	m.Spawn("w", func(p *Proc) { p.Work(100000) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.NowCycles() != m.Stats().Ticks*m.Config().TickCycles {
		t.Fatalf("NowCycles %d != ticks*quantum %d", m.NowCycles(), m.Stats().Ticks*m.Config().TickCycles)
	}
}

func TestNUMAValidationAndNodeOf(t *testing.T) {
	cfg := testCfg(8, 1)
	cfg.NUMANodes = 3 // does not divide 8
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid NUMA split accepted")
	}
	cfg.NUMANodes = 2
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NodeOf(0) != 0 || cfg.NodeOf(3) != 0 || cfg.NodeOf(4) != 1 || cfg.NodeOf(7) != 1 {
		t.Fatal("NodeOf mapping wrong")
	}
	if testCfg(4, 1).NodeOf(3) != 0 {
		t.Fatal("uniform machine should map everything to node 0")
	}
}

func TestCrossNodeMigrationCharged(t *testing.T) {
	cfg := testCfg(4, 1)
	cfg.NUMANodes = 2
	cfg.CrossNodeMigrationCycles = 50000
	m := mustNew(t, cfg)
	var target *Thread
	target = m.SpawnPinned("t", 0, func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Work(cfg.TickCycles)
		}
	})
	m.SpawnPinned("mover", 1, func(p *Proc) {
		p.Work(5 * cfg.TickCycles)
		p.SetAffinity(target.ID(), 3) // node 0 -> node 1
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().CrossNodeMigrations == 0 {
		t.Fatal("cross-node migration not counted")
	}
	if m.Stats().Migrations < m.Stats().CrossNodeMigrations {
		t.Fatal("cross-node exceeds total migrations")
	}
}

func TestKNLSNC4Preset(t *testing.T) {
	cfg := KNL7230SNC4()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NUMANodes != 4 || cfg.NodeOf(15) != 0 || cfg.NodeOf(16) != 1 || cfg.NodeOf(63) != 3 {
		t.Fatal("SNC4 mapping wrong")
	}
}
