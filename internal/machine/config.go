// Package machine simulates a many-core shared-memory processor with an
// OS-like thread scheduler. It is the hardware/OS substitute for the
// paper's Knights Landing testbed: Go's runtime exposes no portable
// thread pinning or core-level de-scheduling, so GG-PDES's mechanisms
// (semaphore de-scheduling, sched_setaffinity, CFS multiplexing, SMT
// sharing) are reproduced on a simulated machine instead.
//
// # Execution model
//
// Simulated threads are goroutines driven cooperatively, exactly one at
// a time, by the machine's tick loop; runs are therefore deterministic
// and shared PDES state needs no Go-level synchronization. A thread's
// program calls Proc methods (Work, SemWait, SemPost, BarrierWait,
// Lock, Unlock, SetAffinity, Yield); each call yields a costed segment.
// The machine advances in ticks: every tick, each core runs its
// selected SMT contexts, granting each a share of the tick's cycles
// that depends on how many contexts are active (the SMT aggregate
// throughput curve). Go-level code between two Proc calls executes
// atomically when the later call's segment is fetched, i.e. when the
// thread is actually scheduled.
//
// Blocking calls (SemWait on an empty semaphore, BarrierWait, Lock on a
// held mutex) de-schedule the thread: it consumes no cycles until
// woken. Spinning threads keep paying for every loop iteration. This
// asymmetry is the entire subject of the reproduced paper.
package machine

import (
	"errors"
	"fmt"
)

// Config describes the simulated processor and scheduler.
type Config struct {
	// Name identifies the topology in reports.
	Name string
	// Cores is the number of physical cores.
	Cores int
	// SMTWidth is the number of hardware thread contexts per core.
	SMTWidth int
	// FreqHz converts cycles to seconds in reports.
	FreqHz float64
	// TickCycles is the scheduling quantum in cycles. Each tick, every
	// running context receives TickCycles·agg(k)/k cycles where k is
	// the number of active contexts on its core.
	TickCycles uint64
	// SMTAggregate[k-1] is the aggregate throughput of a core with k
	// active contexts, in single-context units. Must be non-decreasing
	// with SMTAggregate[0] == 1.
	SMTAggregate []float64
	// OpCycles is the baseline cost charged for every machine call.
	OpCycles uint64
	// CtxSwitchCycles is charged to a thread when it is switched onto a
	// context it was not already running on.
	CtxSwitchCycles uint64
	// MigrationCycles is charged (in addition to the context switch)
	// when a thread moves between cores, modelling cache refill.
	MigrationCycles uint64
	// NUMANodes partitions the cores into equal nodes (0 or 1 =
	// uniform memory). KNL supports this as sub-NUMA clustering.
	NUMANodes int
	// CrossNodeMigrationCycles is charged on top of MigrationCycles
	// when a thread crosses node boundaries.
	CrossNodeMigrationCycles uint64
	// WakeCycles is charged to a thread when it is woken from a
	// blocking call.
	WakeCycles uint64
	// BarrierWakePerWaiterCycles is charged to the thread completing a
	// barrier generation, per waiter released — the serialized futex
	// wake loop that makes pthread_barrier rounds grow with the thread
	// count.
	BarrierWakePerWaiterCycles uint64
	// PreemptGranularityTicks is the vruntime lead (in ticks) a waiting
	// thread must have before it preempts a running one; this sets the
	// effective CFS timeslice.
	PreemptGranularityTicks int
	// LoadBalancePeriodTicks is how often the CFS-style load balancer
	// migrates unpinned threads from busy to idle cores; 0 disables
	// periodic balancing (idle stealing still happens).
	LoadBalancePeriodTicks int
	// MaxTicks aborts the run if exceeded; 0 means unlimited.
	MaxTicks uint64
	// StartTick offsets the machine wall-clock: the tick counter begins
	// here instead of zero, so a machine resumed from a checkpoint
	// reports cumulative NowCycles/WallSeconds. MaxTicks remains an
	// absolute (cumulative) bound.
	StartTick uint64
}

// KNL7230 returns the topology of the paper's evaluation platform: an
// Intel Xeon Phi Knights Landing 7230 with 64 cores, 4-way SMT (256
// hardware threads) at 1.3 GHz.
func KNL7230() Config {
	return Config{
		Name:       "knl7230",
		Cores:      64,
		SMTWidth:   4,
		FreqHz:     1.3e9,
		TickCycles: 32768,
		// KNL SMT scaling: modest per-context gains beyond one thread.
		SMTAggregate:               []float64{1.0, 1.45, 1.7, 1.9},
		OpCycles:                   40,
		CtxSwitchCycles:            3000,
		MigrationCycles:            6000,
		WakeCycles:                 2000,
		BarrierWakePerWaiterCycles: 800,
		PreemptGranularityTicks:    3,
		LoadBalancePeriodTicks:     8,
	}
}

// KNL7230SNC4 returns the same processor in sub-NUMA-clustering mode:
// four nodes of 16 cores with expensive cross-node migrations.
func KNL7230SNC4() Config {
	c := KNL7230()
	c.Name = "knl7230-snc4"
	c.NUMANodes = 4
	c.CrossNodeMigrationCycles = 18000
	return c
}

// Small returns a 4-core, 2-way-SMT machine, convenient for unit tests
// and quickstart examples.
func Small() Config {
	c := KNL7230()
	c.Name = "small4x2"
	c.Cores = 4
	c.SMTWidth = 2
	c.SMTAggregate = []float64{1.0, 1.5}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return errors.New("machine: Cores must be positive")
	case c.SMTWidth <= 0:
		return errors.New("machine: SMTWidth must be positive")
	case c.FreqHz <= 0:
		return errors.New("machine: FreqHz must be positive")
	case c.TickCycles == 0:
		return errors.New("machine: TickCycles must be positive")
	case c.OpCycles == 0:
		return errors.New("machine: OpCycles must be positive")
	case len(c.SMTAggregate) < c.SMTWidth:
		return fmt.Errorf("machine: SMTAggregate needs %d entries, has %d", c.SMTWidth, len(c.SMTAggregate))
	}
	if c.SMTAggregate[0] != 1.0 {
		return errors.New("machine: SMTAggregate[0] must be 1.0")
	}
	for i := 1; i < c.SMTWidth; i++ {
		if c.SMTAggregate[i] < c.SMTAggregate[i-1] {
			return errors.New("machine: SMTAggregate must be non-decreasing")
		}
	}
	if c.NUMANodes > 1 {
		if c.Cores%c.NUMANodes != 0 {
			return fmt.Errorf("machine: NUMANodes %d must divide Cores %d", c.NUMANodes, c.Cores)
		}
	}
	return nil
}

// NodeOf returns the NUMA node of a core (0 when uniform).
func (c Config) NodeOf(core int) int {
	if c.NUMANodes <= 1 {
		return 0
	}
	return core / (c.Cores / c.NUMANodes)
}

// HWThreads returns the total number of hardware thread contexts.
func (c Config) HWThreads() int { return c.Cores * c.SMTWidth }
