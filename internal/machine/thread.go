package machine

import (
	"fmt"
	"runtime"
)

// ThreadState is the scheduling state of a simulated thread.
type ThreadState int

// Thread states.
const (
	// StateRunnable means the thread is on a core's run queue.
	StateRunnable ThreadState = iota
	// StateRunning means the thread occupies an SMT context this tick.
	StateRunning
	// StateBlocked means the thread is de-scheduled, waiting on a
	// semaphore, barrier or mutex. It consumes no cycles.
	StateBlocked
	// StateExited means the thread's body returned.
	StateExited
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateExited:
		return "exited"
	default:
		return "invalid"
	}
}

// AnyCore passed as an affinity pin lets the scheduler place the thread
// on any core.
const AnyCore = -1

type segKind int

const (
	segWork segKind = iota
	segSemWait
	segSemPost
	segBarrier
	segLock
	segUnlock
	segSetAffinity
	segYield
	segExit
	segPanic
)

type segment struct {
	kind segKind
	cost uint64
	sem  *Sem
	bar  *Barrier
	mu   *Mutex
	// SetAffinity operands.
	target  *Thread
	newPin  int
	panicV  any
	panicST []byte
}

// Thread is a simulated OS thread.
type Thread struct {
	id   int
	name string
	m    *Machine

	state  ThreadState
	core   int // core whose structures currently hold the thread
	pinned int // AnyCore or a core id

	vruntime uint64
	cycles   uint64 // CPU cycles consumed so far
	penalty  uint64 // pending wake/switch/migration cycles, added to the next segment

	seg        segment
	needsFetch bool
	everRan    bool

	resume chan struct{}
	yieldc chan segment

	blockReason   string
	waitSeq       uint64 // FIFO ordering among waiters
	barrierSerial bool   // set on barrier release for the last arriver
}

// ID returns the thread's identifier (its spawn index).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// State returns the thread's scheduling state. Only meaningful from
// machine or simulated-thread context (runs are single-threaded).
func (t *Thread) State() ThreadState { return t.state }

// Cycles returns the CPU cycles the thread has consumed.
func (t *Thread) Cycles() uint64 { return t.cycles }

// Pinned returns the core the thread is pinned to, or AnyCore.
func (t *Thread) Pinned() int { return t.pinned }

// Proc is the machine interface handed to a thread's body. All methods
// must be called from the thread's own goroutine.
type Proc struct {
	t *Thread
}

// call yields a segment to the scheduler and blocks until the machine
// completes it and schedules the thread again.
func (p *Proc) call(seg segment) {
	t := p.t
	t.yieldc <- seg
	if _, ok := <-t.resume; !ok {
		// The machine aborted; unwind this goroutine.
		runtime.Goexit()
	}
}

// ID returns the calling thread's id.
func (p *Proc) ID() int { return p.t.id }

// Machine returns the machine the thread runs on.
func (p *Proc) Machine() *Machine { return p.t.m }

// NowCycles returns the machine's wall-clock in cycles (tick-granular).
func (p *Proc) NowCycles() uint64 { return p.t.m.tick * p.t.m.cfg.TickCycles }

// NowSeconds returns the machine's wall-clock in seconds.
func (p *Proc) NowSeconds() float64 {
	return float64(p.NowCycles()) / p.t.m.cfg.FreqHz
}

// CPUCycles returns the CPU cycles this thread has consumed; the
// difference across a region measures its CPU time (blocked time does
// not count).
func (p *Proc) CPUCycles() uint64 { return p.t.cycles }

// Work consumes the given number of CPU cycles.
func (p *Proc) Work(cycles uint64) {
	p.call(segment{kind: segWork, cost: cycles + p.t.m.cfg.OpCycles})
}

// Op consumes the baseline per-operation cost, modelling a cheap shared
// memory or atomic operation.
func (p *Proc) Op() {
	p.call(segment{kind: segWork, cost: p.t.m.cfg.OpCycles})
}

// SemWait decrements the semaphore, blocking (de-scheduled, zero
// cycles) while its value is zero.
func (p *Proc) SemWait(s *Sem) {
	p.call(segment{kind: segSemWait, cost: p.t.m.cfg.OpCycles, sem: s})
}

// SemPost increments the semaphore, waking the longest-waiting blocked
// thread if any.
func (p *Proc) SemPost(s *Sem) {
	p.call(segment{kind: segSemPost, cost: p.t.m.cfg.OpCycles, sem: s})
}

// BarrierWait blocks until all parties have arrived. It returns true on
// exactly one thread per generation (the last arriver), mirroring
// PTHREAD_BARRIER_SERIAL_THREAD.
func (p *Proc) BarrierWait(b *Barrier) bool {
	p.call(segment{kind: segBarrier, cost: p.t.m.cfg.OpCycles, bar: b})
	return p.t.barrierSerial
}

// Lock acquires the mutex, blocking while it is held.
func (p *Proc) Lock(mu *Mutex) {
	p.call(segment{kind: segLock, cost: p.t.m.cfg.OpCycles, mu: mu})
}

// Unlock releases the mutex, handing it to the longest waiter if any.
// It panics if the calling thread does not hold the mutex.
func (p *Proc) Unlock(mu *Mutex) {
	p.call(segment{kind: segUnlock, cost: p.t.m.cfg.OpCycles, mu: mu})
}

// SetAffinity pins thread tid to the given core (or AnyCore to unpin),
// migrating it if necessary — the sched_setaffinity equivalent. Pinning
// a thread to an out-of-range core panics.
func (p *Proc) SetAffinity(tid, core int) {
	m := p.t.m
	if tid < 0 || tid >= len(m.threads) {
		panic(fmt.Sprintf("machine: SetAffinity on unknown thread %d", tid))
	}
	if core != AnyCore && (core < 0 || core >= m.cfg.Cores) {
		panic(fmt.Sprintf("machine: SetAffinity to invalid core %d", core))
	}
	p.call(segment{
		kind:   segSetAffinity,
		cost:   p.t.m.cfg.OpCycles,
		target: m.threads[tid],
		newPin: core,
	})
}

// Yield relinquishes the rest of the thread's timeslice.
func (p *Proc) Yield() {
	p.call(segment{kind: segYield, cost: p.t.m.cfg.OpCycles})
}
