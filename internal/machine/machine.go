package machine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"ggpdes/internal/telemetry"
	"ggpdes/internal/trace"
)

// Machine is a simulated many-core processor. Create one with New,
// spawn threads, then Run to completion. A Machine is single-use.
type Machine struct {
	cfg     Config
	threads []*Thread
	cores   []coreState
	tick    uint64
	live    int
	started bool

	stats    Stats
	tr       *trace.Recorder
	tel      telemetryHandles
	onCancel func()
}

// Metric names the machine registers. Histograms are sampled every
// telemetrySampleTicks quanta per core.
const (
	MetricMigrations   = "machine.migrations"
	MetricPreempts     = "machine.preempts"
	MetricCtxSwitches  = "machine.ctx_switches"
	MetricRunqDepth    = "machine.runq_depth"
	MetricSMTOccupancy = "machine.smt_occupancy"
)

// telemetrySampleTicks is the per-core occupancy sampling period.
const telemetrySampleTicks = 16

// telemetryHandles caches metric handles so the hot scheduling paths
// never do registry lookups.
type telemetryHandles struct {
	migrations, preempts, ctxSwitches *telemetry.Counter
	runqDepth, smtOccupancy           *telemetry.Histogram
}

func (m *Machine) bindTelemetry(reg *telemetry.Registry) {
	// The machine runs entirely on its single driving goroutine, so
	// one shard (tid 0) suffices; what matters is that its cells do
	// not share cache lines with the worker-thread shards.
	sh := reg.Shard(0)
	m.tel = telemetryHandles{
		migrations:   sh.Counter(MetricMigrations),
		preempts:     sh.Counter(MetricPreempts),
		ctxSwitches:  sh.Counter(MetricCtxSwitches),
		runqDepth:    sh.Histogram(MetricRunqDepth),
		smtOccupancy: sh.Histogram(MetricSMTOccupancy),
	}
}

// SetTrace attaches a trace recorder; the machine emits migration and
// preemption records. Call before Run.
func (m *Machine) SetTrace(r *trace.Recorder) { m.tr = r }

// SetTelemetry points the machine's metrics at reg (nil detaches them
// again). Call before Run.
func (m *Machine) SetTelemetry(reg *telemetry.Registry) { m.bindTelemetry(reg) }

// SetOnCancel registers a hook RunContext invokes once, from the
// driving goroutine, when its context is cancelled — the place to ask
// the workload to wind itself down (e.g. tw.Engine.Cancel). Call
// before Run.
func (m *Machine) SetOnCancel(f func()) { m.onCancel = f }

type coreState struct {
	// runq holds runnable threads not currently on a context, ordered
	// by (vruntime, id).
	runq []*Thread
	// running holds the threads occupying SMT contexts this tick.
	running []*Thread
	// scratch is advanceTick's reusable iteration snapshot of running,
	// so the per-core per-tick copy allocates nothing in steady state.
	scratch []*Thread
	// busy accumulates cycles actually consumed on this core.
	busy uint64
}

// Stats aggregates machine-level counters for a run.
type Stats struct {
	// Ticks is the number of scheduling quanta the run took; Ticks ×
	// TickCycles is the machine wall-clock in cycles.
	Ticks uint64
	// CtxSwitches counts threads switched onto a context they were not
	// already occupying.
	CtxSwitches uint64
	// Migrations counts cross-core thread movements;
	// CrossNodeMigrations counts the subset crossing NUMA nodes.
	Migrations          uint64
	CrossNodeMigrations uint64
	// SemWaits, SemPosts and BarrierWaits count synchronization calls.
	SemWaits, SemPosts, BarrierWaits uint64
	// Wakeups counts threads woken from blocking calls.
	Wakeups uint64
	// Preempts counts involuntary context losses to a lower-vruntime
	// waiter.
	Preempts uint64
}

// New creates a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, tick: cfg.StartTick}
	m.cores = make([]coreState, cfg.Cores)
	// Bind against a nil registry so instrumentation sites always have
	// live (if unreported) handles.
	m.bindTelemetry(nil)
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns the machine counters; valid after Run.
func (m *Machine) Stats() Stats { return m.stats }

// NowCycles returns the machine wall-clock in cycles (tick-granular);
// also available to threads via Proc.NowCycles.
func (m *Machine) NowCycles() uint64 { return m.tick * m.cfg.TickCycles }

// WallSeconds converts the run's tick count to seconds of machine
// wall-clock time.
func (m *Machine) WallSeconds() float64 {
	return float64(m.tick) * float64(m.cfg.TickCycles) / m.cfg.FreqHz
}

// CyclesToSeconds converts a cycle count to seconds on this machine.
func (m *Machine) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / m.cfg.FreqHz
}

// TotalCycles returns the CPU cycles consumed by all threads, the
// machine's "instructions executed" proxy.
func (m *Machine) TotalCycles() uint64 {
	var sum uint64
	for _, t := range m.threads {
		sum += t.cycles
	}
	return sum
}

// Threads returns the spawned threads in id order.
func (m *Machine) Threads() []*Thread { return m.threads }

// Thread returns the thread with the given id.
func (m *Machine) Thread(id int) *Thread { return m.threads[id] }

// CoreBusyCycles returns the cycles consumed on the given core.
func (m *Machine) CoreBusyCycles(core int) uint64 { return m.cores[core].busy }

// Spawn creates a thread that will run body when the machine starts.
// The thread is unpinned; initial placement is round-robin. Spawn must
// be called before Run.
func (m *Machine) Spawn(name string, body func(*Proc)) *Thread {
	return m.spawn(name, AnyCore, body)
}

// SpawnPinned creates a thread pinned to the given core.
func (m *Machine) SpawnPinned(name string, core int, body func(*Proc)) *Thread {
	if core < 0 || core >= m.cfg.Cores {
		panic(fmt.Sprintf("machine: SpawnPinned to invalid core %d", core))
	}
	return m.spawn(name, core, body)
}

func (m *Machine) spawn(name string, pin int, body func(*Proc)) *Thread {
	if m.started {
		panic("machine: Spawn after Run")
	}
	t := &Thread{
		id:         len(m.threads),
		name:       name,
		m:          m,
		state:      StateRunnable,
		pinned:     pin,
		needsFetch: true,
		resume:     make(chan struct{}),
		yieldc:     make(chan segment),
	}
	m.threads = append(m.threads, t)
	m.live++
	go func() {
		if _, ok := <-t.resume; !ok {
			return // machine aborted before the thread ever ran
		}
		defer func() {
			if r := recover(); r != nil {
				t.yieldc <- segment{kind: segPanic, panicV: r}
				return
			}
			t.yieldc <- segment{kind: segExit}
		}()
		body(&Proc{t: t})
	}()
	return t
}

// DeadlockError reports that live threads exist but none is runnable.
type DeadlockError struct {
	// Tick is the quantum at which the deadlock was detected.
	Tick uint64
	// Blocked lists the blocked threads and what they wait on.
	Blocked []string
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	msg := fmt.Sprintf("machine: deadlock at tick %d: %d thread(s) blocked", e.Tick, len(e.Blocked))
	n := len(e.Blocked)
	if n > 8 {
		n = 8
	}
	return msg + ": " + strings.Join(e.Blocked[:n], ", ")
}

// Run drives the machine until every thread has exited. It returns a
// *DeadlockError if all live threads block, or an error when MaxTicks
// is exceeded or a thread body panics.
func (m *Machine) Run() error { return m.RunContext(context.Background()) }

// cancelGraceTicks bounds how long a cancelled run may keep ticking
// while its threads wind down before the machine aborts them outright.
// Threads observing a cancellation flag exit within one main-loop
// iteration (a handful of ticks), so this is generous.
const cancelGraceTicks = 1 << 16

// RunContext drives the machine like Run, polling ctx once per tick
// (real time, not simulated time). On cancellation it invokes the
// SetOnCancel hook so the workload can wind down cooperatively, keeps
// ticking for a bounded grace period, and returns ctx's error — also
// swallowing any deadlock or MaxTicks failure that the teardown
// itself provokes (threads parked on barriers or semaphores when the
// flag flips never get their partners back).
func (m *Machine) RunContext(ctx context.Context) (err error) {
	if m.started {
		return fmt.Errorf("machine: Run called twice")
	}
	m.started = true
	defer func() {
		if err != nil {
			m.abort()
		}
	}()
	// Initial placement: pinned threads on their core, the rest
	// round-robin (fork balancing).
	next := 0
	for _, t := range m.threads {
		core := t.pinned
		if core == AnyCore {
			core = next % m.cfg.Cores
			next++
		}
		t.core = core
		m.cores[core].runq = append(m.cores[core].runq, t)
	}
	for c := range m.cores {
		m.sortRunq(&m.cores[c])
	}

	done := ctx.Done()
	cancelled := false
	var cancelTick uint64
	for m.live > 0 {
		if done != nil && !cancelled {
			select {
			case <-done:
				cancelled = true
				cancelTick = m.tick
				if m.onCancel != nil {
					m.onCancel()
				}
			default:
			}
		}
		if cancelled && m.tick-cancelTick > cancelGraceTicks {
			return ctx.Err()
		}
		if m.cfg.MaxTicks > 0 && m.tick >= m.cfg.MaxTicks {
			if cancelled {
				return ctx.Err()
			}
			return fmt.Errorf("machine: exceeded MaxTicks=%d with %d live thread(s): %s",
				m.cfg.MaxTicks, m.live, m.describeThreads())
		}
		anyRunning := false
		for c := range m.cores {
			m.reselect(c)
			if len(m.cores[c].running) > 0 {
				anyRunning = true
			}
		}
		if !anyRunning {
			if cancelled {
				return ctx.Err()
			}
			return m.deadlock()
		}
		if perr := m.advanceTick(); perr != nil {
			return perr
		}
		m.tick++
		m.stats.Ticks = m.tick
		if m.tick%telemetrySampleTicks == 0 {
			m.sampleOccupancy()
		}
		if m.cfg.LoadBalancePeriodTicks > 0 && m.tick%uint64(m.cfg.LoadBalancePeriodTicks) == 0 {
			m.loadBalance()
		}
	}
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// abort closes the resume channels of all non-exited threads so their
// goroutines unwind instead of leaking.
func (m *Machine) abort() {
	for _, t := range m.threads {
		if t.state != StateExited {
			t.state = StateExited
			close(t.resume)
		}
	}
}

// describeThreads summarizes non-exited threads for diagnostics.
func (m *Machine) describeThreads() string {
	var parts []string
	for _, t := range m.threads {
		if t.state == StateExited {
			continue
		}
		d := fmt.Sprintf("%s=%s", t.name, t.state)
		if t.state == StateBlocked {
			d += "(" + t.blockReason + ")"
		}
		parts = append(parts, d)
		if len(parts) >= 16 {
			parts = append(parts, "...")
			break
		}
	}
	return strings.Join(parts, " ")
}

func (m *Machine) deadlock() error {
	e := &DeadlockError{Tick: m.tick}
	for _, t := range m.threads {
		if t.state == StateBlocked {
			e.Blocked = append(e.Blocked, fmt.Sprintf("%s(%s)", t.name, t.blockReason))
		}
	}
	return e
}

// threadLess is the CFS ordering: lowest vruntime first, id tiebreak.
func threadLess(a, b *Thread) bool {
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.id < b.id
}

func (m *Machine) sortRunq(c *coreState) {
	//ggvet:allow(threadLess is a total order — vruntime with id tiebreak — so the unstable sort cannot permute equal elements)
	sort.Slice(c.runq, func(i, j int) bool { return threadLess(c.runq[i], c.runq[j]) })
}

// reselect fills the core's SMT contexts: empty slots take the lowest
// vruntime runnable threads; a runnable thread preempts a running one
// only with a vruntime lead of PreemptGranularityTicks quanta.
func (m *Machine) reselect(core int) {
	c := &m.cores[core]
	// Fill free contexts.
	for len(c.running) < m.cfg.SMTWidth && len(c.runq) > 0 {
		t := c.runq[0]
		c.runq = c.runq[1:]
		m.switchIn(c, t)
	}
	if len(c.runq) == 0 {
		return
	}
	gran := uint64(m.cfg.PreemptGranularityTicks) * m.cfg.TickCycles
	// Preemption: compare the best waiter against the worst runner.
	for {
		if len(c.runq) == 0 {
			return
		}
		cand := c.runq[0]
		worst := -1
		for i, r := range c.running {
			if worst == -1 || threadLess(c.running[worst], r) {
				worst = i
			}
		}
		r := c.running[worst]
		if cand.vruntime+gran >= r.vruntime {
			return
		}
		// Swap: r back to the queue, cand onto the context.
		m.stats.Preempts++
		m.tel.preempts.Inc()
		if m.tr != nil {
			m.tr.Add(trace.KindPreempt, r.id, 0, int64(core))
		}
		c.runq = c.runq[1:]
		r.state = StateRunnable
		c.running[worst] = c.running[len(c.running)-1]
		c.running = c.running[:len(c.running)-1]
		m.enqueue(r, core)
		m.switchIn(c, cand)
	}
}

// switchIn puts t on a free context of core c, charging switch costs.
func (m *Machine) switchIn(c *coreState, t *Thread) {
	t.state = StateRunning
	c.running = append(c.running, t)
	if t.everRan {
		t.penalty += m.cfg.CtxSwitchCycles
		m.stats.CtxSwitches++
		m.tel.ctxSwitches.Inc()
	}
	t.everRan = true
}

// enqueue places a runnable thread on a core's run queue in order.
func (m *Machine) enqueue(t *Thread, core int) {
	if t.core != core {
		t.penalty += m.cfg.MigrationCycles
		m.stats.Migrations++
		m.tel.migrations.Inc()
		if m.tr != nil {
			m.tr.Add(trace.KindMigration, t.id, 0, int64(core))
		}
		if m.cfg.NodeOf(t.core) != m.cfg.NodeOf(core) {
			t.penalty += m.cfg.CrossNodeMigrationCycles
			m.stats.CrossNodeMigrations++
		}
		t.core = core
	}
	c := &m.cores[core]
	i := sort.Search(len(c.runq), func(i int) bool { return threadLess(t, c.runq[i]) })
	c.runq = append(c.runq, nil)
	copy(c.runq[i+1:], c.runq[i:])
	c.runq[i] = t
}

// placeWoken chooses a core for a freshly woken thread: its pin, or the
// least-loaded core (CFS wake placement).
func (m *Machine) placeWoken(t *Thread) {
	core := t.pinned
	if core == AnyCore {
		core = m.idlestCore()
	}
	// Wake-up placement: do not let a long-sleeping thread's stale low
	// vruntime starve others; align it with the destination core's
	// minimum.
	if min, ok := m.coreMinVruntime(core); ok && t.vruntime < min {
		t.vruntime = min
	}
	m.enqueue(t, core)
}

func (m *Machine) idlestCore() int {
	best, bestLoad := 0, int(^uint(0)>>1)
	for i := range m.cores {
		load := len(m.cores[i].runq) + len(m.cores[i].running)
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

func (m *Machine) coreMinVruntime(core int) (uint64, bool) {
	c := &m.cores[core]
	var min uint64
	found := false
	for _, t := range c.running {
		if !found || t.vruntime < min {
			min, found = t.vruntime, true
		}
	}
	if len(c.runq) > 0 && (!found || c.runq[0].vruntime < min) {
		min, found = c.runq[0].vruntime, true
	}
	return min, found
}

// wake transitions a blocked thread to runnable.
func (m *Machine) wake(t *Thread) {
	if t.state != StateBlocked {
		panic("machine: wake of non-blocked thread " + t.name)
	}
	t.state = StateRunnable
	t.blockReason = ""
	t.penalty += m.cfg.WakeCycles
	m.stats.Wakeups++
	m.placeWoken(t)
}

// block marks the currently running thread t as blocked; the caller
// removes it from the running set.
func (m *Machine) block(t *Thread, reason string) {
	t.state = StateBlocked
	t.blockReason = reason
}

// advanceTick grants every running context its cycle share and advances
// thread programs.
func (m *Machine) advanceTick() error {
	for core := range m.cores {
		c := &m.cores[core]
		k := len(c.running)
		if k == 0 {
			continue
		}
		share := uint64(float64(m.cfg.TickCycles) * m.cfg.SMTAggregate[k-1] / float64(k))
		if share == 0 {
			share = 1
		}
		// Iterate over a snapshot: perform() mutates c.running. The
		// snapshot reuses a per-core scratch buffer across ticks.
		c.scratch = append(c.scratch[:0], c.running...)
		for i, t := range c.scratch {
			c.scratch[i] = nil
			if t.state != StateRunning {
				continue // blocked/migrated by an earlier thread this tick
			}
			if err := m.advanceThread(c, t, share); err != nil {
				return err
			}
		}
	}
	return nil
}

// advanceThread lets t consume up to budget cycles, completing as many
// segments as fit.
func (m *Machine) advanceThread(c *coreState, t *Thread, budget uint64) error {
	for {
		if t.needsFetch {
			ok, err := m.fetchNext(t)
			if err != nil {
				return err
			}
			if !ok {
				m.exitThread(c, t)
				return nil
			}
		}
		if t.seg.cost > budget {
			t.seg.cost -= budget
			m.charge(c, t, budget)
			return nil
		}
		spent := t.seg.cost
		budget -= spent
		m.charge(c, t, spent)
		t.seg.cost = 0
		t.needsFetch = true
		m.perform(c, t)
		if t.state != StateRunning {
			return nil
		}
		if budget == 0 {
			return nil
		}
	}
}

func (m *Machine) charge(c *coreState, t *Thread, cycles uint64) {
	t.cycles += cycles
	t.vruntime += cycles
	c.busy += cycles
}

// fetchNext resumes t's goroutine until its next machine call. It
// reports ok=false when the body returned, and an error if it panicked.
func (m *Machine) fetchNext(t *Thread) (ok bool, err error) {
	t.resume <- struct{}{}
	seg := <-t.yieldc
	t.needsFetch = false
	switch seg.kind {
	case segExit:
		return false, nil
	case segPanic:
		return false, fmt.Errorf("machine: thread %s panicked: %v", t.name, seg.panicV)
	}
	seg.cost += t.penalty
	t.penalty = 0
	t.seg = seg
	return true, nil
}

// exitThread removes t from its core after its body returned.
func (m *Machine) exitThread(c *coreState, t *Thread) {
	t.state = StateExited
	m.removeRunning(c, t)
	m.live--
}

func (m *Machine) removeRunning(c *coreState, t *Thread) {
	for i, r := range c.running {
		if r == t {
			c.running = append(c.running[:i], c.running[i+1:]...)
			return
		}
	}
}

// perform executes the action of t's just-paid segment.
func (m *Machine) perform(c *coreState, t *Thread) {
	seg := &t.seg
	switch seg.kind {
	case segWork:
		// Pure computation; nothing to do.
	case segSemWait:
		m.stats.SemWaits++
		if seg.sem.wait(t) {
			m.block(t, "sem "+seg.sem.name)
			m.removeRunning(c, t)
		}
	case segSemPost:
		m.stats.SemPosts++
		seg.sem.post()
	case segBarrier:
		m.stats.BarrierWaits++
		if seg.bar.arrive(t) {
			m.block(t, "barrier "+seg.bar.name)
			m.removeRunning(c, t)
		}
	case segLock:
		if seg.mu.lock(t) {
			m.block(t, "mutex "+seg.mu.name)
			m.removeRunning(c, t)
		}
	case segUnlock:
		seg.mu.unlock(t)
	case segSetAffinity:
		m.applyAffinity(c, t, seg.target, seg.newPin)
	case segYield:
		// Give up the context; rejoin the queue at the back of the
		// current vruntime position.
		t.state = StateRunnable
		m.removeRunning(c, t)
		m.enqueue(t, t.core)
	default:
		panic(fmt.Sprintf("machine: unknown segment kind %d", seg.kind))
	}
}

// applyAffinity implements sched_setaffinity: pin target to newPin and
// migrate it if it currently sits elsewhere.
func (m *Machine) applyAffinity(c *coreState, caller, target *Thread, newPin int) {
	target.pinned = newPin
	if newPin == AnyCore || target.core == newPin {
		return
	}
	switch target.state {
	case StateRunning:
		tc := &m.cores[target.core]
		m.removeRunning(tc, target)
		target.state = StateRunnable
		m.enqueue(target, newPin)
	case StateRunnable:
		tc := &m.cores[target.core]
		for i, r := range tc.runq {
			if r == target {
				tc.runq = append(tc.runq[:i], tc.runq[i+1:]...)
				break
			}
		}
		m.enqueue(target, newPin)
	case StateBlocked:
		// Re-placed on wake; just record the pin (done above) and the
		// eventual migration cost.
		target.core = newPin
		target.penalty += m.cfg.MigrationCycles
		m.stats.Migrations++
		m.tel.migrations.Inc()
		if m.tr != nil {
			m.tr.Add(trace.KindMigration, target.id, 0, int64(newPin))
		}
	case StateExited:
		// Nothing to do.
	}
}

// sampleOccupancy records per-core run-queue depth and SMT-context
// occupancy into the telemetry histograms. Pure observation — no cycle
// charges, so determinism is unaffected.
func (m *Machine) sampleOccupancy() {
	for i := range m.cores {
		m.tel.runqDepth.Observe(float64(len(m.cores[i].runq)))
		m.tel.smtOccupancy.Observe(float64(len(m.cores[i].running)))
	}
}

// loadBalance migrates unpinned threads from the most to the least
// loaded cores, one pass per period, preferring same-NUMA-node targets
// (CFS scheduling domains balance within a node before across nodes).
func (m *Machine) loadBalance() {
	for moves := 0; moves < m.cfg.Cores; moves++ {
		maxC, minC := -1, -1
		maxL, minL := -1, int(^uint(0)>>1)
		for i := range m.cores {
			load := len(m.cores[i].runq) + len(m.cores[i].running)
			if load > maxL {
				maxL, maxC = load, i
			}
			if load < minL {
				minL, minC = load, i
			}
		}
		if maxC == -1 || minC == -1 || maxL-minL <= 1 {
			return
		}
		// Same-node alternative within one unit of the global minimum.
		if m.cfg.NUMANodes > 1 && m.cfg.NodeOf(maxC) != m.cfg.NodeOf(minC) {
			node := m.cfg.NodeOf(maxC)
			bestLocal, bestLoad := -1, int(^uint(0)>>1)
			for i := range m.cores {
				if m.cfg.NodeOf(i) != node || i == maxC {
					continue
				}
				load := len(m.cores[i].runq) + len(m.cores[i].running)
				if load < bestLoad {
					bestLocal, bestLoad = i, load
				}
			}
			if bestLocal >= 0 && bestLoad <= minL+1 && maxL-bestLoad > 1 {
				minC = bestLocal
			}
		}
		// Move the last (highest-vruntime) unpinned runnable thread.
		c := &m.cores[maxC]
		moved := false
		for i := len(c.runq) - 1; i >= 0; i-- {
			t := c.runq[i]
			if t.pinned != AnyCore {
				continue
			}
			c.runq = append(c.runq[:i], c.runq[i+1:]...)
			m.enqueue(t, minC)
			moved = true
			break
		}
		if !moved {
			return
		}
	}
}
