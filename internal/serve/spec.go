// Package serve turns the ggpdes engine into a simulation service: a
// bounded job queue with backpressure, a worker pool sized to the
// host, a deterministic content-addressed result cache, fault-tolerant
// execution (checkpoint-resume retries, a GVT-stall watchdog, seeded
// crash injection), and an HTTP JSON API. The scheduling problem the
// source paper solves for simulation threads on constrained cores
// reappears one level up — concurrent jobs on a shared host — and this
// package is that level.
package serve

import (
	"fmt"

	"ggpdes"
)

// JobSpec is the wire-format description of one simulation job — the
// JSON body of POST /v1/jobs. The simulation itself is described by
// the embedded ggpdes.Config in its native JSON codec; the remaining
// fields are serving policy. This is API revision 2: revision 1 spread
// the config's fields across the top level with its own decoder, and
// was removed when the Config codec became the single wire format.
type JobSpec struct {
	// Config is the simulation to run, in the ggpdes.Config wire
	// format: enums by name ("system":"gg", "gvt":"async"), the model
	// as a tagged object ({"name":"phold","lps_per_thread":4}), zero
	// values selecting the same defaults as the Go API.
	Config ggpdes.Config `json:"config"`

	// TimeoutSeconds bounds the job's real-time execution across all
	// attempts; 0 uses the server's default deadline.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// NoCache bypasses the result cache for this submission (the run
	// still populates it).
	NoCache bool `json:"no_cache,omitempty"`
	// MaxAttempts overrides the server's retry budget for this job
	// (0 = server default, 1 = no retries).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// CheckpointEvery sets the job's checkpoint cadence in GVT rounds
	// so retries resume instead of restarting (0 = server default,
	// negative = no checkpointing). Ignored when the config already
	// carries its own Checkpoint settings.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// NoForward marks a spec a peer already routed here: the receiving
	// replica must serve it itself (cache or local run) rather than
	// forward it onward, which breaks routing loops. The cluster layer
	// sets it on delegated jobs; clients normally leave it unset.
	NoForward bool `json:"no_forward,omitempty"`
}

// config applies the server defaults and serving-policy fields to the
// embedded config and validates it. Every rejection wraps
// ggpdes.ErrInvalidConfig so the HTTP layer can map it to 400.
func (s JobSpec) config(defaults Options) (ggpdes.Config, error) {
	cfg := s.Config
	if s.TimeoutSeconds < 0 {
		return cfg, fmt.Errorf("%w: timeout_seconds must be non-negative", ggpdes.ErrInvalidConfig)
	}
	if s.MaxAttempts < 0 {
		return cfg, fmt.Errorf("%w: max_attempts must be non-negative", ggpdes.ErrInvalidConfig)
	}
	every := s.CheckpointEvery
	if every == 0 {
		every = defaults.CheckpointEvery
	}
	if cfg.Checkpoint == nil && every > 0 {
		// Dir is assigned per job when the run starts; Every alone is
		// enough for the cache key (Dir is placement, not trajectory).
		cfg.Checkpoint = &ggpdes.CheckpointOptions{Every: every}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// maxAttempts resolves the job's retry budget against the server
// default.
func (s JobSpec) maxAttempts(defaults Options) int {
	n := s.MaxAttempts
	if n == 0 {
		n = defaults.MaxAttempts
	}
	if n <= 0 {
		n = 1
	}
	return n
}
