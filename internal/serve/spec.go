// Package serve turns the ggpdes engine into a simulation service: a
// bounded job queue with backpressure, a worker pool sized to the
// host, a deterministic content-addressed result cache, and an HTTP
// JSON API. The scheduling problem the source paper solves for
// simulation threads on constrained cores reappears one level up —
// concurrent jobs on a shared host — and this package is that level.
package serve

import (
	"errors"
	"fmt"
	"strings"

	"ggpdes"
)

// JobSpec is the wire-format description of one simulation job — the
// JSON body of POST /v1/jobs. String enums use the same names as the
// ggsim flags; zero values select the same defaults as the Go API.
type JobSpec struct {
	// Model selects the workload: "phold" | "epidemics" | "traffic".
	Model string `json:"model"`
	// LPsPerThread is LPs per simulation thread (0 = model default).
	LPsPerThread int `json:"lps_per_thread,omitempty"`
	// Imbalance is PHOLD's 1-K imbalance (0/1 = balanced).
	Imbalance int `json:"imbalance,omitempty"`
	// NonLinear selects PHOLD's non-consecutive active groups.
	NonLinear bool `json:"nonlinear,omitempty"`
	// Lockdown is the epidemics lock-down group count K.
	Lockdown int `json:"lockdown,omitempty"`
	// ContactRate and TransmissionProb tune epidemics.
	ContactRate      float64 `json:"contact_rate,omitempty"`
	TransmissionProb float64 `json:"transmission_prob,omitempty"`
	// Gradient and CenterStartEvents tune traffic.
	Gradient          float64 `json:"gradient,omitempty"`
	CenterStartEvents int     `json:"center_start_events,omitempty"`

	// Threads is the simulation thread count (required).
	Threads int `json:"threads"`
	// System is "baseline" | "dd" | "gg" (default "gg").
	System string `json:"system,omitempty"`
	// GVT is "sync" | "async" (default "async").
	GVT string `json:"gvt,omitempty"`
	// Affinity is "none" | "constant" | "dynamic" (default "none").
	Affinity string `json:"affinity,omitempty"`
	// EndTime is the virtual end time (required).
	EndTime float64 `json:"end_time"`
	// Seed drives model randomness (0 = 1).
	Seed uint64 `json:"seed,omitempty"`

	// Cores, SMT and NUMANodes shape the simulated machine (0 = the
	// KNL 7230 defaults).
	Cores     int `json:"cores,omitempty"`
	SMT       int `json:"smt,omitempty"`
	NUMANodes int `json:"numa_nodes,omitempty"`

	// GVTFrequency, ZeroCounterThreshold, BatchSize and LPsPerKP are
	// the engine tunables (0 = paper defaults).
	GVTFrequency         int `json:"gvt_frequency,omitempty"`
	ZeroCounterThreshold int `json:"zero_counter_threshold,omitempty"`
	BatchSize            int `json:"batch_size,omitempty"`
	LPsPerKP             int `json:"lps_per_kp,omitempty"`
	// Queue is "splay" | "heap" | "calendar" (default "splay").
	Queue string `json:"queue,omitempty"`
	// StateSaving is "copy" | "reverse" (default "copy").
	StateSaving string `json:"state_saving,omitempty"`
	// LazyCancellation and OptimismWindow tune Time Warp optimism.
	LazyCancellation bool    `json:"lazy_cancellation,omitempty"`
	OptimismWindow   float64 `json:"optimism_window,omitempty"`

	// TimeoutSeconds bounds the job's real-time execution; 0 uses the
	// server's default deadline.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// NoCache bypasses the result cache for this submission (the run
	// still populates it).
	NoCache bool `json:"no_cache,omitempty"`
}

// Config converts the spec to a validated ggpdes.Config.
func (s JobSpec) Config() (ggpdes.Config, error) {
	cfg := ggpdes.Config{
		Threads:              s.Threads,
		EndTime:              s.EndTime,
		Seed:                 s.Seed,
		Machine:              ggpdes.Machine{Cores: s.Cores, SMTWidth: s.SMT, NUMANodes: s.NUMANodes},
		GVTFrequency:         s.GVTFrequency,
		ZeroCounterThreshold: s.ZeroCounterThreshold,
		BatchSize:            s.BatchSize,
		LPsPerKP:             s.LPsPerKP,
		LazyCancellation:     s.LazyCancellation,
		OptimismWindow:       s.OptimismWindow,
	}
	switch strings.ToLower(s.Model) {
	case "phold":
		cfg.Model = ggpdes.PHOLD{
			LPsPerThread: s.LPsPerThread,
			Imbalance:    s.Imbalance,
			NonLinear:    s.NonLinear,
		}
	case "epidemics":
		cfg.Model = ggpdes.Epidemics{
			LPsPerThread:     s.LPsPerThread,
			LockdownGroups:   s.Lockdown,
			ContactRate:      s.ContactRate,
			TransmissionProb: s.TransmissionProb,
		}
	case "traffic":
		cfg.Model = ggpdes.Traffic{
			LPsPerThread:      s.LPsPerThread,
			DensityGradient:   s.Gradient,
			CenterStartEvents: s.CenterStartEvents,
		}
	case "":
		return cfg, errors.New("serve: model is required")
	default:
		return cfg, fmt.Errorf("serve: unknown model %q (want phold | epidemics | traffic)", s.Model)
	}

	var err error
	if cfg.System, err = parseOr(s.System, "gg", ggpdes.ParseSystem); err != nil {
		return cfg, err
	}
	if cfg.GVT, err = parseOr(s.GVT, "async", ggpdes.ParseGVT); err != nil {
		return cfg, err
	}
	if cfg.Affinity, err = parseOr(s.Affinity, "none", ggpdes.ParseAffinity); err != nil {
		return cfg, err
	}
	if cfg.Queue, err = parseOr(s.Queue, "splay", ggpdes.ParseQueue); err != nil {
		return cfg, err
	}
	if cfg.StateSaving, err = parseOr(s.StateSaving, "copy", ggpdes.ParseStateSaving); err != nil {
		return cfg, err
	}
	if s.TimeoutSeconds < 0 {
		return cfg, errors.New("serve: timeout_seconds must be non-negative")
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func parseOr[T any](s, def string, parse func(string) (T, error)) (T, error) {
	if s == "" {
		s = def
	}
	return parse(s)
}
