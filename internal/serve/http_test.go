package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	m := New(opts)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		drain(t, m)
	})
	return m, srv
}

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) (*http.Response, Status) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// The happy path over the wire: submit → 202, poll → done, result →
// 200 with payload, resubmit → 200 cache hit.
func TestHTTPSubmitPollResult(t *testing.T) {
	_, srv := startServer(t, Options{Workers: 2, QueueDepth: 4})

	resp, st := postJob(t, srv, quickSpec(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
		t.Fatalf("submit body: %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	var polled Status
	for {
		if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID, &polled); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if polled.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", polled.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if polled.State != StateDone {
		t.Fatalf("job finished %s (%s)", polled.State, polled.Error)
	}

	var result struct {
		Status
		Results struct {
			CommittedEvents uint64
		} `json:"results"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/result", &result); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if result.Results.CommittedEvents == 0 {
		t.Fatal("result payload has zero committed events")
	}

	resp2, st2 := postJob(t, srv, quickSpec(1))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit submit status %d, want 200", resp2.StatusCode)
	}
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("cache-hit body: %+v", st2)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := startServer(t, Options{Workers: 1})

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// A revision-1 flat spec is an unknown-field error now — the config
	// lives under "config".
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"model":"phold","threads":2,"end_time":10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("revision-1 spec: status %d, want 400", resp.StatusCode)
	}

	invalid := quickSpec(1)
	invalid.Config.EndTime = 0
	if resp, _ := postJob(t, srv, invalid); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400", resp.StatusCode)
	}

	for _, url := range []string{"/v1/jobs/job-nope", "/v1/jobs/job-nope/result"} {
		if code := getJSON(t, srv.URL+url, nil); code != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", url, code)
		}
	}
}

// Past the admission bound the API answers 429 with a Retry-After hint
// rather than hanging the client.
func TestHTTPQueueFull429(t *testing.T) {
	m, srv := startServer(t, Options{Workers: 1, QueueDepth: 1})

	_, running := postJob(t, srv, longSpec())
	waitRunning(t, m, running.ID)
	queuedSpec := longSpec()
	queuedSpec.Config.Seed = 2
	_, queued := postJob(t, srv, queuedSpec)

	overflow := longSpec()
	overflow.Config.Seed = 3
	resp, _ := postJob(t, srv, overflow)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
		}
	}
	waitState(t, m, running.ID, StateCancelled)
	waitState(t, m, queued.ID, StateCancelled)

	// A cancelled job's result endpoint reports the conflict.
	if code := getJSON(t, srv.URL+"/v1/jobs/"+running.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("cancelled result status %d, want 409", code)
	}
}

func TestHTTPHealthzAndStats(t *testing.T) {
	m, srv := startServer(t, Options{Workers: 2, QueueDepth: 4})

	var health healthBody
	if code := getJSON(t, srv.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Workers != 2 || health.QueueDepth != 4 {
		t.Fatalf("healthz body: %+v", health)
	}

	_, st := postJob(t, srv, quickSpec(1))
	waitState(t, m, st.ID, StateDone)

	var stats statsBody
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Counters["serve.jobs_completed"] != 1 {
		t.Fatalf("stats counters: %v", stats.Counters)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serve.jobs_completed") {
		t.Fatal("text stats missing serve.jobs_completed")
	}
}

// After Drain begins, submissions get 503 and healthz flips to
// draining so load balancers stop routing here.
func TestHTTPDraining503(t *testing.T) {
	m := New(Options{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	drain(t, m)
	resp, _ := postJob(t, srv, quickSpec(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d, want 503", resp.StatusCode)
	}
	var health healthBody
	if code := getJSON(t, srv.URL+"/v1/healthz", &health); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", code)
	}
	if health.Status != "draining" {
		t.Fatalf("draining healthz body: %+v", health)
	}
}

// The result endpoint reports 202 for a job still in flight.
func TestHTTPResultInFlight(t *testing.T) {
	m, srv := startServer(t, Options{Workers: 1, QueueDepth: 1})

	_, st := postJob(t, srv, longSpec())
	waitRunning(t, m, st.ID)
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusAccepted {
		t.Fatalf("in-flight result status %d, want 202", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, m, st.ID, StateCancelled)
}
