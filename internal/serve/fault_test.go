package serve

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"ggpdes"
	"ggpdes/internal/checkpoint"
)

// chaosSpec is a checkpointed job long enough to cross several GVT
// round boundaries, so a crashed attempt has snapshots to resume from.
func chaosSpec(seed uint64) JobSpec {
	s := quickSpec(seed)
	s.Config.EndTime = 40
	s.Config.GVTFrequency = 10
	return s
}

// The acceptance bar for fault tolerance: with crash injection on
// every eligible attempt, all jobs still complete — retried from their
// latest checkpoint — and the served results are identical to an
// uninterrupted run of the same config. Run under -race via `make
// test-race`.
func TestChaosCrashRetryCompletes(t *testing.T) {
	const jobs = 6
	m := New(Options{
		Workers:         4,
		QueueDepth:      2 * jobs,
		MaxAttempts:     3,
		RetryBackoff:    time.Millisecond,
		CheckpointEvery: 2,
		CheckpointRoot:  t.TempDir(),
		CrashRate:       1, // every non-final attempt is crashed
		ChaosSeed:       7,
	})
	defer drain(t, m)

	ids := make([]string, jobs)
	for i := range ids {
		st, err := m.Submit(chaosSpec(uint64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	sawRetry, sawResume := false, false
	for _, id := range ids {
		st := waitState(t, m, id, StateDone)
		if st.Attempts > 1 {
			sawRetry = true
			if st.LastError == "" {
				t.Errorf("job %s retried with empty last_error", id)
			}
		}
		if st.ResumedFrom != "" {
			sawResume = true
		}
	}
	if !sawRetry {
		t.Fatal("no job needed a retry despite 100% crash injection")
	}
	if !sawResume {
		t.Fatal("no retry resumed from a checkpoint")
	}

	c := m.Registry().Counters()
	if c["serve.jobs_completed"] != jobs {
		t.Fatalf("jobs_completed = %d, want %d", c["serve.jobs_completed"], jobs)
	}
	if c["serve.injected_crashes"] == 0 || c["serve.retries"] == 0 || c["serve.resumes"] == 0 {
		t.Fatalf("chaos counters not exercised: crashes=%d retries=%d resumes=%d",
			c["serve.injected_crashes"], c["serve.retries"], c["serve.resumes"])
	}

	// Correctness, not just completion: a crashed-and-resumed job's
	// result must equal a clean in-process run of the same config.
	served, _, ok := m.Result(ids[0])
	if !ok || served == nil {
		t.Fatal("no result for job 0")
	}
	cfg := chaosSpec(1).Config
	cfg.Checkpoint = &ggpdes.CheckpointOptions{Every: 2} // same trajectory, no persistence
	clean, err := ggpdes.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if served.CommittedEvents != clean.CommittedEvents || served.FinalGVT != clean.FinalGVT {
		t.Fatalf("served result diverged from clean run: committed %d vs %d, GVT %v vs %v",
			served.CommittedEvents, clean.CommittedEvents, served.FinalGVT, clean.FinalGVT)
	}
}

// A job that publishes no GVT rounds trips the stall watchdog on every
// attempt and fails once the retry budget is spent.
func TestStallWatchdogKillsAndRetries(t *testing.T) {
	m := New(Options{
		Workers:      1,
		QueueDepth:   1,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		StallTimeout: 150 * time.Millisecond,
	})
	defer drain(t, m)

	spec := longSpec()
	// A GVT round every 2^30 iterations: the run makes event progress
	// but never publishes GVT, which is exactly what the watchdog is
	// for.
	spec.Config.GVTFrequency = 1 << 30
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, st.ID, StateFailed)
	if !errors.Is(final.failCause, ErrStalled) {
		t.Fatalf("fail cause %v, want ErrStalled", final.failCause)
	}
	if final.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", final.Attempts)
	}
	c := m.Registry().Counters()
	if c["serve.stalls_detected"] != 2 || c["serve.retries"] != 1 {
		t.Fatalf("stalls=%d retries=%d, want 2/1", c["serve.stalls_detected"], c["serve.retries"])
	}
}

// The typed error sentinels map to documented HTTP statuses.
func TestErrorStatusMapping(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("outer: %w", err) }
	for _, tc := range []struct {
		name string
		code int
		got  int
	}{
		{"submit invalid config", http.StatusBadRequest, submitStatus(wrap(ggpdes.ErrInvalidConfig))},
		{"submit queue full", http.StatusTooManyRequests, submitStatus(ErrQueueFull)},
		{"submit draining", http.StatusServiceUnavailable, submitStatus(ErrDraining)},
		{"submit unclassified", http.StatusBadRequest, submitStatus(errors.New("other"))},
		{"result deadline", http.StatusGatewayTimeout, failureStatus(wrap(ggpdes.ErrDeadline))},
		{"result corrupt checkpoint", http.StatusGone, failureStatus(wrap(ggpdes.ErrCheckpointCorrupt))},
		{"result invalid config", http.StatusBadRequest, failureStatus(wrap(ggpdes.ErrInvalidConfig))},
		{"result cancelled", http.StatusConflict, failureStatus(wrap(ggpdes.ErrCancelled))},
		{"result unclassified", http.StatusConflict, failureStatus(errors.New("other"))},
	} {
		if tc.got != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, tc.got, tc.code)
		}
	}
}

// End to end over the wire: a deadline failure answers 504 on the
// result endpoint, and /v1/version reports the contract.
func TestHTTPDeadline504AndVersion(t *testing.T) {
	m, srv := startServer(t, Options{Workers: 1, QueueDepth: 1})

	spec := longSpec()
	spec.TimeoutSeconds = 0.2
	_, st := postJob(t, srv, spec)
	waitState(t, m, st.ID, StateFailed)
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusGatewayTimeout {
		t.Fatalf("deadline result status %d, want 504", code)
	}

	var v struct {
		API              string `json:"api"`
		APIRevision      int    `json:"api_revision"`
		CheckpointFormat int    `json:"checkpoint_format"`
	}
	if code := getJSON(t, srv.URL+"/v1/version", &v); code != http.StatusOK {
		t.Fatalf("version status %d", code)
	}
	if v.API != "v1" || v.APIRevision != apiRevision || v.CheckpointFormat != checkpoint.Version {
		t.Fatalf("version body: %+v", v)
	}
}

// Backoff is deterministic in (key, attempt) and stays inside the
// jittered exponential envelope.
func TestBackoffDeterministicBounded(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		d := backoff(base, "sha256:abc", attempt)
		if d != backoff(base, "sha256:abc", attempt) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		exp := base << uint(attempt-1)
		if exp > 32*base {
			exp = 32 * base
		}
		if d < exp/2 || d > 3*exp/2 {
			t.Fatalf("attempt %d: backoff %s outside [%s, %s]", attempt, d, exp/2, 3*exp/2)
		}
	}
	if backoff(base, "sha256:abc", 1) == backoff(base, "sha256:def", 1) {
		t.Fatal("different keys produced identical jitter")
	}
}
