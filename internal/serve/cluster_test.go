package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ggpdes/internal/serve/client"
	"ggpdes/internal/serve/cluster"
	"ggpdes/internal/telemetry"
)

// fleet is an in-process cluster: one Manager + HTTP server per
// member, real TCP between them, one shared checkpoint root.
type fleet struct {
	addrs   []string
	mgrs    []*Manager
	regs    []*telemetry.Registry
	servers []*http.Server
	cancels []context.CancelFunc
	clients []*client.Client
	root    string
	killed  []bool
}

// startFleet boots n replicas. Listeners are bound before any manager
// is built so every member knows the full address list up front (the
// same order ggserved's -peers flag establishes).
func startFleet(t *testing.T, n int, mutate func(i int, o *Options)) *fleet {
	t.Helper()
	f := &fleet{root: t.TempDir(), killed: make([]bool, n)}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		f.addrs = append(f.addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, a := range f.addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		reg := telemetry.NewRegistry()
		clu := cluster.New(cluster.Options{Self: f.addrs[i], Peers: peers, Registry: reg})
		ctx, cancel := context.WithCancel(context.Background())
		opts := Options{
			Workers:         2,
			QueueDepth:      32,
			CheckpointRoot:  f.root,
			CheckpointEvery: 2,
			Registry:        reg,
			Cluster:         clu,
		}
		if mutate != nil {
			mutate(i, &opts)
		}
		m := NewContext(ctx, opts)
		srv := &http.Server{Handler: m.Handler()}
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(srv, listeners[i])
		f.mgrs = append(f.mgrs, m)
		f.regs = append(f.regs, reg)
		f.servers = append(f.servers, srv)
		f.cancels = append(f.cancels, cancel)
		f.clients = append(f.clients, client.New("http://"+f.addrs[i], nil))
	}
	t.Cleanup(func() {
		for i := range f.mgrs {
			if f.killed[i] {
				continue
			}
			_ = f.servers[i].Close()
			drain(t, f.mgrs[i])
			f.cancels[i]()
		}
	})
	return f
}

// kill simulates a replica dying: active connections are severed and
// its in-flight jobs hard-stopped, exactly what SIGKILL does to a
// real ggserved.
func (f *fleet) kill(i int) {
	f.killed[i] = true
	_ = f.servers[i].Close()
	f.cancels[i]()
}

// simulations sums serve.simulations across the fleet — the number of
// times any engine actually ran.
func (f *fleet) simulations() uint64 {
	var total uint64
	for _, reg := range f.regs {
		total += reg.Counters()[MetricSimulations]
	}
	return total
}

// counter sums one counter across the fleet.
func (f *fleet) counter(name string) uint64 {
	var total uint64
	for _, reg := range f.regs {
		total += reg.Counters()[name]
	}
	return total
}

// jobKey computes the cache key a spec will be routed by, exactly as
// Submit does.
func jobKey(t *testing.T, m *Manager, spec JobSpec) string {
	t.Helper()
	cfg, err := spec.config(m.opts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := cfg.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// ownerIndex resolves which fleet member owns a key on the ring.
func (f *fleet) ownerIndex(key string) int {
	owner, self := f.mgrs[0].clu.Owner(key)
	addr := f.addrs[0]
	if !self {
		addr = owner.Addr()
	}
	for i, a := range f.addrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// pickSeed finds a seed whose config is owned by the given member.
func (f *fleet) pickSeed(t *testing.T, base uint64, wantOwner int, make func(seed uint64) JobSpec) (JobSpec, string) {
	t.Helper()
	for seed := base; seed < base+1000; seed++ {
		spec := make(seed)
		key := jobKey(t, f.mgrs[0], spec)
		if f.ownerIndex(key) == wantOwner {
			return spec, key
		}
	}
	t.Fatalf("no seed in [%d,%d) hashes to member %d", base, base+1000, wantOwner)
	return JobSpec{}, ""
}

// A config submitted to every replica simulates exactly once
// fleet-wide: the first submission runs on the key's owner (delegated
// when submitted elsewhere), later ones are answered from the owner's
// cache over the fill protocol.
func TestClusterFleetDedup(t *testing.T) {
	f := startFleet(t, 3, nil)

	// Owned by member 1, submitted to member 0 — the first submit must
	// delegate, proving routing, not just caching.
	spec, key := f.pickSeed(t, 4100, 1, quickSpec)

	st, err := f.mgrs[0].Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	first := waitState(t, f.mgrs[0], st.ID, StateDone)
	if first.Source != SourceRemote || !first.Cached {
		t.Fatalf("delegated job has source %q cached %t, want remote/true", first.Source, first.Cached)
	}
	if got := f.simulations(); got != 1 {
		t.Fatalf("first submit ran %d fleet simulations, want 1", got)
	}
	if f.regs[0].Counters()[cluster.MetricDelegated] != 1 {
		t.Fatalf("member 0 delegated %d jobs, want 1", f.regs[0].Counters()[cluster.MetricDelegated])
	}
	if f.regs[1].Counters()[cluster.MetricRemoteJobs] != 1 {
		t.Fatalf("owner accepted %d remote jobs, want 1", f.regs[1].Counters()[cluster.MetricRemoteJobs])
	}

	// Same config on every member: no further simulations anywhere.
	for i, m := range f.mgrs {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		final := waitState(t, m, st.ID, StateDone)
		if !final.Cached {
			t.Fatalf("member %d resubmit not deduped: %+v", i, final)
		}
	}
	if got := f.simulations(); got != 1 {
		t.Fatalf("fleet ran %d simulations for one config, want 1", got)
	}
	if fills := f.counter(cluster.MetricFills); fills == 0 {
		t.Fatal("no peer fills recorded for the non-owner resubmits")
	}

	// The results delivered everywhere are byte-identical to the
	// owner's: content addressing would be unsound otherwise.
	ownerRes, _, ok := f.mgrs[1].Result(mustJob(t, f.mgrs[1], key))
	if !ok || ownerRes == nil {
		t.Fatal("owner lost its own result")
	}
	remoteRes, _, _ := f.mgrs[0].Result(st.ID)
	want, err := json.Marshal(ownerRes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(remoteRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("delegated results differ from the owner's:\n got %s\nwant %s", got, want)
	}
}

// mustJob finds the owner's job for a key (the delegated run it
// accepted over /v2/cluster/jobs).
func mustJob(t *testing.T, m *Manager, key string) string {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, j := range m.jobs {
		if j.key == key {
			return id
		}
	}
	t.Fatal("no job with the delegated key on the owner")
	return ""
}

// A sweep with duplicated members streams one SSE event per member in
// completion order and simulates only the unique configs, fleet-wide.
func TestClusterSweepSSE(t *testing.T) {
	f := startFleet(t, 3, nil)

	seeds := []uint64{4211, 4212, 4213, 4214, 4211, 4212, 4213, 4214}
	spec := client.SweepSpec{
		Defaults: client.JobSpec{Config: quickSpec(0).Config},
		Seeds:    seeds,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := f.clients[0].Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != len(seeds) || st.ID == "" {
		t.Fatalf("sweep accepted as %+v", st)
	}

	events := 0
	final, err := f.clients[0].SweepEvents(ctx, st.ID, func(ev client.SweepEvent) error {
		if ev.Seq != events {
			t.Fatalf("event %d arrived with seq %d", events, ev.Seq)
		}
		if ev.Job.State != "done" {
			t.Fatalf("member %d finished %s: %+v", ev.Index, ev.Job.State, ev.Job)
		}
		if ev.Results == nil || ev.Results.CommittedEvents == 0 {
			t.Fatalf("member %d event carries no results", ev.Index)
		}
		events++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if events != len(seeds) {
		t.Fatalf("streamed %d events, want %d", events, len(seeds))
	}
	if final.State != "done" || final.Done != len(seeds) {
		t.Fatalf("final sweep status %+v", final)
	}
	if got := f.simulations(); got != 4 {
		t.Fatalf("sweep of %d members (4 unique) ran %d fleet simulations, want 4", len(seeds), got)
	}

	// A late subscriber replays the full event log.
	replayed := 0
	if _, err := f.clients[0].SweepEvents(ctx, st.ID, func(ev client.SweepEvent) error {
		replayed++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != len(seeds) {
		t.Fatalf("late subscriber replayed %d events, want %d", replayed, len(seeds))
	}
}

// Killing the replica that owns a running job lets the submitting
// replica finish it from the shared checkpoint directory, with
// results byte-identical to an undisturbed run.
func TestClusterFailoverResume(t *testing.T) {
	f := startFleet(t, 3, nil)

	longEnough := func(seed uint64) JobSpec {
		spec := quickSpec(seed)
		spec.Config.EndTime = 20000 // ~250ms of simulation: room to die mid-run
		spec.Config.GVTFrequency = 10
		// Checkpoint early but not constantly — every-round snapshots
		// turn the run into disk I/O.
		spec.CheckpointEvery = 25
		return spec
	}
	// Owned by member 2, submitted to member 0.
	spec, key := f.pickSeed(t, 4300, 2, longEnough)

	st, err := f.mgrs[0].Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the owner only after it has checkpointed, so the survivor
	// has state to resume from rather than restarting.
	dir := filepath.Join(f.root, "key-"+pathSafe(key))
	deadline := time.Now().Add(30 * time.Second)
	for {
		if names, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.json")); len(names) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner wrote no checkpoint under %s", dir)
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.kill(2)

	final := waitState(t, f.mgrs[0], st.ID, StateDone)
	if final.ResumedFrom == "" {
		t.Fatalf("failover run did not resume from the shared checkpoint: %+v", final)
	}
	if f.regs[0].Counters()[cluster.MetricFailovers] == 0 {
		t.Fatal("cluster.failovers not incremented on the surviving submitter")
	}
	if final.Source != "" || final.Cached {
		t.Fatalf("failover run should count as a local simulation, got source %q", final.Source)
	}

	// Byte-identical to a clean, unclustered run of the same config.
	res, _, _ := f.mgrs[0].Result(st.ID)
	clean := New(Options{Workers: 1})
	defer drain(t, clean)
	cst, err := clean.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, clean, cst.ID, StateDone)
	cleanRes, _, _ := clean.Result(cst.ID)

	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(cleanRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("failover results differ from a clean run:\n got %s\nwant %s", got, want)
	}
}

// K identical concurrent submissions to one replica coalesce onto a
// single in-flight run.
func TestInflightDedup(t *testing.T) {
	m := New(Options{Workers: 2, QueueDepth: 8})
	defer drain(t, m)

	spec := quickSpec(4400)
	spec.Config.EndTime = 20000 // slow enough for followers to arrive mid-run

	leader, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	var followers []Status
	for i := 0; i < 3; i++ {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		followers = append(followers, st)
	}

	lead := waitState(t, m, leader.ID, StateDone)
	leadRes, _, _ := m.Result(leader.ID)
	for _, st := range followers {
		final := waitState(t, m, st.ID, StateDone)
		if !final.Cached || final.Source != SourceInflight {
			t.Fatalf("follower %s source %q cached %t, want inflight/true", st.ID, final.Source, final.Cached)
		}
		res, _, _ := m.Result(st.ID)
		if res != leadRes {
			t.Fatal("follower got a different *Results than the leader")
		}
	}
	c := m.Registry().Counters()
	if c[MetricSimulations] != 1 {
		t.Fatalf("%d simulations for 4 identical submissions, want 1", c[MetricSimulations])
	}
	if c[MetricDedupInflight] != 3 {
		t.Fatalf("dedup_inflight = %d, want 3", c[MetricDedupInflight])
	}
	if lead.Cached {
		t.Fatalf("leader reported cached: %+v", lead)
	}
}

// Checkpoint directories for clustered cacheable jobs are keyed and
// shared; single-node jobs keep their per-job directories and still
// clean up after success.
func TestClusterKeyedCheckpointDirs(t *testing.T) {
	f := startFleet(t, 1, nil)
	spec := quickSpec(4500)
	spec.CheckpointEvery = 2
	key := jobKey(t, f.mgrs[0], spec)

	st, err := f.mgrs[0].Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, f.mgrs[0], st.ID, StateDone)

	dir := filepath.Join(f.root, "key-"+pathSafe(key))
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("keyed checkpoint dir not retained after success: %v", err)
	}
}

// Drain accounting for delegations: the remote conversation runs on
// its own goroutine so the worker can return to the queue (see run),
// but that goroutine is wg-tracked — Drain must not return while a
// delegated job is still in flight. If the goroutine ever escaped the
// WaitGroup, Drain would return with the job stuck Running and the
// settle would race process exit.
func TestDrainWaitsForDelegation(t *testing.T) {
	f := startFleet(t, 2, nil)

	longEnough := func(seed uint64) JobSpec {
		spec := quickSpec(seed)
		spec.Config.EndTime = 20000 // ~250ms of simulation: room to drain mid-run
		return spec
	}
	// Owned by member 1, submitted to member 0: member 0 delegates.
	spec, _ := f.pickSeed(t, 4900, 1, longEnough)

	st, err := f.mgrs[0].Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Only once the job is Running has run() handed it to the
	// delegation goroutine — the window Drain has to account for.
	waitRunning(t, f.mgrs[0], st.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := f.mgrs[0].Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	final, ok := f.mgrs[0].Get(st.ID)
	if !ok {
		t.Fatal("job disappeared across Drain")
	}
	if final.State != StateDone {
		t.Fatalf("Drain returned with the delegated job still %s: the delegation goroutine escaped drain accounting", final.State)
	}
	if final.Source != SourceRemote || !final.Cached {
		t.Fatalf("delegated job settled with source %q cached %t, want remote/true", final.Source, final.Cached)
	}
}

// Two single-worker replicas submitting each other's keys must not
// deadlock. A delegation blocks for the whole remote run, so if it
// held the submitting worker, each replica's only worker would sit in
// RunJob against its peer while the jobs they delegated to each other
// sat queued behind them forever. Handing the wait to a goroutine
// keeps both workers free: each replica runs the job the other
// delegated to it, and both submissions settle as remote results.
func TestMutualDelegationNoDeadlock(t *testing.T) {
	f := startFleet(t, 2, func(i int, o *Options) { o.Workers = 1 })

	spec0, _ := f.pickSeed(t, 4700, 1, quickSpec) // submitted on 0, owned by 1
	spec1, _ := f.pickSeed(t, 4800, 0, quickSpec) // submitted on 1, owned by 0

	st0, err := f.mgrs[0].Submit(spec0)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := f.mgrs[1].Submit(spec1)
	if err != nil {
		t.Fatal(err)
	}
	final0 := waitState(t, f.mgrs[0], st0.ID, StateDone)
	final1 := waitState(t, f.mgrs[1], st1.ID, StateDone)
	for i, final := range []Status{final0, final1} {
		if !final.Cached || final.Source != SourceRemote {
			t.Fatalf("member %d job has cached=%t source=%q, want a delegated remote run",
				i, final.Cached, final.Source)
		}
	}
	if got := f.counter(cluster.MetricDelegated); got != 2 {
		t.Fatalf("fleet recorded %d delegations, want 2", got)
	}
	if got := f.counter(cluster.MetricRemoteJobs); got != 2 {
		t.Fatalf("fleet accepted %d remote jobs, want 2", got)
	}
	if got := f.simulations(); got != 2 {
		t.Fatalf("fleet ran %d simulations, want 2", got)
	}
}
