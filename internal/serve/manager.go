package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ggpdes"
	"ggpdes/internal/chaos"
	"ggpdes/internal/checkpoint"
	"ggpdes/internal/dist"
	"ggpdes/internal/rng"
	"ggpdes/internal/serve/cluster"
	"ggpdes/internal/telemetry"
)

// State is a job's position in its lifecycle.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning State = "running"
	// StateDone: finished successfully; the result is available.
	StateDone State = "done"
	// StateFailed: the run returned an error (including deadline
	// expiry) and exhausted its retry budget.
	StateFailed State = "failed"
	// StateCancelled: cancelled by the client before completion.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Errors returned by Submit. The HTTP layer maps ErrQueueFull to 429
// with Retry-After and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrDraining  = errors.New("serve: server is draining")
)

// ErrStalled marks an attempt killed by the GVT-stall watchdog: no GVT
// progress for Options.StallTimeout of real time. Stalled attempts are
// retried like injected crashes.
var ErrStalled = errors.New("serve: GVT stall watchdog killed the attempt")

// Options configures a Manager. The zero value is usable: workers
// sized to GOMAXPROCS, a 64-deep admission queue, a 256-entry cache,
// no default deadline, no retries, no chaos.
type Options struct {
	// Workers is the number of concurrent simulation runs (0 =
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running; a submit
	// past the bound is rejected with ErrQueueFull (0 = 64).
	QueueDepth int
	// CacheEntries bounds the result cache (0 = 256, negative =
	// disabled).
	CacheEntries int
	// DefaultTimeout bounds each job's real-time execution — across
	// all its attempts — unless the spec sets its own; 0 means no
	// default deadline.
	DefaultTimeout time.Duration
	// RetainJobs bounds how many terminal jobs stay queryable; the
	// oldest are forgotten past the bound (0 = 4096, negative =
	// unlimited).
	RetainJobs int
	// Registry receives the serve.* metrics (nil = a fresh registry).
	// Engine metrics from completed jobs are folded into the same
	// registry, so /metrics exposes both planes.
	Registry *telemetry.Registry
	// SeriesLimit bounds each job's live per-GVT-round series ring
	// (0 = telemetry.DefaultSeriesLimit, negative = series disabled).
	SeriesLimit int

	// MaxAttempts is the default retry budget per job: attempts killed
	// by injected crashes or the stall watchdog are retried — resuming
	// from the job's latest checkpoint — with exponential backoff
	// until the budget is spent (0 or 1 = no retries).
	MaxAttempts int
	// RetryBackoff is the base delay before the first retry, doubled
	// per retry up to 32x with deterministic ±50% jitter (0 = 25ms).
	RetryBackoff time.Duration
	// CheckpointEvery is the default checkpoint cadence, in GVT
	// rounds, applied to jobs whose config doesn't set its own (0 =
	// jobs run unsegmented and retries restart from scratch).
	CheckpointEvery int
	// CheckpointRoot is the directory holding per-job checkpoint
	// subdirectories ("" = a temp directory created at New and removed
	// at Drain).
	CheckpointRoot string
	// StallTimeout kills an attempt whose GVT has not advanced for
	// this much real time, counting it against the retry budget (0 =
	// watchdog disabled).
	StallTimeout time.Duration

	// Cluster is this replica's view of the serving fleet: consistent-
	// hash routing on the cache key, peer cache fill, and delegation.
	// nil runs single-node. When set, CheckpointRoot should point at a
	// directory shared by every replica so any of them can resume
	// another's dead job.
	Cluster *cluster.Cluster

	// CrashRate injects a simulated worker crash — the attempt's
	// context is cancelled at a planned GVT fraction — with this
	// probability per attempt, deterministic in (ChaosSeed, job key,
	// attempt). The final budgeted attempt is never crashed, so a
	// sufficient MaxAttempts guarantees completion. 0 disables.
	CrashRate float64
	// ChaosSeed seeds the crash plans (0 = 1).
	ChaosSeed uint64
}

// Job is one submitted simulation. All mutable fields are guarded by
// the owning Manager's mutex; handlers read consistent snapshots via
// Status.
type Job struct {
	id          string
	spec        JobSpec
	cfg         ggpdes.Config
	key         string
	cached      bool
	maxAttempts int

	state       State
	err         string
	failCause   error
	attempts    int
	lastErr     string
	resumedFrom string
	result      *ggpdes.Results
	series      *telemetry.Series
	submitted   time.Time
	started     time.Time
	finished    time.Time
	cancel      context.CancelFunc
	done        chan struct{}

	// source says where a non-simulated result came from ("cache",
	// "inflight", "peer", "remote"); empty for local runs.
	source string
	// followers are identical-key jobs coalesced onto this in-flight
	// leader; they settle with the leader's terminal outcome.
	followers []*Job
}

// Status is an immutable snapshot of a job, shaped for JSON.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Key is the config's content-addressed cache key.
	Key string `json:"key"`
	// Cached is true when the result was served from the cache without
	// a run.
	Cached bool `json:"cached,omitempty"`
	// Source qualifies Cached: "cache" (local hit), "inflight"
	// (coalesced onto an identical in-flight job), "peer" (filled from
	// the owning replica's cache), "remote" (delegated to and run by
	// the owning replica); empty for local runs.
	Source string `json:"source,omitempty"`
	Error  string `json:"error,omitempty"`

	// Attempts counts run attempts so far (0 for cache hits).
	Attempts int `json:"attempts,omitempty"`
	// LastError is the most recent attempt failure that was retried.
	LastError string `json:"last_error,omitempty"`
	// ResumedFrom names the checkpoint file the latest attempt resumed
	// from, when it did not start from scratch.
	ResumedFrom string `json:"resumed_from,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
	// QueueSeconds and RunSeconds break down where the job spent its
	// wall-clock time so far.
	QueueSeconds float64 `json:"queue_seconds"`
	RunSeconds   float64 `json:"run_seconds"`

	// failCause carries the terminal error for HTTP status mapping;
	// not serialized.
	failCause error
}

// Manager owns the admission queue, the worker pool, the job table and
// the result cache. Create one with New and shut it down with Drain.
type Manager struct {
	opts    Options
	reg     *telemetry.Registry
	cache   *resultCache
	crashes *chaos.WorkerCrashes
	clu     *cluster.Cluster

	// baseCtx parents every job context: cancelling it (the caller's
	// process-lifetime context) reaches all in-flight runs, so a drain
	// deadline can hard-stop stragglers instead of abandoning them.
	baseCtx context.Context

	ckptRoot string
	ownRoot  bool

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	terminal []string // terminal job IDs, oldest first, for retention
	seq      uint64
	draining bool
	// inflight indexes the leading (actually executing) job per cache
	// key; identical submissions arriving while it runs coalesce onto
	// it as followers instead of simulating again.
	inflight map[string]*Job

	sweeps        map[string]*sweepJob
	sweepTerminal []string // terminal sweep IDs, oldest first

	submitted      *telemetry.Counter
	completed      *telemetry.Counter
	failed         *telemetry.Counter
	cancelled      *telemetry.Counter
	rejected       *telemetry.Counter
	retries        *telemetry.Counter
	injectedCrash  *telemetry.Counter
	stallsDetected *telemetry.Counter
	resumes        *telemetry.Counter
	queueWait      *telemetry.Histogram
	runWall        *telemetry.Histogram
	inFlight       *telemetry.Gauge
	simulations    *telemetry.Counter
	dedupInflight  *telemetry.Counter
}

// New starts a manager and its worker pool with a background base
// context; jobs then only stop via their own deadline or Cancel. Use
// NewContext when the caller has a process-lifetime context that
// should be able to hard-stop in-flight jobs.
func New(opts Options) *Manager {
	return NewContext(context.Background(), opts)
}

// NewContext starts a manager and its worker pool. Every job context
// derives from ctx: cancelling it aborts all in-flight runs at their
// next GVT round.
func NewContext(ctx context.Context, opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 256
	}
	if opts.RetainJobs == 0 {
		opts.RetainJobs = 4096
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &Manager{
		opts:           opts,
		reg:            reg,
		baseCtx:        ctx,
		clu:            opts.Cluster,
		cache:          newResultCache(opts.CacheEntries, reg),
		queue:          make(chan *Job, opts.QueueDepth),
		jobs:           make(map[string]*Job),
		inflight:       make(map[string]*Job),
		sweeps:         make(map[string]*sweepJob),
		submitted:      reg.Counter(MetricJobsSubmitted),
		completed:      reg.Counter(MetricJobsCompleted),
		failed:         reg.Counter(MetricJobsFailed),
		cancelled:      reg.Counter(MetricJobsCancelled),
		rejected:       reg.Counter(MetricJobsRejected),
		retries:        reg.Counter(MetricRetries),
		injectedCrash:  reg.Counter(MetricInjectedCrashes),
		stallsDetected: reg.Counter(MetricStallsDetected),
		resumes:        reg.Counter(MetricResumes),
		queueWait:      reg.Histogram(MetricQueueWaitMS),
		runWall:        reg.Histogram(MetricRunWallMS),
		inFlight:       reg.Gauge(MetricJobsInFlight),
		simulations:    reg.Counter(MetricSimulations),
		dedupInflight:  reg.Counter(MetricDedupInflight),
	}
	if opts.CrashRate > 0 {
		seed := opts.ChaosSeed
		if seed == 0 {
			seed = 1
		}
		m.crashes = chaos.NewWorkerCrashes(seed, opts.CrashRate)
	}
	m.ckptRoot = opts.CheckpointRoot
	if m.ckptRoot == "" {
		// Best-effort: without a root, checkpointed jobs still segment
		// (Dir stays empty) but retries restart from scratch.
		if dir, err := os.MkdirTemp("", "ggpdes-serve-ckpt-"); err == nil {
			m.ckptRoot, m.ownRoot = dir, true
		}
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry exposes the manager's metrics for the HTTP stats endpoint
// and expvar.
func (m *Manager) Registry() *telemetry.Registry { return m.reg }

// Workers reports the worker pool size.
func (m *Manager) Workers() int { return m.opts.Workers }

// QueueDepth reports the admission queue bound.
func (m *Manager) QueueDepth() int { return m.opts.QueueDepth }

// Submit validates the spec and answers it the cheapest way it can:
// from the result cache (job born StateDone, Cached=true), by
// coalescing onto an identical job already in flight (the follower
// settles with the leader's outcome — single-flight dedup, so K
// concurrent identical submissions simulate once), or by admitting it
// to the queue. It fails fast with ErrQueueFull when the queue is at
// bound and ErrDraining after Drain has begun; spec errors wrap
// ggpdes.ErrInvalidConfig.
func (m *Manager) Submit(spec JobSpec) (Status, error) {
	cfg, err := spec.config(m.opts)
	if err != nil {
		return Status{}, err
	}
	key, err := cfg.CacheKey()
	if err != nil {
		return Status{}, err
	}

	j := &Job{
		spec:        spec,
		cfg:         cfg,
		key:         key,
		maxAttempts: spec.maxAttempts(m.opts),
		submitted:   time.Now(),
		done:        make(chan struct{}),
	}

	// Fast path: a cache hit needs no queue slot. The lookup repeats
	// under the lock below, so a completion racing this unlocked miss
	// still dedups.
	if !spec.NoCache {
		if res, ok := m.cache.get(key); ok {
			return m.submitCached(j, res)
		}
	} else {
		// Count the bypass as a miss so hit-rate math stays honest.
		m.cache.misses.Inc()
	}

	j.state = StateQueued
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Status{}, ErrDraining
	}
	if !spec.NoCache {
		// Re-check the cache under the lock: completions publish their
		// result while holding m.mu, so this closes the race between
		// the unlocked miss above and a concurrent completion. peek, not
		// get — the lookup was already counted once.
		if res, ok := m.cache.peek(key); ok {
			m.mu.Unlock()
			return m.submitCached(j, res)
		}
		// Single-flight: an identical job already executing absorbs
		// this one as a follower instead of simulating again.
		if leader, ok := m.inflight[key]; ok && !leader.state.Terminal() {
			leader.followers = append(leader.followers, j)
			m.register(j)
			st := j.status()
			m.mu.Unlock()
			m.submitted.Inc()
			m.dedupInflight.Inc()
			m.inFlight.Set(float64(m.countInFlight()))
			return st, nil
		}
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		m.rejected.Inc()
		return Status{}, ErrQueueFull
	}
	m.register(j)
	if !spec.NoCache {
		m.inflight[key] = j
	}
	st := j.status()
	m.mu.Unlock()
	m.submitted.Inc()
	m.inFlight.Set(float64(m.countInFlight()))
	return st, nil
}

// submitCached finishes a Submit answered from the result cache.
func (m *Manager) submitCached(j *Job, res *ggpdes.Results) (Status, error) {
	j.cached = true
	j.source = SourceCache
	j.result = res
	j.state = StateDone
	j.finished = j.submitted
	// This close precedes publication: j was built by Submit and is not
	// yet registered, so no other code can reach j.done. finish owns
	// the post-publication close; Cancel and finalizeLocked close only
	// behind terminal-state guards.
	//ggvet:allow(pre-publication close: j is unregistered and exclusively owned here; finish is the post-publication owner)
	close(j.done)
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Status{}, ErrDraining
	}
	m.register(j)
	m.mu.Unlock()
	m.submitted.Inc()
	m.completed.Inc()
	return j.status(), nil
}

// register assigns an ID and records the job. Caller holds m.mu.
func (m *Manager) register(j *Job) {
	m.seq++
	j.id = fmt.Sprintf("job-%08x", m.seq)
	m.jobs[j.id] = j
	if j.state.Terminal() {
		m.retainLocked(j.id)
	}
}

// retainLocked appends a terminal job and forgets the oldest past the
// retention bound. Caller holds m.mu.
func (m *Manager) retainLocked(id string) {
	m.terminal = append(m.terminal, id)
	if m.opts.RetainJobs < 0 {
		return
	}
	for len(m.terminal) > m.opts.RetainJobs {
		delete(m.jobs, m.terminal[0])
		m.terminal = m.terminal[1:]
	}
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Result returns the job's results if it finished successfully. The
// returned Results is shared and must not be mutated.
func (m *Manager) Result(id string) (*ggpdes.Results, Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Status{}, false
	}
	return j.result, j.status(), true
}

// Series returns the job's per-GVT-round time series: the live ring
// while the job runs, or the recorded series once it finished. Jobs
// answered from the result cache return the cached run's series. The
// returned slice is a copy and safe to retain; total counts every
// point ever recorded, so total > len(points) means the ring wrapped
// and the oldest rounds were dropped.
func (m *Manager) Series(id string) (pts []telemetry.SeriesPoint, total int, st Status, ok bool) {
	m.mu.Lock()
	j, found := m.jobs[id]
	if !found {
		m.mu.Unlock()
		return nil, 0, Status{}, false
	}
	st = j.status()
	ser := j.series
	res := j.result
	m.mu.Unlock()
	if res != nil && res.Series != nil {
		pts = make([]telemetry.SeriesPoint, len(res.Series))
		copy(pts, res.Series)
		total = len(pts)
		if n := len(pts); n > 0 {
			// Rounds are 1-based and contiguous; the last round number
			// is the true count even when the recording ring wrapped.
			if r := pts[n-1].Round; r > total {
				total = r
			}
		}
		return pts, total, st, true
	}
	return ser.Points(), ser.Total(), st, true
}

// Cancel stops a job: a queued job is marked cancelled immediately and
// skipped by its worker; a running job has its context cancelled,
// which the engine observes within one GVT round. Cancellation covers
// all attempts — a cancelled job is never retried. Terminal jobs are
// left as-is. The returned Status reflects the state after the call.
func (m *Manager) Cancel(id string) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, false
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = "cancelled"
		j.finished = time.Now()
		close(j.done)
		m.retainLocked(j.id)
		m.cancelled.Inc()
		// Duplicates coalesced onto this job share its fate: the leader
		// was the only execution they were waiting on (DESIGN.md §10).
		m.finalizeLocked(j)
	case StateRunning:
		// The worker observes the context and finishes the lifecycle.
		j.cancel()
	}
	return j.status(), true
}

// finalizeLocked drops the job's in-flight index entry and settles
// any coalesced duplicates with its terminal outcome: a done leader
// hands followers its result (Cached, Source "inflight"); a failed or
// cancelled leader fails them identically. Caller holds m.mu; j must
// be terminal.
func (m *Manager) finalizeLocked(j *Job) {
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	followers := j.followers
	j.followers = nil
	for _, f := range followers {
		if f.state.Terminal() {
			// Cancel already settled this follower while it waited on
			// the leader; its outcome and retention entry stand, and
			// its done channel is already closed.
			continue
		}
		f.state = j.state
		f.err = j.err
		f.failCause = j.failCause
		f.finished = time.Now()
		switch j.state {
		case StateDone:
			f.result = j.result
			f.cached = true
			f.source = SourceInflight
			m.completed.Inc()
		case StateCancelled:
			m.cancelled.Inc()
		default:
			m.failed.Inc()
		}
		close(f.done)
		m.retainLocked(f.id)
	}
}

// Wait blocks until the job reaches a terminal state or the context
// expires.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.status(), nil
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Counts reports the number of queued and running jobs.
func (m *Manager) Counts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running
}

func (m *Manager) countInFlight() int {
	q, r := m.Counts()
	return q + r
}

// Drain stops admission (Submit returns ErrDraining), lets already
// admitted jobs finish, and waits for the worker pool to exit or the
// context to expire. It is idempotent; concurrent calls all wait.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	m.mu.Unlock()
	if first {
		// Safe: Submit checks draining under m.mu before sending, so no
		// send can race this close.
		m.mu.Lock()
		close(m.queue)
		m.mu.Unlock()
	}
	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		if m.ownRoot {
			_ = os.RemoveAll(m.ckptRoot)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker pulls admitted jobs until the queue is closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run starts one dequeued job. Peer-owned jobs hand the remote
// conversation to a goroutine and return the worker to the queue;
// everything else simulates on this worker via simulate and settles
// via finish.
func (m *Manager) run(j *Job) {
	m.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	timeout := m.opts.DefaultTimeout
	if j.spec.TimeoutSeconds > 0 {
		timeout = time.Duration(j.spec.TimeoutSeconds * float64(time.Second))
	}
	var jobCtx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		jobCtx, cancel = context.WithTimeout(m.baseCtx, timeout)
	} else {
		jobCtx, cancel = context.WithCancel(m.baseCtx)
	}
	j.cancel = cancel
	if m.opts.SeriesLimit >= 0 {
		// Live per-round series, readable through Series(id) while the
		// job runs and replaced by the recorded copy when it finishes.
		j.series = telemetry.NewSeries(m.opts.SeriesLimit)
	}
	cfg := j.cfg
	m.mu.Unlock()

	// Give the job a checkpoint directory so retries resume. Single-
	// node managers key it by job ID as before. Clustered managers key
	// cacheable jobs by *cache key* under the shared root: the same
	// config checkpoints to the same place whichever replica runs it
	// (writes are atomic and — runs being deterministic — identical),
	// so a requester can resume a dead owner's job where it stopped.
	// Keyed directories are never removed on success for the same
	// reason: a peer may be mid-read. Clustered NoCache jobs get a
	// node-scoped directory so same-numbered job IDs on different
	// replicas cannot collide in the shared root.
	var ckptDir string
	keyed := false
	if cfg.Checkpoint != nil && m.ckptRoot != "" {
		switch {
		case m.clu != nil && !j.spec.NoCache:
			ckptDir = filepath.Join(m.ckptRoot, "key-"+pathSafe(j.key))
			keyed = true
		case m.clu != nil:
			ckptDir = filepath.Join(m.ckptRoot, "node-"+pathSafe(m.clu.Self()), j.id)
		default:
			ckptDir = filepath.Join(m.ckptRoot, j.id)
		}
		cfg.Checkpoint = &ggpdes.CheckpointOptions{Every: cfg.Checkpoint.Every, Dir: ckptDir}
	}

	m.queueWait.Observe(float64(j.started.Sub(j.submitted).Milliseconds()))
	m.inFlight.Set(float64(m.countInFlight()))

	// Clustered routing: if a peer owns this key, fill from its cache,
	// else delegate the run to it. A delegation blocks for as long as
	// the remote simulation runs, and a worker parked on a peer is
	// capacity the admission queue has lost: were every worker on two
	// replicas parked like that — each side saturating the other with
	// mutually-owned keys — the delegated jobs would sit queued on
	// both with nobody left to run them. So the remote conversation
	// (fill, delegate, and the failover/spill fallback) gets its own
	// goroutine and this worker goes back to the queue, keeping it
	// free for local jobs — including the ones peers delegated here.
	if m.clu != nil && !j.spec.NoCache && !j.spec.NoForward {
		if owner, self := m.clu.Owner(j.key); !self {
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				defer cancel()
				res, source, err, settled := m.runRemote(jobCtx, j, owner)
				if !settled {
					// The owner died mid-job (failover: resume its shared
					// checkpoints) or pushed back (spill): run here.
					res, err = m.simulate(jobCtx, j, cfg, ckptDir, keyed)
					source = ""
				}
				m.finish(j, res, source, err, timeout, ckptDir, keyed)
			}()
			return
		}
	}
	defer cancel()
	res, err := m.simulate(jobCtx, j, cfg, ckptDir, keyed)
	m.finish(j, res, "", err, timeout, ckptDir, keyed)
}

// simulate executes the job locally: a bounded sequence of attempts,
// each resuming from the job's latest checkpoint, with exponential
// backoff between them. Only faults the harness injected — simulated
// worker crashes and watchdog-detected GVT stalls — are retried;
// client cancellation, the job deadline, and config errors are final.
func (m *Manager) simulate(jobCtx context.Context, j *Job, cfg ggpdes.Config, ckptDir string, keyed bool) (*ggpdes.Results, error) {
	// One serve.simulations tick per job the engine actually ran
	// locally — summed across replicas this is the fleet-wide
	// execution count the dedup benchmarks assert on.
	m.simulations.Inc()
	var res *ggpdes.Results
	var err error
	for attempt := 1; ; attempt++ {
		m.mu.Lock()
		j.attempts = attempt
		m.mu.Unlock()
		res, err = m.attempt(jobCtx, j, cfg, ckptDir, attempt, keyed)
		if err == nil || attempt >= j.maxAttempts || !retryable(err) {
			break
		}
		m.retries.Inc()
		m.mu.Lock()
		j.lastErr = err.Error()
		m.mu.Unlock()
		if !sleepCtx(jobCtx, backoff(m.opts.RetryBackoff, j.key, attempt)) {
			// The job deadline or a client cancel ended the backoff;
			// finish classifies it like any other attempt outcome.
			err = fmt.Errorf("retry backoff interrupted: %w", context.Cause(jobCtx))
			break
		}
	}
	return res, err
}

// finish settles a started job: classify the outcome, publish the
// result, settle coalesced followers, and emit the terminal metrics.
// It runs on the worker for local jobs and on the delegation
// goroutine for peer-owned ones.
func (m *Manager) finish(j *Job, res *ggpdes.Results, source string, err error, timeout time.Duration, ckptDir string, keyed bool) {
	m.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.source = source
		j.cached = source != ""
		m.completed.Inc()
		m.cache.put(j.key, res)
		// Fold the run's engine metrics into the serving registry so
		// /metrics covers both planes. Cache hits never reach run(),
		// and peer-produced results carry no Metrics over the wire
		// (the field is json:"-", so it arrives zero and imports
		// nothing), so each simulation's metrics import exactly once
		// fleet-wide — on the replica that ran it.
		m.reg.Import(res.Metrics)
	case errors.Is(err, ggpdes.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.err = fmt.Sprintf("deadline exceeded after %s", timeout)
		j.failCause = err
		m.failed.Inc()
	case errors.Is(err, ggpdes.ErrCancelled) || errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = "cancelled"
		j.failCause = err
		m.cancelled.Inc()
	default:
		j.state = StateFailed
		j.err = err.Error()
		j.failCause = err
		m.failed.Inc()
	}
	close(j.done)
	m.retainLocked(j.id)
	m.finalizeLocked(j)
	runMS := float64(j.finished.Sub(j.started).Milliseconds())
	m.mu.Unlock()

	if err == nil && ckptDir != "" && !keyed {
		_ = os.RemoveAll(ckptDir) // completed jobs don't need their snapshots
	}
	m.runWall.Observe(runMS)
	m.inFlight.Set(float64(m.countInFlight()))
}

// runRemote routes a peer-owned job through the cluster: fill from
// the owner's cache, else delegate the run to it. It returns settled
// = true when the cluster answered (result or terminal error) and
// false when the job must run locally instead — the owner died mid-
// job (failover; the local run resumes its shared checkpoints) or
// pushed back under load (spill).
func (m *Manager) runRemote(jobCtx context.Context, j *Job, owner *cluster.Peer) (res *ggpdes.Results, source string, err error, settled bool) {
	res, err = m.clu.FetchResult(jobCtx, owner, j.key)
	if err == nil {
		return res, SourcePeer, nil, true
	}
	if jobCtx.Err() != nil {
		return nil, "", context.Cause(jobCtx), true
	}
	// Fill missed (or the owner is already unreachable — delegation
	// below settles which). Hand the run to the owner so the fleet
	// simulates each key once; NoForward stops it routing onward.
	spec := j.spec
	spec.NoForward = true
	body, merr := json.Marshal(spec)
	if merr != nil {
		return nil, "", merr, true
	}
	res, err = m.clu.RunJob(jobCtx, owner, body)
	if err == nil {
		return res, SourceRemote, nil, true
	}
	if jobCtx.Err() != nil {
		return nil, "", context.Cause(jobCtx), true
	}
	if errors.Is(err, cluster.ErrPeerLost) {
		// The owner died with our job. Fail over to a local run, which
		// resumes from the shared keyed checkpoint dir at whatever GVT
		// the owner last snapshotted.
		m.clu.NoteFailover()
		return nil, "", nil, false
	}
	var re *cluster.RemoteError
	if errors.As(err, &re) {
		if re.Code == CodeQueueFull || re.Code == CodeDraining {
			// The owner is healthy but shedding load; running locally
			// trades fleet-wide dedup for availability.
			m.clu.NoteSpill()
			return nil, "", nil, false
		}
		// A typed remote failure (deadline, invalid config, ...) is the
		// job's real outcome; re-running locally would just repeat it.
		return nil, "", remoteFailure(owner.Addr(), re), true
	}
	return nil, "", err, true
}

// pathSafe flattens a cache key or host:port into a path component.
func pathSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ':', '/', '\\':
			return '-'
		}
		return r
	}, s)
}

// Health is the healthz payload: queue occupancy plus — when
// clustered — per-peer reachability, so a load balancer can shed to
// replicas that are neither draining nor partitioned.
type Health struct {
	// Status is "ok", "degraded" (some peer unreachable), or
	// "draining".
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
	Workers  int    `json:"workers"`
	// QueueDepth is the admission bound; QueueLen the spots taken;
	// QueueFree the spots left before submissions 429.
	QueueDepth int `json:"queue_depth"`
	QueueLen   int `json:"queue_len"`
	QueueFree  int `json:"queue_free"`
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	// ClusterSize and Peers appear only on clustered replicas. Peers
	// reports the latest probe, which this call performs.
	ClusterSize int                  `json:"cluster_size,omitempty"`
	Peers       []cluster.PeerHealth `json:"peers,omitempty"`
}

// Health probes the fleet (bounded by the cluster ping timeout under
// ctx) and snapshots queue occupancy. Single-node managers skip the
// probe and never degrade.
func (m *Manager) Health(ctx context.Context) Health {
	queued, running := m.Counts()
	h := Health{
		Status:     "ok",
		Workers:    m.opts.Workers,
		QueueDepth: m.opts.QueueDepth,
		QueueLen:   len(m.queue),
		Queued:     queued,
		Running:    running,
	}
	h.QueueFree = h.QueueDepth - h.QueueLen
	if m.clu != nil {
		h.ClusterSize = m.clu.Size()
		h.Peers = m.clu.Probe(ctx)
		for _, p := range h.Peers {
			if !p.OK {
				h.Status = "degraded"
			}
		}
	}
	if m.Draining() {
		h.Status = "draining"
		h.Draining = true
	}
	return h
}

// attempt executes one run attempt under its own cancellable context.
// The engine's progress callback doubles as the fault-injection point
// (a planned crash cancels the context at a GVT fraction) and as the
// heartbeat the stall watchdog monitors. Attempts after the first
// resume from the job's latest checkpoint when one exists; keyed
// (cluster-shared) checkpoint dirs resume even on the first attempt,
// because the checkpoint a failover finds there was written by the
// dead owner, not by this job.
func (m *Manager) attempt(jobCtx context.Context, j *Job, cfg ggpdes.Config, ckptDir string, attempt int, keyed bool) (*ggpdes.Results, error) {
	ctx, cancel := context.WithCancelCause(jobCtx)
	defer cancel(nil)

	// Plan the chaos for this attempt. The final budgeted attempt is
	// never crashed: injection models recoverable faults, and a fault
	// on the last attempt would make the budget a coin flip.
	crashAt := -1.0
	if m.crashes != nil && attempt < j.maxAttempts {
		if crash, frac := m.crashes.Plan(j.key, attempt); crash {
			crashAt = frac
		}
	}

	var beat atomic.Int64
	beat.Store(time.Now().UnixNano())
	var crashed atomic.Bool
	progress := &ggpdes.ProgressOptions{
		// A near-zero interval fires the callback on every GVT
		// publication: each one is a heartbeat and a crash check.
		Every: 1e-9,
		Func: func(p ggpdes.ProgressInfo) {
			beat.Store(time.Now().UnixNano())
			if crashAt >= 0 && p.GVT >= crashAt*p.EndTime && crashed.CompareAndSwap(false, true) {
				m.injectedCrash.Inc()
				cancel(chaos.ErrInjectedCrash)
			}
		},
	}

	if st := m.opts.StallTimeout; st > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(st / 4)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-tick.C:
					if time.Since(time.Unix(0, beat.Load())) > st {
						m.stallsDetected.Inc()
						cancel(ErrStalled)
						return
					}
				}
			}
		}()
	}

	resumeFrom := ""
	if ckptDir != "" && (attempt > 1 || keyed) {
		if path, err := checkpoint.Latest(ckptDir); err == nil {
			resumeFrom = path
		}
	}
	// Each attempt records into the job's live series ring from a clean
	// slate, so the buffer always describes one consistent trajectory —
	// the attempt that ultimately completes.
	var series *ggpdes.SeriesOptions
	if j.series != nil {
		j.series.Reset()
		series = &ggpdes.SeriesOptions{Buffer: j.series}
	}
	var res *ggpdes.Results
	var err error
	if resumeFrom != "" {
		m.resumes.Inc()
		m.mu.Lock()
		j.resumedFrom = filepath.Base(resumeFrom)
		m.mu.Unlock()
		res, err = ggpdes.ResumeContext(ctx, resumeFrom, &ggpdes.ResumeOptions{Progress: progress, Series: series})
	} else {
		cfg.Progress = progress
		cfg.Series = series
		res, err = ggpdes.RunContext(ctx, cfg)
	}
	if err != nil {
		// Surface the injected cause so retryable() can see it through
		// the engine's cancellation wrapping.
		if cause := context.Cause(ctx); errors.Is(cause, chaos.ErrInjectedCrash) || errors.Is(cause, ErrStalled) {
			err = fmt.Errorf("attempt %d: %w (%v)", attempt, cause, err)
		}
	}
	return res, err
}

// retryable reports whether an attempt failure was injected by the
// harness (crash or stall) or was a lost distributed-worker connection
// — environmental failures — rather than requested by the client or
// inherent to the config.
func retryable(err error) bool {
	return errors.Is(err, chaos.ErrInjectedCrash) || errors.Is(err, ErrStalled) ||
		errors.Is(err, dist.ErrWorkerLost)
}

// backoff is the delay before retry number `attempt`: base doubled per
// retry, capped at 32x, with ±50% jitter deterministic in (key,
// attempt) so reruns of the same workload time out identically.
func backoff(base time.Duration, key string, attempt int) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	d := base << uint(attempt-1)
	if max := 32 * base; d > max {
		d = max
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	s := rng.New(h.Sum64(), uint64(attempt))
	return time.Duration(float64(d) * (0.5 + s.Float64()))
}

// sleepCtx sleeps for d, returning false if ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// status builds a snapshot. Caller holds m.mu (or exclusively owns j).
func (j *Job) status() Status {
	st := Status{
		ID:          j.id,
		State:       j.state,
		Key:         j.key,
		Cached:      j.cached,
		Source:      j.source,
		Error:       j.err,
		Attempts:    j.attempts,
		LastError:   j.lastErr,
		ResumedFrom: j.resumedFrom,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		failCause:   j.failCause,
	}
	switch {
	case j.state == StateQueued:
		st.QueueSeconds = time.Since(j.submitted).Seconds()
	case !j.started.IsZero():
		st.QueueSeconds = j.started.Sub(j.submitted).Seconds()
	case !j.finished.IsZero():
		st.QueueSeconds = j.finished.Sub(j.submitted).Seconds()
	}
	switch {
	case j.state == StateRunning:
		st.RunSeconds = time.Since(j.started).Seconds()
	case !j.started.IsZero() && !j.finished.IsZero():
		st.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	return st
}
