package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ggpdes"
	"ggpdes/internal/telemetry"
)

// State is a job's position in its lifecycle.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning State = "running"
	// StateDone: finished successfully; the result is available.
	StateDone State = "done"
	// StateFailed: the run returned an error (including deadline
	// expiry).
	StateFailed State = "failed"
	// StateCancelled: cancelled by the client before completion.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Errors returned by Submit. The HTTP layer maps ErrQueueFull to 429
// with Retry-After and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrDraining  = errors.New("serve: server is draining")
)

// Options configures a Manager. The zero value is usable: workers
// sized to GOMAXPROCS, a 64-deep admission queue, a 256-entry cache,
// no default deadline.
type Options struct {
	// Workers is the number of concurrent simulation runs (0 =
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running; a submit
	// past the bound is rejected with ErrQueueFull (0 = 64).
	QueueDepth int
	// CacheEntries bounds the result cache (0 = 256, negative =
	// disabled).
	CacheEntries int
	// DefaultTimeout bounds each job's real-time execution unless the
	// spec sets its own; 0 means no default deadline.
	DefaultTimeout time.Duration
	// RetainJobs bounds how many terminal jobs stay queryable; the
	// oldest are forgotten past the bound (0 = 4096, negative =
	// unlimited).
	RetainJobs int
	// Registry receives the serve.* metrics (nil = a fresh registry).
	Registry *telemetry.Registry
}

// Job is one submitted simulation. All mutable fields are guarded by
// the owning Manager's mutex; handlers read consistent snapshots via
// Status.
type Job struct {
	id     string
	spec   JobSpec
	cfg    ggpdes.Config
	key    string
	cached bool

	state     State
	err       string
	result    *ggpdes.Results
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	done      chan struct{}
}

// Status is an immutable snapshot of a job, shaped for JSON.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Key is the config's content-addressed cache key.
	Key string `json:"key"`
	// Cached is true when the result was served from the cache without
	// a run.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
	// QueueSeconds and RunSeconds break down where the job spent its
	// wall-clock time so far.
	QueueSeconds float64 `json:"queue_seconds"`
	RunSeconds   float64 `json:"run_seconds"`
}

// Manager owns the admission queue, the worker pool, the job table and
// the result cache. Create one with New and shut it down with Drain.
type Manager struct {
	opts  Options
	reg   *telemetry.Registry
	cache *resultCache

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	terminal []string // terminal job IDs, oldest first, for retention
	seq      uint64
	draining bool

	submitted *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	cancelled *telemetry.Counter
	rejected  *telemetry.Counter
	queueWait *telemetry.Histogram
	runWall   *telemetry.Histogram
	inFlight  *telemetry.Gauge
}

// New starts a manager and its worker pool.
func New(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 256
	}
	if opts.RetainJobs == 0 {
		opts.RetainJobs = 4096
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &Manager{
		opts:      opts,
		reg:       reg,
		cache:     newResultCache(opts.CacheEntries, reg),
		queue:     make(chan *Job, opts.QueueDepth),
		jobs:      make(map[string]*Job),
		submitted: reg.Counter("serve.jobs_submitted"),
		completed: reg.Counter("serve.jobs_completed"),
		failed:    reg.Counter("serve.jobs_failed"),
		cancelled: reg.Counter("serve.jobs_cancelled"),
		rejected:  reg.Counter("serve.jobs_rejected"),
		queueWait: reg.Histogram("serve.queue_wait_ms"),
		runWall:   reg.Histogram("serve.run_wall_ms"),
		inFlight:  reg.Gauge("serve.jobs_in_flight"),
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry exposes the manager's metrics for the HTTP stats endpoint
// and expvar.
func (m *Manager) Registry() *telemetry.Registry { return m.reg }

// Workers reports the worker pool size.
func (m *Manager) Workers() int { return m.opts.Workers }

// QueueDepth reports the admission queue bound.
func (m *Manager) QueueDepth() int { return m.opts.QueueDepth }

// Submit validates the spec and either answers it from the result
// cache (job born StateDone, Cached=true) or admits it to the queue.
// It fails fast with ErrQueueFull when the queue is at bound and
// ErrDraining after Drain has begun; spec errors are returned verbatim
// for the client.
func (m *Manager) Submit(spec JobSpec) (Status, error) {
	cfg, err := spec.Config()
	if err != nil {
		return Status{}, err
	}
	key, err := cfg.CacheKey()
	if err != nil {
		return Status{}, err
	}

	j := &Job{
		spec:      spec,
		cfg:       cfg,
		key:       key,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}

	if !spec.NoCache {
		if res, ok := m.cache.get(key); ok {
			j.cached = true
			j.result = res
			j.state = StateDone
			j.finished = j.submitted
			close(j.done)
			m.mu.Lock()
			if m.draining {
				m.mu.Unlock()
				return Status{}, ErrDraining
			}
			m.register(j)
			m.mu.Unlock()
			m.submitted.Inc()
			m.completed.Inc()
			return j.status(), nil
		}
	} else {
		// Count the bypass as a miss so hit-rate math stays honest.
		m.cache.misses.Inc()
	}

	j.state = StateQueued
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Status{}, ErrDraining
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		m.rejected.Inc()
		return Status{}, ErrQueueFull
	}
	m.register(j)
	st := j.status()
	m.mu.Unlock()
	m.submitted.Inc()
	m.inFlight.Set(float64(m.countInFlight()))
	return st, nil
}

// register assigns an ID and records the job. Caller holds m.mu.
func (m *Manager) register(j *Job) {
	m.seq++
	j.id = fmt.Sprintf("job-%08x", m.seq)
	m.jobs[j.id] = j
	if j.state.Terminal() {
		m.retainLocked(j.id)
	}
}

// retainLocked appends a terminal job and forgets the oldest past the
// retention bound. Caller holds m.mu.
func (m *Manager) retainLocked(id string) {
	m.terminal = append(m.terminal, id)
	if m.opts.RetainJobs < 0 {
		return
	}
	for len(m.terminal) > m.opts.RetainJobs {
		delete(m.jobs, m.terminal[0])
		m.terminal = m.terminal[1:]
	}
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Result returns the job's results if it finished successfully. The
// returned Results is shared and must not be mutated.
func (m *Manager) Result(id string) (*ggpdes.Results, Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Status{}, false
	}
	return j.result, j.status(), true
}

// Cancel stops a job: a queued job is marked cancelled immediately and
// skipped by its worker; a running job has its context cancelled,
// which the engine observes within one GVT round. Terminal jobs are
// left as-is. The returned Status reflects the state after the call.
func (m *Manager) Cancel(id string) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, false
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		close(j.done)
		m.retainLocked(j.id)
		m.cancelled.Inc()
	case StateRunning:
		// The worker observes the context and finishes the lifecycle.
		j.cancel()
	}
	return j.status(), true
}

// Wait blocks until the job reaches a terminal state or the context
// expires.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.status(), nil
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Counts reports the number of queued and running jobs.
func (m *Manager) Counts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running
}

func (m *Manager) countInFlight() int {
	q, r := m.Counts()
	return q + r
}

// Drain stops admission (Submit returns ErrDraining), lets already
// admitted jobs finish, and waits for the worker pool to exit or the
// context to expire. It is idempotent; concurrent calls all wait.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	m.mu.Unlock()
	if first {
		// Safe: Submit checks draining under m.mu before sending, so no
		// send can race this close.
		m.mu.Lock()
		close(m.queue)
		m.mu.Unlock()
	}
	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker pulls admitted jobs until the queue is closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job end to end.
func (m *Manager) run(j *Job) {
	m.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	timeout := m.opts.DefaultTimeout
	if j.spec.TimeoutSeconds > 0 {
		timeout = time.Duration(j.spec.TimeoutSeconds * float64(time.Second))
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j.cancel = cancel
	cfg := j.cfg
	m.mu.Unlock()
	defer cancel()

	m.queueWait.Observe(float64(j.started.Sub(j.submitted).Milliseconds()))
	m.inFlight.Set(float64(m.countInFlight()))

	res, err := ggpdes.RunContext(ctx, cfg)

	m.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		m.completed.Inc()
		m.cache.put(j.key, res)
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = "cancelled"
		m.cancelled.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.err = fmt.Sprintf("deadline exceeded after %s", timeout)
		m.failed.Inc()
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.failed.Inc()
	}
	close(j.done)
	m.retainLocked(j.id)
	runMS := float64(j.finished.Sub(j.started).Milliseconds())
	m.mu.Unlock()

	m.runWall.Observe(runMS)
	m.inFlight.Set(float64(m.countInFlight()))
}

// status builds a snapshot. Caller holds m.mu (or exclusively owns j).
func (j *Job) status() Status {
	st := Status{
		ID:          j.id,
		State:       j.state,
		Key:         j.key,
		Cached:      j.cached,
		Error:       j.err,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	switch {
	case j.state == StateQueued:
		st.QueueSeconds = time.Since(j.submitted).Seconds()
	case !j.started.IsZero():
		st.QueueSeconds = j.started.Sub(j.submitted).Seconds()
	case !j.finished.IsZero():
		st.QueueSeconds = j.finished.Sub(j.submitted).Seconds()
	}
	switch {
	case j.state == StateRunning:
		st.RunSeconds = time.Since(j.started).Seconds()
	case !j.started.IsZero() && !j.finished.IsZero():
		st.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	return st
}
