package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs            submit a JobSpec; 202 queued, 200 cache hit,
//	                           400 invalid, 429 queue full (Retry-After),
//	                           503 draining
//	GET    /v1/jobs/{id}       job status; 404 unknown
//	GET    /v1/jobs/{id}/result  200 results when done, 202 still in
//	                           flight, 409 failed/cancelled, 404 unknown
//	DELETE /v1/jobs/{id}       cancel; 200 with post-cancel status
//	GET    /v1/healthz         200 ok, 503 draining
//	GET    /v1/stats           telemetry counters/gauges/histograms
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", m.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", m.handleCancel)
	mux.HandleFunc("GET /v1/healthz", m.handleHealthz)
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body: " + err.Error()})
		return
	}
	st, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Queue depth × typical service time is the natural drain
		// horizon; 1s is a conservative client backoff hint.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case st.Cached:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultBody wraps a completed job's results with its identity, so a
// client can tell which submission (and whether the cache) produced
// them.
type resultBody struct {
	Status
	Results any `json:"results"`
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, ok := m.Result(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, resultBody{Status: st, Results: res})
	case StateFailed, StateCancelled:
		writeJSON(w, http.StatusConflict, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// healthBody is the /v1/healthz payload.
type healthBody struct {
	Status     string `json:"status"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running := m.Counts()
	body := healthBody{
		Status:     "ok",
		Workers:    m.Workers(),
		QueueDepth: m.QueueDepth(),
		Queued:     queued,
		Running:    running,
	}
	code := http.StatusOK
	if m.Draining() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// statsBody is the /v1/stats payload: a full registry snapshot.
type statsBody struct {
	Counters   map[string]uint64  `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms any                `json:"histograms"`
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	reg := m.Registry()
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, statsBody{
		Counters:   reg.Counters(),
		Gauges:     reg.Gauges(),
		Histograms: reg.Histograms(),
	})
}
