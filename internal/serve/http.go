package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"

	"ggpdes"
	"ggpdes/internal/checkpoint"
	"ggpdes/internal/telemetry"
)

// apiRevision identifies the /v1 wire contract. Revision 2 replaced
// the flat job spec with an embedded ggpdes.Config ("config":{...})
// and added attempts/last_error/resumed_from to job status. Revision 3
// added GET /v1/jobs/{id}/series, changed /v1/stats gauges from bare
// numbers to {value,set} objects (unset gauges are no longer reported
// as a misleading 0), and added the OpenMetrics exposition (mounted by
// ggserved at /metrics); /v1 paths are otherwise stable within a
// revision.
const apiRevision = 3

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs            submit a JobSpec; 202 queued, 200 cache hit,
//	                           400 invalid config, 429 queue full
//	                           (Retry-After), 503 draining
//	GET    /v1/jobs/{id}       job status; 404 unknown
//	GET    /v1/jobs/{id}/result  200 results when done, 202 still in
//	                           flight, 404 unknown; failures map the
//	                           typed cause: 409 cancelled/failed, 410
//	                           corrupt checkpoint, 504 deadline
//	GET    /v1/jobs/{id}/series  per-GVT-round time series — live ring
//	                           while running, recorded series when done
//	DELETE /v1/jobs/{id}       cancel; 200 with post-cancel status
//	GET    /v1/version         API revision + checkpoint format
//	GET    /v1/healthz         200 ok, 503 draining
//	GET    /v1/stats           telemetry counters/gauges/histograms
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", m.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/series", m.handleSeries)
	mux.HandleFunc("DELETE /v1/jobs/{id}", m.handleCancel)
	mux.HandleFunc("GET /v1/version", m.handleVersion)
	mux.HandleFunc("GET /v1/healthz", m.handleHealthz)
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	return mux
}

// MetricsHandler returns the OpenMetrics/Prometheus text exposition of
// the serving registry: the serve.* plane plus the engine metrics of
// every completed job, merged. ggserved mounts it at /metrics; it is
// not under /v1 so generic scrapers find it at the conventional path.
func (m *Manager) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.WriteOpenMetrics(w, m.reg.Snapshot())
	})
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// submitStatus maps a Submit error to its HTTP status via the typed
// sentinels.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ggpdes.ErrInvalidConfig):
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

// failureStatus maps a terminal job's cause to the result endpoint's
// HTTP status.
func failureStatus(cause error) int {
	switch {
	case errors.Is(cause, ggpdes.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(cause, ggpdes.ErrCheckpointCorrupt):
		return http.StatusGone
	case errors.Is(cause, ggpdes.ErrInvalidConfig):
		return http.StatusBadRequest
	default:
		// Cancellations and unclassified failures.
		return http.StatusConflict
	}
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body: " + err.Error()})
		return
	}
	st, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Queue depth × typical service time is the natural drain
		// horizon; 1s is a conservative client backoff hint.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, submitStatus(err), errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, submitStatus(err), errorBody{Error: err.Error()})
	case st.Cached:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultBody wraps a completed job's results with its identity, so a
// client can tell which submission (and whether the cache) produced
// them.
type resultBody struct {
	Status
	Results any `json:"results"`
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, ok := m.Result(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, resultBody{Status: st, Results: res})
	case StateFailed, StateCancelled:
		writeJSON(w, failureStatus(st.failCause), st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// seriesBody wraps a job's per-round series with its identity. Points
// arrive oldest-first; Total counts every point ever recorded, so
// total > len(points) tells the client the ring has wrapped.
type seriesBody struct {
	Status
	Total  int                     `json:"total_points"`
	Points []telemetry.SeriesPoint `json:"points"`
}

func (m *Manager) handleSeries(w http.ResponseWriter, r *http.Request) {
	pts, total, st, ok := m.Series(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	if pts == nil {
		pts = []telemetry.SeriesPoint{}
	}
	writeJSON(w, http.StatusOK, seriesBody{Status: st, Total: total, Points: pts})
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// versionBody is the /v1/version payload: what a client needs to know
// before speaking to this server.
type versionBody struct {
	Service string `json:"service"`
	API     string `json:"api"`
	// APIRevision bumps when the /v1 wire shapes change; see the
	// compatibility note in the README.
	APIRevision int `json:"api_revision"`
	// CheckpointFormat is the snapshot file version this server reads
	// and writes.
	CheckpointFormat int    `json:"checkpoint_format"`
	GoVersion        string `json:"go_version"`
	MaxAttempts      int    `json:"max_attempts"`
}

func (m *Manager) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, versionBody{
		Service:          "ggserved",
		API:              "v1",
		APIRevision:      apiRevision,
		CheckpointFormat: checkpoint.Version,
		GoVersion:        runtime.Version(),
		MaxAttempts:      m.opts.MaxAttempts,
	})
}

// healthBody is the /v1/healthz payload.
type healthBody struct {
	Status     string `json:"status"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running := m.Counts()
	body := healthBody{
		Status:     "ok",
		Workers:    m.Workers(),
		QueueDepth: m.QueueDepth(),
		Queued:     queued,
		Running:    running,
	}
	code := http.StatusOK
	if m.Draining() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// statsBody is the /v1/stats payload: a full registry snapshot.
// Gauges carry their set flag (revision 3): a gauge that was
// registered but never recorded reports {"set":false} instead of a
// value indistinguishable from a real 0.
type statsBody struct {
	Counters   map[string]uint64               `json:"counters"`
	Gauges     map[string]telemetry.GaugeState `json:"gauges"`
	Histograms map[string]telemetry.Summary    `json:"histograms"`
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	reg := m.Registry()
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, statsBody{
		Counters:   reg.Counters(),
		Gauges:     reg.Snapshot().Gauges,
		Histograms: reg.Histograms(),
	})
}
