package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"

	"ggpdes"
	"ggpdes/internal/checkpoint"
	"ggpdes/internal/telemetry"
)

// apiRevision identifies the service wire contract. Revision 2
// replaced the flat job spec with an embedded ggpdes.Config
// ("config":{...}) and added attempts/last_error/resumed_from to job
// status. Revision 3 added GET /v1/jobs/{id}/series, changed
// /v1/stats gauges from bare numbers to {value,set} objects, and
// added the OpenMetrics exposition (mounted by ggserved at /metrics).
// Revision 4 introduces /v2 — the typed error envelope
// {"error":{"code","message","retryable"}}, JobMeta-shaped payloads,
// sweeps with SSE streaming, the cluster fill/delegate endpoints —
// and demotes /v1 to a frozen compatibility shim served with a
// Deprecation header; /v1 bodies are unchanged from revision 3
// (additive fields only).
const apiRevision = 4

// Handler returns the service's HTTP API — the current /v2 surface
// plus the deprecated /v1 shim:
//
//	POST   /v2/jobs              submit a JobSpec; 202 queued, 200 cache
//	                             hit; errors wear the typed envelope
//	                             (400 invalid_config, 429 queue_full
//	                             with deterministic Retry-After, 503
//	                             draining)
//	GET    /v2/jobs/{id}         job status as {"job": JobMeta}
//	GET    /v2/jobs/{id}/result  200 job+results when done, 202 in
//	                             flight; terminal failures map the
//	                             error code's status
//	GET    /v2/jobs/{id}/series  per-GVT-round time series
//	DELETE /v2/jobs/{id}         cancel; 200 with post-cancel meta
//	POST   /v2/sweeps            fan one SweepSpec into K member jobs
//	GET    /v2/sweeps/{id}       aggregate + per-member status
//	GET    /v2/sweeps/{id}/events  SSE stream: one event per member in
//	                             completion order, then "done"
//	DELETE /v2/sweeps/{id}       cancel all non-terminal members
//	GET    /v2/version           API revision + checkpoint format
//	GET    /v2/healthz           queue occupancy + peer connectivity;
//	                             503 only when draining
//	GET    /v2/stats             telemetry counters/gauges/histograms
//	GET    /v2/cluster/ping      cluster-internal liveness probe
//	GET    /v2/cluster/result/{key}  cluster-internal cache fill
//	POST   /v2/cluster/jobs      cluster-internal delegated run
//
// The /v1 routes keep their revision-3 request/response shapes
// (string error bodies included) and answer with `Deprecation: true`
// plus a successor-version Link header.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	// The deprecated /v1 shim: same handlers, same bodies, plus the
	// deprecation headers (RFC 8594-style) pointing clients at /v2.
	v1 := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</v2>; rel="successor-version"`)
			h(w, r)
		}
	}
	mux.HandleFunc("POST /v1/jobs", v1(m.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", v1(m.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/result", v1(m.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/series", v1(m.handleSeries))
	mux.HandleFunc("DELETE /v1/jobs/{id}", v1(m.handleCancel))
	mux.HandleFunc("GET /v1/version", v1(m.handleVersion))
	mux.HandleFunc("GET /v1/healthz", v1(m.handleHealthz))
	mux.HandleFunc("GET /v1/stats", v1(m.handleStats))

	mux.HandleFunc("POST /v2/jobs", m.v2Submit)
	mux.HandleFunc("GET /v2/jobs/{id}", m.v2Status)
	mux.HandleFunc("GET /v2/jobs/{id}/result", m.v2Result)
	mux.HandleFunc("GET /v2/jobs/{id}/series", m.v2Series)
	mux.HandleFunc("DELETE /v2/jobs/{id}", m.v2Cancel)
	mux.HandleFunc("POST /v2/sweeps", m.v2SubmitSweep)
	mux.HandleFunc("GET /v2/sweeps/{id}", m.v2SweepStatus)
	mux.HandleFunc("GET /v2/sweeps/{id}/events", m.v2SweepEvents)
	mux.HandleFunc("DELETE /v2/sweeps/{id}", m.v2CancelSweep)
	mux.HandleFunc("GET /v2/version", m.v2Version)
	mux.HandleFunc("GET /v2/healthz", m.v2Healthz)
	mux.HandleFunc("GET /v2/stats", m.handleStats)
	mux.HandleFunc("GET /v2/cluster/ping", m.v2ClusterPing)
	mux.HandleFunc("GET /v2/cluster/result/{key}", m.v2ClusterResult)
	mux.HandleFunc("POST /v2/cluster/jobs", m.v2ClusterRun)
	return mux
}

// MetricsHandler returns the OpenMetrics/Prometheus text exposition of
// the serving registry: the serve.* plane plus the engine metrics of
// every completed job, merged. ggserved mounts it at /metrics; it is
// not under /v1 so generic scrapers find it at the conventional path.
func (m *Manager) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.WriteOpenMetrics(w, m.reg.Snapshot())
	})
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// submitStatus maps a Submit error to its HTTP status via the typed
// sentinels.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ggpdes.ErrInvalidConfig):
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

// failureStatus maps a terminal job's cause to the result endpoint's
// HTTP status.
func failureStatus(cause error) int {
	switch {
	case errors.Is(cause, ggpdes.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(cause, ggpdes.ErrCheckpointCorrupt):
		return http.StatusGone
	case errors.Is(cause, ggpdes.ErrInvalidConfig):
		return http.StatusBadRequest
	default:
		// Cancellations and unclassified failures.
		return http.StatusConflict
	}
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON body: " + err.Error()})
		return
	}
	st, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Deterministic backoff hint: derived from queue occupancy,
		// not the wall clock (see retryAfterSeconds).
		m.setRetryAfter(w)
		writeJSON(w, submitStatus(err), errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, submitStatus(err), errorBody{Error: err.Error()})
	case st.Cached:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultBody wraps a completed job's results with its identity, so a
// client can tell which submission (and whether the cache) produced
// them.
type resultBody struct {
	Status
	Results any `json:"results"`
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, ok := m.Result(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, resultBody{Status: st, Results: res})
	case StateFailed, StateCancelled:
		writeJSON(w, failureStatus(st.failCause), st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// seriesBody wraps a job's per-round series with its identity. Points
// arrive oldest-first; Total counts every point ever recorded, so
// total > len(points) tells the client the ring has wrapped.
type seriesBody struct {
	Status
	Total  int                     `json:"total_points"`
	Points []telemetry.SeriesPoint `json:"points"`
}

func (m *Manager) handleSeries(w http.ResponseWriter, r *http.Request) {
	pts, total, st, ok := m.Series(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	if pts == nil {
		pts = []telemetry.SeriesPoint{}
	}
	writeJSON(w, http.StatusOK, seriesBody{Status: st, Total: total, Points: pts})
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// versionBody is the /v1/version payload: what a client needs to know
// before speaking to this server.
type versionBody struct {
	Service string `json:"service"`
	API     string `json:"api"`
	// APIRevision bumps when the /v1 wire shapes change; see the
	// compatibility note in the README.
	APIRevision int `json:"api_revision"`
	// CheckpointFormat is the snapshot file version this server reads
	// and writes.
	CheckpointFormat int    `json:"checkpoint_format"`
	GoVersion        string `json:"go_version"`
	MaxAttempts      int    `json:"max_attempts"`
}

func (m *Manager) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, versionBody{
		Service:          "ggserved",
		API:              "v1",
		APIRevision:      apiRevision,
		CheckpointFormat: checkpoint.Version,
		GoVersion:        runtime.Version(),
		MaxAttempts:      m.opts.MaxAttempts,
	})
}

// healthBody is the /v1 name for the healthz payload; revision 4
// upgraded it to the shared Health shape (additively — revision-3
// clients keep parsing it).
type healthBody = Health

// handleHealthz serves the same upgraded Health payload as /v2: the
// revision-3 fields (status, workers, queue_depth, queued, running)
// are all still present, with queue occupancy and peer connectivity
// added — additive, so revision-3 clients keep parsing it.
func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := m.Health(r.Context())
	code := http.StatusOK
	if h.Draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// statsBody is the /v1/stats payload: a full registry snapshot.
// Gauges carry their set flag (revision 3): a gauge that was
// registered but never recorded reports {"set":false} instead of a
// value indistinguishable from a real 0.
type statsBody struct {
	Counters   map[string]uint64               `json:"counters"`
	Gauges     map[string]telemetry.GaugeState `json:"gauges"`
	Histograms map[string]telemetry.Summary    `json:"histograms"`
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	reg := m.Registry()
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, statsBody{
		Counters:   reg.Counters(),
		Gauges:     reg.Snapshot().Gauges,
		Histograms: reg.Histograms(),
	})
}
