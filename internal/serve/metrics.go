package serve

// Metric names registered by the serving layer. Single-sourced here so
// ggvet's telemetryname pass can hold the registration sites and the
// checked-in inventory (internal/telemetry/inventory.txt) to one set
// of spellings.
const (
	// Job lifecycle.
	MetricJobsSubmitted = "serve.jobs_submitted"
	MetricJobsCompleted = "serve.jobs_completed"
	MetricJobsFailed    = "serve.jobs_failed"
	MetricJobsCancelled = "serve.jobs_cancelled"
	MetricJobsRejected  = "serve.jobs_rejected"
	MetricJobsInFlight  = "serve.jobs_in_flight"

	// Fault handling.
	MetricRetries         = "serve.retries"
	MetricInjectedCrashes = "serve.injected_crashes"
	MetricStallsDetected  = "serve.stalls_detected"
	MetricResumes         = "serve.resumes"

	// Latency breakdown.
	MetricQueueWaitMS = "serve.queue_wait_ms"
	MetricRunWallMS   = "serve.run_wall_ms"

	// Dedup accounting. MetricSimulations counts jobs the engine
	// actually ran on this replica — not cache hits, coalesced
	// duplicates, or peer-served results — so summing it across a
	// cluster proves each distinct config simulated once fleet-wide.
	// MetricDedupInflight counts submissions coalesced onto an
	// identical job already executing (single-flight dedup).
	MetricSimulations   = "serve.simulations"
	MetricDedupInflight = "serve.dedup_inflight"

	// Result cache.
	MetricCacheHits      = "serve.cache_hits"
	MetricCacheMisses    = "serve.cache_misses"
	MetricCacheEvictions = "serve.cache_evictions"
	MetricCacheEntries   = "serve.cache_entries"
)
