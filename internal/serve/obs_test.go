package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ggpdes/internal/telemetry"
)

// startObsServer mounts the full observability surface the way
// ggserved does: the /v1 API plus /metrics.
func startObsServer(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	m := New(opts)
	mux := http.NewServeMux()
	mux.Handle("/v1/", m.Handler())
	mux.Handle("/metrics", m.MetricsHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		drain(t, m)
	})
	return m, srv
}

func scrape(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestMetricsEndpointExposition(t *testing.T) {
	m, srv := startObsServer(t, Options{Workers: 2})
	_, st := postJob(t, srv, quickSpec(1))
	waitState(t, m, st.ID, StateDone)

	body, ctype := scrape(t, srv.URL+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type %q", ctype)
	}
	// Serving plane and (imported) engine plane must both be present,
	// in OpenMetrics shape.
	for _, want := range []string{
		"# TYPE ggpdes_serve_jobs_completed counter",
		"ggpdes_serve_jobs_completed_total 1",
		"# TYPE ggpdes_serve_run_wall_ms histogram",
		"ggpdes_serve_run_wall_ms_bucket{le=\"+Inf\"} 1",
		"ggpdes_serve_run_wall_ms_sum",
		"ggpdes_serve_run_wall_ms_count 1",
		"ggpdes_tw_committed_events_total",
		"ggpdes_gvt_rounds_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Never-set gauges must be absent rather than zero.
	if strings.Contains(body, "ggpdes_tw_uncommitted_peak 0\n") {
		t.Fatal("unset gauge exposed as 0")
	}
}

func TestSeriesEndpoint(t *testing.T) {
	m, srv := startObsServer(t, Options{Workers: 1})
	_, st := postJob(t, srv, quickSpec(1))
	waitState(t, m, st.ID, StateDone)

	var body struct {
		Status
		Total  int                     `json:"total_points"`
		Points []telemetry.SeriesPoint `json:"points"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/series", &body); code != http.StatusOK {
		t.Fatalf("series status %d", code)
	}
	if body.ID != st.ID || body.State != StateDone {
		t.Fatalf("series identity: %+v", body.Status)
	}
	if len(body.Points) == 0 || body.Total < len(body.Points) {
		t.Fatalf("series shape: %d points, total %d", len(body.Points), body.Total)
	}
	last := body.Points[len(body.Points)-1]
	if last.GVT < 10 || len(last.ThreadLVTs) != 2 {
		t.Fatalf("last point malformed: %+v", last)
	}

	if code := getJSON(t, srv.URL+"/v1/jobs/nope/series", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job series status %d, want 404", code)
	}

	// A cache-hit job (no run of its own) serves the cached run's series.
	_, st2 := postJob(t, srv, quickSpec(1))
	if !st2.Cached {
		t.Fatalf("resubmit was not a cache hit: %+v", st2)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st2.ID+"/series", &body); code != http.StatusOK {
		t.Fatalf("cached series status %d", code)
	}
	if len(body.Points) == 0 {
		t.Fatal("cached job has no series")
	}
}

func TestSeriesDisabled(t *testing.T) {
	m, srv := startObsServer(t, Options{Workers: 1, SeriesLimit: -1})
	_, st := postJob(t, srv, quickSpec(1))
	waitState(t, m, st.ID, StateDone)
	pts, _, _, ok := m.Series(st.ID)
	if !ok {
		t.Fatal("job unknown")
	}
	// SeriesLimit < 0 disables the live ring; the recorded result also
	// has none because no SeriesOptions was attached.
	if len(pts) != 0 {
		t.Fatalf("series disabled but %d points recorded", len(pts))
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/series", nil); code != http.StatusOK {
		t.Fatalf("series status %d (disabled should still 200 with empty points)", code)
	}
}

// TestScrapeMidRun hammers /metrics and /v1/stats while 8 jobs record
// through shard handles — the contention pattern the sharded registry
// exists for. Run with -race it doubles as the data-race audit.
func TestScrapeMidRun(t *testing.T) {
	m, srv := startObsServer(t, Options{Workers: 4, QueueDepth: 16})

	specs := make([]Status, 0, 8)
	for i := 0; i < 8; i++ {
		spec := quickSpec(uint64(i + 1))
		spec.Config.EndTime = 40
		_, st := postJob(t, srv, spec)
		specs = append(specs, st)
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if body, _ := scrape(t, srv.URL+"/metrics"); strings.Contains(body, "\x00") {
						t.Error("NUL in exposition")
					}
					_ = getJSON(t, srv.URL+"/v1/stats", nil)
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	for _, st := range specs {
		waitState(t, m, st.ID, StateDone)
	}
	close(stop)
	scrapers.Wait()

	body, _ := scrape(t, srv.URL+"/metrics")
	if !strings.Contains(body, "ggpdes_serve_jobs_completed_total 8") {
		t.Fatalf("expected 8 completions in final scrape:\n%s", body)
	}
}
