package serve

import (
	"errors"
	"fmt"
	"time"

	"ggpdes"
)

// SweepSpec is the wire body of POST /v2/sweeps: one template spec
// fanned out into K member jobs. Members are ordinary jobs — they
// ride the same admission queue, cache, single-flight dedup, and
// cluster routing — so a sweep whose members repeat configs (or
// repeat another sweep's) simulates each distinct config at most once
// fleet-wide.
type SweepSpec struct {
	// Defaults is the template every member starts from: timeout,
	// retry, and checkpoint policy, plus the base Config.
	Defaults JobSpec `json:"defaults"`
	// Seeds adds one member per entry: the template config with Seed
	// overridden. The common sweep — same model, S seeds.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Configs adds one member per entry, replacing the template config
	// wholesale (for sweeps over threads, models, end times, ...).
	// Seed members come first, config members after, and member Index
	// in events refers to that combined order.
	Configs []ggpdes.Config `json:"configs,omitempty"`
}

// members expands the spec into concrete JobSpecs, validating each
// one so a sweep is accepted or rejected atomically — no partially
// submitted fan-out on a bad member.
func (s SweepSpec) members(defaults Options) ([]JobSpec, error) {
	n := len(s.Seeds) + len(s.Configs)
	if n == 0 {
		return nil, fmt.Errorf("%w: sweep has no members (need seeds or configs)", ggpdes.ErrInvalidConfig)
	}
	if n > 4096 {
		return nil, fmt.Errorf("%w: sweep has %d members (max 4096)", ggpdes.ErrInvalidConfig, n)
	}
	specs := make([]JobSpec, 0, n)
	for _, seed := range s.Seeds {
		spec := s.Defaults
		spec.Config.Seed = seed
		specs = append(specs, spec)
	}
	for _, cfg := range s.Configs {
		spec := s.Defaults
		spec.Config = cfg
		specs = append(specs, spec)
	}
	for i, spec := range specs {
		if _, err := spec.config(defaults); err != nil {
			return nil, fmt.Errorf("sweep member %d: %w", i, err)
		}
	}
	return specs, nil
}

// SweepEvent is one completion in a sweep's event log, streamed over
// SSE in the order members finished (Seq is that order; Index is the
// member's position in the spec). Results is set for done members.
type SweepEvent struct {
	Seq     int             `json:"seq"`
	Index   int             `json:"index"`
	Job     JobMeta         `json:"job"`
	Results *ggpdes.Results `json:"results,omitempty"`
}

// SweepStatus is the /v2/sweeps/{id} payload.
type SweepStatus struct {
	ID string `json:"id"`
	// State aggregates the members: running until every member is
	// terminal, then done (all done), failed (any failed), or
	// cancelled (any cancelled, none failed).
	State     State `json:"state"`
	Total     int   `json:"total"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Cancelled int   `json:"cancelled"`

	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	// Members holds each member's current JobMeta in spec order.
	Members []JobMeta `json:"members"`
}

// sweepJob is the server-side sweep record. All fields are guarded by
// the owning Manager's mutex.
type sweepJob struct {
	id        string
	specs     []JobSpec
	metas     []JobMeta // last known meta per member, spec order
	events    []SweepEvent
	terminal  int // members that reached a terminal state
	submitted time.Time
	finished  time.Time
	// wake is closed and renewed whenever an event is appended (or the
	// sweep finishes), so SSE streams block without polling.
	wake chan struct{}
}

// SubmitSweep validates every member, registers the sweep, and starts
// the fan-out in the background: members are submitted in order, with
// a brief pause-and-retry whenever the admission queue is full, so a
// sweep larger than the queue still completes without the client
// managing backpressure.
func (m *Manager) SubmitSweep(spec SweepSpec) (SweepStatus, error) {
	specs, err := spec.members(m.opts)
	if err != nil {
		return SweepStatus{}, err
	}
	s := &sweepJob{
		specs:     specs,
		metas:     make([]JobMeta, len(specs)),
		submitted: time.Now(),
		wake:      make(chan struct{}),
	}
	for i := range s.metas {
		s.metas[i] = JobMeta{State: StateQueued, SubmittedAt: s.submitted}
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return SweepStatus{}, ErrDraining
	}
	m.seq++
	s.id = fmt.Sprintf("sweep-%08x", m.seq)
	m.sweeps[s.id] = s
	st := m.sweepStatusLocked(s)
	m.wg.Add(1)
	m.mu.Unlock()
	go m.runSweep(s)
	return st, nil
}

// runSweep is the fan-out goroutine: one Submit per member, then one
// watcher per submitted member.
func (m *Manager) runSweep(s *sweepJob) {
	defer m.wg.Done()
	for i, spec := range s.specs {
		var st Status
		var err error
		for {
			st, err = m.Submit(spec)
			if err == nil || !errors.Is(err, ErrQueueFull) {
				break
			}
			if !sleepCtx(m.baseCtx, 5*time.Millisecond) {
				err = m.baseCtx.Err()
				break
			}
		}
		if err != nil {
			// The member never became a job (draining, process exit);
			// record the failure as its terminal event.
			meta := JobMeta{State: StateFailed, SubmittedAt: time.Now(), FinishedAt: time.Now()}
			_, info := classify(err, CodeInternal, 0)
			meta.Error = &info
			m.settleSweepMember(s, i, meta, nil)
			continue
		}
		m.mu.Lock()
		s.metas[i] = st.Meta()
		m.mu.Unlock()
		m.wg.Add(1)
		go m.watchSweepMember(s, i, st.ID)
	}
}

// watchSweepMember waits for one member job and appends its
// completion event.
func (m *Manager) watchSweepMember(s *sweepJob, i int, id string) {
	defer m.wg.Done()
	_, _ = m.Wait(m.baseCtx, id)
	res, st, ok := m.Result(id)
	if !ok {
		st = Status{ID: id, State: StateFailed, Error: "member job evicted before the sweep finished"}
	}
	if !st.State.Terminal() {
		// Only a base-context hard-stop gets here (Drain lets members
		// finish); record the interruption as a cancellation.
		st.State = StateCancelled
		st.Error = "server stopped before the member finished"
	}
	meta := st.Meta()
	if st.State != StateDone {
		res = nil
	}
	m.settleSweepMember(s, i, meta, res)
}

// settleSweepMember records a member's terminal outcome and wakes the
// sweep's SSE streams.
func (m *Manager) settleSweepMember(s *sweepJob, i int, meta JobMeta, res *ggpdes.Results) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s.metas[i] = meta
	s.events = append(s.events, SweepEvent{Seq: len(s.events), Index: i, Job: meta, Results: res})
	s.terminal++
	if s.terminal == len(s.specs) {
		s.finished = time.Now()
		m.retainSweepLocked(s.id)
	}
	close(s.wake)
	s.wake = make(chan struct{})
}

// retainSweepLocked bounds terminal sweep retention like job
// retention. Caller holds m.mu.
func (m *Manager) retainSweepLocked(id string) {
	m.sweepTerminal = append(m.sweepTerminal, id)
	if m.opts.RetainJobs < 0 {
		return
	}
	for len(m.sweepTerminal) > m.opts.RetainJobs {
		delete(m.sweeps, m.sweepTerminal[0])
		m.sweepTerminal = m.sweepTerminal[1:]
	}
}

// sweepStatusLocked builds the status snapshot, refreshing member
// metas from the live job table. Caller holds m.mu.
func (m *Manager) sweepStatusLocked(s *sweepJob) SweepStatus {
	st := SweepStatus{
		ID:          s.id,
		State:       StateRunning,
		Total:       len(s.specs),
		SubmittedAt: s.submitted,
		FinishedAt:  s.finished,
		Members:     make([]JobMeta, len(s.metas)),
	}
	for i, meta := range s.metas {
		if j, ok := m.jobs[meta.ID]; ok && meta.ID != "" {
			meta = j.status().Meta()
		}
		st.Members[i] = meta
		switch meta.State {
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	if s.terminal == len(s.specs) {
		switch {
		case st.Failed > 0:
			st.State = StateFailed
		case st.Cancelled > 0:
			st.State = StateCancelled
		default:
			st.State = StateDone
		}
	}
	return st
}

// GetSweep returns a sweep's status snapshot.
func (m *Manager) GetSweep(id string) (SweepStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sweeps[id]
	if !ok {
		return SweepStatus{}, false
	}
	return m.sweepStatusLocked(s), true
}

// CancelSweep cancels every non-terminal member. Already-finished
// members keep their results.
func (m *Manager) CancelSweep(id string) (SweepStatus, bool) {
	m.mu.Lock()
	s, ok := m.sweeps[id]
	if !ok {
		m.mu.Unlock()
		return SweepStatus{}, false
	}
	var ids []string
	for _, meta := range s.metas {
		if meta.ID != "" && !meta.State.Terminal() {
			ids = append(ids, meta.ID)
		}
	}
	m.mu.Unlock()
	for _, jid := range ids {
		// Cancel re-checks state under the lock, so racing completions
		// are left as-is.
		m.Cancel(jid)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepStatusLocked(s), true
}

// sweepEventsSince returns the event log from seq onward plus a wake
// channel that closes on the next append — the SSE handler's blocking
// primitive. finished reports whether every member has settled.
func (m *Manager) sweepEventsSince(id string, seq int) (evs []SweepEvent, finished bool, wake <-chan struct{}, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, found := m.sweeps[id]
	if !found {
		return nil, false, nil, false
	}
	if seq < len(s.events) {
		evs = make([]SweepEvent, len(s.events)-seq)
		copy(evs, s.events[seq:])
	}
	return evs, s.terminal == len(s.specs), s.wake, true
}
