// Package client is the typed Go client for the ggserved /v2 API
// (API revision 4). It speaks the typed error envelope — every
// non-2xx answer surfaces as an *Error carrying the server's code,
// message, and retryability — and mirrors the /v2 wire shapes with
// plain structs so callers never touch raw JSON.
//
// The package deliberately does not import internal/serve: the serve
// package's own tests exercise their HTTP surface through this client
// (compile-time proof the two stay in sync), which is only possible
// if the dependency points one way. The wire shapes are therefore
// declared again here; the round-trip tests in serve are what keep
// them honest.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ggpdes"
	"ggpdes/internal/telemetry"
)

// Error is a /v2 failure: the server's typed envelope plus the HTTP
// status it rode on. Every non-2xx response becomes one of these.
type Error struct {
	// Code is the envelope's machine-readable error code
	// ("invalid_config", "queue_full", "not_found", ...).
	Code    string
	Message string
	// Retryable means the same request may succeed if repeated.
	Retryable bool
	// HTTPStatus is the response status the envelope arrived on.
	HTTPStatus int
	// RetryAfterSeconds is the server's deterministic backoff hint,
	// parsed from the Retry-After header when present (queue_full).
	RetryAfterSeconds int
}

func (e *Error) Error() string {
	return fmt.Sprintf("ggserved: %s: %s (http %d)", e.Code, e.Message, e.HTTPStatus)
}

// ErrorInfo is the envelope payload as it appears inside JobMeta.
type ErrorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// JobSpec is the body of POST /v2/jobs. See internal/serve.JobSpec
// for field semantics; this is the same wire shape minus the
// cluster-internal no_forward flag.
type JobSpec struct {
	Config          ggpdes.Config `json:"config"`
	TimeoutSeconds  float64       `json:"timeout_seconds,omitempty"`
	NoCache         bool          `json:"no_cache,omitempty"`
	MaxAttempts     int           `json:"max_attempts,omitempty"`
	CheckpointEvery int           `json:"checkpoint_every,omitempty"`
}

// JobMeta is the shared job-identity shape every /v2 payload carries.
type JobMeta struct {
	ID     string     `json:"id"`
	State  string     `json:"state"`
	Key    string     `json:"key,omitempty"`
	Cached bool       `json:"cached,omitempty"`
	Source string     `json:"source,omitempty"`
	Error  *ErrorInfo `json:"error,omitempty"`

	Attempts    int    `json:"attempts,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	ResumedFrom string `json:"resumed_from,omitempty"`

	SubmittedAt  time.Time `json:"submitted_at"`
	StartedAt    time.Time `json:"started_at,omitempty"`
	FinishedAt   time.Time `json:"finished_at,omitempty"`
	QueueSeconds float64   `json:"queue_seconds"`
	RunSeconds   float64   `json:"run_seconds"`
}

// Terminal reports whether the job has reached a final state.
func (m JobMeta) Terminal() bool {
	switch m.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// SweepSpec is the body of POST /v2/sweeps.
type SweepSpec struct {
	Defaults JobSpec         `json:"defaults"`
	Seeds    []uint64        `json:"seeds,omitempty"`
	Configs  []ggpdes.Config `json:"configs,omitempty"`
}

// SweepStatus is the /v2/sweeps/{id} payload.
type SweepStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`

	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	Members []JobMeta `json:"members"`
}

// SweepEvent is one member completion on the sweep's SSE stream.
type SweepEvent struct {
	Seq     int             `json:"seq"`
	Index   int             `json:"index"`
	Job     JobMeta         `json:"job"`
	Results *ggpdes.Results `json:"results,omitempty"`
}

// PeerHealth is one peer's reachability in the healthz payload.
type PeerHealth struct {
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// Health is the /v2/healthz payload.
type Health struct {
	Status      string       `json:"status"`
	Draining    bool         `json:"draining,omitempty"`
	Workers     int          `json:"workers"`
	QueueDepth  int          `json:"queue_depth"`
	QueueLen    int          `json:"queue_len"`
	QueueFree   int          `json:"queue_free"`
	Queued      int          `json:"queued"`
	Running     int          `json:"running"`
	ClusterSize int          `json:"cluster_size,omitempty"`
	Peers       []PeerHealth `json:"peers,omitempty"`
}

// Version is the /v2/version payload.
type Version struct {
	Service          string `json:"service"`
	API              string `json:"api"`
	APIRevision      int    `json:"api_revision"`
	CheckpointFormat int    `json:"checkpoint_format"`
	GoVersion        string `json:"go_version"`
	MaxAttempts      int    `json:"max_attempts"`
}

// Stats is the /v2/stats payload: a full telemetry snapshot.
type Stats struct {
	Counters   map[string]uint64               `json:"counters"`
	Gauges     map[string]telemetry.GaugeState `json:"gauges"`
	Histograms map[string]telemetry.Summary    `json:"histograms"`
}

// Client talks to one ggserved replica over /v2.
type Client struct {
	base string
	http *http.Client
	// Poll is the status-polling cadence Wait uses (default 25ms).
	Poll time.Duration
}

// New builds a client for the replica at base ("http://host:port").
// The optional http.Client overrides the transport (nil uses a
// dedicated default client with no global state).
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: hc, Poll: 25 * time.Millisecond}
}

// Base returns the server address the client was built with.
func (c *Client) Base() string { return c.base }

// wire body wrappers (mirroring httpv2.go).
type jobBody struct {
	Job JobMeta `json:"job"`
}

type jobResultBody struct {
	Job     JobMeta         `json:"job"`
	Results *ggpdes.Results `json:"results"`
}

type jobSeriesBody struct {
	Job    JobMeta                 `json:"job"`
	Total  int                     `json:"total_points"`
	Points []telemetry.SeriesPoint `json:"points"`
}

type sweepBody struct {
	Sweep SweepStatus `json:"sweep"`
}

// do performs one /v2 request: in (when non-nil) is the JSON body,
// out (when non-nil) receives the decoded 2xx response. Every non-2xx
// answer is returned as *Error, decoded from the envelope when the
// body carries one.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into *Error.
func decodeError(resp *http.Response) error {
	e := &Error{Code: "internal", Message: resp.Status, HTTPStatus: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		e.RetryAfterSeconds, _ = strconv.Atoi(ra)
	}
	var envelope struct {
		Error *ErrorInfo `json:"error"`
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err == nil && json.Unmarshal(data, &envelope) == nil && envelope.Error != nil {
		e.Code = envelope.Error.Code
		e.Message = envelope.Error.Message
		e.Retryable = envelope.Error.Retryable
	}
	return e
}

// Submit posts one job. A warm cache answers with a done JobMeta
// immediately (Cached=true); otherwise the job is queued.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobMeta, error) {
	var out jobBody
	err := c.do(ctx, http.MethodPost, "/v2/jobs", spec, &out)
	return out.Job, err
}

// Status fetches a job's current JobMeta.
func (c *Client) Status(ctx context.Context, id string) (JobMeta, error) {
	var out jobBody
	err := c.do(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(id), nil, &out)
	return out.Job, err
}

// Result fetches a done job's results. A still-running job returns
// its meta with nil Results and nil error (check meta.Terminal());
// a failed or cancelled job returns the typed *Error alongside the
// zero meta.
func (c *Client) Result(ctx context.Context, id string) (JobMeta, *ggpdes.Results, error) {
	var out jobResultBody
	err := c.do(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(id)+"/result", nil, &out)
	return out.Job, out.Results, err
}

// Series fetches a job's per-GVT-round observability series.
func (c *Client) Series(ctx context.Context, id string) (JobMeta, []telemetry.SeriesPoint, int, error) {
	var out jobSeriesBody
	err := c.do(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(id)+"/series", nil, &out)
	return out.Job, out.Points, out.Total, err
}

// Cancel requests a job's cancellation and returns its updated meta.
func (c *Client) Cancel(ctx context.Context, id string) (JobMeta, error) {
	var out jobBody
	err := c.do(ctx, http.MethodDelete, "/v2/jobs/"+url.PathEscape(id), nil, &out)
	return out.Job, err
}

// Wait polls a job's status until it reaches a terminal state or ctx
// expires. The terminal meta is returned even for failed jobs — the
// error is the context's when polling was cut short.
func (c *Client) Wait(ctx context.Context, id string) (JobMeta, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		meta, err := c.Status(ctx, id)
		if err != nil {
			return meta, err
		}
		if meta.Terminal() {
			return meta, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return meta, context.Cause(ctx)
		}
	}
}

// Sweep submits a parameter sweep and returns its initial status.
func (c *Client) Sweep(ctx context.Context, spec SweepSpec) (SweepStatus, error) {
	var out sweepBody
	err := c.do(ctx, http.MethodPost, "/v2/sweeps", spec, &out)
	return out.Sweep, err
}

// GetSweep fetches a sweep's aggregate status.
func (c *Client) GetSweep(ctx context.Context, id string) (SweepStatus, error) {
	var out sweepBody
	err := c.do(ctx, http.MethodGet, "/v2/sweeps/"+url.PathEscape(id), nil, &out)
	return out.Sweep, err
}

// CancelSweep cancels every still-running member of a sweep.
func (c *Client) CancelSweep(ctx context.Context, id string) (SweepStatus, error) {
	var out sweepBody
	err := c.do(ctx, http.MethodDelete, "/v2/sweeps/"+url.PathEscape(id), nil, &out)
	return out.Sweep, err
}

// SweepEvents subscribes to a sweep's SSE stream and invokes fn once
// per member completion, in completion order (members settled before
// the subscription are replayed first). It returns the final sweep
// status from the stream's closing "done" event; a stream the server
// ends with a terminal "error" event instead (sweep evicted from
// retention mid-stream) returns that envelope as *Error. fn returning
// an error aborts the stream with that error.
func (c *Client) SweepEvents(ctx context.Context, id string, fn func(SweepEvent) error) (SweepStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v2/sweeps/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return SweepStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return SweepStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return SweepStatus{}, decodeError(resp)
	}

	var event string
	var data bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		// The SSE spec terminates lines with LF, CRLF, or CR; Scanner
		// splits on LF, so a CRLF stream leaves the CR for us to strip.
		line := strings.TrimSuffix(sc.Text(), "\r")
		switch {
		case line == "":
			// Blank line: dispatch the accumulated event.
			switch event {
			case "result":
				var ev SweepEvent
				if err := json.Unmarshal(data.Bytes(), &ev); err != nil {
					return SweepStatus{}, fmt.Errorf("sweep event: %w", err)
				}
				if fn != nil {
					if err := fn(ev); err != nil {
						return SweepStatus{}, err
					}
				}
			case "done":
				var out sweepBody
				if err := json.Unmarshal(data.Bytes(), &out); err != nil {
					return SweepStatus{}, fmt.Errorf("sweep done event: %w", err)
				}
				return out.Sweep, nil
			case "error":
				// The server ended the stream abnormally (e.g. the sweep
				// was evicted from retention mid-stream) and sent the
				// envelope as a terminal event instead of a done.
				var envelope struct {
					Error *ErrorInfo `json:"error"`
				}
				if err := json.Unmarshal(data.Bytes(), &envelope); err != nil || envelope.Error == nil {
					return SweepStatus{}, fmt.Errorf("sweep error event: %s", data.String())
				}
				return SweepStatus{}, &Error{
					Code:       envelope.Error.Code,
					Message:    envelope.Error.Message,
					Retryable:  envelope.Error.Retryable,
					HTTPStatus: resp.StatusCode,
				}
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, ":"):
			// Comment line — heartbeats proxies and servers inject to
			// keep the connection alive. Ignored per spec.
		case strings.HasPrefix(line, "event:"):
			event = sseFieldValue(line, "event:")
		case strings.HasPrefix(line, "data:"):
			// Multiple data: lines in one event concatenate with a
			// newline between them (the spec appends LF after each and
			// strips the final one — equivalent to joining with "\n").
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(sseFieldValue(line, "data:"))
		}
		// id: lines are informational; seq rides in the payload too.
	}
	if err := sc.Err(); err != nil {
		return SweepStatus{}, err
	}
	return SweepStatus{}, fmt.Errorf("sweep stream ended without a done event")
}

// sseFieldValue extracts an SSE field's value: everything after the
// "name:" prefix, minus at most one leading space (the spec makes the
// space after the colon optional, and only the first one is cosmetic).
func sseFieldValue(line, prefix string) string {
	v := strings.TrimPrefix(line, prefix)
	return strings.TrimPrefix(v, " ")
}

// Healthz fetches the health payload. The body is returned even when
// the server answers 503 (draining) — check Status/Draining; the
// error is non-nil only for transport or decode failures.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v2/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, err
	}
	return h, nil
}

// Version fetches the server's version payload.
func (c *Client) Version(ctx context.Context) (Version, error) {
	var v Version
	err := c.do(ctx, http.MethodGet, "/v2/version", nil, &v)
	return v, err
}

// Stats fetches the server's full telemetry snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var s Stats
	err := c.do(ctx, http.MethodGet, "/v2/stats", nil, &s)
	return s, err
}
