package client

// Raw-byte tests for the SweepEvents SSE parser. The serve package's
// round-trip tests cover the happy path through a real Manager; these
// pin the parser against the wire shapes the SSE spec allows but our
// own server happens not to emit — CRLF line endings, multi-line data
// fields, comment heartbeats, fields without the cosmetic space after
// the colon — plus the failure shapes: EOF mid-event and a consumer
// cancelling mid-stream.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseServer serves the given raw bytes as a /v2 sweep event stream.
func sseServer(t *testing.T, raw string) *Client {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(raw))
	}))
	t.Cleanup(srv.Close)
	return New(srv.URL, nil)
}

func TestSweepEventsCRLF(t *testing.T) {
	// Every line terminated \r\n, as a proxy normalizing to CRLF would
	// send it. The trailing \r must not corrupt field values or stop
	// the blank-line dispatch from firing.
	raw := strings.Join([]string{
		"id: 0\r",
		"event: result\r",
		`data: {"seq":0,"index":2,"job":{"id":"j1","state":"done"}}` + "\r",
		"\r",
		"id: 1\r",
		"event: done\r",
		`data: {"sweep":{"id":"s1","state":"done","total":1,"done":1}}` + "\r",
		"\r",
	}, "\n") + "\n"
	c := sseServer(t, raw)
	var got []SweepEvent
	final, err := c.SweepEvents(context.Background(), "s1", func(ev SweepEvent) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("SweepEvents: %v", err)
	}
	if len(got) != 1 || got[0].Index != 2 || got[0].Job.ID != "j1" {
		t.Errorf("events = %+v, want one result for job j1 index 2", got)
	}
	if final.ID != "s1" || final.State != "done" {
		t.Errorf("final = %+v, want sweep s1 done", final)
	}
}

func TestSweepEventsMultiLineData(t *testing.T) {
	// The spec joins multiple data: lines with "\n". JSON tolerates the
	// newline between tokens, so a split payload must still decode —
	// and must NOT be concatenated without the separator (which would
	// glue "2," and "\"job\"" into different, still-valid JSON only by
	// luck; here the split is mid-string so naive concatenation without
	// the newline yields a different value).
	raw := "event: result\n" +
		"data: {\"seq\":0,\"index\":7,\n" +
		"data: \"job\":{\"id\":\"j2\",\"state\":\"done\"}}\n" +
		"\n" +
		"event: done\n" +
		"data: {\"sweep\":{\"id\":\"s2\",\"state\":\"done\"}}\n" +
		"\n"
	c := sseServer(t, raw)
	var got []SweepEvent
	final, err := c.SweepEvents(context.Background(), "s2", func(ev SweepEvent) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("SweepEvents: %v", err)
	}
	if len(got) != 1 || got[0].Index != 7 || got[0].Job.ID != "j2" {
		t.Errorf("events = %+v, want one result for job j2 index 7", got)
	}
	if final.ID != "s2" {
		t.Errorf("final = %+v, want sweep s2", final)
	}
}

func TestSweepEventsCommentsAndBareColons(t *testing.T) {
	// Comment lines (leading colon) are heartbeats — ignored, and in
	// particular they must not dispatch or corrupt the pending event.
	// Field colons without the cosmetic space are also legal.
	raw := ":keepalive\n" +
		"event:result\n" +
		":another heartbeat mid-event\n" +
		`data:{"seq":0,"index":1,"job":{"id":"j3","state":"failed"}}` + "\n" +
		"\n" +
		":between events\n" +
		"event:done\n" +
		`data:{"sweep":{"id":"s3","state":"done"}}` + "\n" +
		"\n"
	c := sseServer(t, raw)
	var got []SweepEvent
	final, err := c.SweepEvents(context.Background(), "s3", func(ev SweepEvent) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("SweepEvents: %v", err)
	}
	if len(got) != 1 || got[0].Job.State != "failed" {
		t.Errorf("events = %+v, want one failed-job result", got)
	}
	if final.ID != "s3" {
		t.Errorf("final = %+v, want sweep s3", final)
	}
}

func TestSweepEventsEOFMidEvent(t *testing.T) {
	// The connection dies after the event line but before the blank
	// line that would dispatch it. The half-received event must not be
	// delivered, and the missing done must surface as an error.
	raw := "event: result\n" +
		`data: {"seq":0,"index":0,"job":{"id":"j4","state":"done"}}` + "\n"
	c := sseServer(t, raw)
	calls := 0
	_, err := c.SweepEvents(context.Background(), "s4", func(SweepEvent) error {
		calls++
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "without a done event") {
		t.Errorf("err = %v, want stream-ended-without-done", err)
	}
	if calls != 0 {
		t.Errorf("fn called %d times for an undispatched half event, want 0", calls)
	}
}

func TestSweepEventsTerminalError(t *testing.T) {
	// A server-side terminal error event becomes a typed *Error.
	raw := "event: error\n" +
		`data: {"error":{"code":"not_found","message":"sweep evicted"}}` + "\n" +
		"\n"
	c := sseServer(t, raw)
	_, err := c.SweepEvents(context.Background(), "s5", nil)
	var e *Error
	if !errors.As(err, &e) || e.Code != "not_found" {
		t.Errorf("err = %v, want *Error with code not_found", err)
	}
}

// TestSweepEventsCancelMidStream runs the race-prone path: the server
// keeps the stream open and flushing while the consumer's context is
// cancelled from another goroutine. Run under -race, this pins that
// cancellation tears the stream down without a data race and surfaces
// a context error rather than hanging or fabricating a final status.
func TestSweepEventsCancelMidStream(t *testing.T) {
	firstEvent := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		for i := 0; ; i++ {
			_, err := fmt.Fprintf(w, "event: result\ndata: {\"seq\":%d,\"index\":%d,\"job\":{\"id\":\"j\",\"state\":\"done\"}}\n\n", i, i)
			if err != nil {
				return
			}
			fl.Flush()
			if i == 0 {
				close(firstEvent)
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := New(srv.URL, nil)

	errc := make(chan error, 1)
	go func() {
		_, err := c.SweepEvents(ctx, "s6", func(SweepEvent) error { return nil })
		errc <- err
	}()

	<-firstEvent
	cancel()

	select {
	case err := <-errc:
		if err == nil {
			t.Error("SweepEvents returned nil after mid-stream cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SweepEvents did not return after cancellation")
	}
}

// TestSweepEventsConsumerAbort pins that fn returning an error aborts
// the stream with that error instead of waiting for a done frame.
func TestSweepEventsConsumerAbort(t *testing.T) {
	raw := "event: result\n" +
		`data: {"seq":0,"index":0,"job":{"id":"j7","state":"done"}}` + "\n" +
		"\n" +
		"event: done\n" +
		`data: {"sweep":{"id":"s7","state":"done"}}` + "\n" +
		"\n"
	c := sseServer(t, raw)
	abort := errors.New("enough")
	_, err := c.SweepEvents(context.Background(), "s7", func(SweepEvent) error { return abort })
	if !errors.Is(err, abort) {
		t.Errorf("err = %v, want the consumer's abort error", err)
	}
}
