package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"

	"ggpdes/internal/checkpoint"
)

// This file is the /v2 HTTP surface (API revision 4): the typed error
// envelope everywhere, JobMeta-shaped payloads, sweeps with SSE
// streaming, the richer healthz, and the cluster-internal fill/
// delegate endpoints. The /v1 handlers in http.go stay as the
// compatibility shim.

// writeError writes the /v2 envelope for err via classify.
func writeError(w http.ResponseWriter, err error, fbCode string, fbStatus int) {
	code, info := classify(err, fbCode, fbStatus)
	writeJSON(w, code, errorEnvelope{Error: info})
}

// writeNotFound writes the envelope for an unknown job or sweep id.
func writeNotFound(w http.ResponseWriter, what string) {
	writeJSON(w, http.StatusNotFound, errorEnvelope{Error: ErrorInfo{
		Code: CodeNotFound, Message: "unknown " + what,
	}})
}

// retryAfterSeconds derives the 429 backoff hint from queue occupancy
// instead of the wall clock: with every worker busy, a full queue
// drains in about queueLen/workers service times, so that ratio (in
// seconds, floored at 1, capped at 60) is the deterministic hint.
// Identical server state always produces an identical header, which
// keeps backpressure tests timing-insensitive.
func retryAfterSeconds(queueLen, workers int) int {
	if workers < 1 {
		workers = 1
	}
	s := (queueLen + workers - 1) / workers
	if s < 1 {
		s = 1
	}
	if s > 60 {
		s = 60
	}
	return s
}

// setRetryAfter stamps the deterministic Retry-After header for a
// queue-full rejection.
func (m *Manager) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(len(m.queue), m.opts.Workers)))
}

// jobBody is the /v2 job payload: JobMeta alone for status, plus
// results or series where the endpoint carries them.
type jobBody struct {
	Job JobMeta `json:"job"`
}

type jobResultBody struct {
	Job     JobMeta `json:"job"`
	Results any     `json:"results"`
}

// jobErrorBody is the non-2xx body for a job that reached a terminal
// failure: the standard envelope (so every /v2 error body has a
// top-level "error") plus the job's full meta.
type jobErrorBody struct {
	Error ErrorInfo `json:"error"`
	Job   JobMeta   `json:"job"`
}

// writeJobError writes a terminal job's failure at its code's status.
func writeJobError(w http.ResponseWriter, meta JobMeta) {
	info := ErrorInfo{Code: CodeFailed, Message: "job failed"}
	if meta.Error != nil {
		info = *meta.Error
	}
	writeJSON(w, metaStatus(meta), jobErrorBody{Error: info, Job: meta})
}

func (m *Manager) v2Submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("invalid JSON body: %w", err), CodeInvalidConfig, http.StatusBadRequest)
		return
	}
	st, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		m.setRetryAfter(w)
		writeError(w, err, CodeInternal, http.StatusInternalServerError)
	case err != nil:
		writeError(w, err, CodeInternal, http.StatusInternalServerError)
	case st.Cached:
		writeJSON(w, http.StatusOK, jobBody{Job: st.Meta()})
	default:
		writeJSON(w, http.StatusAccepted, jobBody{Job: st.Meta()})
	}
}

func (m *Manager) v2Status(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeNotFound(w, "job")
		return
	}
	writeJSON(w, http.StatusOK, jobBody{Job: st.Meta()})
}

func (m *Manager) v2Result(w http.ResponseWriter, r *http.Request) {
	res, st, ok := m.Result(r.PathValue("id"))
	if !ok {
		writeNotFound(w, "job")
		return
	}
	meta := st.Meta()
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, jobResultBody{Job: meta, Results: res})
	case StateFailed, StateCancelled:
		writeJobError(w, meta)
	default:
		writeJSON(w, http.StatusAccepted, jobBody{Job: meta})
	}
}

// jobSeriesBody mirrors /v1's series payload in the /v2 shape.
type jobSeriesBody struct {
	Job    JobMeta `json:"job"`
	Total  int     `json:"total_points"`
	Points any     `json:"points"`
}

func (m *Manager) v2Series(w http.ResponseWriter, r *http.Request) {
	pts, total, st, ok := m.Series(r.PathValue("id"))
	if !ok {
		writeNotFound(w, "job")
		return
	}
	body := jobSeriesBody{Job: st.Meta(), Total: total, Points: pts}
	if pts == nil {
		body.Points = []struct{}{}
	}
	writeJSON(w, http.StatusOK, body)
}

func (m *Manager) v2Cancel(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Cancel(r.PathValue("id"))
	if !ok {
		writeNotFound(w, "job")
		return
	}
	writeJSON(w, http.StatusOK, jobBody{Job: st.Meta()})
}

type sweepBody struct {
	Sweep SweepStatus `json:"sweep"`
}

func (m *Manager) v2SubmitSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("invalid JSON body: %w", err), CodeInvalidConfig, http.StatusBadRequest)
		return
	}
	st, err := m.SubmitSweep(spec)
	if err != nil {
		writeError(w, err, CodeInternal, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusAccepted, sweepBody{Sweep: st})
}

func (m *Manager) v2SweepStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := m.GetSweep(r.PathValue("id"))
	if !ok {
		writeNotFound(w, "sweep")
		return
	}
	writeJSON(w, http.StatusOK, sweepBody{Sweep: st})
}

func (m *Manager) v2CancelSweep(w http.ResponseWriter, r *http.Request) {
	st, ok := m.CancelSweep(r.PathValue("id"))
	if !ok {
		writeNotFound(w, "sweep")
		return
	}
	writeJSON(w, http.StatusOK, sweepBody{Sweep: st})
}

// v2SweepEvents streams the sweep's completions as Server-Sent
// Events: one `event: result` per member in completion order (already
// settled members replay immediately, so a late subscriber misses
// nothing), then one `event: done` carrying the final SweepStatus. A
// sweep evicted from retention mid-stream ends with one `event: error`
// carrying the /v2 envelope instead of a done. The stream also ends
// when the client goes away.
func (m *Manager) v2SweepEvents(w http.ResponseWriter, r *http.Request) {
	if _, ok := m.GetSweep(r.PathValue("id")); !ok {
		writeNotFound(w, "sweep")
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	id := r.PathValue("id")
	next := 0
	for {
		evs, finished, wake, ok := m.sweepEventsSince(id, next)
		if !ok {
			// Evicted from retention mid-stream. End the stream with a
			// terminal error event so the client sees a typed failure
			// instead of a silent close it can't tell from success.
			_ = writeSSE(w, "error", next, errorEnvelope{Error: ErrorInfo{
				Code:    CodeNotFound,
				Message: "sweep evicted from retention before the stream finished",
			}})
			if canFlush {
				fl.Flush()
			}
			return
		}
		for _, ev := range evs {
			if err := writeSSE(w, "result", ev.Seq, ev); err != nil {
				return
			}
		}
		next += len(evs)
		if canFlush && len(evs) > 0 {
			fl.Flush()
		}
		if finished {
			final, ok := m.GetSweep(id)
			if !ok {
				// Evicted between the last sweepEventsSince and here: a
				// zero-value done frame would tell the client the sweep
				// succeeded with no members. Terminate with the same typed
				// error the mid-stream eviction path uses.
				_ = writeSSE(w, "error", next, errorEnvelope{Error: ErrorInfo{
					Code:    CodeNotFound,
					Message: "sweep evicted from retention before the stream finished",
				}})
				if canFlush {
					fl.Flush()
				}
				return
			}
			_ = writeSSE(w, "done", next, sweepBody{Sweep: final})
			if canFlush {
				fl.Flush()
			}
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE writes one Server-Sent Event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, id int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
	return err
}

func (m *Manager) v2Version(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, versionBody{
		Service:          "ggserved",
		API:              "v2",
		APIRevision:      apiRevision,
		CheckpointFormat: checkpoint.Version,
		GoVersion:        runtime.Version(),
		MaxAttempts:      m.opts.MaxAttempts,
	})
}

func (m *Manager) v2Healthz(w http.ResponseWriter, r *http.Request) {
	h := m.Health(r.Context())
	code := http.StatusOK
	if h.Draining {
		// Degraded still answers 200 — this replica can serve; peers
		// being down is advisory. Draining is the only state a load
		// balancer must stop routing to.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// Cluster-internal endpoints. They live under /v2/cluster/ and speak
// the same envelope; replicas are the only intended callers.

func (m *Manager) v2ClusterPing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// v2ClusterResult is the fill protocol's server side: a bare cache
// lookup, 200 with the Results on a hit, not_found on a miss. It
// never simulates — fills must stay cheap or routing would amplify
// load instead of shedding it.
func (m *Manager) v2ClusterResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok := m.cache.get(key)
	if !ok {
		writeNotFound(w, "cached result")
		return
	}
	if m.clu != nil {
		m.clu.NoteFillServed()
	}
	writeJSON(w, http.StatusOK, res)
}

// v2ClusterRun is delegation's server side: run the spec as our own
// job (cache, single-flight, retries and all) and block until it
// settles, answering with the result or its typed failure. NoForward
// is forced so a stale peer list cannot create routing loops.
func (m *Manager) v2ClusterRun(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("invalid JSON body: %w", err), CodeInvalidConfig, http.StatusBadRequest)
		return
	}
	spec.NoForward = true
	if m.clu != nil {
		m.clu.NoteRemoteJob()
	}
	st, err := m.Submit(spec)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			m.setRetryAfter(w)
		}
		writeError(w, err, CodeInternal, http.StatusInternalServerError)
		return
	}
	final, err := m.Wait(r.Context(), st.ID)
	if err != nil {
		// The requester hung up (or died); the job keeps running here
		// and lands in the cache for its retry.
		return
	}
	meta := final.Meta()
	if final.State != StateDone {
		writeJobError(w, meta)
		return
	}
	res, _, _ := m.Result(st.ID)
	writeJSON(w, http.StatusOK, jobResultBody{Job: meta, Results: res})
}
