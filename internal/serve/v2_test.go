package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ggpdes"
	"ggpdes/internal/serve/client"
	"ggpdes/internal/serve/cluster"
	"ggpdes/internal/telemetry"
)

// startV2 boots one server and a typed client against it. New /v2
// coverage goes through the client: the round trip is the compile-
// and run-time proof the client and server wire shapes agree.
func startV2(t *testing.T, opts Options) (*Manager, *client.Client) {
	t.Helper()
	m, srv := startServer(t, opts)
	return m, client.New(srv.URL, nil)
}

func v2ctx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// clientSpec converts a server-side test spec to the client shape.
func clientSpec(spec JobSpec) client.JobSpec {
	return client.JobSpec{
		Config:          spec.Config,
		TimeoutSeconds:  spec.TimeoutSeconds,
		NoCache:         spec.NoCache,
		MaxAttempts:     spec.MaxAttempts,
		CheckpointEvery: spec.CheckpointEvery,
	}
}

// The full happy path through the typed client: submit, wait, result,
// series, cached resubmit, version, stats.
func TestV2ClientRoundTrip(t *testing.T) {
	_, c := startV2(t, Options{Workers: 2, QueueDepth: 4, SeriesLimit: 64})
	ctx := v2ctx(t)

	meta, err := c.Submit(ctx, clientSpec(quickSpec(4600)))
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID == "" || meta.Key == "" {
		t.Fatalf("submit meta: %+v", meta)
	}
	final, err := c.Wait(ctx, meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.QueueSeconds < 0 {
		t.Fatalf("final meta: %+v", final)
	}

	rmeta, res, err := c.Result(ctx, meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rmeta.ID != meta.ID || res == nil || res.CommittedEvents == 0 {
		t.Fatalf("result: meta %+v res %+v", rmeta, res)
	}

	_, pts, total, err := c.Series(ctx, meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || len(pts) == 0 {
		t.Fatalf("series empty: total %d, %d points", total, len(pts))
	}

	again, err := c.Submit(ctx, clientSpec(quickSpec(4600)))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Source != "cache" || again.State != "done" {
		t.Fatalf("resubmit not a typed cache hit: %+v", again)
	}

	ver, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ver.API != "v2" || ver.APIRevision != apiRevision {
		t.Fatalf("version: %+v", ver)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters[MetricSimulations] != 1 || stats.Counters[MetricCacheHits] != 1 {
		t.Fatalf("stats counters: %v", stats.Counters)
	}
}

// Every /v2 failure arrives as *client.Error carrying the envelope's
// code, message, and retryability.
func TestV2ErrorEnvelope(t *testing.T) {
	_, c := startV2(t, Options{Workers: 1, QueueDepth: 2})
	ctx := v2ctx(t)

	check := func(err error, code string, status int, retryable bool) *client.Error {
		t.Helper()
		var ce *client.Error
		if !errors.As(err, &ce) {
			t.Fatalf("error %v is not a *client.Error", err)
		}
		if ce.Code != code || ce.HTTPStatus != status || ce.Retryable != retryable {
			t.Fatalf("envelope %+v, want code %s status %d retryable %t", ce, code, status, retryable)
		}
		return ce
	}

	// Invalid config → 400 invalid_config.
	bad := clientSpec(quickSpec(1))
	bad.Config.Threads = -1
	_, err := c.Submit(ctx, bad)
	check(err, CodeInvalidConfig, http.StatusBadRequest, false)

	// Unknown job → 404 not_found, on every job endpoint.
	_, err = c.Status(ctx, "job-missing")
	check(err, CodeNotFound, http.StatusNotFound, false)
	_, _, err = c.Result(ctx, "job-missing")
	check(err, CodeNotFound, http.StatusNotFound, false)
	_, err = c.Cancel(ctx, "job-missing")
	check(err, CodeNotFound, http.StatusNotFound, false)
	_, err = c.GetSweep(ctx, "sweep-missing")
	check(err, CodeNotFound, http.StatusNotFound, false)

	// A sweep with no members → 400 invalid_config.
	_, err = c.Sweep(ctx, client.SweepSpec{Defaults: clientSpec(quickSpec(1))})
	check(err, CodeInvalidConfig, http.StatusBadRequest, false)

	// A cancelled job's result → 409 cancelled, with the job meta
	// alongside the envelope.
	long := clientSpec(longSpec())
	long.NoCache = true
	meta, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, meta.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "cancelled" || final.Error == nil || final.Error.Code != CodeCancelled {
		t.Fatalf("cancelled meta: %+v", final)
	}
	_, _, err = c.Result(ctx, meta.ID)
	check(err, CodeCancelled, http.StatusConflict, false)
}

// A full queue answers 429 with a Retry-After derived from queue
// occupancy — deterministic, not wall-clock — and the queue_full
// envelope marks it retryable.
func TestV2QueueFullRetryAfter(t *testing.T) {
	m, c := startV2(t, Options{Workers: 1, QueueDepth: 3})
	ctx := v2ctx(t)

	// One running plus a full queue: all distinct NoCache long jobs so
	// nothing coalesces.
	var ids []string
	for i := 0; i < 4; i++ {
		spec := clientSpec(longSpec())
		spec.Config.Seed = uint64(4700 + i)
		spec.NoCache = true
		meta, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, meta.ID)
	}
	waitRunning(t, m, ids[0])

	spec := clientSpec(longSpec())
	spec.Config.Seed = 4799
	spec.NoCache = true
	_, err := c.Submit(ctx, spec)
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != CodeQueueFull || !ce.Retryable {
		t.Fatalf("full queue error: %v", err)
	}
	// 3 queued jobs, 1 worker → exactly ceil(3/1) = 3 seconds, every
	// time.
	if ce.RetryAfterSeconds != 3 {
		t.Fatalf("Retry-After %d, want 3", ce.RetryAfterSeconds)
	}
	for _, id := range ids {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRetryAfterSecondsTable(t *testing.T) {
	cases := []struct{ queue, workers, want int }{
		{0, 1, 1},
		{1, 1, 1},
		{3, 1, 3},
		{8, 4, 2},
		{9, 4, 3},
		{1000, 2, 60}, // capped
		{5, 0, 5},     // workers floored at 1
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.queue, tc.workers); got != tc.want {
			t.Errorf("retryAfterSeconds(%d, %d) = %d, want %d", tc.queue, tc.workers, got, tc.want)
		}
	}
}

// healthz reports queue occupancy, and — when clustered — the fleet:
// reachable peers keep status "ok", an unreachable peer degrades it
// without turning away traffic (200).
func TestV2HealthzCluster(t *testing.T) {
	ctx := v2ctx(t)

	// Single node: no cluster block at all.
	_, c := startV2(t, Options{Workers: 2, QueueDepth: 4})
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 || h.QueueDepth != 4 || h.ClusterSize != 0 || len(h.Peers) != 0 {
		t.Fatalf("single-node health: %+v", h)
	}
	if h.QueueFree != 4 {
		t.Fatalf("idle queue reports %d free of %d", h.QueueFree, h.QueueDepth)
	}

	// Clustered with a dead peer: degraded, still 200, peer error named.
	reg := telemetry.NewRegistry()
	clu := cluster.New(cluster.Options{
		Self:        "127.0.0.1:1",
		Peers:       []string{"127.0.0.1:2"}, // reserved port, nothing listens
		Registry:    reg,
		PingTimeout: 100 * time.Millisecond,
	})
	m := New(Options{Workers: 1, Registry: reg, Cluster: clu})
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() { srv.Close(); drain(t, m) })
	dc := client.New(srv.URL, nil)

	h, err = dc.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.ClusterSize != 2 || len(h.Peers) != 1 {
		t.Fatalf("degraded health: %+v", h)
	}
	if h.Peers[0].OK || h.Peers[0].Error == "" {
		t.Fatalf("dead peer reported healthy: %+v", h.Peers[0])
	}

	// Draining is the one state that flips healthz to 503.
	drain(t, m)
	resp, err := http.Get(srv.URL + "/v2/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
}

// Every /v1 response carries the deprecation headers pointing at /v2;
// /v2 responses carry neither.
func TestV1DeprecationHeaders(t *testing.T) {
	_, srv := startServer(t, Options{Workers: 1})

	for _, path := range []string{"/v1/healthz", "/v1/version", "/v1/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("%s missing Deprecation header", path)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, `</v2>; rel="successor-version"`) {
			t.Fatalf("%s Link header %q", path, link)
		}
	}

	resp, err := http.Get(srv.URL + "/v2/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v2 response carries a Deprecation header")
	}
}

// Sweeps on a single node: members validated atomically, duplicates
// deduped locally, cancellation settles the rest.
func TestV2SweepSingleNode(t *testing.T) {
	_, c := startV2(t, Options{Workers: 2, QueueDepth: 16})
	ctx := v2ctx(t)

	// A sweep mixing seeds and config members.
	cfg := quickSpec(4801).Config
	cfg.Seed = 4802
	st, err := c.Sweep(ctx, client.SweepSpec{
		Defaults: clientSpec(quickSpec(0)),
		Seeds:    []uint64{4801, 4801},
		Configs:  []ggpdes.Config{cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 {
		t.Fatalf("sweep total %d, want 3", st.Total)
	}
	final, err := c.SweepEvents(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Done != 3 {
		t.Fatalf("final sweep: %+v", final)
	}

	// The duplicated seed simulated once (cache or in-flight dedup).
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters[MetricSimulations] != 2 {
		t.Fatalf("%d simulations for 3 members (2 unique), want 2", stats.Counters[MetricSimulations])
	}

	// Cancelling a running sweep settles every member.
	long := client.SweepSpec{Defaults: clientSpec(longSpec()), Seeds: []uint64{4901, 4902, 4903}}
	long.Defaults.NoCache = true
	lst, err := c.Sweep(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelSweep(ctx, lst.ID); err != nil {
		t.Fatal(err)
	}
	lfinal, err := c.SweepEvents(ctx, lst.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lfinal.State != "cancelled" || lfinal.Cancelled == 0 {
		t.Fatalf("cancelled sweep: %+v", lfinal)
	}
}

// The v1 JSON bodies are unchanged by the revision bump: Status still
// serializes with its string error, and the new Source field stays
// out of v1 payloads when empty.
func TestV1BodiesStable(t *testing.T) {
	_, srv := startServer(t, Options{Workers: 1, QueueDepth: 4})

	resp, st := postJob(t, srv, quickSpec(4950))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"id", "state", "key", "submitted_at"} {
		if _, ok := fields[want]; !ok {
			t.Fatalf("v1 status body lost field %q: %s", want, raw)
		}
	}
	if _, ok := fields["source"]; ok {
		t.Fatalf("v1 status body grew a source field for a fresh run: %s", raw)
	}
}

// A sweep evicted from retention while its SSE stream is open must end
// the stream with a terminal error event; the client surfaces it as a
// typed not_found *client.Error instead of the generic "stream ended
// without a done event".
func TestV2SweepEvictedMidStream(t *testing.T) {
	m, c := startV2(t, Options{Workers: 2, QueueDepth: 8})
	ctx := v2ctx(t)

	// Member 0 finishes fast (its event proves the stream is live);
	// member 1 runs until cancelled, holding the stream open.
	spec := client.SweepSpec{
		Defaults: client.JobSpec{Config: quickSpec(9100).Config},
		Configs:  []ggpdes.Config{quickSpec(9100).Config, longSpec().Config},
	}
	st, err := c.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	gotEvent := make(chan struct{}, 1)
	streamDone := make(chan struct{})
	var streamErr error
	go func() {
		defer close(streamDone)
		_, streamErr = c.SweepEvents(ctx, st.ID, func(ev client.SweepEvent) error {
			select {
			case gotEvent <- struct{}{}:
			default:
			}
			return nil
		})
	}()
	<-gotEvent

	// The fan-out submits members in order, so member 1 may not have a
	// job ID the instant member 0's event lands.
	var memberID string
	deadline := time.Now().Add(30 * time.Second)
	for memberID == "" {
		sw, ok := m.GetSweep(st.ID)
		if !ok {
			t.Fatal("sweep disappeared before eviction")
		}
		memberID = sw.Members[1].ID
		if time.Now().After(deadline) {
			t.Fatal("member 1 was never submitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Evict the sweep out from under the open stream, then settle the
	// remaining member so the stream wakes and notices.
	m.mu.Lock()
	delete(m.sweeps, st.ID)
	m.mu.Unlock()
	if _, ok := m.Cancel(memberID); !ok {
		t.Fatal("cancelling the long member failed")
	}

	<-streamDone
	var ce *client.Error
	if !errors.As(streamErr, &ce) || ce.Code != "not_found" {
		t.Fatalf("stream ended with %v, want a typed not_found error", streamErr)
	}
}
