package serve

import (
	"container/list"
	"sync"

	"ggpdes"
	"ggpdes/internal/telemetry"
)

// resultCache is a bounded LRU mapping Config.CacheKey values to
// completed Results. Runs are deterministic functions of the canonical
// config, so a hit is exactly the result a fresh run would produce.
// Entries are immutable once inserted: readers share the *Results
// pointer and must not mutate it.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	entries   *telemetry.Gauge
}

type cacheEntry struct {
	key string
	res *ggpdes.Results
}

// newResultCache builds a cache holding at most max entries. max <= 0
// disables caching: every lookup misses and puts are dropped.
func newResultCache(max int, reg *telemetry.Registry) *resultCache {
	return &resultCache{
		max:       max,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      reg.Counter(MetricCacheHits),
		misses:    reg.Counter(MetricCacheMisses),
		evictions: reg.Counter(MetricCacheEvictions),
		entries:   reg.Gauge(MetricCacheEntries),
	}
}

// get returns the cached result for key, recording a hit or miss.
func (c *resultCache) get(key string) (*ggpdes.Results, bool) {
	if c.max <= 0 {
		c.misses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).res, true
}

// peek is get without the hit/miss accounting, for re-checks that
// already recorded the lookup (Submit's under-lock race close).
func (c *resultCache) peek(key string) (*ggpdes.Results, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a completed result, evicting the least recently used
// entry past the bound.
func (c *resultCache) put(key string, res *ggpdes.Results) {
	if c.max <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.entries.Set(float64(c.ll.Len()))
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
