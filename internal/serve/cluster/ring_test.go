package cluster

import (
	"fmt"
	"testing"
)

// Every replica must compute the same owner for the same key whatever
// order its -peers flag listed the members in — that shared answer is
// the whole routing contract.
func TestRingOrderInvariant(t *testing.T) {
	a := newRing([]string{"h1:1", "h2:2", "h3:3"}, 64)
	b := newRing([]string{"h3:3", "h1:1", "h2:2", "h2:2"}, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("sha256:%064x", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("key %d: owner %q (sorted list) != %q (shuffled list)", i, a.owner(key), b.owner(key))
		}
	}
}

// With virtual nodes the key split must be roughly even: no member
// should own more than twice its fair share over a large key sample.
func TestRingBalance(t *testing.T) {
	members := []string{"h1:1", "h2:2", "h3:3"}
	r := newRing(members, 64)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("sha256:%064x", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 1.0/(3*2) || share > 2.0/3 {
			t.Fatalf("member %s owns %.1f%% of keys (counts %v)", m, share*100, counts)
		}
	}
}

// A single-member ring routes everything to that member, and an empty
// ring routes nowhere.
func TestRingDegenerate(t *testing.T) {
	one := newRing([]string{"only:1"}, 8)
	if got := one.owner("sha256:abc"); got != "only:1" {
		t.Fatalf("single-member ring routed to %q", got)
	}
	empty := newRing(nil, 8)
	if got := empty.owner("sha256:abc"); got != "" {
		t.Fatalf("empty ring routed to %q", got)
	}
}

// Cluster.Owner must identify self vs peer against the same ring.
func TestClusterOwnerSelf(t *testing.T) {
	members := []string{"h1:1", "h2:2", "h3:3"}
	views := make([]*Cluster, len(members))
	for i, self := range members {
		views[i] = New(Options{Self: self, Peers: members})
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sha256:%064x", i)
		owner := views[0].ring.owner(key)
		for _, v := range views {
			p, self := v.Owner(key)
			if self != (v.Self() == owner) {
				t.Fatalf("key %d: view %s disagrees on self-ownership of %s", i, v.Self(), owner)
			}
			if !self && p.Addr() != owner {
				t.Fatalf("key %d: view %s routed to %s, ring says %s", i, v.Self(), p.Addr(), owner)
			}
		}
	}
}
