// Package cluster turns independent ggserved replicas into a fleet
// with one logical content-addressed result cache. Replicas share a
// static member list; a consistent-hash ring over Config.CacheKey
// assigns every key an owning replica; non-owners first try to fill
// from the owner's cache (GET /v2/cluster/result/{key}) and otherwise
// delegate the run to it (POST /v2/cluster/jobs), so each distinct
// config simulates at most once fleet-wide. Because runs are
// deterministic (DESIGN.md §10), a peer's cached result is exactly
// the result a local run would have produced — peering is sound, not
// just probably-fine.
//
// The package deliberately does not import internal/serve: it speaks
// the /v2 wire shapes directly (raw spec bytes in, Results out), so
// serve can depend on it without a cycle.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"ggpdes"
	"ggpdes/internal/telemetry"
)

// ErrPeerLost marks a peer that could not be reached or died mid-
// request: connection refused, reset, or EOF before a response. The
// serving layer treats it like dist.ErrWorkerLost — an environmental
// failure worth failing over from, not a job failure.
var ErrPeerLost = errors.New("cluster: peer unreachable")

// ErrNotCached is returned by FetchResult when the peer is healthy
// but does not hold the key.
var ErrNotCached = errors.New("cluster: result not cached on peer")

// RemoteError is a typed failure a peer returned through the /v2
// error envelope: the peer was reachable and answered, but refused or
// failed the request.
type RemoteError struct {
	// Code is the envelope's machine-readable error code (e.g.
	// "queue_full", "draining", "deadline").
	Code string
	// Message is the human-readable detail.
	Message string
	// Retryable mirrors the envelope flag: the same request may
	// succeed later (or elsewhere).
	Retryable bool
	// HTTPStatus is the response status the envelope rode on.
	HTTPStatus int
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: peer error %s (HTTP %d): %s", e.Code, e.HTTPStatus, e.Message)
}

// Options configures a Cluster.
type Options struct {
	// Self is this replica's advertised host:port — the address peers
	// dial it on. It must appear in Peers.
	Self string
	// Peers is the full static member list, including Self, in any
	// order (every replica sorts it into the same ring).
	Peers []string
	// VNodes is the number of ring points per member (0 = 64).
	VNodes int
	// Registry receives the cluster.* metrics (nil = a fresh one, but
	// pass the serving registry so /metrics exposes the plane).
	Registry *telemetry.Registry
	// Client performs peer HTTP requests (nil = a dedicated client
	// with no global timeout; every call is bounded by its context).
	Client *http.Client
	// FillTimeout bounds one cache-fill GET (0 = 2s). Delegated runs
	// are bounded only by the job context — they last as long as the
	// simulation does.
	FillTimeout time.Duration
	// PingTimeout bounds one health-probe GET (0 = 500ms).
	PingTimeout time.Duration
}

// Peer is one remote replica.
type Peer struct {
	addr string
	base string
}

// Addr returns the peer's host:port.
func (p *Peer) Addr() string { return p.addr }

// PeerHealth is one peer's slice of a Probe result.
type PeerHealth struct {
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// Cluster is this replica's view of the fleet: the ring, the peer
// clients, and the cluster.* telemetry.
type Cluster struct {
	self  string
	ring  *ring
	peers []*Peer // every member except self, ring order
	hc    *http.Client

	fillTimeout time.Duration
	pingTimeout time.Duration

	fills       *telemetry.Counter
	fillMisses  *telemetry.Counter
	fillsServed *telemetry.Counter
	delegated   *telemetry.Counter
	remoteJobs  *telemetry.Counter
	failovers   *telemetry.Counter
	spills      *telemetry.Counter
	peersUp     *telemetry.Gauge
}

// New builds the fleet view. The member list is Peers ∪ {Self};
// passing a list without Self still works (it is added), so
// `-peers a,b,c` can be copied verbatim to every replica.
func New(opts Options) *Cluster {
	members := append([]string{opts.Self}, opts.Peers...)
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{}
	}
	c := &Cluster{
		self:        opts.Self,
		ring:        newRing(members, opts.VNodes),
		hc:          hc,
		fillTimeout: opts.FillTimeout,
		pingTimeout: opts.PingTimeout,
		fills:       reg.Counter(MetricFills),
		fillMisses:  reg.Counter(MetricFillMisses),
		fillsServed: reg.Counter(MetricFillsServed),
		delegated:   reg.Counter(MetricDelegated),
		remoteJobs:  reg.Counter(MetricRemoteJobs),
		failovers:   reg.Counter(MetricFailovers),
		spills:      reg.Counter(MetricSpills),
		peersUp:     reg.Gauge(MetricPeersConnected),
	}
	if c.fillTimeout <= 0 {
		c.fillTimeout = 2 * time.Second
	}
	if c.pingTimeout <= 0 {
		c.pingTimeout = 500 * time.Millisecond
	}
	for _, m := range c.ring.members {
		if m != c.self {
			c.peers = append(c.peers, &Peer{addr: m, base: "http://" + m})
		}
	}
	return c
}

// Self returns this replica's advertised address.
func (c *Cluster) Self() string { return c.self }

// Size returns the member count, including self.
func (c *Cluster) Size() int { return len(c.ring.members) }

// Peers returns the remote members in ring order.
func (c *Cluster) Peers() []*Peer { return c.peers }

// Owner resolves the key's owning member. self is true when this
// replica owns it (peer is nil in that case).
func (c *Cluster) Owner(key string) (peer *Peer, self bool) {
	m := c.ring.owner(key)
	if m == c.self || m == "" {
		return nil, true
	}
	for _, p := range c.peers {
		if p.addr == m {
			return p, false
		}
	}
	return nil, true
}

// FetchResult runs the fill protocol against one peer: a bounded GET
// of the peer's cache entry for key. It records a fill or a fill
// miss; an unreachable peer is both a miss and ErrPeerLost.
func (c *Cluster) FetchResult(ctx context.Context, p *Peer, key string) (*ggpdes.Results, error) {
	fctx, cancel := context.WithTimeout(ctx, c.fillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet,
		p.base+"/v2/cluster/result/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.fillMisses.Inc()
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerLost, p.addr, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		c.fillMisses.Inc()
		return nil, ErrNotCached
	}
	if resp.StatusCode != http.StatusOK {
		c.fillMisses.Inc()
		return nil, remoteError(resp)
	}
	var res ggpdes.Results
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		c.fillMisses.Inc()
		return nil, fmt.Errorf("%w: %s: decoding fill: %v", ErrPeerLost, p.addr, err)
	}
	c.fills.Inc()
	return &res, nil
}

// RunJob delegates a job to its owning peer: POST the raw /v2 JobSpec
// body and block until the peer finishes it. The call lasts as long
// as the remote simulation — it is bounded only by ctx. A peer that
// dies mid-run surfaces as ErrPeerLost; a peer that answers with the
// error envelope surfaces as *RemoteError.
func (c *Cluster) RunJob(ctx context.Context, p *Peer, spec []byte) (*ggpdes.Results, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.base+"/v2/cluster/jobs", bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerLost, p.addr, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var body struct {
		Results *ggpdes.Results `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Results == nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// A response truncated mid-body is the owner dying, same as a
		// refused dial.
		return nil, fmt.Errorf("%w: %s: decoding delegated result: %v", ErrPeerLost, p.addr, err)
	}
	c.delegated.Inc()
	return body.Results, nil
}

// Probe pings every peer concurrently and reports per-peer health,
// updating the cluster.peers.connected gauge. Each ping is bounded by
// PingTimeout under ctx.
func (c *Cluster) Probe(ctx context.Context) []PeerHealth {
	out := make([]PeerHealth, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			out[i] = PeerHealth{Addr: p.addr, OK: true}
			pctx, cancel := context.WithTimeout(ctx, c.pingTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet,
				p.base+"/v2/cluster/ping", nil)
			if err == nil {
				var resp *http.Response
				if resp, err = c.hc.Do(req); err == nil {
					drainClose(resp.Body)
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("HTTP %d", resp.StatusCode)
					}
				}
			}
			if err != nil {
				out[i] = PeerHealth{Addr: p.addr, Error: err.Error()}
			}
		}(i, p)
	}
	wg.Wait()
	up := 0
	for _, h := range out {
		if h.OK {
			up++
		}
	}
	c.peersUp.Set(float64(up))
	return out
}

// NoteFailover records a delegation abandoned because the owner died;
// the caller is about to resume the job locally from the shared
// checkpoint directory.
func (c *Cluster) NoteFailover() { c.failovers.Inc() }

// NoteSpill records a delegation the owner pushed back on (queue full
// or draining); the caller is about to run the job itself.
func (c *Cluster) NoteSpill() { c.spills.Inc() }

// NoteRemoteJob records a job this replica is running on a peer's
// behalf (the server side of RunJob).
func (c *Cluster) NoteRemoteJob() { c.remoteJobs.Inc() }

// NoteFillServed records a fill request answered from the local cache
// (the server side of FetchResult).
func (c *Cluster) NoteFillServed() { c.fillsServed.Inc() }

// remoteError decodes a /v2 error envelope into a *RemoteError,
// falling back to the raw body when the envelope doesn't parse.
func remoteError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	re := &RemoteError{HTTPStatus: resp.StatusCode}
	if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
		re.Code = env.Error.Code
		re.Message = env.Error.Message
		re.Retryable = env.Error.Retryable
	} else {
		re.Code = "internal"
		re.Message = string(bytes.TrimSpace(raw))
	}
	return re
}

// drainClose consumes and closes a response body so the underlying
// connection can be reused.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}
