package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over the fleet's member addresses.
// Every replica builds it from the same sorted member list, so every
// replica computes the same owner for a given cache key — that shared
// answer is what makes the fleet a single content-addressed cache
// instead of N independent ones. Virtual nodes smooth the key split:
// with vnodesPerMember points per member the expected imbalance
// between replicas stays within a few percent.
type ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// newRing builds the ring. Members are sorted and deduplicated first
// so every replica — whatever order its -peers flag listed them in —
// lands on an identical ring.
func newRing(members []string, vnodesPerMember int) *ring {
	if vnodesPerMember <= 0 {
		vnodesPerMember = 64
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &ring{members: uniq}
	for _, m := range uniq {
		for v := 0; v < vnodesPerMember; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(m + "#" + strconv.Itoa(v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on member so equal hashes (vanishingly rare but
		// possible) still order identically on every replica.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// owner returns the member whose ring point is the first at or after
// the key's hash, wrapping at the top.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// hash64 is FNV-64a with a murmur-style finalizer. Raw FNV of short,
// similar strings (member#vnode labels, hex cache keys sharing a long
// prefix) leaves the high bits badly mixed — measured as one member
// owning ~88% of a 3-member ring — and ring placement uses the full
// 64-bit ordering, so the finalizer's avalanche pass matters.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
