package cluster

// Metric names registered by the cluster layer. Single-sourced here so
// ggvet's telemetryname pass can hold the registration sites and the
// checked-in inventory (internal/telemetry/inventory.txt) to one set
// of spellings. All of them are registered only when a Cluster is
// built, so a single-node ggserved exposes no cluster.* plane at all
// (the same discipline dist.* follows for non-distributed runs).
const (
	// Fill protocol: results copied from the owning peer's cache
	// without simulating, and the misses that fell through to a
	// delegated run.
	MetricFills      = "cluster.fills"
	MetricFillMisses = "cluster.fill_misses"
	// MetricFillsServed counts fill requests this replica answered
	// from its own cache for a peer.
	MetricFillsServed = "cluster.fills_served"

	// Routing: jobs this replica handed to the key's owner, and jobs
	// the owner ran on a peer's behalf.
	MetricDelegated  = "cluster.delegated"
	MetricRemoteJobs = "cluster.remote_jobs"

	// Degraded paths: delegations abandoned because the owner died
	// mid-job (the requester resumes from the shared checkpoint dir)
	// or pushed back (queue full / draining; the requester runs the
	// job itself).
	MetricFailovers = "cluster.failovers"
	MetricSpills    = "cluster.spills"

	// MetricPeersConnected is the last health probe's count of
	// reachable peers.
	MetricPeersConnected = "cluster.peers.connected"
)
