package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ggpdes"
	"ggpdes/internal/chaos"
	"ggpdes/internal/dist"
	"ggpdes/internal/serve/cluster"
)

// This file is the /v2 wire vocabulary (API revision 4): one typed
// error envelope for every failure, one JobMeta shape shared by job,
// sweep, and SSE payloads, and the mapping between the repo's typed
// sentinel errors and envelope codes. /v1 keeps its string-error
// bodies through the compatibility shim; everything new speaks this.

// Error codes carried in the /v2 envelope. Each code corresponds to
// exactly one sentinel (or terminal condition) and one HTTP status,
// so clients can switch on code instead of parsing message strings.
const (
	CodeInvalidConfig     = "invalid_config"     // 400 ggpdes.ErrInvalidConfig
	CodeNotFound          = "not_found"          // 404 unknown job or sweep
	CodeCancelled         = "cancelled"          // 409 ggpdes.ErrCancelled / client cancel
	CodeFailed            = "failed"             // 409 unclassified terminal failure
	CodeCheckpointCorrupt = "checkpoint_corrupt" // 410 ggpdes.ErrCheckpointCorrupt
	CodeQueueFull         = "queue_full"         // 429 ErrQueueFull (retryable)
	CodeWorkerLost        = "worker_lost"        // 502 dist.ErrWorkerLost (retryable)
	CodePeerLost          = "peer_lost"          // 502 cluster.ErrPeerLost (retryable)
	CodeDraining          = "draining"           // 503 ErrDraining (retryable)
	CodeDeadline          = "deadline"           // 504 ggpdes.ErrDeadline
	CodeStalled           = "stalled"            // 504 ErrStalled (retryable)
	CodeInternal          = "internal"           // 500 anything else
)

// ErrorInfo is the typed error payload: the single shape every /v2
// failure wears, whether it rejects a request or describes a job's
// terminal state inside JobMeta.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Retryable means the same request may succeed if repeated —
	// against this replica later (queue_full, draining) or was caused
	// by a recoverable environmental fault (stall, lost worker/peer).
	Retryable bool `json:"retryable"`
}

// errorEnvelope is the body of every non-2xx /v2 response.
type errorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

// classify maps an error to its HTTP status and envelope payload via
// the typed sentinels. Unrecognized errors fall back to the given
// code and status (submissions default to internal/500, terminal job
// causes to failed/409 — set by the call sites).
func classify(err error, fbCode string, fbStatus int) (int, ErrorInfo) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	info := func(code int, c string, retry bool) (int, ErrorInfo) {
		return code, ErrorInfo{Code: c, Message: msg, Retryable: retry}
	}
	switch {
	case errors.Is(err, ggpdes.ErrInvalidConfig):
		return info(http.StatusBadRequest, CodeInvalidConfig, false)
	case errors.Is(err, ErrQueueFull):
		return info(http.StatusTooManyRequests, CodeQueueFull, true)
	case errors.Is(err, ErrDraining):
		return info(http.StatusServiceUnavailable, CodeDraining, true)
	case errors.Is(err, ggpdes.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return info(http.StatusGatewayTimeout, CodeDeadline, false)
	case errors.Is(err, ggpdes.ErrCheckpointCorrupt):
		return info(http.StatusGone, CodeCheckpointCorrupt, false)
	case errors.Is(err, ggpdes.ErrCancelled), errors.Is(err, context.Canceled):
		return info(http.StatusConflict, CodeCancelled, false)
	case errors.Is(err, ErrStalled):
		return info(http.StatusGatewayTimeout, CodeStalled, true)
	case errors.Is(err, dist.ErrWorkerLost):
		return info(http.StatusBadGateway, CodeWorkerLost, true)
	case errors.Is(err, cluster.ErrPeerLost):
		return info(http.StatusBadGateway, CodePeerLost, true)
	case errors.Is(err, chaos.ErrInjectedCrash):
		return info(http.StatusConflict, CodeFailed, true)
	default:
		return info(fbStatus, fbCode, false)
	}
}

// remoteFailure converts a peer's envelope error back into the local
// sentinel it was mapped from, so a delegated job's terminal state
// classifies (and re-serializes) exactly as if the run were local.
func remoteFailure(p string, re *cluster.RemoteError) error {
	var sentinel error
	switch re.Code {
	case CodeInvalidConfig:
		sentinel = ggpdes.ErrInvalidConfig
	case CodeDeadline:
		sentinel = ggpdes.ErrDeadline
	case CodeCheckpointCorrupt:
		sentinel = ggpdes.ErrCheckpointCorrupt
	case CodeCancelled:
		sentinel = ggpdes.ErrCancelled
	case CodeStalled:
		sentinel = ErrStalled
	case CodeWorkerLost:
		sentinel = dist.ErrWorkerLost
	default:
		return fmt.Errorf("peer %s: %s: %s", p, re.Code, re.Message)
	}
	return fmt.Errorf("peer %s: %w: %s", p, sentinel, re.Message)
}

// Result sources reported in JobMeta.Source: where a job's results
// came from when it did not simulate locally.
const (
	SourceCache    = "cache"    // local result-cache hit at submit
	SourceInflight = "inflight" // coalesced onto an identical in-flight job
	SourcePeer     = "peer"     // filled from the owning peer's cache
	SourceRemote   = "remote"   // delegated to and run by the owning peer
)

// JobMeta is the one job-identity shape every /v2 payload shares:
// job status, result and series wrappers, sweep members, and SSE
// events all embed it. It is Status re-cut for revision 4 — the
// terminal error becomes the typed ErrorInfo instead of a bare
// string, and Source says where the results came from.
type JobMeta struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Key is the config's content-addressed cache key.
	Key string `json:"key,omitempty"`
	// Cached is true when the job produced no local simulation: its
	// results came from the cache, an in-flight duplicate, or a peer.
	Cached bool `json:"cached,omitempty"`
	// Source qualifies Cached: "cache", "inflight", "peer", "remote",
	// or empty for a locally simulated run.
	Source string `json:"source,omitempty"`
	// Error is the typed terminal failure, present only for failed or
	// cancelled jobs.
	Error *ErrorInfo `json:"error,omitempty"`

	Attempts    int    `json:"attempts,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	ResumedFrom string `json:"resumed_from,omitempty"`

	SubmittedAt  time.Time `json:"submitted_at"`
	StartedAt    time.Time `json:"started_at,omitempty"`
	FinishedAt   time.Time `json:"finished_at,omitempty"`
	QueueSeconds float64   `json:"queue_seconds"`
	RunSeconds   float64   `json:"run_seconds"`
}

// Meta re-cuts a Status snapshot into the /v2 shape.
func (st Status) Meta() JobMeta {
	m := JobMeta{
		ID:           st.ID,
		State:        st.State,
		Key:          st.Key,
		Cached:       st.Cached,
		Source:       st.Source,
		Attempts:     st.Attempts,
		LastError:    st.LastError,
		ResumedFrom:  st.ResumedFrom,
		SubmittedAt:  st.SubmittedAt,
		StartedAt:    st.StartedAt,
		FinishedAt:   st.FinishedAt,
		QueueSeconds: st.QueueSeconds,
		RunSeconds:   st.RunSeconds,
	}
	if st.State == StateFailed || st.State == StateCancelled {
		cause := st.failCause
		if cause == nil {
			cause = errors.New(st.Error)
		}
		_, info := classify(cause, CodeFailed, http.StatusConflict)
		if st.Error != "" {
			info.Message = st.Error
		}
		m.Error = &info
	}
	return m
}

// metaStatus maps a terminal job's meta back to the HTTP status its
// error code rides on (200 for done).
func metaStatus(m JobMeta) int {
	if m.Error == nil {
		return http.StatusOK
	}
	return codeHTTPStatus(m.Error.Code)
}

// codeHTTPStatus is the inverse of classify for envelope codes: the
// HTTP status each code is defined to ride on.
func codeHTTPStatus(code string) int {
	switch code {
	case CodeInvalidConfig:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeCheckpointCorrupt:
		return http.StatusGone
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeWorkerLost, CodePeerLost:
		return http.StatusBadGateway
	case CodeDraining:
		return http.StatusServiceUnavailable
	case CodeDeadline, CodeStalled:
		return http.StatusGatewayTimeout
	case CodeInternal:
		return http.StatusInternalServerError
	default: // cancelled, failed
		return http.StatusConflict
	}
}
