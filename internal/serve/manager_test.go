package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ggpdes"
)

// quickSpec is a sub-second PHOLD job; distinct seeds give distinct
// cache keys.
func quickSpec(seed uint64) JobSpec {
	return JobSpec{
		Config: ggpdes.Config{
			Model:                ggpdes.PHOLD{LPsPerThread: 2},
			Threads:              2,
			System:               ggpdes.GGPDES,
			GVT:                  ggpdes.WaitFree,
			EndTime:              10,
			Seed:                 seed,
			Machine:              ggpdes.Machine{Cores: 4, SMTWidth: 2},
			GVTFrequency:         20,
			ZeroCounterThreshold: 60,
		},
	}
}

// longSpec runs effectively forever; tests must cancel it.
func longSpec() JobSpec {
	s := quickSpec(1)
	s.Config.EndTime = 1e12
	return s
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if st.State != want {
		t.Fatalf("job %s finished %s (err %q), want %s", id, st.State, st.Error, want)
	}
	return st
}

// waitRunning polls until the job leaves the queue.
func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State == StateRunning {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s before running", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

func TestSubmitRunsToCompletion(t *testing.T) {
	m := New(Options{Workers: 2, QueueDepth: 4})
	defer drain(t, m)

	st, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached {
		t.Fatal("first submission reported cached")
	}
	st = waitState(t, m, st.ID, StateDone)
	res, _, ok := m.Result(st.ID)
	if !ok || res == nil {
		t.Fatal("no result for done job")
	}
	if res.CommittedEvents == 0 {
		t.Fatal("done job committed no events")
	}
	if got := m.Registry().Counters()["serve.jobs_completed"]; got != 1 {
		t.Fatalf("jobs_completed = %d, want 1", got)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	m := New(Options{Workers: 1})
	defer drain(t, m)
	valid := quickSpec(1).Config
	noModel := valid
	noModel.Model = nil
	noThreads := valid
	noThreads.Threads = 0
	noEnd := valid
	noEnd.EndTime = 0
	for name, spec := range map[string]JobSpec{
		"no model":         {Config: noModel},
		"no threads":       {Config: noThreads},
		"no end time":      {Config: noEnd},
		"bad timeout":      {Config: valid, TimeoutSeconds: -1},
		"bad max attempts": {Config: valid, MaxAttempts: -1},
	} {
		_, err := m.Submit(spec)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ggpdes.ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", name, err)
		}
	}
	if got := m.Registry().Counters()["serve.jobs_submitted"]; got != 0 {
		t.Fatalf("invalid specs counted as submitted: %d", got)
	}
}

// An identical Config resubmission must be served from the cache
// without re-simulating, visible in the hit/miss counters.
func TestCacheHitSkipsResimulation(t *testing.T) {
	m := New(Options{Workers: 2, QueueDepth: 4})
	defer drain(t, m)

	first, err := m.Submit(quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateDone)
	firstRes, _, _ := m.Result(first.ID)

	second, err := m.Submit(quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("identical specs got different keys: %s vs %s", first.Key, second.Key)
	}
	secondRes, _, _ := m.Result(second.ID)
	if secondRes != firstRes {
		t.Fatal("cache hit returned a different Results value")
	}

	c := m.Registry().Counters()
	if c["serve.cache_hits"] != 1 || c["serve.cache_misses"] != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c["serve.cache_hits"], c["serve.cache_misses"])
	}

	// no_cache forces a fresh run even with a warm cache.
	bypass := quickSpec(7)
	bypass.NoCache = true
	third, err := m.Submit(bypass)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("no_cache submission served from cache")
	}
	waitState(t, m, third.ID, StateDone)
	if hits := m.Registry().Counters()["serve.cache_hits"]; hits != 1 {
		t.Fatalf("no_cache run recorded a hit: %d", hits)
	}
}

// Past the admission bound, Submit fails fast with ErrQueueFull
// instead of blocking.
func TestQueueFullRejects(t *testing.T) {
	m := New(Options{Workers: 1, QueueDepth: 1})

	running, err := m.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, running.ID)

	queuedSpec := longSpec()
	queuedSpec.Config.Seed = 2
	queued, err := m.Submit(queuedSpec)
	if err != nil {
		t.Fatalf("queue-depth submission rejected: %v", err)
	}

	overflow := longSpec()
	overflow.Config.Seed = 3
	start := time.Now()
	if _, err := m.Submit(overflow); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission: err = %v, want ErrQueueFull", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("rejection blocked for %s", elapsed)
	}
	if got := m.Registry().Counters()["serve.jobs_rejected"]; got != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", got)
	}

	m.Cancel(queued.ID)
	m.Cancel(running.ID)
	waitState(t, m, running.ID, StateCancelled)
	waitState(t, m, queued.ID, StateCancelled)
	drain(t, m)
}

// Cancelling a running job must interrupt the simulation promptly —
// the engine checks the context every GVT round.
func TestCancelRunningJob(t *testing.T) {
	m := New(Options{Workers: 1, QueueDepth: 1})
	defer drain(t, m)

	st, err := m.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st.ID)

	start := time.Now()
	after, ok := m.Cancel(st.ID)
	if !ok {
		t.Fatal("cancel: job not found")
	}
	if after.State != StateRunning && after.State != StateCancelled {
		t.Fatalf("state after cancel: %s", after.State)
	}
	final := waitState(t, m, st.ID, StateCancelled)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	if _, _, ok := m.Result(st.ID); !ok {
		t.Fatal("cancelled job not queryable")
	}
	if final.Error == "" {
		t.Fatal("cancelled job has no error string")
	}
	if got := m.Registry().Counters()["serve.jobs_cancelled"]; got != 1 {
		t.Fatalf("jobs_cancelled = %d, want 1", got)
	}
}

// A per-job deadline fails the job rather than letting it run forever.
func TestJobDeadlineFails(t *testing.T) {
	m := New(Options{Workers: 1, QueueDepth: 1})
	defer drain(t, m)

	spec := longSpec()
	spec.TimeoutSeconds = 0.2
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, st.ID, StateFailed)
	if final.Error == "" {
		t.Fatal("deadline failure has no error string")
	}
	if got := m.Registry().Counters()["serve.jobs_failed"]; got != 1 {
		t.Fatalf("jobs_failed = %d, want 1", got)
	}
}

// The server-wide default deadline applies when the spec sets none.
func TestDefaultTimeout(t *testing.T) {
	m := New(Options{Workers: 1, QueueDepth: 1, DefaultTimeout: 200 * time.Millisecond})
	defer drain(t, m)

	st, err := m.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateFailed)
}

// The acceptance bar: ≥ 64 jobs in flight concurrently, all completing,
// submitted from many goroutines with no rejections and no races.
func TestManyConcurrentJobs(t *testing.T) {
	const jobs = 72 // 64 queue slots + 8 workers
	m := New(Options{Workers: 8, QueueDepth: 64})
	defer drain(t, m)

	ids := make([]string, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := m.Submit(quickSpec(uint64(i + 1)))
			ids[i], errs[i] = st.ID, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	c := m.Registry().Counters()
	if c["serve.jobs_completed"] != jobs {
		t.Fatalf("jobs_completed = %d, want %d", c["serve.jobs_completed"], jobs)
	}
	if c["serve.jobs_rejected"] != 0 {
		t.Fatalf("jobs_rejected = %d, want 0", c["serve.jobs_rejected"])
	}
}

// Identical concurrent submissions stay deterministic: every resulting
// job reports the same committed-event count whether it ran fresh or
// hit the cache.
func TestConcurrentIdenticalJobsDeterministic(t *testing.T) {
	const jobs = 16
	m := New(Options{Workers: 4, QueueDepth: 32})
	defer drain(t, m)

	var wg sync.WaitGroup
	committed := make([]uint64, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := m.Submit(quickSpec(99))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if _, err := m.Wait(ctx, st.ID); err != nil {
				t.Errorf("wait %d: %v", i, err)
				return
			}
			res, fin, _ := m.Result(st.ID)
			if fin.State != StateDone || res == nil {
				t.Errorf("job %d: state %s", i, fin.State)
				return
			}
			committed[i] = res.CommittedEvents
		}(i)
	}
	wg.Wait()
	for i := 1; i < jobs; i++ {
		if committed[i] != committed[0] {
			t.Fatalf("job %d committed %d events, job 0 committed %d",
				i, committed[i], committed[0])
		}
	}
}

func TestDrainStopsAdmission(t *testing.T) {
	m := New(Options{Workers: 2, QueueDepth: 4})
	st, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, m)
	if _, err := m.Submit(quickSpec(2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
	// The job admitted before the drain still finished.
	got, ok := m.Get(st.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("pre-drain job state: %+v ok=%t", got, ok)
	}
	if !m.Draining() {
		t.Fatal("Draining() false after Drain")
	}
}

// Terminal jobs past the retention bound are forgotten oldest-first;
// live jobs are never evicted.
func TestRetentionBound(t *testing.T) {
	m := New(Options{Workers: 2, QueueDepth: 8, RetainJobs: 2, CacheEntries: -1})
	defer drain(t, m)

	var ids []string
	for i := 0; i < 4; i++ {
		st, err := m.Submit(quickSpec(uint64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if _, err := m.Wait(ctx, st.ID); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		ids = append(ids, st.ID)
	}
	for _, id := range ids[:2] {
		if _, ok := m.Get(id); ok {
			t.Errorf("job %s retained past the bound", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := m.Get(id); !ok {
			t.Errorf("recent job %s evicted", id)
		}
	}
}

func TestCacheEvictionBound(t *testing.T) {
	m := New(Options{Workers: 2, QueueDepth: 8, CacheEntries: 2})
	defer drain(t, m)
	for i := 0; i < 4; i++ {
		st, err := m.Submit(quickSpec(uint64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, st.ID, StateDone)
	}
	if n := m.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	if ev := m.Registry().Counters()["serve.cache_evictions"]; ev != 2 {
		t.Fatalf("cache_evictions = %d, want 2", ev)
	}
}

func TestWaitUnknownJob(t *testing.T) {
	m := New(Options{Workers: 1})
	defer drain(t, m)
	if _, err := m.Wait(context.Background(), "job-nope"); err == nil {
		t.Fatal("Wait on unknown job succeeded")
	}
	if _, ok := m.Get("job-nope"); ok {
		t.Fatal("Get on unknown job succeeded")
	}
	if _, ok := m.Cancel("job-nope"); ok {
		t.Fatal("Cancel on unknown job succeeded")
	}
}

// Sanity-check the ID format is stable for clients that log it.
func TestJobIDFormat(t *testing.T) {
	m := New(Options{Workers: 1, QueueDepth: 4})
	defer drain(t, m)
	st, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	var n uint64
	if _, err := fmt.Sscanf(st.ID, "job-%08x", &n); err != nil || n == 0 {
		t.Fatalf("unexpected job ID %q", st.ID)
	}
	waitState(t, m, st.ID, StateDone)
}

// Cancelling a coalesced duplicate settles it immediately; the leader
// finishing later must skip it rather than settle it again (which
// would close the follower's done channel a second time and panic the
// worker, overwrite its cancelled state, and retain it twice).
func TestCancelQueuedFollower(t *testing.T) {
	m := New(Options{Workers: 1, QueueDepth: 4})
	defer drain(t, m)

	lead, err := m.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, lead.ID)
	fol, err := m.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fol.State != StateQueued {
		t.Fatalf("duplicate submitted as %s, want a queued follower", fol.State)
	}
	if got := m.Registry().Counters()[MetricDedupInflight]; got != 1 {
		t.Fatalf("dedup_inflight = %d, want 1", got)
	}

	st, ok := m.Cancel(fol.ID)
	if !ok || st.State != StateCancelled {
		t.Fatalf("follower cancel: ok=%t state=%s", ok, st.State)
	}

	// Cancel the leader too; its worker settles the lifecycle and runs
	// finalizeLocked over the followers list.
	if _, ok := m.Cancel(lead.ID); !ok {
		t.Fatal("leader cancel failed")
	}
	waitState(t, m, lead.ID, StateCancelled)
	final := waitState(t, m, fol.ID, StateCancelled)
	if final.Cached || final.Source != "" {
		t.Fatalf("cancelled follower reports cached=%t source=%q", final.Cached, final.Source)
	}
	if got := m.Registry().Counters()[MetricJobsCancelled]; got != 2 {
		t.Fatalf("jobs_cancelled = %d, want 2 (each job settled exactly once)", got)
	}
}
