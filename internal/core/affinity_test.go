package core

import (
	"testing"

	"ggpdes/internal/machine"
)

func newTestDynAffinity(threads, cores, smt int) (*dynamicAffinity, *machine.Acc, *machine.Machine) {
	d := newDynamicAffinity(threads, cores, smt, DefaultCosts())
	// A throwaway machine/acc pair for cost charging in unit tests.
	m, _ := machine.New(machine.Small())
	return d, nil, m
}

func TestDynamicAffinitySMTAwarePlacement(t *testing.T) {
	d := newDynamicAffinity(8, 4, 2, DefaultCosts())
	acc := &nopAcc{}
	// Pin four threads: SMT-aware placement spreads one per core.
	got := make(map[int]int)
	for i := 0; i < 4; i++ {
		c := d.pickCore(acc.acc(), 0)
		d.pinnedCount[c]++
		got[c]++
	}
	if len(got) != 4 {
		t.Fatalf("SMT-aware placement used %d cores, want 4: %v", len(got), got)
	}
	// The next four double up, one per core again.
	for i := 0; i < 4; i++ {
		c := d.pickCore(acc.acc(), 0)
		d.pinnedCount[c]++
		got[c]++
	}
	for c, n := range got {
		if n != 2 {
			t.Fatalf("core %d has %d pinned, want 2", c, n)
		}
	}
}

func TestDynamicAffinitySMTBlindFirstFit(t *testing.T) {
	d := newDynamicAffinity(8, 4, 2, DefaultCosts())
	d.smtAware = false
	acc := &nopAcc{}
	// First-fit with a cursor fills core 0's two contexts before moving
	// on: the pathology SMT-awareness avoids.
	c1 := d.pickCore(acc.acc(), 0)
	d.pinnedCount[c1]++
	c2 := d.pickCore(acc.acc(), 0)
	d.pinnedCount[c2]++
	if c1 != 0 || c2 != 0 {
		t.Fatalf("blind first-fit picked %d then %d, want 0, 0", c1, c2)
	}
	c3 := d.pickCore(acc.acc(), 0)
	if c3 != 1 {
		t.Fatalf("third pick = %d, want 1", c3)
	}
}

func TestDynamicAffinityBlindSaturationFallback(t *testing.T) {
	d := newDynamicAffinity(4, 2, 1, DefaultCosts())
	d.smtAware = false
	acc := &nopAcc{}
	d.pinnedCount[0] = 1
	d.pinnedCount[1] = 1 // all cores saturated
	c := d.pickCore(acc.acc(), 0)
	if c < 0 || c >= 2 {
		t.Fatalf("fallback core %d out of range", c)
	}
}

func TestDynamicAffinityDeactivateReleasesSlot(t *testing.T) {
	d := newDynamicAffinity(4, 2, 2, DefaultCosts())
	acc := &nopAcc{}
	d.coreOf[1] = 1
	d.pinnedCount[1] = 1
	d.OnDeactivate(acc.acc(), 1)
	if d.coreOf[1] != -1 || d.pinnedCount[1] != 0 {
		t.Fatalf("slot not released: coreOf=%d count=%d", d.coreOf[1], d.pinnedCount[1])
	}
	// Deactivating an unpinned thread is a no-op.
	d.OnDeactivate(acc.acc(), 2)
	if d.pinnedCount[0] != 0 && d.pinnedCount[1] != 0 {
		t.Fatal("unpinned deactivation touched counts")
	}
}

// nopAcc supplies an *machine.Acc-compatible sink for unit tests that
// never flush; built on a real machine thread is overkill here, so use
// the zero-value Acc which accumulates without a Proc.
type nopAcc struct{ a machine.Acc }

func (n *nopAcc) acc() *machine.Acc { return &n.a }

// BenchmarkAblationSMTAwareness compares SMT-aware against first-fit
// dynamic affinity on a non-linear locality PHOLD where placement
// matters (DESIGN.md §5).
func BenchmarkAblationSMTAwareness(b *testing.B) {
	for _, aware := range []bool{true, false} {
		aware := aware
		name := "smt-aware"
		if !aware {
			name = "first-fit"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := benchOneAffinityRun(b, aware, uint64(i+1))
				b.ReportMetric(res, "ev/s(sim)")
			}
		})
	}
}

// benchOneAffinityRun runs one GG + dynamic-affinity simulation with
// the given SMT policy and returns the committed event rate.
func benchOneAffinityRun(b *testing.B, smtAware bool, seed uint64) float64 {
	b.Helper()
	res := runAffinitySim(b, smtAware, seed)
	return res
}

// runAffinitySim builds a full GG + dynamic-affinity run with the given
// SMT policy and returns the committed event rate.
func runAffinitySim(tb testing.TB, smtAware bool, seed uint64) float64 {
	tb.Helper()
	sp := simParams{
		system: GGPDES, gvtKind: 1 /* waitfree */, affinity: AffinityDynamic,
		threads: 16, lpsPer: 4, imbalance: 4, nonLinear: true,
		endTime: 40, cores: 4, smt: 2, gvtFreq: 20, zeroThresh: 60,
		seed: seed, maxTicks: 1 << 22, startPerLP: 1,
	}
	mcfg := machine.Small()
	mcfg.MaxTicks = sp.maxTicks
	m, err := machine.New(mcfg)
	if err != nil {
		tb.Fatal(err)
	}
	model, err := newPHOLDFor(sp)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := newEngineFor(model, sp)
	if err != nil {
		tb.Fatal(err)
	}
	r, err := NewRunner(Config{
		Machine: m, Engine: eng, System: GGPDES, GVTKind: 1,
		GVTFrequency: sp.gvtFreq, ZeroCounterThreshold: sp.zeroThresh,
		Affinity: AffinityDynamic,
	})
	if err != nil {
		tb.Fatal(err)
	}
	r.aff.(*dynamicAffinity).smtAware = smtAware
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	wall := m.WallSeconds()
	if wall == 0 {
		return 0
	}
	return float64(eng.TotalStats().Committed) / wall
}

func TestDynamicAffinityNUMAPrefersPreviousNode(t *testing.T) {
	d := newDynamicAffinity(4, 8, 2, DefaultCosts())
	d.numaAware = true
	d.nodeOf = func(core int) int { return core / 4 } // 2 nodes of 4
	acc := &nopAcc{}
	// Thread 0 was last pinned on node 1; node 1 cores are emptier than
	// nothing, so it should return there even though core 0 is equally
	// empty.
	d.lastNode[0] = 1
	core := d.pickCore(acc.acc(), 0)
	if d.nodeOf(core) != 1 {
		t.Fatalf("picked core %d on node %d, want node 1", core, d.nodeOf(core))
	}
	// When the previous node saturates, fall back globally.
	for c := 4; c < 8; c++ {
		d.pinnedCount[c] = 2 // == smtWidth
	}
	core = d.pickCore(acc.acc(), 0)
	if d.nodeOf(core) != 0 {
		t.Fatalf("saturated node not avoided: picked core %d", core)
	}
	// Threads never pinned before place globally.
	if got := d.pickCore(acc.acc(), 1); d.nodeOf(got) != 0 {
		t.Fatalf("fresh thread picked node %d", d.nodeOf(got))
	}
}

func TestDeactivateRemembersNode(t *testing.T) {
	d := newDynamicAffinity(2, 8, 2, DefaultCosts())
	d.nodeOf = func(core int) int { return core / 4 }
	acc := &nopAcc{}
	d.coreOf[0] = 6
	d.pinnedCount[6] = 1
	d.OnDeactivate(acc.acc(), 0)
	if d.lastNode[0] != 1 {
		t.Fatalf("lastNode = %d, want 1", d.lastNode[0])
	}
}
