package core

import (
	"fmt"
	"testing"

	"ggpdes/internal/gvt"
	"ggpdes/internal/machine"
	"ggpdes/internal/models"
	"ggpdes/internal/tw"
)

// simResult collects everything the integration tests assert on.
type simResult struct {
	committed, processed, rolledBack uint64
	gvtCycles                        uint64
	totalCycles                      uint64
	wallSeconds                      float64
	ticks                            uint64
	lpProcessed                      []int64
	deactivations, activations       uint64
	rounds                           uint64
	runner                           *Runner
	eng                              *tw.Engine
	m                                *machine.Machine
}

type simParams struct {
	system     System
	gvtKind    gvt.Kind
	affinity   Affinity
	threads    int
	lpsPer     int
	imbalance  int
	nonLinear  bool
	endTime    tw.VT
	cores      int
	smt        int
	gvtFreq    int
	zeroThresh int
	seed       uint64
	maxTicks   uint64
	startPerLP int
}

func (sp *simParams) fill() {
	if sp.threads == 0 {
		sp.threads = 8
	}
	if sp.lpsPer == 0 {
		sp.lpsPer = 4
	}
	if sp.imbalance == 0 {
		sp.imbalance = 1
	}
	if sp.endTime == 0 {
		sp.endTime = 40
	}
	if sp.cores == 0 {
		sp.cores = 4
	}
	if sp.smt == 0 {
		sp.smt = 2
	}
	if sp.gvtFreq == 0 {
		sp.gvtFreq = 20
	}
	if sp.zeroThresh == 0 {
		sp.zeroThresh = 60
	}
	if sp.seed == 0 {
		sp.seed = 42
	}
	if sp.maxTicks == 0 {
		sp.maxTicks = 1 << 22
	}
	if sp.startPerLP == 0 {
		sp.startPerLP = 1
	}
}

func runSim(t *testing.T, sp simParams) *simResult {
	t.Helper()
	sp.fill()
	mcfg := machine.Small()
	mcfg.Cores = sp.cores
	mcfg.SMTWidth = sp.smt
	agg := make([]float64, sp.smt)
	for i := range agg {
		agg[i] = 1 + 0.45*float64(i)
	}
	agg[0] = 1
	mcfg.SMTAggregate = agg
	mcfg.MaxTicks = sp.maxTicks
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := models.NewPHOLD(models.PHOLDConfig{
		Threads:          sp.threads,
		LPsPerThread:     sp.lpsPer,
		Imbalance:        sp.imbalance,
		NonLinear:        sp.nonLinear,
		EndTime:          sp.endTime,
		StartEventsPerLP: sp.startPerLP,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := tw.NewEngine(tw.Config{
		NumThreads: sp.threads,
		Model:      model,
		EndTime:    sp.endTime,
		Seed:       sp.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Machine:              m,
		Engine:               eng,
		System:               sp.system,
		GVTKind:              sp.gvtKind,
		GVTFrequency:         sp.gvtFreq,
		ZeroCounterThreshold: sp.zeroThresh,
		Affinity:             sp.affinity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("%v/%v: machine run: %v", sp.system, sp.gvtKind, err)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatalf("%v/%v: invariants: %v", sp.system, sp.gvtKind, err)
	}
	if !eng.Done() {
		t.Fatalf("%v/%v: simulation incomplete, GVT=%v", sp.system, sp.gvtKind, eng.GVT())
	}
	res := &simResult{runner: r, eng: eng, m: m}
	s := eng.TotalStats()
	res.committed = s.Committed
	res.processed = s.Processed
	res.rolledBack = s.RolledBack
	res.gvtCycles = s.GVTCycles
	res.totalCycles = m.TotalCycles()
	res.wallSeconds = m.WallSeconds()
	res.ticks = m.Stats().Ticks
	res.rounds = r.Algorithm().Rounds()
	for _, lp := range eng.LPs() {
		res.lpProcessed = append(res.lpProcessed, lp.State().(*models.PHOLDState).Processed)
	}
	switch sched := r.sched.(type) {
	case *ggSched:
		res.deactivations = sched.Deactivations
		res.activations = sched.Activations
	case *ddSched:
		res.deactivations = sched.Deactivations
		res.activations = sched.Activations
	}
	return res
}

func TestAllSystemsCompleteBalanced(t *testing.T) {
	for _, sys := range []System{Baseline, DDPDES, GGPDES} {
		for _, kind := range []gvt.Kind{gvt.Barrier, gvt.WaitFree} {
			t.Run(fmt.Sprintf("%v-%v", sys, kind), func(t *testing.T) {
				res := runSim(t, simParams{system: sys, gvtKind: kind})
				if res.committed == 0 {
					t.Fatal("no events committed")
				}
				if res.rounds == 0 {
					t.Fatal("no GVT rounds completed")
				}
			})
		}
	}
}

func TestAllSystemsCompleteImbalanced(t *testing.T) {
	for _, sys := range []System{Baseline, DDPDES, GGPDES} {
		for _, kind := range []gvt.Kind{gvt.Barrier, gvt.WaitFree} {
			t.Run(fmt.Sprintf("%v-%v", sys, kind), func(t *testing.T) {
				res := runSim(t, simParams{system: sys, gvtKind: kind, imbalance: 4})
				if res.committed == 0 {
					t.Fatal("no events committed")
				}
			})
		}
	}
}

// The committed trajectory is a property of the model and seed alone;
// scheduling systems may only change performance, never results.
func TestSystemsCommitIdenticalTrajectories(t *testing.T) {
	base := runSim(t, simParams{system: Baseline, gvtKind: gvt.Barrier, imbalance: 2})
	for _, sys := range []System{Baseline, DDPDES, GGPDES} {
		for _, kind := range []gvt.Kind{gvt.Barrier, gvt.WaitFree} {
			if sys == Baseline && kind == gvt.Barrier {
				continue
			}
			res := runSim(t, simParams{system: sys, gvtKind: kind, imbalance: 2})
			if res.committed != base.committed {
				t.Errorf("%v/%v committed %d != baseline %d", sys, kind, res.committed, base.committed)
			}
			for i := range res.lpProcessed {
				if res.lpProcessed[i] != base.lpProcessed[i] {
					t.Fatalf("%v/%v: LP %d processed %d != baseline %d",
						sys, kind, i, res.lpProcessed[i], base.lpProcessed[i])
				}
			}
		}
	}
}

func TestGGDeactivatesOnImbalance(t *testing.T) {
	res := runSim(t, simParams{system: GGPDES, gvtKind: gvt.WaitFree, imbalance: 4, endTime: 80})
	if res.deactivations == 0 {
		t.Fatal("GG never deactivated a thread on a 1-4 imbalanced model")
	}
	if res.activations == 0 {
		t.Fatal("GG never reactivated a thread despite shifting locality")
	}
}

func TestDDControllerReactivates(t *testing.T) {
	res := runSim(t, simParams{system: DDPDES, gvtKind: gvt.WaitFree, imbalance: 4, endTime: 80, cores: 4})
	if res.deactivations == 0 {
		t.Fatal("DD never deactivated")
	}
	if res.activations == 0 {
		t.Fatal("DD controller never reactivated a thread")
	}
}

// GG-PDES's point: de-scheduled threads burn no cycles, so on an
// imbalanced model it executes far less work than the spinning
// Baseline-Async.
func TestGGExecutesFewerInstructionsThanBaselineAsync(t *testing.T) {
	p := simParams{gvtKind: gvt.WaitFree, imbalance: 4, endTime: 80}
	p.system = Baseline
	base := runSim(t, p)
	p.system = GGPDES
	gg := runSim(t, p)
	if gg.totalCycles >= base.totalCycles {
		t.Fatalf("GG cycles %d not below baseline-async %d", gg.totalCycles, base.totalCycles)
	}
	if gg.gvtCycles >= base.gvtCycles {
		t.Fatalf("GG GVT cycles %d not below baseline-async %d", gg.gvtCycles, base.gvtCycles)
	}
}

func TestOversubscriptionCompletes(t *testing.T) {
	// 32 threads on 8 contexts; only 1/4 active at a time.
	res := runSim(t, simParams{
		system: GGPDES, gvtKind: gvt.WaitFree,
		threads: 32, imbalance: 4, lpsPer: 2, endTime: 60,
	})
	if res.committed == 0 {
		t.Fatal("oversubscribed run committed nothing")
	}
	if res.deactivations == 0 {
		t.Fatal("no deactivations under oversubscription")
	}
}

func TestDynamicAffinityRepins(t *testing.T) {
	res := runSim(t, simParams{
		system: GGPDES, gvtKind: gvt.WaitFree,
		affinity: AffinityDynamic, imbalance: 4, nonLinear: true, endTime: 80,
	})
	aff := res.runner.aff.(*dynamicAffinity)
	if aff.Repins == 0 {
		t.Fatal("dynamic affinity never pinned a thread")
	}
	if res.committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestConstantAffinityPinsRoundRobin(t *testing.T) {
	res := runSim(t, simParams{system: GGPDES, gvtKind: gvt.WaitFree, affinity: AffinityConstant})
	for tid := 0; tid < 8; tid++ {
		th := res.m.Thread(tid)
		if th.Pinned() != tid%4 {
			t.Fatalf("thread %d pinned to %d, want %d", tid, th.Pinned(), tid%4)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runSim(t, simParams{system: GGPDES, gvtKind: gvt.WaitFree, imbalance: 2})
	b := runSim(t, simParams{system: GGPDES, gvtKind: gvt.WaitFree, imbalance: 2})
	if a.committed != b.committed || a.ticks != b.ticks || a.totalCycles != b.totalCycles {
		t.Fatalf("runs diverged: committed %d/%d ticks %d/%d cycles %d/%d",
			a.committed, b.committed, a.ticks, b.ticks, a.totalCycles, b.totalCycles)
	}
}

func TestRunnerValidation(t *testing.T) {
	m, _ := machine.New(machine.Small())
	model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 2, LPsPerThread: 1, EndTime: 1})
	eng, _ := tw.NewEngine(tw.Config{NumThreads: 2, Model: model, EndTime: 1})
	cases := []Config{
		{Machine: nil, Engine: eng},
		{Machine: m, Engine: nil},
		{Machine: m, Engine: eng, GVTFrequency: -1},
		{Machine: m, Engine: eng, ZeroCounterThreshold: -1},
		{Machine: m, Engine: eng, System: Baseline, Affinity: AffinityDynamic},
	}
	for i, cfg := range cases {
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDDNeedsTwoCores(t *testing.T) {
	mcfg := machine.Small()
	mcfg.Cores = 1
	m, _ := machine.New(mcfg)
	model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 2, LPsPerThread: 1, EndTime: 1})
	eng, _ := tw.NewEngine(tw.Config{NumThreads: 2, Model: model, EndTime: 1})
	if _, err := NewRunner(Config{Machine: m, Engine: eng, System: DDPDES}); err == nil {
		t.Fatal("DD on 1 core accepted")
	}
}

func TestSystemAndAffinityStrings(t *testing.T) {
	if Baseline.String() != "baseline" || DDPDES.String() != "dd-pdes" || GGPDES.String() != "gg-pdes" {
		t.Fatal("system names wrong")
	}
	if System(99).String() != "unknown" {
		t.Fatal("unknown system name wrong")
	}
	if AffinityNone.String() != "none" || AffinityConstant.String() != "constant" || AffinityDynamic.String() != "dynamic" {
		t.Fatal("affinity names wrong")
	}
	if Affinity(99).String() != "unknown" {
		t.Fatal("unknown affinity name wrong")
	}
}

// Test helpers shared with affinity_test.go.
func newPHOLDFor(sp simParams) (*models.PHOLD, error) {
	return models.NewPHOLD(models.PHOLDConfig{
		Threads:          sp.threads,
		LPsPerThread:     sp.lpsPer,
		Imbalance:        sp.imbalance,
		NonLinear:        sp.nonLinear,
		EndTime:          sp.endTime,
		StartEventsPerLP: sp.startPerLP,
	})
}

func newEngineFor(model *models.PHOLD, sp simParams) (*tw.Engine, error) {
	return tw.NewEngine(tw.Config{
		NumThreads: sp.threads,
		Model:      model,
		EndTime:    sp.endTime,
		Seed:       sp.seed,
	})
}

func TestSMTBlindDynamicAffinityRunsCorrectly(t *testing.T) {
	aware := runAffinitySim(t, true, 7)
	blind := runAffinitySim(t, false, 7)
	if aware <= 0 || blind <= 0 {
		t.Fatalf("rates: aware %v blind %v", aware, blind)
	}
}
