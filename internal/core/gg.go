package core

import (
	"ggpdes/internal/machine"
	"ggpdes/internal/trace"
)

// ggSched is the GVT-Guided scheduler (the paper's contribution). All
// shared state — the active_threads flags, the semaphore array, the
// active count — is accessed without locks: the GVT phase ordering
// guarantees the pseudo-controller's activation scan (Phase Aware)
// never races a deactivation (Phase End), and the simulated machine's
// serialized execution mirrors the word-atomic reads and writes the
// paper relies on.
type ggSched struct {
	r *Runner

	// semLocks: one binary semaphore per simulation thread; waiting on
	// it de-schedules the thread (Algorithm 1 line 13).
	semLocks []*machine.Sem
	// activeThreads mirrors the paper's padded, cache-aligned boolean
	// array indicating which threads are scheduled in.
	activeThreads []bool
	numActive     int

	// zeroCounter counts consecutive empty-queue loop iterations;
	// wantDeactivate is Algorithm 1's "active" flag gone false.
	zeroCounter    []int
	wantDeactivate []bool
	// posted guards against double sem_post when a reactivated thread
	// has not yet run its wake-up path by the next Aware phase.
	posted []bool

	// Deactivations and Activations count scheduling operations.
	Deactivations, Activations uint64
}

func newGGSched(r *Runner) *ggSched {
	n := len(r.cfg.Engine.Peers())
	g := &ggSched{
		r:              r,
		semLocks:       make([]*machine.Sem, n),
		activeThreads:  make([]bool, n),
		numActive:      n,
		zeroCounter:    make([]int, n),
		wantDeactivate: make([]bool, n),
		posted:         make([]bool, n),
	}
	for i := range g.semLocks {
		g.semLocks[i] = r.cfg.Machine.NewSem("gg-sem", 0)
		g.activeThreads[i] = true
	}
	return g
}

// SemOf implements scheduler.
func (g *ggSched) SemOf(tid int) *machine.Sem { return g.semLocks[tid] }

// IsActive implements scheduler.
func (g *ggSched) IsActive(tid int) bool { return g.activeThreads[tid] }

// NumActive returns the number of currently scheduled threads.
func (g *ggSched) NumActive() int { return g.numActive }

// ReadMessageCount is Algorithm 1 lines 1-6: track consecutive
// empty-queue iterations and flag the thread for deactivation past the
// threshold. Its cost is part of the main loop's LoopCycles.
func (g *ggSched) ReadMessageCount(tid int) {
	if g.r.cfg.Engine.Peer(tid).HasExecutableWork() {
		g.zeroCounter[tid] = 0
		g.wantDeactivate[tid] = false
		return
	}
	g.zeroCounter[tid]++
	if g.zeroCounter[tid] > g.r.cfg.ZeroCounterThreshold {
		g.wantDeactivate[tid] = true
	}
}

// OnAware is Algorithm 2, run by the round's pseudo-controller: walk
// the activity arrays and reactivate any de-scheduled thread whose
// input queue received messages.
func (g *ggSched) OnAware(p *machine.Proc, acc *machine.Acc, tid int) {
	if g.numActive >= len(g.activeThreads) {
		return
	}
	eng := g.r.cfg.Engine
	for i := range g.activeThreads {
		acc.Work(g.r.cfg.Costs.ScanPerThreadCycles)
		if !g.activeThreads[i] && !g.posted[i] && eng.Peer(i).HasExecutableWork() {
			g.posted[i] = true
			g.Activations++
			g.r.tel.activations[i].Inc()
			acc.Flush()
			p.SemPost(g.semLocks[i])
		}
	}
}

// OnRoundComplete runs the Dynamic CPU Affinity pass (Algorithm 4)
// after all of the round's activations and deactivations.
func (g *ggSched) OnRoundComplete(p *machine.Proc, acc *machine.Acc, tid int) {
	if t := g.r.cfg.Trace; t != nil {
		t.Add(trace.KindRound, tid, g.r.cfg.Engine.GVT(), int64(g.r.alg.Participants()))
	}
	g.r.aff.OnRoundComplete(p, acc, g)
}

// OnEnd is Algorithm 1 lines 7-17: the deactivation point at Phase End.
func (g *ggSched) OnEnd(p *machine.Proc, acc *machine.Acc, tid int) {
	eng := g.r.cfg.Engine
	peer := eng.Peer(tid)
	if !g.wantDeactivate[tid] || peer.HasExecutableWork() || g.numActive <= 1 || eng.Done() {
		return
	}
	acc.Work(g.r.cfg.Costs.DeactivateCycles)
	// Lines 9-10: release this thread's affinity table slots.
	g.r.aff.OnDeactivate(acc, tid)
	// Lines 11-13: mark inactive and schedule out.
	g.activeThreads[tid] = false
	g.numActive--
	g.Deactivations++
	g.r.tel.deactivations[tid].Inc()
	if t := g.r.cfg.Trace; t != nil {
		t.Add(trace.KindDeactivate, tid, 0, 0)
	}
	g.r.alg.Leave(tid)
	acc.Flush()
	blockedAt := p.NowCycles()
	p.SemWait(g.semLocks[tid])
	// Lines 14-17: woken by the pseudo-controller (or shutdown).
	g.r.tel.descheduleSpan[tid].Observe(float64(p.NowCycles() - blockedAt))
	g.posted[tid] = false
	g.activeThreads[tid] = true
	g.numActive++
	if t := g.r.cfg.Trace; t != nil {
		t.Add(trace.KindActivate, tid, 0, 0)
	}
	g.zeroCounter[tid] = 0
	g.wantDeactivate[tid] = false
	if eng.Done() {
		// Shutdown wake: exit without rejoining the GVT protocol.
		return
	}
	g.r.alg.Join(tid)
	acc.Work(g.r.cfg.Costs.DeactivateCycles)
}
