// Package core implements the paper's contribution: demand-driven
// scheduling of PDES simulation threads.
//
// Three systems are provided:
//
//   - Baseline: no explicit scheduling; inactive threads keep polling
//     (or sleep only incidentally inside barrier waits) and the OS
//     (machine CFS) multiplexes everything.
//   - DDPDES: the prior Demand-Driven PDES design — a dedicated
//     controller thread on its own core periodically scans activity
//     under a global mutex and reactivates threads; simulation threads
//     deactivate under the same mutex.
//   - GGPDES: the paper's GVT-Guided design — no controller thread;
//     the first thread to reach the GVT round's Aware phase acts as
//     pseudo-controller and runs the activation scan (Algorithm 2);
//     every thread may deactivate at Phase End (Algorithm 1); shared
//     state is touched lock-free, relying on the phase ordering
//     (Aware precedes End) for consistency.
//
// On top of GG-PDES sit three CPU affinity algorithms (§4.2): none
// (CFS decides), constant (round-robin pinning at startup, Algorithm
// 3), and dynamic (re-pin active threads to idle cores each GVT round,
// SMT-aware, Algorithm 4).
package core

import (
	"errors"
	"fmt"

	"ggpdes/internal/gvt"
	"ggpdes/internal/machine"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/trace"
	"ggpdes/internal/tw"
)

// Metric names the scheduling layer registers.
const (
	// MetricDescheduleSpan is a histogram of wall cycles each
	// de-scheduled thread spent blocked before reactivation.
	MetricDescheduleSpan = "core.deschedule_span_cycles"
	// MetricDeactivations and MetricActivations count de-schedule and
	// re-schedule operations.
	MetricDeactivations = "core.deactivations"
	MetricActivations   = "core.activations"
	// MetricRepins counts dynamic-affinity SetAffinity operations.
	MetricRepins = "core.repins"
)

// System selects the thread-scheduling design.
type System int

const (
	// Baseline relies on the OS scheduler alone.
	Baseline System = iota
	// DDPDES is the prior controller-thread design.
	DDPDES
	// GGPDES is the paper's GVT-guided design.
	GGPDES
)

// String returns the system name.
func (s System) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case DDPDES:
		return "dd-pdes"
	case GGPDES:
		return "gg-pdes"
	default:
		return "unknown"
	}
}

// Affinity selects the CPU pinning algorithm.
type Affinity int

const (
	// AffinityNone lets the machine's CFS place and migrate threads.
	AffinityNone Affinity = iota
	// AffinityConstant pins thread t to core t mod usable-cores at
	// startup and never changes it (Algorithm 3).
	AffinityConstant
	// AffinityDynamic re-pins unpinned active threads to the
	// least-loaded cores at the end of every GVT round (Algorithm 4);
	// only meaningful with GGPDES.
	AffinityDynamic
)

// String returns the affinity algorithm's name.
func (a Affinity) String() string {
	switch a {
	case AffinityNone:
		return "none"
	case AffinityConstant:
		return "constant"
	case AffinityDynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// Costs prices scheduler operations in CPU cycles.
type Costs struct {
	// LoopCycles is per main-loop iteration overhead (queue size check,
	// zero-counter update, branch logic).
	LoopCycles uint64
	// ScanPerThreadCycles is the activation scan's cost per thread
	// entry (Algorithm 2's walk, and the DD controller's scan).
	ScanPerThreadCycles uint64
	// DeactivateCycles is the bookkeeping cost of Algorithm 1's
	// deactivation path (excluding the semaphore call itself).
	DeactivateCycles uint64
	// AffinityPerThreadCycles is Algorithm 4's per-entry table scan.
	AffinityPerThreadCycles uint64
	// DDControllerPauseCycles is the work the DD controller performs
	// between scan passes on its dedicated core.
	DDControllerPauseCycles uint64
}

// DefaultCosts returns the scheduler cost model used in the evaluation.
func DefaultCosts() Costs {
	return Costs{
		LoopCycles:              150,
		ScanPerThreadCycles:     25,
		DeactivateCycles:        300,
		AffinityPerThreadCycles: 30,
		DDControllerPauseCycles: 4000,
	}
}

// Config assembles a Runner.
type Config struct {
	// Machine hosts the simulation threads.
	Machine *machine.Machine
	// Engine is the Time Warp engine to drive (one peer per thread).
	Engine *tw.Engine
	// System selects Baseline, DDPDES or GGPDES.
	System System
	// GVTKind selects Barrier (-Sync) or WaitFree (-Async).
	GVTKind gvt.Kind
	// GVTFrequency is main-loop iterations between GVT rounds (paper:
	// 200). Zero selects 200.
	GVTFrequency int
	// ZeroCounterThreshold is how many consecutive empty-queue loop
	// iterations flag a thread inactive (paper: 2000). Zero selects
	// 2000.
	ZeroCounterThreshold int
	// Affinity selects the pinning algorithm. AffinityDynamic requires
	// GGPDES.
	Affinity Affinity
	// Costs is the scheduler cost model; zero value selects defaults.
	Costs Costs
	// GVTCosts is the GVT protocol cost model; zero value = defaults.
	GVTCosts gvt.Costs
	// Trace, when non-nil, records scheduling transitions, GVT rounds
	// and affinity repins.
	Trace *trace.Recorder
	// GVTAdaptive, when non-nil, enables adaptive GVT frequency tuning.
	GVTAdaptive *gvt.Adaptive
	// Telemetry, when non-nil, receives scheduler metrics (see the
	// Metric constants) and is forwarded to the GVT layer.
	Telemetry *telemetry.Registry
	// GVTOnCut, when non-nil, is forwarded to gvt.Config.OnCut: the
	// Mattern-style cut notification the distributed coordinator uses
	// to stamp wire traffic with cut generations. Observability only.
	GVTOnCut func(cut int, round uint64)
	// Faults, when non-nil, injects thread-level faults into the main
	// loop (see internal/chaos). A killed thread exits immediately and
	// never comes back, which typically stalls GVT; a stalled thread
	// burns a loop iteration without doing work. Fault injection is for
	// exercising the fault-tolerance machinery — injected runs are not
	// expected to complete normally.
	Faults ThreadFaultInjector
}

// ThreadFaultInjector decides per-thread, per-iteration faults.
// Implementations must be deterministic in (tid, iter) given their
// construction parameters so injected runs are reproducible.
type ThreadFaultInjector interface {
	// Killed reports whether thread tid dies at main-loop iteration
	// iter (1-based). Once true it must stay true for all later iters.
	Killed(tid int, iter uint64) bool
	// Stalled reports whether thread tid wastes iteration iter.
	Stalled(tid int, iter uint64) bool
}

// Runner wires a machine, an engine, a GVT algorithm, a scheduler and
// an affinity algorithm together and spawns the simulation threads.
// After Setup, drive the run with Machine.Run.
type Runner struct {
	cfg   Config
	alg   gvt.Algorithm
	sched scheduler
	aff   affinity
	tel   coreTelemetry

	shutdownDone bool
}

// coreTelemetry caches metric handles for the scheduling hot paths,
// one registry shard per thread so recording never shares a cache
// line across threads. Handles are indexed by the tid the operation
// concerns (the thread being activated, deactivated or repinned).
type coreTelemetry struct {
	descheduleSpan             []*telemetry.Histogram
	deactivations, activations []*telemetry.Counter
	repins                     []*telemetry.Counter
}

// scheduler is the demand-driven scheduling behaviour, invoked from the
// GVT algorithm's hook points and from the main loop.
type scheduler interface {
	gvt.Hooks
	// ReadMessageCount is Algorithm 1's per-iteration activity probe.
	ReadMessageCount(tid int)
	// SemOf returns the thread's de-scheduling semaphore, nil if the
	// system never de-schedules.
	SemOf(tid int) *machine.Sem
	// IsActive reports scheduler-level activity of a thread.
	IsActive(tid int) bool
}

// NewRunner validates cfg, spawns one machine thread per engine peer
// (and the DD controller when applicable), and returns the runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Machine == nil || cfg.Engine == nil {
		return nil, errors.New("core: Machine and Engine are required")
	}
	if cfg.GVTFrequency == 0 {
		cfg.GVTFrequency = 200
	}
	if cfg.GVTFrequency < 0 {
		return nil, errors.New("core: GVTFrequency must be positive")
	}
	if cfg.ZeroCounterThreshold == 0 {
		cfg.ZeroCounterThreshold = 2000
	}
	if cfg.ZeroCounterThreshold < 0 {
		return nil, errors.New("core: ZeroCounterThreshold must be positive")
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Affinity == AffinityDynamic && cfg.System != GGPDES {
		return nil, errors.New("core: AffinityDynamic requires the GGPDES system")
	}
	r := &Runner{cfg: cfg}

	n := len(cfg.Engine.Peers())
	r.tel = coreTelemetry{
		descheduleSpan: make([]*telemetry.Histogram, n),
		deactivations:  make([]*telemetry.Counter, n),
		activations:    make([]*telemetry.Counter, n),
		repins:         make([]*telemetry.Counter, n),
	}
	for tid := 0; tid < n; tid++ {
		sh := cfg.Telemetry.Shard(tid)
		r.tel.descheduleSpan[tid] = sh.Histogram(MetricDescheduleSpan)
		r.tel.deactivations[tid] = sh.Counter(MetricDeactivations)
		r.tel.activations[tid] = sh.Counter(MetricActivations)
		r.tel.repins[tid] = sh.Counter(MetricRepins)
	}
	mcfg := cfg.Machine.Config()
	usableCores := mcfg.Cores
	if cfg.System == DDPDES {
		// The controller monopolizes the last core.
		usableCores--
		if usableCores < 1 {
			return nil, errors.New("core: DDPDES needs at least 2 cores")
		}
	}

	switch cfg.Affinity {
	case AffinityNone:
		r.aff = &noAffinity{}
	case AffinityConstant:
		r.aff = &constantAffinity{usableCores: usableCores}
	case AffinityDynamic:
		dyn := newDynamicAffinity(n, usableCores, mcfg.SMTWidth, cfg.Costs)
		if mcfg.NUMANodes > 1 {
			dyn.nodeOf = mcfg.NodeOf
			dyn.numaAware = true
		}
		r.aff = dyn
	default:
		return nil, fmt.Errorf("core: unknown affinity %d", cfg.Affinity)
	}

	switch cfg.System {
	case Baseline:
		r.sched = &baselineSched{}
	case GGPDES:
		r.sched = newGGSched(r)
	case DDPDES:
		r.sched = newDDSched(r)
	default:
		return nil, fmt.Errorf("core: unknown system %d", cfg.System)
	}

	alg, err := gvt.New(gvt.Config{
		Kind:      cfg.GVTKind,
		Engine:    cfg.Engine,
		Machine:   cfg.Machine,
		Frequency: cfg.GVTFrequency,
		Hooks:     r.sched,
		Costs:     cfg.GVTCosts,
		Adaptive:  cfg.GVTAdaptive,
		Telemetry: cfg.Telemetry,
		OnCut:     cfg.GVTOnCut,
	})
	if err != nil {
		return nil, err
	}
	r.alg = alg

	for tid := 0; tid < n; tid++ {
		tid := tid
		cfg.Machine.Spawn(fmt.Sprintf("sim-%d", tid), func(p *machine.Proc) {
			r.threadBody(p, tid)
		})
	}
	if dd, ok := r.sched.(*ddSched); ok {
		cfg.Machine.SpawnPinned("dd-controller", mcfg.Cores-1, dd.controllerBody)
	}
	return r, nil
}

// Algorithm returns the GVT algorithm instance (for stats).
func (r *Runner) Algorithm() gvt.Algorithm { return r.alg }

// SchedulingStats summarizes a run's demand-driven scheduling activity.
type SchedulingStats struct {
	// Deactivations and Activations count de-schedule / re-schedule
	// operations.
	Deactivations, Activations uint64
	// LockContention counts blocking acquisitions of DD-PDES's global
	// mutex (zero for Baseline and GG-PDES).
	LockContention uint64
	// Repins counts dynamic-affinity SetAffinity operations.
	Repins uint64
}

// SchedulingStats returns the run's scheduling counters; valid after
// Machine.Run completes.
func (r *Runner) SchedulingStats() SchedulingStats {
	var s SchedulingStats
	switch sched := r.sched.(type) {
	case *ggSched:
		s.Deactivations = sched.Deactivations
		s.Activations = sched.Activations
	case *ddSched:
		s.Deactivations = sched.Deactivations
		s.Activations = sched.Activations
		s.LockContention = sched.mu.Contended
	}
	if dyn, ok := r.aff.(*dynamicAffinity); ok {
		s.Repins = dyn.Repins
	}
	return s
}

// System returns the configured scheduling system.
func (r *Runner) System() System { return r.cfg.System }

// NumActive returns the number of currently scheduled-in simulation
// threads; for Baseline every thread always counts as active. Live
// progress reporting reads it mid-run — safe because machine execution
// is serialized.
func (r *Runner) NumActive() int {
	switch sched := r.sched.(type) {
	case *ggSched:
		return sched.numActive
	case *ddSched:
		return sched.numActive
	}
	return len(r.cfg.Engine.Peers())
}

// idleFlushEvery batches the cycle charges of consecutive do-nothing
// loop iterations into one machine interaction; idle iterations have no
// cross-thread effects, so batching them does not change semantics.
const idleFlushEvery = 8

// threadBody is a simulation thread's main loop, the ROSS core loop:
// drain input, process a batch, probe activity, advance GVT.
func (r *Runner) threadBody(p *machine.Proc, tid int) {
	eng := r.cfg.Engine
	peer := eng.Peer(tid)
	acc := machine.NewAcc(p)
	r.aff.Setup(p, acc, tid)
	idle := 0
	var iter uint64
	for !eng.Done() {
		acc.Work(r.cfg.Costs.LoopCycles)
		if f := r.cfg.Faults; f != nil {
			iter++
			if f.Killed(tid, iter) {
				// Die without fossil collection or shutdown wakeups —
				// a crashed thread cleans nothing up.
				acc.Flush()
				return
			}
			if f.Stalled(tid, iter) {
				acc.Flush()
				continue
			}
		}
		drained, processed := peer.DrainProcess(acc)
		r.sched.ReadMessageCount(tid)
		before := r.alg.Rounds()
		r.alg.Step(p, acc, tid)
		if drained > 0 || processed > 0 || r.alg.Rounds() != before || acc.Pending() > 4*r.cfg.Costs.LoopCycles {
			acc.Flush()
			idle = 0
			continue
		}
		if idle++; idle >= idleFlushEvery {
			acc.Flush()
			idle = 0
		}
	}
	// Final fossil collection: threads that exit mid-round (wait-free)
	// or woke from de-scheduling still hold committable history.
	peer.FossilCollect(acc, eng.GVT())
	acc.Flush()
	r.shutdownWake(p, tid)
}

// shutdownWake releases every de-scheduled thread once the simulation
// completes so it can observe completion and exit.
func (r *Runner) shutdownWake(p *machine.Proc, tid int) {
	if r.shutdownDone {
		return
	}
	r.shutdownDone = true
	n := len(r.cfg.Engine.Peers())
	for i := 0; i < n; i++ {
		if sem := r.sched.SemOf(i); sem != nil && !r.sched.IsActive(i) {
			p.SemPost(sem)
		}
	}
}
