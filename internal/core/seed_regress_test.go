package core

import (
	"fmt"
	"testing"

	"ggpdes/internal/gvt"
	"ggpdes/internal/machine"
	"ggpdes/internal/models"
	"ggpdes/internal/tw"
)

// Regression for the last-subscriber-leaves-while-joiners-pend
// livelock: under DD-PDES + wait-free GVT, reactivated threads join the
// protocol lazily, and specific seeds once left the protocol with zero
// participants and the joiners stranded.
func TestDDWaitFreeSeedRegression(t *testing.T) {
	for _, seed := range []uint64{9, 10, 58, 89, 105, 164, 177} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			mcfg := machine.KNL7230()
			mcfg.Cores = 8
			mcfg.SMTWidth = 2
			mcfg.SMTAggregate = mcfg.SMTAggregate[:2]
			mcfg.MaxTicks = 1 << 18
			m, err := machine.New(mcfg)
			if err != nil {
				t.Fatal(err)
			}
			model, _ := models.NewPHOLD(models.PHOLDConfig{Threads: 16, LPsPerThread: 4, Imbalance: 1, EndTime: 40})
			eng, _ := tw.NewEngine(tw.Config{NumThreads: 16, Model: model, EndTime: 40, Seed: seed, OptimismWindow: 10})
			if _, err := NewRunner(Config{
				Machine: m, Engine: eng, System: DDPDES, GVTKind: gvt.WaitFree,
				GVTFrequency: 40, ZeroCounterThreshold: 400, Affinity: AffinityConstant,
			}); err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if !eng.Done() {
				t.Fatalf("GVT stalled at %v", eng.GVT())
			}
		})
	}
}
