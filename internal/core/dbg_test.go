package core

import (
	"fmt"
	"testing"

	"ggpdes/internal/gvt"
	"ggpdes/internal/machine"
	"ggpdes/internal/models"
	"ggpdes/internal/tw"
)

func TestDebugDDBarrier2(t *testing.T) {
	mcfg := machine.Small()
	mcfg.Cores = 4
	mcfg.SMTWidth = 2
	mcfg.SMTAggregate = []float64{1, 1.45}
	mcfg.MaxTicks = 1 << 17
	m, _ := machine.New(mcfg)
	model, _ := models.NewPHOLD(models.PHOLDConfig{
		Threads: 8, LPsPerThread: 4, Imbalance: 4,
		EndTime: 40, StartEventsPerLP: 1,
	})
	eng, _ := tw.NewEngine(tw.Config{NumThreads: 8, Model: model, EndTime: 40, Seed: 42})
	r, err := NewRunner(Config{
		Machine: m, Engine: eng, System: DDPDES, GVTKind: gvt.Barrier,
		GVTFrequency: 20, ZeroCounterThreshold: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	dd := r.sched.(*ddSched)
	bar := r.alg.(interface{ Participants() int })
	fmt.Printf("err=%v GVT=%.3f rounds=%d deact=%d act=%d numActive=%d participants=%d\n",
		err, eng.GVT(), r.Algorithm().Rounds(), dd.Deactivations, dd.Activations, dd.numActive, bar.Participants())
	for i, th := range m.Threads() {
		extra := ""
		if i < 8 {
			extra = fmt.Sprintf(" active=%v posted=%v inq=%d haswork=%v", dd.activeThreads[i], dd.posted[i], eng.Peer(i).InputSize(), eng.Peer(i).HasWork())
		}
		fmt.Printf("  thr %d (%s): state=%v cycles=%d%s\n", i, th.Name(), th.State(), th.Cycles(), extra)
	}
}
