package core

import (
	"ggpdes/internal/machine"
	"ggpdes/internal/trace"
)

// affinity is the CPU pinning behaviour plugged into the runner.
type affinity interface {
	// Setup runs once per simulation thread before its main loop.
	Setup(p *machine.Proc, acc *machine.Acc, tid int)
	// OnDeactivate releases the thread's core assignment (Algorithm 1
	// lines 9-10); only the dynamic algorithm keeps tables.
	OnDeactivate(acc *machine.Acc, tid int)
	// OnRoundComplete re-pins active threads (Algorithm 4), executed by
	// the last thread of a GVT round on behalf of the pseudo-controller.
	OnRoundComplete(p *machine.Proc, acc *machine.Acc, g *ggSched)
}

// noAffinity leaves every placement decision to the machine's CFS.
type noAffinity struct{}

func (noAffinity) Setup(*machine.Proc, *machine.Acc, int)                {}
func (noAffinity) OnDeactivate(*machine.Acc, int)                        {}
func (noAffinity) OnRoundComplete(*machine.Proc, *machine.Acc, *ggSched) {}

// constantAffinity is Algorithm 3: pin thread t to core t mod N during
// setup and never change it, trading migration freedom for cache
// locality. Adequate under linear execution locality, pathological
// under non-linear locality (active threads pile onto few cores).
type constantAffinity struct {
	usableCores int
}

func (c *constantAffinity) Setup(p *machine.Proc, acc *machine.Acc, tid int) {
	acc.Flush()
	p.SetAffinity(tid, tid%c.usableCores)
}

func (c *constantAffinity) OnDeactivate(*machine.Acc, int)                        {}
func (c *constantAffinity) OnRoundComplete(*machine.Proc, *machine.Acc, *ggSched) {}

// dynamicAffinity is Algorithm 4: at the end of each GVT round, pin
// every active-but-unpinned thread to the emptiest core. Two tables
// mirror the paper's: affinityTable[core] holds how many threads are
// pinned to the core (SMT-aware generalization of the paper's single
// occupant entry), and affinityTableInv[tid] holds the thread's core or
// -1. Deactivating threads release their slots, so shifting locality
// keeps re-balancing onto idled cores.
type dynamicAffinity struct {
	costs Costs
	// pinnedCount[core] is the number of active threads pinned there.
	pinnedCount []int
	// coreOf[tid] is the paper's affinity_table_inv: -1 when unpinned.
	coreOf   []int
	smtWidth int
	// smtAware selects the paper's SMT-aware placement (fewest active
	// hardware threads first). When false, the pass first-fits with a
	// rotating cursor, the plain Algorithm 4 — kept for ablation.
	smtAware bool
	cursor   int
	// nodeOf maps a core to its NUMA node; numaAware makes the pass
	// prefer a thread's previous node when re-pinning — the extension
	// the paper leaves as future work.
	nodeOf    func(core int) int
	numaAware bool
	// lastNode remembers where each thread was pinned before
	// deactivation (-1 = never pinned).
	lastNode []int
	// Repins counts SetAffinity operations performed by the pass.
	Repins uint64
}

func newDynamicAffinity(threads, usableCores, smtWidth int, costs Costs) *dynamicAffinity {
	d := &dynamicAffinity{
		costs:       costs,
		pinnedCount: make([]int, usableCores),
		coreOf:      make([]int, threads),
		lastNode:    make([]int, threads),
		smtWidth:    smtWidth,
		smtAware:    true,
		nodeOf:      func(int) int { return 0 },
	}
	for i := range d.coreOf {
		d.coreOf[i] = -1
		d.lastNode[i] = -1
	}
	return d
}

// Setup performs no initial pinning: the first GVT round's pass places
// every active thread.
func (d *dynamicAffinity) Setup(*machine.Proc, *machine.Acc, int) {}

// OnDeactivate is Algorithm 1 lines 9-10: clear both table entries so
// the core becomes available to newly activated threads.
func (d *dynamicAffinity) OnDeactivate(acc *machine.Acc, tid int) {
	if core := d.coreOf[tid]; core >= 0 {
		d.pinnedCount[core]--
		d.coreOf[tid] = -1
		d.lastNode[tid] = d.nodeOf(core)
	}
	acc.Work(d.costs.AffinityPerThreadCycles)
}

// OnRoundComplete is Algorithm 4: walk active_threads; for each active
// thread not yet pinned, find the core with the fewest active pinned
// hardware threads (SMT-awareness) and pin it there.
func (d *dynamicAffinity) OnRoundComplete(p *machine.Proc, acc *machine.Acc, g *ggSched) {
	for tid, active := range g.activeThreads {
		acc.Work(d.costs.AffinityPerThreadCycles)
		if !active || d.coreOf[tid] >= 0 {
			continue
		}
		core := d.pickCore(acc, tid)
		d.pinnedCount[core]++
		d.coreOf[tid] = core
		d.Repins++
		g.r.tel.repins[tid].Inc()
		if t := g.r.cfg.Trace; t != nil {
			t.Add(trace.KindRepin, tid, 0, int64(core))
		}
		acc.Flush()
		p.SetAffinity(tid, core)
	}
}

func (d *dynamicAffinity) pickCore(acc *machine.Acc, tid int) int {
	if !d.smtAware {
		return d.firstFitCore(acc)
	}
	if d.numaAware {
		if node := d.lastNode[tid]; node >= 0 {
			// Prefer an empty-enough core on the thread's previous node
			// (warm caches, local memory); fall back globally when that
			// node is crowded.
			if core, count := d.emptiestCoreInNode(acc, node); core >= 0 && count < d.smtWidth {
				return core
			}
		}
	}
	return d.emptiestCore(acc)
}

// emptiestCoreInNode scans one NUMA node for its least-pinned core.
func (d *dynamicAffinity) emptiestCoreInNode(acc *machine.Acc, node int) (core, count int) {
	best, bestCount := -1, int(^uint(0)>>1)
	for c, n := range d.pinnedCount {
		if d.nodeOf(c) != node {
			continue
		}
		acc.Work(d.costs.AffinityPerThreadCycles / 4)
		if n < bestCount {
			best, bestCount = c, n
		}
	}
	return best, bestCount
}

// emptiestCore returns the core with the fewest pinned active threads,
// lowest id on ties — so four active threads land on four distinct
// cores rather than sharing SMT contexts.
func (d *dynamicAffinity) emptiestCore(acc *machine.Acc) int {
	best, bestCount := 0, int(^uint(0)>>1)
	for c, n := range d.pinnedCount {
		acc.Work(d.costs.AffinityPerThreadCycles / 4)
		if n < bestCount {
			best, bestCount = c, n
		}
	}
	return best
}

// firstFitCore is the SMT-blind ablation: scan from a rotating cursor
// for any core with a free hardware context, ignoring how loaded the
// others are.
func (d *dynamicAffinity) firstFitCore(acc *machine.Acc) int {
	n := len(d.pinnedCount)
	for i := 0; i < n; i++ {
		c := (d.cursor + i) % n
		acc.Work(d.costs.AffinityPerThreadCycles / 4)
		if d.pinnedCount[c] < d.smtWidth {
			d.cursor = c
			return c
		}
	}
	// All cores saturated; fall back to the cursor position.
	d.cursor = (d.cursor + 1) % n
	return d.cursor
}
