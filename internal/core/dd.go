package core

import (
	"ggpdes/internal/machine"
	"ggpdes/internal/trace"
)

// ddSched reproduces the prior Demand-Driven PDES design the paper
// improves on: a dedicated controller thread, running on its own CPU
// core and excluded from event processing, periodically scans thread
// activity under a global mutex and reactivates de-scheduled threads;
// simulation threads must take the same mutex to deactivate. The
// mutex serialization and the controller's O(threads) scan are the
// bottlenecks that make DD-PDES collapse at large thread counts.
type ddSched struct {
	r *Runner

	mu            *machine.Mutex
	semLocks      []*machine.Sem
	activeThreads []bool
	numActive     int

	zeroCounter    []int
	wantDeactivate []bool
	posted         []bool

	// Deactivations and Activations count scheduling operations.
	Deactivations, Activations uint64
}

func newDDSched(r *Runner) *ddSched {
	n := len(r.cfg.Engine.Peers())
	d := &ddSched{
		r:              r,
		mu:             r.cfg.Machine.NewMutex("dd-lock"),
		semLocks:       make([]*machine.Sem, n),
		activeThreads:  make([]bool, n),
		numActive:      n,
		zeroCounter:    make([]int, n),
		wantDeactivate: make([]bool, n),
		posted:         make([]bool, n),
	}
	for i := range d.semLocks {
		d.semLocks[i] = r.cfg.Machine.NewSem("dd-sem", 0)
		d.activeThreads[i] = true
	}
	return d
}

// SemOf implements scheduler.
func (d *ddSched) SemOf(tid int) *machine.Sem { return d.semLocks[tid] }

// IsActive implements scheduler.
func (d *ddSched) IsActive(tid int) bool { return d.activeThreads[tid] }

// NumActive returns the number of currently scheduled threads.
func (d *ddSched) NumActive() int { return d.numActive }

// LockContention returns how many lock acquisitions had to block, the
// measure of DD-PDES's serialization bottleneck.
func (d *ddSched) LockContention() uint64 { return d.mu.Contended }

// ReadMessageCount tracks consecutive empty-queue iterations, as in GG.
func (d *ddSched) ReadMessageCount(tid int) {
	if d.r.cfg.Engine.Peer(tid).HasExecutableWork() {
		d.zeroCounter[tid] = 0
		d.wantDeactivate[tid] = false
		return
	}
	d.zeroCounter[tid]++
	if d.zeroCounter[tid] > d.r.cfg.ZeroCounterThreshold {
		d.wantDeactivate[tid] = true
	}
}

// OnAware does nothing: activation is the controller thread's job.
func (d *ddSched) OnAware(*machine.Proc, *machine.Acc, int) {}

// OnRoundComplete does nothing: DD-PDES has no dynamic affinity.
func (d *ddSched) OnRoundComplete(*machine.Proc, *machine.Acc, int) {}

// OnEnd deactivates an idle thread — but unlike GG-PDES the shared
// bookkeeping must be mutated under the global controller mutex.
func (d *ddSched) OnEnd(p *machine.Proc, acc *machine.Acc, tid int) {
	eng := d.r.cfg.Engine
	peer := eng.Peer(tid)
	if !d.wantDeactivate[tid] || peer.HasExecutableWork() || d.numActive <= 1 || eng.Done() {
		return
	}
	acc.Work(d.r.cfg.Costs.DeactivateCycles)
	acc.Flush()
	p.Lock(d.mu)
	ok := !peer.HasExecutableWork() && d.numActive > 1 && !eng.Done()
	if ok {
		d.activeThreads[tid] = false
		d.numActive--
		d.Deactivations++
		d.r.tel.deactivations[tid].Inc()
		if t := d.r.cfg.Trace; t != nil {
			t.Add(trace.KindDeactivate, tid, 0, 0)
		}
		d.r.alg.Leave(tid)
	}
	p.Unlock(d.mu)
	if !ok {
		return
	}
	blockedAt := p.NowCycles()
	p.SemWait(d.semLocks[tid])
	// Woken by the controller (or shutdown).
	d.r.tel.descheduleSpan[tid].Observe(float64(p.NowCycles() - blockedAt))
	p.Lock(d.mu)
	d.posted[tid] = false
	d.activeThreads[tid] = true
	d.numActive++
	if t := d.r.cfg.Trace; t != nil {
		t.Add(trace.KindActivate, tid, 0, 0)
	}
	d.zeroCounter[tid] = 0
	d.wantDeactivate[tid] = false
	done := eng.Done()
	if !done {
		d.r.alg.Join(tid)
	}
	p.Unlock(d.mu)
}

// controllerBody is the dedicated controller thread's loop: scan all
// threads' input queues under the mutex and reactivate any inactive
// thread with messages.
func (d *ddSched) controllerBody(p *machine.Proc) {
	eng := d.r.cfg.Engine
	acc := machine.NewAcc(p)
	costs := d.r.cfg.Costs
	for !eng.Done() {
		acc.Flush()
		p.Lock(d.mu)
		if d.numActive < len(d.activeThreads) {
			for i := range d.activeThreads {
				acc.Work(costs.ScanPerThreadCycles)
				if !d.activeThreads[i] && !d.posted[i] && eng.Peer(i).HasExecutableWork() {
					d.posted[i] = true
					d.Activations++
					d.r.tel.activations[i].Inc()
					acc.Flush()
					p.SemPost(d.semLocks[i])
				}
			}
		}
		acc.Flush()
		p.Unlock(d.mu)
		p.Work(costs.DDControllerPauseCycles)
	}
}
