package core

import "ggpdes/internal/machine"

// baselineSched performs no demand-driven scheduling: inactive threads
// keep polling their queues and participating in every GVT round, and
// thread placement is whatever the affinity algorithm and the machine's
// CFS produce. This is the paper's Baseline-Sync / Baseline-Async pair
// (depending on the GVT kind it is combined with).
type baselineSched struct{}

func (baselineSched) ReadMessageCount(int)                             {}
func (baselineSched) SemOf(int) *machine.Sem                           { return nil }
func (baselineSched) IsActive(int) bool                                { return true }
func (baselineSched) OnAware(*machine.Proc, *machine.Acc, int)         {}
func (baselineSched) OnRoundComplete(*machine.Proc, *machine.Acc, int) {}
func (baselineSched) OnEnd(*machine.Proc, *machine.Acc, int)           {}
