// Package checkpoint defines the versioned on-disk snapshot format for
// deterministic run checkpoint/restore. A snapshot is written at a GVT
// round boundary after the engine has been quiesced onto its committed
// cut (see internal/tw's checkpoint support); restoring it and running
// the remaining segments reproduces the uninterrupted run's Results
// byte for byte.
//
// The file layout is a JSON envelope {magic, version, crc32, data}
// where data is the Snapshot JSON and the CRC covers its exact bytes.
// JSON is deliberate: floats round-trip exactly (shortest-form
// encoding), uint64s are full-precision decimals, and a corrupt or
// truncated file fails loudly. Every decode error is wrapped in
// ErrCorrupt so callers can classify it.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"ggpdes/internal/core"
	"ggpdes/internal/machine"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/tw"
)

const (
	// Magic identifies a ggpdes checkpoint file.
	Magic = "ggpdes-checkpoint"
	// Version is the snapshot format revision; readers reject others.
	Version = 1
)

// ErrCorrupt reports an unreadable, truncated, checksum-mismatched or
// version-incompatible snapshot. The public API re-exports it as
// ggpdes.ErrCheckpointCorrupt.
var ErrCorrupt = errors.New("checkpoint: corrupt or incompatible snapshot")

// Snapshot is everything a fresh process needs to continue a run from
// a GVT round boundary.
type Snapshot struct {
	// Config is the run configuration in its canonical JSON wire form.
	// It is kept raw here — the root package owns the Config codec —
	// which also avoids an import cycle.
	Config json.RawMessage `json:"config"`
	// CacheKey fingerprints Config; restore verifies the decoded config
	// hashes back to it, so a lossy codec cannot silently fork the
	// trajectory.
	CacheKey string `json:"cache_key"`
	// Segments counts checkpoints taken so far (this file is number
	// Segments); Rounds is cumulative GVT publications.
	Segments int    `json:"segments"`
	Rounds   uint64 `json:"rounds"`
	// MachineTicks is the cumulative machine tick count — the next
	// segment's StartTick, keeping wall-clock metrics cumulative.
	MachineTicks uint64 `json:"machine_ticks"`
	// MachineStats and SchedStats accumulate per-segment scheduler
	// counters; TotalCycles accumulates consumed CPU cycles.
	MachineStats machine.Stats        `json:"machine_stats"`
	SchedStats   core.SchedulingStats `json:"sched_stats"`
	TotalCycles  uint64               `json:"total_cycles"`
	// GVTFrequency is the (possibly adaptively tuned) round frequency
	// the next segment starts from; 0 means the configured value.
	GVTFrequency int `json:"gvt_frequency"`
	// Engine is the quiesced Time Warp state.
	Engine *tw.EngineState `json:"engine"`
	// Metrics is the raw telemetry registry export.
	Metrics telemetry.MetricsState `json:"metrics"`
}

// envelope is the on-disk wrapper around a Snapshot.
type envelope struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	CRC     uint32          `json:"crc32"`
	Data    json.RawMessage `json:"data"`
}

// Encode serializes a snapshot into its on-disk byte form.
func Encode(s *Snapshot) ([]byte, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding snapshot: %w", err)
	}
	env := envelope{
		Magic:   Magic,
		Version: Version,
		CRC:     crc32.ChecksumIEEE(data),
		Data:    data,
	}
	out, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding envelope: %w", err)
	}
	return out, nil
}

// Decode parses and verifies Encode's output.
func Decode(data []byte) (*Snapshot, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Magic != Magic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrCorrupt, env.Magic, Magic)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("%w: format version %d, reader supports %d", ErrCorrupt, env.Version, Version)
	}
	if got := crc32.ChecksumIEEE(env.Data); got != env.CRC {
		return nil, fmt.Errorf("%w: crc32 %08x, want %08x", ErrCorrupt, got, env.CRC)
	}
	var s Snapshot
	if err := json.Unmarshal(env.Data, &s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if s.Engine == nil {
		return nil, fmt.Errorf("%w: snapshot has no engine state", ErrCorrupt)
	}
	return &s, nil
}

// FileName returns the canonical file name of checkpoint n; zero
// padding keeps lexicographic and numeric order identical, which is
// what Latest relies on.
func FileName(n int) string { return fmt.Sprintf("ckpt-%08d.json", n) }

// ShardFileName returns the file name of worker shard's slice of
// checkpoint n in a distributed run. The name is deliberately longer
// than FileName's, so Latest — which matches exact-length full-run
// snapshots only — never resumes from a partial shard file.
func ShardFileName(n, shard int) string {
	return fmt.Sprintf("ckpt-%08d.shard%02d.json", n, shard)
}

// Write atomically persists a snapshot as file number s.Segments under
// dir, creating the directory as needed.
func Write(dir string, s *Snapshot) (string, error) {
	data, err := Encode(s)
	if err != nil {
		return "", err
	}
	return WriteBytes(dir, s.Segments, data)
}

// WriteBytes atomically persists pre-encoded snapshot bytes as
// checkpoint number n under dir.
func WriteBytes(dir string, n int, data []byte) (string, error) {
	return WriteNamed(dir, FileName(n), data)
}

// WriteNamed atomically persists pre-encoded snapshot bytes under dir
// with an explicit file name — how distributed runs place per-shard
// files (ShardFileName) next to the full snapshot.
func WriteNamed(dir, name string, data []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	return path, nil
}

// Read loads and verifies the snapshot at path.
func Read(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(data)
}

// Latest returns the path of the highest-numbered checkpoint file in
// dir. It returns os.ErrNotExist (wrapped) when the directory holds no
// checkpoints or does not exist.
func Latest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && len(name) == len(FileName(0)) &&
			name[:5] == "ckpt-" && filepath.Ext(name) == ".json" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("checkpoint: no checkpoints in %s: %w", dir, os.ErrNotExist)
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}
