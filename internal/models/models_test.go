package models

import (
	"math"
	"testing"
	"testing/quick"

	"ggpdes/internal/tw"
)

type accCPU struct{ cycles uint64 }

func (a *accCPU) Work(c uint64) { a.cycles += c }

// drive runs an engine to quiescence single-batch-at-a-time across all
// peers, computing GVT between passes; a minimal harness for model
// tests.
func drive(t *testing.T, eng *tw.Engine) {
	t.Helper()
	cpu := &accCPU{}
	for pass := 0; pass < 5_000_000; pass++ {
		busy := false
		for _, p := range eng.Peers() {
			if p.Drain(cpu) > 0 || p.ProcessBatch(cpu) > 0 {
				busy = true
			}
		}
		if busy {
			continue
		}
		min := math.Inf(1)
		for _, p := range eng.Peers() {
			if m := p.LocalMin(cpu); m < min {
				min = m
			}
			if s := p.TakeMinSent(); s < min {
				min = s
			}
		}
		eng.SetGVT(math.Min(min, eng.EndTime()))
		for _, p := range eng.Peers() {
			p.FossilCollect(cpu, eng.GVT())
		}
		if eng.Done() {
			return
		}
	}
	t.Fatal("model did not quiesce")
}

func newEngine(t *testing.T, model tw.Model, threads int, end tw.VT, seed uint64) *tw.Engine {
	t.Helper()
	eng, err := tw.NewEngine(tw.Config{NumThreads: threads, Model: model, EndTime: end, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// ---------- PHOLD ----------

func TestPHOLDValidation(t *testing.T) {
	cases := []PHOLDConfig{
		{Threads: 0, LPsPerThread: 1, EndTime: 1},
		{Threads: 1, LPsPerThread: 0, EndTime: 1},
		{Threads: 4, LPsPerThread: 1, EndTime: 1, Imbalance: 3}, // 3 does not divide 4
		{Threads: 1, LPsPerThread: 1, EndTime: 0},
	}
	for i, cfg := range cases {
		if _, err := NewPHOLD(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPHOLDDefaults(t *testing.T) {
	m, err := NewPHOLD(PHOLDConfig{Threads: 2, LPsPerThread: 2, EndTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.Imbalance != 1 || cfg.LookaheadMin != 0.1 || cfg.LookaheadMean != 0.9 || cfg.StartEventsPerLP != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestPHOLDWindows(t *testing.T) {
	m, _ := NewPHOLD(PHOLDConfig{Threads: 8, LPsPerThread: 2, EndTime: 40, Imbalance: 4})
	cases := map[tw.VT]int{0: 0, 9.99: 0, 10: 1, 25: 2, 39.9: 3, 40: 3, 100: 3}
	for ts, want := range cases {
		if got := m.Window(ts); got != want {
			t.Errorf("Window(%v) = %d, want %d", ts, got, want)
		}
	}
}

func TestPHOLDLinearGroups(t *testing.T) {
	m, _ := NewPHOLD(PHOLDConfig{Threads: 8, LPsPerThread: 2, EndTime: 40, Imbalance: 4})
	if m.GroupSize() != 2 {
		t.Fatalf("GroupSize = %d", m.GroupSize())
	}
	// Window 1 should own threads 2, 3.
	if m.ActiveThread(1, 0) != 2 || m.ActiveThread(1, 1) != 3 {
		t.Fatalf("linear group wrong: %d, %d", m.ActiveThread(1, 0), m.ActiveThread(1, 1))
	}
	if !m.IsActiveThread(1, 2) || m.IsActiveThread(1, 4) {
		t.Fatal("IsActiveThread wrong for linear groups")
	}
}

func TestPHOLDNonLinearGroups(t *testing.T) {
	m, _ := NewPHOLD(PHOLDConfig{Threads: 8, LPsPerThread: 2, EndTime: 40, Imbalance: 4, NonLinear: true})
	// Window 1 owns threads 1, 5 (ids ≡ 1 mod 4).
	if m.ActiveThread(1, 0) != 1 || m.ActiveThread(1, 1) != 5 {
		t.Fatalf("non-linear group wrong: %d, %d", m.ActiveThread(1, 0), m.ActiveThread(1, 1))
	}
	if !m.IsActiveThread(1, 5) || m.IsActiveThread(1, 2) {
		t.Fatal("IsActiveThread wrong for non-linear groups")
	}
}

// Property: every generated destination thread belongs to the window's
// active group, for arbitrary windows and draws.
func TestQuickPHOLDDestinationsInActiveGroup(t *testing.T) {
	m, _ := NewPHOLD(PHOLDConfig{Threads: 16, LPsPerThread: 4, EndTime: 80, Imbalance: 8, NonLinear: true})
	f := func(w uint8, i uint8) bool {
		win := int(w) % 8
		idx := int(i) % m.GroupSize()
		tid := m.ActiveThread(win, idx)
		return tid >= 0 && tid < 16 && m.IsActiveThread(win, tid)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPHOLDEventPopulationConserved(t *testing.T) {
	m, _ := NewPHOLD(PHOLDConfig{Threads: 4, LPsPerThread: 4, EndTime: 25, Imbalance: 2})
	eng := newEngine(t, m, 4, 25, 7)
	drive(t, eng)
	s := eng.TotalStats()
	if s.Committed == 0 {
		t.Fatal("nothing committed")
	}
	// Every event spawns exactly one event: the live population after
	// quiescence equals the starting population (16), all parked at or
	// beyond the end time.
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var stateTotal int64
	for _, lp := range eng.LPs() {
		stateTotal += lp.State().(*PHOLDState).Processed
	}
	if uint64(stateTotal) != s.Committed {
		t.Fatalf("state counters %d != committed %d", stateTotal, s.Committed)
	}
}

// Temporal execution locality: chains must chew through window w's
// events (owned by group w) before producing window w+1 traffic, so
// groups become busy strictly in window order.
func TestPHOLDImbalanceActivatesGroupsInOrder(t *testing.T) {
	const threads, lpsPer, K = 8, 2, 4
	m, _ := NewPHOLD(PHOLDConfig{Threads: threads, LPsPerThread: lpsPer, EndTime: 40, Imbalance: K})
	eng := newEngine(t, m, threads, 40, 11)
	cpu := &accCPU{}
	// Each thread owns lpsPer initial events; "busy" means it processed
	// well beyond those, i.e. received real window traffic.
	const busyThreshold = 20
	firstBusy := [K]int{}
	for g := range firstBusy {
		firstBusy[g] = -1
	}
	for pass := 1; pass <= 4000; pass++ {
		for _, p := range eng.Peers() {
			p.Drain(cpu)
			p.ProcessBatch(cpu)
		}
		for g := 0; g < K; g++ {
			if firstBusy[g] >= 0 {
				continue
			}
			var sum uint64
			for i := 0; i < threads/K; i++ {
				sum += eng.Peer(m.ActiveThread(g, i)).Stats.Processed
			}
			if sum >= busyThreshold {
				firstBusy[g] = pass
			}
		}
	}
	for g := 0; g < K; g++ {
		if firstBusy[g] < 0 {
			t.Fatalf("group %d never became busy: %v", g, firstBusy)
		}
	}
	for g := 1; g < K; g++ {
		if firstBusy[g] < firstBusy[g-1] {
			t.Fatalf("group %d busy at pass %d before group %d at %d",
				g, firstBusy[g], g-1, firstBusy[g-1])
		}
	}
}

// ---------- Epidemics ----------

func TestEpidemicsValidation(t *testing.T) {
	cases := []EpidemicsConfig{
		{Threads: 0, LPsPerThread: 1, EndTime: 1},
		{Threads: 1, LPsPerThread: 0, EndTime: 1},
		{Threads: 4, LPsPerThread: 1, EndTime: 1, LockdownGroups: 3},
		{Threads: 1, LPsPerThread: 1, EndTime: 0},
	}
	for i, cfg := range cases {
		if _, err := NewEpidemics(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEpidemicsUnlockedRegionShifts(t *testing.T) {
	m, _ := NewEpidemics(EpidemicsConfig{Threads: 8, LPsPerThread: 4, EndTime: 40, LockdownGroups: 4})
	// Window 0: LPs 0..7 unlocked; window 2: LPs 16..23.
	if !m.Unlocked(3, 1) || m.Unlocked(16, 1) {
		t.Fatal("window 0 region wrong")
	}
	if !m.Unlocked(17, 22) || m.Unlocked(3, 22) {
		t.Fatal("window 2 region wrong")
	}
}

func TestEpidemicsRunsAndInfects(t *testing.T) {
	m, _ := NewEpidemics(EpidemicsConfig{
		Threads: 4, LPsPerThread: 8, EndTime: 20, LockdownGroups: 4,
		ContactRate: 3, TransmissionProb: 0.5,
	})
	eng := newEngine(t, m, 4, 20, 3)
	drive(t, eng)
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var exposures, infections, recoveries int64
	locked := 0
	for _, lp := range eng.LPs() {
		st := lp.State().(*HouseholdState)
		exposures += st.Exposures
		infections += st.Infections
		recoveries += st.Recoveries
		for _, a := range st.Agents {
			if a > Recovered {
				t.Fatalf("invalid agent state %d", a)
			}
		}
		if st.Exposures == 0 && st.Infections == 0 {
			locked++
		}
	}
	if infections == 0 {
		t.Fatal("epidemic never took off")
	}
	// Infections include seeds (no exposure step), so infections >=
	// recoveries is the only safe ordering; every exposure eventually
	// becomes infectious or stays exposed at end.
	if recoveries > infections {
		t.Fatalf("recoveries %d > infections %d", recoveries, infections)
	}
	_ = locked // many runs leave untouched households, but seeds reach every group
}

func TestEpidemicsSEIRMonotonicity(t *testing.T) {
	// Agent states only move S -> E -> I -> R; verify via committed
	// counters: exposures >= infections via E (infections also come
	// from seeds), recoveries <= infections.
	m, _ := NewEpidemics(EpidemicsConfig{
		Threads: 2, LPsPerThread: 8, EndTime: 30, LockdownGroups: 2,
		ContactRate: 2, TransmissionProb: 0.4, SeedsPerWindow: 2,
	})
	eng := newEngine(t, m, 2, 30, 5)
	drive(t, eng)
	var st HouseholdState
	seeds := int64(2 * 2) // SeedsPerWindow × LockdownGroups
	for _, lp := range eng.LPs() {
		s := lp.State().(*HouseholdState)
		st.Exposures += s.Exposures
		st.Infections += s.Infections
		st.Recoveries += s.Recoveries
	}
	if st.Infections > st.Exposures+seeds {
		t.Fatalf("infections %d exceed exposures %d + seeds %d", st.Infections, st.Exposures, seeds)
	}
	if st.Recoveries > st.Infections {
		t.Fatalf("recoveries %d exceed infections %d", st.Recoveries, st.Infections)
	}
}

// Lock-down confinement: every contact event's destination must be
// unlocked at the contact's virtual time, so a household can only
// accumulate exposures while its group's window is open. Verified by
// checking that exposure-bearing groups become busy in window order.
func TestEpidemicsLockdownConfinesSpread(t *testing.T) {
	const threads, K = 8, 4
	m, _ := NewEpidemics(EpidemicsConfig{
		Threads: threads, LPsPerThread: 4, EndTime: 40, LockdownGroups: K,
		ContactRate: 3, TransmissionProb: 0.5, SeedsPerWindow: 3,
	})
	eng := newEngine(t, m, threads, 40, 9)
	cpu := &accCPU{}
	firstExposed := [K]int{}
	for g := range firstExposed {
		firstExposed[g] = -1
	}
	groupThreads := threads / K
	for pass := 1; pass <= 6000; pass++ {
		for _, p := range eng.Peers() {
			p.Drain(cpu)
			p.ProcessBatch(cpu)
		}
		for g := 0; g < K; g++ {
			if firstExposed[g] >= 0 {
				continue
			}
			var sum int64
			for tid := g * groupThreads; tid < (g+1)*groupThreads; tid++ {
				for _, lp := range eng.Peer(tid).LPs() {
					sum += lp.State().(*HouseholdState).Exposures
				}
			}
			if sum > 0 {
				firstExposed[g] = pass
			}
		}
	}
	for g := 1; g < K; g++ {
		if firstExposed[g] >= 0 && firstExposed[g-1] >= 0 && firstExposed[g] < firstExposed[g-1] {
			t.Fatalf("group %d exposed at pass %d before group %d at %d",
				g, firstExposed[g], g-1, firstExposed[g-1])
		}
	}
	if firstExposed[0] < 0 {
		t.Fatal("group 0 never exposed")
	}
}

// ---------- Traffic ----------

func TestTrafficValidation(t *testing.T) {
	cases := []TrafficConfig{
		{Threads: 0, LPsPerThread: 1},
		{Threads: 1, LPsPerThread: 0},
		{Threads: 2, LPsPerThread: 3}, // 6 not a perfect square
	}
	for i, cfg := range cases {
		if _, err := NewTraffic(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTrafficGridGeometry(t *testing.T) {
	m, _ := NewTraffic(TrafficConfig{Threads: 4, LPsPerThread: 4}) // 16 LPs = 4x4
	if m.GridSide() != 4 {
		t.Fatalf("grid side = %d", m.GridSide())
	}
	// Neighbor stepping with boundary reflection.
	if m.neighbor(0, West) == 0 && m.GridSide() > 1 {
		// reflection sends it inward, never self for grid > 2
		t.Log("west reflection at corner:", m.neighbor(0, West))
	}
	n := m.neighbor(5, East) // (1,1) -> (2,1) = 6
	if n != 6 {
		t.Fatalf("neighbor(5, East) = %d, want 6", n)
	}
	n = m.neighbor(5, South) // (1,1) -> (1,2) = 9
	if n != 9 {
		t.Fatalf("neighbor(5, South) = %d, want 9", n)
	}
}

// Property: neighbours are always valid LPs and adjacent or reflected.
func TestQuickTrafficNeighborsValid(t *testing.T) {
	m, _ := NewTraffic(TrafficConfig{Threads: 4, LPsPerThread: 16}) // 8x8
	f := func(lpRaw uint8, dirRaw uint8) bool {
		lp := int(lpRaw) % 64
		dir := int64(dirRaw) % 4
		n := m.neighbor(lp, dir)
		return n >= 0 && n < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrafficDensityDecaysFromCenter(t *testing.T) {
	for _, g := range []float64{0.35, 0.5} {
		m, _ := NewTraffic(TrafficConfig{Threads: 4, LPsPerThread: 16, DensityGradient: g})
		center := m.lpAt(3, 3) // near centre of 8x8
		corner := m.lpAt(0, 0)
		if m.StartEvents(center) <= m.StartEvents(corner) {
			t.Fatalf("gradient %v: centre %d <= corner %d", g, m.StartEvents(center), m.StartEvents(corner))
		}
		if m.StartEvents(center) > m.Config().CenterStartEvents {
			t.Fatalf("centre exceeds CenterStartEvents")
		}
	}
}

func TestTrafficHigherGradientMoreCentralized(t *testing.T) {
	lo, _ := NewTraffic(TrafficConfig{Threads: 4, LPsPerThread: 16, DensityGradient: 0.35})
	hi, _ := NewTraffic(TrafficConfig{Threads: 4, LPsPerThread: 16, DensityGradient: 0.5})
	corner := 0
	if hi.StartEvents(corner) > lo.StartEvents(corner) {
		t.Fatal("higher gradient should strip the periphery")
	}
}

func TestTrafficRunsAndConservesVehicles(t *testing.T) {
	m, _ := NewTraffic(TrafficConfig{Threads: 4, LPsPerThread: 4, CenterStartEvents: 6})
	eng := newEngine(t, m, 4, 15, 13)
	drive(t, eng)
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var arrivals, departures, queued int64
	for _, lp := range eng.LPs() {
		st := lp.State().(*IntersectionState)
		arrivals += st.Arrivals
		departures += st.Departures
		queued += st.Queued
		if st.Queued < 0 {
			t.Fatalf("negative queue at LP %d", lp.ID)
		}
	}
	if arrivals == 0 {
		t.Fatal("no vehicles moved")
	}
	// Vehicles in flight or queued: arrivals - departures = queued.
	if arrivals-departures != queued {
		t.Fatalf("conservation violated: arrivals %d - departures %d != queued %d", arrivals, departures, queued)
	}
}

func TestTrafficCenterBusierThanPeriphery(t *testing.T) {
	m, _ := NewTraffic(TrafficConfig{Threads: 4, LPsPerThread: 16, DensityGradient: 0.5, CenterStartEvents: 12})
	eng := newEngine(t, m, 4, 10, 17)
	drive(t, eng)
	var center, corner int64
	side := m.GridSide()
	for _, lp := range eng.LPs() {
		st := lp.State().(*IntersectionState)
		x, y := lp.ID%side, lp.ID/side
		if (x == 3 || x == 4) && (y == 3 || y == 4) {
			center += st.Arrivals
		}
		if (x <= 1 || x >= side-2) && (y <= 1 || y >= side-2) {
			corner += st.Arrivals
		}
	}
	// 4 centre cells vs 16 corner cells: per-cell centre activity must
	// dominate.
	if center/4 <= corner/16 {
		t.Fatalf("centre per-cell %d <= corner per-cell %d", center/4, corner/16)
	}
}

// ---------- Reverse computation ----------

// Every bundled model must commit the identical trajectory under copy
// state-saving and reverse computation, including through rollbacks.
func TestReverseComputationMatchesCopyAllModels(t *testing.T) {
	type build func() tw.Model
	cases := []struct {
		name  string
		build build
		final func(eng *tw.Engine) []int64
	}{
		{
			"phold",
			func() tw.Model {
				m, _ := NewPHOLD(PHOLDConfig{Threads: 4, LPsPerThread: 4, EndTime: 25, Imbalance: 2})
				return m
			},
			func(eng *tw.Engine) []int64 {
				var out []int64
				for _, lp := range eng.LPs() {
					out = append(out, lp.State().(*PHOLDState).Processed)
				}
				return out
			},
		},
		{
			"epidemics",
			func() tw.Model {
				m, _ := NewEpidemics(EpidemicsConfig{
					Threads: 4, LPsPerThread: 8, EndTime: 25, LockdownGroups: 4,
					ContactRate: 3, TransmissionProb: 0.5, SeedsPerWindow: 3,
				})
				return m
			},
			func(eng *tw.Engine) []int64 {
				var out []int64
				for _, lp := range eng.LPs() {
					st := lp.State().(*HouseholdState)
					out = append(out, st.Exposures, st.Infections, st.Recoveries, st.ContactsSeen)
					for _, a := range st.Agents {
						out = append(out, int64(a))
					}
				}
				return out
			},
		},
		{
			"traffic",
			func() tw.Model {
				m, _ := NewTraffic(TrafficConfig{Threads: 4, LPsPerThread: 4, CenterStartEvents: 8})
				return m
			},
			func(eng *tw.Engine) []int64 {
				var out []int64
				for _, lp := range eng.LPs() {
					st := lp.State().(*IntersectionState)
					out = append(out, st.Arrivals, st.Departures, st.Queued)
				}
				return out
			},
		},
	}
	// A skewed drive order to force cross-thread rollbacks.
	order := []int{0, 0, 0, 0, 1, 2, 3}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(policy tw.SavePolicy) ([]int64, uint64, uint64) {
				eng, err := tw.NewEngine(tw.Config{
					NumThreads: 4, Model: tc.build(), EndTime: 25, Seed: 31,
					StateSaving: policy,
				})
				if err != nil {
					t.Fatal(err)
				}
				driveOrder(t, eng, order)
				if err := eng.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				s := eng.TotalStats()
				return tc.final(eng), s.Committed, s.RolledBack
			}
			wantState, wantCommitted, _ := run(tw.SaveCopy)
			gotState, gotCommitted, rolled := run(tw.SaveReverse)
			if gotCommitted != wantCommitted {
				t.Fatalf("committed %d != %d", gotCommitted, wantCommitted)
			}
			for i := range wantState {
				if gotState[i] != wantState[i] {
					t.Fatalf("state[%d] = %d, want %d (rolled back %d)", i, gotState[i], wantState[i], rolled)
				}
			}
		})
	}
}

// driveOrder drives peers in a repeating order until quiescent.
func driveOrder(t *testing.T, eng *tw.Engine, order []int) {
	t.Helper()
	cpu := &accCPU{}
	for pass := 0; pass < 5_000_000; pass++ {
		busy := false
		for _, id := range order {
			p := eng.Peer(id)
			if p.Drain(cpu) > 0 || p.ProcessBatch(cpu) > 0 {
				busy = true
			}
		}
		if busy {
			continue
		}
		min := math.Inf(1)
		for _, p := range eng.Peers() {
			if m := p.LocalMin(cpu); m < min {
				min = m
			}
			if s := p.TakeMinSent(); s < min {
				min = s
			}
		}
		eng.SetGVT(math.Min(min, eng.EndTime()))
		for _, p := range eng.Peers() {
			p.FossilCollect(cpu, eng.GVT())
		}
		if eng.Done() {
			return
		}
	}
	t.Fatal("model did not quiesce")
}
