package models

import "ggpdes/internal/tw"

// Reverse computation support (ROSS-style): every model implements
// tw.ReverseModel so the engine can roll back by undoing handlers
// instead of restoring state copies. Forward handlers stash what they
// changed in the event's undo word; the engine restores RNG position
// and LVT itself and unsends all sends.
var (
	_ tw.ReverseModel = (*PHOLD)(nil)
	_ tw.ReverseModel = (*Epidemics)(nil)
	_ tw.ReverseModel = (*Traffic)(nil)
)

// OnReverseEvent implements tw.ReverseModel: PHOLD's only state is a
// counter.
func (m *PHOLD) OnReverseEvent(ctx *tw.EventCtx) {
	ctx.LP().State().(*PHOLDState).Processed--
}

// Epidemics undo encoding: 0 = no agent transition happened; otherwise
// agent index + 1.

// OnReverseEvent implements tw.ReverseModel for the SEIR model.
func (m *Epidemics) OnReverseEvent(ctx *tw.EventCtx) {
	st := ctx.LP().State().(*HouseholdState)
	undo := ctx.Undo()
	switch ctx.Event().Kind {
	case EvSeed:
		if undo > 0 {
			st.Agents[undo-1] = Susceptible
			st.Infections--
		}
	case EvContact:
		st.ContactsSeen--
		if undo > 0 {
			st.Agents[undo-1] = Susceptible
			st.Exposures--
		}
	case EvBecomeInfectious:
		if undo > 0 {
			st.Agents[undo-1] = Exposed
			st.Infections--
		}
	case EvRecover:
		if undo > 0 {
			st.Agents[undo-1] = Infectious
			st.Recoveries--
		}
	}
}

// OnReverseEvent implements tw.ReverseModel for the traffic model;
// lane selection mutates no state (its send is unsent by the engine).
func (m *Traffic) OnReverseEvent(ctx *tw.EventCtx) {
	st := ctx.LP().State().(*IntersectionState)
	switch ctx.Event().Kind {
	case EvArrival:
		st.Arrivals--
		st.Queued--
	case EvLaneSelect:
		// No state mutation to undo.
	case EvDeparture:
		st.Queued++
		st.Departures--
	}
}
