// Package models implements the paper's three simulation applications:
// the synthetic PHOLD benchmark (balanced and 1-K imbalanced variants
// with linear or non-linear temporal execution locality), the
// location-aware SEIR Epidemics model with shifting lock-down regions,
// and the Traffic model with inverse-power density gradients and
// Burr-distributed travel times.
package models

import (
	"errors"
	"fmt"

	"ggpdes/internal/tw"
)

// PHOLDState is a PHOLD LP's state: counters only — PHOLD events carry
// no semantics beyond forwarding.
type PHOLDState struct {
	// Processed counts events this LP executed (committed trajectory).
	Processed int64
}

// Clone implements tw.State.
func (s *PHOLDState) Clone() tw.State {
	c := *s
	return &c
}

// CopyFrom implements tw.StateCopier, letting the engine recycle
// snapshot memory instead of cloning.
func (s *PHOLDState) CopyFrom(src tw.State) {
	*s = *src.(*PHOLDState)
}

// PHOLD is the classical hold-model benchmark: each received event
// schedules exactly one new event at now + lookahead to a random
// destination, so the event population stays constant.
//
// The imbalanced variants (1-2, 1-4, 1-8, 1-16) divide the simulated
// time into K windows; during window w only the threads of group w
// receive traffic, imitating real models' temporal execution locality.
// With Linear grouping the active threads are consecutive ids (group w
// = threads [w·T/K, (w+1)·T/K)); with non-linear grouping they are
// strided (group w = threads with id ≡ w mod K), the pathological case
// for constant round-robin affinity (Figure 7b).
type PHOLD struct {
	cfg PHOLDConfig
	// windowLen is EndTime / Imbalance, computed lazily at first use.
	windowLen tw.VT
}

// PHOLDConfig parameterizes the PHOLD model.
type PHOLDConfig struct {
	// Threads must equal the engine's NumThreads.
	Threads int
	// LPsPerThread is the LPs each simulation thread serves (paper:
	// 128).
	LPsPerThread int
	// Imbalance is K in the 1-K imbalanced models; 1 is the balanced
	// model.
	Imbalance int
	// NonLinear selects strided (non-consecutive) active groups.
	NonLinear bool
	// EndTime must equal the engine's EndTime (window computation).
	EndTime tw.VT
	// LookaheadMin and LookaheadMean shape the delay: min + Exp(mean).
	LookaheadMin, LookaheadMean float64
	// StartEventsPerLP is each LP's initial event count (paper: 1).
	StartEventsPerLP int
}

// NewPHOLD validates the configuration and returns the model.
func NewPHOLD(cfg PHOLDConfig) (*PHOLD, error) {
	if cfg.Threads <= 0 {
		return nil, errors.New("phold: Threads must be positive")
	}
	if cfg.LPsPerThread <= 0 {
		return nil, errors.New("phold: LPsPerThread must be positive")
	}
	if cfg.Imbalance <= 0 {
		cfg.Imbalance = 1
	}
	if cfg.Threads%cfg.Imbalance != 0 {
		return nil, fmt.Errorf("phold: Imbalance %d must divide Threads %d", cfg.Imbalance, cfg.Threads)
	}
	if cfg.EndTime <= 0 {
		return nil, errors.New("phold: EndTime must be positive")
	}
	if cfg.LookaheadMin <= 0 {
		cfg.LookaheadMin = 0.1
	}
	if cfg.LookaheadMean <= 0 {
		cfg.LookaheadMean = 0.9
	}
	if cfg.StartEventsPerLP <= 0 {
		cfg.StartEventsPerLP = 1
	}
	return &PHOLD{cfg: cfg, windowLen: cfg.EndTime / tw.VT(cfg.Imbalance)}, nil
}

// Config returns the validated configuration.
func (m *PHOLD) Config() PHOLDConfig { return m.cfg }

// LPsPerThread implements tw.Model.
func (m *PHOLD) LPsPerThread() int { return m.cfg.LPsPerThread }

// InitLP implements tw.Model: every LP starts with StartEventsPerLP
// self-addressed events at small random offsets.
func (m *PHOLD) InitLP(ic *tw.InitCtx, lp *tw.LP) {
	lp.SetState(&PHOLDState{})
	for k := 0; k < m.cfg.StartEventsPerLP; k++ {
		ts := lp.Rand().Uniform(0, m.cfg.LookaheadMin+m.cfg.LookaheadMean)
		ic.ScheduleInit(lp.ID, ts, 0, 0, 0)
	}
}

// Window returns the locality window index for a virtual time.
func (m *PHOLD) Window(ts tw.VT) int {
	w := int(ts / m.windowLen)
	if w >= m.cfg.Imbalance {
		w = m.cfg.Imbalance - 1
	}
	if w < 0 {
		w = 0
	}
	return w
}

// ActiveThread returns the i-th active thread id of window w, for i in
// [0, Threads/Imbalance).
func (m *PHOLD) ActiveThread(w, i int) int {
	if m.cfg.NonLinear {
		// Strided: thread ids ≡ w (mod K).
		return w + i*m.cfg.Imbalance
	}
	// Linear: consecutive block.
	group := m.cfg.Threads / m.cfg.Imbalance
	return w*group + i
}

// GroupSize returns the number of threads active in any window.
func (m *PHOLD) GroupSize() int { return m.cfg.Threads / m.cfg.Imbalance }

// IsActiveThread reports whether thread tid is in window w's group.
func (m *PHOLD) IsActiveThread(w, tid int) bool {
	if m.cfg.NonLinear {
		return tid%m.cfg.Imbalance == w
	}
	group := m.cfg.Threads / m.cfg.Imbalance
	return tid/group == w
}

// OnEvent implements tw.Model: forward one event to a random LP in the
// destination timestamp's active group.
func (m *PHOLD) OnEvent(ctx *tw.EventCtx) {
	st := ctx.LP().State().(*PHOLDState)
	st.Processed++
	r := ctx.Rand()
	ts := ctx.Now() + m.cfg.LookaheadMin + r.Exponential(m.cfg.LookaheadMean)
	w := m.Window(ts)
	// Pick a uniform LP among the active group's LPs.
	thread := m.ActiveThread(w, r.Intn(m.GroupSize()))
	dst := thread*m.cfg.LPsPerThread + r.Intn(m.cfg.LPsPerThread)
	ctx.Send(dst, ts, 0, 0, 0)
}
