package models

import (
	"errors"

	"ggpdes/internal/tw"
)

// Agent disease states of the SEIR compartment model.
const (
	// Susceptible agents can be exposed.
	Susceptible uint8 = iota
	// Exposed agents are incubating; they become infectious after the
	// incubation delay.
	Exposed
	// Infectious agents generate contact events.
	Infectious
	// Recovered agents are immune.
	Recovered
)

// Epidemics event kinds.
const (
	// EvContact is an exposure attempt against a household.
	EvContact uint8 = iota
	// EvBecomeInfectious transitions an exposed agent (index in A).
	EvBecomeInfectious
	// EvRecover transitions an infectious agent (index in A).
	EvRecover
	// EvSeed is an exogenous importation at a window boundary.
	EvSeed
)

// HouseholdState is one LP's state: a household of AgentsPerHousehold
// agents following SEIR.
type HouseholdState struct {
	// Agents holds each agent's compartment.
	Agents []uint8
	// Exposures, Infections and Recoveries count committed transitions.
	Exposures, Infections, Recoveries int64
	// ContactsSeen counts contact events received.
	ContactsSeen int64
}

// Clone implements tw.State.
func (s *HouseholdState) Clone() tw.State {
	c := &HouseholdState{
		Agents:       append([]uint8(nil), s.Agents...),
		Exposures:    s.Exposures,
		Infections:   s.Infections,
		Recoveries:   s.Recoveries,
		ContactsSeen: s.ContactsSeen,
	}
	return c
}

// CopyFrom implements tw.StateCopier, reusing the receiver's Agents
// backing array when its capacity suffices (household sizes are fixed,
// so after the first copy it always does).
func (s *HouseholdState) CopyFrom(src tw.State) {
	o := src.(*HouseholdState)
	s.Agents = append(s.Agents[:0], o.Agents...)
	s.Exposures = o.Exposures
	s.Infections = o.Infections
	s.Recoveries = o.Recoveries
	s.ContactsSeen = o.ContactsSeen
}

// Epidemics is the location-aware SEIR epidemiology model (§2.3.2):
// each LP is a household of agents; infectious agents schedule contact
// events against neighbouring households. A lock-down confines the
// disease to a fraction 1/K of the population: households outside the
// currently unlocked region never get exposed, so their threads go
// quiet and become de-scheduling candidates. The unlocked region shifts
// across the simulated time like the imbalanced PHOLD windows, and each
// window starts with a few exogenous seed infections.
type Epidemics struct {
	cfg       EpidemicsConfig
	windowLen tw.VT
}

// EpidemicsConfig parameterizes the model.
type EpidemicsConfig struct {
	// Threads must equal the engine's NumThreads.
	Threads int
	// LPsPerThread is households per simulation thread (paper: 4096).
	LPsPerThread int
	// AgentsPerHousehold is the constant household size (paper: 4).
	AgentsPerHousehold int
	// LockdownGroups is K: the population is split into K groups and
	// only one is unlocked at a time (paper: 4 for 3/4 lock-down, 8 for
	// 7/8).
	LockdownGroups int
	// EndTime must equal the engine's EndTime.
	EndTime tw.VT
	// IncubationMean is the mean E->I delay.
	IncubationMean float64
	// InfectiousMean is the mean I->R delay.
	InfectiousMean float64
	// ContactRate is mean contact events per infectious agent per unit
	// virtual time.
	ContactRate float64
	// TransmissionProb is the chance a contact exposes a susceptible.
	TransmissionProb float64
	// NeighborhoodRadius bounds contact distance in LP-id space within
	// the unlocked group (location-awareness); 0 selects group-wide.
	NeighborhoodRadius int
	// SeedsPerWindow is the number of exogenous importations scheduled
	// at each window start.
	SeedsPerWindow int
}

// NewEpidemics validates the configuration and returns the model.
func NewEpidemics(cfg EpidemicsConfig) (*Epidemics, error) {
	if cfg.Threads <= 0 {
		return nil, errors.New("epidemics: Threads must be positive")
	}
	if cfg.LPsPerThread <= 0 {
		return nil, errors.New("epidemics: LPsPerThread must be positive")
	}
	if cfg.AgentsPerHousehold <= 0 {
		cfg.AgentsPerHousehold = 4
	}
	if cfg.LockdownGroups <= 0 {
		cfg.LockdownGroups = 1
	}
	if cfg.Threads%cfg.LockdownGroups != 0 {
		return nil, errors.New("epidemics: LockdownGroups must divide Threads")
	}
	if cfg.EndTime <= 0 {
		return nil, errors.New("epidemics: EndTime must be positive")
	}
	if cfg.IncubationMean <= 0 {
		cfg.IncubationMean = 1.0
	}
	if cfg.InfectiousMean <= 0 {
		cfg.InfectiousMean = 2.0
	}
	if cfg.ContactRate <= 0 {
		cfg.ContactRate = 2.0
	}
	if cfg.TransmissionProb <= 0 {
		cfg.TransmissionProb = 0.35
	}
	if cfg.SeedsPerWindow <= 0 {
		cfg.SeedsPerWindow = 3
	}
	return &Epidemics{cfg: cfg, windowLen: cfg.EndTime / tw.VT(cfg.LockdownGroups)}, nil
}

// Config returns the validated configuration.
func (m *Epidemics) Config() EpidemicsConfig { return m.cfg }

// LPsPerThread implements tw.Model.
func (m *Epidemics) LPsPerThread() int { return m.cfg.LPsPerThread }

// Window returns the lock-down window index for a virtual time.
func (m *Epidemics) Window(ts tw.VT) int {
	w := int(ts / m.windowLen)
	if w >= m.cfg.LockdownGroups {
		w = m.cfg.LockdownGroups - 1
	}
	if w < 0 {
		w = 0
	}
	return w
}

// groupLPRange returns the [lo, hi) LP-id range of window w's unlocked
// group (consecutive thread blocks).
func (m *Epidemics) groupLPRange(w int) (lo, hi int) {
	groupThreads := m.cfg.Threads / m.cfg.LockdownGroups
	lo = w * groupThreads * m.cfg.LPsPerThread
	hi = lo + groupThreads*m.cfg.LPsPerThread
	return lo, hi
}

// Unlocked reports whether household lp may be exposed at time ts.
func (m *Epidemics) Unlocked(lp int, ts tw.VT) bool {
	lo, hi := m.groupLPRange(m.Window(ts))
	return lp >= lo && lp < hi
}

// InitLP implements tw.Model: all agents susceptible; window-boundary
// seed events target each window's unlocked group.
func (m *Epidemics) InitLP(ic *tw.InitCtx, lp *tw.LP) {
	st := &HouseholdState{Agents: make([]uint8, m.cfg.AgentsPerHousehold)}
	lp.SetState(st)
	if lp.ID != 0 {
		return
	}
	// LP 0 seeds the whole simulation deterministically: a few
	// importations at the start of every lock-down window.
	r := lp.Rand()
	for w := 0; w < m.cfg.LockdownGroups; w++ {
		lo, hi := m.groupLPRange(w)
		for s := 0; s < m.cfg.SeedsPerWindow; s++ {
			ts := tw.VT(w)*m.windowLen + 0.001 + r.Float64()*0.2
			dst := lo + r.Intn(hi-lo)
			ic.ScheduleInit(dst, ts, EvSeed, 0, 0)
		}
	}
}

// OnEvent implements tw.Model. Each branch stashes an undo word (agent
// index + 1 when a compartment transition happened, 0 otherwise) for
// reverse computation.
func (m *Epidemics) OnEvent(ctx *tw.EventCtx) {
	st := ctx.LP().State().(*HouseholdState)
	ctx.SetUndo(0)
	switch ctx.Event().Kind {
	case EvSeed:
		// Exogenous importation: expose one susceptible agent directly
		// to infectious (skips incubation; it happened elsewhere).
		for i, a := range st.Agents {
			if a == Susceptible {
				st.Agents[i] = Infectious
				st.Infections++
				ctx.SetUndo(int64(i) + 1)
				m.scheduleInfectiousCourse(ctx, i)
				break
			}
		}
	case EvContact:
		st.ContactsSeen++
		if !m.Unlocked(ctx.LP().ID, ctx.Now()) {
			return // curfew: the household cannot be exposed
		}
		if !ctx.Rand().Bernoulli(m.cfg.TransmissionProb) {
			return
		}
		for i, a := range st.Agents {
			if a == Susceptible {
				st.Agents[i] = Exposed
				st.Exposures++
				ctx.SetUndo(int64(i) + 1)
				delay := ctx.Rand().Exponential(m.cfg.IncubationMean) + 0.05
				ctx.Send(ctx.LP().ID, ctx.Now()+delay, EvBecomeInfectious, int64(i), 0)
				break
			}
		}
	case EvBecomeInfectious:
		i := int(ctx.Event().A)
		if st.Agents[i] != Exposed {
			return // rolled-forward duplicate guard; should not happen
		}
		st.Agents[i] = Infectious
		st.Infections++
		ctx.SetUndo(int64(i) + 1)
		m.scheduleInfectiousCourse(ctx, i)
	case EvRecover:
		i := int(ctx.Event().A)
		if st.Agents[i] == Infectious {
			st.Agents[i] = Recovered
			st.Recoveries++
			ctx.SetUndo(int64(i) + 1)
		}
	}
}

// scheduleInfectiousCourse schedules the agent's recovery and its
// contact events against neighbouring unlocked households.
func (m *Epidemics) scheduleInfectiousCourse(ctx *tw.EventCtx, agent int) {
	r := ctx.Rand()
	duration := r.Exponential(m.cfg.InfectiousMean) + 0.1
	ctx.Send(ctx.LP().ID, ctx.Now()+duration, EvRecover, int64(agent), 0)
	// Contacts are Poisson over the infectious period.
	nContacts := int(m.cfg.ContactRate*duration + r.Float64())
	for c := 0; c < nContacts; c++ {
		when := ctx.Now() + r.Uniform(0.01, duration)
		dst := m.pickContact(ctx, when)
		ctx.Send(dst, when, EvContact, 0, 0)
	}
}

// pickContact chooses a contact household: nearby in LP-id space
// (location awareness), clipped to the window's unlocked group.
func (m *Epidemics) pickContact(ctx *tw.EventCtx, when tw.VT) int {
	r := ctx.Rand()
	lo, hi := m.groupLPRange(m.Window(when))
	if m.cfg.NeighborhoodRadius > 0 {
		self := ctx.LP().ID
		n := self + r.Intn(2*m.cfg.NeighborhoodRadius+1) - m.cfg.NeighborhoodRadius
		if n >= lo && n < hi {
			return n
		}
	}
	return lo + r.Intn(hi-lo)
}
