package models

import (
	"errors"
	"math"

	"ggpdes/internal/tw"
)

// Traffic event kinds.
const (
	// EvArrival is a vehicle arriving at an intersection.
	EvArrival uint8 = iota
	// EvLaneSelect is a vehicle choosing its outbound lane.
	EvLaneSelect
	// EvDeparture is a vehicle leaving toward a neighbour.
	EvDeparture
)

// Cardinal directions, encoded in event payload B.
const (
	North int64 = iota
	East
	South
	West
)

// IntersectionState is one LP's state: a city intersection.
type IntersectionState struct {
	// Queued is the number of vehicles currently at the intersection.
	Queued int64
	// Arrivals, Departures count committed vehicle movements.
	Arrivals, Departures int64
}

// Clone implements tw.State.
func (s *IntersectionState) Clone() tw.State {
	c := *s
	return &c
}

// CopyFrom implements tw.StateCopier, letting the engine recycle
// snapshot memory instead of cloning.
func (s *IntersectionState) CopyFrom(src tw.State) {
	*s = *src.(*IntersectionState)
}

// Traffic is the ROSS traffic model variant of §2.3.3: vehicles move
// through a grid of intersections via arrival, lane-selection and
// departure events; each LP communicates with its four cardinal
// neighbours. Initial vehicles per intersection decay with distance
// from the city centre by an inverse power law (1+d)^-gradient, so
// central threads stay busy while the periphery idles — limited,
// spatially-fixed execution locality, unlike PHOLD's shifting windows.
type Traffic struct {
	cfg  TrafficConfig
	grid int // grid side length; total LPs = grid*grid
}

// TrafficConfig parameterizes the model.
type TrafficConfig struct {
	// Threads must equal the engine's NumThreads.
	Threads int
	// LPsPerThread is intersections per thread (paper: 96). Threads ×
	// LPsPerThread must be a perfect square (the city grid).
	LPsPerThread int
	// DensityGradient is the inverse-power exponent (paper: 0.35, 0.5).
	DensityGradient float64
	// CenterStartEvents is the city-centre LP's initial vehicle count
	// (paper: 24).
	CenterStartEvents int
	// ServiceMean is the mean signal/queueing delay at an intersection.
	ServiceMean float64
	// BurrC and BurrK shape the travel-time distribution (paper: 12.4,
	// 0.46).
	BurrC, BurrK float64
	// CenterBias is the probability a departure heads toward the city
	// centre rather than uniformly; keeps density centralized.
	CenterBias float64
}

// NewTraffic validates the configuration and returns the model.
func NewTraffic(cfg TrafficConfig) (*Traffic, error) {
	if cfg.Threads <= 0 {
		return nil, errors.New("traffic: Threads must be positive")
	}
	if cfg.LPsPerThread <= 0 {
		return nil, errors.New("traffic: LPsPerThread must be positive")
	}
	n := cfg.Threads * cfg.LPsPerThread
	side := int(math.Round(math.Sqrt(float64(n))))
	if side*side != n {
		return nil, errors.New("traffic: Threads*LPsPerThread must be a perfect square")
	}
	if cfg.DensityGradient <= 0 {
		cfg.DensityGradient = 0.35
	}
	if cfg.CenterStartEvents <= 0 {
		cfg.CenterStartEvents = 24
	}
	if cfg.ServiceMean <= 0 {
		cfg.ServiceMean = 0.2
	}
	if cfg.BurrC <= 0 {
		cfg.BurrC = 12.4
	}
	if cfg.BurrK <= 0 {
		cfg.BurrK = 0.46
	}
	if cfg.CenterBias <= 0 {
		cfg.CenterBias = 0.3
	}
	return &Traffic{cfg: cfg, grid: side}, nil
}

// Config returns the validated configuration.
func (m *Traffic) Config() TrafficConfig { return m.cfg }

// GridSide returns the city grid's side length.
func (m *Traffic) GridSide() int { return m.grid }

// LPsPerThread implements tw.Model.
func (m *Traffic) LPsPerThread() int { return m.cfg.LPsPerThread }

// coords maps an LP id to grid coordinates (row-major).
func (m *Traffic) coords(lp int) (x, y int) { return lp % m.grid, lp / m.grid }

// lpAt maps grid coordinates to an LP id.
func (m *Traffic) lpAt(x, y int) int { return y*m.grid + x }

// centerDistance is the Euclidean distance from the grid centre.
func (m *Traffic) centerDistance(lp int) float64 {
	x, y := m.coords(lp)
	cx, cy := float64(m.grid-1)/2, float64(m.grid-1)/2
	dx, dy := float64(x)-cx, float64(y)-cy
	return math.Sqrt(dx*dx + dy*dy)
}

// StartEvents returns the initial vehicle count for an LP: the centre
// count scaled by the inverse-power density weight.
func (m *Traffic) StartEvents(lp int) int {
	w := math.Pow(1+m.centerDistance(lp), -m.cfg.DensityGradient)
	return int(math.Round(float64(m.cfg.CenterStartEvents) * w))
}

// InitLP implements tw.Model.
func (m *Traffic) InitLP(ic *tw.InitCtx, lp *tw.LP) {
	lp.SetState(&IntersectionState{})
	r := lp.Rand()
	for k := 0; k < m.StartEvents(lp.ID); k++ {
		ic.ScheduleInit(lp.ID, r.Uniform(0, 0.5), EvArrival, int64(lp.ID)<<8|int64(k), 0)
	}
}

// neighbor returns the LP one step in the given direction, reflecting
// at the city boundary.
func (m *Traffic) neighbor(lp int, dir int64) int {
	x, y := m.coords(lp)
	switch dir {
	case North:
		y--
	case South:
		y++
	case East:
		x++
	case West:
		x--
	}
	if x < 0 {
		x = 1
	}
	if x >= m.grid {
		x = m.grid - 2
	}
	if y < 0 {
		y = 1
	}
	if y >= m.grid {
		y = m.grid - 2
	}
	if x < 0 || x >= m.grid || y < 0 || y >= m.grid {
		// Degenerate 1x1 grid.
		return lp
	}
	return m.lpAt(x, y)
}

// towardCenter returns a direction that moves the LP toward the centre.
func (m *Traffic) towardCenter(lp int, r interface{ Intn(int) int }) int64 {
	x, y := m.coords(lp)
	cx, cy := (m.grid-1)/2, (m.grid-1)/2
	var opts []int64
	if x < cx {
		opts = append(opts, East)
	}
	if x > cx {
		opts = append(opts, West)
	}
	if y < cy {
		opts = append(opts, South)
	}
	if y > cy {
		opts = append(opts, North)
	}
	if len(opts) == 0 {
		return int64(r.Intn(4))
	}
	return opts[r.Intn(len(opts))]
}

// OnEvent implements tw.Model.
func (m *Traffic) OnEvent(ctx *tw.EventCtx) {
	st := ctx.LP().State().(*IntersectionState)
	r := ctx.Rand()
	ev := ctx.Event()
	switch ev.Kind {
	case EvArrival:
		st.Arrivals++
		st.Queued++
		// Queue at the signal, then select a lane.
		service := r.Exponential(m.cfg.ServiceMean) + 0.02
		ctx.Send(ctx.LP().ID, ctx.Now()+service, EvLaneSelect, ev.A, 0)
	case EvLaneSelect:
		var dir int64
		if r.Bernoulli(m.cfg.CenterBias) {
			dir = m.towardCenter(ctx.LP().ID, r)
		} else {
			dir = int64(r.Intn(4))
		}
		ctx.Send(ctx.LP().ID, ctx.Now()+0.01, EvDeparture, ev.A, dir)
	case EvDeparture:
		st.Queued--
		st.Departures++
		travel := r.Burr(m.cfg.BurrC, m.cfg.BurrK) + 0.05
		dst := m.neighbor(ctx.LP().ID, ev.B)
		ctx.Send(dst, ctx.Now()+travel, EvArrival, ev.A, 0)
	}
}
