package models

// Checkpoint codecs: every bundled model implements tw.CheckpointModel
// with a fixed-layout little-endian encoding of its LP state. The
// layouts are deliberately dumb — exported fields in declaration order
// — because checkpoint portability matters more than compactness and
// the envelope above this layer is versioned.

import (
	"encoding/binary"
	"fmt"

	"ggpdes/internal/tw"
)

func putI64(buf []byte, off int, v int64) int {
	binary.LittleEndian.PutUint64(buf[off:], uint64(v))
	return off + 8
}

func getI64(data []byte, off int) (int64, int) {
	return int64(binary.LittleEndian.Uint64(data[off:])), off + 8
}

// EncodeState implements tw.CheckpointModel.
func (m *PHOLD) EncodeState(s tw.State) ([]byte, error) {
	st, ok := s.(*PHOLDState)
	if !ok {
		return nil, fmt.Errorf("models: phold cannot encode %T", s)
	}
	buf := make([]byte, 8)
	putI64(buf, 0, st.Processed)
	return buf, nil
}

// DecodeState implements tw.CheckpointModel.
func (m *PHOLD) DecodeState(data []byte) (tw.State, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("models: phold state is %d bytes, want 8", len(data))
	}
	v, _ := getI64(data, 0)
	return &PHOLDState{Processed: v}, nil
}

// EncodeState implements tw.CheckpointModel.
func (m *Epidemics) EncodeState(s tw.State) ([]byte, error) {
	st, ok := s.(*HouseholdState)
	if !ok {
		return nil, fmt.Errorf("models: epidemics cannot encode %T", s)
	}
	buf := make([]byte, 8+len(st.Agents)+4*8)
	binary.LittleEndian.PutUint64(buf, uint64(len(st.Agents)))
	off := 8 + copy(buf[8:], st.Agents)
	off = putI64(buf, off, st.Exposures)
	off = putI64(buf, off, st.Infections)
	off = putI64(buf, off, st.Recoveries)
	putI64(buf, off, st.ContactsSeen)
	return buf, nil
}

// DecodeState implements tw.CheckpointModel.
func (m *Epidemics) DecodeState(data []byte) (tw.State, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("models: epidemics state is %d bytes, want >= 8", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) != 8+n+4*8 {
		return nil, fmt.Errorf("models: epidemics state is %d bytes, want %d for %d agents", len(data), 8+n+4*8, n)
	}
	st := &HouseholdState{Agents: append([]uint8(nil), data[8:8+n]...)}
	off := int(8 + n)
	st.Exposures, off = getI64(data, off)
	st.Infections, off = getI64(data, off)
	st.Recoveries, off = getI64(data, off)
	st.ContactsSeen, _ = getI64(data, off)
	return st, nil
}

// EncodeState implements tw.CheckpointModel.
func (m *Traffic) EncodeState(s tw.State) ([]byte, error) {
	st, ok := s.(*IntersectionState)
	if !ok {
		return nil, fmt.Errorf("models: traffic cannot encode %T", s)
	}
	buf := make([]byte, 3*8)
	off := putI64(buf, 0, st.Queued)
	off = putI64(buf, off, st.Arrivals)
	putI64(buf, off, st.Departures)
	return buf, nil
}

// DecodeState implements tw.CheckpointModel.
func (m *Traffic) DecodeState(data []byte) (tw.State, error) {
	if len(data) != 3*8 {
		return nil, fmt.Errorf("models: traffic state is %d bytes, want 24", len(data))
	}
	st := &IntersectionState{}
	off := 0
	st.Queued, off = getI64(data, off)
	st.Arrivals, off = getI64(data, off)
	st.Departures, _ = getI64(data, off)
	return st, nil
}
