package tw

import "ggpdes/internal/telemetry"

// PeerProbe is one thread's contribution to a per-GVT-round series
// point: its local virtual time, queue depth and cumulative event-pool
// traffic. In-process series recording folds probes straight into the
// point; a distributed coordinator fetches each shard's probes over
// the wire and assembles the same point (see FillSeriesTotals /
// FinishSeriesPoint).
type PeerProbe struct {
	LVT        float64 `json:"lvt"`
	Queued     int     `json:"queued"`
	PoolHits   uint64  `json:"pool_hits"`
	PoolMisses uint64  `json:"pool_misses"`
}

// Probe reads the peer's series contribution; pure reads, no simulated
// cycles, no allocation.
func (p *Peer) Probe() PeerProbe {
	lvt := 0.0
	for _, lp := range p.lps {
		if lp.lvt > lvt {
			lvt = lp.lvt
		}
	}
	return PeerProbe{
		LVT:        lvt,
		Queued:     p.pending.Len() + len(p.inq),
		PoolHits:   p.tel.poolEventHit.Value() + p.pool.eventHit,
		PoolMisses: p.tel.poolEventMiss.Value() + p.pool.eventMiss,
	}
}

// ProbeShard returns probes for the locally hosted peers — the whole
// engine unless Shardify narrowed the range.
func (e *Engine) ProbeShard() []PeerProbe {
	out := make([]PeerProbe, 0, e.shardHi-e.shardLo)
	for _, p := range e.peers[e.shardLo:e.shardHi] {
		out = append(out, p.Probe())
	}
	return out
}

// FillSeriesTotals populates the cumulative-total fields of a series
// point from engine-wide statistics.
func FillSeriesTotals(pt *telemetry.SeriesPoint, s PeerStats, uncommitted int) {
	pt.Processed = s.Processed
	pt.Committed = s.Committed
	pt.RolledBack = s.RolledBack
	pt.Rollbacks = s.Rollbacks
	if done := s.Committed + s.RolledBack; done > 0 {
		pt.CommitRatio = float64(s.Committed) / float64(done)
	}
	pt.Uncommitted = uncommitted
}

// FinishSeriesPoint derives the queue/pool aggregates and the
// virtual-time-horizon statistics from the per-thread LVTs already
// stored in pt.ThreadLVTs. Horizon width w is the LVT spread,
// roughness w² the mean squared deviation from the mean (Korniss et
// al.) — the signal that predicts rollback behaviour and that a future
// adaptive-optimism throttle will act on.
func FinishSeriesPoint(pt *telemetry.SeriesPoint, queued int, hits, misses uint64) {
	pt.QueueDepth = queued
	if hits+misses > 0 {
		pt.PoolHitRate = float64(hits) / float64(hits+misses)
	}
	min, max, sum := pt.ThreadLVTs[0], pt.ThreadLVTs[0], 0.0
	for _, v := range pt.ThreadLVTs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean := sum / float64(len(pt.ThreadLVTs))
	var rough float64
	for _, v := range pt.ThreadLVTs {
		d := v - mean
		rough += d * d
	}
	pt.MinLVT, pt.MaxLVT, pt.MeanLVT = min, max, mean
	pt.HorizonWidth = max - min
	pt.HorizonRoughness = rough / float64(len(pt.ThreadLVTs))
}

// FillSeriesPoint populates the engine-derived fields of a per-GVT-
// round series point: per-thread LVTs and the virtual-time-horizon
// statistics over them, cumulative event totals, the speculation
// window and queue depths, and the event-pool hit rate. It only reads
// engine state — no simulated cycles are charged — so series
// recording cannot perturb a trajectory. Called from the run loop's
// OnGVT hook, where the machine has serialized all thread execution.
func (e *Engine) FillSeriesPoint(pt *telemetry.SeriesPoint) {
	FillSeriesTotals(pt, e.TotalStats(), e.uncommitted)

	// Per-thread local virtual time: the latest timestamp each thread
	// has executed (the maximum over its LPs). A thread that has not
	// executed yet sits at 0, the simulation start.
	if cap(pt.ThreadLVTs) < len(e.peers) {
		pt.ThreadLVTs = make([]float64, len(e.peers))
	}
	pt.ThreadLVTs = pt.ThreadLVTs[:len(e.peers)]
	var hits, misses uint64
	queued := 0
	for i, p := range e.peers {
		pr := p.Probe()
		pt.ThreadLVTs[i] = pr.LVT
		queued += pr.Queued
		hits += pr.PoolHits
		misses += pr.PoolMisses
	}
	FinishSeriesPoint(pt, queued, hits, misses)
}
