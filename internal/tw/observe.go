package tw

import "ggpdes/internal/telemetry"

// FillSeriesPoint populates the engine-derived fields of a per-GVT-
// round series point: per-thread LVTs and the virtual-time-horizon
// statistics over them, cumulative event totals, the speculation
// window and queue depths, and the event-pool hit rate. It only reads
// engine state — no simulated cycles are charged — so series
// recording cannot perturb a trajectory. Called from the run loop's
// OnGVT hook, where the machine has serialized all thread execution.
func (e *Engine) FillSeriesPoint(pt *telemetry.SeriesPoint) {
	s := e.TotalStats()
	pt.Processed = s.Processed
	pt.Committed = s.Committed
	pt.RolledBack = s.RolledBack
	pt.Rollbacks = s.Rollbacks
	if done := s.Committed + s.RolledBack; done > 0 {
		pt.CommitRatio = float64(s.Committed) / float64(done)
	}
	pt.Uncommitted = e.uncommitted

	// Per-thread local virtual time: the latest timestamp each thread
	// has executed (the maximum over its LPs). A thread that has not
	// executed yet sits at 0, the simulation start.
	if cap(pt.ThreadLVTs) < len(e.peers) {
		pt.ThreadLVTs = make([]float64, len(e.peers))
	}
	pt.ThreadLVTs = pt.ThreadLVTs[:len(e.peers)]
	var hits, misses uint64
	queued := 0
	for i, p := range e.peers {
		lvt := 0.0
		for _, lp := range p.lps {
			if lp.lvt > lvt {
				lvt = lp.lvt
			}
		}
		pt.ThreadLVTs[i] = lvt
		queued += p.pending.Len() + len(p.inq)
		hits += p.tel.poolEventHit.Value() + p.pool.eventHit
		misses += p.tel.poolEventMiss.Value() + p.pool.eventMiss
	}
	pt.QueueDepth = queued
	if hits+misses > 0 {
		pt.PoolHitRate = float64(hits) / float64(hits+misses)
	}

	// Virtual-time-horizon statistics (Korniss et al.): width w is the
	// LVT spread, roughness w² the mean squared deviation from the
	// mean — the signal that predicts rollback behaviour and that a
	// future adaptive-optimism throttle will act on.
	min, max, sum := pt.ThreadLVTs[0], pt.ThreadLVTs[0], 0.0
	for _, v := range pt.ThreadLVTs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean := sum / float64(len(pt.ThreadLVTs))
	var rough float64
	for _, v := range pt.ThreadLVTs {
		d := v - mean
		rough += d * d
	}
	pt.MinLVT, pt.MaxLVT, pt.MeanLVT = min, max, mean
	pt.HorizonWidth = max - min
	pt.HorizonRoughness = rough / float64(len(pt.ThreadLVTs))
}
