package tw

import (
	"fmt"
	"math"
)

// Multi-process sharding. A distributed run splits one engine's peers
// across worker processes while keeping the byte-identical-trajectory
// guarantee. The trick is an exact control/data split:
//
//   - The coordinator process runs the unmodified machine, scheduler
//     and GVT algorithm over a "hollow" engine: its peers hold no event
//     state, and every public peer operation forwards over a
//     RemoteTransport to the worker hosting the real shard, at the
//     exact logical point the in-process call would have run. Because
//     machine execution is serialized and each forwarded call completes
//     before the next, the global interleaving of engine operations is
//     identical to the in-process run by construction.
//
//   - Each worker process hosts a full-topology engine whose peers
//     outside its shard are marked foreign: they hold no event state,
//     and sends routed to them are collected as WireEvents (the outbox)
//     for the coordinator to relay instead of being delivered locally.
//
// Engine-global scalars (sequence counter, GVT, uncommitted counts)
// are owned by the coordinator and threaded through every forwarded
// operation as an Envelope, so sequence numbers are assigned in the
// same global order as in-process and worker-side peak tracking sees
// globally correct values.
//
// Cross-shard event identity: a positive send to a foreign peer
// allocates a local shadow event exactly like an in-process send (same
// freelist pop, same pool counters, same sequence number) and keeps it
// on the cause's sent/tentative lists so rollback and lazy
// cancellation target it normally — but the shadow is never delivered
// or freed locally; the destination shard materializes a twin from the
// wire and owns its lifecycle from there. Anti-messages travel by
// TargetSeq; the destination resolves them through remoteIdx, its
// seq-to-twin table.

// RemoteTransport forwards a hollow peer's operations to the worker
// process hosting the real shard. Implementations perform the
// operation remotely, apply the returned Envelope and peer statistics
// to the local engine, relay any produced wire events, and charge cpu
// with exactly the cycles the remote operation charged.
type RemoteTransport interface {
	InputSize(peer int) int
	HasWork(peer int) bool
	HasExecutableWork(peer int) bool
	Drain(peer int, cpu CPU) int
	ProcessBatch(peer int, cpu CPU) int
	LocalMin(peer int, cpu CPU) VT
	RemoteMin(peer int) VT
	TakeMinSent(peer int) VT
	PeekMinSent(peer int) VT
	FossilCollect(peer int, cpu CPU, gvt VT) int

	// Fused pairs (see fused.go): the transport must run the two
	// constituent operations in their in-process order — one coalesced
	// frame for a batching transport, two round trips otherwise.
	DrainProcess(peer int, cpu CPU) (drained, processed int)
	DrainLocalMin(peer int, cpu CPU) (drained int, min VT)
	CutMins(peer int, cpu CPU) (minSent, localMin VT)
	ScanMins(peer int) (remoteMin, peekMinSent VT)
}

// Envelope is the engine-global scalar state threaded through every
// forwarded operation: the coordinator holds the master copy, the
// worker applies it before the operation and returns the updated
// values after. GVT rides along raw — applying it must not re-fire
// publication hooks, which belong to the coordinator.
type Envelope struct {
	Seq             uint64 `json:"seq"`
	GVT             VT     `json:"gvt"`
	Uncommitted     int    `json:"uncommitted"`
	PeakUncommitted int    `json:"peak_uncommitted"`
	PeakSinceMark   int    `json:"peak_since_mark"`
}

// EnvelopeOut snapshots the engine-global scalars.
func (e *Engine) EnvelopeOut() Envelope {
	return Envelope{
		Seq:             e.seq,
		GVT:             e.gvt,
		Uncommitted:     e.uncommitted,
		PeakUncommitted: e.peakUncommitted,
		PeakSinceMark:   e.peakSinceMark,
	}
}

// ApplyEnvelope installs coordinator-owned global scalars without
// firing any publication hooks (trace, OnGVT): those run on the
// coordinator, which owns the canonical run.
func (e *Engine) ApplyEnvelope(env Envelope) {
	e.seq = env.Seq
	e.gvt = env.GVT
	e.uncommitted = env.Uncommitted
	e.peakUncommitted = env.PeakUncommitted
	e.peakSinceMark = env.PeakSinceMark
}

// WireEvent is a cross-shard event or anti-message in transit. A
// positive event carries the full payload; an anti-message carries the
// sequence number of the event it annihilates, which the destination
// shard resolves through its remoteIdx table.
type WireEvent struct {
	Ts        VT     `json:"ts"`
	Seq       uint64 `json:"seq"`
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Kind      uint8  `json:"kind,omitempty"`
	A         int64  `json:"a,omitempty"`
	B         int64  `json:"b,omitempty"`
	Anti      bool   `json:"anti,omitempty"`
	TargetSeq uint64 `json:"target_seq,omitempty"`
}

// Shardify marks every peer outside [lo, hi) as foreign on a worker
// engine. Foreign peers drop their event state (the owning worker
// holds the real copies) and zero their pool accounting, so summing
// pool counters across all workers reproduces the in-process totals
// exactly; sends routed to them are collected in the outbox instead of
// delivered. Call it once, directly after NewEngine or
// NewEngineFromState.
func (e *Engine) Shardify(lo, hi int) error {
	if lo < 0 || hi > len(e.peers) || lo >= hi {
		return fmt.Errorf("tw: shard range [%d, %d) outside peers [0, %d)", lo, hi, len(e.peers))
	}
	e.shardLo, e.shardHi = lo, hi
	e.remoteIdx = make(map[uint64]*Event)
	for i, p := range e.peers {
		if i >= lo && i < hi {
			continue
		}
		p.foreign = true
		p.dropEvents()
	}
	return nil
}

// HollowAll turns a coordinator engine into pure control state: every
// peer drops its event state (peers keep their cumulative Stats, which
// the transport maintains from worker responses) and all public peer
// operations forward through rt. The engine keeps ownership of the
// global scalars — GVT publication, Done, sequence numbering.
func (e *Engine) HollowAll(rt RemoteTransport) {
	e.remote = rt
	for _, p := range e.peers {
		p.dropEvents()
	}
}

// ShardRange returns the local peer range; [0, NumThreads) unless
// Shardify narrowed it.
func (e *Engine) ShardRange() (lo, hi int) { return e.shardLo, e.shardHi }

// dropEvents discards a peer's event state without recycling anything:
// the authoritative copies live in another process, so freeing here
// would corrupt the pool accounting that the sharded engines keep in
// exact correspondence with an in-process run.
func (p *Peer) dropEvents() {
	p.inq = nil
	p.pending = newPendingQueue(p.eng)
	p.freeEvents = nil
	p.pool = poolStats{}
	p.quiesced = nil
	p.acc = 0
	p.minSent = math.Inf(1)
}

// TakeOutbox returns and clears the wire events produced by operations
// since the last call, in production order. The caller must relay them
// to their destination shards before running the next operation, so
// destination input-queue order matches the in-process run.
func (e *Engine) TakeOutbox() []WireEvent {
	if len(e.outbox) == 0 {
		return nil
	}
	out := e.outbox
	e.outbox = nil
	return out
}

// InjectRemote materializes a relayed wire event into the owning local
// peer's input queue. Positive events build a twin of the sender-side
// shadow (same identity, zero bookkeeping — exactly what an in-process
// delivery would have enqueued) and register it for future
// anti-message resolution; antis resolve their target through that
// table.
func (e *Engine) InjectRemote(w WireEvent) error {
	if w.Dst < 0 || w.Dst >= len(e.lps) {
		return fmt.Errorf("tw: remote event for unknown LP %d", w.Dst)
	}
	dst := e.peers[e.lps[w.Dst].Owner]
	if dst.foreign {
		return fmt.Errorf("tw: remote event for LP %d routed to foreign peer %d", w.Dst, dst.ID)
	}
	if w.Anti {
		target := e.remoteIdx[w.TargetSeq]
		if target == nil {
			return fmt.Errorf("tw: remote anti-message for unknown event seq %d", w.TargetSeq)
		}
		anti := &Event{Ts: w.Ts, Seq: w.Seq, Src: w.Src, Dst: w.Dst, Anti: true, Target: target}
		dst.inq = append(dst.inq, anti)
		return nil
	}
	ev := &Event{Ts: w.Ts, Seq: w.Seq, Src: w.Src, Dst: w.Dst, Kind: w.Kind, A: w.A, B: w.B}
	if e.remoteIdx == nil {
		e.remoteIdx = make(map[uint64]*Event)
	}
	e.remoteIdx[w.Seq] = ev
	dst.inq = append(dst.inq, ev)
	return nil
}

// Distributed quiesce. The coordinator reproduces checkpoint.go's
// three-stage fixpoint across workers by looping the exported
// shard-scoped passes in worker order — which is peer order, because
// shards partition peers in blocks — and relaying each pass's outbox
// before the next worker runs. The interleaving of drains, rollbacks
// and anti-message deliveries this produces is identical to the
// in-process quiesce, so the captured cut (including anti-message
// sequence numbers) is byte-identical.

// QuiescePassShard runs one drain-and-rollback round over the local
// shard's peers (stage one of quiesce) and reports whether any peer
// made progress. The coordinator loops rounds across all workers until
// a full round reports no progress anywhere.
func (e *Engine) QuiescePassShard() bool {
	return e.quiescePassRange(e.shardLo, e.shardHi)
}

// QuiesceDumpShard empties the local shard's pending sets into the
// peers' quiesced slices in pop order (stage two of quiesce). Run it
// only after the global stage-one fixpoint.
func (e *Engine) QuiesceDumpShard() {
	e.quiesceDumpRange(e.shardLo, e.shardHi)
}

// QuiesceFlushShard runs one lazy-cancellation flush-and-drain round
// over the local shard (stage three of quiesce) and reports progress;
// the coordinator loops it across workers like stage one.
func (e *Engine) QuiesceFlushShard() bool {
	return e.quiesceFlushRange(e.shardLo, e.shardHi)
}

// ShardState is the locally authoritative slice of a quiesced engine:
// the shard's LP records and its peers' pending events. The
// coordinator overlays shard states from all workers (plus its own
// master scalars and peer statistics) into one standard EngineState.
type ShardState struct {
	// LPLo is the global id of LPs[0]; the shard's LPs are contiguous
	// because the block LP-to-thread mapping keeps each peer's LPs
	// contiguous.
	LPLo int        `json:"lp_lo"`
	LPs  []LPRecord `json:"lps"`
	// PeerLo is the global index of Pending[0]'s peer.
	PeerLo  int             `json:"peer_lo"`
	Pending [][]EventRecord `json:"pending"`
}

// CaptureShard serializes the local shard after a completed
// distributed quiesce, validating and consuming the quiesced slices
// exactly as Capture does. The global uncommitted==0 check is the
// coordinator's job — only it holds the master count.
func (e *Engine) CaptureShard() (*ShardState, error) {
	cm, ok := e.cfg.Model.(CheckpointModel)
	if !ok {
		return nil, errNotCheckpointModel
	}
	lo, hi := e.shardLo, e.shardHi
	st := &ShardState{
		PeerLo:  lo,
		Pending: make([][]EventRecord, 0, hi-lo),
	}
	for _, p := range e.peers[lo:hi] {
		if st.LPs == nil && len(p.lps) > 0 {
			st.LPLo = p.lps[0].ID
		}
		recs, err := e.encodeLPs(cm, p.lps)
		if err != nil {
			return nil, err
		}
		st.LPs = append(st.LPs, recs...)
		pend, err := e.drainQuiesced(p)
		if err != nil {
			return nil, err
		}
		st.Pending = append(st.Pending, pend)
	}
	e.quiesceResetRange(lo, hi)
	return st, nil
}
