package tw

import (
	"fmt"
	"math"
	"testing"

	"ggpdes/internal/pq"
	"ggpdes/internal/telemetry"
)

// The pooling gold test: recycling event and snapshot memory must not
// change a single bit of the committed trajectory, for every pending
// queue kind, both state-saving modes, and both cancellation policies,
// under a rollback-heavy interleaving.
func TestPoolingPreservesTrajectories(t *testing.T) {
	order := []int{0, 0, 0, 0, 0, 1, 3, 2}
	type combo struct {
		queue  pq.Kind
		saving SavePolicy
		lazy   bool
	}
	run := func(c combo, disable bool) (uint64, []int, []float64, PeerStats) {
		eng, err := NewEngine(Config{
			NumThreads:       4,
			Model:            &reversibleRing{ringModel{lpsPerThread: 4, startPerLP: 2}},
			EndTime:          25,
			Seed:             777,
			QueueKind:        c.queue,
			StateSaving:      c.saving,
			LazyCancellation: c.lazy,
			DisablePooling:   disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		runQuiescent(t, eng, order)
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("%+v disable=%v: %v", c, disable, err)
		}
		committed, counts, sums := collectResults(eng)
		return committed, counts, sums, eng.TotalStats()
	}
	sawRollback, sawRecycle := false, false
	for _, queue := range []pq.Kind{pq.Splay, pq.Heap, pq.Calendar} {
		for _, saving := range []SavePolicy{SaveCopy, SaveReverse} {
			for _, lazy := range []bool{false, true} {
				c := combo{queue, saving, lazy}
				t.Run(fmt.Sprintf("%v-%s-lazy%v", queue, saving, lazy), func(t *testing.T) {
					onCommitted, onCounts, onSums, onStats := run(c, false)
					offCommitted, offCounts, offSums, offStats := run(c, true)
					if onStats.RolledBack > 0 {
						sawRollback = true
					}
					if onCommitted != offCommitted {
						t.Fatalf("pooled committed %d != unpooled %d", onCommitted, offCommitted)
					}
					for i := range onCounts {
						if onCounts[i] != offCounts[i] || math.Abs(onSums[i]-offSums[i]) > 0 {
							t.Fatalf("LP %d pooled state (%d, %v) != unpooled (%d, %v)",
								i, onCounts[i], onSums[i], offCounts[i], offSums[i])
						}
					}
					if onStats != offStats {
						t.Fatalf("pooled stats %+v != unpooled %+v", onStats, offStats)
					}
					if onStats.RolledBack > 0 {
						sawRecycle = true
					}
				})
			}
		}
	}
	if !sawRollback {
		t.Fatal("matrix produced no rollbacks; test exercises nothing")
	}
	_ = sawRecycle
}

// Pool traffic must actually happen: after a run with rollbacks and
// fossil collection, the telemetry counters show recycled events being
// served back out of the freelists.
func TestPoolCountersShowRecycling(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng, err := NewEngine(Config{
		NumThreads: 4,
		Model:      &ringModel{lpsPerThread: 4, startPerLP: 2},
		EndTime:    50,
		Seed:       42,
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	runQuiescent(t, eng, []int{0, 1, 2, 3})
	eng.FlushPoolStats()
	c := reg.Counters()
	if c[MetricPoolEventRecycled] == 0 {
		t.Fatal("no events were recycled")
	}
	if c[MetricPoolEventHit] == 0 {
		t.Fatal("no event allocation was served from a freelist")
	}
	if c[MetricPoolStateRecycled] == 0 || c[MetricPoolStateHit] == 0 {
		t.Fatalf("no snapshot recycling: %v", c)
	}
	if c[MetricPoolEventMiss] == 0 {
		t.Fatal("expected warm-up misses before the pools filled")
	}
}

// With pooling disabled, nothing must enter the freelists and the
// counters must stay zero — the A/B measurement baseline is honest.
func TestDisablePoolingDisables(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng, err := NewEngine(Config{
		NumThreads:     2,
		Model:          &ringModel{lpsPerThread: 2, startPerLP: 2},
		EndTime:        20,
		Seed:           42,
		Telemetry:      reg,
		DisablePooling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	runQuiescent(t, eng, []int{0, 1})
	eng.FlushPoolStats()
	c := reg.Counters()
	if c[MetricPoolEventHit] != 0 || c[MetricPoolEventRecycled] != 0 ||
		c[MetricPoolStateHit] != 0 || c[MetricPoolStateRecycled] != 0 {
		t.Fatalf("pooling traffic despite DisablePooling: %v", c)
	}
	for _, p := range eng.Peers() {
		if len(p.freeEvents) != 0 {
			t.Fatalf("peer %d freelist non-empty with pooling disabled", p.ID)
		}
	}
}

// Double-freeing an event must panic immediately — the poison state
// catches lifecycle bugs at the free site, not at some later corrupted
// reuse.
func TestPoolDoubleFreePanics(t *testing.T) {
	eng := newTestEngine(t, 1, 1, 1, 10)
	p := eng.Peer(0)
	ev := p.allocEvent()
	p.freeEvent(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.freeEvent(ev)
}

// A recycled event flowing back into a live structure must be caught:
// allocEvent panics on a corrupted freelist, and CheckInvariants sweeps
// the reachable containers in both directions.
func TestPoolUseAfterRecycleDetected(t *testing.T) {
	t.Run("corrupted-freelist", func(t *testing.T) {
		eng := newTestEngine(t, 1, 1, 1, 10)
		p := eng.Peer(0)
		live := p.allocEvent()
		p.freeEvents = append(p.freeEvents, live) // not via freeEvent: still live
		if err := eng.CheckInvariants(); err == nil {
			t.Fatal("CheckInvariants missed a live event on the freelist")
		}
		defer func() {
			if recover() == nil {
				t.Fatal("allocEvent accepted a live freelist entry")
			}
		}()
		p.allocEvent()
	})
	t.Run("pooled-in-input-queue", func(t *testing.T) {
		eng := newTestEngine(t, 1, 1, 1, 10)
		p := eng.Peer(0)
		ev := p.allocEvent()
		p.freeEvent(ev)
		p.inq = append(p.inq, ev)
		if err := eng.CheckInvariants(); err == nil {
			t.Fatal("CheckInvariants missed a recycled event in the input queue")
		}
	})
}

// Recycled events must come back fully reset: stale payload, undo
// words, targets or send lists leaking across lifetimes would be a
// silent correctness bug, so the pool poisons and clears everything.
func TestPoolResetsRecycledEvents(t *testing.T) {
	eng := newTestEngine(t, 1, 1, 1, 10)
	p := eng.Peer(0)
	ev := p.allocEvent()
	ev.Ts, ev.Seq, ev.Src, ev.Dst, ev.Kind = 3.5, 99, 1, 2, 7
	ev.A, ev.B, ev.undo = 11, 22, 33
	ev.Anti = true
	ev.Target = &Event{}
	ev.sent = append(ev.sent, &Event{})
	ev.tentative = append(ev.tentative, &Event{})
	ev.state = StateInQueue
	p.freeEvent(ev)
	if ev.state != statePooled || !math.IsInf(ev.Ts, -1) {
		t.Fatalf("freed event not poisoned: %v", ev)
	}
	got := p.allocEvent()
	if got != ev {
		t.Fatal("freelist did not return the recycled event")
	}
	if got.Seq != 0 || got.Src != 0 || got.Dst != 0 || got.Kind != 0 ||
		got.A != 0 || got.B != 0 || got.undo != 0 || got.Anti || got.Target != nil {
		t.Fatalf("recycled event carries stale fields: %+v", got)
	}
	if len(got.sent) != 0 || len(got.tentative) != 0 {
		t.Fatal("recycled event carries stale send lists")
	}
	if cap(got.sent) == 0 || cap(got.tentative) == 0 {
		t.Fatal("recycling dropped the send-list backing arrays")
	}
}
