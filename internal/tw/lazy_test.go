package tw

import (
	"math"
	"testing"
)

// The lazy-cancellation gold test: deferring anti-messages must never
// change the committed trajectory, under interleavings that roll back.
func TestLazyCancellationMatchesAggressive(t *testing.T) {
	run := func(lazy bool, order []int) (uint64, []int, []float64, PeerStats) {
		eng, err := NewEngine(Config{
			NumThreads:       4,
			Model:            &ringModel{lpsPerThread: 4, startPerLP: 2},
			EndTime:          30,
			Seed:             12345,
			LazyCancellation: lazy,
		})
		if err != nil {
			t.Fatal(err)
		}
		runQuiescent(t, eng, order)
		if err := eng.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		committed, counts, sums := collectResults(eng)
		return committed, counts, sums, eng.TotalStats()
	}
	orders := [][]int{
		{0, 1, 2, 3},
		{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3},
		{3, 1, 3, 0, 2},
	}
	refCommitted, refCounts, refSums, _ := run(false, orders[0])
	sawRollback := false
	for oi, order := range orders {
		committed, counts, sums, stats := run(true, order)
		if stats.RolledBack > 0 {
			sawRollback = true
		}
		if committed != refCommitted {
			t.Fatalf("order %d: lazy committed %d != aggressive %d", oi, committed, refCommitted)
		}
		for i := range counts {
			if counts[i] != refCounts[i] || math.Abs(sums[i]-refSums[i]) > 1e-9 {
				t.Fatalf("order %d: LP %d state diverged", oi, i)
			}
		}
	}
	if !sawRollback {
		t.Fatal("no lazy run rolled back; test exercises nothing")
	}
}

// detModel sends deterministically (no RNG draws), so a pure timing
// rollback regenerates identical sends and lazy cancellation must
// re-adopt them instead of annihilating.
type detModel struct{}

func (m *detModel) LPsPerThread() int { return 2 }
func (m *detModel) InitLP(ic *InitCtx, lp *LP) {
	lp.SetState(&ringState{})
	ic.ScheduleInit(lp.ID, 0.01*float64(lp.ID+1), 0, 0, 0)
}
func (m *detModel) OnEvent(ctx *EventCtx) {
	st := ctx.LP().State().(*ringState)
	st.Count++
	if ctx.Event().Kind == 1 {
		return // absorbed cross-message: counts, sends nothing
	}
	// Self-chains keep each peer supplied with local work; every third
	// event additionally emits an absorbed cross-message to the next
	// LP, which arrives late when that peer runs behind — a pure timing
	// straggler. No RNG draws: re-executions are bit-identical, so lazy
	// cancellation must re-adopt every regenerated send.
	ctx.Send(ctx.LP().ID, ctx.Now()+1.0, 0, 0, 0)
	if st.Count%3 == 0 {
		next := (ctx.LP().ID + 1) % ctx.Engine().NumLPs()
		ctx.Send(next, ctx.Now()+1.0, 1, 0, 0)
	}
}

func TestLazyCancellationReusesDeterministicSends(t *testing.T) {
	eng, err := NewEngine(Config{
		NumThreads:       2,
		Model:            &detModel{},
		EndTime:          200,
		Seed:             1,
		LazyCancellation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpu := &fakeCPU{}
	// Run peer 0 far ahead, then let peer 1 straggle it repeatedly.
	for i := 0; i < 50; i++ {
		eng.Peer(0).Drain(cpu)
		eng.Peer(0).ProcessBatch(cpu)
	}
	for i := 0; i < 200; i++ {
		eng.Peer(1).Drain(cpu)
		eng.Peer(1).ProcessBatch(cpu)
		eng.Peer(0).Drain(cpu)
		eng.Peer(0).ProcessBatch(cpu)
	}
	s := eng.TotalStats()
	if s.RolledBack == 0 {
		t.Skip("interleaving produced no rollbacks")
	}
	if s.LazyReused == 0 {
		t.Fatalf("no tentative sends re-adopted despite %d rolled-back deterministic events", s.RolledBack)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyCancellationFlushesChangedSends(t *testing.T) {
	// The ring model draws RNG per event, so a straggler shifts the
	// stream and re-executions produce different sends: leftovers must
	// be annihilated (LazyCancelled > 0), never silently leaked.
	eng, err := NewEngine(Config{
		NumThreads:       2,
		Model:            &ringModel{lpsPerThread: 2, startPerLP: 2},
		EndTime:          60,
		Seed:             3,
		LazyCancellation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	runQuiescent(t, eng, []int{0, 0, 0, 0, 1})
	s := eng.TotalStats()
	if s.RolledBack == 0 {
		t.Skip("no rollbacks this interleaving")
	}
	if s.LazyCancelled == 0 {
		t.Fatal("changed sends never flushed")
	}
	// Conservation: every send is eventually adopted, committed or
	// annihilated — the invariant checker and quiescence guarantee it.
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
