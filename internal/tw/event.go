// Package tw implements an optimistic (Time Warp) parallel discrete
// event simulation engine in the style of multi-threaded shared-memory
// ROSS: logical processes grouped onto simulation threads ("peers"),
// per-thread input queues and timestamp-ordered pending sets, state
// saving, rollback with anti-messages, fossil collection at GVT, and
// batch event processing.
//
// The engine is driven by simulated threads on an internal/machine
// Machine; all CPU costs are charged through the CPU interface so the
// committed-event-rate and CPU-time metrics of the reproduced paper can
// be measured on the simulated processor.
package tw

import "fmt"

// VT is virtual (simulation) time.
type VT = float64

// EventState tracks where an event currently lives.
type EventState uint8

// Event states.
const (
	// StateInQueue: the event sits in the destination thread's input
	// queue, not yet seen by its LP.
	StateInQueue EventState = iota
	// StatePending: the event is in the destination thread's
	// timestamp-ordered pending set.
	StatePending
	// StateProcessed: the event has been (speculatively) executed.
	StateProcessed
	// StateCancelled: the event was annihilated by an anti-message
	// before execution; queues skip it lazily.
	StateCancelled
	// StateCommitted: the event's timestamp fell below GVT and it was
	// fossil collected; it can never be rolled back.
	StateCommitted
	// statePooled: the event has been recycled into its peer's freelist
	// and must not be referenced by any queue, history or send list.
	// Observing it outside the pool is a use-after-recycle bug; the
	// engine panics wherever a pooled event could flow in, and
	// CheckInvariants sweeps every reachable container for leaks.
	statePooled
)

// String returns the state name.
func (s EventState) String() string {
	switch s {
	case StateInQueue:
		return "in-queue"
	case StatePending:
		return "pending"
	case StateProcessed:
		return "processed"
	case StateCancelled:
		return "cancelled"
	case StateCommitted:
		return "committed"
	case statePooled:
		return "pooled"
	default:
		return "invalid"
	}
}

// Event is a time-stamped message between LPs. Anti-messages are Events
// with Anti set, pointing at the positive event they cancel.
type Event struct {
	// Ts is the virtual time at which the event takes effect.
	Ts VT
	// Seq is a globally unique, monotonically assigned sequence number
	// used as a deterministic tiebreak for equal timestamps.
	Seq uint64
	// Src and Dst are LP ids.
	Src, Dst int
	// Kind is the model-defined event type.
	Kind uint8
	// Anti marks an anti-message; Target is the event it annihilates.
	Anti   bool
	Target *Event
	// A and B are model payload words.
	A, B int64

	state EventState
	// undo is the model's reverse-computation word (EventCtx.SetUndo).
	undo int64
	// saved holds the destination LP state from just before this event
	// was processed, for rollback.
	saved Snapshot
	// sent lists events this event's execution sent, for unsending.
	sent []*Event
	// tentative holds sends kept alive across a lazy-cancellation
	// rollback, awaiting re-adoption or deferred annihilation.
	tentative []*Event
}

// State returns the event's lifecycle state.
func (e *Event) State() EventState { return e.state }

// key orders events by (Ts, Seq); Seq breaks ties deterministically.
func (e *Event) before(o *Event) bool {
	if e.Ts != o.Ts {
		return e.Ts < o.Ts
	}
	return e.Seq < o.Seq
}

// String formats the event for diagnostics.
func (e *Event) String() string {
	tag := ""
	if e.Anti {
		tag = " anti"
	}
	return fmt.Sprintf("ev{ts=%.4f seq=%d %d->%d kind=%d%s %s}", e.Ts, e.Seq, e.Src, e.Dst, e.Kind, tag, e.state)
}
