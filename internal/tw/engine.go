package tw

import (
	"errors"
	"fmt"
	"math"

	"ggpdes/internal/pq"
	"ggpdes/internal/rng"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/trace"
)

// Metric names the engine registers.
const (
	// MetricRollbackDepth is a histogram of events undone per rollback
	// episode.
	MetricRollbackDepth = "tw.rollback_depth"
	// MetricCommitBatch is a histogram of events committed per
	// fossil-collection pass — the per-thread commit granularity.
	MetricCommitBatch = "tw.commit_batch"
	// MetricAntiMessages counts anti-messages sent.
	MetricAntiMessages = "tw.anti_messages"
	// MetricRollbacks counts rollback episodes.
	MetricRollbacks = "tw.rollbacks"
	// MetricCommittedEvents counts fossil-collected events.
	MetricCommittedEvents = "tw.committed_events"
	// MetricUncommittedPeak gauges the high-water mark of
	// processed-but-uncommitted events (state-saving memory demand).
	MetricUncommittedPeak = "tw.uncommitted_peak"
)

// CostModel gives the CPU cycle cost of engine operations on the
// simulated machine. Absolute values set absolute event rates; the
// reproduced comparisons depend only on their relative magnitudes.
type CostModel struct {
	// EventCycles is charged per executed event (model handler work).
	EventCycles uint64
	// StateSaveCycles is charged per pre-execution state snapshot.
	StateSaveCycles uint64
	// SendCycles is charged per event or anti-message enqueued to a
	// destination input queue.
	SendCycles uint64
	// DrainBaseCycles is charged per input-queue poll, even when empty
	// — the cost inactive threads keep paying in baseline systems.
	DrainBaseCycles uint64
	// DrainPerEventCycles is charged per drained entry.
	DrainPerEventCycles uint64
	// RollbackPerEventCycles is charged per rolled-back event (state
	// restore under SaveCopy, reverse handler under SaveReverse).
	RollbackPerEventCycles uint64
	// RngSaveCycles replaces StateSaveCycles per event under
	// SaveReverse: only the RNG position and LVT are snapshotted.
	RngSaveCycles uint64
	// LocalMinCycles is charged per GVT local-minimum scan.
	LocalMinCycles uint64
	// FossilBaseCycles and FossilPerEventCycles price fossil collection.
	FossilBaseCycles     uint64
	FossilPerEventCycles uint64
}

// DefaultCosts returns the cost model used throughout the evaluation.
func DefaultCosts() CostModel {
	return CostModel{
		EventCycles:            1200,
		StateSaveCycles:        250,
		SendCycles:             250,
		DrainBaseCycles:        120,
		DrainPerEventCycles:    100,
		RollbackPerEventCycles: 600,
		RngSaveCycles:          60,
		LocalMinCycles:         150,
		FossilBaseCycles:       100,
		FossilPerEventCycles:   25,
	}
}

// Config configures an Engine.
type Config struct {
	// NumThreads is the number of simulation threads (Peers).
	NumThreads int
	// Model is the simulation application.
	Model Model
	// EndTime is the virtual time at which the simulation completes
	// (simulation ends when GVT reaches it).
	EndTime VT
	// Seed drives all model randomness.
	Seed uint64
	// BatchSize is the number of events processed per main-loop cycle
	// (ROSS uses 8; 0 selects 8).
	BatchSize int
	// LPsPerKP groups each thread's LPs into kernel processes sharing
	// rollback state (ROSS's KPs). 0 or 1 keeps one KP per LP; larger
	// values trade rollback granularity for bookkeeping.
	LPsPerKP int
	// QueueKind selects the pending-set structure (default splay tree).
	QueueKind pq.Kind
	// Costs is the CPU cost model; zero value selects DefaultCosts.
	Costs CostModel
	// StateSaving selects copy state-saving (default) or reverse
	// computation; SaveReverse requires Model to be a ReverseModel.
	StateSaving SavePolicy
	// LazyCancellation defers anti-messages at rollback: the rolled-back
	// event keeps its sends as "tentative", and on re-execution any
	// regenerated send that matches a tentative one is reused instead of
	// being annihilated and resent. Wins when rollbacks do not change
	// what gets sent (pure timing stragglers), loses a little
	// bookkeeping otherwise — the classic Time Warp trade-off.
	LazyCancellation bool
	// Trace, when non-nil, records GVT publications, rollbacks, commits
	// and anti-messages.
	Trace *trace.Recorder
	// Telemetry, when non-nil, receives the engine's metrics (see the
	// Metric constants).
	Telemetry *telemetry.Registry
	// OnGVT, when non-nil, is invoked after every GVT publication —
	// the hook live progress reporting hangs off.
	OnGVT func(VT)
	// SendFaults, when non-nil, is consulted on every cross-peer send:
	// the chaos layer uses it to drop or delay inter-peer messages.
	// Injected faults deliberately violate Time Warp's reliable-delivery
	// assumption — runs may produce wrong trajectories or hang, which is
	// what the fault-detection machinery above the engine is tested
	// against. Nil means reliable delivery.
	SendFaults SendFaultInjector
	// OptimismWindow bounds speculation: events beyond GVT +
	// OptimismWindow are not executed until GVT catches up (ROSS's
	// max_opt_lookahead). Zero means unbounded optimism. Bounding
	// tames rollback thrash when demand-driven scheduling hands a
	// freshly woken thread group the whole machine.
	OptimismWindow VT
	// DisablePooling turns off event and snapshot recycling (see
	// pool.go), restoring the historical allocate-and-drop behaviour.
	// Pooling reuses memory, never logic, so this switch cannot change
	// a trajectory; it exists for A/B allocation measurements and for
	// bisecting suspected pool bugs, and like the other
	// observability-only knobs it is excluded from cache keys.
	DisablePooling bool
}

func (c *Config) fillDefaults() error {
	if c.NumThreads <= 0 {
		return errors.New("tw: NumThreads must be positive")
	}
	if c.Model == nil {
		return errors.New("tw: Model is required")
	}
	if c.EndTime <= 0 {
		return errors.New("tw: EndTime must be positive")
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.BatchSize < 0 {
		return errors.New("tw: BatchSize must be positive")
	}
	if c.LPsPerKP < 0 {
		return errors.New("tw: LPsPerKP must be non-negative")
	}
	if c.LPsPerKP == 0 {
		c.LPsPerKP = 1
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	if c.StateSaving == SaveReverse {
		if _, ok := c.Model.(ReverseModel); !ok {
			return errors.New("tw: SaveReverse requires a ReverseModel")
		}
	}
	return nil
}

// Engine owns the global simulation structures shared by all
// simulation threads. It performs no synchronization of its own: the
// simulated machine serializes all thread execution.
type Engine struct {
	cfg   Config
	lps   []*LP
	peers []*Peer
	seq   uint64
	gvt   VT
	// uncommitted counts processed-but-not-fossil-collected events, the
	// state-saving memory the GVT exists to bound (§2.1); peak tracks
	// its high-water mark.
	uncommitted     int
	peakUncommitted int
	peakSinceMark   int
	// cancelled makes Done report true regardless of GVT, winding the
	// simulation threads down at their next loop iteration.
	cancelled bool
	// paused winds the threads down like cancelled, but marks a clean
	// checkpoint boundary rather than an abort (see checkpoint.go).
	paused bool

	// crossSends counts cross-peer deliveries for the fault injector;
	// heldSends holds injector-delayed events awaiting release.
	crossSends uint64
	heldSends  []heldSend

	// Distributed sharding (see shard.go). remote, when non-nil, makes
	// every public peer operation forward to the worker hosting the
	// real shard (coordinator role). shardLo/shardHi bound the locally
	// hosted peers — [0, NumThreads) unless Shardify narrowed them.
	// outbox collects cross-shard sends awaiting relay, and remoteIdx
	// maps twin events materialized from the wire by sequence number so
	// relayed anti-messages can find their targets.
	remote    RemoteTransport
	shardLo   int
	shardHi   int
	outbox    []WireEvent
	remoteIdx map[uint64]*Event

	tel engineTelemetry
}

// SendFaultInjector decides the fate of cross-peer sends; implemented
// by the chaos layer.
type SendFaultInjector interface {
	// Outcome classifies the nth cross-peer send (n counts from 1):
	// drop loses the message; hold > 0 delays its delivery until hold
	// further cross-peer sends have occurred.
	Outcome(n uint64) (drop bool, hold uint64)
}

// heldSend is an injector-delayed event and its release point.
type heldSend struct {
	ev  *Event
	due uint64
}

// engineTelemetry caches the engine-global metric handles; handles
// from a nil registry record but report nothing. Per-thread metrics
// (rollbacks, commits, anti-messages, pool traffic) live on each
// Peer's shard handles instead — see peerTelemetry in peer.go.
type engineTelemetry struct {
	uncommittedPeak *telemetry.Gauge
}

// NewEngine builds LPs and peers, asks the model to initialize every
// LP, and distributes starting events.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	eng, err := newEngineShell(cfg)
	if err != nil {
		return nil, err
	}
	for _, lp := range eng.lps {
		cfg.Model.InitLP(&InitCtx{eng: eng, lp: lp}, lp)
		if lp.state == nil {
			return nil, fmt.Errorf("tw: model left LP %d without state", lp.ID)
		}
	}
	return eng, nil
}

// newEngineShell builds the LP/KP/peer topology for cfg (defaults
// already filled) without running model initialization; NewEngine runs
// InitLP on top, NewEngineFromState restores captured state instead.
func newEngineShell(cfg Config) (*Engine, error) {
	eng := &Engine{cfg: cfg}
	eng.tel = engineTelemetry{
		uncommittedPeak: cfg.Telemetry.Gauge(MetricUncommittedPeak),
	}
	perThread := cfg.Model.LPsPerThread()
	if perThread <= 0 {
		return nil, errors.New("tw: model reports non-positive LPsPerThread")
	}
	nLPs := perThread * cfg.NumThreads
	eng.shardLo, eng.shardHi = 0, cfg.NumThreads
	eng.peers = make([]*Peer, cfg.NumThreads)
	for i := range eng.peers {
		eng.peers[i] = newPeer(i, eng)
	}
	eng.lps = make([]*LP, nLPs)
	for id := 0; id < nLPs; id++ {
		// Block mapping: thread i serves LPs [i*perThread, (i+1)*perThread),
		// so "the first half of threads" also means the first half of LPs,
		// matching the paper's imbalanced models.
		owner := id / perThread
		lp := &LP{
			ID:    id,
			Owner: owner,
			rand:  rng.New(cfg.Seed, uint64(id)+1),
		}
		eng.lps[id] = lp
		p := eng.peers[owner]
		// KP assignment: consecutive runs of LPsPerKP LPs per thread.
		kpIdx := len(p.lps) / cfg.LPsPerKP
		if kpIdx == len(p.kps) {
			p.kps = append(p.kps, &KP{ID: kpIdx, Owner: owner})
		}
		lp.kp = p.kps[kpIdx]
		p.lps = append(p.lps, lp)
	}
	return eng, nil
}

// Config returns the engine configuration (defaults filled).
func (e *Engine) Config() Config { return e.cfg }

// Peers returns all simulation-thread states, indexed by thread id.
func (e *Engine) Peers() []*Peer { return e.peers }

// Peer returns the peer for thread id.
func (e *Engine) Peer(id int) *Peer { return e.peers[id] }

// LPs returns all logical processes, indexed by LP id.
func (e *Engine) LPs() []*LP { return e.lps }

// NumLPs returns the total LP count.
func (e *Engine) NumLPs() int { return len(e.lps) }

// UncommittedEvents returns the current count of processed events
// awaiting fossil collection.
func (e *Engine) UncommittedEvents() int { return e.uncommitted }

// PeakUncommittedEvents returns the high-water mark of uncommitted
// events — the run's state-saving memory demand.
func (e *Engine) PeakUncommittedEvents() int { return e.peakUncommitted }

// noteProcessed and noteUnprocessed maintain the memory gauge.
func (e *Engine) noteProcessed(n int) {
	e.uncommitted += n
	if e.uncommitted > e.peakUncommitted {
		e.peakUncommitted = e.uncommitted
		e.tel.uncommittedPeak.Set(float64(e.uncommitted))
	}
	if e.uncommitted > e.peakSinceMark {
		e.peakSinceMark = e.uncommitted
	}
}

// PeakUncommittedSinceMark returns the high-water mark since the last
// MarkUncommitted call; the adaptive GVT controller samples it per
// round.
func (e *Engine) PeakUncommittedSinceMark() int { return e.peakSinceMark }

// MarkUncommitted resets the per-round high-water mark.
func (e *Engine) MarkUncommitted() { e.peakSinceMark = e.uncommitted }

// GVT returns the engine's last published Global Virtual Time.
func (e *Engine) GVT() VT { return e.gvt }

// SetGVT publishes a newly computed GVT. It panics if GVT would move
// backwards — the monotonicity invariant of every GVT algorithm.
func (e *Engine) SetGVT(gvt VT) {
	if gvt < e.gvt {
		panic(fmt.Sprintf("tw: GVT moved backwards: %.6f -> %.6f", e.gvt, gvt))
	}
	e.gvt = gvt
	if e.cfg.Trace != nil {
		e.cfg.Trace.Add(trace.KindGVT, -1, gvt, 0)
	}
	if e.cfg.OnGVT != nil {
		e.cfg.OnGVT(gvt)
	}
}

// Done reports whether the simulation has completed (GVT has reached
// the end time), has been cancelled, or has been paused at a
// checkpoint boundary.
func (e *Engine) Done() bool { return e.cancelled || e.paused || e.gvt >= e.cfg.EndTime }

// Cancel requests early termination: Done becomes true immediately, so
// every simulation thread exits its main loop within one iteration —
// well inside one GVT round. The write is safe from the machine's
// driving goroutine because simulated threads only observe it between
// their serialized execution segments.
func (e *Engine) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Engine) Cancelled() bool { return e.cancelled }

// EndTime returns the simulation end time.
func (e *Engine) EndTime() VT { return e.cfg.EndTime }

// horizon returns the current speculation bound: GVT + OptimismWindow,
// or +Inf with unbounded optimism.
func (e *Engine) horizon() VT {
	if w := e.cfg.OptimismWindow; w > 0 {
		return e.gvt + w
	}
	return math.Inf(1)
}

// nextSeq assigns the next global event sequence number. Execution is
// machine-serialized, so a plain counter is deterministic.
func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// scheduleInit inserts a starting event directly into the destination
// peer's pending set; initial events precede the simulation and carry
// no rollback bookkeeping.
func (e *Engine) scheduleInit(src, dst int, ts VT, kind uint8, a, b int64) {
	if dst < 0 || dst >= len(e.lps) {
		panic(fmt.Sprintf("tw: initial event for unknown LP %d", dst))
	}
	if ts < 0 {
		panic("tw: initial event with negative timestamp")
	}
	p := e.peers[e.lps[dst].Owner]
	ev := p.allocEvent()
	ev.Ts = ts
	ev.Seq = e.nextSeq()
	ev.Src = src
	ev.Dst = dst
	ev.Kind = kind
	ev.A = a
	ev.B = b
	ev.state = StatePending
	p.pending.Push(ev)
}

// send delivers a model-generated event to the destination peer's
// input queue, recording it on the causing event for anti-messages.
// Under lazy cancellation, a send matching one of the cause's tentative
// (not-yet-annihilated) prior sends is satisfied by re-adopting it.
func (e *Engine) send(from *Peer, cause *Event, dst int, ts VT, kind uint8, a, b int64) {
	if dst < 0 || dst >= len(e.lps) {
		panic(fmt.Sprintf("tw: send to unknown LP %d", dst))
	}
	if e.cfg.LazyCancellation && len(cause.tentative) > 0 {
		for i, old := range cause.tentative {
			if old == nil {
				continue
			}
			if old.state == statePooled {
				panic("tw: tentative list holds recycled event " + old.String())
			}
			if old.Dst == dst && old.Ts == ts && old.Kind == kind &&
				old.A == a && old.B == b && old.state != StateCancelled {
				cause.tentative[i] = nil
				cause.sent = append(cause.sent, old)
				from.Stats.LazyReused++
				return
			}
		}
	}
	ev := from.allocEvent()
	ev.Ts = ts
	ev.Seq = e.nextSeq()
	ev.Src = cause.Dst
	ev.Dst = dst
	ev.Kind = kind
	ev.A = a
	ev.B = b
	cause.sent = append(cause.sent, ev)
	dstPeer := e.peers[e.lps[dst].Owner]
	if dstPeer == from {
		// Same-thread delivery goes straight to the pending set, as in
		// shared-memory ROSS; the input queue is for remote senders.
		// A send below the destination LP's local virtual time is a
		// straggler handled immediately.
		lp := e.lps[dst]
		if last := lp.kp.lastProcessed(); last != nil && ev.before(last) {
			from.Stats.Stragglers++
			from.rollback(lp.kp, ev)
		}
		ev.state = StatePending
		from.pending.Push(ev)
	} else if dstPeer.foreign {
		// Cross-shard send: the event travels by wire. The local copy
		// stays on the cause's sent list as a shadow — rollback and
		// lazy cancellation target it exactly as in-process — while the
		// destination shard materializes and owns the live twin (see
		// shard.go).
		e.outbox = append(e.outbox, WireEvent{
			Ts: ev.Ts, Seq: ev.Seq, Src: ev.Src, Dst: ev.Dst,
			Kind: ev.Kind, A: ev.A, B: ev.B,
		})
	} else {
		e.deliver(dstPeer, ev)
	}
	from.acc += e.cfg.Costs.SendCycles
	from.noteSent(ts)
}

// deliver enqueues a cross-peer event, consulting the fault injector
// when one is configured.
func (e *Engine) deliver(dst *Peer, ev *Event) {
	f := e.cfg.SendFaults
	if f == nil {
		dst.inq = append(dst.inq, ev)
		return
	}
	e.crossSends++
	drop, hold := f.Outcome(e.crossSends)
	switch {
	case drop:
		// The message is lost. Its cause keeps the sent-list reference,
		// so a rollback still issues a (harmless) anti-message for it.
	case hold > 0:
		e.heldSends = append(e.heldSends, heldSend{ev: ev, due: e.crossSends + hold})
	default:
		dst.inq = append(dst.inq, ev)
	}
	// Release delayed messages that have come due. A message whose
	// timestamp has meanwhile fallen below GVT is dropped instead:
	// delivering it would violate the fossil-collection invariant, and a
	// network that late is indistinguishable from a lossy one.
	kept := e.heldSends[:0]
	for _, h := range e.heldSends {
		switch {
		case h.due > e.crossSends:
			kept = append(kept, h)
		case h.ev.Ts >= e.gvt && h.ev.state != StateCancelled:
			e.peers[e.lps[h.ev.Dst].Owner].inq = append(e.peers[e.lps[h.ev.Dst].Owner].inq, h.ev)
		}
	}
	e.heldSends = kept
}

// TotalStats sums peer statistics.
func (e *Engine) TotalStats() PeerStats {
	var s PeerStats
	for _, p := range e.peers {
		s.Processed += p.Stats.Processed
		s.RolledBack += p.Stats.RolledBack
		s.Committed += p.Stats.Committed
		s.Rollbacks += p.Stats.Rollbacks
		s.Stragglers += p.Stats.Stragglers
		s.AntiSent += p.Stats.AntiSent
		s.Annihilated += p.Stats.Annihilated
		s.LazyReused += p.Stats.LazyReused
		s.LazyCancelled += p.Stats.LazyCancelled
		s.Drained += p.Stats.Drained
		s.GVTCycles += p.Stats.GVTCycles
		s.GVTRounds += p.Stats.GVTRounds
	}
	return s
}

// CheckInvariants validates cross-cutting engine invariants; tests call
// it after (and during) runs. It returns the first violation found.
func (e *Engine) CheckInvariants() error {
	for _, p := range e.peers {
		for _, kp := range p.kps {
			for i := 1; i < len(kp.processed); i++ {
				if !kp.processed[i-1].before(kp.processed[i]) {
					return fmt.Errorf("kp %d/%d processed order violated at %d: %v !< %v",
						kp.Owner, kp.ID, i, kp.processed[i-1], kp.processed[i])
				}
			}
			for _, ev := range kp.processed {
				if ev.state != StateProcessed {
					return fmt.Errorf("kp %d/%d history holds %v (state %s)", kp.Owner, kp.ID, ev, ev.state)
				}
				if e.lps[ev.Dst].kp != kp {
					return fmt.Errorf("kp %d/%d history holds foreign event %v", kp.Owner, kp.ID, ev)
				}
				// Sent/tentative entries of events that can still roll
				// back (at or above GVT) must be live: a rollback would
				// dereference them. Below GVT a dangling pointer to an
				// already-recycled event is benign — the reference
				// discipline guarantees it is only ever cleared.
				if ev.Ts >= e.gvt {
					for _, s := range ev.sent {
						if s != nil && s.state == statePooled {
							return fmt.Errorf("kp %d/%d event %v sent list holds recycled %v", kp.Owner, kp.ID, ev, s)
						}
					}
					for _, t := range ev.tentative {
						if t != nil && t.state == statePooled {
							return fmt.Errorf("kp %d/%d event %v tentative list holds recycled %v", kp.Owner, kp.ID, ev, t)
						}
					}
				}
			}
		}
		// Pool sweep: the freelist must hold only recycled events, and no
		// live container may hold one (use-after-recycle in either
		// direction).
		for i, ev := range p.freeEvents {
			if ev == nil {
				return fmt.Errorf("peer %d freelist entry %d is nil", p.ID, i)
			}
			if ev.state != statePooled {
				return fmt.Errorf("peer %d freelist holds live event %v", p.ID, ev)
			}
		}
		for _, ev := range p.inq {
			if ev != nil && ev.state == statePooled {
				return fmt.Errorf("peer %d input queue holds recycled event %v", p.ID, ev)
			}
		}
	}
	if !math.IsInf(e.gvt, 0) {
		for _, p := range e.peers {
			if ev := p.peekLive(); ev != nil && ev.Ts < e.gvt {
				return fmt.Errorf("peer %d pending event %v below GVT %.6f", p.ID, ev, e.gvt)
			}
		}
	}
	return nil
}
