package tw

import (
	"math"
	"testing"
)

// newWindowedEngine builds a ring engine with an optimism window.
func newWindowedEngine(t *testing.T, window VT) *Engine {
	t.Helper()
	eng, err := NewEngine(Config{
		NumThreads:     2,
		Model:          &ringModel{lpsPerThread: 2, startPerLP: 2},
		EndTime:        40,
		Seed:           77,
		OptimismWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestOptimismWindowBoundsSpeculation(t *testing.T) {
	eng := newWindowedEngine(t, 3)
	cpu := &fakeCPU{}
	// GVT is 0: no event beyond ts 3 may execute, no matter how often
	// we try.
	for i := 0; i < 200; i++ {
		for _, p := range eng.Peers() {
			p.Drain(cpu)
			p.ProcessBatch(cpu)
		}
	}
	for _, lp := range eng.LPs() {
		if lp.LVT() > 3 {
			t.Fatalf("LP %d speculated to %v beyond GVT+window=3", lp.ID, lp.LVT())
		}
	}
	// Advancing GVT (legally, to the unprocessed minimum) re-opens the
	// horizon.
	min := eng.Peer(0).LocalMin(cpu)
	if m := eng.Peer(1).LocalMin(cpu); m < min {
		min = m
	}
	eng.SetGVT(min)
	var before uint64
	for _, p := range eng.Peers() {
		before += p.Stats.Processed
	}
	for i := 0; i < 50; i++ {
		for _, p := range eng.Peers() {
			p.Drain(cpu)
			p.ProcessBatch(cpu)
		}
	}
	var after uint64
	for _, p := range eng.Peers() {
		after += p.Stats.Processed
	}
	if after == before {
		t.Fatal("no progress after GVT advanced")
	}
}

func TestOptimismWindowPreservesTrajectory(t *testing.T) {
	run := func(window VT) (uint64, []float64) {
		eng, err := NewEngine(Config{
			NumThreads:     4,
			Model:          &ringModel{lpsPerThread: 2, startPerLP: 2},
			EndTime:        25,
			Seed:           9,
			OptimismWindow: window,
		})
		if err != nil {
			t.Fatal(err)
		}
		runQuiescent(t, eng, []int{0, 3, 1, 2})
		committed, _, sums := collectResults(eng)
		return committed, sums
	}
	unboundedCommitted, unboundedSums := run(0)
	for _, w := range []VT{2, 8} {
		committed, sums := run(w)
		if committed != unboundedCommitted {
			t.Fatalf("window %v: committed %d != unbounded %d", w, committed, unboundedCommitted)
		}
		for i := range sums {
			if math.Abs(sums[i]-unboundedSums[i]) > 1e-9 {
				t.Fatalf("window %v: LP %d trajectory diverged", w, i)
			}
		}
	}
}

func TestUnboundedOptimismIsDefault(t *testing.T) {
	eng := newWindowedEngine(t, 0)
	cpu := &fakeCPU{}
	// With no window, speculation runs to the end time with GVT still 0.
	for i := 0; i < 400; i++ {
		for _, p := range eng.Peers() {
			p.Drain(cpu)
			p.ProcessBatch(cpu)
		}
	}
	max := 0.0
	for _, lp := range eng.LPs() {
		if lp.LVT() > max {
			max = lp.LVT()
		}
	}
	if max < 10 {
		t.Fatalf("unbounded run only reached LVT %v", max)
	}
}
