package tw

import "ggpdes/internal/rng"

// KP is a kernel process, ROSS's rollback-granularity unit: a group of
// LPs on one simulation thread sharing a single processed-event list.
// Larger KPs shrink per-LP bookkeeping and speed fossil collection but
// roll back every member LP when any one of them straggles — the
// classic granularity trade-off (ablated in the benchmarks).
type KP struct {
	// ID is the KP id within its peer.
	ID int
	// Owner is the simulation thread id.
	Owner int
	// processed holds the member LPs' speculatively executed events in
	// ascending (Ts, Seq) order; the prefix below GVT is fossil
	// collected.
	processed []*Event
}

// lastProcessed returns the KP's most recent uncommitted execution.
func (kp *KP) lastProcessed() *Event {
	if len(kp.processed) == 0 {
		return nil
	}
	return kp.processed[len(kp.processed)-1]
}

// UncommittedEvents reports how many processed events await commit.
func (kp *KP) UncommittedEvents() int { return len(kp.processed) }

// LP is a logical process: a simulated component with its own state,
// local virtual time, and rollback history shared through its KP. LPs
// are served by exactly one simulation thread (Peer).
type LP struct {
	// ID is the global LP id.
	ID int
	// Owner is the id of the simulation thread serving this LP.
	Owner int

	state State
	rand  *rng.Stream
	lvt   VT
	kp    *KP
	// statePool recycles copy-state snapshots released by fossil
	// collection and rollback (see pool.go); only populated when the
	// model's state implements StateCopier.
	statePool []State
}

// State returns the LP's current model state. Models must treat it as
// read-only outside OnEvent for this LP.
func (lp *LP) State() State { return lp.state }

// SetState replaces the LP's state; models call it during InitLP.
func (lp *LP) SetState(s State) { lp.state = s }

// LVT returns the LP's local virtual time (timestamp of the last
// processed event).
func (lp *LP) LVT() VT { return lp.lvt }

// Rand returns the LP's random stream (valid after engine init).
func (lp *LP) Rand() *rng.Stream { return lp.rand }

// KP returns the kernel process this LP belongs to.
func (lp *LP) KP() *KP { return lp.kp }
