package tw

import "math"

// Event and snapshot recycling. Every event send, anti-message and
// copy-state snapshot used to heap-allocate, which made the engine's
// steady-state throughput GC-bound. PARSIR-style per-thread event
// recycling removes that: each Peer keeps a freelist of Events whose
// lifecycle has ended (fossil collected, or annihilated and lazily
// dropped from a queue), and each LP keeps a freelist of state
// snapshots returned by fossil collection and rollback. In steady
// state the hot loop allocates nothing; the pools are populated by the
// first GVT rounds and then cycle.
//
// Recycling is safe at exactly the points used here because of the
// engine's reference discipline:
//
//   - A committed event can still be referenced by its cause's sent
//     list (the cause may commit later in the same GVT round on another
//     peer), but sent lists are only *dereferenced* during rollback and
//     the cause sits below GVT, where rollback is impossible.
//   - A cancelled event is freed only when a queue lazily drops it; by
//     then the annihilating anti-message has been consumed and the
//     sender removed it from its sent/tentative lists.
//   - An anti-message is freed as soon as Drain handles it; nothing
//     else ever holds a reference to it.
//
// Freed events carry statePooled and poisoned ordering fields, so a
// use-after-recycle cannot silently match a lazy-cancellation
// re-adoption or order correctly in a queue; the state machine panics
// where a pooled event could flow in, and CheckInvariants sweeps all
// reachable containers (pool leak detection in both directions).
//
// Determinism: recycling reuses memory, never logic. Every field is
// reset on free and reassigned on alloc, sequence numbers come from
// the same global counter, and no code path branches on object
// identity — pooled and unpooled runs commit byte-identical
// trajectories (asserted by TestPoolingPreservesTrajectories and the
// top-level seed-regression matrix).

// Pool metric names (see the Metric constants in engine.go for the
// engine's other metrics).
const (
	// MetricPoolEventHit / Miss count event allocations served from a
	// peer freelist vs. the heap; Recycled counts events returned.
	MetricPoolEventHit      = "tw.pool.event_hit"
	MetricPoolEventMiss     = "tw.pool.event_miss"
	MetricPoolEventRecycled = "tw.pool.event_recycled"
	// MetricPoolStateHit / Miss count copy-state snapshots served from
	// an LP freelist vs. Clone; Recycled counts snapshots returned.
	MetricPoolStateHit      = "tw.pool.state_hit"
	MetricPoolStateMiss     = "tw.pool.state_miss"
	MetricPoolStateRecycled = "tw.pool.state_recycled"
)

// poolStats accumulates per-peer pool traffic with plain increments;
// the peer flushes them to telemetry counters at fossil collection so
// the per-event path performs no atomic operations.
type poolStats struct {
	eventHit, eventMiss, eventRecycled uint64
	stateHit, stateMiss, stateRecycled uint64
}

// allocEvent returns a zeroed event, recycling from the peer freelist
// when possible. Callers must assign every field they need; alloc
// clears all of them except the sent/tentative backing arrays, whose
// capacity is the point of recycling.
func (p *Peer) allocEvent() *Event {
	n := len(p.freeEvents)
	if n == 0 {
		p.pool.eventMiss++
		return &Event{}
	}
	ev := p.freeEvents[n-1]
	p.freeEvents[n-1] = nil
	p.freeEvents = p.freeEvents[:n-1]
	if ev.state != statePooled {
		panic("tw: corrupted event freelist: " + ev.String())
	}
	ev.state = StateInQueue
	ev.Ts = 0
	p.pool.eventHit++
	return ev
}

// freeEvent returns a dead event to the peer freelist, resetting every
// field and poisoning the ordering key. With pooling disabled it does
// nothing, preserving the historical allocate-and-drop behaviour.
func (p *Peer) freeEvent(ev *Event) {
	// A twin materialized from the wire (shard.go) leaves the
	// anti-message resolution table when its lifecycle ends, whether or
	// not its memory is recycled. Anti-messages are never registered.
	if m := p.eng.remoteIdx; m != nil && !ev.Anti {
		delete(m, ev.Seq)
	}
	if p.eng.cfg.DisablePooling {
		return
	}
	if ev.state == statePooled {
		panic("tw: double free of event " + ev.String())
	}
	for i := range ev.sent {
		ev.sent[i] = nil
	}
	for i := range ev.tentative {
		ev.tentative[i] = nil
	}
	*ev = Event{
		Ts:        math.Inf(-1), // poison: sorts nowhere valid, matches no re-adoption
		sent:      ev.sent[:0],
		tentative: ev.tentative[:0],
		state:     statePooled,
	}
	p.pool.eventRecycled++
	p.freeEvents = append(p.freeEvents, ev)
}

// acquireSnapshot returns a deep copy of lp's current state for the
// pre-execution snapshot, overwriting a recycled instance when the LP
// freelist has one. The freelist only ever holds states previously
// released by this same LP, so the StateCopier assertion cannot fail.
func (p *Peer) acquireSnapshot(lp *LP) State {
	n := len(lp.statePool)
	if n == 0 {
		p.pool.stateMiss++
		return lp.state.Clone()
	}
	dst := lp.statePool[n-1]
	lp.statePool[n-1] = nil
	lp.statePool = lp.statePool[:n-1]
	dst.(StateCopier).CopyFrom(lp.state)
	p.pool.stateHit++
	return dst
}

// releaseSnapshot returns a dead state copy (fossil-collected
// snapshot, or the pre-rollback live state a restore displaced) to its
// LP's freelist. States that cannot overwrite themselves in place are
// left for the GC, which keeps pooling transparent for models that
// implement only Clone.
func (p *Peer) releaseSnapshot(lp *LP, st State) {
	if st == nil || p.eng.cfg.DisablePooling {
		return
	}
	if _, ok := st.(StateCopier); !ok {
		return
	}
	lp.statePool = append(lp.statePool, st)
	p.pool.stateRecycled++
}

// flushPoolStats folds the accumulated pool traffic into the engine's
// telemetry counters; called at fossil collection (periodic, outside
// the per-event path) and by Engine.FlushPoolStats at run teardown.
func (p *Peer) flushPoolStats() {
	s := &p.pool
	if s.eventHit == 0 && s.eventMiss == 0 && s.eventRecycled == 0 &&
		s.stateHit == 0 && s.stateMiss == 0 && s.stateRecycled == 0 {
		return
	}
	t := &p.tel
	t.poolEventHit.Add(s.eventHit)
	t.poolEventMiss.Add(s.eventMiss)
	t.poolEventRecycled.Add(s.eventRecycled)
	t.poolStateHit.Add(s.stateHit)
	t.poolStateMiss.Add(s.stateMiss)
	t.poolStateRecycled.Add(s.stateRecycled)
	*s = poolStats{}
}

// FlushPoolStats publishes any pool traffic still buffered in the
// peers to the telemetry registry. Run teardown calls it so the last
// partial GVT round is not lost from the counters.
func (e *Engine) FlushPoolStats() {
	for _, p := range e.peers {
		p.flushPoolStats()
	}
}
