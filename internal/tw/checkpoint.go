package tw

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ggpdes/internal/rng"
)

// Checkpoint support: pausing a run at a GVT publication, quiescing the
// engine onto its canonical committed cut, capturing that cut as plain
// serializable data, and rebuilding an engine from a capture.
//
// The engine cannot snapshot mid-speculation state — live goroutine
// stacks (the simulated threads), splay-tree shapes and freelist
// contents are not serializable, and none of them are part of the
// committed trajectory anyway. Instead a checkpointed run executes as a
// chain of segments: the driver pauses the engine at a GVT round
// boundary, lets the machine wind down through the normal completion
// path, rolls back all speculation (Quiesce), and captures exactly the
// committed state: LP states and RNG positions, the pending events at
// or above GVT, and the cumulative statistics. A fresh engine built
// from the capture continues the run; because the driver performs the
// same quiesce/capture/rebuild cycle whether or not the process is
// actually killed at the boundary, a resumed run is byte-identical to
// an uninterrupted one by construction.

// errNotCheckpointModel is shared by Capture, CaptureShard and
// NewEngineFromState.
var errNotCheckpointModel = errors.New("tw: model does not implement CheckpointModel")

// CheckpointModel is a Model whose LP states can be serialized. All
// bundled models implement it; checkpointing requires it because LP
// state is opaque to the engine.
type CheckpointModel interface {
	Model
	// EncodeState serializes an LP state this model created.
	EncodeState(s State) ([]byte, error)
	// DecodeState rebuilds an LP state from EncodeState's output.
	DecodeState(data []byte) (State, error)
}

// EventRecord is one pending event at the committed cut, reduced to the
// fields that define it. Rollback bookkeeping (snapshots, sent lists,
// undo words) is empty for a pending event by construction.
type EventRecord struct {
	Ts   VT     `json:"ts"`
	Seq  uint64 `json:"seq"`
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	Kind uint8  `json:"kind"`
	A    int64  `json:"a,omitempty"`
	B    int64  `json:"b,omitempty"`
}

// LPRecord is one logical process at the committed cut.
type LPRecord struct {
	State []byte    `json:"state"`
	Rng   rng.State `json:"rng"`
	LVT   VT        `json:"lvt"`
}

// EngineState is the full Time Warp state at a quiesced GVT boundary —
// everything a fresh engine needs to continue the trajectory.
type EngineState struct {
	// Seq is the global event sequence counter.
	Seq uint64 `json:"seq"`
	// GVT is the published Global Virtual Time of the boundary round.
	GVT VT `json:"gvt"`
	// PeakUncommitted carries the run's speculative-memory high-water
	// mark across segments.
	PeakUncommitted int `json:"peak_uncommitted"`
	// LPs holds every logical process, indexed by LP id.
	LPs []LPRecord `json:"lps"`
	// Pending holds each peer's pending events in (Ts, Seq) order.
	Pending [][]EventRecord `json:"pending"`
	// PeerStats carries each peer's cumulative counters.
	PeerStats []PeerStats `json:"peer_stats"`
}

// Pause makes Done report true so every simulation thread exits its
// main loop at the next iteration — the same wind-down path as normal
// completion. The driver calls it from the OnGVT hook at a checkpoint
// boundary.
func (e *Engine) Pause() { e.paused = true }

// Paused reports whether Pause was called.
func (e *Engine) Paused() bool { return e.paused }

// nopCPU discards cost accounting; quiesce runs after the machine has
// stopped, so its work is not part of the simulated timeline.
type nopCPU struct{}

func (nopCPU) Work(uint64) {}

// Capture quiesces the engine onto its committed cut and serializes it.
// The engine is consumed: every speculative execution is rolled back,
// anti-message traffic is drained to a fixpoint, and the pending sets
// are emptied into the capture. Discard the engine afterwards.
func (e *Engine) Capture() (*EngineState, error) {
	e.quiesce()
	if e.uncommitted != 0 {
		return nil, fmt.Errorf("tw: %d uncommitted events survived quiesce", e.uncommitted)
	}
	cm, ok := e.cfg.Model.(CheckpointModel)
	if !ok {
		return nil, errNotCheckpointModel
	}
	st := &EngineState{
		Seq:             e.seq,
		GVT:             e.gvt,
		PeakUncommitted: e.peakUncommitted,
		Pending:         make([][]EventRecord, len(e.peers)),
		PeerStats:       make([]PeerStats, len(e.peers)),
	}
	lps, err := e.encodeLPs(cm, e.lps)
	if err != nil {
		return nil, err
	}
	st.LPs = lps
	for i, p := range e.peers {
		recs, err := e.drainQuiesced(p)
		if err != nil {
			return nil, err
		}
		st.Pending[i] = recs
		st.PeerStats[i] = p.Stats
	}
	return st, nil
}

// encodeLPs serializes a run of LPs; Capture uses it over all LPs,
// CaptureShard over one shard's.
func (e *Engine) encodeLPs(cm CheckpointModel, lps []*LP) ([]LPRecord, error) {
	recs := make([]LPRecord, len(lps))
	for i, lp := range lps {
		data, err := cm.EncodeState(lp.state)
		if err != nil {
			return nil, fmt.Errorf("tw: encoding LP %d state: %w", lp.ID, err)
		}
		recs[i] = LPRecord{State: data, Rng: lp.rand.Save(), LVT: lp.lvt}
	}
	return recs, nil
}

// drainQuiesced converts and consumes a peer's quiesced slice,
// validating against the below-GVT invariant and asserting pop order.
func (e *Engine) drainQuiesced(p *Peer) ([]EventRecord, error) {
	recs := make([]EventRecord, 0, len(p.quiesced))
	for _, ev := range p.quiesced {
		if ev.state == StateCancelled {
			continue
		}
		if ev.Ts < e.gvt {
			return nil, fmt.Errorf("tw: pending event %v below GVT %.6f at capture", ev, e.gvt)
		}
		recs = append(recs, EventRecord{
			Ts: ev.Ts, Seq: ev.Seq, Src: ev.Src, Dst: ev.Dst,
			Kind: ev.Kind, A: ev.A, B: ev.B,
		})
	}
	// Pop order is already (Ts, Seq); assert rather than trust.
	if !sort.SliceIsSorted(recs, func(a, b int) bool {
		if recs[a].Ts != recs[b].Ts {
			return recs[a].Ts < recs[b].Ts
		}
		return recs[a].Seq < recs[b].Seq
	}) {
		return nil, fmt.Errorf("tw: peer %d pending pop order not sorted", p.ID)
	}
	p.quiesced = nil
	return recs, nil
}

// quiesce rolls the engine back onto the committed cut of its current
// GVT: every processed-but-uncommitted event is rolled back, the
// resulting anti-message traffic is drained to a fixpoint, deferred
// lazy-cancellation sends are flushed, and each peer's pending set is
// emptied (in pop order) into its quiesced scratch slice.
// The three stages are factored into peer-range passes so a worker
// engine can run each stage over just its shard under coordinator
// control (see shard.go): looping the ranged passes over the full
// range below is exactly the historical whole-engine quiesce.
func (e *Engine) quiesce() {
	// Roll back all speculation. Rollbacks unsend (anti-messages into
	// other peers' input queues) and drains can trigger further
	// rollbacks, so iterate to a fixpoint.
	for e.quiescePassRange(0, len(e.peers)) {
	}
	e.quiesceDumpRange(0, len(e.peers))
	// Under lazy cancellation rolled-back events still hold tentative
	// sends awaiting re-adoption; they cannot survive a checkpoint, so
	// annihilate them now. The antis only ever target events already in
	// the quiesced slices (everything pending is there), so the flush
	// stage's drains just mark targets cancelled.
	for e.quiesceFlushRange(0, len(e.peers)) {
	}
	e.quiesceResetRange(0, len(e.peers))
}

// quiescePassRange runs one drain-and-rollback round over peers
// [lo, hi), reporting whether anything made progress.
func (e *Engine) quiescePassRange(lo, hi int) bool {
	cpu := nopCPU{}
	progress := false
	for _, p := range e.peers[lo:hi] {
		if len(p.inq) > 0 {
			p.Drain(cpu)
			progress = true
		}
		for _, kp := range p.kps {
			if len(kp.processed) > 0 {
				p.rollback(kp, kp.processed[0])
				progress = true
			}
		}
	}
	return progress
}

// quiesceDumpRange empties the pending sets of peers [lo, hi) into
// their quiesced slices. Pop order is (Ts, Seq) — the canonical order
// the capture serializes.
func (e *Engine) quiesceDumpRange(lo, hi int) {
	for _, p := range e.peers[lo:hi] {
		p.quiesced = p.quiesced[:0]
		for {
			ev, ok := p.pending.Pop()
			if !ok {
				break
			}
			p.quiesced = append(p.quiesced, ev)
		}
	}
}

// quiesceFlushRange runs one lazy-cancellation flush-and-drain round
// over peers [lo, hi), reporting whether anything made progress.
func (e *Engine) quiesceFlushRange(lo, hi int) bool {
	cpu := nopCPU{}
	progress := false
	for _, p := range e.peers[lo:hi] {
		for _, ev := range p.quiesced {
			if ev.state != StateCancelled && len(ev.tentative) > 0 {
				p.flushTentative(ev)
				progress = true
			}
		}
		if len(p.inq) > 0 {
			p.Drain(cpu)
			progress = true
		}
	}
	return progress
}

// quiesceResetRange clears the per-round send windows and cycle
// accumulators of peers [lo, hi) after a completed quiesce.
func (e *Engine) quiesceResetRange(lo, hi int) {
	for _, p := range e.peers[lo:hi] {
		p.minSent = math.Inf(1)
		p.acc = 0
	}
}

// NewEngineFromState rebuilds an engine from a capture. cfg must be the
// same configuration the capturing engine ran with (the driver
// guarantees this by storing the config alongside the capture); the
// model is constructed fresh but its InitLP is skipped — LP states come
// from the capture.
func NewEngineFromState(cfg Config, st *EngineState) (*Engine, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	cm, ok := cfg.Model.(CheckpointModel)
	if !ok {
		return nil, errors.New("tw: model does not implement CheckpointModel")
	}
	eng, err := newEngineShell(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.LPs) != len(eng.lps) {
		return nil, fmt.Errorf("tw: capture has %d LPs, config builds %d", len(st.LPs), len(eng.lps))
	}
	if len(st.Pending) != len(eng.peers) || len(st.PeerStats) != len(eng.peers) {
		return nil, fmt.Errorf("tw: capture has %d/%d peers, config builds %d",
			len(st.Pending), len(st.PeerStats), len(eng.peers))
	}
	eng.seq = st.Seq
	eng.gvt = st.GVT
	eng.peakUncommitted = st.PeakUncommitted
	for i, lp := range eng.lps {
		rec := st.LPs[i]
		state, err := cm.DecodeState(rec.State)
		if err != nil {
			return nil, fmt.Errorf("tw: decoding LP %d state: %w", lp.ID, err)
		}
		lp.state = state
		lp.rand.Restore(rec.Rng)
		lp.lvt = rec.LVT
	}
	for i, p := range eng.peers {
		p.Stats = st.PeerStats[i]
		for _, r := range st.Pending[i] {
			ev := &Event{
				Ts: r.Ts, Seq: r.Seq, Src: r.Src, Dst: r.Dst,
				Kind: r.Kind, A: r.A, B: r.B,
				state: StatePending,
			}
			if r.Ts < st.GVT {
				return nil, fmt.Errorf("tw: capture holds pending event %v below GVT %.6f", ev, st.GVT)
			}
			if r.Seq > st.Seq {
				return nil, fmt.Errorf("tw: capture holds event %v beyond sequence %d", ev, st.Seq)
			}
			p.pending.Push(ev)
		}
	}
	return eng, nil
}
