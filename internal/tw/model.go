package tw

import "ggpdes/internal/rng"

// State is a logical process's model-defined state. Clone must return a
// deep copy; the engine snapshots state before every event execution so
// rollbacks can restore it.
type State interface {
	Clone() State
}

// StateCopier is an optional extension of State that lets the engine
// recycle snapshot memory: instead of Clone allocating a fresh copy per
// event, a dead snapshot from the LP's freelist is overwritten in
// place. CopyFrom must leave the receiver semantically identical to
// Clone's result (a deep copy of src); it may reuse the receiver's own
// backing storage (slices, maps) when capacities allow. src is always
// the same concrete type as the receiver — snapshots never cross LPs.
// Models that implement only Clone still work; they just allocate.
type StateCopier interface {
	State
	// CopyFrom overwrites the receiver with a deep copy of src.
	CopyFrom(src State)
}

// Snapshot couples an LP state copy with its RNG position; restoring
// both makes re-execution after a rollback bit-identical.
type Snapshot struct {
	state State
	rng   rng.State
	lvt   VT
}

// CPU abstracts the simulated processor's cost accounting; the
// machine's Proc satisfies it.
type CPU interface {
	// Work consumes the given number of CPU cycles.
	Work(cycles uint64)
}

// Model defines a simulation application.
type Model interface {
	// LPsPerThread is how many LPs each simulation thread serves.
	LPsPerThread() int
	// InitLP populates lp's initial state and schedules its starting
	// events via ictx.ScheduleInit.
	InitLP(ictx *InitCtx, lp *LP)
	// OnEvent executes one event against its destination LP. All state
	// mutation must go through ctx (reads of lp.State() are fine).
	// ctx is valid only for the duration of the call — the engine
	// reuses it across events; models must not retain it.
	OnEvent(ctx *EventCtx)
}

// ReverseModel is a Model whose event handlers can be undone — ROSS's
// reverse computation. With SaveReverse, the engine skips per-event
// state copies: a rollback replays OnReverseEvent in LIFO order
// instead, using the undo word each forward execution may stash via
// EventCtx.SetUndo. The engine still saves and restores the LP's RNG
// position, so re-execution stays bit-identical.
type ReverseModel interface {
	Model
	// OnReverseEvent undoes exactly the state mutations OnEvent made
	// for this event. Sends are unsent by the engine; only LP state is
	// the model's responsibility.
	OnReverseEvent(ctx *EventCtx)
}

// SavePolicy selects the rollback mechanism.
type SavePolicy int

const (
	// SaveCopy snapshots a deep copy of the LP state before every
	// event (simple, works for any Model).
	SaveCopy SavePolicy = iota
	// SaveReverse uses the model's reverse handlers (cheaper per event,
	// requires a ReverseModel).
	SaveReverse
)

// String returns the policy name.
func (s SavePolicy) String() string {
	switch s {
	case SaveCopy:
		return "copy"
	case SaveReverse:
		return "reverse"
	default:
		return "unknown"
	}
}

// InitCtx is handed to Model.InitLP.
type InitCtx struct {
	eng *Engine
	lp  *LP
}

// Engine returns the engine under initialization.
func (ic *InitCtx) Engine() *Engine { return ic.eng }

// ScheduleInit schedules a starting event for dstLP at time ts. Initial
// events carry no rollback bookkeeping (they precede the simulation).
func (ic *InitCtx) ScheduleInit(dstLP int, ts VT, kind uint8, a, b int64) {
	ic.eng.scheduleInit(ic.lp.ID, dstLP, ts, kind, a, b)
}

// EventCtx is handed to Model.OnEvent for each executed event.
type EventCtx struct {
	eng  *Engine
	peer *Peer
	lp   *LP
	ev   *Event
}

// Engine returns the running engine.
func (c *EventCtx) Engine() *Engine { return c.eng }

// LP returns the destination LP.
func (c *EventCtx) LP() *LP { return c.lp }

// Event returns the event being executed.
func (c *EventCtx) Event() *Event { return c.ev }

// Now returns the event's timestamp, the LP's new local virtual time.
func (c *EventCtx) Now() VT { return c.ev.Ts }

// Rand returns the LP's random stream. Its position is part of the
// LP snapshot, so rolled-back draws are replayed identically.
func (c *EventCtx) Rand() *rng.Stream { return c.lp.rand }

// Send schedules an event for dstLP at absolute time ts, which must be
// strictly in the future of the current event. The send is recorded so
// a rollback of the current event unsends it with an anti-message.
func (c *EventCtx) Send(dstLP int, ts VT, kind uint8, a, b int64) {
	if ts < c.ev.Ts {
		panic("tw: model sent an event into the past")
	}
	c.eng.send(c.peer, c.ev, dstLP, ts, kind, a, b)
}

// SetUndo stashes a word on the event for the reverse handler; only
// meaningful under SaveReverse.
func (c *EventCtx) SetUndo(u int64) { c.ev.undo = u }

// Undo returns the word the forward execution stashed with SetUndo.
func (c *EventCtx) Undo() int64 { return c.ev.undo }
