package tw

import (
	"math"
	"strings"
	"testing"
)

// reversibleRing extends the test ring model with a reverse handler.
type reversibleRing struct {
	ringModel
}

func (m *reversibleRing) OnEvent(ctx *EventCtx) {
	ctx.SetUndo(0)
	m.ringModel.OnEvent(ctx)
}

func (m *reversibleRing) OnReverseEvent(ctx *EventCtx) {
	st := ctx.LP().State().(*ringState)
	st.Count--
	st.Sum -= ctx.Now()
}

func TestSaveReverseRequiresReverseModel(t *testing.T) {
	_, err := NewEngine(Config{
		NumThreads:  1,
		Model:       &ringModel{lpsPerThread: 1, startPerLP: 1},
		EndTime:     10,
		StateSaving: SaveReverse,
	})
	if err == nil || !strings.Contains(err.Error(), "ReverseModel") {
		t.Fatalf("err = %v", err)
	}
}

func TestSavePolicyString(t *testing.T) {
	if SaveCopy.String() != "copy" || SaveReverse.String() != "reverse" || SavePolicy(9).String() != "unknown" {
		t.Fatal("policy names wrong")
	}
}

// The reverse-computation gold test: under adversarial interleavings
// that force rollbacks, reverse computation must commit the identical
// trajectory as copy state-saving.
func TestReverseMatchesCopyUnderRollbacks(t *testing.T) {
	run := func(policy SavePolicy, order []int) (uint64, []int, []float64, uint64) {
		eng, err := NewEngine(Config{
			NumThreads:  4,
			Model:       &reversibleRing{ringModel{lpsPerThread: 4, startPerLP: 2}},
			EndTime:     30,
			Seed:        12345,
			StateSaving: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		runQuiescent(t, eng, order)
		if err := eng.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		committed, counts, sums := collectResults(eng)
		return committed, counts, sums, eng.TotalStats().RolledBack
	}
	orders := [][]int{
		{0, 1, 2, 3},
		{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}, // skewed: forces rollbacks
		{3, 1, 3, 0, 2},
	}
	refCommitted, refCounts, refSums, _ := run(SaveCopy, orders[0])
	sawRollback := false
	for oi, order := range orders {
		committed, counts, sums, rolled := run(SaveReverse, order)
		if rolled > 0 {
			sawRollback = true
		}
		if committed != refCommitted {
			t.Fatalf("order %d: reverse committed %d != copy %d", oi, committed, refCommitted)
		}
		for i := range counts {
			if counts[i] != refCounts[i] || math.Abs(sums[i]-refSums[i]) > 1e-9 {
				t.Fatalf("order %d: LP %d state (%d, %v) != copy (%d, %v)",
					oi, i, counts[i], sums[i], refCounts[i], refSums[i])
			}
		}
	}
	if !sawRollback {
		t.Fatal("no reverse-mode run rolled back; test exercises nothing")
	}
}

func TestReverseUndoWordRoundTrip(t *testing.T) {
	eng, err := NewEngine(Config{
		NumThreads:  1,
		Model:       &undoProbe{},
		EndTime:     10,
		Seed:        1,
		StateSaving: SaveReverse,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpu := &fakeCPU{}
	p := eng.Peer(0)
	p.ProcessBatch(cpu)
	lp := eng.LPs()[0]
	// Roll back manually; the reverse handler must see the undo word.
	probe := eng.Config().Model.(*undoProbe)
	if probe.sawForward != 1 {
		t.Fatalf("forward executions = %d", probe.sawForward)
	}
	p.rollback(lp.KP(), lp.KP().processed[0])
	if probe.sawUndo != 42 {
		t.Fatalf("reverse saw undo %d, want 42", probe.sawUndo)
	}
}

// undoProbe checks the undo word survives from forward to reverse.
type undoProbe struct {
	sawForward int
	sawUndo    int64
}

func (m *undoProbe) LPsPerThread() int { return 1 }
func (m *undoProbe) InitLP(ic *InitCtx, lp *LP) {
	lp.SetState(&ringState{})
	ic.ScheduleInit(0, 1, 0, 0, 0)
}
func (m *undoProbe) OnEvent(ctx *EventCtx) {
	m.sawForward++
	ctx.SetUndo(42)
}
func (m *undoProbe) OnReverseEvent(ctx *EventCtx) {
	m.sawUndo = ctx.Undo()
}
