package tw

import (
	"encoding/binary"
	"math"
)

// Binary wire encoders for the distributed data plane. internal/dist's
// batched binary frames (see its codec) embed engine-owned structures —
// the Envelope, cross-shard WireEvents, and per-peer statistics — so
// their codecs live here, next to the struct definitions they must
// track field-for-field.
//
// Encoding conventions: unsigned integers are uvarints, signed
// integers are zigzag uvarints, and virtual times are raw little-endian
// IEEE 754 bits — binary floats carry ±Inf natively, so the WireVT
// string workaround is a JSON-only concern. Consume functions return
// the remaining buffer and report failure instead of panicking, so a
// corrupt frame surfaces as a protocol error, not a crash.

// AppendWireUint appends v as a uvarint.
func AppendWireUint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// ConsumeWireUint decodes a uvarint from the front of b.
func ConsumeWireUint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

// AppendWireInt appends v as a zigzag uvarint.
func AppendWireInt(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// ConsumeWireInt decodes a zigzag uvarint from the front of b.
func ConsumeWireInt(b []byte) (int64, []byte, bool) {
	u, rest, ok := ConsumeWireUint(b)
	if !ok {
		return 0, b, false
	}
	return int64(u>>1) ^ -int64(u&1), rest, true
}

// AppendWireF64 appends v as 8 raw little-endian IEEE 754 bytes.
func AppendWireF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// ConsumeWireF64 decodes 8 raw float bytes from the front of b.
func ConsumeWireF64(b []byte) (float64, []byte, bool) {
	if len(b) < 8 {
		return 0, b, false
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:8])), b[8:], true
}

// AppendWireBool appends v as one byte.
func AppendWireBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ConsumeWireBool decodes one boolean byte from the front of b.
func ConsumeWireBool(b []byte) (bool, []byte, bool) {
	if len(b) < 1 {
		return false, b, false
	}
	return b[0] != 0, b[1:], true
}

// AppendWireEnvelope appends the engine-global scalars.
func AppendWireEnvelope(b []byte, env Envelope) []byte {
	b = AppendWireUint(b, env.Seq)
	b = AppendWireF64(b, env.GVT)
	b = AppendWireInt(b, int64(env.Uncommitted))
	b = AppendWireInt(b, int64(env.PeakUncommitted))
	return AppendWireInt(b, int64(env.PeakSinceMark))
}

// ConsumeWireEnvelope decodes an Envelope from the front of b.
func ConsumeWireEnvelope(b []byte) (Envelope, []byte, bool) {
	var env Envelope
	var ok bool
	if env.Seq, b, ok = ConsumeWireUint(b); !ok {
		return env, b, false
	}
	if env.GVT, b, ok = ConsumeWireF64(b); !ok {
		return env, b, false
	}
	var v int64
	if v, b, ok = ConsumeWireInt(b); !ok {
		return env, b, false
	}
	env.Uncommitted = int(v)
	if v, b, ok = ConsumeWireInt(b); !ok {
		return env, b, false
	}
	env.PeakUncommitted = int(v)
	if v, b, ok = ConsumeWireInt(b); !ok {
		return env, b, false
	}
	env.PeakSinceMark = int(v)
	return env, b, true
}

// AppendWireEvent appends one cross-shard event or anti-message.
func AppendWireEvent(b []byte, w WireEvent) []byte {
	b = AppendWireF64(b, w.Ts)
	b = AppendWireUint(b, w.Seq)
	b = AppendWireInt(b, int64(w.Src))
	b = AppendWireInt(b, int64(w.Dst))
	b = append(b, w.Kind)
	b = AppendWireInt(b, w.A)
	b = AppendWireInt(b, w.B)
	b = AppendWireBool(b, w.Anti)
	return AppendWireUint(b, w.TargetSeq)
}

// ConsumeWireEvent decodes one WireEvent from the front of b.
func ConsumeWireEvent(b []byte) (WireEvent, []byte, bool) {
	var w WireEvent
	var ok bool
	if w.Ts, b, ok = ConsumeWireF64(b); !ok {
		return w, b, false
	}
	if w.Seq, b, ok = ConsumeWireUint(b); !ok {
		return w, b, false
	}
	var v int64
	if v, b, ok = ConsumeWireInt(b); !ok {
		return w, b, false
	}
	w.Src = int(v)
	if v, b, ok = ConsumeWireInt(b); !ok {
		return w, b, false
	}
	w.Dst = int(v)
	if len(b) < 1 {
		return w, b, false
	}
	w.Kind, b = b[0], b[1:]
	if w.A, b, ok = ConsumeWireInt(b); !ok {
		return w, b, false
	}
	if w.B, b, ok = ConsumeWireInt(b); !ok {
		return w, b, false
	}
	if w.Anti, b, ok = ConsumeWireBool(b); !ok {
		return w, b, false
	}
	if w.TargetSeq, b, ok = ConsumeWireUint(b); !ok {
		return w, b, false
	}
	return w, b, true
}

// AppendWirePeerStats appends one peer's cumulative counters in
// declaration order.
func AppendWirePeerStats(b []byte, s PeerStats) []byte {
	b = AppendWireUint(b, s.Processed)
	b = AppendWireUint(b, s.RolledBack)
	b = AppendWireUint(b, s.Committed)
	b = AppendWireUint(b, s.Rollbacks)
	b = AppendWireUint(b, s.Stragglers)
	b = AppendWireUint(b, s.AntiSent)
	b = AppendWireUint(b, s.Annihilated)
	b = AppendWireUint(b, s.Drained)
	b = AppendWireUint(b, s.LazyReused)
	b = AppendWireUint(b, s.LazyCancelled)
	b = AppendWireUint(b, s.GVTCycles)
	return AppendWireUint(b, s.GVTRounds)
}

// ConsumeWirePeerStats decodes one PeerStats from the front of b.
func ConsumeWirePeerStats(b []byte) (PeerStats, []byte, bool) {
	var s PeerStats
	fields := []*uint64{
		&s.Processed, &s.RolledBack, &s.Committed, &s.Rollbacks,
		&s.Stragglers, &s.AntiSent, &s.Annihilated, &s.Drained,
		&s.LazyReused, &s.LazyCancelled, &s.GVTCycles, &s.GVTRounds,
	}
	var ok bool
	for _, f := range fields {
		if *f, b, ok = ConsumeWireUint(b); !ok {
			return s, b, false
		}
	}
	return s, b, true
}
