package tw

import (
	"fmt"
	"math"

	"ggpdes/internal/pq"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/trace"
)

// PeerStats counts a simulation thread's work.
type PeerStats struct {
	// Processed counts event executions, including re-executions after
	// rollback.
	Processed uint64
	// RolledBack counts event executions undone by rollbacks.
	RolledBack uint64
	// Committed counts events fossil collected below GVT; these are the
	// events the committed event rate is computed from.
	Committed uint64
	// Rollbacks counts rollback episodes; Stragglers counts the ones
	// triggered by late positive events (the rest are anti-messages).
	Rollbacks, Stragglers uint64
	// AntiSent and Annihilated count anti-message traffic.
	AntiSent, Annihilated uint64
	// Drained counts input-queue entries moved to the pending set.
	Drained uint64
	// LazyReused counts sends satisfied by re-adopting a tentative
	// message under lazy cancellation; LazyCancelled counts tentative
	// messages eventually annihilated.
	LazyReused, LazyCancelled uint64
	// GVTCycles is CPU cycles spent inside GVT computation, filled in
	// by the GVT layer; GVTRounds counts completed rounds.
	GVTCycles uint64
	GVTRounds uint64
}

// Peer is one simulation thread's engine state: the set of LPs it
// serves, its input queue, and its timestamp-ordered pending events.
// It corresponds to a "PE"/worker thread in multi-threaded ROSS.
type Peer struct {
	// ID is the simulation thread id.
	ID  int
	eng *Engine

	lps     []*LP
	kps     []*KP
	inq     []*Event
	pending pq.Queue[*Event]

	// freeEvents is the peer's event freelist (see pool.go); pool
	// accumulates its traffic counters between telemetry flushes.
	freeEvents []*Event
	pool       poolStats

	// evCtx and rbCtx are the reusable model-callback contexts for
	// forward execution and reverse computation. They are distinct
	// because a send during OnEvent can trigger a same-peer rollback,
	// nesting reverse handlers inside a live forward context. Models
	// must not retain an EventCtx beyond the callback (documented on
	// Model), so reuse is safe.
	evCtx, rbCtx EventCtx

	// acc accumulates cycles (sends, anti-messages) charged at the end
	// of the enclosing operation.
	acc uint64
	// minSent tracks the smallest timestamp sent since the last GVT
	// cut; +Inf when none.
	minSent VT
	// quiesced receives the pending set, in pop order, when the engine
	// is quiesced for a checkpoint capture (see checkpoint.go).
	quiesced []*Event

	// tel holds this thread's private shard of the telemetry registry;
	// recording here never shares a cache line with another thread.
	tel peerTelemetry

	// foreign marks a peer hosted by another worker process in a
	// distributed run: it holds no event state and sends routed to it
	// are collected as wire events instead (see shard.go).
	foreign bool

	// Stats is exported for the harness; do not mutate externally.
	Stats PeerStats
}

// peerTelemetry caches per-thread shard handles so hot paths skip
// registry lookups; handles from a nil registry record but report
// nothing. Reads merge all peers' shards back into the per-run totals
// (telemetry.Registry.Snapshot).
type peerTelemetry struct {
	rollbackDepth *telemetry.Histogram
	commitBatch   *telemetry.Histogram
	antiSent      *telemetry.Counter
	rollbacks     *telemetry.Counter
	committed     *telemetry.Counter

	poolEventHit      *telemetry.Counter
	poolEventMiss     *telemetry.Counter
	poolEventRecycled *telemetry.Counter
	poolStateHit      *telemetry.Counter
	poolStateMiss     *telemetry.Counter
	poolStateRecycled *telemetry.Counter
}

// newPendingQueue builds a pending set of the engine's configured
// kind; dropEvents (shard.go) also uses it to replace a foreign peer's
// queue with a fresh empty one.
func newPendingQueue(eng *Engine) pq.Queue[*Event] {
	less := func(a, b *Event) bool { return a.before(b) }
	prio := func(e *Event) float64 { return e.Ts }
	return pq.New[*Event](eng.cfg.QueueKind, less, prio)
}

func newPeer(id int, eng *Engine) *Peer {
	sh := eng.cfg.Telemetry.Shard(id)
	return &Peer{
		ID:      id,
		eng:     eng,
		pending: newPendingQueue(eng),
		minSent: math.Inf(1),
		tel: peerTelemetry{
			rollbackDepth: sh.Histogram(MetricRollbackDepth),
			commitBatch:   sh.Histogram(MetricCommitBatch),
			antiSent:      sh.Counter(MetricAntiMessages),
			rollbacks:     sh.Counter(MetricRollbacks),
			committed:     sh.Counter(MetricCommittedEvents),

			poolEventHit:      sh.Counter(MetricPoolEventHit),
			poolEventMiss:     sh.Counter(MetricPoolEventMiss),
			poolEventRecycled: sh.Counter(MetricPoolEventRecycled),
			poolStateHit:      sh.Counter(MetricPoolStateHit),
			poolStateMiss:     sh.Counter(MetricPoolStateMiss),
			poolStateRecycled: sh.Counter(MetricPoolStateRecycled),
		},
	}
}

// LPs returns the LPs served by this peer.
func (p *Peer) LPs() []*LP { return p.lps }

// KPs returns the peer's kernel processes.
func (p *Peer) KPs() []*KP { return p.kps }

// InputSize returns the number of entries in the input queue. Other
// threads read it for activity detection (demand-driven scheduling) —
// safe because machine execution is serialized.
func (p *Peer) InputSize() int {
	if r := p.eng.remote; r != nil {
		return r.InputSize(p.ID)
	}
	return len(p.inq)
}

// HasWork reports whether the peer has any unconsumed input or live
// pending events before the simulation end time, executable or not.
func (p *Peer) HasWork() bool {
	if r := p.eng.remote; r != nil {
		return r.HasWork(p.ID)
	}
	if len(p.inq) > 0 {
		return true
	}
	return p.peekLive() != nil
}

// HasExecutableWork reports whether the peer could make progress right
// now: input to drain, or a live pending event within the optimism
// horizon. Demand-driven scheduling keys on this — a thread whose only
// work lies beyond GVT + OptimismWindow can safely de-schedule, because
// the pseudo-controller's activation scan wakes it once GVT advances
// far enough.
func (p *Peer) HasExecutableWork() bool {
	if r := p.eng.remote; r != nil {
		return r.HasExecutableWork(p.ID)
	}
	if len(p.inq) > 0 {
		return true
	}
	ev := p.peekLive()
	return ev != nil && ev.Ts <= p.eng.horizon()
}

// peekLive returns the first pending event that is neither cancelled
// nor at/after the simulation end time, lazily dropping (and
// recycling) cancelled entries; nil if none.
func (p *Peer) peekLive() *Event {
	for {
		ev, ok := p.pending.Peek()
		if !ok {
			return nil
		}
		if ev.state == StateCancelled {
			p.pending.Pop()
			// The annihilating anti has been consumed and the sender
			// dropped its references; the queue held the last one.
			p.freeEvent(ev)
			continue
		}
		if ev.Ts >= p.eng.cfg.EndTime {
			return nil
		}
		return ev
	}
}

// Drain moves all input-queue entries into the pending set, handling
// anti-messages and rolling back stragglers. It returns the number of
// entries consumed and charges the corresponding CPU cycles.
func (p *Peer) Drain(cpu CPU) int {
	if r := p.eng.remote; r != nil {
		return r.Drain(p.ID, cpu)
	}
	costs := &p.eng.cfg.Costs
	cycles := costs.DrainBaseCycles
	// Handling an anti-message can roll an LP back, whose unsends may
	// append further anti-messages to our own input queue; iterate by
	// index so entries appended mid-drain are consumed too.
	n := 0
	for i := 0; i < len(p.inq); i++ {
		ev := p.inq[i]
		p.inq[i] = nil
		n++
		cycles += costs.DrainPerEventCycles
		p.Stats.Drained++
		switch {
		case ev.Anti:
			p.handleAnti(ev)
			// Nothing else ever references an anti-message; recycle it
			// the moment it is consumed.
			p.freeEvent(ev)
		case ev.state == StateCancelled:
			// Annihilated while still in our queue; drop (already
			// counted when the anti-message cancelled it) and recycle.
			p.freeEvent(ev)
		default:
			lp := p.eng.lps[ev.Dst]
			if last := lp.kp.lastProcessed(); last != nil && ev.before(last) {
				p.Stats.Stragglers++
				p.rollback(lp.kp, ev)
			}
			ev.state = StatePending
			p.pending.Push(ev)
		}
	}
	p.inq = p.inq[:0]
	cycles += p.takeAcc()
	cpu.Work(cycles)
	return n
}

// handleAnti annihilates the anti-message's target, rolling the
// destination LP back first if the target was already executed.
func (p *Peer) handleAnti(anti *Event) {
	target := anti.Target
	switch target.state {
	case StateInQueue, StatePending:
		if p.eng.cfg.LazyCancellation {
			p.flushTentative(target)
		}
		target.state = StateCancelled
		p.Stats.Annihilated++
	case StateProcessed:
		lp := p.eng.lps[target.Dst]
		p.rollback(lp.kp, target)
		// The rollback re-queued the target as pending; annihilate it.
		if target.state != StatePending {
			panic(fmt.Sprintf("tw: rollback did not requeue anti target %v", target))
		}
		if p.eng.cfg.LazyCancellation {
			// The target will never re-execute: its deferred sends are
			// definitively wrong and must be annihilated now.
			p.flushTentative(target)
		}
		target.state = StateCancelled
		p.Stats.Annihilated++
	case StateCancelled, StateCommitted, statePooled:
		// statePooled here means the target was recycled while an anti
		// for it was still in flight — a use-after-recycle bug.
		panic(fmt.Sprintf("tw: anti-message for %v in impossible state", target))
	}
}

// rollback undoes every processed event of the kernel process at or
// after upto, restoring each event's own LP snapshot in reverse order,
// unsending their sends, and re-queueing them as pending. With KPs
// larger than one LP this is coarser than strictly necessary — the
// ROSS trade-off.
func (p *Peer) rollback(kp *KP, upto *Event) int {
	costs := &p.eng.cfg.Costs
	count := 0
	for {
		last := kp.lastProcessed()
		if last == nil || last.before(upto) {
			break
		}
		kp.processed[len(kp.processed)-1] = nil
		kp.processed = kp.processed[:len(kp.processed)-1]
		lp := p.eng.lps[last.Dst]
		if p.eng.cfg.LazyCancellation {
			p.deferUnsend(last)
		} else {
			p.unsend(last)
		}
		if p.eng.cfg.StateSaving == SaveReverse {
			rm := p.eng.cfg.Model.(ReverseModel)
			p.rbCtx = EventCtx{eng: p.eng, peer: p, lp: lp, ev: last}
			rm.OnReverseEvent(&p.rbCtx)
		} else {
			// The snapshot becomes the live state; the displaced live
			// state is dead and feeds the LP's snapshot freelist.
			p.releaseSnapshot(lp, lp.state)
			lp.state = last.saved.state
		}
		lp.rand.Restore(last.saved.rng)
		lp.lvt = last.saved.lvt
		last.saved = Snapshot{}
		last.state = StatePending
		p.pending.Push(last)
		count++
		p.Stats.RolledBack++
		p.eng.uncommitted--
		p.acc += costs.RollbackPerEventCycles
	}
	if count > 0 {
		p.Stats.Rollbacks++
		p.tel.rollbacks.Inc()
		p.tel.rollbackDepth.Observe(float64(count))
		if t := p.eng.cfg.Trace; t != nil {
			t.Add(trace.KindRollback, p.ID, upto.Ts, int64(count))
		}
	}
	return count
}

// deferUnsend parks ev's sends as tentative instead of annihilating
// them (lazy cancellation). Any tentative leftovers from an earlier
// rollback of the same event are annihilated now — the event is being
// rolled back again before re-adopting them. The flushed tentative
// backing array becomes the new sent list, so re-execution appends
// into recycled capacity.
func (p *Peer) deferUnsend(ev *Event) {
	p.flushTentative(ev)
	ev.sent, ev.tentative = ev.tentative, ev.sent
}

// flushTentative annihilates any remaining tentative sends of ev,
// leaving the cleared backing array in place for reuse.
func (p *Peer) flushTentative(ev *Event) {
	for i, s := range ev.tentative {
		ev.tentative[i] = nil
		if s == nil || s.state == StateCancelled {
			continue
		}
		if s.state == statePooled {
			panic(fmt.Sprintf("tw: tentative list holds recycled event %v", s))
		}
		p.sendAnti(s, ev.Dst)
		p.Stats.LazyCancelled++
	}
	ev.tentative = ev.tentative[:0]
}

// sendAnti issues one anti-message for s on behalf of LP src.
func (p *Peer) sendAnti(s *Event, src int) {
	eng := p.eng
	anti := p.allocEvent()
	anti.Ts = s.Ts
	anti.Seq = eng.nextSeq()
	anti.Src = src
	anti.Dst = s.Dst
	anti.Anti = true
	anti.Target = s
	dst := eng.peers[eng.lps[s.Dst].Owner]
	if dst.foreign {
		// Cross-shard annihilation: the anti travels by wire, carrying
		// the target's sequence number for the destination shard to
		// resolve against its twin. The local anti object was allocated
		// only for its sequence number and pool accounting; nothing
		// references it again (see shard.go).
		eng.outbox = append(eng.outbox, WireEvent{
			Ts: anti.Ts, Seq: anti.Seq, Src: anti.Src, Dst: anti.Dst,
			Anti: true, TargetSeq: s.Seq,
		})
	} else {
		dst.inq = append(dst.inq, anti)
	}
	p.acc += eng.cfg.Costs.SendCycles
	p.Stats.AntiSent++
	p.tel.antiSent.Inc()
	if t := eng.cfg.Trace; t != nil {
		t.Add(trace.KindAntiMessage, p.ID, s.Ts, int64(s.Dst))
	}
	p.noteSent(s.Ts)
}

// unsend issues anti-messages for every event ev's execution sent,
// leaving the cleared sent backing array in place for reuse.
func (p *Peer) unsend(ev *Event) {
	for i, s := range ev.sent {
		ev.sent[i] = nil
		p.sendAnti(s, ev.Dst)
	}
	ev.sent = ev.sent[:0]
}

// ProcessBatch speculatively executes up to the engine's batch size of
// pending events and returns how many ran. With a configured optimism
// window, events beyond GVT + window stay pending until GVT advances.
func (p *Peer) ProcessBatch(cpu CPU) int {
	if r := p.eng.remote; r != nil {
		return r.ProcessBatch(p.ID, cpu)
	}
	eng := p.eng
	costs := &eng.cfg.Costs
	horizon := eng.horizon()
	var cycles uint64
	done := 0
	for done < eng.cfg.BatchSize {
		ev := p.peekLive()
		if ev == nil || ev.Ts > horizon {
			break
		}
		p.pending.Pop()
		lp := eng.lps[ev.Dst]
		if eng.gvt > ev.Ts {
			panic(fmt.Sprintf("tw: event %v below GVT %.4f", ev, eng.gvt))
		}
		if last := lp.kp.lastProcessed(); last != nil && ev.before(last) {
			panic(fmt.Sprintf("tw: out-of-order execution of %v after %v", ev, last))
		}
		if eng.cfg.StateSaving == SaveReverse {
			ev.saved = Snapshot{rng: lp.rand.Save(), lvt: lp.lvt}
			cycles += costs.EventCycles + costs.RngSaveCycles
		} else {
			ev.saved = Snapshot{state: p.acquireSnapshot(lp), rng: lp.rand.Save(), lvt: lp.lvt}
			cycles += costs.EventCycles + costs.StateSaveCycles
		}
		ev.state = StateProcessed
		lp.kp.processed = append(lp.kp.processed, ev)
		lp.lvt = ev.Ts
		eng.noteProcessed(1)
		p.evCtx = EventCtx{eng: eng, peer: p, lp: lp, ev: ev}
		eng.cfg.Model.OnEvent(&p.evCtx)
		if eng.cfg.LazyCancellation && len(ev.tentative) > 0 {
			// Tentative sends the re-execution did not regenerate are
			// genuinely wrong: annihilate them now.
			p.flushTentative(ev)
		}
		p.Stats.Processed++
		done++
	}
	cycles += p.takeAcc()
	if cycles > 0 {
		cpu.Work(cycles)
	}
	return done
}

// LocalMin returns the smallest unprocessed timestamp known to this
// peer: live pending events plus everything still in the input queue.
// +Inf when it has none.
func (p *Peer) LocalMin(cpu CPU) VT {
	if r := p.eng.remote; r != nil {
		return r.LocalMin(p.ID, cpu)
	}
	costs := &p.eng.cfg.Costs
	cycles := costs.LocalMinCycles
	min := math.Inf(1)
	if ev := p.peekLive(); ev != nil {
		min = ev.Ts
	}
	for _, ev := range p.inq {
		cycles += costs.DrainPerEventCycles / 2
		if !ev.Anti && ev.state == StateCancelled {
			continue
		}
		if ev.Ts < min {
			min = ev.Ts
		}
	}
	cpu.Work(cycles)
	return min
}

// RemoteMin returns the peer's smallest unprocessed timestamp (pending
// set plus input queue) without charging this peer — the GVT
// pseudo-controller scans threads that did not contribute a cut
// (de-scheduled or freshly reactivated) on their behalf and pays for
// the walk itself. +Inf when the peer holds nothing live.
func (p *Peer) RemoteMin() VT {
	if r := p.eng.remote; r != nil {
		return r.RemoteMin(p.ID)
	}
	min := math.Inf(1)
	if ev := p.peekLive(); ev != nil {
		min = ev.Ts
	}
	for _, ev := range p.inq {
		if !ev.Anti && ev.state == StateCancelled {
			continue
		}
		if ev.Ts < min {
			min = ev.Ts
		}
	}
	return min
}

// noteSent folds a sent timestamp into the GVT transit-minimum window.
func (p *Peer) noteSent(ts VT) {
	if ts < p.minSent {
		p.minSent = ts
	}
}

// TakeMinSent returns the smallest timestamp sent since the previous
// call and resets the window; used by GVT cuts.
func (p *Peer) TakeMinSent() VT {
	if r := p.eng.remote; r != nil {
		return r.TakeMinSent(p.ID)
	}
	v := p.minSent
	p.minSent = math.Inf(1)
	return v
}

// PeekMinSent returns the window without resetting it. The GVT
// pseudo-controller folds it in for threads that contribute no cut this
// round (reactivated threads processing before their subscription takes
// effect): their sends after a receiver's cut would otherwise be
// invisible to the round.
func (p *Peer) PeekMinSent() VT {
	if r := p.eng.remote; r != nil {
		return r.PeekMinSent(p.ID)
	}
	return p.minSent
}

// FossilCollect commits and frees all processed events strictly below
// gvt, returning the number committed. Committed events and their
// copy-state snapshots feed the freelists: fossil collection is where
// the pools are fed, so a few GVT rounds after startup the send path
// stops allocating.
func (p *Peer) FossilCollect(cpu CPU, gvt VT) int {
	if r := p.eng.remote; r != nil {
		return r.FossilCollect(p.ID, cpu, gvt)
	}
	costs := &p.eng.cfg.Costs
	cycles := costs.FossilBaseCycles
	total := 0
	for _, kp := range p.kps {
		k := 0
		for k < len(kp.processed) && kp.processed[k].Ts < gvt {
			ev := kp.processed[k]
			ev.state = StateCommitted
			if ev.saved.state != nil {
				p.releaseSnapshot(p.eng.lps[ev.Dst], ev.saved.state)
			}
			ev.saved = Snapshot{}
			// The event's own sent list and struct are recycled whole;
			// a cause still holding a pointer to ev sits below GVT too
			// and will only ever clear, never dereference, it.
			p.freeEvent(ev)
			k++
		}
		if k == 0 {
			continue
		}
		total += k
		p.eng.uncommitted -= k
		cycles += uint64(k) * costs.FossilPerEventCycles
		rest := len(kp.processed) - k
		copy(kp.processed, kp.processed[k:])
		for i := rest; i < len(kp.processed); i++ {
			kp.processed[i] = nil
		}
		kp.processed = kp.processed[:rest]
	}
	p.flushPoolStats()
	p.Stats.Committed += uint64(total)
	if total > 0 {
		p.tel.committed.Add(uint64(total))
		p.tel.commitBatch.Observe(float64(total))
		if t := p.eng.cfg.Trace; t != nil {
			t.Add(trace.KindCommit, p.ID, gvt, int64(total))
		}
	}
	cpu.Work(cycles)
	return total
}

// takeAcc returns and clears cycles accumulated by sends/rollbacks.
func (p *Peer) takeAcc() uint64 {
	v := p.acc
	p.acc = 0
	return v
}
