package tw

import (
	"math"
	"testing"
)

func TestKPAssignment(t *testing.T) {
	eng, err := NewEngine(Config{
		NumThreads: 2,
		Model:      &ringModel{lpsPerThread: 6, startPerLP: 1},
		EndTime:    10,
		Seed:       1,
		LPsPerKP:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range eng.Peers() {
		if len(p.KPs()) != 2 {
			t.Fatalf("peer %d has %d KPs, want 2", p.ID, len(p.KPs()))
		}
	}
	// LPs 0-2 share a KP; 3-5 the next; thread 1 restarts numbering.
	lps := eng.LPs()
	if lps[0].KP() != lps[2].KP() || lps[0].KP() == lps[3].KP() {
		t.Fatal("KP grouping wrong within thread 0")
	}
	if lps[5].KP() == lps[6].KP() {
		t.Fatal("KPs leaked across threads")
	}
	if lps[6].KP().Owner != 1 {
		t.Fatalf("thread-1 KP owner = %d", lps[6].KP().Owner)
	}
}

func TestKPDefaultsToOnePerLP(t *testing.T) {
	eng := newTestEngine(t, 1, 4, 1, 10)
	if got := len(eng.Peer(0).KPs()); got != 4 {
		t.Fatalf("default KPs = %d, want 4", got)
	}
}

func TestKPValidation(t *testing.T) {
	_, err := NewEngine(Config{
		NumThreads: 1,
		Model:      &ringModel{lpsPerThread: 2, startPerLP: 1},
		EndTime:    10,
		LPsPerKP:   -1,
	})
	if err == nil {
		t.Fatal("negative LPsPerKP accepted")
	}
}

// The KP gold test: grouping LPs into KPs changes rollback granularity,
// never the committed trajectory.
func TestKPSizesCommitIdenticalTrajectories(t *testing.T) {
	run := func(lpsPerKP int, order []int) (uint64, []int, []float64, uint64) {
		eng, err := NewEngine(Config{
			NumThreads: 4,
			Model:      &ringModel{lpsPerThread: 4, startPerLP: 2},
			EndTime:    30,
			Seed:       12345,
			LPsPerKP:   lpsPerKP,
		})
		if err != nil {
			t.Fatal(err)
		}
		runQuiescent(t, eng, order)
		if err := eng.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		committed, counts, sums := collectResults(eng)
		return committed, counts, sums, eng.TotalStats().RolledBack
	}
	order := []int{0, 0, 0, 0, 0, 0, 1, 2, 3}
	refCommitted, refCounts, refSums, refRolled := run(1, order)
	for _, size := range []int{2, 4} {
		committed, counts, sums, rolled := run(size, order)
		if committed != refCommitted {
			t.Fatalf("kp=%d: committed %d != %d", size, committed, refCommitted)
		}
		for i := range counts {
			if counts[i] != refCounts[i] || math.Abs(sums[i]-refSums[i]) > 1e-9 {
				t.Fatalf("kp=%d: LP %d state diverged", size, i)
			}
		}
		// Coarser KPs can only roll back at least as much.
		if rolled < refRolled {
			t.Fatalf("kp=%d rolled back %d < per-LP %d", size, rolled, refRolled)
		}
	}
}

// Coarse KPs must roll back sibling LPs when one member straggles.
func TestKPStragglerRollsBackSiblings(t *testing.T) {
	eng, err := NewEngine(Config{
		NumThreads: 2,
		Model:      &ringModel{lpsPerThread: 4, startPerLP: 1},
		EndTime:    100,
		Seed:       5,
		LPsPerKP:   4, // one KP per thread
	})
	if err != nil {
		t.Fatal(err)
	}
	cpu := &fakeCPU{}
	p0, p1 := eng.Peer(0), eng.Peer(1)
	for i := 0; i < 40; i++ {
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	for i := 0; i < 80; i++ {
		p1.Drain(cpu)
		p1.ProcessBatch(cpu)
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	s := eng.TotalStats()
	if s.Stragglers == 0 {
		t.Skip("no stragglers this interleaving")
	}
	if s.RolledBack == 0 {
		t.Fatal("stragglers rolled back nothing")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
