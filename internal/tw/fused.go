package tw

// Fused peer operations. The scheduler and GVT hot paths issue several
// fixed pairs of consecutive operations against the same peer with no
// intervening engine state reads; fusing each pair into one call lets a
// distributed transport ship the pair as a single coalesced frame
// instead of two synchronous round trips. In-process the fused methods
// are nothing but the two calls in their original order, so the
// trajectory is unchanged by construction; a remote transport must
// execute the constituent operations in exactly this order on the
// worker and charge cpu with each operation's cycles in the same order.

// DrainProcess is the main-loop pair: Drain immediately followed by
// ProcessBatch (core.Runner.threadBody).
func (p *Peer) DrainProcess(cpu CPU) (drained, processed int) {
	if r := p.eng.remote; r != nil {
		return r.DrainProcess(p.ID, cpu)
	}
	return p.Drain(cpu), p.ProcessBatch(cpu)
}

// DrainLocalMin is the barrier GVT's stop-the-world pair: Drain
// immediately followed by LocalMin (gvt.barrier's cut).
func (p *Peer) DrainLocalMin(cpu CPU) (drained int, min VT) {
	if r := p.eng.remote; r != nil {
		return r.DrainLocalMin(p.ID, cpu)
	}
	return p.Drain(cpu), p.LocalMin(cpu)
}

// CutMins is the wait-free GVT's second-cut pair: TakeMinSent
// immediately followed by LocalMin (gvt.waitFree.stepSend).
func (p *Peer) CutMins(cpu CPU) (minSent, localMin VT) {
	if r := p.eng.remote; r != nil {
		return r.CutMins(p.ID, cpu)
	}
	return p.TakeMinSent(), p.LocalMin(cpu)
}

// ScanMins is the pseudo-controller's scan pair for threads that
// contributed no cut this round: RemoteMin immediately followed by
// PeekMinSent (both GVT reduction loops).
func (p *Peer) ScanMins() (remoteMin, peekMinSent VT) {
	if r := p.eng.remote; r != nil {
		return r.ScanMins(p.ID)
	}
	return p.RemoteMin(), p.PeekMinSent()
}
