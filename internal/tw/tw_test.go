package tw

import (
	"math"
	"strings"
	"testing"

	"ggpdes/internal/pq"
)

// fakeCPU satisfies CPU for engine-level tests without a machine.
type fakeCPU struct{ cycles uint64 }

func (f *fakeCPU) Work(c uint64) { f.cycles += c }

// ringState is a toy PHOLD-like model: each event increments a counter
// and forwards one event to the next LP with a random positive delay.
type ringState struct {
	Count int
	Sum   float64
}

func (s *ringState) Clone() State {
	c := *s
	return &c
}

func (s *ringState) CopyFrom(src State) { *s = *src.(*ringState) }

type ringModel struct {
	lpsPerThread int
	startPerLP   int
}

func (m *ringModel) LPsPerThread() int { return m.lpsPerThread }

func (m *ringModel) InitLP(ic *InitCtx, lp *LP) {
	lp.SetState(&ringState{})
	for k := 0; k < m.startPerLP; k++ {
		ic.ScheduleInit(lp.ID, 0.01*float64(k+1)+0.001*float64(lp.ID), 0, 0, 0)
	}
}

func (m *ringModel) OnEvent(ctx *EventCtx) {
	st := ctx.LP().State().(*ringState)
	st.Count++
	st.Sum += ctx.Now()
	dst := (ctx.LP().ID + 1) % ctx.Engine().NumLPs()
	delay := 0.1 + ctx.Rand().Exponential(0.9)
	ctx.Send(dst, ctx.Now()+delay, 0, 0, 0)
}

func newTestEngine(t *testing.T, threads, lpsPer, startPer int, end VT) *Engine {
	t.Helper()
	eng, err := NewEngine(Config{
		NumThreads: threads,
		Model:      &ringModel{lpsPerThread: lpsPer, startPerLP: startPer},
		EndTime:    end,
		Seed:       12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// runQuiescent drives peers in the given repeating order until no peer
// has work, recomputing GVT after every full pass. Returns final GVT.
func runQuiescent(t *testing.T, eng *Engine, order []int) VT {
	t.Helper()
	cpu := &fakeCPU{}
	for pass := 0; pass < 1_000_000; pass++ {
		busy := false
		for _, id := range order {
			p := eng.Peer(id)
			if p.Drain(cpu) > 0 {
				busy = true
			}
			if p.ProcessBatch(cpu) > 0 {
				busy = true
			}
		}
		if !busy {
			min := math.Inf(1)
			for _, p := range eng.Peers() {
				m := p.LocalMin(cpu)
				if m < min {
					min = m
				}
			}
			for _, p := range eng.Peers() {
				if s := p.TakeMinSent(); s < min {
					min = s
				}
			}
			eng.SetGVT(math.Min(min, eng.EndTime()))
			for _, p := range eng.Peers() {
				p.FossilCollect(cpu, eng.GVT())
			}
			if eng.Done() {
				return eng.GVT()
			}
		}
	}
	t.Fatal("simulation did not quiesce")
	return 0
}

func collectResults(eng *Engine) (committed uint64, counts []int, sums []float64) {
	s := eng.TotalStats()
	counts = make([]int, eng.NumLPs())
	sums = make([]float64, eng.NumLPs())
	for i, lp := range eng.LPs() {
		st := lp.State().(*ringState)
		counts[i] = st.Count
		sums[i] = st.Sum
	}
	return s.Committed, counts, sums
}

func TestConfigValidation(t *testing.T) {
	model := &ringModel{lpsPerThread: 1, startPerLP: 1}
	cases := []Config{
		{NumThreads: 0, Model: model, EndTime: 1},
		{NumThreads: 1, Model: nil, EndTime: 1},
		{NumThreads: 1, Model: model, EndTime: 0},
		{NumThreads: 1, Model: model, EndTime: 1, BatchSize: -1},
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	eng := newTestEngine(t, 2, 2, 1, 10)
	cfg := eng.Config()
	if cfg.BatchSize != 8 {
		t.Fatalf("BatchSize default = %d", cfg.BatchSize)
	}
	if cfg.Costs == (CostModel{}) {
		t.Fatal("Costs default not filled")
	}
	if cfg.QueueKind != pq.Splay {
		t.Fatalf("QueueKind default = %v", cfg.QueueKind)
	}
}

func TestBlockMapping(t *testing.T) {
	eng := newTestEngine(t, 4, 8, 1, 10)
	if eng.NumLPs() != 32 {
		t.Fatalf("NumLPs = %d", eng.NumLPs())
	}
	for id, lp := range eng.LPs() {
		if lp.Owner != id/8 {
			t.Fatalf("LP %d owner = %d, want %d", id, lp.Owner, id/8)
		}
	}
	for i, p := range eng.Peers() {
		if len(p.LPs()) != 8 {
			t.Fatalf("peer %d serves %d LPs", i, len(p.LPs()))
		}
	}
}

func TestSequentialRunCompletes(t *testing.T) {
	eng := newTestEngine(t, 1, 4, 1, 50)
	gvt := runQuiescent(t, eng, []int{0})
	if gvt < 50 {
		t.Fatalf("final GVT = %v", gvt)
	}
	committed, counts, _ := collectResults(eng)
	if committed == 0 {
		t.Fatal("no events committed")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if uint64(total) != committed {
		t.Fatalf("state counters %d != committed %d", total, committed)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := eng.TotalStats()
	if s.RolledBack != 0 {
		t.Fatalf("sequential run rolled back %d events", s.RolledBack)
	}
}

// The gold test: with rollback repairing all mis-speculation, any
// execution interleaving must commit the identical trajectory.
func TestInterleavingsCommitIdenticalTrajectories(t *testing.T) {
	const threads, lpsPer, startPer = 4, 4, 2
	const end = 30.0
	ref := newTestEngine(t, threads, lpsPer, startPer, end)
	runQuiescent(t, ref, []int{0, 1, 2, 3})
	refCommitted, refCounts, refSums := collectResults(ref)
	if refCommitted == 0 {
		t.Fatal("reference run committed nothing")
	}

	orders := [][]int{
		{3, 2, 1, 0},
		// Heavily skewed: peer 0 races far ahead, forcing stragglers.
		{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3},
		{1, 1, 3, 3, 0, 2},
		{2, 0, 2, 1, 2, 3, 2},
	}
	sawRollback := false
	for oi, order := range orders {
		eng := newTestEngine(t, threads, lpsPer, startPer, end)
		runQuiescent(t, eng, order)
		committed, counts, sums := collectResults(eng)
		if committed != refCommitted {
			t.Fatalf("order %d: committed %d != ref %d", oi, committed, refCommitted)
		}
		for i := range counts {
			if counts[i] != refCounts[i] || math.Abs(sums[i]-refSums[i]) > 1e-9 {
				t.Fatalf("order %d: LP %d state (%d, %v) != ref (%d, %v)",
					oi, i, counts[i], sums[i], refCounts[i], refSums[i])
			}
		}
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("order %d: %v", oi, err)
		}
		if eng.TotalStats().RolledBack > 0 {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Fatal("no interleaving produced rollbacks; test exercises nothing")
	}
}

func TestStragglerTriggersRollback(t *testing.T) {
	eng := newTestEngine(t, 2, 2, 1, 100)
	cpu := &fakeCPU{}
	p0, p1 := eng.Peer(0), eng.Peer(1)
	// Let peer 0 run far ahead on its own events.
	for i := 0; i < 40; i++ {
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	if p0.Stats.Processed == 0 {
		t.Fatal("peer 0 processed nothing")
	}
	// Now peer 1 processes its low-timestamp events, sending into the
	// ring (LP 3 -> LP 0), which must eventually straggle peer 0.
	for i := 0; i < 40; i++ {
		p1.Drain(cpu)
		p1.ProcessBatch(cpu)
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	if p0.Stats.Stragglers == 0 && p1.Stats.Stragglers == 0 {
		t.Fatal("no stragglers despite skewed execution")
	}
	total := eng.TotalStats()
	if total.RolledBack == 0 {
		t.Fatal("stragglers produced no rolled-back events")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAntiMessageAnnihilatesUnprocessed(t *testing.T) {
	eng := newTestEngine(t, 2, 2, 1, 100)
	cpu := &fakeCPU{}
	p0, p1 := eng.Peer(0), eng.Peer(1)
	// Run peer 0 ahead so it sends events to peer 1 (LP 1 -> LP 2).
	for i := 0; i < 30; i++ {
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	if p1.InputSize() == 0 {
		t.Fatal("peer 0 never sent to peer 1")
	}
	// Peer 1 catches up and its sends (LP 3 -> LP 0) roll peer 0 back,
	// generating anti-messages into peer 1's input queue.
	for i := 0; i < 60; i++ {
		p1.Drain(cpu)
		p1.ProcessBatch(cpu)
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	total := eng.TotalStats()
	if total.AntiSent == 0 {
		t.Fatal("rollbacks sent no anti-messages")
	}
	if total.Annihilated == 0 {
		t.Fatal("anti-messages annihilated nothing")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackRestoresRNG(t *testing.T) {
	// After a rollback, re-executed events must draw identical random
	// numbers — verified indirectly by the trajectory-equality gold
	// test, and directly here via snapshot round-trip.
	eng := newTestEngine(t, 1, 1, 1, 1000)
	cpu := &fakeCPU{}
	p := eng.Peer(0)
	lp := eng.LPs()[0]
	p.Drain(cpu)
	p.ProcessBatch(cpu)
	st := lp.State().(*ringState)
	if st.Count == 0 {
		t.Fatal("nothing processed")
	}
	// Manually roll back everything.
	first := lp.KP().processed[0]
	n := p.rollback(lp.KP(), first)
	if n == 0 {
		t.Fatal("rollback undid nothing")
	}
	st = lp.State().(*ringState)
	if st.Count != 0 || lp.LVT() != 0 {
		t.Fatalf("rollback left Count=%d LVT=%v", st.Count, lp.LVT())
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFossilCollectCommitsBelowGVT(t *testing.T) {
	eng := newTestEngine(t, 1, 2, 1, 1000)
	cpu := &fakeCPU{}
	p := eng.Peer(0)
	for i := 0; i < 10; i++ {
		p.Drain(cpu)
		p.ProcessBatch(cpu)
	}
	before := 0
	for _, kp := range p.KPs() {
		before += kp.UncommittedEvents()
	}
	if before == 0 {
		t.Fatal("no processed events to fossil collect")
	}
	gvt := p.LocalMin(cpu) / 2 // strictly below anything unprocessed
	eng.SetGVT(gvt)
	n := p.FossilCollect(cpu, gvt)
	if n == 0 {
		t.Fatal("nothing committed")
	}
	if p.Stats.Committed != uint64(n) {
		t.Fatalf("stats committed %d != %d", p.Stats.Committed, n)
	}
	for _, kp := range p.KPs() {
		for _, ev := range kp.processed {
			if ev.Ts < gvt {
				t.Fatalf("event below GVT left uncommitted: %v", ev)
			}
		}
	}
}

func TestGVTMonotonicityEnforced(t *testing.T) {
	eng := newTestEngine(t, 1, 1, 1, 10)
	eng.SetGVT(5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards GVT did not panic")
		}
	}()
	eng.SetGVT(4)
}

func TestSendIntoPastPanics(t *testing.T) {
	model := &pastModel{}
	eng, err := NewEngine(Config{NumThreads: 1, Model: model, EndTime: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cpu := &fakeCPU{}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "past") {
			t.Fatalf("recover = %v", r)
		}
	}()
	eng.Peer(0).ProcessBatch(cpu)
}

type pastModel struct{}

func (m *pastModel) LPsPerThread() int { return 1 }
func (m *pastModel) InitLP(ic *InitCtx, lp *LP) {
	lp.SetState(&ringState{})
	ic.ScheduleInit(lp.ID, 5, 0, 0, 0)
}
func (m *pastModel) OnEvent(ctx *EventCtx) {
	ctx.Send(0, ctx.Now()-1, 0, 0, 0)
}

func TestLocalMinSeesInputAndPending(t *testing.T) {
	eng := newTestEngine(t, 2, 1, 1, 100)
	cpu := &fakeCPU{}
	p0 := eng.Peer(0)
	// Initial events only: LocalMin is the earliest initial event.
	min := p0.LocalMin(cpu)
	if math.IsInf(min, 1) {
		t.Fatal("LocalMin missed pending initial event")
	}
	p0.Drain(cpu)
	p0.ProcessBatch(cpu)
	// Peer 1 now has an input-queue event from LP 0 -> LP 1.
	p1 := eng.Peer(1)
	if p1.InputSize() == 0 {
		t.Skip("ring did not cross threads this configuration")
	}
	m1 := p1.LocalMin(cpu)
	if math.IsInf(m1, 1) {
		t.Fatal("LocalMin missed input-queue event")
	}
}

func TestLocalMinEmptyIsInf(t *testing.T) {
	eng := newTestEngine(t, 2, 1, 0, 100)
	cpu := &fakeCPU{}
	if !math.IsInf(eng.Peer(0).LocalMin(cpu), 1) {
		t.Fatal("empty peer LocalMin not +Inf")
	}
	if eng.Peer(0).HasWork() {
		t.Fatal("empty peer claims work")
	}
}

func TestHasWorkAndInputSize(t *testing.T) {
	eng := newTestEngine(t, 2, 1, 1, 100)
	cpu := &fakeCPU{}
	p0, p1 := eng.Peer(0), eng.Peer(1)
	if !p0.HasWork() {
		t.Fatal("peer with initial events has no work")
	}
	for i := 0; i < 5 && p1.InputSize() == 0; i++ {
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	if p1.InputSize() > 0 && !p1.HasWork() {
		t.Fatal("peer with input has no work")
	}
}

func TestEventsBeyondEndTimeNotProcessed(t *testing.T) {
	eng := newTestEngine(t, 1, 2, 1, 5)
	runQuiescent(t, eng, []int{0})
	for _, lp := range eng.LPs() {
		if lp.LVT() >= 5 {
			t.Fatalf("LP %d processed event at/after end time: LVT %v", lp.ID, lp.LVT())
		}
	}
}

func TestBatchSizeRespected(t *testing.T) {
	eng, err := NewEngine(Config{
		NumThreads: 1,
		Model:      &ringModel{lpsPerThread: 4, startPerLP: 8},
		EndTime:    1000,
		Seed:       7,
		BatchSize:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpu := &fakeCPU{}
	p := eng.Peer(0)
	p.Drain(cpu)
	if n := p.ProcessBatch(cpu); n != 3 {
		t.Fatalf("batch processed %d, want 3", n)
	}
}

func TestCPUChargedForWork(t *testing.T) {
	eng := newTestEngine(t, 1, 2, 2, 50)
	cpu := &fakeCPU{}
	p := eng.Peer(0)
	p.Drain(cpu)
	afterDrain := cpu.cycles
	if afterDrain == 0 {
		t.Fatal("drain charged nothing")
	}
	p.ProcessBatch(cpu)
	if cpu.cycles <= afterDrain {
		t.Fatal("processing charged nothing")
	}
}

func TestQueueKindsProduceSameTrajectory(t *testing.T) {
	results := make([]uint64, 0, 3)
	for _, kind := range []pq.Kind{pq.Splay, pq.Heap, pq.Calendar} {
		eng, err := NewEngine(Config{
			NumThreads: 2,
			Model:      &ringModel{lpsPerThread: 2, startPerLP: 2},
			EndTime:    20,
			Seed:       99,
			QueueKind:  kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		runQuiescent(t, eng, []int{1, 0})
		committed, _, _ := collectResults(eng)
		results = append(results, committed)
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("queue kinds disagree: %v", results)
	}
}

func TestEventStateString(t *testing.T) {
	cases := map[EventState]string{
		StateInQueue: "in-queue", StatePending: "pending", StateProcessed: "processed",
		StateCancelled: "cancelled", StateCommitted: "committed", EventState(99): "invalid",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("state %d = %q, want %q", s, s.String(), want)
		}
	}
}

func TestEventStringFormat(t *testing.T) {
	e := &Event{Ts: 1.5, Seq: 3, Src: 1, Dst: 2, Anti: true}
	s := e.String()
	if !strings.Contains(s, "anti") || !strings.Contains(s, "1.5") {
		t.Fatalf("String() = %q", s)
	}
}

func TestMemoryAccounting(t *testing.T) {
	eng := newTestEngine(t, 1, 4, 2, 50)
	cpu := &fakeCPU{}
	p := eng.Peer(0)
	for i := 0; i < 10; i++ {
		p.Drain(cpu)
		p.ProcessBatch(cpu)
	}
	if eng.UncommittedEvents() == 0 || eng.PeakUncommittedEvents() == 0 {
		t.Fatal("no memory accounted")
	}
	if eng.UncommittedEvents() > eng.PeakUncommittedEvents() {
		t.Fatal("current exceeds peak")
	}
	// Current gauge must equal the sum of LP histories.
	sum := 0
	for _, kp := range p.KPs() {
		sum += kp.UncommittedEvents()
	}
	if sum != eng.UncommittedEvents() {
		t.Fatalf("gauge %d != history sum %d", eng.UncommittedEvents(), sum)
	}
	// Fossil collection shrinks the gauge to zero at end time.
	runQuiescent(t, eng, []int{0})
	if eng.UncommittedEvents() != 0 {
		t.Fatalf("gauge = %d after full commit", eng.UncommittedEvents())
	}
}

func TestMemoryGaugeTracksRollbacks(t *testing.T) {
	eng := newTestEngine(t, 2, 2, 1, 100)
	cpu := &fakeCPU{}
	p0, p1 := eng.Peer(0), eng.Peer(1)
	for i := 0; i < 30; i++ {
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	before := eng.UncommittedEvents()
	for i := 0; i < 60; i++ {
		p1.Drain(cpu)
		p1.ProcessBatch(cpu)
		p0.Drain(cpu)
		p0.ProcessBatch(cpu)
	}
	if eng.TotalStats().RolledBack == 0 {
		t.Skip("no rollbacks this interleaving")
	}
	// After rollbacks and reprocessing the gauge still matches reality.
	sum := 0
	for _, pp := range eng.Peers() {
		for _, kp := range pp.KPs() {
			sum += kp.UncommittedEvents()
		}
	}
	if sum != eng.UncommittedEvents() {
		t.Fatalf("gauge %d != history sum %d (before=%d)", eng.UncommittedEvents(), sum, before)
	}
}

func TestHasExecutableWorkHorizon(t *testing.T) {
	eng, err := NewEngine(Config{
		NumThreads:     1,
		Model:          &farFutureModel{},
		EndTime:        100,
		Seed:           1,
		OptimismWindow: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := eng.Peer(0)
	// The only pending event sits at ts 50, far beyond GVT(0)+5.
	if !p.HasWork() {
		t.Fatal("HasWork should see the far-future event")
	}
	if p.HasExecutableWork() {
		t.Fatal("far-future event must not be executable at GVT 0")
	}
	cpu := &fakeCPU{}
	if n := p.ProcessBatch(cpu); n != 0 {
		t.Fatalf("processed %d beyond horizon", n)
	}
	eng.SetGVT(46) // horizon 51 now covers ts 50
	if !p.HasExecutableWork() {
		t.Fatal("event within horizon not executable")
	}
	if n := p.ProcessBatch(cpu); n != 1 {
		t.Fatalf("processed %d, want 1", n)
	}
}

type farFutureModel struct{}

func (m *farFutureModel) LPsPerThread() int { return 1 }
func (m *farFutureModel) InitLP(ic *InitCtx, lp *LP) {
	lp.SetState(&ringState{})
	ic.ScheduleInit(0, 50, 0, 0, 0)
}
func (m *farFutureModel) OnEvent(ctx *EventCtx) {
	ctx.LP().State().(*ringState).Count++
}
