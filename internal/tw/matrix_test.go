package tw

import (
	"fmt"
	"math"
	"testing"
)

// The cross-feature gold test: every combination of rollback mechanism,
// cancellation policy, kernel-process size, pending-queue kind and
// optimism window must commit the identical trajectory under a
// rollback-heavy interleaving. Features may only trade performance.
func TestFeatureMatrixCommitsIdenticalTrajectories(t *testing.T) {
	type combo struct {
		saving SavePolicy
		lazy   bool
		kp     int
		window VT
	}
	var combos []combo
	for _, saving := range []SavePolicy{SaveCopy, SaveReverse} {
		for _, lazy := range []bool{false, true} {
			for _, kp := range []int{1, 4} {
				for _, window := range []VT{0, 5} {
					combos = append(combos, combo{saving, lazy, kp, window})
				}
			}
		}
	}
	order := []int{0, 0, 0, 0, 0, 1, 3, 2}
	run := func(c combo) (uint64, []int, []float64, uint64) {
		eng, err := NewEngine(Config{
			NumThreads:       4,
			Model:            &reversibleRing{ringModel{lpsPerThread: 4, startPerLP: 2}},
			EndTime:          25,
			Seed:             777,
			StateSaving:      c.saving,
			LazyCancellation: c.lazy,
			LPsPerKP:         c.kp,
			OptimismWindow:   c.window,
		})
		if err != nil {
			t.Fatal(err)
		}
		runQuiescent(t, eng, order)
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		committed, counts, sums := collectResults(eng)
		return committed, counts, sums, eng.TotalStats().RolledBack
	}

	refCommitted, refCounts, refSums, _ := run(combos[0])
	if refCommitted == 0 {
		t.Fatal("reference committed nothing")
	}
	sawRollback := false
	for _, c := range combos[1:] {
		c := c
		t.Run(fmt.Sprintf("%s-lazy%v-kp%d-w%v", c.saving, c.lazy, c.kp, c.window), func(t *testing.T) {
			committed, counts, sums, rolled := run(c)
			if rolled > 0 {
				sawRollback = true
			}
			if committed != refCommitted {
				t.Fatalf("committed %d != reference %d", committed, refCommitted)
			}
			for i := range counts {
				if counts[i] != refCounts[i] || math.Abs(sums[i]-refSums[i]) > 1e-9 {
					t.Fatalf("LP %d state (%d, %v) != reference (%d, %v)",
						i, counts[i], sums[i], refCounts[i], refSums[i])
				}
			}
		})
	}
	if !sawRollback {
		t.Fatal("matrix produced no rollbacks; test exercises nothing")
	}
}
