package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type ev struct {
	ts  float64
	seq int
}

func evLess(a, b ev) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	return a.seq < b.seq
}

func evPrio(e ev) float64 { return e.ts }

func allKinds(t *testing.T, f func(t *testing.T, q Queue[ev])) {
	t.Helper()
	for _, k := range []Kind{Splay, Heap, Calendar} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			f(t, New[ev](k, evLess, evPrio))
		})
	}
}

func TestEmptyQueue(t *testing.T) {
	allKinds(t, func(t *testing.T, q Queue[ev]) {
		if q.Len() != 0 {
			t.Fatal("new queue not empty")
		}
		if _, ok := q.Pop(); ok {
			t.Fatal("Pop on empty returned ok")
		}
		if _, ok := q.Peek(); ok {
			t.Fatal("Peek on empty returned ok")
		}
	})
}

func TestSingleItem(t *testing.T) {
	allKinds(t, func(t *testing.T, q Queue[ev]) {
		q.Push(ev{ts: 3.5, seq: 1})
		if q.Len() != 1 {
			t.Fatal("Len != 1 after one push")
		}
		got, ok := q.Peek()
		if !ok || got.ts != 3.5 {
			t.Fatalf("Peek = %v, %v", got, ok)
		}
		got, ok = q.Pop()
		if !ok || got.ts != 3.5 || q.Len() != 0 {
			t.Fatalf("Pop = %v, %v, len %d", got, ok, q.Len())
		}
	})
}

func TestSortedDrain(t *testing.T) {
	allKinds(t, func(t *testing.T, q Queue[ev]) {
		r := rand.New(rand.NewSource(7))
		const n = 5000
		want := make([]ev, n)
		for i := range want {
			want[i] = ev{ts: r.Float64() * 1000, seq: i}
		}
		for _, e := range want {
			q.Push(e)
		}
		sort.Slice(want, func(i, j int) bool { return evLess(want[i], want[j]) })
		for i, w := range want {
			got, ok := q.Pop()
			if !ok {
				t.Fatalf("queue dried up at %d", i)
			}
			if got != w {
				t.Fatalf("drain[%d] = %v, want %v", i, got, w)
			}
		}
		if q.Len() != 0 {
			t.Fatal("queue not empty after drain")
		}
	})
}

func TestDuplicateTimestamps(t *testing.T) {
	allKinds(t, func(t *testing.T, q Queue[ev]) {
		for i := 0; i < 100; i++ {
			q.Push(ev{ts: 1.0, seq: i})
		}
		last := -1
		for i := 0; i < 100; i++ {
			got, ok := q.Pop()
			if !ok || got.ts != 1.0 {
				t.Fatalf("bad pop %v %v", got, ok)
			}
			if got.seq <= last {
				t.Fatalf("tie-break order violated: %d after %d", got.seq, last)
			}
			last = got.seq
		}
	})
}

func TestInterleavedPushPop(t *testing.T) {
	allKinds(t, func(t *testing.T, q Queue[ev]) {
		r := rand.New(rand.NewSource(99))
		var ref []ev
		seq := 0
		for step := 0; step < 20000; step++ {
			if r.Intn(3) != 0 || len(ref) == 0 {
				e := ev{ts: r.Float64() * 100, seq: seq}
				seq++
				q.Push(e)
				ref = append(ref, e)
			} else {
				sort.Slice(ref, func(i, j int) bool { return evLess(ref[i], ref[j]) })
				want := ref[0]
				ref = ref[1:]
				got, ok := q.Pop()
				if !ok || got != want {
					t.Fatalf("step %d: got %v, want %v", step, got, want)
				}
			}
			if q.Len() != len(ref) {
				t.Fatalf("step %d: Len %d, ref %d", step, q.Len(), len(ref))
			}
		}
	})
}

// PDES-like access pattern: mostly-increasing pushes with occasional
// out-of-order "straggler" pushes below the last popped priority.
func TestStragglerPattern(t *testing.T) {
	allKinds(t, func(t *testing.T, q Queue[ev]) {
		r := rand.New(rand.NewSource(3))
		now := 0.0
		var ref []ev
		seq := 0
		push := func(ts float64) {
			e := ev{ts: ts, seq: seq}
			seq++
			q.Push(e)
			ref = append(ref, e)
		}
		for i := 0; i < 200; i++ {
			push(r.Float64() * 10)
		}
		for step := 0; step < 5000; step++ {
			got, ok := q.Pop()
			if !ok {
				break
			}
			sort.Slice(ref, func(i, j int) bool { return evLess(ref[i], ref[j]) })
			if got != ref[0] {
				t.Fatalf("step %d: got %v, want %v", step, got, ref[0])
			}
			ref = ref[1:]
			now = got.ts
			// Forward push, plus occasional stragglers behind now.
			push(now + r.Float64()*5)
			if r.Intn(20) == 0 {
				push(now * r.Float64())
			}
		}
	})
}

func TestPeekDoesNotRemove(t *testing.T) {
	allKinds(t, func(t *testing.T, q Queue[ev]) {
		q.Push(ev{ts: 2})
		q.Push(ev{ts: 1})
		a, _ := q.Peek()
		b, _ := q.Peek()
		if a != b || q.Len() != 2 {
			t.Fatalf("Peek mutated queue: %v %v len=%d", a, b, q.Len())
		}
		c, _ := q.Pop()
		if c != a {
			t.Fatalf("Pop %v != Peek %v", c, a)
		}
	})
}

// Property: for arbitrary push sequences, every queue kind drains in
// exactly the reference-sorted order.
func TestQuickAllKindsMatchReference(t *testing.T) {
	f := func(tsRaw []uint16) bool {
		items := make([]ev, len(tsRaw))
		for i, v := range tsRaw {
			items[i] = ev{ts: float64(v) / 7.0, seq: i}
		}
		want := append([]ev(nil), items...)
		sort.Slice(want, func(i, j int) bool { return evLess(want[i], want[j]) })
		for _, k := range []Kind{Splay, Heap, Calendar} {
			q := New[ev](k, evLess, evPrio)
			for _, e := range items {
				q.Push(e)
			}
			for _, w := range want {
				got, ok := q.Pop()
				if !ok || got != w {
					return false
				}
			}
			if q.Len() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Len is consistent under arbitrary interleavings.
func TestQuickLenConsistency(t *testing.T) {
	f := func(ops []int8) bool {
		for _, k := range []Kind{Splay, Heap, Calendar} {
			q := New[ev](k, evLess, evPrio)
			n := 0
			for i, op := range ops {
				if op >= 0 {
					q.Push(ev{ts: float64(op), seq: i})
					n++
				} else if n > 0 {
					if _, ok := q.Pop(); !ok {
						return false
					}
					n--
				}
				if q.Len() != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarRequiresPrio(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Calendar) without prio did not panic")
		}
	}()
	New[ev](Calendar, evLess, nil)
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Splay: "splay", Heap: "heap", Calendar: "calendar", Kind(42): "unknown"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func benchQueue(b *testing.B, k Kind) {
	q := New[ev](k, evLess, evPrio)
	r := rand.New(rand.NewSource(1))
	// Hold pattern at steady state ~1024 items: push one, pop one.
	now := 0.0
	for i := 0; i < 1024; i++ {
		q.Push(ev{ts: now + r.Float64()*10, seq: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := q.Pop()
		now = e.ts
		q.Push(ev{ts: now + r.Float64()*10, seq: i})
	}
}

func BenchmarkPendingQueueSplay(b *testing.B)    { benchQueue(b, Splay) }
func BenchmarkPendingQueueHeap(b *testing.B)     { benchQueue(b, Heap) }
func BenchmarkPendingQueueCalendar(b *testing.B) { benchQueue(b, Calendar) }
