package pq

// SplayTree is a self-adjusting binary search tree used as a
// min-priority queue. Pending-event access in PDES is heavily skewed
// toward the low-timestamp end, which splaying exploits: repeated Pop
// and near-minimum Push run in amortized O(log n) with very small
// constants, which is why ROSS uses a splay tree for its event queue.
type SplayTree[T any] struct {
	root *splayNode[T]
	less Less[T]
	size int
	// free is a singly linked node freelist (threaded through right
	// pointers): Pop recycles its node here and Push takes from it, so
	// a tree in steady state allocates no nodes.
	free *splayNode[T]
}

type splayNode[T any] struct {
	item        T
	left, right *splayNode[T]
}

// NewSplay returns an empty splay tree ordered by less.
func NewSplay[T any](less Less[T]) *SplayTree[T] {
	return &SplayTree[T]{less: less}
}

// Len reports the number of items in the tree.
func (t *SplayTree[T]) Len() int { return t.size }

// splay performs a top-down splay of the tree around item, leaving the
// closest node at the root.
func (t *SplayTree[T]) splay(item T) {
	if t.root == nil {
		return
	}
	var header splayNode[T]
	l, r := &header, &header
	cur := t.root
	for {
		if t.less(item, cur.item) {
			if cur.left == nil {
				break
			}
			if t.less(item, cur.left.item) {
				// Rotate right.
				y := cur.left
				cur.left = y.right
				y.right = cur
				cur = y
				if cur.left == nil {
					break
				}
			}
			// Link right.
			r.left = cur
			r = cur
			cur = cur.left
		} else if t.less(cur.item, item) {
			if cur.right == nil {
				break
			}
			if t.less(cur.right.item, item) {
				// Rotate left.
				y := cur.right
				cur.right = y.left
				y.left = cur
				cur = y
				if cur.right == nil {
					break
				}
			}
			// Link left.
			l.right = cur
			l = cur
			cur = cur.right
		} else {
			break
		}
	}
	l.right = cur.left
	r.left = cur.right
	cur.left = header.right
	cur.right = header.left
	t.root = cur
}

// Push inserts an item.
func (t *SplayTree[T]) Push(item T) {
	n := t.free
	if n != nil {
		t.free = n.right
		n.item = item
		n.right = nil
	} else {
		n = &splayNode[T]{item: item}
	}
	t.size++
	if t.root == nil {
		t.root = n
		return
	}
	t.splay(item)
	if t.less(item, t.root.item) {
		n.left = t.root.left
		n.right = t.root
		t.root.left = nil
	} else {
		n.right = t.root.right
		n.left = t.root
		t.root.right = nil
	}
	t.root = n
}

// Peek returns the minimum item without removing it.
func (t *SplayTree[T]) Peek() (T, bool) {
	var zero T
	if t.root == nil {
		return zero, false
	}
	// Splay the minimum to the root so a following Pop is cheap.
	cur := t.root
	if cur.left != nil {
		t.splayMin()
		cur = t.root
	}
	return cur.item, true
}

// splayMin splays the leftmost node to the root.
func (t *SplayTree[T]) splayMin() {
	var header splayNode[T]
	r := &header
	cur := t.root
	for cur.left != nil {
		if cur.left.left != nil {
			y := cur.left
			cur.left = y.right
			y.right = cur
			cur = y
		} else {
			r.left = cur
			r = cur
			cur = cur.left
		}
	}
	r.left = cur.right
	cur.right = header.left
	t.root = cur
}

// Pop removes and returns the minimum item.
func (t *SplayTree[T]) Pop() (T, bool) {
	var zero T
	if t.root == nil {
		return zero, false
	}
	if t.root.left != nil {
		t.splayMin()
	}
	n := t.root
	t.root = n.right
	t.size--
	item := n.item
	// Recycle the node: clear the item so the tree does not retain the
	// popped value, and thread it onto the freelist via right.
	var zeroItem T
	n.item = zeroItem
	n.left = nil
	n.right = t.free
	t.free = n
	return item, true
}
