// Package pq provides timestamp-ordered priority queues for pending
// event sets. Three implementations are provided — a splay tree (the
// structure used by ROSS), a binary heap, and a calendar queue — behind
// a common Queue interface so the engine can be benchmarked with each.
//
// Queues are min-queues ordered by a caller-supplied comparison. They
// deliberately do not support arbitrary removal: Time Warp annihilates
// unprocessed events lazily by marking them cancelled and skipping them
// at pop time, which keeps every implementation simple and fast.
package pq

// Queue is a min-priority queue over items of type T.
type Queue[T any] interface {
	// Push inserts an item.
	Push(item T)
	// Pop removes and returns the minimum item. The boolean is false
	// when the queue is empty.
	Pop() (T, bool)
	// Peek returns the minimum item without removing it. The boolean is
	// false when the queue is empty.
	Peek() (T, bool)
	// Len reports the number of items in the queue.
	Len() int
}

// Less orders items; it must be a strict weak ordering.
type Less[T any] func(a, b T) bool

// Kind selects a Queue implementation.
type Kind int

const (
	// Splay selects the top-down splay tree (ROSS default).
	Splay Kind = iota
	// Heap selects the binary heap.
	Heap
	// Calendar selects the calendar queue. Calendar queues additionally
	// need a numeric priority; see NewCalendar.
	Calendar
)

// String returns the queue kind's name.
func (k Kind) String() string {
	switch k {
	case Splay:
		return "splay"
	case Heap:
		return "heap"
	case Calendar:
		return "calendar"
	default:
		return "unknown"
	}
}

// New constructs a queue of the given kind. For Calendar, prio maps an
// item to its numeric priority and must agree with less; prio may be
// nil for Splay and Heap.
func New[T any](kind Kind, less Less[T], prio func(T) float64) Queue[T] {
	switch kind {
	case Splay:
		return NewSplay(less)
	case Heap:
		return NewHeap(less)
	case Calendar:
		if prio == nil {
			panic("pq: Calendar queue requires a priority function")
		}
		return NewCalendar(less, prio)
	default:
		panic("pq: unknown queue kind")
	}
}
