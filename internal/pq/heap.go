package pq

// BinHeap is a classic array-backed binary min-heap. It is the baseline
// pending-event structure the splay tree and calendar queue are
// benchmarked against.
type BinHeap[T any] struct {
	items []T
	less  Less[T]
}

// NewHeap returns an empty binary heap ordered by less.
func NewHeap[T any](less Less[T]) *BinHeap[T] {
	return &BinHeap[T]{less: less}
}

// Len reports the number of items in the heap.
func (h *BinHeap[T]) Len() int { return len(h.items) }

// Push inserts an item.
func (h *BinHeap[T]) Push(item T) {
	h.items = append(h.items, item)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum item without removing it.
func (h *BinHeap[T]) Peek() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum item.
func (h *BinHeap[T]) Pop() (T, bool) {
	var zero T
	n := len(h.items)
	if n == 0 {
		return zero, false
	}
	min := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = zero // allow GC of popped item
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return min, true
}

func (h *BinHeap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *BinHeap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
