package pq

import "math"

// CalendarQueue implements Brown's calendar queue: an array of ordered
// "day" buckets indexed by priority modulo a "year". With a bucket
// width tuned to the inter-event gap it gives amortized O(1) Push/Pop
// on workloads whose dequeue order advances mostly monotonically, which
// holds for PDES pending sets between rollbacks.
type CalendarQueue[T any] struct {
	less    Less[T]
	prio    func(T) float64
	buckets [][]T
	width   float64
	// cur is the bucket the next Pop search starts from; curYearEnd is
	// the priority bound of that bucket within the current year.
	cur        int
	curYearEnd float64
	size       int
	lastPopped float64
}

// NewCalendar returns an empty calendar queue. prio maps an item to its
// numeric priority and must be consistent with less (less(a,b) implies
// prio(a) <= prio(b)).
func NewCalendar[T any](less Less[T], prio func(T) float64) *CalendarQueue[T] {
	cq := &CalendarQueue[T]{less: less, prio: prio}
	cq.resize(2, 1)
	return cq
}

// Len reports the number of items in the queue.
func (cq *CalendarQueue[T]) Len() int { return cq.size }

func (cq *CalendarQueue[T]) resize(nbuckets int, width float64) {
	old := cq.buckets
	cq.buckets = make([][]T, nbuckets)
	cq.width = width
	cq.size = 0
	start := cq.lastPopped
	cq.cur = cq.bucketOf(start)
	cq.curYearEnd = (math.Floor(start/width) + 1) * width
	for _, b := range old {
		for _, item := range b {
			cq.insert(item)
		}
	}
}

func (cq *CalendarQueue[T]) bucketOf(p float64) int {
	i := int(math.Floor(p/cq.width)) % len(cq.buckets)
	if i < 0 {
		i += len(cq.buckets)
	}
	return i
}

// insert places an item into its bucket keeping the bucket sorted.
func (cq *CalendarQueue[T]) insert(item T) {
	idx := cq.bucketOf(cq.prio(item))
	b := cq.buckets[idx]
	// Insertion sort from the back; buckets are short by construction.
	pos := len(b)
	b = append(b, item)
	for pos > 0 && cq.less(item, b[pos-1]) {
		b[pos] = b[pos-1]
		pos--
	}
	b[pos] = item
	cq.buckets[idx] = b
	cq.size++
}

// Push inserts an item.
func (cq *CalendarQueue[T]) Push(item T) {
	p := cq.prio(item)
	if p < cq.lastPopped {
		// Out-of-order insertion (rollback re-insertion): rewind the
		// search cursor so the item is not skipped.
		cq.lastPopped = p
		cq.cur = cq.bucketOf(p)
		cq.curYearEnd = (math.Floor(p/cq.width) + 1) * cq.width
	}
	cq.insert(item)
	if cq.size > 2*len(cq.buckets) {
		cq.resize(2*len(cq.buckets), cq.newWidth())
	}
}

// newWidth estimates the bucket width as roughly the average separation
// of a sample of enqueued priorities, the classic calendar-queue
// heuristic.
func (cq *CalendarQueue[T]) newWidth() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, b := range cq.buckets {
		for _, item := range b {
			p := cq.prio(item)
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
			n++
		}
	}
	if n < 2 || hi <= lo {
		return cq.width
	}
	w := (hi - lo) / float64(n) * 3
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return cq.width
	}
	return w
}

// Peek returns the minimum item without removing it.
func (cq *CalendarQueue[T]) Peek() (T, bool) {
	var zero T
	if cq.size == 0 {
		return zero, false
	}
	idx, pos := cq.findMin()
	return cq.buckets[idx][pos], true
}

// Pop removes and returns the minimum item.
func (cq *CalendarQueue[T]) Pop() (T, bool) {
	var zero T
	if cq.size == 0 {
		return zero, false
	}
	idx, pos := cq.findMin()
	b := cq.buckets[idx]
	item := b[pos]
	copy(b[pos:], b[pos+1:])
	b[len(b)-1] = zero
	cq.buckets[idx] = b[:len(b)-1]
	cq.size--
	cq.lastPopped = cq.prio(item)
	cq.cur = idx
	cq.curYearEnd = (math.Floor(cq.lastPopped/cq.width) + 1) * cq.width
	if cq.size > 4 && cq.size < len(cq.buckets)/2 {
		cq.resize(len(cq.buckets)/2, cq.newWidth())
	}
	return item, true
}

// findMin locates the minimum item, scanning calendar-style from the
// current bucket and falling back to a direct search after a full
// fruitless year.
func (cq *CalendarQueue[T]) findMin() (bucket, pos int) {
	n := len(cq.buckets)
	idx := cq.cur
	yearEnd := cq.curYearEnd
	for i := 0; i < n; i++ {
		b := cq.buckets[idx]
		if len(b) > 0 && cq.prio(b[0]) < yearEnd {
			return idx, 0
		}
		idx = (idx + 1) % n
		yearEnd += cq.width
	}
	// Direct search: find the globally minimal head.
	best := -1
	for i, b := range cq.buckets {
		if len(b) == 0 {
			continue
		}
		if best == -1 || cq.less(b[0], cq.buckets[best][0]) {
			best = i
		}
	}
	return best, 0
}
