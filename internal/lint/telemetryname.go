package lint

// telemetryname: every metric flows through the telemetry Registry by
// dotted string name, and downstream tooling (the Perfetto exporter,
// dashboards, the serve API) joins on those strings. A typo'd or
// restyled name silently forks a metric. The pass pins three things:
//
//   - the name argument of Registry.Counter/Gauge/Histogram — and of
//     the per-thread Shard handle's methods of the same names — must be
//     a compile-time constant matching lowercase dotted form
//     ("pkg.metric_name");
//   - a name spelled as a raw string literal may appear at exactly one
//     call site — shared names must be hoisted to a named constant so
//     there is a single point of truth;
//   - the set of registered (kind, name) pairs must agree exactly with
//     the checked-in inventory file, both directions.
//
// The telemetry package itself is exempt: Registry.Import re-registers
// names arriving off the wire and is inherently dynamic.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

type metricSite struct {
	pos     token.Pos
	kind    string // "counter", "gauge", "histogram"
	name    string
	literal bool // spelled as a raw string literal, not a named constant
}

var telemetryNamePass = &Pass{
	Name: "telemetryname",
	Doc:  "metric names must be constant lowercase dotted strings, single-sourced, and match the checked-in inventory",
	Run: func(c *Checker) {
		sites, ok := c.collectMetricSites()
		if !ok {
			return
		}

		// Shape and single-sourcing.
		literalSites := map[string][]metricSite{}
		for _, s := range sites {
			if s.name == "" {
				c.Report(s.pos, "metric name is not a compile-time constant: dynamic names cannot be audited against the inventory")
				continue
			}
			if !metricNameRe.MatchString(s.name) {
				c.Report(s.pos, "metric name %q is not lowercase dotted form (want e.g. \"tw.rollbacks\")", s.name)
			}
			if s.literal {
				literalSites[s.name] = append(literalSites[s.name], s)
			}
		}
		for name, ss := range literalSites {
			if len(ss) > 1 {
				for _, s := range ss {
					c.Report(s.pos, "metric %q is registered at %d sites via raw string literals: hoist the name to a single named constant", name, len(ss))
				}
			}
		}

		if c.Cfg.InventoryFile != "" {
			c.checkInventory(sites)
		}
	},
}

// collectMetricSites gathers every Registry/Shard metric registration
// site outside the telemetry package itself. The registry's own
// package registers dynamically (Import, shard spine growth) and is
// exempt.
func (c *Checker) collectMetricSites() ([]metricSite, bool) {
	names := []string{c.Cfg.RegistryType}
	if c.Cfg.ShardType != "" {
		names = append(names, c.Cfg.ShardType)
	}
	recvs := c.resolveNamed(names)
	if len(recvs) == 0 {
		return nil, false
	}
	exempt := map[string]bool{}
	for tn := range recvs {
		exempt[tn.Pkg().Path()] = true
	}
	var sites []metricSite
	for _, pkg := range c.Prog.Packages {
		if exempt[pkg.Path] {
			continue
		}
		sites = append(sites, c.metricSites(pkg, recvs)...)
	}
	return sites, true
}

// metricSites collects Registry/Shard Counter/Gauge/Histogram call
// sites in pkg with the constant name value when there is one.
func (c *Checker) metricSites(pkg *Package, recvs map[*types.TypeName]bool) []metricSite {
	var out []metricSite
	inspect(pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		var kind string
		switch fn.Name() {
		case "Counter":
			kind = "counter"
		case "Gauge":
			kind = "gauge"
		case "Histogram":
			kind = "histogram"
		default:
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || !recvs[named.Obj()] {
			return true
		}
		site := metricSite{pos: call.Args[0].Pos(), kind: kind}
		if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			site.name = constant.StringVal(tv.Value)
			_, site.literal = call.Args[0].(*ast.BasicLit)
		}
		out = append(out, site)
		return true
	})
	return out
}

// checkInventory diffs the registered (kind, name) set against the
// checked-in inventory file, both directions.
func (c *Checker) checkInventory(sites []metricSite) {
	path := filepath.Join(c.Prog.Root, filepath.FromSlash(c.Cfg.InventoryFile))
	data, err := os.ReadFile(path)
	if err != nil {
		c.diags = append(c.diags, Diagnostic{
			Position: token.Position{Filename: filepath.ToSlash(c.Cfg.InventoryFile)},
			Pass:     c.pass,
			Message:  "metric inventory file is missing: every registered metric must be listed (one \"kind name\" per line)",
		})
		return
	}
	inventory := map[string]string{} // name -> kind
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			c.diags = append(c.diags, Diagnostic{
				Position: token.Position{Filename: filepath.ToSlash(c.Cfg.InventoryFile), Line: i + 1},
				Pass:     c.pass,
				Message:  "malformed inventory line: want \"kind name\"",
			})
			continue
		}
		inventory[fields[1]] = fields[0]
	}
	registered := map[string]string{}
	for _, s := range sites {
		if s.name != "" {
			registered[s.name] = s.kind
		}
	}
	for _, s := range sites {
		if s.name == "" {
			continue
		}
		kind, ok := inventory[s.name]
		if !ok {
			c.Report(s.pos, "metric %q is not in the inventory (%s): add \"%s %s\"", s.name, c.Cfg.InventoryFile, s.kind, s.name)
			continue
		}
		if kind != s.kind {
			c.Report(s.pos, "metric %q is registered as a %s but inventoried as a %s", s.name, s.kind, kind)
		}
	}
	for _, name := range sortedKeys(inventory) {
		if _, ok := registered[name]; !ok {
			c.diags = append(c.diags, Diagnostic{
				Position: token.Position{Filename: filepath.ToSlash(c.Cfg.InventoryFile)},
				Pass:     c.pass,
				Message:  "inventoried metric \"" + name + "\" is registered nowhere: stale entry",
			})
		}
	}
}
