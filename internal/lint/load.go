package lint

// Stdlib-only package loading. ggvet deliberately avoids
// golang.org/x/tools (the repo has no dependencies and CI must not
// fetch any), so this file re-implements the small slice of go/packages
// it needs: walk the module, parse every non-test file, and type-check
// each package with go/types. Imports inside the module resolve
// recursively through the same loader; everything else (the standard
// library) resolves through the go/importer source importer, which
// type-checks GOROOT sources directly and therefore works without
// compiled export data.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the full import path; Rel is the module-relative path
	// ("." for the module root package).
	Path string
	Rel  string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	checking bool
}

// Program is a loaded, type-checked module: every non-test package
// under the module root, in import-path order.
type Program struct {
	ModulePath string
	Root       string
	Fset       *token.FileSet
	Packages   []*Package

	byPath map[string]*Package
	std    types.Importer
	errs   []error
}

// Load walks the module rooted at root, parses every package outside
// testdata directories, and type-checks the lot. modulePath overrides
// the module path for trees without a go.mod (the fixture packages);
// pass "" to read it from root/go.mod. Type errors are collected and
// returned together — ggvet only analyzes trees that compile.
func Load(root, modulePath string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if modulePath == "" {
		modulePath, err = readModulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	// The source importer consults build.Default. Cgo-tagged stdlib
	// variants cannot be type-checked from source alone, so resolve the
	// pure-Go fallbacks instead; the API surface is identical.
	build.Default.CgoEnabled = false
	prog := &Program{
		ModulePath: modulePath,
		Root:       root,
		Fset:       token.NewFileSet(),
		byPath:     map[string]*Package{},
	}
	prog.std = importer.ForCompiler(prog.Fset, "source", nil)

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		path := modulePath
		if rel != "." {
			path = modulePath + "/" + rel
		}
		if _, err := prog.loadModulePkg(path); err != nil {
			prog.errs = append(prog.errs, err)
		}
	}
	if len(prog.errs) > 0 {
		max := len(prog.errs)
		if max > 10 {
			max = 10
		}
		msgs := make([]string, 0, max)
		for _, e := range prog.errs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: the tree does not type-check:\n\t%s", strings.Join(msgs, "\n\t"))
	}
	for _, pk := range prog.byPath {
		prog.Packages = append(prog.Packages, pk)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// Import implements types.Importer: module-internal paths load through
// this Program, everything else through the GOROOT source importer.
func (p *Program) Import(path string) (*types.Package, error) {
	if path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/") {
		pk, err := p.loadModulePkg(path)
		if err != nil {
			return nil, err
		}
		return pk.Types, nil
	}
	return p.std.Import(path)
}

func (p *Program) loadModulePkg(path string) (*Package, error) {
	if pk, ok := p.byPath[path]; ok {
		if pk.checking {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pk, nil
	}
	rel := "."
	if path != p.ModulePath {
		rel = strings.TrimPrefix(path, p.ModulePath+"/")
	}
	dir := filepath.Join(p.Root, filepath.FromSlash(rel))
	files, err := parseDir(p.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pk := &Package{Path: path, Rel: rel, Dir: dir, Files: files, checking: true}
	p.byPath[path] = pk

	pk.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var tcErrs []error
	conf := types.Config{
		Importer:    p,
		FakeImportC: true,
		Error:       func(err error) { tcErrs = append(tcErrs, err) },
	}
	tpkg, _ := conf.Check(path, p.Fset, files, pk.Info)
	pk.Types = tpkg
	pk.checking = false
	if len(tcErrs) > 0 {
		return nil, fmt.Errorf("lint: %s: %v", path, tcErrs[0])
	}
	return pk, nil
}

// packageDirs returns every directory under root holding non-test Go
// files, skipping testdata, hidden and underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// parseDir parses the directory's non-test Go files in name order (so
// positions, and therefore diagnostics, are stable).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
