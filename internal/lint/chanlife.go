package lint

// chanlife: closing a channel is an ownership statement — the closer
// asserts no other goroutine will close it again (panic) or send on it
// (panic). The serving layer's PR 9 double-close came from exactly the
// shape this pass forbids: two functions each closing the same channel
// field with neither checking whether the job had already reached a
// terminal state. The rules, inside the configured packages:
//
//   - A channel that arrives as a function parameter is never closed:
//     the callee cannot know who else holds a reference. Ownership
//     transfer is real but rare enough that it takes an annotation.
//   - A channel struct field (or package-level channel variable) may
//     be closed unguarded from at most one function — the owner. Every
//     additional close site must be guarded by a terminal-state check:
//     lexically inside an if/switch whose condition inspects state
//     (an identifier or method matching state/terminal/closed/done/
//     finished/drain...), or preceded in an enclosing block by such a
//     check that exits early. With more than one unguarded site, every
//     unguarded site is reported — the fix is to pick the owner and
//     guard (or delete) the rest. A //ggvet:allow on a close site
//     counts as a guard: the ownership claim was audited by hand and
//     written down, so the remaining single owner stays legal.
//
// Channels local to a function are exempt: their lifetime is visible
// in one screen of code and the race the pass hunts needs two call
// paths.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

var chanLifePass = &Pass{
	Name: "chanlife",
	Doc:  "channel fields have one unguarded closer; extra closes need a terminal-state guard; parameter channels are never closed",
	Run: func(c *Checker) {
		cl := &chanLife{c: c, sites: map[types.Object][]closeSite{}}
		for _, pkg := range c.Prog.Packages {
			if !matchRel(pkg.Rel, c.Cfg.ChanClosePkgs) {
				continue
			}
			cl.scanPkg(pkg)
		}
		cl.report()
	},
}

type closeSite struct {
	pos     token.Pos
	fn      string // enclosing function display name
	guarded bool
	disp    string // "Job.done" style display for the channel
}

type chanLife struct {
	c     *Checker
	sites map[types.Object][]closeSite
}

func (cl *chanLife) scanPkg(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := paramObjs(pkg, fd)
			cl.scanBody(pkg, fd, fd.Body, nil, params)
		}
	}
}

// scanBody walks the function keeping the ancestor path so a close
// site can look outward for its guards.
func (cl *chanLife) scanBody(pkg *Package, fd *ast.FuncDecl, n ast.Node, path []ast.Node, params map[types.Object]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		cl.closeSiteFound(pkg, fd, call, append([]ast.Node(nil), path...), params)
		return true
	})
}

func (cl *chanLife) closeSiteFound(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, path []ast.Node, params map[types.Object]bool) {
	arg := unparenDeref(call.Args[0])
	switch e := arg.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			return
		}
		if params[obj] {
			cl.c.Report(call.Pos(), "close of parameter channel %s: only the owner may close a channel — signal completion on a separate done channel, or annotate the ownership transfer", e.Name)
			return
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		// Package-level channel variables get the same single-owner
		// discipline as fields; locals are exempt.
		if v.Parent() == pkg.Types.Scope() {
			cl.record(v, pkg.Types.Name()+"."+v.Name(), fd, call, path)
		}
	case *ast.SelectorExpr:
		var obj types.Object
		if s, ok := pkg.Info.Selections[e]; ok {
			obj = s.Obj()
		} else {
			obj = pkg.Info.Uses[e.Sel]
		}
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return
		}
		owner := namedTypeName(pkg.Info.TypeOf(e.X))
		if owner == "" {
			owner = pkg.Types.Name()
		}
		cl.record(v, owner+"."+v.Name(), fd, call, path)
	}
}

func (cl *chanLife) record(v *types.Var, disp string, fd *ast.FuncDecl, call *ast.CallExpr, path []ast.Node) {
	// An allow annotation on the close site means the ownership was
	// audited by hand: it counts as guarded, so the remaining single
	// unguarded owner stays legal.
	cl.sites[v] = append(cl.sites[v], closeSite{
		pos:     call.Pos(),
		fn:      fd.Name.Name,
		guarded: guardedByState(path, call) || cl.c.allowedAt(call.Pos()),
		disp:    disp,
	})
}

func (cl *chanLife) report() {
	// Deterministic order: group findings by position via the final
	// sort in Run; iterate values only.
	for _, sites := range cl.sites {
		var unguarded []closeSite
		for _, s := range sites {
			if !s.guarded {
				unguarded = append(unguarded, s)
			}
		}
		if len(unguarded) <= 1 {
			continue
		}
		sort.Slice(unguarded, func(i, j int) bool { return unguarded[i].pos < unguarded[j].pos })
		var fns []string
		for _, s := range unguarded {
			fns = append(fns, s.fn)
		}
		for _, s := range unguarded {
			cl.c.Report(s.pos, "channel field %s closed unguarded in %d functions (%s): one owner may close it unguarded — guard the others with a terminal-state check", s.disp, len(unguarded), joinUnique(fns))
		}
	}
}

func joinUnique(names []string) string {
	seen := map[string]bool{}
	out := ""
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		if out != "" {
			out += ", "
		}
		out += n
	}
	return out
}

var stateCondRe = regexp.MustCompile(`(?i)(state|terminal|closed|done|finish|drain|settl)`)

// guardedByState reports whether the close site is dominated by a
// terminal-state check: an enclosing if/switch-case whose condition
// mentions state, or an earlier statement in an enclosing block that
// checks state and exits early (continue/return/break).
func guardedByState(path []ast.Node, site ast.Node) bool {
	for i := len(path) - 1; i >= 0; i-- {
		switch n := path[i].(type) {
		case *ast.IfStmt:
			if exprMentionsState(n.Cond) {
				return true
			}
		case *ast.CaseClause:
			// The guard is the switch tag (switch j.state { case ... })
			// or a stateish case expression (case st.Terminal():).
			for _, e := range n.List {
				if exprMentionsState(e) {
					return true
				}
			}
			// The enclosing SwitchStmt sits one or two levels out (its
			// body BlockStmt is between them in the walk path).
			for j := i - 1; j >= 0 && j >= i-2; j-- {
				if sw, ok := path[j].(*ast.SwitchStmt); ok && sw.Tag != nil && exprMentionsState(sw.Tag) {
					return true
				}
			}
		case *ast.BlockStmt:
			if earlyStateExitBefore(n.List, innerStmt(path, i)) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// innerStmt finds the statement of block path[i] that contains the
// rest of the path.
func innerStmt(path []ast.Node, i int) ast.Node {
	if i+1 < len(path) {
		return path[i+1]
	}
	return path[len(path)-1]
}

// earlyStateExitBefore reports whether a statement strictly before the
// one containing the close is `if <stateish> { ...; continue/return/
// break }` — the dominator shape finalize loops use.
func earlyStateExitBefore(list []ast.Stmt, until ast.Node) bool {
	for _, st := range list {
		if st == until {
			return false
		}
		ifst, ok := st.(*ast.IfStmt)
		if !ok || !exprMentionsState(ifst.Cond) || len(ifst.Body.List) == 0 {
			continue
		}
		switch ifst.Body.List[len(ifst.Body.List)-1].(type) {
		case *ast.BranchStmt, *ast.ReturnStmt:
			return true
		}
	}
	return false
}

func exprMentionsState(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && stateCondRe.MatchString(id.Name) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func paramObjs(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}
