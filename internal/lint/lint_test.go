package lint

// The fixture harness: each pass has a miniature module under
// testdata/src/<pass>/ whose sources carry expected-diagnostic
// comments — `// want` followed by one or more backquoted regexps that
// must each match a diagnostic on that line. The harness fails on
// both missing and unexpected diagnostics, so the fixtures pin the
// passes from both sides: every hazard is caught, every allowed shape
// stays quiet. TestRepoClean then asserts the real repository passes
// the whole suite with zero findings.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

var (
	wantLineRe = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)")
	wantItemRe = regexp.MustCompile("`[^`]*`")
)

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the fixture's Go sources for want comments,
// keyed "relfile:line".
func collectWants(t *testing.T, root string) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLineRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", rel, i+1)
			for _, item := range wantItemRe.FindAllString(m[1], -1) {
				re, err := regexp.Compile(strings.Trim(item, "`"))
				if err != nil {
					t.Fatalf("%s: bad want regexp %s: %v", key, item, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runFixture loads testdata/src/<name> as module <module>, runs the
// given passes, and diffs the line-anchored diagnostics against the
// want comments. File-level diagnostics (no line) are returned for
// the caller to assert.
func runFixture(t *testing.T, name, module string, cfg Config, passes []*Pass) []Diagnostic {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	prog, err := Load(root, module)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	diags := NewChecker(prog, cfg).Run(passes)
	wants := collectWants(t, root)
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	var fileLevel []Diagnostic
	for _, d := range diags {
		if d.Position.Line == 0 {
			fileLevel = append(fileLevel, d)
			continue
		}
		rel, err := filepath.Rel(absRoot, d.Position.Filename)
		if err != nil {
			rel = d.Position.Filename
		}
		key := fmt.Sprintf("%s:%d", filepath.ToSlash(rel), d.Position.Line)
		found := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Pass, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s matching %q", key, w.re)
			}
		}
	}
	return fileLevel
}

func TestDeterminismFixture(t *testing.T) {
	cfg := Config{
		DetCorePkgs:    []string{"sim"},
		GoAllowedFiles: []string{"sim/spawn.go"},
	}
	extra := runFixture(t, "determinism", "detfx", cfg, []*Pass{determinismPass})
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

func TestPooledEscapeFixture(t *testing.T) {
	cfg := Config{
		PooledTypes:   []string{"poolfx/pool.Event"},
		PoolOwnerPkgs: []string{"pool"},
	}
	extra := runFixture(t, "pooledescape", "poolfx", cfg, []*Pass{pooledEscapePass})
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

func TestEnumExhaustiveFixture(t *testing.T) {
	cfg := Config{
		EnumTypes:       []string{"enumfx.Color"},
		StrictEnumTypes: []string{"enumfx/wire.Kind", "enumfx/wire.Codec"},
		EnumPkg:         ".",
		ModelIface:      "enumfx.Model",
		ModelEncode:     "encodeModel",
		ModelDecode:     "decodeModel",
		ModelCodecPkg:   "state",
	}
	extra := runFixture(t, "enumexhaustive", "enumfx", cfg, []*Pass{enumExhaustivePass})
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

func TestTelemetryNameFixture(t *testing.T) {
	cfg := Config{
		RegistryType:  "telfx/telemetry.Registry",
		InventoryFile: "inventory.txt",
	}
	fileLevel := runFixture(t, "telemetryname", "telfx", cfg, []*Pass{telemetryNamePass})
	stale := false
	for _, d := range fileLevel {
		if strings.Contains(d.Message, `"app.stale"`) && strings.Contains(d.Message, "registered nowhere") {
			stale = true
		} else {
			t.Errorf("unexpected file-level diagnostic: %s", d)
		}
	}
	if !stale {
		t.Error("missing stale-inventory diagnostic for app.stale")
	}
}

func TestCtxPlumbFixture(t *testing.T) {
	cfg := Config{CtxPkgs: []string{"api"}}
	extra := runFixture(t, "ctxplumb", "ctxfx", cfg, []*Pass{ctxPlumbPass})
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

func TestLockOrderFixture(t *testing.T) {
	cfg := Config{LockOrderPkgs: []string{"."}}
	extra := runFixture(t, "lockorder", "lockfx", cfg, []*Pass{lockOrderPass})
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

func TestChanLifeFixture(t *testing.T) {
	cfg := Config{ChanClosePkgs: []string{"."}}
	extra := runFixture(t, "chanlife", "chanfx", cfg, []*Pass{chanLifePass})
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

func TestGoroLeakFixture(t *testing.T) {
	cfg := Config{GoroTrackPkgs: []string{"."}}
	extra := runFixture(t, "goroleak", "gorofx", cfg, []*Pass{goroLeakPass})
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

func TestStreamTermFixture(t *testing.T) {
	cfg := Config{
		StreamPkgs:     []string{"."},
		FrameKindTypes: []string{"streamfx.Kind"},
	}
	extra := runFixture(t, "streamterm", "streamfx", cfg, []*Pass{streamTermPass})
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

// TestJSONGolden pins the -json wire shape: one newline-delimited
// object per finding, module-relative paths, suppressed findings
// carried with their allow reasons. The chanlife fixture exercises
// both active and suppressed diagnostics.
func TestJSONGolden(t *testing.T) {
	root := filepath.Join("testdata", "src", "chanlife")
	prog, err := Load(root, "chanfx")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	checker := NewChecker(prog, Config{ChanClosePkgs: []string{"."}})
	active := checker.Run([]*Pass{chanLifePass})
	all := MergeDiags(active, checker.Suppressed())

	var buf bytes.Buffer
	if err := EncodeJSON(&buf, prog.Root, all); err != nil {
		t.Fatalf("encode: %v", err)
	}
	goldenPath := filepath.Join("testdata", "golden", "chanlife.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/lint -run JSONGolden -update-golden` to create): %v", err)
	}
	if got, want := buf.String(), string(golden); got != want {
		t.Errorf("ggvet -json output drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestAllowAnnotationGrammar(t *testing.T) {
	extra := runFixture(t, "allow", "allowfx", Config{}, nil)
	if len(extra) != 0 {
		t.Errorf("unexpected file-level diagnostics: %v", extra)
	}
}

// TestRepoClean is the self-test the satellite asks for: the full
// suite, with the real repo's configuration, must report nothing on
// the tree as committed. A failure here is a failure of `make lint`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	prog, err := Load("../..", "")
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	diags := NewChecker(prog, DefaultConfig(prog.ModulePath)).Run(Passes())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
