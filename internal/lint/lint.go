// Package lint is ggvet: a domain-aware static-analysis suite that
// mechanically enforces the invariants the engine's guarantees rest on
// — determinism of the simulation core, event/snapshot pool hygiene,
// enum/codec exhaustiveness, telemetry naming, and context plumbing.
// The passes are deliberately repo-shaped: they know which packages
// form the deterministic core, which types are pool-recycled, and
// which file owns the recycling discipline, so a future change that
// silently breaks byte-identical trajectories fails `make lint`
// instead of surviving until an unreproducible run.
//
// Intentional exceptions carry a //ggvet:allow(<reason>) annotation on
// the offending line or the line above; the reason is mandatory and
// its absence is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted file:line:col: [pass] message —
// the shape editors jump to.
type Diagnostic struct {
	Position token.Position
	Pass     string
	Message  string
}

// String renders the diagnostic for terminals and editors.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Pass, d.Message)
}

// Pass is one analysis. Run inspects every package and reports through
// the Checker; cross-package checks see the whole Program.
type Pass struct {
	Name string
	Doc  string
	Run  func(c *Checker)
}

// Checker carries one analysis run: the loaded program, the
// repo-shape configuration, the allow-annotation index and the
// accumulated diagnostics.
type Checker struct {
	Prog *Program
	Cfg  Config

	pass   string
	diags  []Diagnostic
	allows map[string]map[int]string // filename -> line -> reason
}

var allowRe = regexp.MustCompile(`^//ggvet:allow\((.*)\)\s*$`)

// NewChecker indexes allow annotations and returns a checker ready to
// run passes. Malformed annotations (no parentheses, empty reason) are
// reported immediately under the pseudo-pass "allow".
func NewChecker(prog *Program, cfg Config) *Checker {
	c := &Checker{Prog: prog, Cfg: cfg, allows: map[string]map[int]string{}}
	c.pass = "allow"
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := cm.Text
					if !strings.HasPrefix(text, "//ggvet:allow") {
						continue
					}
					m := allowRe.FindStringSubmatch(text)
					if m == nil || strings.TrimSpace(m[1]) == "" {
						c.Report(cm.Pos(), "ggvet:allow needs a reason: //ggvet:allow(<reason>)")
						continue
					}
					pos := prog.Fset.Position(cm.Pos())
					lines := c.allows[pos.Filename]
					if lines == nil {
						lines = map[int]string{}
						c.allows[pos.Filename] = lines
					}
					lines[pos.Line] = strings.TrimSpace(m[1])
				}
			}
		}
	}
	return c
}

// Run executes the passes and returns all diagnostics sorted by
// position.
func (c *Checker) Run(passes []*Pass) []Diagnostic {
	for _, p := range passes {
		c.pass = p.Name
		p.Run(c)
	}
	sort.Slice(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Message < b.Message
	})
	return c.diags
}

// Report records a diagnostic at pos unless an allow annotation covers
// that line (same line, or the line immediately above).
func (c *Checker) Report(pos token.Pos, format string, args ...any) {
	position := c.Prog.Fset.Position(pos)
	if lines, ok := c.allows[position.Filename]; ok {
		if _, ok := lines[position.Line]; ok {
			return
		}
		if _, ok := lines[position.Line-1]; ok {
			return
		}
	}
	c.diags = append(c.diags, Diagnostic{Position: position, Pass: c.pass, Message: fmt.Sprintf(format, args...)})
}

// Passes returns the full suite in a stable order.
func Passes() []*Pass {
	return []*Pass{
		determinismPass,
		pooledEscapePass,
		enumExhaustivePass,
		telemetryNamePass,
		ctxPlumbPass,
	}
}

// resolveNamed maps fully qualified "pkgpath.Name" strings to their
// type-name objects in the loaded module. Unknown names are skipped:
// a config can mention types a partial load does not contain.
func (c *Checker) resolveNamed(qualified []string) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, q := range qualified {
		i := strings.LastIndex(q, ".")
		if i < 0 {
			continue
		}
		pkgPath, name := q[:i], q[i+1:]
		pk, ok := c.Prog.byPath[pkgPath]
		if !ok || pk.Types == nil {
			continue
		}
		if tn, ok := pk.Types.Scope().Lookup(name).(*types.TypeName); ok {
			out[tn] = true
		}
	}
	return out
}

// relFile returns the module-relative slash path of pos's file.
func (c *Checker) relFile(pos token.Pos) string {
	name := c.Prog.Fset.Position(pos).Filename
	rel, err := filepath.Rel(c.Prog.Root, name)
	if err != nil {
		return name
	}
	return filepath.ToSlash(rel)
}

// inspect walks every file of pkg with ast.Inspect.
func inspect(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}

// matchRel reports whether a module-relative package path is listed.
// Entries match exactly, or as a prefix when they end in "/...".
func matchRel(rel string, list []string) bool {
	for _, e := range list {
		if e == rel {
			return true
		}
		if p, ok := strings.CutSuffix(e, "/..."); ok {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				return true
			}
		}
	}
	return false
}
