// Package lint is ggvet: a domain-aware static-analysis suite that
// mechanically enforces the invariants the engine's guarantees rest on
// — determinism of the simulation core, event/snapshot pool hygiene,
// enum/codec exhaustiveness, telemetry naming, context plumbing, and
// (since PR 10) the serving layer's concurrency discipline: lock
// acquisition order, channel-close ownership, goroutine tracking, and
// stream termination. The passes are deliberately repo-shaped: they
// know which packages form the deterministic core, which types are
// pool-recycled, and which struct fields are mutexes worth ordering,
// so a future change that silently breaks byte-identical trajectories
// or deadlocks the fleet fails `make lint` instead of surviving until
// an unreproducible run.
//
// Intentional exceptions carry a //ggvet:allow(<reason>) annotation on
// the offending line or the line above; the reason is mandatory and
// its absence is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted file:line:col: [pass] message —
// the shape editors jump to.
type Diagnostic struct {
	Position token.Position
	Pass     string
	Message  string
	// Suppressed marks a finding covered by a //ggvet:allow annotation;
	// Reason carries the annotation's reason. Suppressed findings never
	// fail a run — they exist so `ggvet -json` can hand tooling the
	// complete ledger, accepted exceptions included.
	Suppressed bool
	Reason     string
}

// String renders the diagnostic for terminals and editors.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Pass, d.Message)
}

// Pass is one analysis. Run inspects every package and reports through
// the Checker; cross-package checks see the whole Program.
type Pass struct {
	Name string
	Doc  string
	Run  func(c *Checker)
}

// Checker carries one analysis run: the loaded program, the
// repo-shape configuration, the allow-annotation index and the
// accumulated diagnostics.
type Checker struct {
	Prog *Program
	Cfg  Config

	pass       string
	diags      []Diagnostic
	suppressed []Diagnostic
	allows     map[string]map[int]string // filename -> line -> reason
}

var allowRe = regexp.MustCompile(`^//ggvet:allow\((.*)\)\s*$`)

// NewChecker indexes allow annotations and returns a checker ready to
// run passes. Malformed annotations (no parentheses, empty reason) are
// reported immediately under the pseudo-pass "allow".
func NewChecker(prog *Program, cfg Config) *Checker {
	c := &Checker{Prog: prog, Cfg: cfg, allows: map[string]map[int]string{}}
	c.pass = "allow"
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := cm.Text
					if !strings.HasPrefix(text, "//ggvet:allow") {
						continue
					}
					m := allowRe.FindStringSubmatch(text)
					if m == nil || strings.TrimSpace(m[1]) == "" {
						c.Report(cm.Pos(), "ggvet:allow needs a reason: //ggvet:allow(<reason>)")
						continue
					}
					pos := prog.Fset.Position(cm.Pos())
					lines := c.allows[pos.Filename]
					if lines == nil {
						lines = map[int]string{}
						c.allows[pos.Filename] = lines
					}
					lines[pos.Line] = strings.TrimSpace(m[1])
				}
			}
		}
	}
	return c
}

// Run executes the passes and returns all diagnostics sorted by
// position.
func (c *Checker) Run(passes []*Pass) []Diagnostic {
	for _, p := range passes {
		c.pass = p.Name
		p.Run(c)
	}
	sortDiags(c.diags)
	return c.diags
}

// sortDiags orders diagnostics by position, then message.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Message < b.Message
	})
}

// Report records a diagnostic at pos. When an allow annotation covers
// the line (same line, or the line immediately above) the finding is
// recorded as suppressed with the annotation's reason instead of
// active, so Run still passes but the JSON ledger keeps the exception.
func (c *Checker) Report(pos token.Pos, format string, args ...any) {
	position := c.Prog.Fset.Position(pos)
	d := Diagnostic{Position: position, Pass: c.pass, Message: fmt.Sprintf(format, args...)}
	if lines, ok := c.allows[position.Filename]; ok {
		reason, ok := lines[position.Line]
		if !ok {
			reason, ok = lines[position.Line-1]
		}
		if ok {
			d.Suppressed = true
			d.Reason = reason
			c.suppressed = append(c.suppressed, d)
			return
		}
	}
	c.diags = append(c.diags, d)
}

// Suppressed returns the findings //ggvet:allow annotations absorbed
// during Run, sorted by position — the accepted-exception ledger.
func (c *Checker) Suppressed() []Diagnostic {
	sortDiags(c.suppressed)
	return c.suppressed
}

// allowedAt reports whether an allow annotation covers pos (same line
// or the line above). Passes whose verdict depends on counting sites —
// chanlife's single-owner rule — use it to treat an annotated site as
// audited instead of merely hiding one of the pair's two reports.
func (c *Checker) allowedAt(pos token.Pos) bool {
	position := c.Prog.Fset.Position(pos)
	lines, ok := c.allows[position.Filename]
	if !ok {
		return false
	}
	if _, ok := lines[position.Line]; ok {
		return true
	}
	_, ok = lines[position.Line-1]
	return ok
}

// Passes returns the full suite in a stable order.
func Passes() []*Pass {
	return []*Pass{
		determinismPass,
		pooledEscapePass,
		enumExhaustivePass,
		telemetryNamePass,
		ctxPlumbPass,
		lockOrderPass,
		chanLifePass,
		goroLeakPass,
		streamTermPass,
	}
}

// resolveNamed maps fully qualified "pkgpath.Name" strings to their
// type-name objects in the loaded module. Unknown names are skipped:
// a config can mention types a partial load does not contain.
func (c *Checker) resolveNamed(qualified []string) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, q := range qualified {
		i := strings.LastIndex(q, ".")
		if i < 0 {
			continue
		}
		pkgPath, name := q[:i], q[i+1:]
		pk, ok := c.Prog.byPath[pkgPath]
		if !ok || pk.Types == nil {
			continue
		}
		if tn, ok := pk.Types.Scope().Lookup(name).(*types.TypeName); ok {
			out[tn] = true
		}
	}
	return out
}

// relFile returns the module-relative slash path of pos's file.
func (c *Checker) relFile(pos token.Pos) string {
	name := c.Prog.Fset.Position(pos).Filename
	rel, err := filepath.Rel(c.Prog.Root, name)
	if err != nil {
		return name
	}
	return filepath.ToSlash(rel)
}

// inspect walks every file of pkg with ast.Inspect.
func inspect(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}

// matchRel reports whether a module-relative package path is listed.
// Entries match exactly, or as a prefix when they end in "/...".
func matchRel(rel string, list []string) bool {
	for _, e := range list {
		if e == rel {
			return true
		}
		if p, ok := strings.CutSuffix(e, "/..."); ok {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				return true
			}
		}
	}
	return false
}
