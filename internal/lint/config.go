package lint

// Config tells the passes the shape of the repository: which packages
// form the deterministic core, which types are pool-recycled, where
// the enum name tables live. The fixture tests substitute miniature
// shapes; DefaultConfig describes the real repo.
type Config struct {
	// DetCorePkgs are the module-relative package paths whose code must
	// be deterministic: no wall clock, no global math/rand, no goroutine
	// launches outside GoAllowedFiles, no multi-channel selects, no map
	// ranges, no unstable sorts without an annotation.
	DetCorePkgs []string
	// GoAllowedFiles are module-relative files allowed to contain `go`
	// statements inside the deterministic core — the simulated machine's
	// cooperative-scheduler launch site.
	GoAllowedFiles []string

	// PooledTypes are fully qualified named types ("pkgpath.Name") whose
	// pointers are pool-recycled; storing one into a struct field,
	// global, or escaping closure outside PoolOwnerPkgs is a
	// use-after-recycle hazard.
	PooledTypes []string
	// PoolOwnerPkgs are the module-relative packages that own the
	// recycling discipline (audited by hand, see internal/tw/pool.go)
	// and the generic containers events legitimately live in.
	PoolOwnerPkgs []string

	// EnumTypes are fully qualified named types treated as closed enums:
	// switches over them must cover every declared constant or fail
	// loudly in default.
	EnumTypes []string
	// StrictEnumTypes are enum types (added to EnumTypes if not already
	// listed) where a loudly-failing default is not an escape: wire
	// protocol tags, where the default only classifies corrupt frames
	// and a missing case silently misroutes a valid one. Switches over
	// them must case every declared constant explicitly.
	StrictEnumTypes []string
	// EnumPkg is the module-relative package holding the public enum
	// name tables (the Parse* functions) — "" disables the table check.
	EnumPkg string
	// ModelIface is the fully qualified interface implemented by
	// workload models; ModelEncode/ModelDecode name EnumPkg's model
	// codec functions whose tag tables must cover every implementation.
	// ModelCodecPkg is the package that must carry per-model
	// EncodeState/DecodeState methods ("" disables).
	ModelIface    string
	ModelEncode   string
	ModelDecode   string
	ModelCodecPkg string

	// RegistryType is the fully qualified telemetry registry type whose
	// Counter/Gauge/Histogram arguments are metric names.
	RegistryType string
	// ShardType is the fully qualified per-thread shard handle type
	// whose Counter/Gauge/Histogram calls register the same names ("" =
	// registry only).
	ShardType string
	// InventoryFile is the checked-in metric inventory, one
	// "kind name" pair per line, relative to the module root.
	InventoryFile string

	// CtxPkgs are the module-relative packages where context must be
	// threaded: no context.Background/TODO outside single-return
	// boundary wrappers, and exported functions taking a Context must
	// use it.
	CtxPkgs []string

	// LockOrderPkgs are the module-relative packages whose mutex fields
	// are analyzed for acquisition cycles and for locks held across
	// blocking operations (channel sends/receives, blocking selects,
	// WaitGroup.Wait, net/net-http calls, exec.Cmd.Wait, time.Sleep).
	LockOrderPkgs []string

	// ChanClosePkgs are the module-relative packages where channel-close
	// discipline is enforced: a channel field may be closed unguarded
	// from at most one site (extra sites need a terminal-state guard),
	// and closing a function-parameter channel is always flagged.
	ChanClosePkgs []string

	// GoroTrackPkgs are the module-relative packages below the API
	// boundary where every `go` statement must be tracked: joined via a
	// WaitGroup or done channel, or bound to a cancellable context or
	// stop channel the launcher can reach.
	GoroTrackPkgs []string

	// StreamPkgs are the module-relative packages whose SSE/stream
	// handlers (functions that set Content-Type: text/event-stream)
	// must emit exactly one terminal frame on every return path.
	StreamPkgs []string
	// StreamWriteFunc names the frame-writing helper the handlers use;
	// a call passing one of StreamTerminalEvents as a string literal is
	// a terminal frame ("" = "writeSSE").
	StreamWriteFunc string
	// StreamTerminalEvents are the event names that terminate a stream
	// (nil = ["done", "error"]).
	StreamTerminalEvents []string

	// FrameKindTypes are fully qualified frame-kind enums (wire message
	// tags): every declared constant must have at least one send/encode
	// site and one receive/dispatch site outside String/Parse tables —
	// a kind nobody produces is dead surface, a kind nobody dispatches
	// is silently dropped on receive.
	FrameKindTypes []string
}

// DefaultConfig is the real repository's shape.
func DefaultConfig(modulePath string) Config {
	return Config{
		DetCorePkgs: []string{
			"internal/tw", "internal/core", "internal/gvt",
			"internal/machine", "internal/models", "internal/rng", "internal/pq",
		},
		GoAllowedFiles: []string{"internal/machine/machine.go"},

		PooledTypes:   []string{modulePath + "/internal/tw.Event"},
		PoolOwnerPkgs: []string{"internal/tw", "internal/pq"},

		EnumTypes: []string{
			modulePath + ".System", modulePath + ".GVT", modulePath + ".Affinity",
			modulePath + ".Queue", modulePath + ".StateSaving",
			modulePath + "/internal/core.System", modulePath + "/internal/core.Affinity",
			modulePath + "/internal/gvt.Kind", modulePath + "/internal/pq.Kind",
			modulePath + "/internal/tw.SavePolicy",
			modulePath + "/internal/dist.MsgKind", modulePath + "/internal/dist.OpCode",
			modulePath + "/internal/dist.Wire",
		},
		StrictEnumTypes: []string{
			modulePath + "/internal/dist.MsgKind", modulePath + "/internal/dist.OpCode",
			modulePath + "/internal/dist.Wire",
		},
		EnumPkg:       ".",
		ModelIface:    modulePath + ".Model",
		ModelEncode:   "encodeModel",
		ModelDecode:   "decodeModel",
		ModelCodecPkg: "internal/models",

		RegistryType:  modulePath + "/internal/telemetry.Registry",
		ShardType:     modulePath + "/internal/telemetry.Shard",
		InventoryFile: "internal/telemetry/inventory.txt",

		CtxPkgs: []string{".", "internal/serve", "internal/machine"},

		LockOrderPkgs: []string{
			"internal/serve/...", "internal/dist", "internal/telemetry",
		},
		ChanClosePkgs: []string{
			".", "internal/serve/...", "internal/dist", "internal/telemetry",
		},
		GoroTrackPkgs: []string{
			".", "cmd/...", "internal/serve/...", "internal/dist",
		},
		StreamPkgs: []string{"internal/serve"},
		FrameKindTypes: []string{
			modulePath + "/internal/dist.MsgKind",
			modulePath + "/internal/dist.OpCode",
		},
	}
}
