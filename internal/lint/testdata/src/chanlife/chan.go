// Fixture for the chanlife pass: channel-close ownership. Two
// unguarded closers of the same field are both reported; one unguarded
// owner plus terminal-state-guarded extras is the sanctioned shape;
// closing a parameter channel is always flagged; locals are exempt.
package chanfx

type state int

const (
	running state = iota
	settled
)

type job struct {
	state state
	done  chan struct{}
}

// Two unguarded closers of job.done — the PR 9 double-close shape.
func finishA(j *job) {
	close(j.done) // want `channel field job.done closed unguarded in 2 functions`
}

func finishB(j *job) {
	close(j.done) // want `channel field job.done closed unguarded in 2 functions`
}

type task struct {
	state state
	ready chan struct{}
}

// ownTask is the single unguarded owner; the extra closers below are
// guarded by terminal-state checks, so the field stays quiet.
func ownTask(t *task) {
	close(t.ready)
}

func cancelTask(t *task) {
	switch t.state {
	case running:
		close(t.ready)
	}
}

func settleTasks(ts []*task) {
	for _, x := range ts {
		if x.state == settled {
			continue
		}
		close(x.ready)
	}
}

// A callee cannot know who else will close a channel handed to it.
func closeParam(ch chan int) {
	close(ch) // want `close of parameter channel ch`
}

// Ownership transfer is real but takes an annotation; the suppressed
// finding still surfaces in `ggvet -json` with this reason.
func handoff(ch chan int) {
	//ggvet:allow(relay takes ownership of ch by documented contract)
	close(ch)
}

// Package-level channels get the same single-owner discipline.
var broadcast = make(chan int)

func stopA() {
	close(broadcast) // want `channel field chanfx.broadcast closed unguarded in 2 functions`
}

func stopB() {
	close(broadcast) // want `channel field chanfx.broadcast closed unguarded in 2 functions`
}

// Locals are exempt: the lifetime is visible in one screen.
func localChan() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}
