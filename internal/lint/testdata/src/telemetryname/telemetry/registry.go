// Package telemetry is the fixture's miniature metric registry: the
// same Counter/Gauge/Histogram get-or-create surface as the real one,
// including the dynamic Import path that makes this package exempt.
package telemetry

// Counter is a monotonic metric.
type Counter struct{ v int64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.v++ }

// Gauge is a point-in-time metric.
type Gauge struct{ v float64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.v = v }

// Histogram is a distribution metric.
type Histogram struct{ n int64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.n++; _ = v }

// Registry hands out metrics by dotted name, get-or-create.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Import re-registers names arriving off the wire — inherently
// dynamic, which is why the registry's own package is exempt.
func (r *Registry) Import(names []string) {
	for _, n := range names {
		r.Counter(n).Inc()
	}
}
