// Package app is the telemetryname consumer fixture: one well-formed
// single-sourced registration, plus every naming hazard the pass
// rejects.
package app

import "telfx/telemetry"

// MetricTicks is the single source of truth for the tick counter's
// name; constant-backed names may register at any number of sites.
const MetricTicks = "app.ticks"

// Wire registers the fixture's metrics.
func Wire(r *telemetry.Registry, dyn string) {
	r.Counter(MetricTicks).Inc()
	r.Counter(MetricTicks).Inc()

	r.Counter("app.BadName").Inc() // want `metric name "app.BadName" is not lowercase dotted form`

	r.Gauge(dyn).Set(1) // want `metric name is not a compile-time constant`

	r.Histogram("app.dup_ms").Observe(1) // want `metric "app.dup_ms" is registered at 2 sites via raw string literals`

	r.Counter("app.kindmix").Inc() // want `metric "app.kindmix" is registered as a counter but inventoried as a gauge`

	r.Counter("app.unlisted").Inc() // want `metric "app.unlisted" is not in the inventory`

	//ggvet:allow(fixture: demonstrating that an annotated site is suppressed)
	r.Counter("app.Annotated").Inc()
}

// WireAgain registers the duplicate literal's second site.
func WireAgain(r *telemetry.Registry) {
	r.Histogram("app.dup_ms").Observe(2) // want `metric "app.dup_ms" is registered at 2 sites via raw string literals`
}
