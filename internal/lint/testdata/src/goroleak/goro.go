// Fixture for the goroleak pass: every goroutine below the API
// boundary is joined (WaitGroup or done channel) or observes
// cancellation; anything else is a drain hole.
package gorofx

import (
	"context"
	"sync"
)

type server struct {
	wg sync.WaitGroup
}

// WaitGroup join: quiet.
func (s *server) tracked() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// Done-channel join: quiet.
func doneChannel() chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// Result send: the launcher receives it. Quiet.
func resultSend() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- compute()
	}()
	return out
}

// Context-bound: the goroutine observes cancellation. Quiet.
func watcher(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Range over a channel: exits when the feeding side closes it. Quiet.
func consumer(feed chan int) {
	go func() {
		for range feed {
		}
	}()
}

// A named method target is resolved through its declaration body, so
// the WaitGroup join inside worker counts. Quiet.
func (s *server) launchWorker() {
	s.wg.Add(1)
	go s.worker()
}

func (s *server) worker() {
	defer s.wg.Done()
	work()
}

// Nothing joins or cancels these: flagged.
func leakNamed() {
	go work() // want `untracked goroutine`
}

func leakLiteral() {
	go func() { // want `untracked goroutine`
		work()
	}()
}

// The body is a call ggvet cannot see into: flagged.
func leakExternal() {
	go println("boom") // want `untracked goroutine`
}

func work()        {}
func compute() int { return 0 }
