// Package pool is the pool-owner fixture: it owns the recycling
// discipline, so stores inside it are exempt — but pooled globals are
// a hazard even here.
package pool

// Event is the pool-recycled type.
type Event struct {
	Time int64
	next *Event
}

var debugLast *Event // want `package-level variable debugLast can retain a pool-recycled pointer`

// Pool is the freelist; its field store is legitimate owner business.
type Pool struct {
	free *Event
}

// Get pops the freelist or allocates.
func (p *Pool) Get() *Event {
	if p.free == nil {
		return &Event{}
	}
	e := p.free
	p.free = e.next
	e.next = nil
	return e
}

// Put pushes onto the freelist.
func (p *Pool) Put(e *Event) {
	e.next = p.free
	p.free = e
}
