// Package hoard is the non-owner fixture: every way of retaining a
// pooled pointer past its recycle point, plus the shapes that stay
// free (call-chain handling, immediate closures, annotated sites).
package hoard

import "poolfx/pool"

// Stash retains events in a field — the classic use-after-recycle.
type Stash struct {
	last *pool.Event
}

var global *pool.Event // want `package-level variable global can retain a pool-recycled pointer`

// Keep demonstrates the field-store hazard.
func (s *Stash) Keep(e *pool.Event) {
	s.last = e // want `store of a pool-recycled pointer into struct field last`
}

// SetGlobal demonstrates the global-store hazard.
func SetGlobal(e *pool.Event) {
	global = e // want `store of a pool-recycled pointer into package-level variable global`
}

// Wrap demonstrates the composite-literal hazard.
func Wrap(e *pool.Event) Stash {
	return Stash{last: e} // want `pool-recycled pointer embedded in a struct literal`
}

// Defer demonstrates the escaping-closure hazard.
func Defer(e *pool.Event) func() int64 {
	return func() int64 {
		return e.Time // want `closure captures pool-recycled pointer e`
	}
}

// Process shows that handling an event through a call chain is free:
// locals, params and returns are not retention.
func Process(e *pool.Event) int64 {
	tmp := e
	return tmp.Time + Immediate(e)
}

// Immediate shows an immediately invoked closure is free: it cannot
// outlive the event.
func Immediate(e *pool.Event) int64 {
	return func() int64 { return e.Time }()
}

// Audited shows the annotated escape hatch.
func (s *Stash) Audited(e *pool.Event) {
	//ggvet:allow(audited: the stash is cleared before the pool's next recycle point)
	s.last = e
}
