// Fixture for the lockorder pass: acquisition cycles, recursive
// acquisition, and locks held across blocking operations — plus the
// disciplined shapes that must stay quiet.
package lockfx

import (
	"sync"
	"time"
)

type A struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

type B struct {
	mu sync.Mutex
}

// lockAB and lockBA acquire the same two mutexes in opposite orders:
// both edges of the cycle are reported at their acquisition sites.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle`
	b.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order cycle`
	a.mu.Unlock()
}

func relockDirect(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `acquired while already held`
	a.mu.Unlock()
	a.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

func relockViaCall(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockA(a) // want `call to lockA acquires mutex A.mu, which is already held`
}

func heldSend(a *A) {
	a.mu.Lock()
	a.ch <- 1 // want `mutex A.mu held across channel send`
	a.mu.Unlock()
}

func heldRecv(a *A) {
	a.mu.Lock()
	<-a.ch // want `mutex A.mu held across channel receive`
	a.mu.Unlock()
}

func heldWait(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.wg.Wait() // want `mutex A.mu held across sync.WaitGroup.Wait`
}

func heldSleep(a *A) {
	a.mu.Lock()
	time.Sleep(time.Millisecond) // want `mutex A.mu held across time.Sleep`
	a.mu.Unlock()
}

func heldSelect(a *A) {
	a.mu.Lock()
	select { // want `mutex A.mu held across select with no default`
	case <-a.ch:
	case a.ch <- 1:
	}
	a.mu.Unlock()
}

func waits(a *A) {
	a.wg.Wait()
}

func heldTransitive(a *A) {
	a.mu.Lock()
	waits(a) // want `mutex A.mu held across call to waits, which blocks`
	a.mu.Unlock()
}

// ---- disciplined shapes: all quiet ----

// Release before blocking.
func releasesFirst(a *A) {
	a.mu.Lock()
	v := len(a.ch)
	a.mu.Unlock()
	a.ch <- v
}

// A select with a default never parks the holder.
func nonBlockingSend(a *A) {
	a.mu.Lock()
	select {
	case a.ch <- 1:
	default:
	}
	a.mu.Unlock()
}

// The error branch unlocks and returns; the fallthrough path unlocks
// before sending.
func branchRelease(a *A, fail bool) {
	a.mu.Lock()
	if fail {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	a.ch <- 1
}

// A launched goroutine does not inherit the launcher's locks.
func launches(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.ch <- 1
	}()
}

// Consistent nesting (A before B everywhere would be fine on its own;
// this pair orders A before its own cache-style lock only).
type C struct {
	mu sync.Mutex
}

func nestedConsistent(a *A, c *C) {
	a.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	a.mu.Unlock()
}
