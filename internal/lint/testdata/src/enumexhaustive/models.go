package enumfx

// Model is the workload-model interface; the encode/decode tag tables
// below must cover every implementation.
type Model interface {
	Step()
}

// PHold is fully wired: tag tables and state codec all know it.
type PHold struct{}

// Step implements Model.
func (*PHold) Step() {}

// Traffic implements Model but the tables have not caught up.
type Traffic struct{} // want `model Traffic has no counterpart type in state`

// Step implements Model.
func (*Traffic) Step() {}

// encodeModel is the wire tag table; Traffic is missing.
func encodeModel(m Model) string { // want `encodeModel has no case for model Traffic`
	switch m.(type) {
	case *PHold:
		return "phold"
	}
	return ""
}

// decodeModel is the inverse table; Traffic is missing here too.
func decodeModel(name string) Model { // want `decodeModel never constructs model Traffic`
	switch name {
	case "phold":
		return &PHold{}
	}
	return nil
}
