// Package enumfx is the enumexhaustive fixture: a closed enum with a
// name table, switches in every coverage state, and a model interface
// whose encode/decode tag tables have drifted.
package enumfx

// Color is the closed enum under test.
type Color int

// The variants.
const (
	Red Color = iota
	Green
	Blue
)

// ParseColor is the name table; it has drifted: Blue is unreachable.
func ParseColor(s string) (Color, bool) { // want `ParseColor never returns Blue`
	switch s {
	case "red":
		return Red, true
	case "green":
		return Green, true
	}
	return Red, false
}

// Describe misses a variant and has no default at all.
func Describe(c Color) string {
	switch c { // want `switch over Color misses Blue with no default`
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return ""
}

// Quiet misses variants and its default swallows them.
func Quiet(c Color) string {
	switch c { // want `switch over Color misses Green, Blue with a default that does not fail loudly`
	case Red:
		return "red"
	default:
		return ""
	}
}

// Hex is partial but fails loudly: allowed.
func Hex(c Color) string {
	switch c {
	case Red:
		return "#f00"
	case Green:
		return "#0f0"
	default:
		panic("enumfx: unknown color")
	}
}

// Name covers every variant: allowed.
func Name(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	}
	return ""
}

// Warmth is partial by design and carries the annotation.
func Warmth(c Color) string {
	//ggvet:allow(partial mapping by design: every non-red color reads as cold)
	switch c {
	case Red:
		return "warm"
	}
	return "cold"
}
