// Package wire is the strict-enum fixture: a protocol frame tag where
// a loudly failing default is not an escape — the default's job is
// classifying corrupt frames, so dispatch switches must case every
// declared variant explicitly.
package wire

// Kind tags a protocol frame.
type Kind uint8

// The frame kinds.
const (
	Init Kind = iota + 1
	Op
	Shutdown
)

// Dispatch covers every variant: allowed — the loud default only
// catches corrupt frames.
func Dispatch(k Kind) string {
	switch k {
	case Init:
		return "init"
	case Op:
		return "op"
	case Shutdown:
		return "shutdown"
	default:
		panic("wire: unknown kind")
	}
}

// Partial misses a variant; the loud default would satisfy the
// ordinary rule, but strict enums reject the escape.
func Partial(k Kind) string {
	switch k { // want `switch over Kind misses Shutdown: strict wire enum`
	case Init:
		return "init"
	case Op:
		return "op"
	default:
		panic("wire: unknown kind")
	}
}

// Codec selects a frame encoding — a second strict enum in the same
// package, so registration is per-type, not per-package.
type Codec uint8

// The encodings; the zero value is the default.
const (
	Binary Codec = iota
	JSON
)

// Select covers every variant without a default: allowed.
func Select(c Codec) string {
	switch c {
	case Binary:
		return "binary"
	case JSON:
		return "json"
	}
	return "unknown"
}

// SelectPartial misses the zero-valued variant; strict enums require
// it cased like any other.
func SelectPartial(c Codec) string {
	switch c { // want `switch over Codec misses Binary: strict wire enum`
	case JSON:
		return "json"
	default:
		return "binary"
	}
}
