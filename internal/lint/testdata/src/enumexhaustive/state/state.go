// Package state is the fixture's checkpoint codec package: PHold has
// its per-model state codec, Traffic's is missing entirely (the
// diagnostic lands on the model declaration).
package state

// PHold mirrors the root model for checkpointing.
type PHold struct{}

// EncodeState serializes the LP state.
func (*PHold) EncodeState() []byte { return nil }

// DecodeState restores the LP state.
func (*PHold) DecodeState(b []byte) error { return nil }
