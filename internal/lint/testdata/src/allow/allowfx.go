// Package allowfx exercises the allow-annotation grammar itself: a
// reason is mandatory, so a bare or empty annotation is a diagnostic.
package allowfx

//ggvet:allow() // want `ggvet:allow needs a reason`
var empty = 1

//ggvet:allow bare, no parens // want `ggvet:allow needs a reason`
var bare = 2

//ggvet:allow(a real reason, nested (parens) included)
var fine = empty + bare
