// Fixture for the streamterm pass, terminal-frame half: an SSE
// handler (it sets Content-Type: text/event-stream) must emit exactly
// one done/error frame on every return path; write-failure and
// cancellation returns are the sanctioned escapes.
package streamfx

type header map[string]string

func (h header) Set(k, v string) { h[k] = v }

type writer struct {
	h header
}

func (w *writer) Header() header { return w.h }

func writeSSE(w *writer, event string, v any) error { return nil }

type hub struct {
	events chan int
	stop   chan struct{}
}

// Every path terminates once: done on completion, write-failure and
// stop-channel returns escape. Quiet.
func goodHandler(w *writer, h *hub) {
	if h == nil {
		return // plain HTTP: the stream has not started
	}
	w.Header().Set("Content-Type", "text/event-stream")
	for {
		select {
		case ev, ok := <-h.events:
			if !ok {
				_ = writeSSE(w, "done", nil)
				return
			}
			if err := writeSSE(w, "result", ev); err != nil {
				return
			}
		case <-h.stop:
			return
		}
	}
}

// The negative-event path ends the stream with no terminal frame.
func badHandler(w *writer, h *hub) {
	w.Header().Set("Content-Type", "text/event-stream")
	for ev := range h.events {
		if ev < 0 {
			return // want `returns without a terminal frame`
		}
		_ = writeSSE(w, "result", ev)
	}
	_ = writeSSE(w, "done", nil)
}

// A stream terminates exactly once.
func doubleDone(w *writer) {
	w.Header().Set("Content-Type", "text/event-stream")
	_ = writeSSE(w, "done", nil)
	_ = writeSSE(w, "done", nil) // want `second terminal frame`
}

// Not a stream: plain handlers return freely. Quiet.
func jsonHandler(w *writer, ok bool) {
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		return
	}
}

// The client side sets Accept, not Content-Type: not a handler. Quiet.
func sseClient(w *writer) {
	w.Header().Set("Accept", "text/event-stream")
}
