// Fixture for the streamterm pass, frame-kind half: every constant of
// a frame-kind enum needs a producer (send/encode) and a consumer
// (case label or ==/!= dispatch) outside String/Parse name tables.
package streamfx

type Kind uint8

const (
	KindData Kind = 1 + iota
	KindDone
	KindOrphan // want `frame kind KindOrphan has no producer`
	KindDeaf   // want `frame kind KindDeaf has no consumer`
	KindGhost  // want `frame kind KindGhost has no producer` `frame kind KindGhost has no consumer`
)

func send(k Kind) {}

func produce() {
	send(KindData)
	send(KindDone)
	send(KindDeaf)
}

func dispatch(k Kind) int {
	switch k {
	case KindData:
		return 1
	case KindOrphan:
		return 3
	}
	if k == KindDone {
		return 4
	}
	return 0
}

// String mentions every kind by construction; it satisfies neither
// direction.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindDone:
		return "done"
	case KindOrphan:
		return "orphan"
	case KindDeaf:
		return "deaf"
	case KindGhost:
		return "ghost"
	}
	return "?"
}
