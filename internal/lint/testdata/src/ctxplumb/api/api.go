// Package api is the ctxplumb fixture: a blocking entry point, its
// legitimate single-return boundary wrapper, and every way of
// detaching work from the caller's cancellation.
package api

import "context"

// RunContext is the real entry point: it accepts and threads ctx.
func RunContext(ctx context.Context, n int) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		_ = n
		return nil
	}
}

// Run is the boundary wrapper — a single return statement — where
// minting a Background context is the documented convenience shape.
func Run(n int) error {
	return RunContext(context.Background(), n)
}

// Detached mints its own context below the boundary: the caller's
// cancellation can never reach this run.
func Detached(n int) error {
	ctx := context.Background() // want `context\.Background below the API boundary`
	return RunContext(ctx, n)
}

// Sketch parks the decision with TODO, which is just as detached.
func Sketch(n int) error {
	n++
	return RunContext(context.TODO(), n) // want `context\.TODO below the API boundary`
}

// Spawn shows the classic leak: a goroutine closure minting its own
// Background deep inside an otherwise context-free function.
func Spawn(ch chan error) {
	go func() {
		ctx := context.Background() // want `context\.Background below the API boundary`
		ch <- RunContext(ctx, 0)
	}()
}

// Ignores advertises cancellation it does not deliver.
func Ignores(ctx context.Context, n int) int { // want `exported Ignores accepts Context ctx but never uses it`
	return n + 1
}

// Scheduled is intentionally detached and says why.
func Scheduled(n int) error {
	//ggvet:allow(fire-and-forget maintenance: intentionally detached from the caller's lifetime)
	ctx := context.Background()
	return RunContext(ctx, n)
}
