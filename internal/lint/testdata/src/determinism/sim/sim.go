// Package sim is the determinism-pass fixture: a miniature
// "deterministic core" exercising every hazard the pass rejects and
// every shape it must leave alone.
package sim

import (
	"sort"
	"time"
)

// Clock demonstrates the wall-clock hazards.
func Clock() time.Duration {
	start := time.Now()          // want `wall-clock read time\.Now`
	time.Sleep(time.Millisecond) // want `wall-clock read time\.Sleep`
	return time.Since(start)     // want `wall-clock read time\.Since`
}

// Conversions that do not read the clock are fine.
func Conversions() time.Time {
	d := 5 * time.Second
	_ = d.Seconds()
	return time.Unix(0, 42)
}

// Launch demonstrates the free-goroutine hazard; the cooperative
// launch site lives in spawn.go, which the fixture config whitelists.
func Launch(ch chan int) {
	go func() { ch <- 1 }() // want `go statement outside the machine's cooperative-scheduler launch site`
}

// Pick demonstrates the multi-channel select hazard.
func Pick(a, b chan int) int {
	select { // want `select over 2 channels`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Poll is the allowed shape: one comm case plus default.
func Poll(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// Sum demonstrates the map-range hazard and its two remedies: sorted
// keys (no map range left) or an annotated order-insensitive site.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over a map in the deterministic core`
		total += v
	}
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over a map in the deterministic core`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	count := 0
	//ggvet:allow(commutative count: iteration order cannot change the result)
	for range m {
		count++
	}
	return total + count
}

// Order demonstrates the unstable-sort hazard and the annotated
// total-order escape hatch.
func Order(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice is unstable`
	//ggvet:allow(ints are a total order: no equal-element ambiguity to permute)
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
