package sim

import "math/rand"

// Draw demonstrates the global math/rand hazard: randomness must flow
// through the engine's seeded, rollback-restorable streams.
func Draw() int {
	return rand.Int() // want `global math/rand in the deterministic core`
}

// Shuffle shows that even seeded use of the package is flagged: the
// global source is process-wide state a rollback cannot restore.
func Shuffle(xs []int) {
	rand.Seed(1) // want `global math/rand in the deterministic core`
	//ggvet:allow(fixture: demonstrating that an annotated site is suppressed)
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
