package sim

// spawn.go stands in for the simulated machine's cooperative-scheduler
// launch site; the fixture config lists it in GoAllowedFiles, so the
// go statement below is legitimate.

// Spawn launches a cooperatively scheduled thread body.
func Spawn(body func()) {
	go body()
}
