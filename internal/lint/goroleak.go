package lint

// goroleak: below the API boundary every goroutine must be accounted
// for — a server that drains on SIGTERM can only wait for work it can
// see. PR 9's delegation fix moved remote conversations onto their own
// goroutines; this pass makes "and they are registered with the drain
// accounting" a checked property instead of reviewer folklore. A `go`
// statement in the configured packages is accepted when its body shows
// one of the tracking shapes:
//
//   - it joins a sync.WaitGroup (a Done call, almost always deferred);
//   - it signals completion on a channel (a close or a send) — the
//     done-channel join;
//   - it observes cancellation: a receive or select on a stop/done
//     channel or a context's Done(), or a range over a channel (it
//     exits when the producer closes the channel).
//
// A goroutine with none of these can outlive drain silently. Process-
// lifetime helpers (debug listeners, expvar servers) are real and
// fine — they carry a //ggvet:allow with the reason, which is the
// point: the exception is written down where it happens.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

var goroLeakPass = &Pass{
	Name: "goroleak",
	Doc:  "every go statement below the API boundary is tracked: WaitGroup/done-channel join, or cancellation it can observe",
	Run: func(c *Checker) {
		for _, pkg := range c.Prog.Packages {
			if !matchRel(pkg.Rel, c.Cfg.GoroTrackPkgs) {
				continue
			}
			inspect(pkg, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				c.checkGoStmt(pkg, gs)
				return true
			})
		}
	},
}

func (c *Checker) checkGoStmt(pkg *Package, gs *ast.GoStmt) {
	body := c.goBody(pkg, gs.Call)
	if body == nil {
		c.Report(gs.Pos(), "untracked goroutine: the body is an external call ggvet cannot see — wrap it in a literal that joins a WaitGroup or signals a done channel")
		return
	}
	if goroutineTracked(pkg, body) {
		return
	}
	c.Report(gs.Pos(), "untracked goroutine below the API boundary: join it (WaitGroup or done channel) or give it cancellation it observes (context/stop channel), so drain and shutdown can account for it")
}

// goBody resolves the goroutine's body: the literal's body, or the
// declaration body of a same-module function/method target.
func (c *Checker) goBody(pkg *Package, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return nil
	}
	return c.moduleFuncBody(fn)
}

// moduleFuncBody finds the FuncDecl body of fn anywhere in the loaded
// module.
func (c *Checker) moduleFuncBody(fn *types.Func) *ast.BlockStmt {
	for _, p := range c.Prog.Packages {
		if p.Types != fn.Pkg() {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if p.Info.Defs[fd.Name] == fn {
					return fd.Body
				}
			}
		}
	}
	return nil
}

var cancelChanRe = regexp.MustCompile(`(?i)^(stop|done|quit|closing|cancel|ctx|idle|wake)`)

// goroutineTracked reports whether the body shows a tracking shape.
func goroutineTracked(pkg *Package, body *ast.BlockStmt) bool {
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// sync.WaitGroup.Done (deferred or not).
			if fn := calleeFunc(pkg, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
				tracked = true
				return false
			}
			// close(ch): completion signal.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					tracked = true
					return false
				}
			}
		case *ast.SendStmt:
			// Send on a result/done channel: the launcher receives it.
			tracked = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && cancellableChan(pkg, n.X) {
				tracked = true
				return false
			}
		case *ast.RangeStmt:
			// Ranging over a channel: exits when the feeding side
			// closes it.
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tracked = true
					return false
				}
			}
		}
		return true
	})
	return tracked
}

// cancellableChan recognizes the receive operand of a cancellation
// wait: ctx.Done()-style calls, or channels whose name says stop/done.
func cancellableChan(pkg *Package, e ast.Expr) bool {
	e = unparenDeref(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	case *ast.Ident:
		return cancelChanRe.MatchString(e.Name)
	case *ast.SelectorExpr:
		return cancelChanRe.MatchString(e.Sel.Name)
	}
	return false
}
