package lint

// pooledescape: internal/tw recycles *Event and snapshot memory
// through per-peer freelists (internal/tw/pool.go). The discipline —
// who may still hold a pointer when an event is freed — is audited by
// hand inside the owning packages and documented there, but nothing
// stops code *outside* them from squirreling an event away in a
// struct field, a global, or a long-lived closure and reading it after
// the pool has reused the memory. The runtime poison panics catch some
// of those at great distance from the bug; this pass catches the
// retention itself, at compile time.
//
// Outside the owner packages (internal/tw and the generic queue
// containers in internal/pq) the pass flags:
//
//   - package-level variables whose type can reach a pooled pointer;
//   - stores of pooled values into struct fields, globals, or
//     elements reachable from them;
//   - composite literals that embed a pooled value in a struct;
//   - closures that capture a pooled variable from an enclosing scope
//     without being immediately invoked.
//
// Handling an event inside a call chain (parameters, locals, returns)
// stays free: the hazard is retention, not access.

import (
	"go/ast"
	"go/types"
)

var pooledEscapePass = &Pass{
	Name: "pooledescape",
	Doc:  "flag retention of pool-recycled event/snapshot pointers outside the pool owner packages",
	Run: func(c *Checker) {
		pooled := c.resolveNamed(c.Cfg.PooledTypes)
		if len(pooled) == 0 {
			return
		}
		pe := &poolEscape{c: c, pooled: pooled}
		for _, pkg := range c.Prog.Packages {
			owner := matchRel(pkg.Rel, c.Cfg.PoolOwnerPkgs)
			pe.pkg(pkg, owner)
		}
	},
}

type poolEscape struct {
	c      *Checker
	pooled map[*types.TypeName]bool
}

// containsPooled reports whether a value of type t can hold a pooled
// pointer: a pointer to a pooled type, or a slice/array/map/chan
// reaching one.
func (pe *poolEscape) containsPooled(t types.Type) bool {
	return pe.contains(t, 0)
}

func (pe *poolEscape) contains(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	switch t := t.(type) {
	case *types.Pointer:
		if n, ok := t.Elem().(*types.Named); ok && pe.pooled[n.Obj()] {
			return true
		}
		return false
	case *types.Slice:
		return pe.contains(t.Elem(), depth+1)
	case *types.Array:
		return pe.contains(t.Elem(), depth+1)
	case *types.Map:
		return pe.contains(t.Key(), depth+1) || pe.contains(t.Elem(), depth+1)
	case *types.Chan:
		return pe.contains(t.Elem(), depth+1)
	case *types.Named:
		return pe.contains(t.Underlying(), depth+1)
	}
	return false
}

func (pe *poolEscape) pkg(pkg *Package, owner bool) {
	c := pe.c
	// Globals of pooled-capable type are a hazard everywhere, owners
	// included: nothing ties their lifetime to a GVT round.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pkg.Info.Defs[name]
					if v, ok := obj.(*types.Var); ok && !v.IsField() &&
						v.Parent() == pkg.Types.Scope() && pe.containsPooled(v.Type()) {
						c.Report(name.Pos(), "package-level variable %s can retain a pool-recycled pointer past its recycle point", name.Name)
					}
				}
			}
		}
	}
	if owner {
		return
	}
	immediate := immediateFuncLits(pkg)
	inspect(pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !pe.containsPooled(pkg.Info.TypeOf(lhs)) {
					continue
				}
				if tgt := escapeTarget(pkg, lhs); tgt != "" {
					c.Report(lhs.Pos(), "store of a pool-recycled pointer into %s outside the pool owner packages: the pool may recycle it while this reference lives", tgt)
				}
			}
		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(n)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Struct); !ok {
				return true
			}
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if pe.containsPooled(pkg.Info.TypeOf(v)) {
					c.Report(v.Pos(), "pool-recycled pointer embedded in a struct literal outside the pool owner packages")
				}
			}
		case *ast.FuncLit:
			if immediate[n] {
				return true
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok || v.IsField() || v.Parent() == pkg.Types.Scope() {
					return true
				}
				if !pe.containsPooled(v.Type()) {
					return true
				}
				if v.Pos() < n.Pos() || v.Pos() > n.End() {
					c.Report(id.Pos(), "closure captures pool-recycled pointer %s: if the closure outlives the event's lifecycle this is a use-after-recycle", id.Name)
				}
				return true
			})
			return false // the inner walk handled the body
		}
		return true
	})
}

// escapeTarget classifies an assignment destination that retains its
// value: a struct field, a package-level variable, or an element
// reachable from one. It returns "" for locals.
func escapeTarget(pkg *Package, lhs ast.Expr) string {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return "struct field " + lhs.Sel.Name
		}
		if v, ok := pkg.Info.Uses[lhs.Sel].(*types.Var); ok && !v.IsField() {
			return "package-level variable " + lhs.Sel.Name
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[lhs].(*types.Var); ok && !v.IsField() && v.Parent() == pkg.Types.Scope() {
			return "package-level variable " + lhs.Name
		}
	case *ast.IndexExpr:
		if t := escapeTarget(pkg, lhs.X); t != "" {
			return "element of " + t
		}
	case *ast.StarExpr:
		return "" // writes through pointers stay the callee's business
	}
	return ""
}

// immediateFuncLits returns the function literals that are invoked on
// the spot — (func(){...})() — and therefore cannot retain captures.
func immediateFuncLits(pkg *Package) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	inspect(pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := call.Fun
		for {
			if p, ok := fun.(*ast.ParenExpr); ok {
				fun = p.X
				continue
			}
			break
		}
		if lit, ok := fun.(*ast.FuncLit); ok {
			out[lit] = true
		}
		return true
	})
	return out
}
