package lint

// enumexhaustive: the Config enums (System, GVT, Affinity, Queue,
// StateSaving and their internal counterparts) and the model tag are
// closed sets that several independent tables must agree on — the
// switch that builds the component, the Parse* name table, the JSON
// codec, and the checkpoint state codec. Adding a variant is a
// multi-file change, and the compiler enforces none of it: a missed
// switch arm silently falls through to whatever the default does.
//
// The pass enforces, for every switch whose tag is an enum type:
// cover every declared constant, or carry a default that fails loudly
// (panic, os.Exit, or returning/assigning a constructed error). Strict
// enums — wire protocol tags, where the default's job is classifying
// corrupt frames and a missing case silently misroutes a valid one —
// get no loud-default escape: every variant must be cased. On the
// public package it additionally cross-checks the name tables: each
// Parse<Enum> function must return every declared constant, the model
// encode/decode tag tables must cover exactly the Model
// implementations, and the checkpoint codec package must carry
// EncodeState/DecodeState for each model.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

var enumExhaustivePass = &Pass{
	Name: "enumexhaustive",
	Doc:  "switches over Config enums must cover all variants or fail loudly; enum and model name tables must stay mutually exhaustive",
	Run: func(c *Checker) {
		enums := c.resolveNamed(c.Cfg.EnumTypes)
		strict := c.resolveNamed(c.Cfg.StrictEnumTypes)
		for tn := range strict {
			enums[tn] = true
		}
		if len(enums) > 0 {
			variants := map[*types.TypeName][]*types.Const{}
			for tn := range enums {
				variants[tn] = enumConstants(c.Prog, tn)
			}
			for _, pkg := range c.Prog.Packages {
				c.enumSwitches(pkg, enums, strict, variants)
			}
		}
		if c.Cfg.EnumPkg != "" {
			c.enumNameTables(enums)
		}
		if c.Cfg.ModelIface != "" {
			c.modelTables()
		}
	},
}

// enumConstants returns the constants declared with the enum's type in
// its defining package, deduplicated by value, in declaration order.
func enumConstants(prog *Program, tn *types.TypeName) []*types.Const {
	pkg := tn.Pkg()
	scope := pkg.Scope()
	var out []*types.Const
	seen := map[string]bool{}
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || cn.Type() != tn.Type() {
			continue
		}
		key := cn.Val().ExactString()
		if !seen[key] {
			seen[key] = true
			out = append(out, cn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func (c *Checker) enumSwitches(pkg *Package, enums, strict map[*types.TypeName]bool, variants map[*types.TypeName][]*types.Const) {
	inspect(pkg, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		t := pkg.Info.TypeOf(sw.Tag)
		named, ok := t.(*types.Named)
		if !ok || !enums[named.Obj()] {
			return true
		}
		decl := variants[named.Obj()]
		covered := map[string]bool{}
		var defaultClause *ast.CaseClause
		for _, cl := range sw.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				defaultClause = cc
				continue
			}
			for _, e := range cc.List {
				if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
					covered[tv.Value.ExactString()] = true
				}
			}
		}
		var missing []string
		for _, v := range decl {
			if !covered[v.Val().ExactString()] {
				missing = append(missing, v.Name())
			}
		}
		if len(missing) == 0 {
			return true
		}
		if strict[named.Obj()] {
			c.Report(sw.Pos(), "switch over %s misses %s: strict wire enum, case every variant explicitly — the default only classifies corrupt frames",
				named.Obj().Name(), strings.Join(missing, ", "))
			return true
		}
		if defaultClause != nil && failsLoudly(pkg, defaultClause) {
			return true
		}
		what := "no default"
		if defaultClause != nil {
			what = "a default that does not fail loudly"
		}
		c.Report(sw.Pos(), "switch over %s misses %s with %s: cover every variant or make the default panic/return an error",
			named.Obj().Name(), strings.Join(missing, ", "), what)
		return true
	})
}

// failsLoudly reports whether a default clause surfaces the unknown
// variant instead of swallowing it: a panic, an os.Exit/log.Fatal, or
// a return/assignment that constructs an error.
func failsLoudly(pkg *Package, cc *ast.CaseClause) bool {
	loud := false
	for _, st := range cc.Body {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					loud = true
				}
			case *ast.SelectorExpr:
				obj := pkg.Info.Uses[fun.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() + "." + obj.Name() {
				case "fmt.Errorf", "errors.New", "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "testing.T.Fatalf":
					loud = true
				}
			}
			return true
		})
	}
	return loud
}

// enumNameTables checks that every Parse<Enum> function in the public
// package returns every declared constant of its enum: the name table
// and the declaration can only drift apart loudly.
func (c *Checker) enumNameTables(enums map[*types.TypeName]bool) {
	pkg := c.pkgByRel(c.Cfg.EnumPkg)
	if pkg == nil {
		return
	}
	for tn := range enums {
		if tn.Pkg() != pkg.Types {
			continue
		}
		fnName := "Parse" + tn.Name()
		obj := pkg.Types.Scope().Lookup(fnName)
		if obj == nil {
			c.Report(tn.Pos(), "enum %s has no %s name table: every public enum needs a parser the JSON codec and the CLIs share", tn.Name(), fnName)
			continue
		}
		decl := findFuncDecl(pkg, fnName)
		if decl == nil {
			continue
		}
		returned := map[string]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, e := range ret.Results {
				if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && types.Identical(tv.Type, tn.Type()) {
					returned[tv.Value.ExactString()] = true
				}
			}
			return true
		})
		var missing []string
		for _, v := range enumConstants(c.Prog, tn) {
			if !returned[v.Val().ExactString()] {
				missing = append(missing, v.Name())
			}
		}
		if len(missing) > 0 {
			c.Report(decl.Pos(), "%s never returns %s: the name table is not exhaustive over the %s declaration",
				fnName, strings.Join(missing, ", "), tn.Name())
		}
	}
}

// modelTables cross-checks the model tag tables: every exported
// implementation of the model interface must appear in the encode type
// switch and the decode name table, and the checkpoint codec package
// must carry per-model EncodeState/DecodeState methods.
func (c *Checker) modelTables() {
	pkg := c.pkgByRel(c.Cfg.EnumPkg)
	if pkg == nil {
		return
	}
	i := strings.LastIndex(c.Cfg.ModelIface, ".")
	if i < 0 {
		return
	}
	ifacePkg, ifaceName := c.Cfg.ModelIface[:i], c.Cfg.ModelIface[i+1:]
	ipk, ok := c.Prog.byPath[ifacePkg]
	if !ok {
		return
	}
	iobj, ok := ipk.Types.Scope().Lookup(ifaceName).(*types.TypeName)
	if !ok {
		return
	}
	iface, ok := iobj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}

	// The ground truth: exported named types in the public package
	// implementing the interface (by value or pointer).
	models := map[string]*types.TypeName{}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() || tn == iobj {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(tn.Type(), iface) || types.Implements(types.NewPointer(tn.Type()), iface) {
			models[tn.Name()] = tn
		}
	}
	if len(models) == 0 {
		return
	}

	if decl := findFuncDecl(pkg, c.Cfg.ModelEncode); decl != nil {
		c.checkEncodeTable(pkg, decl, models)
	} else {
		c.Report(pkg.Files[0].Pos(), "model encode table %s not found", c.Cfg.ModelEncode)
	}
	if decl := findFuncDecl(pkg, c.Cfg.ModelDecode); decl != nil {
		c.checkDecodeTable(pkg, decl, models)
	} else {
		c.Report(pkg.Files[0].Pos(), "model decode table %s not found", c.Cfg.ModelDecode)
	}
	if c.Cfg.ModelCodecPkg != "" {
		c.checkStateCodecs(models)
	}
}

// checkEncodeTable verifies the encode function's type switch names
// every model implementation.
func (c *Checker) checkEncodeTable(pkg *Package, decl *ast.FuncDecl, models map[string]*types.TypeName) {
	cased := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, cl := range ts.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, e := range cc.List {
				t := pkg.Info.TypeOf(e)
				if t == nil {
					continue
				}
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					cased[named.Obj().Name()] = true
				}
			}
		}
		return true
	})
	for _, name := range sortedKeys(models) {
		if !cased[name] {
			c.Report(decl.Pos(), "%s has no case for model %s: it implements the model interface but cannot travel on the wire",
				c.Cfg.ModelEncode, name)
		}
	}
}

// checkDecodeTable verifies the decode function constructs every model
// implementation from its string tag.
func (c *Checker) checkDecodeTable(pkg *Package, decl *ast.FuncDecl, models map[string]*types.TypeName) {
	built := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(cl)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			built[named.Obj().Name()] = true
		}
		return true
	})
	for _, name := range sortedKeys(models) {
		if !built[name] {
			c.Report(decl.Pos(), "%s never constructs model %s: a wire config naming it cannot decode",
				c.Cfg.ModelDecode, name)
		}
	}
}

// checkStateCodecs verifies the checkpoint codec package declares
// EncodeState and DecodeState for a same-named type per model.
func (c *Checker) checkStateCodecs(models map[string]*types.TypeName) {
	mp := c.pkgByRel(c.Cfg.ModelCodecPkg)
	if mp == nil {
		return
	}
	for _, name := range sortedKeys(models) {
		tn, ok := mp.Types.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			c.Report(models[name].Pos(), "model %s has no counterpart type in %s: checkpoint state codecs are missing", name, c.Cfg.ModelCodecPkg)
			continue
		}
		for _, method := range []string{"EncodeState", "DecodeState"} {
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, mp.Types, method)
			if obj == nil {
				c.Report(tn.Pos(), "model %s lacks %s in %s: its LP state cannot checkpoint", name, method, c.Cfg.ModelCodecPkg)
			}
		}
	}
}

func (c *Checker) pkgByRel(rel string) *Package {
	for _, pkg := range c.Prog.Packages {
		if pkg.Rel == rel {
			return pkg
		}
	}
	return nil
}

func findFuncDecl(pkg *Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
