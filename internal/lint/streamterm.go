package lint

// streamterm: a stream that just stops is indistinguishable from a
// stream that finished — PR 9 shipped an SSE endpoint whose eviction
// path ended the response with no terminal frame, and clients reported
// success on half a sweep. Two checks:
//
//  1. Terminal frames. Every SSE handler (a function that sets
//     Content-Type: text/event-stream) must emit exactly one terminal
//     frame — a call to the configured stream-write helper (default
//     writeSSE) whose event argument is one of the terminal event
//     names (default "done"/"error") — on every return path. A return
//     escapes the requirement only when the client is provably gone:
//     it sits under an if that tests the stream-write helper's error
//     (the write already failed), or in a select case receiving from
//     a Done()/stop channel (the client disconnected). Returns before
//     the handler switches the response into event-stream mode are
//     exempt — they still speak plain HTTP. Emitting a second
//     terminal frame on the same straight-line path is also reported.
//
//  2. Frame kinds. Every constant of the configured frame-kind enums
//     (dist.MsgKind, dist.OpCode) must have at least one producer use
//     (a send/encode site: call argument, assignment, composite
//     literal) and one consumer use (a dispatch site: case label or
//     ==/!= comparison) outside String/Parse name tables. A kind
//     nobody can produce is dead wire surface; a kind nobody
//     dispatches is silently dropped or misrouted on receive — the
//     enumexhaustive pass checks that switches are complete, this one
//     checks that both directions of the codec exist at all.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var streamTermPass = &Pass{
	Name: "streamterm",
	Doc:  "SSE handlers emit exactly one terminal frame on every return path; every frame kind has a producer and a consumer",
	Run: func(c *Checker) {
		for _, pkg := range c.Prog.Packages {
			if matchRel(pkg.Rel, c.Cfg.StreamPkgs) {
				c.checkStreamHandlers(pkg)
			}
		}
		c.checkFrameKinds()
	},
}

// ---- terminal frames ----

func (c *Checker) streamWriteFunc() string {
	if c.Cfg.StreamWriteFunc != "" {
		return c.Cfg.StreamWriteFunc
	}
	return "writeSSE"
}

func (c *Checker) terminalEvents() []string {
	if len(c.Cfg.StreamTerminalEvents) > 0 {
		return c.Cfg.StreamTerminalEvents
	}
	return []string{"done", "error"}
}

func (c *Checker) checkStreamHandlers(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			start := streamStart(fd.Body)
			if !start.IsValid() {
				continue
			}
			c.checkHandler(pkg, fd, start)
		}
	}
}

// streamStart returns the position of the call that switches the
// response into event-stream mode, or NoPos for non-stream functions.
func streamStart(body *ast.BlockStmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Set" {
			return true
		}
		if litString(call.Args[0]) == "Content-Type" && litString(call.Args[1]) == "text/event-stream" {
			pos = call.Pos()
		}
		return true
	})
	return pos
}

func litString(e ast.Expr) string {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return ""
	}
	return strings.Trim(bl.Value, "`\"")
}

func (c *Checker) checkHandler(pkg *Package, fd *ast.FuncDecl, start token.Pos) {
	writeFn := c.streamWriteFunc()
	terminal := c.terminalEvents()

	var path []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() < start {
			// Still in plain-HTTP mode: the stream has not started.
			return true
		}
		if returnEscapes(pkg, path, writeFn) {
			return true
		}
		if terminalEmitBefore(path, ret, writeFn, terminal) {
			return true
		}
		c.Report(ret.Pos(), "stream handler %s returns without a terminal frame (%s via %s): the client cannot tell this end from success", fd.Name.Name, strings.Join(terminal, "/"), writeFn)
		return true
	})

	c.checkDoubleTerminal(fd, writeFn, terminal)
}

// returnEscapes reports whether the return sits on a path where the
// client is provably gone: under an if testing the stream writer's
// error, or in a select case receiving cancellation.
func returnEscapes(pkg *Package, path []ast.Node, writeFn string) bool {
	for i := len(path) - 1; i >= 0; i-- {
		switch n := path[i].(type) {
		case *ast.IfStmt:
			if callsNamed(n.Init, writeFn) || callsNamed(n.Cond, writeFn) {
				return true
			}
		case *ast.CommClause:
			if n.Comm != nil && commIsCancellation(pkg, n.Comm) {
				return true
			}
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

func callsNamed(n ast.Node, name string) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == name {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

func commIsCancellation(pkg *Package, comm ast.Stmt) bool {
	var x ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			x = u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				x = u.X
			}
		}
	}
	if x == nil {
		return false
	}
	return cancellableChan(pkg, x)
}

// terminalEmitBefore reports whether a terminal-frame write dominates
// the return: an earlier statement in an enclosing block (subtrees
// that themselves end in a return are skipped — their frames belong to
// their own paths).
func terminalEmitBefore(path []ast.Node, ret *ast.ReturnStmt, writeFn string, terminal []string) bool {
	for i := len(path) - 1; i >= 1; i-- {
		block, ok := path[i].(*ast.BlockStmt)
		if !ok {
			if _, isLit := path[i].(*ast.FuncLit); isLit {
				return false
			}
			continue
		}
		inner := path[i+1]
		for _, st := range block.List {
			if st == inner {
				break
			}
			if subtreeEndsInReturn(st) {
				continue
			}
			if emitsTerminal(st, writeFn, terminal) {
				return true
			}
		}
	}
	return false
}

func subtreeEndsInReturn(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.IfStmt:
		return terminates(s.Body.List)
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

func emitsTerminal(n ast.Node, writeFn string, terminal []string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if isTerminalEmit(n, writeFn, terminal) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isTerminalEmit(n ast.Node, writeFn string, terminal []string) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != writeFn {
		return false
	}
	for _, a := range call.Args {
		s := litString(a)
		for _, t := range terminal {
			if s == t {
				return true
			}
		}
	}
	return false
}

// checkDoubleTerminal flags two terminal emits in one straight-line
// statement list with no return between them.
func (c *Checker) checkDoubleTerminal(fd *ast.FuncDecl, writeFn string, terminal []string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		emitted := false
		for _, st := range block.List {
			switch {
			case isStmtReturn(st):
				emitted = false
			case emitted && stmtIsTerminalEmit(st, writeFn, terminal):
				c.Report(st.Pos(), "stream handler %s emits a second terminal frame on the same path: a stream terminates exactly once", fd.Name.Name)
			case stmtIsTerminalEmit(st, writeFn, terminal):
				emitted = true
			}
		}
		return true
	})
}

func isStmtReturn(st ast.Stmt) bool {
	_, ok := st.(*ast.ReturnStmt)
	return ok
}

// stmtIsTerminalEmit checks the statement itself (not nested blocks,
// which run on their own paths).
func stmtIsTerminalEmit(st ast.Stmt, writeFn string, terminal []string) bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		return isTerminalEmit(s.X, writeFn, terminal)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			if isTerminalEmit(e, writeFn, terminal) {
				return true
			}
		}
	}
	return false
}

// ---- frame-kind completeness ----

func (c *Checker) checkFrameKinds() {
	kinds := c.resolveNamed(c.Cfg.FrameKindTypes)
	if len(kinds) == 0 {
		return
	}
	type usage struct {
		producer bool
		consumer bool
	}
	use := map[*types.Const]*usage{}
	var order []*types.Const
	for tn := range kinds {
		for _, cn := range enumConstants(c.Prog, tn) {
			use[cn] = &usage{}
			order = append(order, cn)
		}
	}
	for _, pkg := range c.Prog.Packages {
		for _, f := range pkg.Files {
			var path []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					path = path[:len(path)-1]
					return true
				}
				path = append(path, n)
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				cn, ok := pkg.Info.Uses[id].(*types.Const)
				if !ok {
					return true
				}
				u, tracked := use[cn]
				if !tracked || inNameTable(path) {
					return true
				}
				if constUseIsConsumer(path) {
					u.consumer = true
				} else {
					u.producer = true
				}
				return true
			})
		}
	}
	sortConsts(order)
	for _, cn := range order {
		u := use[cn]
		if !u.producer {
			c.Report(cn.Pos(), "frame kind %s has no producer (send/encode) site outside String/Parse tables: a kind nobody can emit is dead wire surface", cn.Name())
		}
		if !u.consumer {
			c.Report(cn.Pos(), "frame kind %s has no consumer (case label or ==/!= dispatch) outside String/Parse tables: a received frame of this kind is silently dropped or misrouted", cn.Name())
		}
	}
}

func sortConsts(cs []*types.Const) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Pos() < cs[j-1].Pos(); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// inNameTable reports whether the use sits inside a String method or a
// Parse* function — the name tables that mention every constant by
// construction and would trivially satisfy both directions.
func inNameTable(path []ast.Node) bool {
	for _, n := range path {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Name.Name == "String" || strings.HasPrefix(fd.Name.Name, "Parse") {
			return true
		}
	}
	return false
}

// constUseIsConsumer classifies the use: case labels and ==/!=
// comparisons consume (dispatch on) a kind; everything else (call
// arguments, assignments, composite literals, returns) produces one.
func constUseIsConsumer(path []ast.Node) bool {
	// path ends at the Ident; its user is the nearest interesting
	// ancestor (skipping selector wrappers like dist.KindInit).
	for i := len(path) - 2; i >= 0; i-- {
		switch n := path[i].(type) {
		case *ast.SelectorExpr, *ast.ParenExpr:
			continue
		case *ast.BinaryExpr:
			return n.Op == token.EQL || n.Op == token.NEQ
		case *ast.CaseClause:
			return true
		default:
			return false
		}
	}
	return false
}
