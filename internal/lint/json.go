package lint

// Machine-readable diagnostics: one JSON object per finding, newline-
// delimited, so CI annotates pull requests and future tooling consumes
// ggvet without scraping the human format. Suppressed findings are
// included with their allow reason — the ledger of accepted exceptions
// is part of the output, not hidden by it.

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// JSONDiagnostic is the wire shape of one finding.
type JSONDiagnostic struct {
	Pass       string `json:"pass"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// EncodeJSON writes diagnostics as newline-delimited JSON objects with
// module-relative slash paths (stable across machines). Pass active
// and suppressed findings pre-merged in the order they should appear.
func EncodeJSON(w io.Writer, root string, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := JSONDiagnostic{
			Pass:       d.Pass,
			File:       relPath(root, d.Position.Filename),
			Line:       d.Position.Line,
			Col:        d.Position.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}

// MergeDiags interleaves active and suppressed findings into one
// position-sorted stream.
func MergeDiags(active, suppressed []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(active)+len(suppressed))
	out = append(out, active...)
	out = append(out, suppressed...)
	sortDiags(out)
	return out
}

func relPath(root, name string) string {
	rel, err := filepath.Rel(root, name)
	if err != nil {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}
