package lint

// determinism: the engine's headline guarantee is that a (Config,
// Seed) pair commits a byte-identical trajectory on every run — the
// checkpoint/resume equivalence and the pooling A/B goldens both
// assert it. That only holds while the simulation core stays free of
// ambient nondeterminism, which no test can prove and any one-line
// change can break. This pass mechanically rejects the known leaks:
//
//   - wall-clock reads (time.Now / Since / timers): real time must
//     never influence the simulated machine;
//   - the global math/rand: all model randomness flows through
//     internal/rng so it is seeded, per-LP, and rollback-restorable;
//   - `go` statements outside the machine's cooperative-scheduler
//     launch site: a free-running goroutine races the simulated clock;
//   - select over two or more channels: the runtime picks a ready case
//     pseudo-randomly, so multi-channel selects schedule
//     nondeterministically (one comm case plus default is fine);
//   - ranging over a map: iteration order is randomized by design —
//     sort the keys first (which removes the map range) or annotate a
//     provably order-insensitive site;
//   - sort.Slice: the unstable sort permutes equal elements
//     arbitrarily; use sort.SliceStable or annotate a comparator that
//     is a total order.

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time package's ambient-time sources. Pure
// conversions (time.Duration arithmetic, time.Unix) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

var determinismPass = &Pass{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, goroutines, multi-channel selects, map ranges and unstable sorts in the deterministic core",
	Run: func(c *Checker) {
		for _, pkg := range c.Prog.Packages {
			if !matchRel(pkg.Rel, c.Cfg.DetCorePkgs) {
				continue
			}
			c.detCorePkg(pkg)
		}
	},
}

func (c *Checker) detCorePkg(pkg *Package) {
	goAllowed := map[string]bool{}
	for _, f := range c.Cfg.GoAllowedFiles {
		goAllowed[f] = true
	}
	inspect(pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := pkg.Info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClockFuncs[obj.Name()] {
					c.Report(n.Pos(), "wall-clock read time.%s in the deterministic core: real time must not influence the simulation", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				c.Report(n.Pos(), "global math/rand in the deterministic core: draw through internal/rng so randomness is seeded and rollback-restorable")
			case "sort":
				if obj.Name() == "Slice" {
					c.Report(n.Pos(), "sort.Slice is unstable and permutes equal elements arbitrarily: use sort.SliceStable or annotate a total-order comparator")
				}
			}
		case *ast.GoStmt:
			file := c.relFile(n.Pos())
			if !goAllowed[file] {
				c.Report(n.Pos(), "go statement outside the machine's cooperative-scheduler launch site: free-running goroutines race the simulated clock")
			}
		case *ast.SelectStmt:
			comms := 0
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				c.Report(n.Pos(), "select over %d channels: the runtime picks a ready case pseudo-randomly, which schedules nondeterministically", comms)
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.Report(n.Pos(), "range over a map in the deterministic core: iteration order is randomized — sort the keys first or annotate an order-insensitive site")
				}
			}
		}
		return true
	})
}
