package lint

// lockorder: the serving and distribution layers coordinate through a
// handful of struct-field mutexes (Manager.mu, resultCache.mu, the
// telemetry instrument locks). Two disciplines keep them deadlock-free
// and responsive, and this pass mechanically enforces both:
//
//  1. Acquisition order forms a DAG. The pass builds a per-module
//     graph with an edge A→B for every site that acquires B while
//     holding A — directly, or transitively through a same-module
//     call — and reports every edge that participates in a cycle,
//     plus any re-acquisition of a lock already held (an immediate
//     self-deadlock with sync.Mutex).
//  2. No lock is held across a blocking operation: a channel send or
//     receive, a select with no default, a range over a channel,
//     sync.WaitGroup.Wait, exec.Cmd.Wait, time.Sleep, or a curated
//     set of net / net/http calls (dials, listens, Client.Do,
//     Server.Serve, conn reads/writes). A holder parked on one of
//     these stalls every other acquirer — the PR 9 fleet deadlock was
//     exactly a worker slot held across a blocking remote call.
//
// The analysis is flow-aware within a function (branches fork the
// held-set and merge by intersection, branches ending in a terminating
// statement are excluded from the merge) and summary-based across
// functions (each function's transitive "acquires" set and "blocks"
// evidence propagate to callers through same-module static calls).
// Goroutine bodies launched with `go` are analyzed as fresh regions —
// the launcher's locks are not held there. Unknown callees (interface
// methods, function values, other modules beyond the curated stdlib
// set) are assumed non-blocking and lock-free: the pass prefers a
// false negative to a false positive, because every report must be
// actionable without an escape hatch.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var lockOrderPass = &Pass{
	Name: "lockorder",
	Doc:  "mutex acquisition order must form a DAG; no lock held across a blocking operation",
	Run: func(c *Checker) {
		lo := &lockOrder{
			c:         c,
			summaries: map[*types.Func]*fnSummary{},
			edges:     map[types.Object]map[types.Object]token.Pos{},
			disp:      map[types.Object]string{},
		}
		lo.collectSummaries()
		lo.propagate()
		for _, pkg := range c.Prog.Packages {
			if !matchRel(pkg.Rel, c.Cfg.LockOrderPkgs) {
				continue
			}
			lo.analyzePkg(pkg)
		}
		lo.reportCycles()
	},
}

// fnSummary is one function's lock-relevant behavior as seen by its
// callers: which mutexes its body (transitively) acquires, and whether
// it (transitively) blocks.
type fnSummary struct {
	acquires  map[types.Object]token.Pos
	blockDesc string // "" = does not block
	callees   map[*types.Func]bool
}

type lockOrder struct {
	c         *Checker
	summaries map[*types.Func]*fnSummary
	edges     map[types.Object]map[types.Object]token.Pos
	disp      map[types.Object]string // lock object -> display name
}

// ---- phase A: per-function summaries, module-wide ----

func (lo *lockOrder) collectSummaries() {
	for _, pkg := range lo.c.Prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				s := &fnSummary{acquires: map[types.Object]token.Pos{}, callees: map[*types.Func]bool{}}
				lo.summarize(pkg, fd.Body, s)
				lo.summaries[fn] = s
			}
		}
	}
}

// summarize records direct acquisitions, direct blocking evidence, and
// same-module callees. Goroutine bodies and non-invoked function
// literals are skipped: they do not run on the caller's stack.
func (lo *lockOrder) summarize(pkg *Package, n ast.Node, s *fnSummary) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			// Visited only when not consumed by the CallExpr case below
			// (immediately-invoked literals are walked there).
			return false
		case *ast.SendStmt:
			s.noteBlock("channel send")
			return true
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					s.noteBlock("range over a channel")
				}
			}
			return true
		case *ast.UnaryExpr:
			// Receives inside select comm clauses never reach here: the
			// SelectStmt case below walks only the clause bodies.
			if n.Op == token.ARROW {
				s.noteBlock("channel receive")
			}
			return true
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				s.noteBlock("select with no default")
			}
			// Comm clauses' receives are the select itself; walk only
			// the clause bodies.
			for _, cl := range n.Body.List {
				for _, st := range cl.(*ast.CommClause).Body {
					lo.summarize(pkg, st, s)
				}
			}
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				lo.summarize(pkg, lit.Body, s)
			}
			if obj, disp, kind := lo.lockCall(pkg, n); kind == lockAcquire {
				if _, ok := s.acquires[obj]; !ok || n.Pos() < s.acquires[obj] {
					s.acquires[obj] = n.Pos()
				}
				lo.setDisp(obj, disp)
				return true
			} else if kind == lockRelease {
				return true
			}
			if desc, ok := stdlibBlocking(pkg, n); ok {
				s.noteBlock(desc)
				return true
			}
			if fn := calleeFunc(pkg, n); fn != nil {
				s.callees[fn] = true
			}
			return true
		}
		return true
	})
}

func (s *fnSummary) noteBlock(desc string) {
	if s.blockDesc == "" {
		s.blockDesc = desc
	}
}

// propagate closes summaries under the call graph: a function acquires
// what its callees acquire and blocks if any callee blocks.
func (lo *lockOrder) propagate() {
	for changed := true; changed; {
		changed = false
		for _, s := range lo.summaries {
			for callee := range s.callees {
				cs, ok := lo.summaries[callee]
				if !ok {
					continue
				}
				for obj, pos := range cs.acquires {
					if _, ok := s.acquires[obj]; !ok {
						s.acquires[obj] = pos
						changed = true
					}
				}
				if s.blockDesc == "" && cs.blockDesc != "" {
					s.blockDesc = "call to " + funcDisplay(callee) + ", which blocks (" + cs.blockDesc + ")"
					changed = true
				}
			}
		}
	}
}

// ---- phase B: flow-aware region analysis inside LockOrderPkgs ----

func (lo *lockOrder) analyzePkg(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r := &lockRegion{lo: lo, pkg: pkg}
			r.block(fd.Body.List, map[types.Object]token.Pos{})
		}
	}
}

type lockRegion struct {
	lo  *lockOrder
	pkg *Package
}

type heldSet = map[types.Object]token.Pos

func copyHeld(h heldSet) heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// block threads the held-set through a statement list and returns the
// set at its end.
func (r *lockRegion) block(list []ast.Stmt, held heldSet) heldSet {
	for _, st := range list {
		held = r.stmt(st, held)
	}
	return held
}

func (r *lockRegion) stmt(st ast.Stmt, held heldSet) heldSet {
	switch st := st.(type) {
	case *ast.ExprStmt:
		r.expr(st.X, held)
	case *ast.SendStmt:
		r.expr(st.Chan, held)
		r.expr(st.Value, held)
		r.blocked(st.Arrow, "channel send", held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			r.expr(e, held)
		}
		for _, e := range st.Lhs {
			r.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						r.expr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		r.expr(st.X, held)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			r.expr(e, held)
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to the end of the
		// region — no change. A deferred literal runs at return time as
		// its own region; anything else deferred is left alone.
		if _, _, kind := r.lo.lockCall(r.pkg, st.Call); kind != lockRelease {
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				r.block(lit.Body.List, heldSet{})
			}
		}
	case *ast.GoStmt:
		for _, e := range st.Call.Args {
			r.expr(e, held)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			r.block(lit.Body.List, heldSet{})
		}
	case *ast.LabeledStmt:
		held = r.stmt(st.Stmt, held)
	case *ast.BlockStmt:
		held = r.block(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = r.stmt(st.Init, held)
		}
		r.expr(st.Cond, held)
		branches := [][]ast.Stmt{st.Body.List}
		if st.Else != nil {
			branches = append(branches, []ast.Stmt{st.Else})
		} else {
			branches = append(branches, nil)
		}
		held = r.merge(branches, held)
	case *ast.ForStmt:
		if st.Init != nil {
			held = r.stmt(st.Init, held)
		}
		if st.Cond != nil {
			r.expr(st.Cond, held)
		}
		r.block(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		r.expr(st.X, held)
		if t := r.pkg.Info.TypeOf(st.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				r.blocked(st.For, "range over a channel", held)
			}
		}
		r.block(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = r.stmt(st.Init, held)
		}
		if st.Tag != nil {
			r.expr(st.Tag, held)
		}
		held = r.mergeCases(st.Body.List, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = r.stmt(st.Init, held)
		}
		held = r.mergeCases(st.Body.List, held)
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			r.blocked(st.Select, "select with no default", held)
		}
		for _, cl := range st.Body.List {
			r.block(cl.(*ast.CommClause).Body, copyHeld(held))
		}
	}
	return held
}

// merge runs each branch on a fork of held and intersects the results,
// skipping branches that end in a terminating statement (their lock
// state never flows past the construct). nil represents an absent else
// branch: fall-through with held unchanged.
func (r *lockRegion) merge(branches [][]ast.Stmt, held heldSet) heldSet {
	var outs []heldSet
	for _, b := range branches {
		if b == nil {
			outs = append(outs, copyHeld(held))
			continue
		}
		out := held
		if len(b) == 1 {
			out = r.stmt(b[0], copyHeld(held))
		} else {
			out = r.block(b, copyHeld(held))
		}
		if !terminates(b) {
			outs = append(outs, out)
		}
	}
	if len(outs) == 0 {
		return copyHeld(held)
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		for k := range merged {
			if _, ok := o[k]; !ok {
				delete(merged, k)
			}
		}
	}
	return merged
}

func (r *lockRegion) mergeCases(clauses []ast.Stmt, held heldSet) heldSet {
	branches := [][]ast.Stmt{nil} // no case taken / default absent
	for _, cl := range clauses {
		if cc, ok := cl.(*ast.CaseClause); ok {
			branches = append(branches, cc.Body)
		}
	}
	return r.merge(branches, held)
}

// terminates reports whether a statement list certainly does not fall
// through (return, branch, or panic at the end).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	case *ast.IfStmt:
		if last.Else != nil {
			return terminates(last.Body.List) && terminates([]ast.Stmt{last.Else})
		}
	}
	return false
}

// expr walks an expression under the current held-set: acquisitions
// and releases mutate it, blocking operations report against it.
func (r *lockRegion) expr(e ast.Expr, held heldSet) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		for _, a := range e.Args {
			r.expr(a, held)
		}
		if lit, ok := e.Fun.(*ast.FuncLit); ok {
			// Immediately invoked: runs synchronously on this stack
			// with the caller's locks held.
			r.block(lit.Body.List, held)
			return
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			r.expr(sel.X, held)
		}
		obj, disp, kind := r.lo.lockCall(r.pkg, e)
		switch kind {
		case lockAcquire:
			r.acquire(e.Pos(), obj, disp, held)
			return
		case lockRelease:
			delete(held, obj)
			return
		}
		if desc, ok := stdlibBlocking(r.pkg, e); ok {
			r.blocked(e.Pos(), desc, held)
			return
		}
		if fn := calleeFunc(r.pkg, e); fn != nil {
			if s, ok := r.lo.summaries[fn]; ok {
				r.applySummary(e.Pos(), fn, s, held)
			}
		}
	case *ast.UnaryExpr:
		r.expr(e.X, held)
		if e.Op == token.ARROW {
			r.blocked(e.OpPos, "channel receive", held)
		}
	case *ast.BinaryExpr:
		r.expr(e.X, held)
		r.expr(e.Y, held)
	case *ast.ParenExpr:
		r.expr(e.X, held)
	case *ast.StarExpr:
		r.expr(e.X, held)
	case *ast.SelectorExpr:
		r.expr(e.X, held)
	case *ast.IndexExpr:
		r.expr(e.X, held)
		r.expr(e.Index, held)
	case *ast.SliceExpr:
		r.expr(e.X, held)
		r.expr(e.Low, held)
		r.expr(e.High, held)
		r.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		r.expr(e.X, held)
	case *ast.KeyValueExpr:
		r.expr(e.Value, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			r.expr(el, held)
		}
	case *ast.FuncLit:
		// Stored for later: analyzed as a fresh region, the current
		// locks are not known to be held when it eventually runs.
		r.block(e.Body.List, heldSet{})
	}
}

func (r *lockRegion) acquire(pos token.Pos, obj types.Object, disp string, held heldSet) {
	r.lo.setDisp(obj, disp)
	if _, ok := held[obj]; ok {
		r.lo.c.Report(pos, "mutex %s acquired while already held: recursive acquisition deadlocks", disp)
		return
	}
	for h := range held {
		r.lo.edge(h, obj, pos)
	}
	held[obj] = pos
}

// applySummary charges a same-module call's transitive acquisitions
// and blocking behavior to the caller's held-set.
func (r *lockRegion) applySummary(pos token.Pos, fn *types.Func, s *fnSummary, held heldSet) {
	if len(held) == 0 {
		return
	}
	for obj := range s.acquires {
		if _, ok := held[obj]; ok {
			r.lo.c.Report(pos, "call to %s acquires mutex %s, which is already held: recursive acquisition deadlocks",
				funcDisplay(fn), r.lo.disp[obj])
			continue
		}
		for h := range held {
			r.lo.edge(h, obj, pos)
		}
	}
	if s.blockDesc != "" {
		r.blocked(pos, "call to "+funcDisplay(fn)+", which blocks ("+s.blockDesc+")", held)
	}
}

func (r *lockRegion) blocked(pos token.Pos, desc string, held heldSet) {
	if len(held) == 0 {
		return
	}
	r.lo.c.Report(pos, "%s held across %s: a blocked holder stalls every other acquirer; release before blocking", r.lo.heldNames(held), desc)
}

func (lo *lockOrder) heldNames(held heldSet) string {
	var names []string
	for obj := range held {
		names = append(names, lo.disp[obj])
	}
	sort.Strings(names)
	if len(names) == 1 {
		return "mutex " + names[0]
	}
	return "mutexes " + strings.Join(names, ", ")
}

func (lo *lockOrder) setDisp(obj types.Object, disp string) {
	if _, ok := lo.disp[obj]; !ok {
		lo.disp[obj] = disp
	}
}

func (lo *lockOrder) edge(from, to types.Object, pos token.Pos) {
	m := lo.edges[from]
	if m == nil {
		m = map[types.Object]token.Pos{}
		lo.edges[from] = m
	}
	if p, ok := m[to]; !ok || pos < p {
		m[to] = pos
	}
}

// reportCycles flags every acquisition edge that participates in a
// cycle of the order graph.
func (lo *lockOrder) reportCycles() {
	for from, tos := range lo.edges {
		for to, pos := range tos {
			if lo.reaches(to, from, map[types.Object]bool{}) {
				lo.c.Report(pos, "lock order cycle: %s acquired while holding %s, but elsewhere %s is (transitively) acquired while holding %s; acquisitions must follow one global order",
					lo.disp[to], lo.disp[from], lo.disp[from], lo.disp[to])
			}
		}
	}
}

func (lo *lockOrder) reaches(from, to types.Object, seen map[types.Object]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for next := range lo.edges[from] {
		if lo.reaches(next, to, seen) {
			return true
		}
	}
	return false
}

// ---- lock and blocking-call classification ----

type lockCallKind int

const (
	lockNone lockCallKind = iota
	lockAcquire
	lockRelease
)

// lockCall classifies a call as a mutex acquire/release and resolves a
// stable identity for the lock: the struct field object for m.mu-style
// receivers, the variable object for plain mutex vars, or the named
// type for an embedded mutex.
func (lo *lockOrder) lockCall(pkg *Package, call *ast.CallExpr) (types.Object, string, lockCallKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", lockNone
	}
	var method *types.Func
	if s, ok := pkg.Info.Selections[sel]; ok {
		method, _ = s.Obj().(*types.Func)
	} else if f, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		method = f
	}
	if method == nil || method.Pkg() == nil || method.Pkg().Path() != "sync" {
		return nil, "", lockNone
	}
	var kind lockCallKind
	switch method.Name() {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return nil, "", lockNone
	}
	recv := method.Type().(*types.Signature).Recv()
	if recv == nil || !isMutexType(recv.Type()) {
		return nil, "", lockNone
	}
	obj, disp := lockIdentity(pkg, sel.X)
	if obj == nil {
		return nil, "", lockNone
	}
	return obj, disp, kind
}

// lockIdentity resolves the expression a Lock/Unlock is called on to
// the object all instances share: the field var, the named variable,
// or — for an embedded mutex — the embedding type's name object.
func lockIdentity(pkg *Package, recv ast.Expr) (types.Object, string) {
	recv = unparenDeref(recv)
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		var obj types.Object
		if s, ok := pkg.Info.Selections[e]; ok {
			obj = s.Obj()
		} else {
			obj = pkg.Info.Uses[e.Sel]
		}
		if v, ok := obj.(*types.Var); ok && isMutexType(v.Type()) {
			owner := namedTypeName(pkg.Info.TypeOf(e.X))
			if owner == "" && v.Pkg() != nil {
				owner = v.Pkg().Name()
			}
			return v, owner + "." + v.Name()
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if isMutexType(v.Type()) {
				return v, v.Name()
			}
			// Embedded mutex: t.Lock() with t a struct embedding
			// sync.Mutex — unify on the named type.
			if tn := namedTypeObj(v.Type()); tn != nil {
				return tn, tn.Name() + " (embedded mutex)"
			}
		}
	}
	// Embedded mutex behind a selector (s.job.Lock()): unify on the
	// field's named type.
	if t := pkg.Info.TypeOf(recv); t != nil && !isMutexType(t) {
		if tn := namedTypeObj(t); tn != nil {
			return tn, tn.Name() + " (embedded mutex)"
		}
	}
	return nil, ""
}

func unparenDeref(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return e
		default:
			return e
		}
	}
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func namedTypeObj(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if tn := namedTypeObj(t); tn != nil {
		return tn.Name()
	}
	return ""
}

// calleeFunc resolves a call's static target to a same-module function
// with a body (methods included); interface dispatch and function
// values return nil.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[fun]; ok {
			obj = s.Obj()
		} else {
			obj = pkg.Info.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

func funcDisplay(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := namedTypeName(sig.Recv().Type()); name != "" {
			return name + "." + fn.Name()
		}
	}
	return fn.Name()
}

// stdlibBlocking reports whether a call is one of the curated standard
// library operations that park the goroutine: synchronization waits,
// sleeps, and network I/O. The list is deliberately narrow — a missed
// blocking call is a false negative, a misclassified non-blocking one
// is a false positive users must annotate away.
func stdlibBlocking(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	var recvName string
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recvName = namedTypeName(sig.Recv().Type())
	}
	switch fn.Pkg().Path() {
	case "sync":
		if name == "Wait" {
			return "sync." + recvName + ".Wait", true
		}
	case "os/exec":
		switch name {
		case "Wait", "Run", "Output", "CombinedOutput":
			return "exec.Cmd." + name, true
		}
	case "time":
		if name == "Sleep" && recvName == "" {
			return "time.Sleep", true
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Listen", "ListenPacket",
			"Accept", "Read", "Write", "ReadFrom", "WriteTo":
			return "net." + name, true
		}
	case "net/http":
		switch recvName {
		case "Client":
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "http.Client." + name, true
			}
		case "Server":
			switch name {
			case "Serve", "ListenAndServe", "ListenAndServeTLS", "Shutdown":
				return "http.Server." + name, true
			}
		case "":
			switch name {
			case "Get", "Post", "PostForm", "Head", "Serve", "ListenAndServe", "ListenAndServeTLS":
				return "http." + name, true
			}
		}
	}
	return "", false
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
