package lint

// ctxplumb: the engine and the serving layer expose blocking entry
// points (runs that take minutes, drains that wait on workers). Those
// must accept a context.Context and actually thread it — a
// context.Background conjured below the API boundary detaches the work
// from its caller's cancellation, which is exactly how a drain timeout
// fails to stop a stuck job. The pass checks, inside the configured
// packages:
//
//   - no context.Background/context.TODO, except in a boundary
//     wrapper: a function whose whole body is a single return
//     statement (the `Run(cfg) { return RunContext(ctx.Background(),
//     cfg) }` convenience shape);
//   - an exported function or method that accepts a context.Context
//     must use it somewhere in its body — accepting and ignoring ctx
//     advertises cancellation it does not deliver.

import (
	"go/ast"
	"go/types"
)

var ctxPlumbPass = &Pass{
	Name: "ctxplumb",
	Doc:  "no context.Background/TODO below the API boundary; exported functions taking a Context must thread it",
	Run: func(c *Checker) {
		for _, pkg := range c.Prog.Packages {
			if !matchRel(pkg.Rel, c.Cfg.CtxPkgs) {
				continue
			}
			c.ctxPkg(pkg)
		}
	},
}

func (c *Checker) ctxPkg(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.ctxFunc(pkg, fd)
		}
	}
}

func (c *Checker) ctxFunc(pkg *Package, fd *ast.FuncDecl) {
	wrapper := len(fd.Body.List) == 1 && isReturn(fd.Body.List[0])

	// Background/TODO below the boundary. Function literals inside the
	// body are part of the same function for this purpose: a goroutine
	// closure minting its own Background is the classic leak.
	if !wrapper {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
				return true
			}
			switch obj.Name() {
			case "Background", "TODO":
				c.Report(sel.Pos(), "context.%s below the API boundary: derive from the caller's Context so cancellation reaches this work", obj.Name())
			}
			return true
		})
	}

	// Exported entry points accepting a Context must use it.
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		t := pkg.Info.TypeOf(field.Type)
		if !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			if !identUsed(pkg, fd.Body, obj) {
				c.Report(name.Pos(), "exported %s accepts Context %s but never uses it: cancellation is advertised and not delivered", fd.Name.Name, name.Name)
			}
		}
	}
}

func isReturn(st ast.Stmt) bool {
	_, ok := st.(*ast.ReturnStmt)
	return ok
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func identUsed(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
