package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(42, 7)
	b := New(43, 7)
	c := New(42, 8)
	same := 0
	for i := 0; i < 100; i++ {
		x := a.Uint64()
		if x == b.Uint64() {
			same++
		}
		if x == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(1, 1)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split children matched at step %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(9, 1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(123, 5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(77, 3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4, 2)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += s.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(11, 1)
	for _, mean := range []float64{0.5, 1, 10} {
		sum := 0.0
		const trials = 200000
		for i := 0; i < trials; i++ {
			v := s.Exponential(mean)
			if v < 0 {
				t.Fatalf("Exponential produced negative value %v", v)
			}
			sum += v
		}
		got := sum / trials
		if math.Abs(got-mean)/mean > 0.02 {
			t.Errorf("Exponential(%v) sample mean = %v", mean, got)
		}
	}
}

func TestBurrPositiveAndMedian(t *testing.T) {
	s := New(5, 9)
	const c, k = 12.4, 0.46
	// Median from inverse CDF at u = 0.5.
	wantMedian := math.Pow(math.Pow(0.5, -1/k)-1, 1/c)
	var vals []float64
	for i := 0; i < 50001; i++ {
		v := s.Burr(c, k)
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Burr produced invalid value %v", v)
		}
		vals = append(vals, v)
	}
	below := 0
	for _, v := range vals {
		if v < wantMedian {
			below++
		}
	}
	frac := float64(below) / float64(len(vals))
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Burr median check: %.3f of samples below analytic median, want ~0.5", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(31, 2)
	p := 0.25
	sum := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		g := s.Geometric(p)
		if g < 0 {
			t.Fatalf("Geometric returned negative %d", g)
		}
		sum += g
	}
	got := float64(sum) / trials
	want := (1 - p) / p
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("Geometric mean = %v, want ~%v", got, want)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	s := New(1, 1)
	if g := s.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
}

func TestBernoulliProbability(t *testing.T) {
	s := New(6, 6)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8, 8)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSaveRestore(t *testing.T) {
	s := New(99, 4)
	s.Uint64()
	st := s.Save()
	want := make([]uint64, 32)
	for i := range want {
		want[i] = s.Uint64()
	}
	s.Restore(st)
	for i := range want {
		if got := s.Uint64(); got != want[i] {
			t.Fatalf("replay diverged at %d: got %d want %d", i, got, want[i])
		}
	}
}

func TestInversePowerWeightMonotone(t *testing.T) {
	for _, g := range []float64{0.35, 0.5} {
		last := math.Inf(1)
		for d := 0.0; d < 50; d++ {
			w := InversePowerWeight(d, g)
			if w <= 0 || w > last {
				t.Fatalf("weight not positive-decreasing at d=%v g=%v: %v (prev %v)", d, g, w, last)
			}
			last = w
		}
	}
}

// Property: Intn stays in bounds for arbitrary seeds and sizes.
func TestQuickIntnInBounds(t *testing.T) {
	f := func(seed, sel uint64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		s := New(seed, sel)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Save/Restore round-trips exactly for arbitrary states.
func TestQuickSaveRestoreRoundTrip(t *testing.T) {
	f := func(seed, sel uint64, steps uint8) bool {
		s := New(seed, sel)
		for i := 0; i < int(steps); i++ {
			s.Uint64()
		}
		st := s.Save()
		a := s.Uint64()
		s.Restore(st)
		return s.Uint64() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Burr inverse-CDF output satisfies F(x) ≈ u round-trip.
func TestQuickBurrCDFRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed, 1)
		const c, k = 12.4, 0.46
		x := s.Burr(c, k)
		u := 1 - math.Pow(1+math.Pow(x, c), -k)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		s.Intn(1000)
	}
}

func BenchmarkExponential(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		s.Exponential(1)
	}
}

func BenchmarkBurr(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		s.Burr(12.4, 0.46)
	}
}
