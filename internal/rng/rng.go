// Package rng provides deterministic pseudo-random number generation and
// the probability distributions used by the simulation models.
//
// Every simulation entity (thread, LP, agent) owns an independent stream
// so that results are bit-reproducible regardless of execution
// interleaving, and so that Time Warp rollbacks can restore generator
// state exactly by re-seeding from the stream's origin.
package rng

import "math"

// Stream is a PCG-XSH-RR 64/32 pseudo-random generator. The zero value
// is not usable; construct streams with New or Split.
type Stream struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a Stream seeded from seed with the given stream selector.
// Distinct (seed, sel) pairs produce statistically independent streams.
func New(seed, sel uint64) *Stream {
	s := &Stream{inc: sel<<1 | 1}
	s.state = 0
	s.next()
	s.state += splitmix(seed)
	s.next()
	return s
}

// Split derives an independent child stream. The parent advances once,
// so repeated Split calls yield distinct children.
func (s *Stream) Split() *Stream {
	return New(uint64(s.next())<<32|uint64(s.next()), s.inc>>1+0x9e37)
}

// splitmix is the SplitMix64 finalizer, used to decorrelate raw seeds.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next advances the generator and returns 32 uniform bits.
func (s *Stream) next() uint32 {
	old := s.state
	s.state = old*pcgMult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint32 returns 32 uniform random bits.
func (s *Stream) Uint32() uint32 { return s.next() }

// Uint64 returns 64 uniform random bits.
func (s *Stream) Uint64() uint64 { return uint64(s.next())<<32 | uint64(s.next()) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := uint64(s.next())
	m := v * uint64(n)
	lo := uint32(m)
	if lo < uint32(n) {
		thresh := uint32(-uint32(n)) % uint32(n)
		for lo < thresh {
			v = uint64(s.next())
			m = v * uint64(n)
			lo = uint32(m)
		}
	}
	return int(m >> 32)
}

// Float64 returns a uniform float in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float in (0, 1), safe for logarithms
// and inverse-CDF transforms.
func (s *Stream) Float64Open() float64 {
	for {
		f := s.Float64()
		if f > 0 {
			return f
		}
	}
}

// Exponential returns an exponentially distributed value with the given
// mean (rate 1/mean).
func (s *Stream) Exponential(mean float64) float64 {
	return -mean * math.Log(s.Float64Open())
}

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Burr samples the Burr XII distribution with shape parameters c and k
// via inverse-CDF: F(x) = 1 - (1 + x^c)^(-k). The Traffic model uses
// c=12.4, k=0.46 per the paper.
func (s *Stream) Burr(c, k float64) float64 {
	u := s.Float64Open()
	return math.Pow(math.Pow(1-u, -1/k)-1, 1/c)
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials. p must be in (0, 1].
func (s *Stream) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	return int(math.Floor(math.Log(s.Float64Open()) / math.Log(1-p)))
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.Float64() < p }

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// InversePowerWeight returns the unnormalized inverse-power density
// weight (1+d)^(-g) used by the Traffic model to concentrate initial
// events toward the city centre; d is the distance from the centre and
// g the density gradient.
func InversePowerWeight(d, g float64) float64 {
	return math.Pow(1+d, -g)
}

// State captures the generator state so Time Warp can restore it on
// rollback.
type State struct {
	State uint64
	Inc   uint64
}

// Save returns the current generator state.
func (s *Stream) Save() State { return State{State: s.state, Inc: s.inc} }

// Restore rewinds the generator to a previously saved state.
func (s *Stream) Restore(st State) { s.state, s.inc = st.State, st.Inc }
