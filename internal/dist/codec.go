package dist

import (
	"fmt"

	"ggpdes/internal/tw"
)

// Hand-rolled binary codec for batched hot-path frames (KindOpsB /
// KindResultB). Integers are uvarints (zigzag when signed), virtual
// times raw float64 bits — binary floats carry ±Inf natively, so the
// WireVT string workaround stays a JSON-only concern. Results are
// encoded positionally: the decoder knows each result's shape from the
// op list it sent, so results carry no tags. Only Batchable ops have a
// binary form; everything else travels as single JSON KindOp frames.

// binVersion guards against coordinator/worker codec skew; bump on any
// layout change.
const binVersion = 1

const (
	flagEnv = 1 << 0
)

func corrupt(what string) error {
	return fmt.Errorf("dist: corrupt binary frame: %s", what)
}

// AppendBatch encodes a batch request into dst.
func AppendBatch(dst []byte, m *BatchMsg) ([]byte, error) {
	dst = append(dst, binVersion)
	var flags byte
	if m.Env != nil {
		flags |= flagEnv
	}
	dst = append(dst, flags)
	if m.Env != nil {
		dst = tw.AppendWireEnvelope(dst, *m.Env)
	}
	dst = tw.AppendWireUint(dst, uint64(len(m.Ops)))
	for i := range m.Ops {
		op := &m.Ops[i]
		dst = append(dst, byte(op.Op))
		switch op.Op {
		case OpDrain, OpProcessBatch, OpHasExecWork, OpHasWork,
			OpInputSize, OpLocalMin, OpRemoteMin, OpTakeMinSent,
			OpPeekMinSent:
			dst = tw.AppendWireUint(dst, uint64(op.Peer))
		case OpFossilCollect:
			dst = tw.AppendWireUint(dst, uint64(op.Peer))
			dst = tw.AppendWireF64(dst, float64(op.GVT))
		case OpInject:
			dst = tw.AppendWireUint(dst, uint64(len(op.Events)))
			for _, ev := range op.Events {
				dst = tw.AppendWireEvent(dst, ev)
			}
		case OpQuiescePass, OpQuiesceDump, OpQuiesceFlush, OpCaptureShard,
			OpCheckInvariants, OpFlushPoolStats, OpMetrics, OpSeriesProbe:
			return dst, fmt.Errorf("dist: op %v has no binary form", op.Op)
		default:
			return dst, fmt.Errorf("dist: unknown op code %d", uint8(op.Op))
		}
	}
	return dst, nil
}

// DecodeBatch decodes a binary batch request.
func DecodeBatch(b []byte) (*BatchMsg, error) {
	if len(b) < 2 {
		return nil, corrupt("short batch header")
	}
	if b[0] != binVersion {
		return nil, fmt.Errorf("dist: binary codec version %d, want %d", b[0], binVersion)
	}
	flags := b[1]
	b = b[2:]
	m := &BatchMsg{}
	if flags&flagEnv != 0 {
		env, rest, ok := tw.ConsumeWireEnvelope(b)
		if !ok {
			return nil, corrupt("batch envelope")
		}
		m.Env, b = &env, rest
	}
	nops, b, ok := tw.ConsumeWireUint(b)
	if !ok || nops > uint64(len(b))+1 {
		return nil, corrupt("batch op count")
	}
	m.Ops = make([]OpRequest, nops)
	for i := range m.Ops {
		if len(b) < 1 {
			return nil, corrupt("batch op code")
		}
		op := &m.Ops[i]
		op.Op, b = OpCode(b[0]), b[1:]
		switch op.Op {
		case OpDrain, OpProcessBatch, OpHasExecWork, OpHasWork,
			OpInputSize, OpLocalMin, OpRemoteMin, OpTakeMinSent,
			OpPeekMinSent:
			peer, rest, ok := tw.ConsumeWireUint(b)
			if !ok {
				return nil, corrupt("op peer")
			}
			op.Peer, b = int(peer), rest
		case OpFossilCollect:
			peer, rest, ok := tw.ConsumeWireUint(b)
			if !ok {
				return nil, corrupt("op peer")
			}
			op.Peer, b = int(peer), rest
			gvt, rest, ok := tw.ConsumeWireF64(b)
			if !ok {
				return nil, corrupt("fossil horizon")
			}
			op.GVT, b = WireVT(gvt), rest
		case OpInject:
			var n uint64
			if n, b, ok = tw.ConsumeWireUint(b); !ok || n > uint64(len(b))+1 {
				return nil, corrupt("inject count")
			}
			op.Events = make([]tw.WireEvent, n)
			for j := range op.Events {
				if op.Events[j], b, ok = tw.ConsumeWireEvent(b); !ok {
					return nil, corrupt("inject event")
				}
			}
		case OpQuiescePass, OpQuiesceDump, OpQuiesceFlush, OpCaptureShard,
			OpCheckInvariants, OpFlushPoolStats, OpMetrics, OpSeriesProbe:
			return nil, fmt.Errorf("dist: op %v has no binary form", op.Op)
		default:
			return nil, fmt.Errorf("dist: unknown op code %d", uint8(op.Op))
		}
	}
	if len(b) != 0 {
		return nil, corrupt("trailing batch bytes")
	}
	return m, nil
}

// appendResult encodes one op's result; the shape is the op's.
func appendResult(dst []byte, op OpCode, r *OpResult) ([]byte, error) {
	switch op {
	case OpDrain, OpProcessBatch, OpFossilCollect:
		dst = tw.AppendWireInt(dst, int64(r.N))
		dst = tw.AppendWireUint(dst, r.Cycles)
		return tw.AppendWireBool(dst, r.Worked), nil
	case OpLocalMin:
		dst = tw.AppendWireF64(dst, float64(r.VT))
		dst = tw.AppendWireUint(dst, r.Cycles)
		return tw.AppendWireBool(dst, r.Worked), nil
	case OpInputSize:
		return tw.AppendWireInt(dst, int64(r.N)), nil
	case OpHasExecWork, OpHasWork:
		return tw.AppendWireBool(dst, r.Flag), nil
	case OpRemoteMin, OpTakeMinSent, OpPeekMinSent:
		return tw.AppendWireF64(dst, float64(r.VT)), nil
	case OpInject:
		return dst, nil
	case OpQuiescePass, OpQuiesceDump, OpQuiesceFlush, OpCaptureShard,
		OpCheckInvariants, OpFlushPoolStats, OpMetrics, OpSeriesProbe:
		return dst, fmt.Errorf("dist: op %v has no binary form", op)
	default:
		return dst, fmt.Errorf("dist: unknown op code %d", uint8(op))
	}
}

// consumeResult decodes one op's result.
func consumeResult(b []byte, op OpCode, r *OpResult) ([]byte, error) {
	var ok bool
	switch op {
	case OpDrain, OpProcessBatch, OpFossilCollect:
		var n int64
		if n, b, ok = tw.ConsumeWireInt(b); !ok {
			return b, corrupt("result count")
		}
		r.N = int(n)
		if r.Cycles, b, ok = tw.ConsumeWireUint(b); !ok {
			return b, corrupt("result cycles")
		}
		if r.Worked, b, ok = tw.ConsumeWireBool(b); !ok {
			return b, corrupt("result worked flag")
		}
		return b, nil
	case OpLocalMin:
		var vt float64
		if vt, b, ok = tw.ConsumeWireF64(b); !ok {
			return b, corrupt("result virtual time")
		}
		r.VT = WireVT(vt)
		if r.Cycles, b, ok = tw.ConsumeWireUint(b); !ok {
			return b, corrupt("result cycles")
		}
		if r.Worked, b, ok = tw.ConsumeWireBool(b); !ok {
			return b, corrupt("result worked flag")
		}
		return b, nil
	case OpInputSize:
		var n int64
		if n, b, ok = tw.ConsumeWireInt(b); !ok {
			return b, corrupt("result count")
		}
		r.N = int(n)
		return b, nil
	case OpHasExecWork, OpHasWork:
		if r.Flag, b, ok = tw.ConsumeWireBool(b); !ok {
			return b, corrupt("result flag")
		}
		return b, nil
	case OpRemoteMin, OpTakeMinSent, OpPeekMinSent:
		var vt float64
		if vt, b, ok = tw.ConsumeWireF64(b); !ok {
			return b, corrupt("result virtual time")
		}
		r.VT = WireVT(vt)
		return b, nil
	case OpInject:
		return b, nil
	case OpQuiescePass, OpQuiesceDump, OpQuiesceFlush, OpCaptureShard,
		OpCheckInvariants, OpFlushPoolStats, OpMetrics, OpSeriesProbe:
		return b, fmt.Errorf("dist: op %v has no binary form", op)
	default:
		return b, fmt.Errorf("dist: unknown op code %d", uint8(op))
	}
}

// AppendBatchReply encodes a batch reply; ops is the request's op list,
// which fixes each result's positional shape.
func AppendBatchReply(dst []byte, r *BatchReply, ops []OpRequest) ([]byte, error) {
	if len(r.Results) != len(ops) {
		return dst, fmt.Errorf("dist: %d results for %d ops", len(r.Results), len(ops))
	}
	dst = append(dst, binVersion)
	var flags byte
	if r.Env != nil {
		flags |= flagEnv
	}
	dst = append(dst, flags)
	if r.Env != nil {
		dst = tw.AppendWireEnvelope(dst, *r.Env)
		dst = tw.AppendWireUint(dst, uint64(len(r.Stats)))
		for _, s := range r.Stats {
			dst = tw.AppendWirePeerStats(dst, s)
		}
	}
	var err error
	for i := range r.Results {
		if dst, err = appendResult(dst, ops[i].Op, &r.Results[i]); err != nil {
			return dst, err
		}
	}
	dst = tw.AppendWireUint(dst, uint64(len(r.Outbox)))
	for _, ev := range r.Outbox {
		dst = tw.AppendWireEvent(dst, ev)
	}
	return dst, nil
}

// DecodeBatchReply decodes a binary batch reply against the op list
// that produced it.
func DecodeBatchReply(b []byte, ops []OpRequest) (*BatchReply, error) {
	if len(b) < 2 {
		return nil, corrupt("short reply header")
	}
	if b[0] != binVersion {
		return nil, fmt.Errorf("dist: binary codec version %d, want %d", b[0], binVersion)
	}
	flags := b[1]
	b = b[2:]
	r := &BatchReply{}
	if flags&flagEnv != 0 {
		env, rest, ok := tw.ConsumeWireEnvelope(b)
		if !ok {
			return nil, corrupt("reply envelope")
		}
		r.Env, b = &env, rest
		var n uint64
		if n, b, ok = tw.ConsumeWireUint(b); !ok || n > uint64(len(b))+1 {
			return nil, corrupt("stats count")
		}
		r.Stats = make([]tw.PeerStats, n)
		for i := range r.Stats {
			if r.Stats[i], b, ok = tw.ConsumeWirePeerStats(b); !ok {
				return nil, corrupt("peer stats")
			}
		}
	}
	r.Results = make([]OpResult, len(ops))
	var err error
	for i := range r.Results {
		if b, err = consumeResult(b, ops[i].Op, &r.Results[i]); err != nil {
			return nil, err
		}
	}
	n, b, ok := tw.ConsumeWireUint(b)
	if !ok || n > uint64(len(b))+1 {
		return nil, corrupt("outbox count")
	}
	if n > 0 {
		r.Outbox = make([]tw.WireEvent, n)
		for i := range r.Outbox {
			if r.Outbox[i], b, ok = tw.ConsumeWireEvent(b); !ok {
				return nil, corrupt("outbox event")
			}
		}
	}
	if len(b) != 0 {
		return nil, corrupt("trailing reply bytes")
	}
	return r, nil
}
