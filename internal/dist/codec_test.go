package dist

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"ggpdes/internal/tw"
)

// byteStream turns a fuzz input into a deterministic value generator;
// exhausted input yields zeros, so every prefix is a valid seed.
type byteStream struct {
	b []byte
	i int
}

func (s *byteStream) next() byte {
	if s.i >= len(s.b) {
		return 0
	}
	v := s.b[s.i]
	s.i++
	return v
}

func (s *byteStream) u64() uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(s.next())
	}
	return v
}

// vt picks a virtual time including the infinities binary floats must
// carry natively; NaN is excluded (never produced by the engine, and
// NaN != NaN breaks equality checks, not the codec).
func (s *byteStream) vt() float64 {
	switch s.next() % 4 {
	case 0:
		return math.Inf(1)
	case 1:
		return math.Inf(-1)
	case 2:
		return float64(int64(s.u64())) / 256
	default:
		return float64(s.next())
	}
}

// finite is for fields that are plain float64 in JSON (envelope GVT,
// event timestamps), where the engine only ever puts finite values.
func (s *byteStream) finite() float64 {
	return float64(int64(s.u64())) / 256
}

func (s *byteStream) event() tw.WireEvent {
	return tw.WireEvent{
		Ts:        s.finite(),
		Seq:       s.u64(),
		Src:       int(int8(s.next())),
		Dst:       int(int8(s.next())),
		Kind:      s.next(),
		A:         int64(s.u64()),
		B:         int64(s.u64()),
		Anti:      s.next()%2 == 1,
		TargetSeq: s.u64(),
	}
}

func (s *byteStream) events(n int) []tw.WireEvent {
	out := make([]tw.WireEvent, n)
	for i := range out {
		out[i] = s.event()
	}
	return out
}

// batchableOps is every op with a binary form, in a fixed pick order.
var batchableOps = []OpCode{
	OpDrain, OpProcessBatch, OpHasExecWork, OpHasWork, OpInputSize,
	OpLocalMin, OpRemoteMin, OpTakeMinSent, OpPeekMinSent,
	OpFossilCollect, OpInject,
}

// genBatch derives a batch request and a shape-matching reply from the
// stream, exercising every batchable op kind and both envelope states.
func genBatch(s *byteStream) (*BatchMsg, *BatchReply) {
	m := &BatchMsg{Ops: make([]OpRequest, 1+int(s.next()%4))}
	for i := range m.Ops {
		op := &m.Ops[i]
		op.Op = batchableOps[int(s.next())%len(batchableOps)]
		switch op.Op {
		case OpInject:
			op.Events = s.events(1 + int(s.next()%3))
		case OpFossilCollect:
			op.Peer = int(s.next() % 16)
			op.GVT = WireVT(s.vt())
		case OpDrain, OpProcessBatch, OpHasExecWork, OpHasWork, OpInputSize,
			OpLocalMin, OpRemoteMin, OpTakeMinSent, OpPeekMinSent,
			OpQuiescePass, OpQuiesceDump, OpQuiesceFlush, OpCaptureShard,
			OpCheckInvariants, OpFlushPoolStats, OpMetrics, OpSeriesProbe:
			op.Peer = int(s.next() % 16)
		}
	}
	if s.next()%2 == 1 {
		m.Env = &tw.Envelope{
			Seq:             s.u64(),
			GVT:             s.finite(),
			Uncommitted:     int(int8(s.next())),
			PeakUncommitted: int(s.next()),
			PeakSinceMark:   int(s.next()),
		}
	}
	r := &BatchReply{Results: make([]OpResult, len(m.Ops))}
	for i := range r.Results {
		res := &r.Results[i]
		switch m.Ops[i].Op {
		case OpDrain, OpProcessBatch, OpFossilCollect:
			res.N = int(int8(s.next()))
			res.Cycles = uint64(s.next())
			res.Worked = s.next()%2 == 1
		case OpLocalMin:
			res.VT = WireVT(s.vt())
			res.Cycles = uint64(s.next())
			res.Worked = s.next()%2 == 1
		case OpInputSize:
			res.N = int(int8(s.next()))
		case OpHasExecWork, OpHasWork:
			res.Flag = s.next()%2 == 1
		case OpRemoteMin, OpTakeMinSent, OpPeekMinSent:
			res.VT = WireVT(s.vt())
		case OpInject, OpQuiescePass, OpQuiesceDump, OpQuiesceFlush,
			OpCaptureShard, OpCheckInvariants, OpFlushPoolStats, OpMetrics,
			OpSeriesProbe:
		}
	}
	// The protocol couples reply envelope and stats to the request
	// envelope; the codec encodes stats only under the env flag.
	if m.Env != nil {
		env := *m.Env
		env.Seq++
		r.Env = &env
		r.Stats = make([]tw.PeerStats, 1+int(s.next()%2))
		for i := range r.Stats {
			r.Stats[i] = tw.PeerStats{
				Processed: s.u64(), RolledBack: s.u64(), Committed: s.u64(),
				Rollbacks: s.u64(), Stragglers: s.u64(), AntiSent: s.u64(),
				Annihilated: s.u64(), Drained: s.u64(), LazyReused: s.u64(),
				LazyCancelled: s.u64(), GVTCycles: s.u64(), GVTRounds: s.u64(),
			}
		}
	}
	if s.next()%2 == 1 {
		r.Outbox = s.events(1 + int(s.next()%3))
	}
	return m, r
}

// FuzzBinaryFrame checks the binary batch codec three ways: encoding
// then decoding a generated frame is the identity; the binary and JSON
// codecs agree on every frame; and raw bytes never panic the decoders
// (corrupt frames must surface as errors).
func FuzzBinaryFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 3})
	f.Add([]byte{9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("batched binary protocol"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, r := genBatch(&byteStream{b: data})

		mb, err := AppendBatch(nil, m)
		if err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
		m2, err := DecodeBatch(mb)
		if err != nil {
			t.Fatalf("DecodeBatch: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("batch round trip diverged:\nsent: %+v\ngot:  %+v", m, m2)
		}
		mj, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("json batch: %v", err)
		}
		var m3 BatchMsg
		if err := json.Unmarshal(mj, &m3); err != nil {
			t.Fatalf("json batch decode: %v", err)
		}
		if !reflect.DeepEqual(m2, &m3) {
			t.Fatalf("binary and JSON batch decodes disagree:\nbinary: %+v\njson:   %+v", m2, &m3)
		}

		rb, err := AppendBatchReply(nil, r, m.Ops)
		if err != nil {
			t.Fatalf("AppendBatchReply: %v", err)
		}
		r2, err := DecodeBatchReply(rb, m.Ops)
		if err != nil {
			t.Fatalf("DecodeBatchReply: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("reply round trip diverged:\nsent: %+v\ngot:  %+v", r, r2)
		}
		rj, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("json reply: %v", err)
		}
		var r3 BatchReply
		if err := json.Unmarshal(rj, &r3); err != nil {
			t.Fatalf("json reply decode: %v", err)
		}
		if !reflect.DeepEqual(r2, &r3) {
			t.Fatalf("binary and JSON reply decodes disagree:\nbinary: %+v\njson:   %+v", r2, &r3)
		}

		// Corrupt-input hardening: arbitrary bytes may error, never panic.
		if dm, err := DecodeBatch(data); err == nil && dm == nil {
			t.Fatal("DecodeBatch returned nil, nil")
		}
		if dr, err := DecodeBatchReply(data, m.Ops); err == nil && dr == nil {
			t.Fatal("DecodeBatchReply returned nil, nil")
		}
	})
}
