package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"ggpdes/internal/telemetry"
	"ggpdes/internal/tw"
)

// Client is the coordinator's connection to one worker process: a
// synchronous call/response channel with wire telemetry. It is not
// goroutine-safe — the machine serializes all engine operations, which
// is exactly what keeps the distributed trajectory deterministic.
type Client struct {
	rw io.ReadWriter

	// wbuf and rbuf are reusable frame scratch buffers: one assembled
	// Write per request, zero per-frame read allocations. bbuf holds
	// binary batch payloads before framing.
	wbuf, rbuf, bbuf []byte

	msgsSent      *telemetry.Counter
	msgsReceived  *telemetry.Counter
	bytesSent     *telemetry.Counter
	bytesReceived *telemetry.Counter
	eventsRelayed *telemetry.Counter
	antisRelayed  *telemetry.Counter
	batches       *telemetry.Counter
	opsCoalesced  *telemetry.Counter
}

// NewClient wraps a worker connection; wire counters register in reg
// (nil-safe, like all telemetry).
func NewClient(rw io.ReadWriter, reg *telemetry.Registry) *Client {
	return &Client{
		rw:            rw,
		msgsSent:      reg.Counter(MetricMsgsSent),
		msgsReceived:  reg.Counter(MetricMsgsReceived),
		bytesSent:     reg.Counter(MetricBytesSent),
		bytesReceived: reg.Counter(MetricBytesReceived),
		eventsRelayed: reg.Counter(MetricEventsRelayed),
		antisRelayed:  reg.Counter(MetricAntisRelayed),
		batches:       reg.Counter(MetricBatches),
		opsCoalesced:  reg.Counter(MetricOpsCoalesced),
	}
}

// RemoteError is a failure the worker reported in answer to a request:
// the connection is intact and the error is not retryable (redialing
// would deterministically hit it again).
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "dist: worker: " + e.Msg }

// send frames kind+body into the write scratch buffer and ships it in
// one Write call.
func (c *Client) send(kind MsgKind, body []byte) error {
	frame, err := AppendMsg(c.wbuf[:0], kind, body)
	if cap(frame) > cap(c.wbuf) {
		c.wbuf = frame
	}
	if err != nil {
		return fmt.Errorf("%w: framing %v: %v", ErrWorkerLost, kind, err)
	}
	n, err := c.rw.Write(frame)
	c.bytesSent.Add(uint64(n))
	if err != nil {
		return fmt.Errorf("%w: sending %v: %v", ErrWorkerLost, kind, err)
	}
	c.msgsSent.Inc()
	return nil
}

// receive reads one response frame into the read scratch buffer. The
// returned payload is valid until the next receive.
func (c *Client) receive(kind MsgKind) (MsgKind, []byte, error) {
	rk, body, rn, buf, err := ReadMsgBuf(c.rw, c.rbuf)
	c.rbuf = buf
	c.bytesReceived.Add(uint64(rn))
	if err != nil {
		return 0, nil, fmt.Errorf("%w: awaiting %v response: %v", ErrWorkerLost, kind, err)
	}
	c.msgsReceived.Inc()
	if rk == KindError {
		var em ErrorMsg
		if jerr := json.Unmarshal(body, &em); jerr != nil || em.Error == "" {
			em.Error = fmt.Sprintf("malformed error response to %v", kind)
		}
		return 0, nil, &RemoteError{Msg: em.Error}
	}
	return rk, body, nil
}

// Call sends one request and decodes the worker's response into reply
// (which may be nil for acknowledgement-only calls). Transport
// failures wrap ErrWorkerLost; worker-reported failures come back as
// *RemoteError.
func (c *Client) Call(kind MsgKind, payload, reply any) error {
	body, err := MarshalBody(kind, payload)
	if err != nil {
		return err
	}
	if err := c.send(kind, body); err != nil {
		return err
	}
	rk, rbody, err := c.receive(kind)
	if err != nil {
		return err
	}
	if rk != KindResult {
		return fmt.Errorf("%w: %v response to %v", ErrWorkerLost, rk, kind)
	}
	if reply == nil {
		return nil
	}
	if err := json.Unmarshal(rbody, reply); err != nil {
		return fmt.Errorf("%w: decoding %v response: %v", ErrWorkerLost, kind, err)
	}
	return nil
}

// CallBatch ships one coalesced op batch in the selected wire encoding
// and decodes the reply. The ops slice must outlive the call — binary
// replies are decoded positionally against it.
func (c *Client) CallBatch(wire Wire, m *BatchMsg) (*BatchReply, error) {
	var kind MsgKind
	var body []byte
	var err error
	switch wire {
	case WireBinary:
		kind = KindOpsB
		body, err = AppendBatch(c.bbuf[:0], m)
		if cap(body) > cap(c.bbuf) {
			c.bbuf = body
		}
		if err != nil {
			return nil, fmt.Errorf("dist: encoding batch: %w", err)
		}
		if err := c.send(kind, body); err != nil {
			return nil, err
		}
	case WireJSON:
		kind = KindOps
		body, err = MarshalBody(kind, m)
		if err != nil {
			return nil, err
		}
		if err := c.send(kind, body); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("dist: unknown wire mode %d", uint8(wire))
	}
	c.batches.Inc()
	if len(m.Ops) > 1 {
		c.opsCoalesced.Add(uint64(len(m.Ops) - 1))
	}
	rk, rbody, err := c.receive(kind)
	if err != nil {
		return nil, err
	}
	switch {
	case wire == WireBinary && rk == KindResultB:
		reply, err := DecodeBatchReply(rbody, m.Ops)
		if err != nil {
			return nil, fmt.Errorf("%w: decoding %v response: %v", ErrWorkerLost, kind, err)
		}
		return reply, nil
	case wire == WireJSON && rk == KindResult:
		reply := &BatchReply{}
		if err := json.Unmarshal(rbody, reply); err != nil {
			return nil, fmt.Errorf("%w: decoding %v response: %v", ErrWorkerLost, kind, err)
		}
		return reply, nil
	default:
		return nil, fmt.Errorf("%w: %v response to %v", ErrWorkerLost, rk, kind)
	}
}

// CountRelayed books relayed cross-shard traffic into the wire
// counters.
func (c *Client) CountRelayed(events []tw.WireEvent) {
	var pos, anti uint64
	for _, w := range events {
		if w.Anti {
			anti++
		} else {
			pos++
		}
	}
	c.eventsRelayed.Add(pos)
	c.antisRelayed.Add(anti)
}

// IsRemote reports whether err is a worker-reported (non-retryable)
// failure.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
