package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"ggpdes/internal/telemetry"
	"ggpdes/internal/tw"
)

// Client is the coordinator's connection to one worker process: a
// synchronous call/response channel with wire telemetry. It is not
// goroutine-safe — the machine serializes all engine operations, which
// is exactly what keeps the distributed trajectory deterministic.
type Client struct {
	rw io.ReadWriter

	msgsSent      *telemetry.Counter
	msgsReceived  *telemetry.Counter
	bytesSent     *telemetry.Counter
	bytesReceived *telemetry.Counter
	eventsRelayed *telemetry.Counter
	antisRelayed  *telemetry.Counter
}

// NewClient wraps a worker connection; wire counters register in reg
// (nil-safe, like all telemetry).
func NewClient(rw io.ReadWriter, reg *telemetry.Registry) *Client {
	return &Client{
		rw:            rw,
		msgsSent:      reg.Counter(MetricMsgsSent),
		msgsReceived:  reg.Counter(MetricMsgsReceived),
		bytesSent:     reg.Counter(MetricBytesSent),
		bytesReceived: reg.Counter(MetricBytesReceived),
		eventsRelayed: reg.Counter(MetricEventsRelayed),
		antisRelayed:  reg.Counter(MetricAntisRelayed),
	}
}

// RemoteError is a failure the worker reported in answer to a request:
// the connection is intact and the error is not retryable (redialing
// would deterministically hit it again).
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "dist: worker: " + e.Msg }

// Call sends one request and decodes the worker's response into reply
// (which may be nil for acknowledgement-only calls). Transport
// failures wrap ErrWorkerLost; worker-reported failures come back as
// *RemoteError.
func (c *Client) Call(kind MsgKind, payload, reply any) error {
	n, err := WriteMsg(c.rw, kind, payload)
	c.bytesSent.Add(uint64(n))
	if err != nil {
		return fmt.Errorf("%w: sending %v: %v", ErrWorkerLost, kind, err)
	}
	c.msgsSent.Inc()
	rk, body, rn, err := ReadMsg(c.rw)
	c.bytesReceived.Add(uint64(rn))
	if err != nil {
		return fmt.Errorf("%w: awaiting %v response: %v", ErrWorkerLost, kind, err)
	}
	c.msgsReceived.Inc()
	if rk == KindError {
		var em ErrorMsg
		if jerr := json.Unmarshal(body, &em); jerr != nil || em.Error == "" {
			em.Error = fmt.Sprintf("malformed error response to %v", kind)
		}
		return &RemoteError{Msg: em.Error}
	}
	if rk != KindResult {
		return fmt.Errorf("%w: %v response to %v", ErrWorkerLost, rk, kind)
	}
	if reply == nil {
		return nil
	}
	if err := json.Unmarshal(body, reply); err != nil {
		return fmt.Errorf("%w: decoding %v response: %v", ErrWorkerLost, kind, err)
	}
	return nil
}

// CountRelayed books relayed cross-shard traffic into the wire
// counters.
func (c *Client) CountRelayed(events []tw.WireEvent) {
	var pos, anti uint64
	for _, w := range events {
		if w.Anti {
			anti++
		} else {
			pos++
		}
	}
	c.eventsRelayed.Add(pos)
	c.antisRelayed.Add(anti)
}

// IsRemote reports whether err is a worker-reported (non-retryable)
// failure.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
